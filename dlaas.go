// Package dlaas is a full reproduction of IBM's Deep Learning as a
// Service platform as described in "Dependability in a Multi-tenant
// Multi-framework Deep Learning as-a-Service Platform" (Boag et al.,
// DSN 2018). It orchestrates multi-framework GPU training jobs for many
// tenants on a simulated Kubernetes cluster with etcd, MongoDB, a cloud
// object store and shared NFS volumes — all implemented in this module —
// and provides the dependability guarantees the paper describes: durable
// submissions, atomic job deployment with Guardian rollback/retry,
// reliable etcd-mediated status updates, crash recovery for every
// component, checkpoint-based learner resume, reliable log streaming,
// and network-policy tenant isolation.
//
// The entry point is Platform:
//
//	p, err := dlaas.New()
//	defer p.Close()
//	client := p.Client("team-vision")
//	id, err := client.Submit(m)
//	rec, err := client.WaitForState(id, dlaas.StateCompleted, time.Hour)
//
// By default everything runs on a discrete-event virtual clock, so
// multi-hour training jobs and multi-second crash recoveries complete in
// milliseconds of real time while every reported duration stays in
// cluster time.
package dlaas

import (
	"repro/internal/core/api"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/objectstore"
	"repro/internal/trainsim"
)

// Re-exported manifest types: the job specification users submit.
type (
	// Manifest is a training-job specification.
	Manifest = manifest.Manifest
	// DataRef locates training data or results in the object store.
	DataRef = manifest.DataRef
)

// Re-exported job lifecycle types.
type (
	// JobState is the user-visible job lifecycle state.
	JobState = types.JobState
	// JobRecord is a job's metadata record.
	JobRecord = types.JobRecord
	// Event is a timestamped job state transition.
	Event = types.Event
	// LearnerStatus is a per-learner execution status.
	LearnerStatus = types.LearnerStatus
	// StatusUpdate is one timestamped learner status record.
	StatusUpdate = types.StatusUpdate
)

// Re-exported object-store credentials for dataset staging.
type Credentials = objectstore.Credentials

// MetricPoint is one sample of a training progress graph.
type MetricPoint = trainsim.MetricPoint

// ClusterInfo summarizes platform capacity and job load.
type ClusterInfo = api.ClusterInfoResponse

// Job lifecycle states.
const (
	StateQueued     = types.StateQueued
	StateDeploying  = types.StateDeploying
	StateProcessing = types.StateProcessing
	StateStoring    = types.StateStoring
	StateCompleted  = types.StateCompleted
	StateFailed     = types.StateFailed
	StateHalted     = types.StateHalted
)

// Learner statuses.
const (
	LearnerStarting    = types.LearnerStarting
	LearnerDownloading = types.LearnerDownloading
	LearnerTraining    = types.LearnerTraining
	LearnerCompleted   = types.LearnerCompleted
	LearnerFailed      = types.LearnerFailed
)
