package dlaas

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/core/api"
	"repro/internal/core/lcm"
	"repro/internal/etcd"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/metrics"
	"repro/internal/mongo"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// ErrNotReady indicates the platform services did not come up in time.
var ErrNotReady = errors.New("dlaas: platform not ready")

// Options configure a Platform. The zero value is completed by defaults.
type Options struct {
	// Clock overrides the default virtual clock (e.g. clock.NewReal()
	// for wall-clock demos). The platform owns and closes a defaulted
	// virtual clock; a caller-provided clock is left alone.
	Clock clock.Clock

	// Nodes is the GPU worker count (default 4).
	Nodes int
	// GPUsPerNode is each worker's GPU count (default 4).
	GPUsPerNode int
	// GPUType is the workers' accelerator model (default "K80").
	GPUType string

	// APIReplicas is the API deployment size (default 2).
	APIReplicas int
	// EtcdReplicas is the etcd cluster size (default 3, as the paper).
	EtcdReplicas int
	// MetadataShards is the shard count of the metadata-plane store
	// engine backing both MongoDB and each etcd replica's state machine
	// (default: the store package default). More shards buy write
	// parallelism for high job-concurrency workloads; 1 degenerates to a
	// single-lock store.
	MetadataShards int

	// Scheduling selects the per-pod placement policy for the simulated
	// cluster (default kube.PolicyBinPack; kube.PolicySpread trades
	// utilization for node-failure blast radius).
	Scheduling kube.SchedulingPolicy
	// DisablePreemption turns off priority preemption in the gang
	// scheduler: higher-priority jobs then wait instead of evicting
	// lower-priority learner gangs.
	DisablePreemption bool
	// DisableBackfill turns off backfilling small jobs into GPU holes
	// while a large gang waits at the head of the queue.
	DisableBackfill bool

	// EvictionGracePeriod is how long a preempted or drained learner
	// gang gets to write an on-demand checkpoint before its pods are
	// force-killed (default 30s): the scheduler posts an eviction intent,
	// the Guardian relays it, the learners checkpoint and ack, and only
	// then does the eviction complete — so an evicted job resumes from
	// the moment of eviction instead of the last periodic checkpoint.
	// Sub-second values effectively test the force-eviction path.
	EvictionGracePeriod time.Duration
	// ImmediateEviction restores the pre-protocol behavior for A/B
	// comparison: preemption and node drain kill learner pods instantly,
	// and a job forfeits up to a full CheckpointInterval of training.
	ImmediateEviction bool

	// ReadMode selects how etcd Get/Range (and read-only Txn) are
	// served: "leaseread" (the default) answers linearizably at
	// amortized quorum cost — check-quorum leases make reads free while
	// the leader's lease is live, and coalesced confirmation rounds
	// resolve every concurrent read at once when it is not;
	// "readindex" pays one dedicated leader heartbeat round per read
	// (the pre-lease behavior, kept for A/B comparison — see
	// BenchmarkEtcdReads); "propose" sequences every read through the
	// Raft log (the pre-read-index behavior, same A/B role);
	// "serializable" reads any live replica's local state with bounded
	// staleness and no quorum requirement.
	ReadMode string

	// WriteMode selects how etcd writes reach the Raft log: "batch" (the
	// default) coalesces concurrent writes into one group-commit entry
	// per replication round; "single" proposes each write as its own
	// entry (the pre-batching behavior, kept for A/B comparison — see
	// BenchmarkEtcdWrites).
	WriteMode string

	// Replication selects the Raft replication discipline: "pipeline"
	// (the default) keeps a bounded in-flight AppendEntries window per
	// follower with optimistic nextIndex advance; "stopwait" re-ships
	// the full pending suffix each broadcast and advances only on acks
	// (the pre-pipelining behavior, kept for A/B comparison).
	Replication string

	// ControlPlane selects how the core services observe state changes:
	// "watch" (the default) drives the Guardian and LCM from
	// revision-ordered etcd watches and the metadata change feed, with
	// long-interval polls kept only as a liveness backstop; "poll"
	// preserves the pre-refactor fixed-interval polling loops for A/B
	// comparison (see BenchmarkControlPlane).
	ControlPlane string

	// Tracing enables ("on", the default) or disables ("off") the
	// deterministic span recorder: job-lifecycle span trees on the
	// virtual clock, served via /traces/{jobID} and Platform.Trace().
	// "off" exists for the overhead A/B (see BenchmarkTraceOverhead).
	Tracing string

	// MaxDeployAttempts bounds Guardian deployment retries (default 3).
	MaxDeployAttempts int
	// GuardianStepDelay is the modeled per-step Guardian provisioning
	// work (default 200ms; also the crash-injection window for
	// atomicity tests).
	GuardianStepDelay time.Duration

	// Seed controls all randomized timing jitter.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.GPUsPerNode <= 0 {
		o.GPUsPerNode = 4
	}
	if o.GPUType == "" {
		o.GPUType = "K80"
	}
	if o.APIReplicas <= 0 {
		o.APIReplicas = 2
	}
	if o.EtcdReplicas <= 0 {
		o.EtcdReplicas = 3
	}
	if o.GuardianStepDelay <= 0 {
		o.GuardianStepDelay = 200 * time.Millisecond
	}
	if o.EvictionGracePeriod <= 0 {
		o.EvictionGracePeriod = 30 * time.Second
	}
	if o.ControlPlane == "" {
		o.ControlPlane = core.ControlPlaneWatch
	}
	if o.Tracing == "" {
		o.Tracing = "on"
	}
	return o
}

// Platform is one running DLaaS instance: core services on a simulated
// Kubernetes cluster with all supporting stores.
type Platform struct {
	opts      Options
	clk       clock.Clock
	ownsClock *clock.Sim

	bus     *rpc.Bus
	cluster *kube.Cluster
	etcd    *etcd.Store
	mongo   *mongo.DB
	store   *objectstore.Store
	nfs     *nfs.Server
	link    *netsim.SharedLink

	deps    *core.Deps
	apiDep  *kube.Deployment
	lcmDep  *kube.Deployment
	metrics *metrics.Registry
	trace   *trace.Recorder

	chaos *chaos.Injector
}

// New boots a platform and waits for the core services to serve.
func New(opts Options) (*Platform, error) {
	opts = opts.withDefaults()
	p := &Platform{opts: opts}

	if opts.Clock != nil {
		p.clk = opts.Clock
	} else {
		sim := clock.NewSim()
		p.clk = sim
		p.ownsClock = sim
	}

	defaultGPU, ok := gpu.ByName(opts.GPUType)
	if !ok {
		p.closePartial()
		return nil, fmt.Errorf("dlaas: unknown GPU type %q", opts.GPUType)
	}
	if opts.ControlPlane != core.ControlPlaneWatch && opts.ControlPlane != core.ControlPlanePoll {
		p.closePartial()
		return nil, fmt.Errorf("dlaas: unknown control plane %q", opts.ControlPlane)
	}
	switch opts.Tracing {
	case "on":
		p.trace = trace.NewRecorder(p.clk)
	case "off":
		// p.trace stays nil; every trace call site is nil-safe.
	default:
		p.closePartial()
		return nil, fmt.Errorf("dlaas: unknown tracing mode %q", opts.Tracing)
	}

	p.metrics = metrics.NewRegistry()
	p.nfs = nfs.NewServer(p.clk)
	p.link = netsim.NewSharedLink(netsim.Ethernet1G, p.clk)
	p.store = objectstore.New(p.clk, p.link)
	p.mongo = mongo.NewSharded(p.clk, opts.MetadataShards)
	p.mongo.Instrument(p.metrics)
	kv, err := etcd.NewWithOptions(opts.EtcdReplicas, p.clk, etcd.StoreOptions{
		Shards:      opts.MetadataShards,
		WriteMode:   opts.WriteMode,
		Replication: opts.Replication,
	})
	if err != nil {
		p.closePartial()
		return nil, fmt.Errorf("dlaas: %w", err)
	}
	p.etcd = kv
	if err := p.etcd.SetReadMode(opts.ReadMode); err != nil {
		p.closePartial()
		return nil, fmt.Errorf("dlaas: %w", err)
	}
	p.etcd.Instrument(p.metrics)
	p.bus = rpc.NewBus(p.clk, rpc.WithTracer(p.trace))

	nodes := make([]kube.NodeSpec, 0, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		nodes = append(nodes, kube.NodeSpec{
			Name:    fmt.Sprintf("gpu-node-%02d", i),
			GPUs:    opts.GPUsPerNode,
			GPUType: opts.GPUType,
		})
	}
	grace := opts.EvictionGracePeriod
	if opts.ImmediateEviction {
		grace = 0
	}
	p.cluster = kube.NewCluster(kube.Config{
		Clock:               p.clk,
		NFS:                 p.nfs,
		Scheduling:          opts.Scheduling,
		DisablePreemption:   opts.DisablePreemption,
		DisableBackfill:     opts.DisableBackfill,
		EvictionGracePeriod: grace,
		Seed:                opts.Seed,
		Trace:               p.trace,
	}, nodes...)
	p.chaos = chaos.New(p.cluster).AttachEtcd(p.etcd).AttachNFS(p.nfs)

	p.deps = &core.Deps{
		Clock:       p.clk,
		Bus:         p.bus,
		Kube:        p.cluster,
		Etcd:        p.etcd,
		Mongo:       p.mongo,
		ObjectStore: p.store,
		NFS:         p.nfs,
		DataLink:    p.link,
		DefaultGPU:  defaultGPU,
		Metrics:     p.metrics,
		Trace:       p.trace,
	}

	apiSvc := api.New(p.deps)
	lcmSvc := lcm.New(p.deps)
	lcmSvc.GuardianStepDelay = opts.GuardianStepDelay
	lcmSvc.MaxDeployAttempts = opts.MaxDeployAttempts
	lcmSvc.ControlPlane = opts.ControlPlane

	p.apiDep, err = p.cluster.CreateDeployment("dlaas-api", opts.APIReplicas, kube.PodSpec{
		Labels:        map[string]string{"app": "dlaas-api"},
		RestartPolicy: kube.RestartAlways,
		Containers:    []kube.ContainerSpec{apiSvc.ContainerSpec()},
	})
	if err != nil {
		p.closePartial()
		return nil, fmt.Errorf("dlaas: starting API: %w", err)
	}
	p.lcmDep, err = p.cluster.CreateDeployment("dlaas-lcm", 1, kube.PodSpec{
		Labels:        map[string]string{"app": "dlaas-lcm"},
		RestartPolicy: kube.RestartAlways,
		Containers:    []kube.ContainerSpec{lcmSvc.ContainerSpec()},
	})
	if err != nil {
		p.closePartial()
		return nil, fmt.Errorf("dlaas: starting LCM: %w", err)
	}

	if err := p.WaitReady(2 * time.Minute); err != nil {
		p.closePartial()
		return nil, err
	}
	return p, nil
}

// WaitReady blocks until every core service has at least one healthy
// instance registered, or the (cluster-time) timeout passes. It waits
// on the bus's registration signal rather than polling: the services
// being waited on announce their own readiness.
func (p *Platform) WaitReady(timeout time.Duration) error {
	if !p.bus.WaitHealthy(timeout, 1, core.APIService, core.LCMService) {
		return fmt.Errorf("%w after %v", ErrNotReady, timeout)
	}
	return nil
}

// Close tears the platform down. It is safe to call once.
func (p *Platform) Close() {
	p.closePartial()
}

func (p *Platform) closePartial() {
	if p.cluster != nil {
		p.cluster.Stop()
	}
	if p.etcd != nil {
		p.etcd.Close()
	}
	if p.mongo != nil {
		p.mongo.Close()
	}
	if p.ownsClock != nil {
		p.ownsClock.Close()
	}
}

// Clock exposes the platform's time source (virtual in tests/benches).
func (p *Platform) Clock() clock.Clock { return p.clk }

// Chaos exposes the failure-injection harness.
func (p *Platform) Chaos() *chaos.Injector { return p.chaos }

// Metrics exposes the platform instrumentation registry: per-tenant
// request metering, API latencies, and operational gauges.
func (p *Platform) Metrics() *metrics.Registry { return p.metrics }

// Trace exposes the platform span recorder (nil when Tracing is off).
func (p *Platform) Trace() *trace.Recorder { return p.trace }

// Cluster exposes the underlying simulated Kubernetes cluster.
func (p *Platform) Cluster() *kube.Cluster { return p.cluster }

// Etcd exposes the replicated coordination store.
func (p *Platform) Etcd() *etcd.Store { return p.etcd }

// Mongo exposes the metadata database (for fault injection in tests).
func (p *Platform) Mongo() *mongo.DB { return p.mongo }

// ObjectStore exposes the training-data/results store.
func (p *Platform) ObjectStore() *objectstore.Store { return p.store }

// CreateDataset stages a synthetic training dataset of the given size in
// a fresh bucket owned by creds. It returns a DataRef ready to embed in
// a manifest.
func (p *Platform) CreateDataset(bucket, key string, size int64, creds Credentials) (DataRef, error) {
	if err := p.store.CreateBucket(bucket, creds); err != nil {
		return DataRef{}, fmt.Errorf("dlaas: staging dataset: %w", err)
	}
	if err := p.store.PutSynthetic(bucket, key, size, creds); err != nil {
		return DataRef{}, fmt.Errorf("dlaas: staging dataset: %w", err)
	}
	return DataRef{Bucket: bucket, Key: key, AccessKey: creds.AccessKey, SecretKey: creds.SecretKey}, nil
}

// CreateResultsBucket provisions an empty results bucket owned by creds.
func (p *Platform) CreateResultsBucket(bucket string, creds Credentials) (DataRef, error) {
	if err := p.store.CreateBucket(bucket, creds); err != nil {
		return DataRef{}, fmt.Errorf("dlaas: creating results bucket: %w", err)
	}
	return DataRef{Bucket: bucket, AccessKey: creds.AccessKey, SecretKey: creds.SecretKey}, nil
}
