package dlaas

// Platform-level tests of the distributed tracing pipeline: one job =
// one span tree, covering submission through terminal state, surviving
// crash/redeploy by re-parenting under the derivable job root, and
// summing — via the critical-path analyzer — exactly to the job's
// virtual makespan.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core/guardian"
	"repro/internal/core/learner"
	"repro/internal/trace"
)

// flattenSpans collects a span subtree in deterministic (sorted) order.
func flattenSpans(sd *trace.SpanData, out *[]*trace.SpanData) {
	if sd == nil {
		return
	}
	*out = append(*out, sd)
	for _, c := range sd.Children {
		flattenSpans(c, out)
	}
}

// traceShape renders the tree's structure — nesting, names, phases, and
// event names, without timestamps — for run-to-run comparison.
func traceShape(sd *trace.SpanData, depth int, sb *strings.Builder) {
	if sd == nil {
		return
	}
	fmt.Fprintf(sb, "%s%s phase=%s ended=%t\n", strings.Repeat("  ", depth), sd.Name, sd.Phase, sd.Ended)
	for _, ev := range sd.Events {
		fmt.Fprintf(sb, "%s- %s\n", strings.Repeat("  ", depth+1), ev.Name)
	}
	for _, c := range sd.Children {
		traceShape(c, depth+1, sb)
	}
}

// runTracedQuickstart boots a platform, trains one single-learner job to
// completion, and returns its span tree.
func runTracedQuickstart(t *testing.T, opts Options) *trace.Tree {
	t.Helper()
	p := newTestPlatform(t, opts)
	client := p.Client("tracer")
	m := testManifest(t, p, "tracer", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := client.WaitForState(id, StateCompleted, 2*time.Hour); err != nil {
		t.Fatalf("job did not complete: %v (state %s, reason %q)", err, rec.State, rec.Reason)
	}
	tree := p.Trace().Tree(id)
	if tree == nil || tree.Root == nil {
		t.Fatalf("no trace recorded for job %s", id)
	}
	return tree
}

// TestTraceQuickstartSpanTree asserts the core tentpole property: a
// completed quickstart job yields a single span tree whose structure is
// identical across same-seed runs and whose critical-path phase
// attribution sums exactly to the job's virtual makespan.
func TestTraceQuickstartSpanTree(t *testing.T) {
	skipIfShort(t)

	shapes := make([]string, 2)
	for run := 0; run < 2; run++ {
		tree := runTracedQuickstart(t, Options{Seed: 7})

		root := tree.Root
		if root.Name != "job" || !root.Ended {
			t.Fatalf("root = %q ended=%t, want ended job root", root.Name, root.Ended)
		}
		if len(tree.Orphans) > 0 {
			t.Fatalf("%d orphan spans (first %q): every span must parent under the job root",
				len(tree.Orphans), tree.Orphans[0].Name)
		}

		// One trace covers the whole lifecycle: the root's state events
		// walk the canonical path, and the tree contains the scheduler,
		// guardian, learner, and helper contributions.
		var all []*trace.SpanData
		flattenSpans(root, &all)
		wantSpans := []string{"gang-wait", "guardian-deploy", "learner-0", "download", "train", "store-results"}
		for _, name := range wantSpans {
			found := false
			for _, sd := range all {
				if sd.Name == name {
					found = true
					if !sd.Ended {
						t.Fatalf("span %q never ended", name)
					}
				}
			}
			if !found {
				t.Fatalf("span %q missing from tree:\n%s", name, trace.FormatTree(tree))
			}
		}
		var rootEvents []string
		for _, ev := range root.Events {
			rootEvents = append(rootEvents, ev.Name)
		}
		wantEvents := []string{"state:QUEUED", "state:DEPLOYING", "state:PROCESSING", "state:STORING", "state:COMPLETED"}
		if fmt.Sprint(rootEvents) != fmt.Sprint(wantEvents) {
			t.Fatalf("root events = %v, want %v", rootEvents, wantEvents)
		}

		// The acceptance criterion: phase attribution sums to the makespan.
		att := trace.CriticalPath(tree)
		makespan := root.End.Sub(root.Start)
		if att.Total != makespan {
			t.Fatalf("attribution total %v != makespan %v", att.Total, makespan)
		}
		var sum time.Duration
		for _, pc := range att.Phases {
			sum += pc.Cost
		}
		if sum != makespan {
			t.Fatalf("phase costs sum to %v, want makespan %v\n%s", sum, makespan, trace.FormatAttribution(att))
		}
		if att.Phase(trace.PhaseTrain) <= 0 {
			t.Fatalf("no train time on the critical path:\n%s", trace.FormatAttribution(att))
		}

		var sb strings.Builder
		traceShape(root, 0, &sb)
		shapes[run] = sb.String()
	}

	// Same seed, same structure. Virtual durations are compared only in
	// aggregate (the sum-to-makespan check above): goroutine interleaving
	// legitimately shifts individual timings run to run, which is the
	// same reason the campaign fingerprint excludes ElapsedVirtual.
	if shapes[0] != shapes[1] {
		t.Fatalf("same-seed runs produced different tree structure:\n--- run 0:\n%s--- run 1:\n%s",
			shapes[0], shapes[1])
	}
}

// TestTraceSurvivesCrashRedeploy crashes the learner mid-training and
// asserts the recovered incarnation re-parents into the SAME trace: one
// tree, two learner attempt spans, with the resume and the image re-pull
// tagged as recovery cost on the critical path.
func TestTraceSurvivesCrashRedeploy(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("crash")
	m := testManifest(t, p, "crash", 1)
	m.DatasetImages = 20000 // long enough to crash mid-training
	m.CheckpointInterval = time.Minute
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	// Let it train past one checkpoint, then crash the learner pod.
	clk := p.Clock()
	creds := Credentials{AccessKey: "crash", SecretKey: "crash-secret"}
	deadline := clk.Now().Add(time.Hour)
	for clk.Now().Before(deadline) {
		keys, _ := p.ObjectStore().List("results-crash", creds)
		found := false
		for _, k := range keys {
			if strings.HasPrefix(k, "checkpoints/"+id+"/") {
				found = true
			}
		}
		if found {
			break
		}
		clk.Sleep(5 * time.Second)
	}
	pods := p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": id})
	if len(pods) == 0 {
		t.Fatal("no learner pod to crash")
	}
	if err := p.Chaos().KillPod(pods[0].Name()); err != nil {
		t.Fatal(err)
	}
	if rec, err := client.WaitForState(id, StateCompleted, 3*time.Hour); err != nil {
		t.Fatalf("job did not complete after crash: %v (state %s)", err, rec.State)
	}

	tree := p.Trace().Tree(id)
	if tree == nil || tree.Root == nil {
		t.Fatal("no trace recorded")
	}
	if len(tree.Orphans) > 0 {
		t.Fatalf("crash produced %d orphan spans: restarted incarnation did not re-parent", len(tree.Orphans))
	}
	var all []*trace.SpanData
	flattenSpans(tree.Root, &all)
	attempts, resumes := 0, 0
	for _, sd := range all {
		if sd.TraceID != string(tree.TraceID) {
			t.Fatalf("span %q carries trace %q, want %q", sd.Name, sd.TraceID, tree.TraceID)
		}
		switch {
		case sd.Name == "learner-0":
			attempts++
		case sd.Name == "resume-checkpoint" && sd.Phase == trace.PhaseRecovery:
			resumes++
		}
	}
	if attempts < 2 {
		t.Fatalf("learner attempt spans = %d, want >= 2 (crash + restart):\n%s", attempts, trace.FormatTree(tree))
	}
	if resumes < 1 {
		t.Fatalf("no recovery-phase resume-checkpoint span:\n%s", trace.FormatTree(tree))
	}
	if att := trace.CriticalPath(tree); att.Recovery <= 0 {
		t.Fatalf("crash left no recovery cost on the critical path:\n%s", trace.FormatAttribution(att))
	}
}

// TestTraceWedgedLearnerShowsOpenStall wedges the learner (alive but
// stuck) and asserts the trace exposes the hang as a never-ended
// stall-phase span — the observable the liveness verdict leans on.
func TestTraceWedgedLearnerShowsOpenStall(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("wedge")
	m := testManifest(t, p, "wedge", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p.Chaos().WedgeVolumeFile(guardian.VolumeName(id), learner.WedgePath); err != nil {
		t.Fatal(err)
	}

	// The learner hits the marker at its next chunk boundary and hangs.
	clk := p.Clock()
	deadline := clk.Now().Add(10 * time.Minute)
	for {
		var wedged *trace.SpanData
		if tree := p.Trace().Tree(id); tree != nil {
			var all []*trace.SpanData
			flattenSpans(tree.Root, &all)
			for _, sd := range all {
				if sd.Name == "wedged" {
					wedged = sd
				}
			}
		}
		if wedged != nil {
			if wedged.Ended || wedged.Phase != trace.PhaseStall {
				t.Fatalf("wedged span ended=%t phase=%q, want open stall span", wedged.Ended, wedged.Phase)
			}
			break
		}
		if !clk.Now().Before(deadline) {
			t.Fatal("no wedged span appeared within 10 virtual minutes")
		}
		clk.Sleep(5 * time.Second)
	}

	// The job is stuck TRAINING — still PROCESSING, not terminal.
	rec, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateProcessing {
		t.Fatalf("wedged job state = %s, want PROCESSING (alive but stuck)", rec.State)
	}
	// A user halt still tears the wedged job down (the kill path does
	// not depend on learner progress).
	if _, err := client.Halt(id); err != nil {
		t.Fatal(err)
	}
	if rec, err := client.WaitForState(id, StateHalted, time.Hour); err != nil {
		t.Fatalf("halt of wedged job failed: %v (state %s)", err, rec.State)
	}
}

// TestLegacyEnvelopeInteropAtPlatformLevel: a tracing-off platform must
// run the identical envelope path with empty trace fields end to end —
// the legacy-decode guarantee exercised through the real stack rather
// than unit fixtures.
func TestTracingOffRunsClean(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{Tracing: "off"})
	client := p.Client("notrace")
	m := testManifest(t, p, "notrace", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := client.WaitForState(id, StateCompleted, 2*time.Hour); err != nil {
		t.Fatalf("tracing-off job did not complete: %v (state %s, reason %q)", err, rec.State, rec.Reason)
	}
	if tree := p.Trace().Tree(id); tree != nil {
		t.Fatal("tracing off but a trace was recorded")
	}
}
