package dlaas

import (
	"sync"
	"testing"
)

// TestDependabilityCampaign runs the full compound-fault matrix — one
// fresh platform, one training job, one seeded fault schedule and one
// oracle verdict per scenario. It runs in the -short tier on purpose:
// this is the dependability gate, not a replay benchmark.
func TestDependabilityCampaign(t *testing.T) {
	t.Parallel()
	rep, err := RunCampaign(42)
	if err != nil {
		t.Fatalf("campaign failed to run: %v", err)
	}
	if len(rep.Scenarios) < 8 {
		t.Fatalf("matrix has %d scenarios, want >= 8", len(rep.Scenarios))
	}
	for _, sc := range rep.Scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if sc.Pass {
				return
			}
			for _, c := range sc.Verdict.Checks {
				if !c.Pass {
					t.Errorf("check %s failed: %s", c.Name, c.Detail)
				}
			}
			t.Errorf("scenario %s failed (terminal %s)", sc.Name, sc.Verdict.Terminal)
		})
	}
	if !rep.Pass {
		t.Error("campaign verdict: FAIL")
	}
}

// TestCampaignSeedDeterminism replays a slice of the matrix twice with
// the same seed: the jittered schedules must be identical step for step
// and the reports must fingerprint identically, while a different seed
// must produce a different schedule. (The fingerprint is timing-free:
// virtual firing times shift with goroutine interleaving, the schedule
// and verdicts must not.)
func TestCampaignSeedDeterminism(t *testing.T) {
	t.Parallel()
	names := []string{"learner-crash", "nfs-flap"}

	// The three campaign runs are independent, so run them
	// concurrently: cheaper, and a stronger claim — determinism must
	// hold across goroutine interleavings, not just within one.
	var a, b, c Report
	var ea, eb, ec error
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); a, ea = RunCampaign(7, names...) }()
	go func() { defer wg.Done(); b, eb = RunCampaign(7, names...) }()
	go func() { defer wg.Done(); c, ec = RunCampaign(8, "nfs-flap") }()
	wg.Wait()
	for _, err := range []error{ea, eb, ec} {
		if err != nil {
			t.Fatal(err)
		}
	}

	for k := range a.Scenarios {
		sa, sb := a.Scenarios[k], b.Scenarios[k]
		if sa.Seed != sb.Seed {
			t.Fatalf("%s: seeds differ across runs: %d vs %d", sa.Name, sa.Seed, sb.Seed)
		}
		if len(sa.Steps) != len(sb.Steps) {
			t.Fatalf("%s: step counts differ: %d vs %d", sa.Name, len(sa.Steps), len(sb.Steps))
		}
		for j := range sa.Steps {
			x, y := sa.Steps[j], sb.Steps[j]
			if x.At != y.At || x.Fault != y.Fault || x.Target != y.Target {
				t.Fatalf("%s step %d differs: (%v,%s,%s) vs (%v,%s,%s)",
					sa.Name, j, x.At, x.Fault, x.Target, y.At, y.Fault, y.Target)
			}
		}
	}
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("fingerprints differ for identical seed:\n  %s\n  %s", fa, fb)
	}

	same := true
	for j := range c.Scenarios[0].Steps {
		if c.Scenarios[0].Steps[j].At != a.Scenarios[1].Steps[j].At {
			same = false
		}
	}
	if same {
		t.Error("different campaign seed produced an identical jittered schedule")
	}
}
