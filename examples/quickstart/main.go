// Quickstart: boot a DLaaS platform, submit a single-GPU training job,
// follow it to completion, and read the collected logs and state history.
//
//	go run ./examples/quickstart
//
// Everything (Kubernetes, etcd, MongoDB, object store, GPUs) is
// simulated in-process on a virtual clock, so the "hour" of training
// finishes in about a second of wall time.
package main

import (
	"fmt"
	"log"
	"time"

	dlaas "repro"
)

func main() {
	// 1. Boot the platform: 4 GPU nodes, 2 API replicas, 1 LCM,
	//    3-way-replicated etcd, MongoDB, object store, shared NFS.
	p, err := dlaas.New(dlaas.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// 2. Stage a training dataset and a results bucket in the object
	//    store, owned by this tenant's credentials.
	creds := dlaas.Credentials{AccessKey: "quickstart", SecretKey: "qs-secret"}
	data, err := p.CreateDataset("qs-data", "train/cifar-large.rec", 2<<30, creds)
	if err != nil {
		log.Fatal(err)
	}
	results, err := p.CreateResultsBucket("qs-results", creds)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Submit a job: ResNet-50 on TensorFlow, one learner, one K80.
	client := p.Client("quickstart")
	id, err := client.Submit(&dlaas.Manifest{
		Name:               "my-first-job",
		Framework:          "tensorflow",
		Model:              "resnet50",
		Learners:           1,
		GPUsPerLearner:     1,
		BatchPerGPU:        32,
		Epochs:             1,
		DatasetImages:      10000,
		TrainingData:       data,
		Results:            results,
		CheckpointInterval: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s — the job is durably recorded and cannot be lost\n", id)

	// 4. Follow it to completion.
	rec, err := client.WaitForState(id, dlaas.StateCompleted, 6*time.Hour)
	if err != nil {
		log.Fatalf("job ended %s: %v", rec.State, err)
	}
	fmt.Printf("job %s completed\n\n", id)

	// 5. The state history carries the timestamps users rely on for
	//    profiling and debugging.
	events, err := client.Events(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("state history (cluster time):")
	for _, ev := range events {
		fmt.Printf("  %s  %s\n", ev.Time.Format("15:04:05"), ev.State)
	}

	// 6. Training logs were streamed to the results bucket and survive
	//    the job's teardown.
	logText, err := client.Logs(id, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearner log:\n%s", logText)
}
