// Multi-tenancy: three tenants share one GPU cluster. The example shows
// the isolation mechanisms the paper requires for running arbitrary
// customer code side by side — credentialed object-store buckets,
// tenant-scoped API access, and network policies that wall each job's
// learners off from other tenants and from platform services — plus
// GPU-capacity queueing when tenants oversubscribe the cluster.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"time"

	dlaas "repro"
)

func main() {
	// A deliberately small cluster: 2 nodes x 2 GPUs. Three 2-GPU jobs
	// cannot all run at once, so one queues until capacity frees.
	p, err := dlaas.New(dlaas.Options{Nodes: 2, GPUsPerNode: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	tenants := []string{"team-vision", "team-speech", "team-nlp"}
	jobs := map[string]string{}
	for _, tenant := range tenants {
		creds := dlaas.Credentials{AccessKey: tenant, SecretKey: tenant + "-secret"}
		data, err := p.CreateDataset("data-"+tenant, "train.rec", 1<<30, creds)
		if err != nil {
			log.Fatal(err)
		}
		results, err := p.CreateResultsBucket("results-"+tenant, creds)
		if err != nil {
			log.Fatal(err)
		}
		id, err := p.Client(tenant).Submit(&dlaas.Manifest{
			Name:           tenant + "-train",
			Framework:      "tensorflow",
			Model:          "resnet50",
			Learners:       2,
			GPUsPerLearner: 1,
			BatchPerGPU:    32,
			Epochs:         1,
			DatasetImages:  6000,
			TrainingData:   data,
			Results:        results,
		})
		if err != nil {
			log.Fatal(err)
		}
		jobs[tenant] = id
		fmt.Printf("%-12s submitted %s (2 GPUs)\n", tenant, id)
	}

	// Demonstrate isolation while the jobs contend for GPUs.
	intruder := p.Client("team-vision")
	if _, err := intruder.Status(jobs["team-speech"]); err != nil {
		fmt.Printf("\ncross-tenant status read rejected: %v\n", err)
	}
	evil := dlaas.Credentials{AccessKey: "team-vision", SecretKey: "team-vision-secret"}
	if _, err := p.ObjectStore().List("data-team-speech", evil); err != nil {
		fmt.Printf("cross-tenant bucket access rejected: %v\n", err)
	}

	// All three jobs complete — the third waits for GPUs, it is not
	// rejected (the scheduler queues it).
	fmt.Println("\nwaiting for all tenants' jobs (the cluster fits only two at a time)...")
	for _, tenant := range tenants {
		start := p.Clock().Now()
		rec, err := p.Client(tenant).WaitForState(jobs[tenant], dlaas.StateCompleted, 24*time.Hour)
		if err != nil {
			log.Fatalf("%s: job ended %s: %v", tenant, rec.State, err)
		}
		fmt.Printf("%-12s %s completed (waited+ran %v cluster time)\n",
			tenant, jobs[tenant], p.Clock().Since(start).Round(time.Second))
	}

	// Network-policy check on a fresh pair of running jobs is covered in
	// the test suite; here we show the per-tenant job listing view.
	fmt.Println("\nper-tenant views:")
	for _, tenant := range tenants {
		recs, err := p.Client(tenant).List()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s sees %d job(s)\n", tenant, len(recs))
	}
}
