// Chaos: exercise the paper's dependability claims live. While one
// training job runs, this example kills — in order — an API replica, the
// LCM, the job's Guardian, its Helper pod, and finally its Learner, and
// shows that (a) each component recovers in seconds, (b) the job never
// fails, and (c) the learner resumes from its checkpoint losing at most
// one checkpoint interval of work.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	dlaas "repro"
)

func main() {
	p, err := dlaas.New(dlaas.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	creds := dlaas.Credentials{AccessKey: "chaos-demo", SecretKey: "cd-secret"}
	data, err := p.CreateDataset("cd-data", "train.rec", 4<<30, creds)
	if err != nil {
		log.Fatal(err)
	}
	results, err := p.CreateResultsBucket("cd-results", creds)
	if err != nil {
		log.Fatal(err)
	}
	client := p.Client("chaos-demo")
	id, err := client.Submit(&dlaas.Manifest{
		Name:               "chaos-victim",
		Framework:          "tensorflow",
		Model:              "resnet50",
		Learners:           1,
		GPUsPerLearner:     1,
		BatchPerGPU:        32,
		Epochs:             2,
		DatasetImages:      40000,
		TrainingData:       data,
		Results:            results,
		CheckpointInterval: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.WaitForState(id, dlaas.StateProcessing, 2*time.Hour); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s is training; starting the kill sequence\n\n", id)

	inj := p.Chaos()
	sequence := []struct {
		name     string
		selector map[string]string
	}{
		{"API replica", map[string]string{"app": "dlaas-api"}},
		{"LCM", map[string]string{"app": "dlaas-lcm"}},
		{"Guardian", map[string]string{"app": "dlaas-guardian", "job": id}},
		{"Helper pod", map[string]string{"app": "dlaas-helper", "job": id}},
		{"Learner", map[string]string{"app": "dlaas-learner", "job": id}},
	}
	for _, target := range sequence {
		recovery, err := inj.MeasurePodRecovery(target.selector, 5*time.Minute)
		if err != nil {
			log.Fatalf("%s did not recover: %v", target.name, err)
		}
		fmt.Printf("killed %-12s -> recovered in %4.1fs cluster time\n", target.name, recovery.Seconds())
		p.Clock().Sleep(time.Minute) // let the dust settle between kills
	}

	fmt.Println("\nwaiting for the job to finish anyway...")
	rec, err := client.WaitForState(id, dlaas.StateCompleted, 48*time.Hour)
	if err != nil {
		log.Fatalf("job ended %s: %v", rec.State, err)
	}
	fmt.Printf("job completed despite five component kills\n")

	logText, err := client.Logs(id, 0)
	if err != nil {
		log.Fatal(err)
	}
	if strings.Contains(logText, "resumed from checkpoint") {
		fmt.Println("learner log confirms checkpoint resume after its crash:")
		for _, line := range strings.Split(logText, "\n") {
			if strings.Contains(line, "resumed") || strings.Contains(line, "starting") {
				fmt.Println("  " + line)
			}
		}
	}
}
