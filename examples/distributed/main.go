// Distributed training: a Horovod-style job with four learners, each
// holding one GPU, synchronizing gradients by ring all-reduce over the
// datacenter network. The example shows what the paper's StatefulSet
// design buys: stable learner identities, per-learner status and logs,
// and all-reduce scaling costs that depend on the model's gradient size.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	dlaas "repro"
)

func main() {
	p, err := dlaas.New(dlaas.Options{Nodes: 4, GPUsPerNode: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	creds := dlaas.Credentials{AccessKey: "research", SecretKey: "r-secret"}
	data, err := p.CreateDataset("imagenet", "train/imagenet-1k.rec", 140<<30, creds)
	if err != nil {
		log.Fatal(err)
	}
	results, err := p.CreateResultsBucket("research-results", creds)
	if err != nil {
		log.Fatal(err)
	}
	client := p.Client("research")

	// Compare the same distributed job across two models to see the
	// communication cost difference (VGG-16 ships 5x the gradients of
	// InceptionV3 per step).
	for _, model := range []string{"inceptionv3", "vgg16"} {
		id, err := client.Submit(&dlaas.Manifest{
			Name:               "dist-" + model,
			Framework:          "horovod",
			Model:              model,
			Learners:           4,
			GPUsPerLearner:     1,
			BatchPerGPU:        32,
			Epochs:             1,
			DatasetImages:      40000,
			TrainingData:       data,
			Results:            results,
			CheckpointInterval: 5 * time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}

		start := p.Clock().Now()
		rec, err := client.WaitForState(id, dlaas.StateCompleted, 24*time.Hour)
		if err != nil {
			log.Fatalf("%s: job ended %s: %v", model, rec.State, err)
		}
		elapsed := p.Clock().Since(start)
		fmt.Printf("%-12s 4 learners x 1 GPU: completed in %v cluster time\n", model, elapsed.Round(time.Second))

		// Every learner kept its own log under its stable identity.
		for l := 0; l < 4; l++ {
			text, err := client.Logs(id, l)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  learner-%d log: %d bytes\n", l, len(text))
		}
	}

	fmt.Println("\nNote how VGG-16 takes disproportionately longer than its extra")
	fmt.Println("FLOPs imply: its 552MB gradient all-reduce rides the same 1GbE")
	fmt.Println("fabric every step — the effect behind the paper's Fig. 3.")
}
