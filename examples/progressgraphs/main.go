// Progress graphs: reproduce the paper's observation that "training
// progress graphs differ (slightly) between a job that never experienced
// a failure and a job that did" — the reason DLaaS notifies users about
// learner restarts. Two identical jobs run; one learner is crashed
// mid-training. The crashed job's progress series shows a rollback to
// its last checkpoint; the clean one is monotone.
//
//	go run ./examples/progressgraphs
package main

import (
	"fmt"
	"log"
	"time"

	dlaas "repro"
)

func main() {
	p, err := dlaas.New(dlaas.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	creds := dlaas.Credentials{AccessKey: "graphs", SecretKey: "g-secret"}
	data, err := p.CreateDataset("g-data", "train.rec", 4<<30, creds)
	if err != nil {
		log.Fatal(err)
	}
	results, err := p.CreateResultsBucket("g-results", creds)
	if err != nil {
		log.Fatal(err)
	}
	client := p.Client("graphs")

	submit := func(name string) string {
		id, err := client.Submit(&dlaas.Manifest{
			Name:               name,
			Framework:          "tensorflow",
			Model:              "resnet50",
			Learners:           1,
			GPUsPerLearner:     1,
			BatchPerGPU:        32,
			Epochs:             1,
			DatasetImages:      30000,
			TrainingData:       data,
			Results:            results,
			CheckpointInterval: time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		return id
	}

	clean := submit("clean-run")
	crashed := submit("crashed-run")

	// Let the crashed job train past a checkpoint, then kill its learner.
	if _, err := client.WaitForState(crashed, dlaas.StateProcessing, time.Hour); err != nil {
		log.Fatal(err)
	}
	p.Clock().Sleep(3 * time.Minute)
	pods := p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": crashed})
	if len(pods) == 0 {
		log.Fatal("no learner pod to crash")
	}
	fmt.Printf("crashing learner of %s mid-training...\n\n", crashed)
	if err := p.Chaos().KillPod(pods[0].Name()); err != nil {
		log.Fatal(err)
	}

	for _, id := range []string{clean, crashed} {
		if _, err := client.WaitForState(id, dlaas.StateCompleted, 12*time.Hour); err != nil {
			log.Fatal(err)
		}
	}

	for _, job := range []struct{ name, id string }{{"clean", clean}, {"crashed", crashed}} {
		points, err := client.Metrics(job.id, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s job %s — %d progress samples:\n", job.name, job.id, len(points))
		prev := int64(-1)
		rollbacks := 0
		for _, pt := range points {
			marker := ""
			if prev >= 0 && pt.Images < prev {
				marker = "   <-- ROLLBACK to last checkpoint (restart)"
				rollbacks++
			}
			fmt.Printf("  images=%6d  loss=%.3f%s\n", pt.Images, pt.Loss, marker)
			prev = pt.Images
		}
		fmt.Printf("  rollbacks: %d\n\n", rollbacks)
	}
	fmt.Println("The crashed job's graph is distinguishable from the clean run —")
	fmt.Println("exactly why the platform notifies users when learners restart.")
}
