// Benchmarks regenerating every table/figure in the paper's evaluation
// (Sec. IV), plus ablations for the design choices DESIGN.md calls out.
// Run with:
//
//	go test -bench=. -benchmem
//
// Fig. 2 and Fig. 3 are analytic-model sweeps (instant); Fig. 4 boots
// the full platform and crash-injects every component, so it dominates
// bench wall time. Tables are emitted via b.Log; run with -v to see
// them, or use cmd/dlaas-bench for plain output.
package dlaas_test

import (
	"fmt"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dlaas "repro"

	"repro/internal/core/guardian"
	"repro/internal/core/learner"
	"repro/internal/etcd"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/trainsim"

	"repro/internal/clock"
)

// BenchmarkFig2 regenerates the paper's Fig. 2: DLaaS vs bare-metal
// throughput difference for VGG-16/Caffe and InceptionV3/TensorFlow on
// 1-4 K80 GPUs. The reported metric is the mean overhead percent.
func BenchmarkFig2(b *testing.B) {
	var rows []experiments.Fig2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig2(uint64(i))
	}
	mean := 0.0
	for _, r := range rows {
		mean += r.DiffPercent
	}
	mean /= float64(len(rows))
	b.ReportMetric(mean, "mean-overhead-%")
	b.Log("\n" + experiments.FormatFig2(rows))
}

// BenchmarkFig3 regenerates the paper's Fig. 3: DLaaS (PCIe P100) vs
// NVIDIA DGX-1 on the TensorFlow HPM benchmarks.
func BenchmarkFig3(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3(uint64(i))
	}
	var max float64
	for _, r := range rows {
		if r.DiffPercent > max {
			max = r.DiffPercent
		}
	}
	b.ReportMetric(max, "max-degradation-%")
	b.Log("\n" + experiments.FormatFig3(rows))
}

// BenchmarkFig4 regenerates the paper's Fig. 4: crash-recovery time per
// component, measured by killing pods on the full platform. Durations
// are virtual (cluster) time; the metric reports each component's mean
// in seconds.
func BenchmarkFig4(b *testing.B) {
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig4(experiments.Fig4Options{SamplesPerComponent: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		var sum time.Duration
		for _, s := range r.Samples {
			sum += s
		}
		mean := sum / time.Duration(len(r.Samples))
		b.ReportMetric(mean.Seconds(), r.Component+"-recovery-s")
	}
	b.Log("\n" + experiments.FormatFig4(rows))
}

// BenchmarkAblationCheckpointInterval quantifies the paper's checkpoint
// tradeoff ("the checkpointing interval depends on the tolerance level
// of the user to failures"): training-time overhead vs expected lost
// work, for VGG-16 on a P100, across intervals.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	cfg := trainsim.Config{
		Model:     trainsim.VGG16,
		Framework: trainsim.TensorFlow,
		GPU:       gpu.P100,
		NumGPUs:   1,
		Overheads: trainsim.DLaaS(),
	}
	ckpt := cfg.CheckpointTime()
	for _, interval := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour, 6 * time.Hour} {
		b.Run(interval.String(), func(b *testing.B) {
			var overheadPct, expectedLoss float64
			for i := 0; i < b.N; i++ {
				overheadPct = ckpt.Seconds() / interval.Seconds() * 100
				expectedLoss = interval.Seconds() / 2 // mean lost work on crash
			}
			b.ReportMetric(overheadPct, "ckpt-overhead-%")
			b.ReportMetric(expectedLoss, "expected-lost-s")
		})
	}
}

// BenchmarkAblationSyncStrategy compares ring all-reduce against a
// central parameter server for 4-learner VGG-16 over 1GbE — the
// distributed-training substrate choice.
func BenchmarkAblationSyncStrategy(b *testing.B) {
	base := trainsim.Config{
		Model:     trainsim.VGG16,
		Framework: trainsim.Horovod,
		GPU:       gpu.P100,
		NumGPUs:   4,
		Overheads: trainsim.DLaaS(),
	}
	for _, mode := range []struct {
		name string
		sync trainsim.SyncMode
	}{
		{"allreduce", trainsim.SyncAllReduce},
		{"paramserver", trainsim.SyncParameterServer},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := base
			cfg.Sync = mode.sync
			var tput float64
			for i := 0; i < b.N; i++ {
				tput = cfg.Throughput()
			}
			b.ReportMetric(tput, "img/s")
		})
	}
}

// BenchmarkEtcdStatusPipeline measures the replicated status-update path
// (controller -> etcd -> Guardian): linearizable puts and range reads
// through the 3-node Raft cluster.
func BenchmarkEtcdStatusPipeline(b *testing.B) {
	clk := clock.NewSim()
	defer clk.Close()
	store := etcd.New(3, clk)
	defer store.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("/dlaas/jobs/job-1/learners/%d/status", i%4)
		if _, err := store.Put(key, "TRAINING"); err != nil {
			b.Fatal(err)
		}
		if _, err := store.Range("/dlaas/jobs/job-1/learners/"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEtcdReplication quantifies the efficiency cost of the
// dependability choice the paper highlights — 3-way-replicated etcd for
// status updates — by measuring the virtual-time commit latency of a
// status Put at replication factors 1, 3 and 5.
func BenchmarkAblationEtcdReplication(b *testing.B) {
	for _, n := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("replicas-%d", n), func(b *testing.B) {
			clk := clock.NewSim()
			defer clk.Close()
			store := etcd.New(n, clk)
			defer store.Close()
			// Warm up: wait for a leader via a first write.
			if _, err := store.Put("/warm", "x"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := clk.Now()
			for i := 0; i < b.N; i++ {
				if _, err := store.Put("/jobs/j/learners/0/status", "TRAINING"); err != nil {
					b.Fatal(err)
				}
			}
			virtual := clk.Since(start)
			b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtual-ms/op")
		})
	}
}

// BenchmarkEtcdReads compares the four read modes on the hottest path
// the control plane has — etcd Get/Range — with 64 concurrent readers
// on a 3-node cluster whose surviving follower is slow (+5ms one-way)
// and whose original leader is partitioned mid-run, so the stale-leader
// hazards are live and every linearizable answer comes from the
// successor's quorum. Reported per mode: quorum confirmation rounds per
// linearizable read (the PR 9 headline — leaseread amortizes to ~0 vs
// exactly 1 in readindex mode), lease fast-path reads per read, Raft
// proposals per read (the PR 5 invariant: only propose mode pays), and
// virtual-time latency per read. The loop itself is the leader-
// partition linearizability probe: every read must return the
// acknowledged post-partition value in every mode (the stale isolated
// leader is never allowed to answer; serializable mode passes because
// freshest-replica selection skips the lagging minority). Run with
// -benchtime=64x — at 1x there is no read concurrency for coalescing
// or the lease to amortize over.
func BenchmarkEtcdReads(b *testing.B) {
	const keys = 16
	const readers = 64
	modes := []string{
		etcd.ReadModeLease, etcd.ReadModeReadIndex,
		etcd.ReadModePropose, etcd.ReadModeSerializable,
	}
	for _, mode := range modes {
		b.Run(mode, func(b *testing.B) {
			clk := clock.NewSim()
			defer clk.Close()
			s := etcd.New(3, clk)
			defer s.Close()
			if err := s.SetReadMode(mode); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < keys; i++ {
				if _, err := s.Put(fmt.Sprintf("/jobs/j1/learners/%d/status", i), "TRAINING"); err != nil {
					b.Fatal(err)
				}
			}
			// Degrade one follower, then partition the current leader (a
			// minority of one): the majority — successor plus the slow
			// follower — elects and keeps serving, and reads must keep
			// returning the acknowledged state, never the deposed
			// leader's view.
			lead := s.LeaderID()
			for id := 0; id < 3; id++ {
				if id != lead {
					s.SetNodeDelay(id, 5*time.Millisecond)
					break
				}
			}
			if lead >= 0 {
				s.PartitionNode(lead)
			}
			if _, err := s.Put("/jobs/j1/phase", "STORING"); err != nil {
				b.Fatal(err) // commits on the majority side
			}
			// Let the successor's check-quorum lease arm before measuring.
			clk.Sleep(200 * time.Millisecond)

			props := s.Proposals()
			rs0 := s.ReadStats()
			start := clk.Now()
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						v, found, err := s.Get("/jobs/j1/phase")
						if err != nil {
							b.Errorf("mode %s get: %v", mode, err)
							return
						}
						if !found || v != "STORING" {
							b.Errorf("mode %s read (%q,%v), want the acknowledged write", mode, v, found)
							return
						}
						kvs, err := s.Range("/jobs/j1/learners/")
						if err != nil {
							b.Errorf("mode %s range: %v", mode, err)
							return
						}
						if len(kvs) != keys {
							b.Errorf("mode %s ranged %d keys, want %d", mode, len(kvs), keys)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			rs1 := s.ReadStats()
			reads := float64(2 * b.N) // one Get + one Range per iteration
			b.ReportMetric(float64(rs1.Rounds-rs0.Rounds)/reads, "rounds/read")
			b.ReportMetric(float64(rs1.LeaseReads-rs0.LeaseReads)/reads, "lease-reads/read")
			b.ReportMetric(float64(s.Proposals()-props)/reads, "proposals/read")
			b.ReportMetric(float64(clk.Since(start).Microseconds())/reads/1000, "virtual-ms/read")
		})
	}
}

// BenchmarkEtcdWrites measures the replicated write path under the
// conditions the control plane actually faces: 64 concurrent writers
// (every learner, LCM, and controller mutating job state at once) on a
// 3-node cluster whose third replica is both slow (+5ms one-way) and
// flapping (periodic short partitions). Three A/B rows:
//
//	batch-pipeline:  group commit + pipelined AppendEntries (default)
//	single-pipeline: one proposal per write, pipelined replication
//	batch-stopwait:  group commit over stop-and-wait replication
//
// Reported per row: writes per Raft proposal (group commit's coalescing
// ratio — per-proposal throughput), proposals per write, batch occupancy
// (sub-commands per batch round), and p50/p99 commit latency in virtual
// ms. The headline claims are batch-pipeline sustaining >= 3x the
// per-proposal write throughput of single mode, and p99 commit latency
// staying bounded despite the degraded follower (commits need only the
// fast quorum). Wall-virtual throughput is deliberately not reported:
// the driver runs in real time against the idle-advancing sim clock, so
// elapsed virtual time is quantized by the flap-cycle timers rather
// than by replication work.
func BenchmarkEtcdWrites(b *testing.B) {
	rows := []struct {
		name        string
		write, repl string
	}{
		{"batch-pipeline", etcd.WriteModeBatch, etcd.ReplicationPipeline},
		{"single-pipeline", etcd.WriteModeSingle, etcd.ReplicationPipeline},
		{"batch-stopwait", etcd.WriteModeBatch, etcd.ReplicationStopWait},
	}
	const writers = 64
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			clk := clock.NewSim()
			defer clk.Close()
			s, err := etcd.NewWithOptions(3, clk, etcd.StoreOptions{
				WriteMode:   row.write,
				Replication: row.repl,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Put("/bench/warm", "up"); err != nil {
				b.Fatal(err)
			}

			// Degrade one follower, never the leader: +5ms one-way on
			// every message to it, plus a flap cycle (60ms partitioned,
			// 200ms healed — short enough that its election timer never
			// fires, so the fault stays a replication fault rather than
			// a leadership fault).
			victim := -1
			lead := s.LeaderID()
			for id := 0; id < 3; id++ {
				if id != lead {
					victim = id
					break
				}
			}
			s.SetNodeDelay(victim, 5*time.Millisecond)
			stopFlap := make(chan struct{})
			var flapWG sync.WaitGroup
			flapWG.Add(1)
			go func() {
				defer flapWG.Done()
				for {
					select {
					case <-stopFlap:
						return
					default:
					}
					s.PartitionNode(victim)
					clk.Sleep(60 * time.Millisecond)
					s.HealNode(victim)
					clk.Sleep(200 * time.Millisecond)
				}
			}()

			props := s.Proposals()
			batches0, cmds0 := s.BatchStats()
			lat := make([]time.Duration, b.N)
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						t0 := clk.Now()
						if _, err := s.Put(fmt.Sprintf("/bench/w%d", i), fmt.Sprintf("v%d", i)); err != nil {
							b.Errorf("write %d: %v", i, err)
							return
						}
						lat[i] = clk.Now().Sub(t0)
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			close(stopFlap)
			flapWG.Wait()

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			n := float64(b.N)
			proposals := float64(s.Proposals() - props)
			if proposals > 0 {
				b.ReportMetric(n/proposals, "writes/proposal")
			}
			b.ReportMetric(proposals/n, "proposals/write")
			if batches, cmds := s.BatchStats(); batches > batches0 {
				b.ReportMetric(float64(cmds-cmds0)/float64(batches-batches0), "cmds/batch")
			}
			b.ReportMetric(float64(lat[len(lat)/2].Microseconds())/1000, "p50-virtual-ms")
			b.ReportMetric(float64(lat[(len(lat)*99)/100].Microseconds())/1000, "p99-virtual-ms")
		})
	}
}

// BenchmarkSubmitPath measures the durable submission path: manifest
// validation + MongoDB insert + LCM dispatch, end to end through the
// load-balanced API.
func BenchmarkSubmitPath(b *testing.B) {
	p, err := dlaas.New(dlaas.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	client := p.Client("bench")
	creds := dlaas.Credentials{AccessKey: "bench", SecretKey: "s"}
	data, err := p.CreateDataset("bench-data", "train.rec", 1<<30, creds)
	if err != nil {
		b.Fatal(err)
	}
	results, err := p.CreateResultsBucket("bench-results", creds)
	if err != nil {
		b.Fatal(err)
	}
	m := &dlaas.Manifest{
		Name: "bench", Framework: "tensorflow", Model: "resnet50",
		Learners: 1, GPUsPerLearner: 1, BatchPerGPU: 32, Epochs: 1,
		DatasetImages: 1000, TrainingData: data, Results: results,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Submit(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerPlacement measures GPU-aware pod placement
// throughput on a 32-node cluster.
func BenchmarkSchedulerPlacement(b *testing.B) {
	clk := clock.NewSim()
	defer clk.Close()
	nodes := make([]kube.NodeSpec, 32)
	for i := range nodes {
		nodes[i] = kube.NodeSpec{Name: fmt.Sprintf("n%02d", i), GPUs: 1 << 30, GPUType: "K80"}
	}
	c := kube.NewCluster(kube.Config{Clock: clk}, nodes...)
	defer c.Stop()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := kube.PodSpec{
			Name:          fmt.Sprintf("p%d", i),
			GPUs:          1,
			RestartPolicy: kube.RestartNever,
			Containers: []kube.ContainerSpec{{
				Name: "c",
				Run:  func(*kube.ContainerCtx) int { return 0 },
			}},
		}
		if _, err := c.CreatePod(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGangScheduler measures the gang scheduler under a mixed
// 1/2/4-learner workload on a 16-node (64 GPU) cluster: mean placement
// latency (virtual time from submission to atomic admission of the whole
// gang) and mean cluster GPU utilization while the queue drains.
func BenchmarkGangScheduler(b *testing.B) {
	clk := clock.NewSim()
	defer clk.Close()
	nodes := make([]kube.NodeSpec, 16)
	for i := range nodes {
		nodes[i] = kube.NodeSpec{Name: fmt.Sprintf("n%02d", i), GPUs: 4, GPUType: "K80"}
	}
	c := kube.NewCluster(kube.Config{Clock: clk}, nodes...)
	defer c.Stop()
	const totalGPUs = 16 * 4
	const memberRuntime = 30 * time.Second // virtual training time per member
	memberCounts := []int{1, 2, 4}

	var utilSum float64
	utilSamples := 0
	sampleUtil := func() {
		utilSum += float64(totalGPUs-c.FreeGPUs("")) / totalGPUs
		utilSamples++
	}

	b.ResetTimer()
	gangs := make([]*kube.Gang, b.N)
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("bgang-%d", i)
		members := memberCounts[i%len(memberCounts)]
		g, err := c.SubmitGang(kube.GangSpec{
			Name: name, Tenant: fmt.Sprintf("team-%d", i%8),
			Members: members, GPUsPerMember: 1, GPUType: "K80",
		})
		if err != nil {
			b.Fatal(err)
		}
		gangs[i] = g
		for m := 0; m < members; m++ {
			spec := kube.PodSpec{
				Name:          fmt.Sprintf("%s-%d", name, m),
				Gang:          name,
				GPUs:          1,
				GPUType:       "K80",
				RestartPolicy: kube.RestartNever,
				Labels:        map[string]string{"bgang": name},
				Containers: []kube.ContainerSpec{{
					Name: "learn",
					Run:  func(ctx *kube.ContainerCtx) int { ctx.Sleep(memberRuntime); return 0 },
				}},
			}
			if _, err := c.CreatePod(spec); err != nil {
				b.Fatal(err)
			}
		}
		clk.Sleep(250 * time.Millisecond) // submission cadence
		sampleUtil()
	}
	// Drain: release each gang once its members finish, so queued gangs
	// admit; sample utilization as the backlog clears.
	for {
		live := 0
		for _, g := range gangs {
			if c.GangByName(g.Name()) == nil {
				continue
			}
			live++
			state := g.State()
			drained := len(c.Pods(map[string]string{"bgang": g.Name()})) == 0
			if (state == kube.GangAdmitted && drained) || state == kube.GangPreempted {
				c.CancelGang(g.Name())
			}
		}
		if live == 0 {
			break
		}
		clk.Sleep(time.Second)
		sampleUtil()
	}
	var latency time.Duration
	for _, g := range gangs {
		latency += g.PlacementLatency()
	}
	b.ReportMetric(float64(latency.Milliseconds())/float64(b.N), "placement-ms/gang")
	b.ReportMetric(utilSum/float64(utilSamples)*100, "gpu-util-%")
}

// BenchmarkMetadataStore measures the sharded MVCC metadata-plane
// engine under a job-record workload: ~J concurrent job workers, each
// operation a status-update Put plus a point Get on that job's record,
// with every 8th operation instead a snapshot scan of the job's tenant
// (the GC/list path, which must never block writers). Run at 1k and 10k
// concurrent jobs with 1 shard (the pre-refactor single-lock layout)
// versus the default shard count; reported metrics are throughput
// (ops/s) and p99 operation latency (µs). Multi-shard throughput at 10k
// jobs strictly above single-shard is the scaling headroom this engine
// exists to provide.
func BenchmarkMetadataStore(b *testing.B) {
	jobKey := func(j int) string { return fmt.Sprintf("jobs/t%02d/j%05d", j%64, j) }
	tenantPrefix := func(j int) string { return fmt.Sprintf("jobs/t%02d/", j%64) }

	for _, jobs := range []int{1_000, 10_000} {
		for _, shards := range []int{1, store.DefaultShards} {
			b.Run(fmt.Sprintf("jobs-%d/shards-%d", jobs, shards), func(b *testing.B) {
				eng := store.NewEngine(store.Config{Shards: shards})
				defer eng.Close()
				for j := 0; j < jobs; j++ {
					if _, err := eng.Put(jobKey(j), `{"state":"QUEUED","attempts":0}`); err != nil {
						b.Fatal(err)
					}
				}

				var (
					latMu sync.Mutex
					lats  []time.Duration
					opSeq atomic.Int64
				)
				// One worker goroutine per concurrent job (approximately:
				// RunParallel spawns parallelism * GOMAXPROCS workers).
				par := jobs / runtime.GOMAXPROCS(0)
				if par < 1 {
					par = 1
				}
				b.SetParallelism(par)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					local := make([]time.Duration, 0, 4096)
					for pb.Next() {
						i := int(opSeq.Add(1))
						j := i % jobs
						start := time.Now() //lint:allow wallclock benchmark measures real wall latency, not virtual time
						if i%8 == 0 {
							if _, _, err := eng.Scan(tenantPrefix(j)); err != nil {
								b.Error(err)
								return
							}
						} else {
							val := fmt.Sprintf(`{"state":"PROCESSING","attempts":%d}`, i)
							if _, err := eng.Put(jobKey(j), val); err != nil {
								b.Error(err)
								return
							}
							if _, _, ok := eng.Get(jobKey(j)); !ok {
								b.Error("job record vanished")
								return
							}
						}
						if len(local) < cap(local) {
							local = append(local, time.Since(start)) //lint:allow wallclock benchmark measures real wall latency, not virtual time
						}
					}
					latMu.Lock()
					lats = append(lats, local...)
					latMu.Unlock()
				})
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
				if len(lats) > 0 {
					sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
					p99 := lats[len(lats)*99/100]
					b.ReportMetric(float64(p99.Microseconds()), "p99-µs")
				}
			})
		}
	}
}

// BenchmarkControlPlane compares the watch-driven control plane against
// the pre-refactor polling loops on identical single-learner jobs:
// end-to-end job-completion latency in virtual (cluster) time, and how
// many etcd Range scans the platform spent per completed job. Watch
// mode must come in strictly below poll mode on ranges/job — the poll
// loops burn a full Range per Guardian tick even when nothing changed,
// while watches react to the committed events themselves.
func BenchmarkControlPlane(b *testing.B) {
	for _, mode := range []string{"watch", "poll"} {
		b.Run(mode, func(b *testing.B) {
			p, err := dlaas.New(dlaas.Options{ControlPlane: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			client := p.Client("bench")
			creds := dlaas.Credentials{AccessKey: "bench", SecretKey: "s"}
			data, err := p.CreateDataset("bench-data", "train.rec", 1<<30, creds)
			if err != nil {
				b.Fatal(err)
			}
			results, err := p.CreateResultsBucket("bench-results", creds)
			if err != nil {
				b.Fatal(err)
			}
			m := &dlaas.Manifest{
				Name: "bench", Framework: "tensorflow", Model: "resnet50",
				Learners: 1, GPUsPerLearner: 1, BatchPerGPU: 32, Epochs: 1,
				DatasetImages: 2000, TrainingData: data, Results: results,
			}
			clk := p.Clock()
			rangesBefore := p.Etcd().RangeOps()
			var virtual time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := clk.Now()
				id, err := client.Submit(m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := client.WaitForState(id, dlaas.StateCompleted, 3*time.Hour); err != nil {
					b.Fatal(err)
				}
				virtual += clk.Since(start)
			}
			b.StopTimer()
			ranges := p.Etcd().RangeOps() - rangesBefore
			b.ReportMetric(float64(ranges)/float64(b.N), "etcd-ranges/job")
			b.ReportMetric(virtual.Seconds()/float64(b.N), "virtual-s/job")
		})
	}
}

// BenchmarkGracefulPreemption quantifies the eviction protocol's win:
// training images lost per eviction, graceful mode (the default
// checkpoint-before-preempt handshake) versus immediate mode (the
// Options.ImmediateEviction escape hatch, i.e. the pre-protocol kill).
// Each iteration trains a low-priority job with periodic checkpointing
// effectively off, samples its progress, preempts it with a
// high-priority job, and measures progress-at-eviction minus
// resume-point once the victim recovers. Graceful mode must come in
// near zero; immediate mode forfeits everything since the last periodic
// checkpoint (here: all of it).
func BenchmarkGracefulPreemption(b *testing.B) {
	resumedRe := regexp.MustCompile(`resumed from checkpoint at (\d+)/`)
	for _, mode := range []struct {
		name      string
		immediate bool
	}{
		{"graceful", false},
		{"immediate", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p, err := dlaas.New(dlaas.Options{Nodes: 1, GPUsPerNode: 1, EtcdReplicas: 1, ImmediateEviction: mode.immediate})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			clk := p.Clock()
			var lostSum, virtual float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submit := func(tenant string, images int64, priority int) (*dlaas.Client, string) {
					creds := dlaas.Credentials{AccessKey: tenant, SecretKey: tenant + "-s"}
					data, err := p.CreateDataset("data-"+tenant, "train.rec", 1<<30, creds)
					if err != nil {
						b.Fatal(err)
					}
					results, err := p.CreateResultsBucket("results-"+tenant, creds)
					if err != nil {
						b.Fatal(err)
					}
					client := p.Client(tenant)
					id, err := client.Submit(&dlaas.Manifest{
						Name: "evict-bench", Framework: "tensorflow", Model: "resnet50",
						Learners: 1, GPUsPerLearner: 1, BatchPerGPU: 32, Epochs: 1,
						DatasetImages: images, TrainingData: data, Results: results,
						CheckpointInterval: time.Hour, Priority: priority,
					})
					if err != nil {
						b.Fatal(err)
					}
					return client, id
				}
				start := clk.Now()
				victim, vid := submit(fmt.Sprintf("ev-%s-v%d", mode.name, i), 16000, 1)
				if _, err := victim.WaitForState(vid, dlaas.StateProcessing, time.Hour); err != nil {
					b.Fatal(err)
				}
				clk.Sleep(45 * time.Second) // accumulate un-checkpointed work
				// Progress at (just before) eviction, off the live volume.
				var p0 int64
				if vol, err := p.Cluster().NFS().Volume(guardian.VolumeName(vid)); err == nil {
					if raw, err := vol.Read(learner.ProgressPath(0)); err == nil {
						p0, _ = strconv.ParseInt(string(raw), 10, 64)
					}
				}
				hi, hid := submit(fmt.Sprintf("ev-%s-h%d", mode.name, i), 2000, 100)
				if _, err := hi.WaitForState(hid, dlaas.StateCompleted, 3*time.Hour); err != nil {
					b.Fatal(err)
				}
				if _, err := victim.WaitForState(vid, dlaas.StateCompleted, 12*time.Hour); err != nil {
					b.Fatal(err)
				}
				virtual += clk.Since(start).Seconds()
				resumed := int64(0)
				if logText, err := victim.Logs(vid, 0); err == nil {
					if m := resumedRe.FindAllStringSubmatch(logText, -1); len(m) > 0 {
						resumed, _ = strconv.ParseInt(m[len(m)-1][1], 10, 64)
					}
				}
				if lost := float64(p0 - resumed); lost > 0 {
					lostSum += lost
				}
			}
			b.ReportMetric(lostSum/float64(b.N), "lost-images/evict")
			b.ReportMetric(virtual/float64(b.N), "victim-virtual-s")
		})
	}
}

// BenchmarkTrainsimStepTime measures the analytic model itself (it backs
// every learner's pacing decisions, so it must be cheap).
func BenchmarkTrainsimStepTime(b *testing.B) {
	cfg := trainsim.Config{
		Model:     trainsim.ResNet50,
		Framework: trainsim.TensorFlow,
		GPU:       gpu.P100,
		NumGPUs:   4,
		Overheads: trainsim.DLaaS(),
	}
	var d time.Duration
	for i := 0; i < b.N; i++ {
		d = cfg.StepTime()
	}
	_ = d
}

// BenchmarkTraceOverhead measures what the tracing pipeline costs an
// end-to-end job: identical single-learner quickstart runs with tracing
// on (the default) versus off, reporting virtual completion latency,
// recorded span count, and wall-clock per job. The deterministic span
// recorder sits on every hot path (rpc calls, scheduler admission,
// learner chunks), so "on" must stay within noise of "off" — the spans
// are cheap map inserts under one mutex, no I/O.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, mode := range []string{"on", "off"} {
		b.Run(mode, func(b *testing.B) {
			p, err := dlaas.New(dlaas.Options{Tracing: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			client := p.Client("bench")
			creds := dlaas.Credentials{AccessKey: "bench", SecretKey: "s"}
			data, err := p.CreateDataset("bench-data", "train.rec", 1<<30, creds)
			if err != nil {
				b.Fatal(err)
			}
			results, err := p.CreateResultsBucket("bench-results", creds)
			if err != nil {
				b.Fatal(err)
			}
			m := &dlaas.Manifest{
				Name: "bench", Framework: "tensorflow", Model: "resnet50",
				Learners: 1, GPUsPerLearner: 1, BatchPerGPU: 32, Epochs: 1,
				DatasetImages: 2000, TrainingData: data, Results: results,
				CheckpointInterval: 30 * time.Second,
			}
			clk := p.Clock()
			var virtual time.Duration
			var spans int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := clk.Now()
				id, err := client.Submit(m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := client.WaitForState(id, dlaas.StateCompleted, 3*time.Hour); err != nil {
					b.Fatal(err)
				}
				virtual += clk.Since(start)
				if t := p.Trace().Tree(id); t != nil {
					var count func(sd *trace.SpanData) int
					count = func(sd *trace.SpanData) int {
						n := 1
						for _, c := range sd.Children {
							n += count(c)
						}
						return n
					}
					spans += count(t.Root)
				}
			}
			b.StopTimer()
			b.ReportMetric(virtual.Seconds()/float64(b.N), "virtual-s/job")
			b.ReportMetric(float64(spans)/float64(b.N), "spans/job")
		})
	}
}
