// Command dlaasctl is an interactive demonstration CLI: it boots an
// in-process DLaaS platform, runs the scripted scenario you pick, and
// prints what the platform does — submission, status transitions, logs,
// halting — the operations the paper's API exposes to users.
//
// Usage:
//
//	dlaasctl -scenario train          # submit and follow one job
//	dlaasctl -scenario halt           # submit, then halt mid-training
//	dlaasctl -scenario crash          # crash the learner mid-training
//	dlaasctl -scenario trace          # train, then print the span tree
//	                                    and critical-path attribution
//	dlaasctl -learners 2 -model vgg16 -framework caffe
//
// Everything runs on the virtual clock: hours of training complete in
// seconds of wall time, and all printed timestamps are cluster time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dlaas "repro"

	"repro/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "train", "train | halt | crash | trace")
	model := flag.String("model", "resnet50", "model: vgg16 | resnet50 | inceptionv3 | alexnet | googlenet")
	framework := flag.String("framework", "tensorflow", "framework: caffe | tensorflow | pytorch | torch | horovod")
	learners := flag.Int("learners", 1, "number of learners")
	epochs := flag.Int("epochs", 1, "training epochs")
	images := flag.Int64("images", 8000, "dataset size in images")
	flag.Parse()

	if err := run(*scenario, *model, *framework, *learners, *epochs, *images); err != nil {
		fmt.Fprintf(os.Stderr, "dlaasctl: %v\n", err)
		os.Exit(1)
	}
}

func run(scenario, model, framework string, learners, epochs int, images int64) error {
	fmt.Println("booting DLaaS platform (4 GPU nodes, 3-way etcd, 2 API replicas)...")
	p, err := dlaas.New(dlaas.Options{})
	if err != nil {
		return err
	}
	defer p.Close()

	client := p.Client("demo-tenant")
	creds := dlaas.Credentials{AccessKey: "demo-tenant", SecretKey: "demo-secret"}
	data, err := p.CreateDataset("demo-data", "train/dataset.rec", 8<<30, creds)
	if err != nil {
		return err
	}
	results, err := p.CreateResultsBucket("demo-results", creds)
	if err != nil {
		return err
	}

	m := &dlaas.Manifest{
		Name:               "demo-job",
		Framework:          framework,
		Model:              model,
		Learners:           learners,
		GPUsPerLearner:     1,
		BatchPerGPU:        32,
		Epochs:             epochs,
		DatasetImages:      images,
		TrainingData:       data,
		Results:            results,
		CheckpointInterval: 2 * time.Minute,
	}
	id, err := client.Submit(m)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s: %s/%s, %d learner(s), %d epoch(s) over %d images\n",
		id, model, framework, learners, epochs, images)

	switch scenario {
	case "train", "trace":
	case "halt":
		if _, err := client.WaitForState(id, dlaas.StateProcessing, time.Hour); err != nil {
			return err
		}
		fmt.Println("job is training; issuing user halt...")
		if _, err := client.Halt(id); err != nil {
			return err
		}
	case "crash":
		if _, err := client.WaitForState(id, dlaas.StateProcessing, time.Hour); err != nil {
			return err
		}
		pods := p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": id})
		if len(pods) == 0 {
			return fmt.Errorf("no learner pod to crash")
		}
		fmt.Printf("crashing learner pod %s (kubectl delete pod)...\n", pods[0].Name())
		if err := p.Chaos().KillPod(pods[0].Name()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	rec := followJob(p, client, id)
	fmt.Printf("\nfinal state: %s", rec.State)
	if rec.Reason != "" {
		fmt.Printf(" (%s)", rec.Reason)
	}
	fmt.Println()

	events, err := client.Events(id)
	if err != nil {
		return err
	}
	fmt.Println("\nstate history (cluster time):")
	for _, ev := range events {
		fmt.Printf("  %s  %-11s %s\n", ev.Time.Format("15:04:05"), ev.State, ev.Note)
	}

	logText, err := client.Logs(id, 0)
	if err == nil && logText != "" {
		fmt.Println("\nlearner-0 training log:")
		fmt.Print(logText)
	}

	if scenario == "trace" {
		t := p.Trace().Tree(id)
		if t == nil {
			return fmt.Errorf("no trace recorded for job %s", id)
		}
		fmt.Println("\njob span tree (virtual time):")
		fmt.Print(trace.FormatTree(t))
		fmt.Println("\ncritical-path attribution:")
		fmt.Print(trace.FormatAttribution(trace.CriticalPath(t)))
	}
	return nil
}

// followJob polls the job to a terminal state, printing transitions.
func followJob(p *dlaas.Platform, client *dlaas.Client, id string) dlaas.JobRecord {
	clk := p.Clock()
	last := dlaas.JobState("")
	var rec dlaas.JobRecord
	deadline := clk.Now().Add(24 * time.Hour)
	for clk.Now().Before(deadline) {
		r, err := client.Status(id)
		if err == nil {
			rec = r
			if rec.State != last {
				fmt.Printf("  [%s] %s\n", clk.Now().Format("15:04:05"), rec.State)
				last = rec.State
			}
			if rec.State.Terminal() {
				return rec
			}
		}
		clk.Sleep(2 * time.Second)
	}
	return rec
}
