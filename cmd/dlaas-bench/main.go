// Command dlaas-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	dlaas-bench -experiment fig2        # DLaaS vs bare metal (K80)
//	dlaas-bench -experiment fig3        # DLaaS vs NVIDIA DGX-1 (P100)
//	dlaas-bench -experiment fig4        # component crash-recovery times
//	dlaas-bench -experiment all         # everything
//	dlaas-bench -experiment fig4 -samples 5 -seed 7
//
// Figs. 2-3 evaluate the analytic performance model directly; Fig. 4
// boots the full simulated platform, trains a victim job, and
// crash-injects every component. All reported durations are cluster
// (virtual) time.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "fig2 | fig3 | fig4 | all")
	samples := flag.Int("samples", 3, "crash/recovery samples per component (fig4)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	switch *experiment {
	case "fig2", "fig3", "fig4", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	if *experiment == "fig2" || *experiment == "all" {
		fmt.Println("Fig. 2 — Performance overhead of DLaaS vs. IBM Cloud bare metal")
		fmt.Println("(images/sec for training; Caffe v1.0 and TensorFlow v1.5; PCIe K80)")
		fmt.Println()
		fmt.Print(experiments.FormatFig2(experiments.Fig2(uint64(*seed))))
		fmt.Println()
	}
	if *experiment == "fig3" || *experiment == "all" {
		fmt.Println("Fig. 3 — Performance overhead of DLaaS vs. NVIDIA DGX-1")
		fmt.Println("(TensorFlow HPM benchmarks; PCIe P100 vs NVLink SXM2 P100)")
		fmt.Println()
		fmt.Print(experiments.FormatFig3(experiments.Fig3(uint64(*seed))))
		fmt.Println()
	}
	if *experiment == "fig4" || *experiment == "all" {
		fmt.Println("Fig. 4 — Time taken to recover from crash failures, by component")
		fmt.Printf("(full-platform chaos run; %d samples per component; virtual time)\n", *samples)
		fmt.Println()
		rows, err := experiments.Fig4(experiments.Fig4Options{
			SamplesPerComponent: *samples,
			Seed:                *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig4 failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatFig4(rows))
		fmt.Println()
	}
}
