// Command dlaas-server boots an in-process DLaaS platform and serves its
// REST API over HTTP, so the platform can be driven with curl:
//
//	dlaas-server -addr :8080 &
//	curl -s -X POST localhost:8080/v1/models -H 'X-Tenant: me' -d @manifest.json
//	curl -s localhost:8080/v1/models -H 'X-Tenant: me'
//	curl -s localhost:8080/v1/models/job-000001/logs -H 'X-Tenant: me'
//
// A demo tenant ("demo", secret "demo-secret") with a staged dataset
// bucket "demo-data" (key "train.rec") and results bucket "demo-results"
// is created at startup so a first manifest can be submitted immediately.
// The cluster runs on the virtual clock: submitted jobs train at
// simulation speed, typically completing in wall-clock seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	dlaas "repro"

	"repro/internal/rest"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	nodes := flag.Int("nodes", 4, "GPU worker nodes")
	gpus := flag.Int("gpus", 4, "GPUs per node")
	flag.Parse()

	p, err := dlaas.New(dlaas.Options{Nodes: *nodes, GPUsPerNode: *gpus})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	creds := dlaas.Credentials{AccessKey: "demo", SecretKey: "demo-secret"}
	if _, err := p.CreateDataset("demo-data", "train.rec", 8<<30, creds); err != nil {
		log.Fatal(err)
	}
	if _, err := p.CreateResultsBucket("demo-results", creds); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DLaaS REST API listening on %s\n", *addr)
	fmt.Println(`demo tenant ready; example submission:
  curl -X POST localhost:8080/v1/models -H 'X-Tenant: demo' -d '{
    "name":"demo-job","framework":"tensorflow","model":"resnet50",
    "learners":1,"gpus_per_learner":1,"batch_per_gpu":32,"epochs":1,
    "dataset_images":10000,
    "training_data":{"bucket":"demo-data","key":"train.rec","access_key":"demo","secret_key":"demo-secret"},
    "results":{"bucket":"demo-results","access_key":"demo","secret_key":"demo-secret"}}'`)
	log.Fatal(http.ListenAndServe(*addr, rest.Handler(p)))
}
