// Command dlaas-chaos runs a scripted chaos campaign against a live
// platform instance: it submits a training job and then, while the job
// trains, repeatedly crashes a random mix of components — learners,
// helpers, Guardians, core services, even whole nodes — verifying after
// each injection that the platform recovers and the job still completes.
//
// Usage:
//
//	dlaas-chaos -duration 2h -injections 10 -seed 3
//
// Durations are cluster (virtual) time; the campaign typically finishes
// in seconds of wall time and prints a recovery report.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	dlaas "repro"
)

func main() {
	injections := flag.Int("injections", 8, "number of fault injections")
	gap := flag.Duration("gap", 3*time.Minute, "cluster-time gap between injections")
	seed := flag.Int64("seed", 1, "campaign seed")
	flag.Parse()

	if err := run(*injections, *gap, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "dlaas-chaos: %v\n", err)
		os.Exit(1)
	}
}

func run(injections int, gap time.Duration, seed int64) error {
	fmt.Println("booting platform and victim job...")
	p, err := dlaas.New(dlaas.Options{Seed: seed})
	if err != nil {
		return err
	}
	defer p.Close()

	client := p.Client("chaos")
	creds := dlaas.Credentials{AccessKey: "chaos", SecretKey: "chaos-secret"}
	data, err := p.CreateDataset("chaos-data", "train.rec", 4<<30, creds)
	if err != nil {
		return err
	}
	results, err := p.CreateResultsBucket("chaos-results", creds)
	if err != nil {
		return err
	}
	id, err := client.Submit(&dlaas.Manifest{
		Name: "chaos-victim", Framework: "tensorflow", Model: "resnet50",
		Learners: 2, GPUsPerLearner: 1, BatchPerGPU: 32,
		Epochs: 2, DatasetImages: 60000,
		TrainingData: data, Results: results,
		CheckpointInterval: 2 * time.Minute,
	})
	if err != nil {
		return err
	}
	if _, err := client.WaitForState(id, dlaas.StateProcessing, 2*time.Hour); err != nil {
		return err
	}
	fmt.Printf("victim job %s is training; beginning %d injections\n\n", id, injections)

	rng := rand.New(rand.NewSource(seed))
	targets := []struct {
		name     string
		selector map[string]string
	}{
		{"API", map[string]string{"app": "dlaas-api"}},
		{"LCM", map[string]string{"app": "dlaas-lcm"}},
		{"Guardian", map[string]string{"app": "dlaas-guardian", "job": id}},
		{"Helper", map[string]string{"app": "dlaas-helper", "job": id}},
		{"Learner", map[string]string{"app": "dlaas-learner", "job": id}},
	}
	clk := p.Clock()
	inj := p.Chaos()
	failures := 0
	for k := 0; k < injections; k++ {
		target := targets[rng.Intn(len(targets))]
		rec, err := inj.MeasurePodRecovery(target.selector, 5*time.Minute)
		if err != nil {
			fmt.Printf("%2d. %-9s INJECTION FAILED: %v\n", k+1, target.name, err)
			failures++
		} else {
			fmt.Printf("%2d. %-9s killed -> recovered in %5.1fs (cluster time)\n",
				k+1, target.name, rec.Seconds())
		}
		clk.Sleep(gap)
	}

	fmt.Println("\nwaiting for the victim job to complete despite the abuse...")
	rec, err := client.WaitForState(id, dlaas.StateCompleted, 24*time.Hour)
	if err != nil {
		return fmt.Errorf("victim job did not survive: %w (state %s)", err, rec.State)
	}
	fmt.Printf("victim job completed (deploy attempts: %d). %d/%d injections recovered.\n",
		rec.DeployAttempts, injections-failures, injections)
	return nil
}
