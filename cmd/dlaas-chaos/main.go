// Command dlaas-chaos runs the dependability campaign: a matrix of
// named compound-fault scenarios (learner crash loops, NFS volume
// flaps, etcd-leader partition during a node drain, node clock skew,
// cascading node loss, double faults), each executed as a seeded,
// replayable schedule against a fresh platform instance with a live
// training job, and each judged by an independent per-job verdict
// oracle.
//
// Usage:
//
//	dlaas-chaos                      # run the full matrix
//	dlaas-chaos -list                # list scenarios
//	dlaas-chaos -scenarios nfs-flap,clock-skew -seed 7
//	dlaas-chaos -out report.json     # write the machine-readable report
//
// All fault timing is cluster (virtual) time; a full campaign finishes
// in minutes of wall time. The exit status is 0 only if every scenario
// passes its verdict.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	dlaas "repro"
)

func main() {
	seed := flag.Int64("seed", 42, "campaign seed (same seed -> same schedules and report fingerprint)")
	scenarios := flag.String("scenarios", "", "comma-separated scenario names (default: full matrix)")
	out := flag.String("out", "", "write the JSON verdict report to this file")
	list := flag.Bool("list", false, "list scenario names and exit")
	flag.Parse()

	if *list {
		for _, s := range dlaas.CampaignScenarios() {
			fmt.Printf("%-28s %s\n", s[0], s[1])
		}
		return
	}

	var names []string
	if *scenarios != "" {
		for _, n := range strings.Split(*scenarios, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	if err := run(*seed, names, *out); err != nil {
		fmt.Fprintf(os.Stderr, "dlaas-chaos: %v\n", err)
		os.Exit(1)
	}
}

func run(seed int64, names []string, out string) error {
	fmt.Printf("dependability campaign: seed %d\n\n", seed)
	rep, err := dlaas.RunCampaign(seed, names...)
	if err != nil {
		return err
	}

	for _, sc := range rep.Scenarios {
		status := "PASS"
		if !sc.Pass {
			status = "FAIL"
		}
		fmt.Printf("%-28s %s  terminal=%-9s  %d steps  %5.0fs cluster time\n",
			sc.Name, status, sc.Verdict.Terminal, len(sc.Steps), sc.ElapsedVirtual.Seconds())
		for _, c := range sc.Verdict.Checks {
			mark := "ok"
			if !c.Pass {
				mark = "FAIL"
			}
			fmt.Printf("    %-22s %s", c.Name, mark)
			if c.Detail != "" {
				fmt.Printf("  (%s)", c.Detail)
			}
			fmt.Println()
		}
		for _, st := range sc.Steps {
			if st.Err != "" {
				fmt.Printf("    step %s@%v did not apply: %s\n", st.Fault, st.At, st.Err)
			}
		}
	}

	fmt.Printf("\nfingerprint: %s\n", rep.Fingerprint())

	if out != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}

	if !rep.Pass {
		return fmt.Errorf("campaign verdict: FAIL (%d scenarios)", len(rep.Scenarios))
	}
	fmt.Printf("campaign verdict: PASS (%d scenarios)\n", len(rep.Scenarios))
	return nil
}
