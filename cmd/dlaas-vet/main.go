// Command dlaas-vet runs the platform's domain-specific static
// analyzers (internal/lint) over module packages: virtual-clock
// purity, seeded randomness, order-stable map iteration, lock
// discipline, and goroutine lifecycle ownership.
//
// Usage:
//
//	dlaas-vet [flags] [packages]
//
//	dlaas-vet ./...                 # whole module, human output
//	dlaas-vet -json ./... > vet.json
//	dlaas-vet -rules wallclock,maporder ./internal/store
//
// Exit status is 1 when any active (unsuppressed) finding exists, 2 on
// operational errors. Suppressions are `//lint:allow <rule> <reason>`
// comments on the flagged line or the line above; the reason is
// mandatory. Policy (per-path rule scoping, lock order) loads from
// dlaas-vet.json at the module root unless -config overrides it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// report is the machine-readable output of one run — the artifact CI
// uploads so the suppression inventory stays visible.
type report struct {
	Packages int            `json:"packages"`
	Findings []lint.Finding `json:"findings"`
	// Counts is findings per "rule" and per "rule suppressed" key,
	// the per-rule inventory.
	Counts map[string]int `json:"counts"`
	// PerPackage counts active findings per package per rule.
	PerPackage map[string]map[string]int `json:"perPackage,omitempty"`
	Active     int                       `json:"active"`
	Suppressed int                       `json:"suppressed"`
	Pass       bool                      `json:"pass"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("dlaas-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the JSON finding report instead of human output")
	config := fs.String("config", "", "policy file (default: dlaas-vet.json at the module root)")
	rules := fs.String("rules", "", "comma-separated rule subset (default: all)")
	listRules := fs.Bool("list", false, "list rules and exit")
	showSuppressed := fs.Bool("suppressed", false, "also print suppressed findings in human output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ld, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlaas-vet:", err)
		return 2
	}
	cfgPath := *config
	if cfgPath == "" {
		cfgPath = filepath.Join(ld.ModuleRoot, "dlaas-vet.json")
	}
	policy, err := lint.LoadPolicy(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlaas-vet:", err)
		return 2
	}
	var selected []string
	if *rules != "" {
		known := make(map[string]bool)
		for _, n := range lint.AnalyzerNames() {
			known[n] = true
		}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !known[r] {
				fmt.Fprintf(os.Stderr, "dlaas-vet: unknown rule %q (known: %s)\n", r, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
			selected = append(selected, r)
		}
	}

	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlaas-vet:", err)
		return 2
	}

	rep := report{
		Counts:     make(map[string]int),
		PerPackage: make(map[string]map[string]int),
		Pass:       true,
	}
	for _, pkg := range pkgs {
		rep.Packages++
		findings := lint.Run(pkg, policy, selected...)
		for _, f := range findings {
			// Positions relative to the module root keep reports
			// machine-comparable across checkouts.
			if rel, rerr := filepath.Rel(ld.ModuleRoot, f.File); rerr == nil && !strings.HasPrefix(rel, "..") {
				f.File = filepath.ToSlash(rel)
			}
			rep.Findings = append(rep.Findings, f)
			if f.Suppressed {
				rep.Suppressed++
				rep.Counts[f.Rule+" suppressed"]++
				continue
			}
			rep.Active++
			rep.Counts[f.Rule]++
			pp := rep.PerPackage[f.Package]
			if pp == nil {
				pp = make(map[string]int)
				rep.PerPackage[f.Package] = pp
			}
			pp[f.Rule]++
		}
	}
	rep.Pass = rep.Active == 0

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "dlaas-vet:", err)
			return 2
		}
	} else {
		printHuman(rep, *showSuppressed)
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

func printHuman(rep report, showSuppressed bool) {
	for _, f := range rep.Findings {
		if f.Suppressed {
			if showSuppressed {
				fmt.Printf("%s:%d: [%s] suppressed (%s): %s\n", f.File, f.Line, f.Rule, f.Reason, f.Message)
			}
			continue
		}
		fmt.Printf("%s:%d: [%s] %s\n", f.File, f.Line, f.Rule, f.Message)
	}
	keys := make([]string, 0, len(rep.Counts))
	for k := range rep.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	summary := make([]string, 0, len(keys))
	for _, k := range keys {
		summary = append(summary, fmt.Sprintf("%s=%d", k, rep.Counts[k]))
	}
	status := "ok"
	if rep.Active > 0 {
		status = "FAIL"
	}
	fmt.Printf("dlaas-vet: %s — %d packages, %d active, %d suppressed", status, rep.Packages, rep.Active, rep.Suppressed)
	if len(summary) > 0 {
		fmt.Printf(" (%s)", strings.Join(summary, ", "))
	}
	fmt.Println()
}
