package dlaas

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core/api"
	"repro/internal/rpc"
)

// ErrDeadline indicates WaitForState timed out.
var ErrDeadline = errors.New("dlaas: deadline exceeded")

// clientRetryWindow is how long client calls ride out total service
// unavailability (e.g. every API replica crashed at once) before giving
// up — comfortably longer than the Fig. 4 API recovery time, so a
// client outlives any single-component outage without seeing an error.
const clientRetryWindow = 15 * time.Second

// clientRetryInterval paces the retries.
const clientRetryInterval = 250 * time.Millisecond

// call invokes an API method, transparently retrying while the service
// is unavailable (load-balancer fail-over handles single-instance
// crashes; this handles the window where no instance is up).
func call[Req, Resp any](c *Client, method string, req Req) (Resp, error) {
	deadline := c.p.clk.Now().Add(clientRetryWindow)
	for {
		resp, err := api.Call[Req, Resp](c.p.bus, method, req)
		if err == nil || !errors.Is(err, rpc.ErrUnavailable) || !c.p.clk.Now().Before(deadline) {
			return resp, err
		}
		c.p.clk.Sleep(clientRetryInterval)
	}
}

// Client is a tenant-scoped handle to the platform's API service. Calls
// are load-balanced across API instances and fail over transparently
// when an instance crashes — exactly what the paper's service-registry
// design provides.
type Client struct {
	p      *Platform
	tenant string
}

// Client returns a client acting as the given tenant ("" = admin).
func (p *Platform) Client(tenant string) *Client {
	return &Client{p: p, tenant: tenant}
}

// Tenant returns the client's tenant identity.
func (c *Client) Tenant() string { return c.tenant }

// Submit validates and durably records a training job, returning its ID.
// After Submit returns, the job cannot be lost by any platform crash.
func (c *Client) Submit(m *Manifest) (string, error) {
	raw, err := m.Encode()
	if err != nil {
		return "", err
	}
	resp, err := call[api.SubmitRequest, api.SubmitResponse](c, api.MethodSubmit,
		api.SubmitRequest{Tenant: c.tenant, Manifest: raw})
	if err != nil {
		return "", fmt.Errorf("submitting job: %w", err)
	}
	return resp.JobID, nil
}

// Status returns the job's current record.
func (c *Client) Status(jobID string) (JobRecord, error) {
	resp, err := call[api.StatusRequest, api.StatusResponse](c, api.MethodStatus,
		api.StatusRequest{Tenant: c.tenant, JobID: jobID})
	if err != nil {
		return JobRecord{}, err
	}
	return resp.Record, nil
}

// List returns the tenant's jobs in ID order.
func (c *Client) List() ([]JobRecord, error) {
	resp, err := call[api.ListRequest, api.ListResponse](c, api.MethodList,
		api.ListRequest{Tenant: c.tenant})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// Halt requests user-initiated termination.
func (c *Client) Halt(jobID string) (JobState, error) {
	resp, err := call[api.HaltRequest, api.HaltResponse](c, api.MethodHalt,
		api.HaltRequest{Tenant: c.tenant, JobID: jobID})
	if err != nil {
		return "", err
	}
	return resp.State, nil
}

// Logs returns the collected training log of one learner. Logs survive
// learner crashes and remain available after job completion (shipped to
// the results bucket by the log-collector).
func (c *Client) Logs(jobID string, learnerIdx int) (string, error) {
	resp, err := call[api.LogsRequest, api.LogsResponse](c, api.MethodLogs,
		api.LogsRequest{Tenant: c.tenant, JobID: jobID, Learner: learnerIdx})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Metrics returns a learner's training progress graph (time, images
// processed, loss). A job that was restarted shows a rollback to its
// last checkpoint in this series — the paper's "training progress
// graphs differ (slightly)" observation, and the reason users are
// notified of restarts.
func (c *Client) Metrics(jobID string, learnerIdx int) ([]MetricPoint, error) {
	resp, err := call[api.MetricsRequest, api.MetricsResponse](c, api.MethodMetrics,
		api.MetricsRequest{Tenant: c.tenant, JobID: jobID, Learner: learnerIdx})
	if err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// Events returns the job's timestamped state-transition history, the
// record users rely on for profiling and debugging.
func (c *Client) Events(jobID string) ([]Event, error) {
	resp, err := call[api.EventsRequest, api.EventsResponse](c, api.MethodEvents,
		api.EventsRequest{Tenant: c.tenant, JobID: jobID})
	if err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// ClusterInfo summarizes platform capacity and job load — why a job may
// be queueing, how much of the fleet is healthy.
func (c *Client) ClusterInfo() (ClusterInfo, error) {
	return call[api.ClusterInfoRequest, api.ClusterInfoResponse](c, api.MethodClusterInfo,
		api.ClusterInfoRequest{Tenant: c.tenant})
}

// WaitForState polls until the job reaches the wanted state (or any
// terminal state), in cluster time. It returns the final record; if the
// job lands in a different terminal state than wanted, an error
// describing it is returned alongside the record.
func (c *Client) WaitForState(jobID string, want JobState, timeout time.Duration) (JobRecord, error) {
	clk := c.p.clk
	deadline := clk.Now().Add(timeout)
	var last JobRecord
	for clk.Now().Before(deadline) {
		rec, err := c.Status(jobID)
		if err == nil {
			last = rec
			if rec.State == want {
				return rec, nil
			}
			if rec.State.Terminal() {
				return rec, fmt.Errorf("dlaas: job %s reached %s (%s), wanted %s",
					jobID, rec.State, rec.Reason, want)
			}
		}
		clk.Sleep(250 * time.Millisecond)
	}
	return last, fmt.Errorf("dlaas: job %s still %s after %v: %w", jobID, last.State, timeout, ErrDeadline)
}
