package dlaas

import (
	"fmt"
	"testing"
	"time"
)

// The tests in this file pin the watch-driven control plane end to end:
// Guardian resume-from-revision across a crash, the compacted-revision
// re-list fallback, watch mode surviving etcd leader failover under a
// mixed workload, and the efficiency claim itself — watch mode issues
// strictly fewer etcd Range scans per completed job than poll mode.

// guardianPods selects a job's live Guardian pods.
func guardianPods(p *Platform, jobID string) []string {
	var out []string
	for _, pod := range p.Cluster().Pods(map[string]string{"app": "dlaas-guardian", "job": jobID}) {
		out = append(out, pod.Name())
	}
	return out
}

// killGuardian crash-kills the job's Guardian pod, returning whether a
// victim existed.
func killGuardian(t *testing.T, p *Platform, jobID string) bool {
	t.Helper()
	pods := guardianPods(p, jobID)
	if len(pods) == 0 {
		return false
	}
	if err := p.Chaos().KillPod(pods[0]); err != nil {
		t.Fatalf("killing guardian %s: %v", pods[0], err)
	}
	return true
}

// TestGuardianResumesWatchFromJournaledRevision: kill the Guardian while
// the job trains; the restarted Guardian must resume its status watch
// from the journaled revision (no re-list, no missed or duplicated
// transition) and drive the job to COMPLETED.
func TestGuardianResumesWatchFromJournaledRevision(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("resume")
	m := testManifest(t, p, "resume", 1)
	m.DatasetImages = 20000 // train long enough to crash mid-flight

	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	// Let at least one status event land (and be journaled) post-PROCESSING.
	p.Clock().Sleep(5 * time.Second)
	if !killGuardian(t, p, id) {
		t.Fatal("no guardian pod to kill")
	}
	if _, err := client.WaitForState(id, StateCompleted, 3*time.Hour); err != nil {
		t.Fatalf("job did not complete after guardian crash: %v", err)
	}

	if got := p.Metrics().Counter("guardian_monitor_resumes"); got < 1 {
		t.Fatalf("guardian_monitor_resumes = %v, want >= 1 (restart did not resume from the journal)", got)
	}
	// A clean resume re-lists only at fresh deployment (once) and on the
	// long-interval liveness backstop — never because the restart fell
	// back.
	relists := p.Metrics().Counter("guardian_monitor_relists")
	backstops := p.Metrics().Counter("guardian_monitor_backstops")
	if relists > backstops+1 {
		t.Fatalf("relists = %v with %v backstops, want at most backstops+1 (resume fell back to re-list)", relists, backstops)
	}
	if got := p.Metrics().Counter("guardian_monitor_resume_compacted"); got != 0 {
		t.Fatalf("guardian_monitor_resume_compacted = %v, want 0", got)
	}

	// No duplicated transitions: the history walks the canonical path
	// exactly once per state.
	events, err := client.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[JobState]int{}
	for _, ev := range events {
		seen[ev.State]++
	}
	for _, st := range []JobState{StateProcessing, StateStoring, StateCompleted} {
		if seen[st] != 1 {
			t.Fatalf("state %s recorded %d times in %v, want exactly once", st, seen[st], events)
		}
	}
}

// TestGuardianWatchCompactedFallsBackToRelist: when the journaled
// revision has been truncated out of the store's history by the time
// the Guardian restarts, the resume must fail typed and fall back to a
// snapshot re-list — and the job must still complete.
func TestGuardianWatchCompactedFallsBackToRelist(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	p.Etcd().SetCompactEvery(10)
	client := p.Client("compacted")
	m := testManifest(t, p, "compacted", 1)
	m.DatasetImages = 20000

	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	p.Clock().Sleep(5 * time.Second)

	// Overflow one hot key's bounded version chain so the truncation
	// floor passes the Guardian's journaled revision, then crash it: the
	// restarted monitor's WatchFrom must return ErrCompacted.
	for i := 0; i < 48; i++ {
		if _, err := p.Etcd().Put("/chaff/hot", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if !killGuardian(t, p, id) {
		t.Fatal("no guardian pod to kill")
	}
	if _, err := client.WaitForState(id, StateCompleted, 3*time.Hour); err != nil {
		t.Fatalf("job did not complete after compacted resume: %v", err)
	}
	if got := p.Metrics().Counter("guardian_monitor_resume_compacted"); got < 1 {
		t.Fatalf("guardian_monitor_resume_compacted = %v, want >= 1", got)
	}
	if got := p.Metrics().Counter("guardian_monitor_relists"); got < 2 {
		t.Fatalf("guardian_monitor_relists = %v, want >= 2 (initial list + compaction fallback)", got)
	}
}

// TestWatchControlPlaneSurvivesEtcdLeaderFailover: a mixed workload on
// the watch-driven control plane keeps completing when the etcd leader
// crashes mid-run — watches re-deliver through the hub regardless of
// which replica leads, and the liveness backstops cover the gap.
func TestWatchControlPlaneSurvivesEtcdLeaderFailover(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{Nodes: 4, GPUsPerNode: 4})
	client := p.Client("failover")

	var ids []string
	for i, learners := range []int{1, 2, 1} {
		m := testManifest(t, p, fmt.Sprintf("failover%d", i), learners)
		m.Name = fmt.Sprintf("failover-%d", i)
		id, err := client.Submit(m)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Wait until the fleet is training, then kill the etcd leader.
	if _, err := client.WaitForState(ids[0], StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	leader := p.Etcd().LeaderID()
	if leader < 0 {
		t.Fatal("no etcd leader")
	}
	p.Etcd().CrashNode(leader)

	for _, id := range ids {
		if _, err := client.WaitForState(id, StateCompleted, 4*time.Hour); err != nil {
			t.Fatalf("job %s failed across etcd leader failover: %v", id, err)
		}
	}
	p.Etcd().RestartNode(leader)
}

// TestWatchModeFewerEtcdRanges is the acceptance criterion as a test:
// for one identical job, the watch control plane issues strictly fewer
// etcd Range scans than the poll control plane.
func TestWatchModeFewerEtcdRanges(t *testing.T) {
	skipIfShort(t)
	ranges := func(mode string) uint64 {
		p := newTestPlatform(t, Options{ControlPlane: mode})
		client := p.Client("ab")
		m := testManifest(t, p, "ab", 1)
		id, err := client.Submit(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.WaitForState(id, StateCompleted, 3*time.Hour); err != nil {
			t.Fatalf("%s-mode job: %v", mode, err)
		}
		return p.Etcd().RangeOps()
	}
	watch := ranges("watch")
	poll := ranges("poll")
	t.Logf("etcd ranges per job: watch=%d poll=%d", watch, poll)
	if watch >= poll {
		t.Fatalf("watch mode issued %d ranges, poll mode %d — watch must be strictly fewer", watch, poll)
	}
}

// TestHaltPropagatesThroughChangeFeed: user termination must reach a
// watch-mode Guardian through the metadata change feed (not only the
// backstop poll) and tear the job down promptly.
func TestHaltPropagatesThroughChangeFeed(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("halter")
	m := testManifest(t, p, "halter", 1)
	m.DatasetImages = 200000
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Halt(id); err != nil {
		t.Fatal(err)
	}
	deadline := p.Clock().Now().Add(2 * time.Minute)
	for p.Clock().Now().Before(deadline) {
		if len(p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": id})) == 0 {
			return
		}
		p.Clock().Sleep(time.Second)
	}
	t.Fatal("learner pods survived halt on the watch control plane")
}

// TestStoreMetricsExposed: the metadata-plane instrumentation the watch
// path is observed through — per-shard commit counters, the watch hub's
// queue-depth gauge, etcd client-op counts — lands in the platform
// metrics registry.
func TestStoreMetricsExposed(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("obs")
	m := testManifest(t, p, "obs", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	reg := p.Metrics()
	var shardCommits float64
	for i := 0; i < 64; i++ {
		shardCommits += reg.Counter("store_shard_commits", "mongo", fmt.Sprintf("shard-%d", i))
	}
	if shardCommits == 0 {
		t.Fatalf("no mongo shard commits recorded:\n%s", reg.Snapshot())
	}
	if got := reg.Counter("etcd_client_ops", "put"); got == 0 {
		t.Fatal("etcd client-op counters not recorded")
	}
	if got := reg.Counter("etcd_client_ops", "watch"); got == 0 {
		t.Fatal("watch subscriptions not counted (watch mode should open them)")
	}
	if p.Etcd().RangeOps() == 0 {
		t.Fatal("RangeOps counter never moved (the initial list should count)")
	}
}

// TestPollControlPlaneStillWorks: the pre-refactor mode stays a fully
// functional escape hatch.
func TestPollControlPlaneStillWorks(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{ControlPlane: "poll"})
	client := p.Client("old")
	m := testManifest(t, p, "old", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 3*time.Hour); err != nil {
		t.Fatalf("poll-mode job failed: %v", err)
	}
	if got := p.Metrics().Counter("guardian_monitor_resumes"); got != 0 {
		t.Fatalf("poll mode used the watch path (resumes=%v)", got)
	}
}
