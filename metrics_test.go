package dlaas

import (
	"testing"
	"time"
)

// TestProgressGraphClean verifies a never-crashed job's progress graph:
// monotone images, decreasing loss trend, zero restarts.
func TestProgressGraphClean(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("graph1")
	m := testManifest(t, p, "graph1", 1)
	m.DatasetImages = 12000
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 6*time.Hour); err != nil {
		t.Fatal(err)
	}
	points, err := client.Metrics(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("points = %d, want >= 2", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Images < points[i-1].Images {
			t.Fatalf("clean run has image rollback at %d: %v -> %v",
				i, points[i-1].Images, points[i].Images)
		}
		if points[i].ClusterSeconds < points[i-1].ClusterSeconds {
			t.Fatal("time not monotone")
		}
	}
	first, last := points[0], points[len(points)-1]
	if last.Loss >= first.Loss {
		t.Fatalf("loss did not trend down: %.3f -> %.3f", first.Loss, last.Loss)
	}
}

// TestProgressGraphShowsRestart verifies the paper's observation:
// "training progress graphs differ (slightly) between a job that never
// experienced a failure and a job that did" — a crashed-and-recovered
// learner's graph contains a rollback to the last checkpoint.
func TestProgressGraphShowsRestart(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("graph2")
	m := testManifest(t, p, "graph2", 1)
	m.DatasetImages = 30000
	m.CheckpointInterval = time.Minute
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}

	// Train well past a checkpoint, then crash the learner pod.
	clk := p.Clock()
	clk.Sleep(3 * time.Minute)
	pods := p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": id})
	if len(pods) != 1 {
		t.Fatalf("learner pods = %d", len(pods))
	}
	if err := p.Cluster().DeletePod(pods[0].Name()); err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 12*time.Hour); err != nil {
		t.Fatal(err)
	}

	points, err := client.Metrics(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	rollback := false
	for i := 1; i < len(points); i++ {
		if points[i].Images < points[i-1].Images {
			rollback = true
			// The rollback is bounded by the checkpoint interval's
			// worth of images (plus one reporting chunk).
			lost := points[i-1].Images - points[i].Images
			if lost <= 0 {
				t.Fatal("zero-size rollback recorded")
			}
		}
	}
	if !rollback {
		t.Fatal("restarted job's progress graph shows no rollback — indistinguishable from a clean run")
	}
}
