package dlaas

// The dependability campaign: a compound-fault chaos matrix with a
// per-job verdict oracle. Each scenario boots a fresh platform, submits
// a training job, executes a seeded, replayable fault schedule against
// it (single faults, fault sequences, and double faults), heals
// everything, and has an independent jobmonitor render the verdict:
// legal terminal state, no acknowledged work lost, no liveness breach,
// and learner/etcd/mongo metadata mutually consistent. The paper's
// dependability claims, restated as machine-checkable conditions.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core/guardian"
	"repro/internal/core/learner"
	"repro/internal/jobmonitor"
	"repro/internal/metrics"
)

// campaignTenant owns every campaign job and its buckets.
const campaignTenant = "chaos"

// scenario is one named entry of the fault matrix.
type scenario struct {
	name  string
	about string
	// opts sizes the platform; zero fields take platform defaults.
	opts Options
	// learners is the job's gang size.
	learners int
	// images overrides the default dataset size (0 = campaignImages) —
	// long fault sequences need the job still training when the last
	// fault lands.
	images int64
	// expect lists the legal terminal states under this fault load.
	expect []JobState
	// expectBreach inverts the verdict's meaning: the injected fault is
	// one the platform cannot fix (a learner that is alive but stuck),
	// so the *correct* outcome is a liveness-deadline breach with the
	// observed history still walking the state machine. The scenario
	// passes iff the liveness check failed and history-transitions held.
	expectBreach bool
	// deadline is the liveness budget from submission (virtual time).
	deadline time.Duration
	// schedule builds the fault script. Steps carry symbolic targets;
	// Apply closures resolve them against live state when they fire.
	schedule func(run *scenarioRun) chaos.Schedule
}

// scenarioRun is the live context Apply closures close over.
type scenarioRun struct {
	client *Client
	jobID  string
}

func learnerSelector(jobID string) map[string]string {
	return map[string]string{"app": "dlaas-learner", "job": jobID}
}

func guardianSelector(jobID string) map[string]string {
	return map[string]string{"app": "dlaas-guardian", "job": jobID}
}

// completion is the default expectation: the platform rides out the
// faults and the job still completes.
var completion = []JobState{StateCompleted}

// campaignMatrix is the fault matrix. Offsets are virtual time from the
// moment the job first reaches PROCESSING; Jitter perturbs them ±10%
// per scenario seed.
func campaignMatrix() []scenario {
	return []scenario{
		{
			name:     "learner-crash",
			about:    "single learner pod crash mid-training; StatefulSet restarts it, training resumes from checkpoint",
			learners: 1,
			expect:   completion,
			deadline: 3 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				return chaos.Schedule{
					{At: 30 * time.Second, Fault: "kill-pod", Target: "learner",
						Apply: func(i *chaos.Injector) error {
							_, err := i.KillOnePod(learnerSelector(run.jobID))
							return err
						}},
				}
			},
		},
		{
			name:     "learner-crashloop",
			about:    "three sequential learner crashes (a zombie learner that keeps dying); each restart resumes without losing acked work",
			learners: 1,
			expect:   completion,
			deadline: 3 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				kill := func(i *chaos.Injector) error {
					_, err := i.KillOnePod(learnerSelector(run.jobID))
					return err
				}
				return chaos.Schedule{
					{At: 20 * time.Second, Fault: "kill-pod", Target: "learner", Apply: kill},
					{At: 45 * time.Second, Fault: "kill-pod", Target: "learner", Apply: kill},
					{At: 70 * time.Second, Fault: "kill-pod", Target: "learner", Apply: kill},
				}
			},
		},
		{
			name:     "nfs-flap",
			about:    "shared NFS volume flaps twice (hard-mount stall, then recovery); status files and logs pause but nothing is lost",
			learners: 1,
			expect:   completion,
			deadline: 3 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				return chaos.Schedule{
					{At: 20 * time.Second, Fault: "nfs-stall", Target: "nfs",
						Apply: func(i *chaos.Injector) error { return i.StallNFS() }},
					{At: 45 * time.Second, Fault: "nfs-heal", Target: "nfs",
						Apply: func(i *chaos.Injector) error { return i.HealNFS() }},
					{At: 80 * time.Second, Fault: "nfs-stall", Target: "nfs",
						Apply: func(i *chaos.Injector) error { return i.StallNFS() }},
					{At: 100 * time.Second, Fault: "nfs-heal", Target: "nfs",
						Apply: func(i *chaos.Injector) error { return i.HealNFS() }},
				}
			},
		},
		{
			name:     "leader-partition-mid-drain",
			about:    "double fault: etcd leader partitioned while the learner's node drains through the eviction-grace protocol",
			opts:     Options{Nodes: 3, GPUsPerNode: 1, EtcdReplicas: 3},
			learners: 1,
			expect:   completion,
			deadline: 3 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				var drained string
				var leader int
				return chaos.Schedule{
					{At: 20 * time.Second, Fault: "drain-node", Target: "node-of:learner",
						Apply: func(i *chaos.Injector) error {
							n, err := i.DrainNodeOf(learnerSelector(run.jobID))
							drained = n
							return err
						}},
					{At: 22 * time.Second, Fault: "etcd-partition-leader", Target: "etcd-leader",
						Apply: func(i *chaos.Injector) error {
							id, err := i.PartitionEtcdLeader()
							leader = id
							return err
						}},
					{At: 90 * time.Second, Fault: "etcd-heal", Target: "etcd-leader",
						Apply: func(i *chaos.Injector) error { return i.HealEtcd(leader) }},
					{At: 150 * time.Second, Fault: "uncordon-node", Target: "node-of:learner",
						Apply: func(i *chaos.Injector) error {
							if drained == "" {
								return nil
							}
							return i.UncordonNode(drained)
						}},
				}
			},
		},
		{
			name:     "clock-skew",
			about:    "two nodes drift (+45s and -30s); learner-side stamps skew with their nodes while central job history stays monotone",
			opts:     Options{Nodes: 3, GPUsPerNode: 1},
			learners: 1,
			expect:   completion,
			deadline: 3 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				return chaos.Schedule{
					{At: 20 * time.Second, Fault: "clock-skew", Target: "node-of:learner",
						Apply: func(i *chaos.Injector) error {
							_, err := i.SkewNodeClockOf(learnerSelector(run.jobID), 45*time.Second)
							return err
						}},
					{At: 25 * time.Second, Fault: "clock-skew", Target: "node-of:api",
						Apply: func(i *chaos.Injector) error {
							_, err := i.SkewNodeClockOf(map[string]string{"app": "dlaas-api"}, -30*time.Second)
							return err
						}},
				}
			},
		},
		{
			name:     "cascading-node-loss",
			about:    "two successive hard node losses with neither node returning; the scheduler re-reserves the gang on surviving capacity and the learner fails over twice",
			opts:     Options{Nodes: 3, GPUsPerNode: 1},
			learners: 1,
			images:   12000,
			expect:   completion,
			deadline: 4 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				// Hard node loss is repaired like a drain: nodeDown marks
				// the gang's lost members, repair re-plans them onto
				// surviving capacity, and the StatefulSet recreates the
				// learner ordinal there — no node restart required. The
				// crashed nodes stay down for the whole run; a parked job
				// here is a scheduler regression, not an expected outcome.
				return chaos.Schedule{
					{At: 20 * time.Second, Fault: "crash-node", Target: "node-of:learner",
						Apply: func(i *chaos.Injector) error {
							_, err := i.CrashNodeOf(learnerSelector(run.jobID))
							return err
						}},
					{At: 100 * time.Second, Fault: "crash-node", Target: "node-of:learner",
						Apply: func(i *chaos.Injector) error {
							// The second loss must hit the node the learner
							// *failed over to*: wait for the first
							// fail-over to land first.
							if err := i.AwaitRunning(learnerSelector(run.jobID), 2*time.Minute); err != nil {
								return err
							}
							_, err := i.CrashNodeOf(learnerSelector(run.jobID))
							return err
						}},
				}
			},
		},
		{
			name:     "evict-guardian-crash",
			about:    "double fault: the job's Guardian is killed in the middle of its learner's eviction-grace window",
			opts:     Options{Nodes: 3, GPUsPerNode: 1},
			learners: 1,
			expect:   completion,
			deadline: 3 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				var drained string
				return chaos.Schedule{
					{At: 20 * time.Second, Fault: "drain-node", Target: "node-of:learner",
						Apply: func(i *chaos.Injector) error {
							n, err := i.DrainNodeOf(learnerSelector(run.jobID))
							drained = n
							return err
						}},
					{At: 25 * time.Second, Fault: "kill-pod", Target: "guardian",
						Apply: func(i *chaos.Injector) error {
							_, err := i.KillOnePod(guardianSelector(run.jobID))
							return err
						}},
					{At: 120 * time.Second, Fault: "uncordon-node", Target: "node-of:learner",
						Apply: func(i *chaos.Injector) error {
							if drained == "" {
								return nil
							}
							return i.UncordonNode(drained)
						}},
				}
			},
		},
		{
			name:     "core-blackout",
			about:    "every API replica and the LCM killed at once (total control-plane outage); deployments restore them inside the client retry window",
			learners: 1,
			expect:   completion,
			deadline: 3 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				return chaos.Schedule{
					{At: 30 * time.Second, Fault: "kill-all-pods", Target: "api",
						Apply: func(i *chaos.Injector) error {
							_, err := i.KillAllPods(map[string]string{"app": "dlaas-api"})
							return err
						}},
					{At: 31 * time.Second, Fault: "kill-all-pods", Target: "lcm",
						Apply: func(i *chaos.Injector) error {
							_, err := i.KillAllPods(map[string]string{"app": "dlaas-lcm"})
							return err
						}},
				}
			},
		},
		{
			name:         "wedged-learner",
			about:        "learner wedges alive-but-stuck (process up, status TRAINING, zero progress); invisible to crash detection, caught only by the liveness deadline",
			learners:     1,
			expect:       nil, // no terminal state is legal: the job is stuck
			expectBreach: true,
			deadline:     20 * time.Minute,
			schedule: func(run *scenarioRun) chaos.Schedule {
				return chaos.Schedule{
					{At: 30 * time.Second, Fault: "wedge-volume", Target: "learner-volume",
						Apply: func(i *chaos.Injector) error {
							return i.WedgeVolumeFile(guardian.VolumeName(run.jobID), learner.WedgePath)
						}},
				}
			},
		},
		{
			name:     "halt-under-partition",
			about:    "user halts the job while the etcd leader is partitioned; the halt lands on the majority side and the job ends HALTED",
			opts:     Options{EtcdReplicas: 3},
			learners: 1,
			expect:   []JobState{StateHalted},
			deadline: 3 * time.Hour,
			schedule: func(run *scenarioRun) chaos.Schedule {
				var leader int
				return chaos.Schedule{
					{At: 20 * time.Second, Fault: "etcd-partition-leader", Target: "etcd-leader",
						Apply: func(i *chaos.Injector) error {
							id, err := i.PartitionEtcdLeader()
							leader = id
							return err
						}},
					{At: 25 * time.Second, Fault: "halt-job", Target: "job",
						Apply: func(i *chaos.Injector) error {
							_, err := run.client.Halt(run.jobID)
							return err
						}},
					{At: 90 * time.Second, Fault: "etcd-heal", Target: "etcd-leader",
						Apply: func(i *chaos.Injector) error { return i.HealEtcd(leader) }},
				}
			},
		},
	}
}

// CampaignScenarios lists the matrix's scenario names in run order, with
// one-line descriptions.
func CampaignScenarios() [][2]string {
	m := campaignMatrix()
	out := make([][2]string, len(m))
	for k, s := range m {
		out[k] = [2]string{s.name, s.about}
	}
	return out
}

// ScenarioResult is one scenario's outcome in the campaign report.
type ScenarioResult struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Steps is the executed (jittered) schedule with firing records.
	Steps []chaos.StepResult `json:"steps"`
	// Verdict is the oracle's judgment of the scenario's job.
	Verdict jobmonitor.Verdict `json:"verdict"`
	// ElapsedVirtual is scenario wall time on the virtual clock. It is
	// excluded from the fingerprint: goroutine interleaving legitimately
	// shifts virtual timings run to run.
	ElapsedVirtual time.Duration `json:"elapsed_virtual"`
	// Metrics is the scenario platform's full metrics snapshot at verdict
	// time — counters, gauges, and histogram quantiles. Diagnostic
	// context only; excluded from the fingerprint.
	Metrics metrics.Export `json:"metrics"`
	// RecoveryNote is the traced recovery cost in one sentence, e.g.
	// "nfs-flap cost 12.4 virtual s of recovery/stall on the critical
	// path". Empty when the job produced no trace. Fingerprint-excluded.
	RecoveryNote string `json:"recovery_note,omitempty"`
	Pass         bool   `json:"pass"`
}

// Report is the campaign's machine-readable result.
type Report struct {
	Seed      int64            `json:"seed"`
	Scenarios []ScenarioResult `json:"scenarios"`
	Pass      bool             `json:"pass"`
}

// JSON renders the report for artifact upload.
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Fingerprint digests the report's replayable identity: scenario names
// and seeds, the jittered schedule triples (offset, fault, symbolic
// target), each verdict's terminal state, and every check's name and
// outcome. Timing observations (firing offsets, virtual elapsed) and
// free-text details are excluded — two runs with the same campaign seed
// must produce the same fingerprint.
func (r Report) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "campaign-seed %d\n", r.Seed)
	for _, sc := range r.Scenarios {
		fmt.Fprintf(h, "scenario %s seed %d\n", sc.Name, sc.Seed)
		for _, st := range sc.Steps {
			fmt.Fprintf(h, "  step %d %s %s\n", st.At, st.Fault, st.Target)
		}
		fmt.Fprintf(h, "  terminal %s pass %t\n", sc.Verdict.Terminal, sc.Pass)
		for _, c := range sc.Verdict.Checks {
			fmt.Fprintf(h, "  check %s %t\n", c.Name, c.Pass)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// scenarioSeed derives a per-scenario RNG seed from the campaign seed,
// so adding or filtering scenarios never shifts another scenario's
// schedule.
func scenarioSeed(campaignSeed int64, name string) int64 {
	f := fnv.New64a()
	f.Write([]byte(name))
	return campaignSeed ^ int64(f.Sum64())
}

// RunCampaign executes the named scenarios sequentially (all of them if
// names is empty), each against a fresh platform, and returns the
// report. The error is operational (unknown scenario, platform boot
// failure) — fault-induced job outcomes are verdicts, not errors.
func RunCampaign(seed int64, names ...string) (Report, error) {
	matrix := campaignMatrix()
	selected := matrix
	if len(names) > 0 {
		byName := make(map[string]scenario, len(matrix))
		for _, s := range matrix {
			byName[s.name] = s
		}
		selected = selected[:0:0]
		for _, n := range names {
			s, ok := byName[n]
			if !ok {
				return Report{}, fmt.Errorf("dlaas: unknown campaign scenario %q", n)
			}
			selected = append(selected, s)
		}
	}

	// Scenarios are fully independent — each boots its own platform on
	// its own virtual clock — so they run concurrently (bounded, to keep
	// the discrete-event engines responsive) and report in matrix order.
	// Per-scenario seeds derive from (campaign seed, name) alone, so
	// concurrency cannot perturb schedules or the report fingerprint.
	sem := make(chan struct{}, campaignConcurrency)
	results := make([]ScenarioResult, len(selected))
	errs := make([]error, len(selected))
	var wg sync.WaitGroup
	for k, s := range selected {
		k, s := k, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[k], errs[k] = runScenario(s, scenarioSeed(seed, s.name))
		}()
	}
	wg.Wait()

	rep := Report{Seed: seed, Pass: true}
	for k := range selected {
		if errs[k] != nil {
			return rep, fmt.Errorf("dlaas: scenario %s: %w", selected[k].name, errs[k])
		}
		rep.Scenarios = append(rep.Scenarios, results[k])
		rep.Pass = rep.Pass && results[k].Pass
	}
	return rep, nil
}

// campaignConcurrency bounds how many scenario platforms run at once.
const campaignConcurrency = 4

// campaignImages is the default dataset size: a couple of
// cluster-minutes of training, comfortably outliving most schedules.
const campaignImages = 4000

// campaignManifest stages buckets and builds the scenario job's spec —
// the same shape the platform tests train.
func campaignManifest(p *Platform, learners int, images int64) (*Manifest, Credentials, error) {
	creds := Credentials{AccessKey: campaignTenant, SecretKey: campaignTenant + "-secret"}
	data, err := p.CreateDataset("data-"+campaignTenant, "train/imagenet-sub.rec", 2<<30, creds)
	if err != nil {
		return nil, creds, err
	}
	results, err := p.CreateResultsBucket("results-"+campaignTenant, creds)
	if err != nil {
		return nil, creds, err
	}
	if images <= 0 {
		images = campaignImages
	}
	return &Manifest{
		Name:               "campaign-train",
		Framework:          "tensorflow",
		Model:              "resnet50",
		Learners:           learners,
		GPUsPerLearner:     1,
		BatchPerGPU:        32,
		Epochs:             1,
		DatasetImages:      images,
		TrainingData:       data,
		Results:            results,
		CheckpointInterval: 30 * time.Second,
	}, creds, nil
}

// runScenario boots a platform, runs one scenario's fault script against
// a live job, and returns the oracle's verdict.
func runScenario(s scenario, seed int64) (ScenarioResult, error) {
	res := ScenarioResult{Name: s.name, Seed: seed}

	p, err := New(s.opts)
	if err != nil {
		return res, fmt.Errorf("booting platform: %w", err)
	}
	defer p.Close()
	inj := p.Chaos()
	// Heal on every exit path: an unhealed NFS stall or partition must
	// not leak into teardown.
	defer inj.HealAll()

	m, creds, err := campaignManifest(p, s.learners, s.images)
	if err != nil {
		return res, fmt.Errorf("staging data: %w", err)
	}
	client := p.Client(campaignTenant)
	jobID, err := client.Submit(m)
	if err != nil {
		return res, fmt.Errorf("submitting job: %w", err)
	}

	start := p.clk.Now()
	mon, err := jobmonitor.Watch(jobmonitor.Config{
		Clock:   p.clk,
		Jobs:    p.deps.Jobs(),
		Etcd:    p.etcd,
		Cluster: p.cluster,
		Store:   p.store,
		Trace:   p.trace,
	}, jobmonitor.JobRef{
		ID:            jobID,
		Learners:      s.learners,
		ResultsBucket: m.Results.Bucket,
		Creds:         creds,
	}, jobmonitor.Expect{Terminal: s.expect, Deadline: s.deadline})
	if err != nil {
		return res, fmt.Errorf("starting oracle: %w", err)
	}

	// Inject once the job is actually training: every schedule offset is
	// relative to first PROCESSING. A job that dies before then is the
	// oracle's to judge.
	_, _ = client.WaitForState(jobID, StateProcessing, 30*time.Minute)

	rng := rand.New(rand.NewSource(seed))
	sched := chaos.Jitter(rng, s.schedule(&scenarioRun{client: client, jobID: jobID}), 0.10)
	res.Steps = inj.Execute(sched)

	// Heal standing faults before judgment: the oracle reads through the
	// same substrates the platform uses (quorum reads need a quorum).
	inj.HealAll()

	res.Verdict = mon.Verdict()
	res.ElapsedVirtual = p.clk.Since(start)
	res.Metrics = p.metrics.Export()
	if res.Verdict.RecoveryCost > 0 {
		res.RecoveryNote = fmt.Sprintf("%s cost %.1f virtual s of recovery/stall on the critical path",
			s.name, res.Verdict.RecoveryCost.Seconds())
	}
	res.Pass = res.Verdict.Pass
	if s.expectBreach {
		res.Pass = breachPass(res.Verdict)
	}
	return res, nil
}

// breachPass is the expectBreach override: the fault is by construction
// unrecoverable, so the dependable outcome is the liveness deadline
// firing (the breach was *detected*) while the history the platform did
// record still walks the state machine.
func breachPass(v jobmonitor.Verdict) bool {
	liveness, transitions := false, false
	for _, c := range v.Checks {
		switch c.Name {
		case "liveness":
			liveness = !c.Pass
		case "history-transitions":
			transitions = c.Pass
		}
	}
	return liveness && transitions
}
