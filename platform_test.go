package dlaas

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core/guardian"
	"repro/internal/core/learner"
	"repro/internal/gpu"
	"repro/internal/kube"
)

// The full-platform tests are sleep-bound on a virtual clock, not
// CPU-bound, so test-level parallelism overlaps their idle windows even
// on one core. On small boxes the -test.parallel default (GOMAXPROCS)
// would serialize them and overrun go test's 10-minute package timeout;
// raise the cap. An explicit -parallel flag on the command line still
// wins — flag.Parse runs after TestMain sets this default.
func TestMain(m *testing.M) {
	if f := flag.Lookup("test.parallel"); f != nil && runtime.GOMAXPROCS(0) < 4 {
		_ = f.Value.Set("4")
	}
	os.Exit(m.Run())
}

// testManifest builds a small, fast training job: one learner, one GPU,
// a dataset sized so the whole job trains in a couple of cluster-minutes.
func testManifest(t *testing.T, p *Platform, tenant string, learners int) *Manifest {
	t.Helper()
	creds := Credentials{AccessKey: tenant, SecretKey: tenant + "-secret"}
	data, err := p.CreateDataset("data-"+tenant, "train/imagenet-sub.rec", 2<<30, creds)
	if err != nil {
		t.Fatal(err)
	}
	results, err := p.CreateResultsBucket("results-"+tenant, creds)
	if err != nil {
		t.Fatal(err)
	}
	return &Manifest{
		Name:               "test-train",
		Framework:          "tensorflow",
		Model:              "resnet50",
		Learners:           learners,
		GPUsPerLearner:     1,
		BatchPerGPU:        32,
		Epochs:             1,
		DatasetImages:      4000,
		TrainingData:       data,
		Results:            results,
		CheckpointInterval: 30 * time.Second,
	}
}

func newTestPlatform(t *testing.T, opts Options) *Platform {
	t.Helper()
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// skipIfShort guards the full-platform replay tests (boot + train +
// crash-inject) so `go test -short ./...` stays fast. Each guarded test
// boots an isolated Platform on a private virtual clock, so they also
// run in parallel — serially the full tier overruns go test's default
// 10-minute package timeout.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-platform replay test; skipped with -short")
	}
	t.Parallel()
}

func TestJobLifecycleEndToEnd(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("alice")
	m := testManifest(t, p, "alice", 1)

	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "job-") {
		t.Fatalf("job id = %q", id)
	}
	rec, err := client.WaitForState(id, StateCompleted, 2*time.Hour)
	if err != nil {
		t.Fatalf("job did not complete: %v (state %s, reason %q)", err, rec.State, rec.Reason)
	}

	// The state history must walk the canonical path with monotone
	// timestamps — users depend on these for profiling.
	events, err := client.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	var states []JobState
	for i, ev := range events {
		states = append(states, ev.State)
		if i > 0 && ev.Time.Before(events[i-1].Time) {
			t.Fatalf("event timestamps not monotone: %v", events)
		}
	}
	want := []JobState{StateQueued, StateDeploying, StateProcessing, StateStoring, StateCompleted}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}

	// Logs were collected and survive completion.
	logText, err := client.Logs(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logText, "training complete") {
		t.Fatalf("log missing completion marker:\n%s", logText)
	}

	// The trained model landed in the results bucket.
	creds := Credentials{AccessKey: "alice", SecretKey: "alice-secret"}
	keys, err := p.ObjectStore().List("results-alice", creds)
	if err != nil {
		t.Fatal(err)
	}
	foundModel := false
	for _, k := range keys {
		if strings.HasPrefix(k, "models/"+id+"/") {
			foundModel = true
		}
	}
	if !foundModel {
		t.Fatalf("no model stored; keys = %v", keys)
	}

	// Job resources were torn down.
	if p.Cluster().StatefulSetByName(guardian.LearnerSetName(id)) != nil {
		t.Fatal("learner StatefulSet leaked after completion")
	}
	if p.Cluster().DeploymentByName(guardian.HelperName(id)) != nil {
		t.Fatal("helper Deployment leaked after completion")
	}
}

func TestDistributedJobCompletes(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("bob")
	m := testManifest(t, p, "bob", 2) // two learners, Horovod-style
	m.Framework = "horovod"

	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	// Both learners produced logs.
	for l := 0; l < 2; l++ {
		text, err := client.Logs(id, l)
		if err != nil || !strings.Contains(text, "training complete") {
			t.Fatalf("learner %d log incomplete: %v\n%s", l, err, text)
		}
	}
}

func TestSubmissionSurvivesLCMOutage(t *testing.T) {
	skipIfShort(t)
	// The paper's durability guarantee: metadata is stored in MongoDB
	// before the ack, so a job submitted while the LCM is down is
	// deployed when the LCM recovers.
	p := newTestPlatform(t, Options{})
	client := p.Client("carol")
	m := testManifest(t, p, "carol", 1)

	// Take the LCM down hard (kill the pod; Deployment will recover it).
	lcmPods := p.Cluster().Pods(map[string]string{"app": "dlaas-lcm"})
	if len(lcmPods) != 1 {
		t.Fatalf("lcm pods = %d", len(lcmPods))
	}
	if err := p.Cluster().DeletePod(lcmPods[0].Name()); err != nil {
		t.Fatal(err)
	}

	// Submit during the outage: must be accepted (durable in MongoDB).
	id, err := client.Submit(m)
	if err != nil {
		t.Fatalf("submit during LCM outage failed: %v", err)
	}
	rec, err := client.Status(id)
	if err != nil || rec.State != StateQueued {
		t.Fatalf("status = (%+v, %v), want QUEUED", rec, err)
	}

	// After the LCM recovers, its sweep deploys the job to completion.
	if _, err := client.WaitForState(id, StateCompleted, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
}

func TestAPIFailover(t *testing.T) {
	p := newTestPlatform(t, Options{APIReplicas: 2})
	client := p.Client("dave")
	m := testManifest(t, p, "dave", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}

	// Kill one API replica: calls keep succeeding via the other.
	apiPods := p.Cluster().Pods(map[string]string{"app": "dlaas-api"})
	if len(apiPods) != 2 {
		t.Fatalf("api pods = %d", len(apiPods))
	}
	if err := p.Cluster().DeletePod(apiPods[0].Name()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := client.Status(id); err != nil {
			t.Fatalf("status call %d failed during API failover: %v", i, err)
		}
	}
}

func TestGuardianCrashMidDeployRollsBackAndRetries(t *testing.T) {
	skipIfShort(t)
	// The atomicity guarantee: kill the Guardian between provisioning
	// steps; the restarted Guardian rolls back and redeploys, and the
	// job still completes.
	p := newTestPlatform(t, Options{GuardianStepDelay: 2 * time.Second})
	client := p.Client("eve")
	m := testManifest(t, p, "eve", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the Guardian pod is running, then kill it mid-deploy
	// (steps take 2s each, so Running + 3s is inside the window).
	clk := p.Clock()
	deadline := clk.Now().Add(5 * time.Minute)
	var guardianPod *kube.Pod
	for clk.Now().Before(deadline) && guardianPod == nil {
		for _, pod := range p.Cluster().Pods(map[string]string{"app": "dlaas-guardian", "job": id}) {
			if pod.Phase() == kube.PodRunning {
				guardianPod = pod
			}
		}
		clk.Sleep(100 * time.Millisecond)
	}
	if guardianPod == nil {
		t.Fatal("guardian never ran")
	}
	clk.Sleep(3 * time.Second) // inside the multi-step deployment
	if err := p.Cluster().DeletePod(guardianPod.Name()); err != nil {
		t.Fatal(err)
	}

	rec, err := client.WaitForState(id, StateCompleted, 3*time.Hour)
	if err != nil {
		t.Fatalf("job did not survive guardian crash: %v (%+v)", err, rec)
	}
	if rec.DeployAttempts < 2 {
		t.Fatalf("deploy attempts = %d, want >= 2 (rollback+retry)", rec.DeployAttempts)
	}
}

func TestPersistentDeployFailureMarksJobFailed(t *testing.T) {
	skipIfShort(t)
	// Exhaust the Guardian's retry budget by killing it mid-deploy
	// every attempt; the job must be marked FAILED, not hang.
	p := newTestPlatform(t, Options{GuardianStepDelay: 3 * time.Second, MaxDeployAttempts: 2})
	client := p.Client("mallory")
	m := testManifest(t, p, "mallory", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}

	clk := p.Clock()
	killed := 0
	deadline := clk.Now().Add(30 * time.Minute)
	for clk.Now().Before(deadline) {
		rec, err := client.Status(id)
		if err == nil && rec.State.Terminal() {
			break
		}
		for _, pod := range p.Cluster().Pods(map[string]string{"app": "dlaas-guardian", "job": id}) {
			if pod.Phase() == kube.PodRunning {
				clk.Sleep(2 * time.Second) // land inside the deploy steps
				_ = p.Cluster().DeletePod(pod.Name())
				killed++
			}
		}
		clk.Sleep(500 * time.Millisecond)
	}
	rec, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateFailed {
		t.Fatalf("state = %s after %d guardian kills, want FAILED", rec.State, killed)
	}
	// No orphaned resources.
	if p.Cluster().StatefulSetByName(guardian.LearnerSetName(id)) != nil {
		t.Fatal("learner StatefulSet leaked after FAILED")
	}
}

func TestLearnerCrashResumesFromCheckpoint(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("frank")
	m := testManifest(t, p, "frank", 1)
	m.DatasetImages = 20000 // long enough to crash mid-training
	m.CheckpointInterval = time.Minute

	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}

	// Let it train past at least one checkpoint, then kill the learner.
	clk := p.Clock()
	creds := Credentials{AccessKey: "frank", SecretKey: "frank-secret"}
	deadline := clk.Now().Add(time.Hour)
	for clk.Now().Before(deadline) {
		keys, _ := p.ObjectStore().List("results-frank", creds)
		found := false
		for _, k := range keys {
			if strings.HasPrefix(k, "checkpoints/"+id+"/") {
				found = true
			}
		}
		if found {
			break
		}
		clk.Sleep(5 * time.Second)
	}
	learnerPods := p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": id})
	if len(learnerPods) != 1 {
		t.Fatalf("learner pods = %d", len(learnerPods))
	}
	if err := p.Cluster().DeletePod(learnerPods[0].Name()); err != nil {
		t.Fatal(err)
	}

	// The StatefulSet restarts the learner; it resumes from the
	// checkpoint and the job completes.
	if _, err := client.WaitForState(id, StateCompleted, 6*time.Hour); err != nil {
		t.Fatal(err)
	}
	logText, err := client.Logs(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logText, "resumed from checkpoint") {
		t.Fatalf("learner did not resume from checkpoint:\n%s", logText)
	}
}

func TestHaltTerminatesJob(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("grace")
	m := testManifest(t, p, "grace", 1)
	m.DatasetImages = 100000 // would train for a long time

	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Halt(id); err != nil {
		t.Fatal(err)
	}
	rec, err := client.WaitForState(id, StateHalted, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateHalted {
		t.Fatalf("state = %s", rec.State)
	}
	// Resources torn down after halt.
	clk := p.Clock()
	deadline := clk.Now().Add(10 * time.Minute)
	for clk.Now().Before(deadline) {
		if p.Cluster().StatefulSetByName(guardian.LearnerSetName(id)) == nil {
			return
		}
		clk.Sleep(time.Second)
	}
	t.Fatal("learner StatefulSet not torn down after halt")
}

func TestTenantIsolation(t *testing.T) {
	p := newTestPlatform(t, Options{})
	alice := p.Client("alice")
	m := testManifest(t, p, "alice", 1)
	id, err := alice.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	// Another tenant cannot read the job.
	intruder := p.Client("intruder")
	if _, err := intruder.Status(id); err == nil {
		t.Fatal("cross-tenant status read allowed")
	}
	if _, err := intruder.Halt(id); err == nil {
		t.Fatal("cross-tenant halt allowed")
	}
	// And cannot read alice's training data bucket.
	evil := Credentials{AccessKey: "intruder", SecretKey: "intruder-secret"}
	if _, err := p.ObjectStore().List("data-alice", evil); err == nil {
		t.Fatal("cross-tenant bucket list allowed")
	}
}

func TestLearnerNetworkIsolation(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	a := p.Client("t1")
	ma := testManifest(t, p, "t1", 1)
	ma.DatasetImages = 100000
	idA, err := a.Submit(ma)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Client("t2")
	mb := testManifest(t, p, "t2", 1)
	mb.DatasetImages = 100000
	idB, err := b.Submit(mb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WaitForState(idA, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitForState(idB, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}

	learnersA := p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": idA})
	learnersB := p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": idB})
	helpersA := p.Cluster().Pods(map[string]string{"app": "dlaas-helper", "job": idA})
	if len(learnersA) == 0 || len(learnersB) == 0 || len(helpersA) == 0 {
		t.Fatalf("pods missing: %d %d %d", len(learnersA), len(learnersB), len(helpersA))
	}
	// Same-job helper may reach the learner; the other tenant's learner
	// may not.
	if !p.Cluster().CanConnect(helpersA[0].Name(), learnersA[0].Name()) {
		t.Fatal("same-job helper blocked")
	}
	if p.Cluster().CanConnect(learnersB[0].Name(), learnersA[0].Name()) {
		t.Fatal("cross-tenant learner connection allowed")
	}
	_, _ = a.Halt(idA)
	_, _ = b.Halt(idB)
}

func TestStatusUpdatesSurviveEtcdMinorityCrash(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("henry")
	m := testManifest(t, p, "henry", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	// Crash one etcd replica while the job is deploying/training.
	p.Etcd().CrashNode(0)
	if _, err := client.WaitForState(id, StateCompleted, 3*time.Hour); err != nil {
		t.Fatalf("job failed with etcd minority down: %v", err)
	}
	p.Etcd().RestartNode(0)
}

func TestClusterInfo(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{Nodes: 2, GPUsPerNode: 4})
	client := p.Client("ops")
	info, err := client.ClusterInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 2 || info.TotalGPUs != 8 || info.FreeGPUs != 8 || info.NodesDown != 0 {
		t.Fatalf("info = %+v", info)
	}
	// A running job consumes GPUs and shows up in the counts.
	m := testManifest(t, p, "ops", 1)
	m.DatasetImages = 200000
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	info, err = client.ClusterInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.RunningJobs != 1 || info.FreeGPUs != 7 {
		t.Fatalf("info while training = %+v", info)
	}
	if _, err := client.Halt(id); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedBatchFailsWithOOM(t *testing.T) {
	skipIfShort(t)
	// A batch that cannot fit the GPU's memory fails the job with a
	// diagnosable reason, not a hang.
	p := newTestPlatform(t, Options{})
	client := p.Client("oom")
	m := testManifest(t, p, "oom", 1)
	m.Model = "vgg16"
	m.BatchPerGPU = 64 // 64 x 180MB activations >> K80's 12GB
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := client.WaitForState(id, StateFailed, 2*time.Hour)
	if err == nil && rec.State != StateFailed {
		t.Fatalf("state = %s, want FAILED", rec.State)
	}
	final, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("state = %s, want FAILED", final.State)
	}
	logText, _ := client.Logs(id, 0)
	if !strings.Contains(logText, "OOM") {
		t.Fatalf("log does not diagnose OOM:\n%s", logText)
	}
}

func TestClientSurvivesTotalAPIOutage(t *testing.T) {
	// Kill BOTH API replicas at once: the in-flight client call rides
	// out the outage (retry loop) while the Deployment recovers the
	// pods — no error ever reaches the user.
	p := newTestPlatform(t, Options{APIReplicas: 2})
	client := p.Client("outage")
	m := testManifest(t, p, "outage", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, pod := range p.Cluster().Pods(map[string]string{"app": "dlaas-api"}) {
		if err := p.Cluster().DeletePod(pod.Name()); err != nil {
			t.Fatal(err)
		}
	}
	// Immediately issue a call: it must succeed once a replacement is up
	// (~3-5s), well inside the client retry window.
	rec, err := client.Status(id)
	if err != nil {
		t.Fatalf("status during total API outage: %v", err)
	}
	if rec.ID != id {
		t.Fatalf("record = %+v", rec)
	}
}

// TestManyConcurrentJobs exercises the paper's horizontal-scalability
// goal: a batch of jobs from different tenants, submitted together,
// all complete — queueing (not failing) when GPUs are contended.
func TestManyConcurrentJobs(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{Nodes: 4, GPUsPerNode: 2})
	const jobs = 10 // 10 single-GPU jobs on 8 GPUs: some must queue
	ids := make([]string, jobs)
	clients := make([]*Client, jobs)
	for i := 0; i < jobs; i++ {
		tenant := fmt.Sprintf("team-%02d", i)
		clients[i] = p.Client(tenant)
		m := testManifest(t, p, tenant, 1)
		m.DatasetImages = 3000
		id, err := clients[i].Submit(m)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for i := 0; i < jobs; i++ {
		if _, err := clients[i].WaitForState(ids[i], StateCompleted, 12*time.Hour); err != nil {
			t.Fatalf("job %d (%s): %v", i, ids[i], err)
		}
	}
	// All GPU capacity is returned afterwards.
	clk := p.Clock()
	deadline := clk.Now().Add(10 * time.Minute)
	for clk.Now().Before(deadline) {
		if p.Cluster().FreeGPUs("") == 8 {
			return
		}
		clk.Sleep(2 * time.Second)
	}
	t.Fatalf("GPUs leaked: %d free, want 8", p.Cluster().FreeGPUs(""))
}

func TestGarbageCollectionReapsGuardianJob(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{})
	client := p.Client("gc")
	m := testManifest(t, p, "gc", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	// The LCM's GC sweep removes the finished Guardian Job object.
	clk := p.Clock()
	deadline := clk.Now().Add(10 * time.Minute)
	for clk.Now().Before(deadline) {
		if p.Cluster().JobByName(guardian.KubeJobName(id)) == nil {
			return
		}
		clk.Sleep(time.Second)
	}
	t.Fatal("guardian kube Job never garbage-collected")
}

func TestMeteringCountsRequests(t *testing.T) {
	p := newTestPlatform(t, Options{})
	client := p.Client("meter")
	m := testManifest(t, p, "meter", 1)
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Status(id); err != nil {
			t.Fatal(err)
		}
	}
	reg := p.Metrics()
	if got := reg.Counter("api_requests_total", "submit", "meter"); got != 1 {
		t.Fatalf("submit meter = %v, want 1", got)
	}
	if got := reg.Counter("api_requests_total", "status", "meter"); got != 3 {
		t.Fatalf("status meter = %v, want 3", got)
	}
	if st := reg.Histogram("api_latency", "status"); st.Count != 3 || st.Mean <= 0 {
		t.Fatalf("latency stats = %+v", st)
	}
}

// TestContendedMixedWorkloadCompletes is the gang-scheduler acceptance
// test at the platform level: a mix of 1-, 2- and 4-learner jobs whose
// aggregate demand exceeds the cluster. Under the seed per-pod scheduler
// two 4-learner jobs could each grab part of the fleet and deadlock at
// rendezvous; gang admission serializes them and every job completes.
func TestContendedMixedWorkloadCompletes(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{Nodes: 2, GPUsPerNode: 3}) // 6 GPUs
	learners := []int{4, 4, 2, 1, 1}                           // 12 GPUs demanded
	ids := make([]string, len(learners))
	clients := make([]*Client, len(learners))
	for i, n := range learners {
		tenant := fmt.Sprintf("mix-%d", i)
		clients[i] = p.Client(tenant)
		m := testManifest(t, p, tenant, n)
		m.DatasetImages = 2000
		if n > 1 {
			m.Framework = "horovod"
		}
		id, err := clients[i].Submit(m)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for i := range ids {
		if _, err := clients[i].WaitForState(ids[i], StateCompleted, 12*time.Hour); err != nil {
			t.Fatalf("job %d (%s, %d learners): %v", i, ids[i], learners[i], err)
		}
	}
	// No reservation leaked.
	clk := p.Clock()
	deadline := clk.Now().Add(10 * time.Minute)
	for clk.Now().Before(deadline) {
		if p.Cluster().FreeGPUs("") == 6 && len(p.Cluster().Gangs()) == 0 {
			return
		}
		clk.Sleep(2 * time.Second)
	}
	t.Fatalf("capacity leaked: free=%d gangs=%d", p.Cluster().FreeGPUs(""), len(p.Cluster().Gangs()))
}

// TestPreemptionRedeploysLowPriorityJob: a high-priority job evicts a
// running low-priority job's learner gang; the Guardian maps the
// preemption to rollback + redeploy, and both jobs eventually complete.
func TestPreemptionRedeploysLowPriorityJob(t *testing.T) {
	skipIfShort(t)
	p := newTestPlatform(t, Options{Nodes: 2, GPUsPerNode: 2}) // 4 GPUs
	low := p.Client("low")
	ml := testManifest(t, p, "low", 4)
	ml.Framework = "horovod"
	ml.DatasetImages = 16000 // long enough that the preemption lands mid-training
	ml.Priority = 1
	idLow, err := low.Submit(ml)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := low.WaitForState(idLow, StateProcessing, 2*time.Hour); err != nil {
		t.Fatal(err)
	}

	hi := p.Client("hi")
	mh := testManifest(t, p, "hi", 4)
	mh.Framework = "horovod"
	mh.DatasetImages = 2000
	mh.Priority = 100
	idHi, err := hi.Submit(mh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hi.WaitForState(idHi, StateCompleted, 6*time.Hour); err != nil {
		t.Fatalf("high-priority job did not complete: %v", err)
	}
	// The preempted job redeploys and completes after the preemptor frees
	// the fleet; its history records the preemption.
	if _, err := low.WaitForState(idLow, StateCompleted, 12*time.Hour); err != nil {
		t.Fatalf("preempted job did not recover: %v", err)
	}
	events, err := low.Events(idLow)
	if err != nil {
		t.Fatal(err)
	}
	preempted := false
	for _, ev := range events {
		if strings.Contains(ev.Note, "preempted") {
			preempted = true
		}
	}
	if !preempted {
		t.Fatalf("no preemption recorded in history: %v", events)
	}
}

// TestOversizedJobFailsFast: a job demanding more GPUs than the cluster
// could ever provide is FAILED with a diagnosable reason instead of
// queueing in DEPLOYING forever.
func TestOversizedJobFailsFast(t *testing.T) {
	p := newTestPlatform(t, Options{Nodes: 2, GPUsPerNode: 2}) // 4 GPUs total
	client := p.Client("big")
	m := testManifest(t, p, "big", 4)
	m.Framework = "horovod"
	m.GPUsPerLearner = 2 // 8 GPUs demanded
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := client.WaitForState(id, StateFailed, time.Hour)
	if err != nil && rec.State != StateFailed {
		t.Fatalf("oversized job not failed: %v (%+v)", err, rec)
	}
	if !strings.Contains(rec.Reason, "capacity") {
		t.Fatalf("reason = %q, want a capacity diagnosis", rec.Reason)
	}
}

// learnerProgress reads learner 0's live progress counter off the job's
// shared volume (zero when the volume or file is gone).
func learnerProgress(p *Platform, id string) int64 {
	vol, err := p.Cluster().NFS().Volume(guardian.VolumeName(id))
	if err != nil {
		return 0
	}
	raw, err := vol.Read(learner.ProgressPath(0))
	if err != nil {
		return 0
	}
	n, _ := strconv.ParseInt(string(raw), 10, 64)
	return n
}

var (
	onDemandCkptRe = regexp.MustCompile(`on-demand checkpoint at (\d+)/`)
	resumedRe      = regexp.MustCompile(`resumed from checkpoint at (\d+)/`)
)

// evictionLogPoints extracts the grace-checkpoint and resume progress
// from a learner log (zero when the marker is absent).
func evictionLogPoints(logText string) (ack, resumed int64) {
	if m := onDemandCkptRe.FindAllStringSubmatch(logText, -1); len(m) > 0 {
		ack, _ = strconv.ParseInt(m[len(m)-1][1], 10, 64)
	}
	if m := resumedRe.FindAllStringSubmatch(logText, -1); len(m) > 0 {
		resumed, _ = strconv.ParseInt(m[len(m)-1][1], 10, 64)
	}
	return ack, resumed
}

// evictionManifest is a job long enough to be mid-training when the
// eviction lands, with periodic checkpointing effectively off — so any
// resume point it recovers must come from the grace-period checkpoint.
func evictionManifest(t *testing.T, p *Platform, tenant string) *Manifest {
	t.Helper()
	m := testManifest(t, p, tenant, 1)
	m.DatasetImages = 7000
	m.CheckpointInterval = time.Hour
	m.Priority = 1
	return m
}

// evictionOptions keeps the eviction e2e tests light for the -short
// tier: the protocol under test is scheduler/guardian/learner-side, so
// a single etcd replica (no Raft fan-out ticking across the long
// virtual timeline) loses no coverage.
func evictionOptions(nodes int) Options {
	return Options{Nodes: nodes, GPUsPerNode: 1, EtcdReplicas: 1}
}

// TestGracefulPreemptionResumesFromGraceCheckpoint is the protocol's
// end-to-end acceptance test: a high-priority job preempts an actively
// training low-priority job; instead of dying instantly the victim
// takes an on-demand checkpoint inside the grace window, and after the
// preemptor finishes it resumes from that checkpoint — losing (near)
// zero images rather than up to a full CheckpointInterval.
func TestGracefulPreemptionResumesFromGraceCheckpoint(t *testing.T) {
	p := newTestPlatform(t, evictionOptions(1))
	clk := p.Clock()
	low := p.Client("gp-low")
	ml := evictionManifest(t, p, "gp-low")
	idLow, err := low.Submit(ml)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := low.WaitForState(idLow, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(30 * time.Second) // accumulate un-checkpointed progress
	p0 := learnerProgress(p, idLow)
	if p0 == 0 {
		t.Fatal("no training progress recorded before preemption")
	}

	hi := p.Client("gp-hi")
	mh := testManifest(t, p, "gp-hi", 1)
	mh.DatasetImages = 2000
	mh.Priority = 100
	idHi, err := hi.Submit(mh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hi.WaitForState(idHi, StateCompleted, 3*time.Hour); err != nil {
		t.Fatalf("preemptor did not complete: %v", err)
	}
	if _, err := low.WaitForState(idLow, StateCompleted, 12*time.Hour); err != nil {
		t.Fatalf("victim did not recover: %v", err)
	}

	logText, err := low.Logs(idLow, 0)
	if err != nil {
		t.Fatal(err)
	}
	ack, resumed := evictionLogPoints(logText)
	if ack == 0 {
		t.Fatalf("no on-demand checkpoint in victim log:\n%s", logText)
	}
	if ack < p0 {
		t.Fatalf("grace checkpoint at %d images lost progress (had %d at eviction)", ack, p0)
	}
	if resumed < ack {
		t.Fatalf("resumed at %d images, grace checkpoint was %d — work lost", resumed, ack)
	}
}

// TestDrainResumesFromGraceCheckpoint drains the node under an actively
// training job: the drain flows through the gang scheduler as a
// graceful eviction, the job redeploys on the surviving node, and it
// resumes from the grace checkpoint with (near) zero lost images.
func TestDrainResumesFromGraceCheckpoint(t *testing.T) {
	p := newTestPlatform(t, evictionOptions(2))
	clk := p.Clock()
	client := p.Client("gd")
	m := evictionManifest(t, p, "gd")
	id, err := client.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(30 * time.Second)
	p0 := learnerProgress(p, id)
	if p0 == 0 {
		t.Fatal("no training progress recorded before drain")
	}
	learners := p.Cluster().Pods(map[string]string{"app": "dlaas-learner", "job": id})
	if len(learners) != 1 {
		t.Fatalf("learner pods = %d", len(learners))
	}
	node := learners[0].NodeName()

	if err := p.Cluster().DrainNode(node); err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 12*time.Hour); err != nil {
		t.Fatalf("drained job did not recover: %v", err)
	}

	logText, err := client.Logs(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	ack, resumed := evictionLogPoints(logText)
	if ack == 0 {
		t.Fatalf("no on-demand checkpoint in drained job's log:\n%s", logText)
	}
	if resumed < ack || ack < p0 {
		t.Fatalf("drain lost work: progress %d, grace checkpoint %d, resumed %d", p0, ack, resumed)
	}
	events, err := client.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	drained := false
	for _, ev := range events {
		if strings.Contains(ev.Note, "drain") {
			drained = true
		}
	}
	if !drained {
		t.Fatalf("no drain eviction recorded in history: %v", events)
	}
}

// TestWedgedLearnerForceEvictedAtDeadline: a grace period far shorter
// than any checkpoint path models a wedged learner that never acks. The
// deadline force-evicts it — the preemptor is never blocked — and the
// victim still completes, from scratch (no grace checkpoint exists).
func TestWedgedLearnerForceEvictedAtDeadline(t *testing.T) {
	opts := evictionOptions(1)
	opts.EvictionGracePeriod = time.Millisecond
	p := newTestPlatform(t, opts)
	clk := p.Clock()
	low := p.Client("wl-low")
	ml := evictionManifest(t, p, "wl-low")
	ml.DatasetImages = 6000
	// The wedge is deterministic by construction: the grace period sits
	// far below the physical on-demand checkpoint floor (device stall +
	// upload), so no learner can possibly ack in time.
	g, _ := gpu.ByName("K80") // the platform default these jobs resolve to
	if floor := learner.TrainingConfig(ml, g).EvictionCheckpointTime(); opts.EvictionGracePeriod >= floor {
		t.Fatalf("grace %v is not below the checkpoint floor %v", opts.EvictionGracePeriod, floor)
	}
	idLow, err := low.Submit(ml)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := low.WaitForState(idLow, StateProcessing, time.Hour); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(30 * time.Second)

	hi := p.Client("wl-hi")
	mh := testManifest(t, p, "wl-hi", 1)
	mh.DatasetImages = 2000
	mh.Priority = 100
	idHi, err := hi.Submit(mh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hi.WaitForState(idHi, StateCompleted, 3*time.Hour); err != nil {
		t.Fatalf("preemptor blocked by wedged victim: %v", err)
	}
	if _, err := low.WaitForState(idLow, StateCompleted, 12*time.Hour); err != nil {
		t.Fatalf("force-evicted job did not recover: %v", err)
	}

	logText, err := low.Logs(idLow, 0)
	if err != nil {
		t.Fatal(err)
	}
	ack, resumed := evictionLogPoints(logText)
	if ack != 0 || resumed != 0 {
		t.Fatalf("deadline eviction should not have checkpointed (ack=%d resumed=%d):\n%s", ack, resumed, logText)
	}
	events, err := low.Events(idLow)
	if err != nil {
		t.Fatal(err)
	}
	preempted := false
	for _, ev := range events {
		if strings.Contains(ev.Note, "preempted") {
			preempted = true
		}
	}
	if !preempted {
		t.Fatalf("no preemption recorded in history: %v", events)
	}
}

func TestInvalidManifestRejected(t *testing.T) {
	p := newTestPlatform(t, Options{})
	client := p.Client("zoe")
	m := testManifest(t, p, "zoe", 1)
	m.Framework = "not-a-framework"
	if _, err := client.Submit(m); err == nil {
		t.Fatal("invalid manifest accepted")
	}
	m2 := testManifest(t, p, "zoe2", 1)
	m2.Learners = 0
	if _, err := client.Submit(m2); err == nil {
		t.Fatal("zero learners accepted")
	}
}

// TestReadModeOptionThreadsThrough: the platform wires Options.ReadMode
// into etcd — the propose escape hatch still completes jobs end to end
// (the A/B the read-index refactor is measured against), and an unknown
// mode is rejected at boot instead of surfacing as mystery read
// behavior later.
func TestReadModeOptionThreadsThrough(t *testing.T) {
	skipIfShort(t)
	if _, err := New(Options{ReadMode: "eventually-ish"}); err == nil {
		t.Fatal("unknown read mode accepted")
	}

	p := newTestPlatform(t, Options{ReadMode: "propose"})
	if got := p.Etcd().ReadMode(); got != "propose" {
		t.Fatalf("etcd read mode = %q, want propose", got)
	}
	client := p.Client("rmode")
	id, err := client.Submit(testManifest(t, p, "rmode", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 2*time.Hour); err != nil {
		t.Fatalf("job did not complete in propose read mode: %v", err)
	}

	// The default platform runs lease reads; its reads must not grow the
	// Raft log the way propose-mode reads do.
	if got := newTestPlatform(t, Options{}).Etcd().ReadMode(); got != "leaseread" {
		t.Fatalf("default read mode = %q, want leaseread", got)
	}
}

// TestWriteModeOptionThreadsThrough: the platform wires Options.WriteMode
// and Options.Replication into etcd — the legacy single+stop-and-wait
// combination (the baseline BenchmarkEtcdWrites measures group commit and
// pipelining against) still completes jobs end to end, and unknown modes
// are rejected at boot.
func TestWriteModeOptionThreadsThrough(t *testing.T) {
	skipIfShort(t)
	if _, err := New(Options{WriteMode: "firehose"}); err == nil {
		t.Fatal("unknown write mode accepted")
	}
	if _, err := New(Options{Replication: "telepathy"}); err == nil {
		t.Fatal("unknown replication mode accepted")
	}

	p := newTestPlatform(t, Options{WriteMode: "single", Replication: "stopwait"})
	if got := p.Etcd().WriteMode(); got != "single" {
		t.Fatalf("etcd write mode = %q, want single", got)
	}
	if got := p.Etcd().Replication(); got != "stopwait" {
		t.Fatalf("etcd replication = %q, want stopwait", got)
	}
	client := p.Client("wmode")
	id, err := client.Submit(testManifest(t, p, "wmode", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitForState(id, StateCompleted, 2*time.Hour); err != nil {
		t.Fatalf("job did not complete in single+stopwait mode: %v", err)
	}

	// The default platform batches writes over pipelined replication.
	d := newTestPlatform(t, Options{})
	if got := d.Etcd().WriteMode(); got != "batch" {
		t.Fatalf("default write mode = %q, want batch", got)
	}
	if got := d.Etcd().Replication(); got != "pipeline" {
		t.Fatalf("default replication = %q, want pipeline", got)
	}
}
