// Package clock provides an abstraction over time so that the entire
// platform can run either against the wall clock (examples, live demos) or
// against a discrete-event virtual clock (tests and benchmarks, where
// multi-day training jobs and multi-second crash recoveries must complete
// in milliseconds of real time).
//
// All platform components take a Clock and never call the time package
// directly for scheduling. Durations handed to a Clock are always expressed
// in the modeled unit (seconds of "cluster time"), regardless of how fast
// the simulation actually runs.
package clock

import "time"

// Clock is the time source used by every simulated component.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time

	// Sleep blocks the calling goroutine for d of clock time.
	// Non-positive durations return immediately.
	Sleep(d time.Duration)

	// After returns a channel that delivers the clock's time once d has
	// elapsed. The channel has capacity one and is never closed.
	After(d time.Duration) <-chan time.Time

	// AfterFunc schedules f to run in its own goroutine after d has
	// elapsed. The returned Timer can cancel the call before it fires.
	AfterFunc(d time.Duration, f func()) Timer

	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer

	// NewTicker returns a ticker that fires every d until stopped.
	NewTicker(d time.Duration) Ticker

	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
}

// Timer is the clock-agnostic equivalent of *time.Timer.
type Timer interface {
	// C returns the channel on which the firing time is delivered.
	C() <-chan time.Time

	// Stop prevents the timer from firing. It reports whether the stop
	// canceled a pending firing.
	Stop() bool

	// Reset re-arms the timer to fire after d. Reset should only be
	// called on stopped or fired timers with a drained channel.
	Reset(d time.Duration)
}

// Ticker is the clock-agnostic equivalent of *time.Ticker.
type Ticker interface {
	// C returns the channel on which ticks are delivered.
	C() <-chan time.Time

	// Stop turns the ticker off. No more ticks are delivered.
	Stop()
}

// Real is a Clock backed by the operating-system wall clock.
type Real struct{}

var _ Clock = Real{}

// NewReal returns a Clock backed by the time package.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{t: time.NewTimer(d)} }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{t: time.NewTicker(d)} }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time   { return r.t.C }
func (r realTimer) Stop() bool            { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) { r.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }
