package clock

import (
	"sync"
	"time"
)

// Skewed is a Clock whose readings are offset from a base clock's by a
// mutable amount — a node whose local clock has drifted from the rest
// of the datacenter. Only the *reading* of time is skewed: Sleep, After
// and the timer/ticker constructors delegate to the base clock
// unchanged, because drift shifts a clock's value, not its rate (rate
// error over the horizons simulated here is negligible next to offset
// error, and NTP step corrections are exactly an offset change).
//
// A Skewed view is what a simulated node hands to the software running
// on it: timestamps that software produces (log lines, status
// envelopes, metric points) carry the node's skewed notion of "now",
// while the durations it sleeps for remain true — which is how real
// clock skew corrupts distributed systems.
type Skewed struct {
	base Clock

	mu     sync.Mutex
	offset time.Duration
}

var _ Clock = (*Skewed)(nil)

// NewSkewed returns a view of base offset by the given amount
// (positive = this clock runs ahead).
func NewSkewed(base Clock, offset time.Duration) *Skewed {
	return &Skewed{base: base, offset: offset}
}

// SetOffset changes the skew (an NTP step, or an injected fault).
func (s *Skewed) SetOffset(d time.Duration) {
	s.mu.Lock()
	s.offset = d
	s.mu.Unlock()
}

// Offset returns the current skew.
func (s *Skewed) Offset() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offset
}

// Now implements Clock: the base clock's instant plus the skew.
func (s *Skewed) Now() time.Time { return s.base.Now().Add(s.Offset()) }

// Since implements Clock relative to this clock's skewed readings.
func (s *Skewed) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Sleep implements Clock on the base clock (durations are unskewed).
func (s *Skewed) Sleep(d time.Duration) { s.base.Sleep(d) }

// After implements Clock on the base clock.
func (s *Skewed) After(d time.Duration) <-chan time.Time { return s.base.After(d) }

// AfterFunc implements Clock on the base clock.
func (s *Skewed) AfterFunc(d time.Duration, f func()) Timer { return s.base.AfterFunc(d, f) }

// NewTimer implements Clock on the base clock.
func (s *Skewed) NewTimer(d time.Duration) Timer { return s.base.NewTimer(d) }

// NewTicker implements Clock on the base clock.
func (s *Skewed) NewTicker(d time.Duration) Ticker { return s.base.NewTicker(d) }
