package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Sim is a discrete-event virtual clock.
//
// Goroutines that Sleep or wait on timers are parked on an event heap keyed
// by virtual deadline. Virtual time advances in one of two ways:
//
//   - Explicitly, via Advance (deterministic unit tests).
//   - Automatically, via the idle-advance loop started by NewSim: whenever
//     no virtual event has fired or been scheduled for a short real-time
//     grace window and at least one waiter exists, the clock jumps to the
//     earliest pending deadline. This lets a fully concurrent system of
//     goroutines (services, kubelets, Raft nodes, training jobs) run
//     "as fast as the CPU allows" while every measured duration stays in
//     virtual units.
//
// The zero value is not usable; construct with NewSim or NewManual.
type Sim struct {
	mu       sync.Mutex
	now      time.Time
	events   eventHeap
	seq      uint64 // event sequence, breaks deadline ties FIFO
	activity uint64 // bumped on schedule and fire; read by idle-advance
	closed   bool
	stop     chan struct{}
	stopOnce sync.Once
}

var _ Clock = (*Sim)(nil)

// simEpoch is the instant at which every simulation starts. A fixed epoch
// keeps runs reproducible and avoids reading the wall clock.
var simEpoch = time.Date(2018, time.May, 17, 0, 0, 0, 0, time.UTC)

// graceWindow is how long the idle-advance loop waits (in real time) with
// no virtual activity before jumping virtual time forward.
const graceWindow = 200 * time.Microsecond

// NewSim returns a virtual clock whose idle-advance loop is running.
// Call Close when the simulation is finished to release the loop.
func NewSim() *Sim {
	s := &Sim{now: simEpoch, stop: make(chan struct{})}
	go s.idleAdvance()
	return s
}

// NewManual returns a virtual clock that only advances via Advance.
// Intended for deterministic unit tests.
func NewManual() *Sim {
	return &Sim{now: simEpoch, stop: make(chan struct{})}
}

// Close stops the idle-advance loop and releases every parked waiter by
// draining all pending events at their scheduled deadlines.
func (s *Sim) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	// Fire everything still pending so no goroutine leaks blocked on a
	// timer that can no longer advance. Firing may schedule more events
	// (tickers re-arm; schedule on a closed clock fires immediately), so
	// loop until drained.
	for {
		s.mu.Lock()
		if s.events.Len() == 0 {
			s.mu.Unlock()
			return
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.when.After(s.now) {
			s.now = ev.when
		}
		when := s.now
		fire := s.detachLocked(ev)
		s.mu.Unlock()
		if fire != nil {
			fire(when)
		}
	}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Sleep implements Clock.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	done := make(chan struct{})
	s.schedule(d, func(time.Time) { close(done) }, nil)
	<-done
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.schedule(d, func(t time.Time) { ch <- t }, nil)
	return ch
}

// AfterFunc implements Clock.
func (s *Sim) AfterFunc(d time.Duration, f func()) Timer {
	t := &simTimer{s: s, ch: make(chan time.Time, 1)}
	t.fire = func(now time.Time) { go f() }
	t.ev = s.schedule(d, t.fire, t)
	return t
}

// NewTimer implements Clock.
func (s *Sim) NewTimer(d time.Duration) Timer {
	t := &simTimer{s: s, ch: make(chan time.Time, 1)}
	t.fire = func(now time.Time) {
		select {
		case t.ch <- now:
		default:
		}
	}
	t.ev = s.schedule(d, t.fire, t)
	return t
}

// NewTicker implements Clock.
func (s *Sim) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	t := &simTicker{s: s, d: d, ch: make(chan time.Time, 1)}
	t.arm()
	return t
}

// Advance moves virtual time forward by d, firing every event whose
// deadline falls inside the window in deadline order. Callbacks run
// without the clock lock held, so they may freely schedule follow-up
// events (tickers re-arm) inside the same window. It is primarily for
// manual clocks but is safe on auto clocks too.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	for {
		if s.events.Len() == 0 || s.events[0].when.After(target) {
			break
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.when.After(s.now) {
			s.now = ev.when
		}
		when := s.now
		fire := s.detachLocked(ev)
		s.mu.Unlock()
		if fire != nil {
			fire(when)
		}
		s.mu.Lock()
	}
	if target.After(s.now) {
		s.now = target
	}
	s.mu.Unlock()
}

// PendingEvents reports how many timers/sleepers are parked on the clock.
func (s *Sim) PendingEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events.Len()
}

// event is a single scheduled occurrence on the virtual timeline.
type event struct {
	when    time.Time
	seq     uint64
	fire    func(time.Time)
	index   int  // heap index, -1 when removed
	stopped bool // canceled before firing
}

func (s *Sim) schedule(d time.Duration, fire func(time.Time), _ *simTimer) *event {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := &event{when: s.now.Add(d), seq: s.seq, fire: fire}
	s.seq++
	s.activity++
	if s.closed {
		// Clock already closed: fire immediately so callers never hang.
		go fire(ev.when)
		ev.index = -1
		return ev
	}
	heap.Push(&s.events, ev)
	return ev
}

// detachLocked marks a popped event as fired and returns its callback,
// or nil if the event was canceled. The callback must be invoked without
// holding s.mu.
func (s *Sim) detachLocked(ev *event) func(time.Time) {
	ev.index = -1
	if ev.stopped {
		return nil
	}
	s.activity++
	return ev.fire
}

// cancel removes ev from the heap if still pending. Reports whether the
// event had not yet fired.
func (s *Sim) cancel(ev *event) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.index < 0 || ev.stopped {
		return false
	}
	ev.stopped = true
	heap.Remove(&s.events, ev.index)
	ev.index = -1
	return true
}

// idleAdvance is the auto-advance loop: when no virtual activity happened
// for a grace window and waiters exist, jump to the earliest deadline.
func (s *Sim) idleAdvance() {
	var lastActivity uint64
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(graceWindow):
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		if s.activity != lastActivity {
			// Something real happened recently; give goroutines time
			// to run before jumping.
			lastActivity = s.activity
			s.mu.Unlock()
			continue
		}
		if s.events.Len() == 0 {
			s.mu.Unlock()
			continue
		}
		// Quiescent with pending events: jump to the next deadline and
		// fire every event scheduled for that same instant. Callbacks
		// run without the lock so they can schedule follow-up events.
		next := s.events[0].when
		s.now = next
		var fires []func(time.Time)
		for s.events.Len() > 0 && !s.events[0].when.After(next) {
			ev := heap.Pop(&s.events).(*event)
			if f := s.detachLocked(ev); f != nil {
				fires = append(fires, f)
			}
		}
		lastActivity = s.activity
		s.mu.Unlock()
		for _, f := range fires {
			f(next)
		}
	}
}

type simTimer struct {
	s    *Sim
	mu   sync.Mutex
	ev   *event
	ch   chan time.Time
	fire func(time.Time) // the timer's behavior; Reset re-arms it intact
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

func (t *simTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.s.cancel(t.ev)
}

// Reset re-arms the timer with its original behavior — like
// time.Timer.Reset, an AfterFunc timer runs its function again, not a
// bare channel send (a Reset that dropped the function would, e.g., let
// a kept-alive lease never expire).
func (t *simTimer) Reset(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.s.cancel(t.ev)
	t.ev = t.s.schedule(d, t.fire, nil)
}

type simTicker struct {
	s   *Sim
	d   time.Duration
	mu  sync.Mutex
	ev  *event
	ch  chan time.Time
	off bool
}

func (t *simTicker) C() <-chan time.Time { return t.ch }

func (t *simTicker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.off = true
	if t.ev != nil {
		t.s.cancel(t.ev)
	}
}

func (t *simTicker) arm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.off {
		return
	}
	t.ev = t.s.schedule(t.d, func(now time.Time) {
		select {
		case t.ch <- now:
		default:
		}
		t.arm()
	}, nil)
}

// eventHeap orders events by deadline, then scheduling order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
