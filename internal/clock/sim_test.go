package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestManualAdvanceFiresAtDeadlines(t *testing.T) {
	s := NewManual()
	defer s.Close()

	durations := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	chans := make([]<-chan time.Time, len(durations))
	for i, d := range durations {
		chans[i] = s.After(d)
	}
	s.Advance(time.Minute)

	for i, d := range durations {
		select {
		case tm := <-chans[i]:
			if want := simEpoch.Add(d); !tm.Equal(want) {
				t.Fatalf("timer %d fired at %v, want %v", i, tm, want)
			}
		default:
			t.Fatalf("timer %d did not fire", i)
		}
	}
	if got := s.Since(simEpoch); got != time.Minute {
		t.Fatalf("elapsed = %v, want 1m", got)
	}
}

func TestManualAdvancePartial(t *testing.T) {
	s := NewManual()
	defer s.Close()

	ch := s.After(10 * time.Second)
	s.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
	s.Advance(time.Second)
	select {
	case tm := <-ch:
		if want := simEpoch.Add(10 * time.Second); !tm.Equal(want) {
			t.Fatalf("fire time = %v, want %v", tm, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestAutoAdvanceSleep(t *testing.T) {
	s := NewSim()
	defer s.Close()

	start := s.Now()
	s.Sleep(48 * time.Hour) // two days of virtual time
	if got := s.Since(start); got < 48*time.Hour {
		t.Fatalf("elapsed = %v, want >= 48h", got)
	}
}

func TestAutoAdvanceManyGoroutines(t *testing.T) {
	s := NewSim()
	defer s.Close()

	const n = 64
	var done int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Sleep(time.Duration(i+1) * time.Second)
			atomic.AddInt32(&done, 1)
		}(i)
	}
	wg.Wait()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if got := s.Since(simEpoch); got < n*time.Second {
		t.Fatalf("virtual elapsed = %v, want >= %ds", got, n)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewManual()
	defer s.Close()

	tm := s.NewTimer(5 * time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	s.Advance(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
}

func TestTimerReset(t *testing.T) {
	s := NewManual()
	defer s.Close()

	tm := s.NewTimer(5 * time.Second)
	tm.Stop()
	tm.Reset(3 * time.Second)
	s.Advance(3 * time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestAfterFunc(t *testing.T) {
	s := NewManual()
	defer s.Close()

	fired := make(chan struct{})
	s.AfterFunc(7*time.Second, func() { close(fired) })
	s.Advance(7 * time.Second)
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("AfterFunc did not run")
	}
}

func TestAfterFuncStop(t *testing.T) {
	s := NewManual()
	defer s.Close()

	var ran int32
	tm := s.AfterFunc(7*time.Second, func() { atomic.AddInt32(&ran, 1) })
	if !tm.Stop() {
		t.Fatal("Stop reported false")
	}
	s.Advance(time.Minute)
	time.Sleep(5 * time.Millisecond) // would-be goroutine launch window
	if atomic.LoadInt32(&ran) != 0 {
		t.Fatal("stopped AfterFunc ran")
	}
}

func TestTickerDeliversRepeatedly(t *testing.T) {
	s := NewManual()
	defer s.Close()

	tk := s.NewTicker(10 * time.Second)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		s.Advance(10 * time.Second)
		select {
		case <-tk.C():
		case <-time.After(2 * time.Second):
			t.Fatalf("tick %d not delivered", i)
		}
	}
}

func TestTickerStop(t *testing.T) {
	s := NewManual()
	defer s.Close()

	tk := s.NewTicker(time.Second)
	tk.Stop()
	s.Advance(10 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestSleepNonPositiveReturnsImmediately(t *testing.T) {
	s := NewManual()
	defer s.Close()
	s.Sleep(0)
	s.Sleep(-time.Second)
	// Reaching here without Advance proves no parking happened.
	if n := s.PendingEvents(); n != 0 {
		t.Fatalf("pending events = %d, want 0", n)
	}
}

func TestCloseReleasesSleepers(t *testing.T) {
	s := NewManual()
	released := make(chan struct{})
	go func() {
		s.Sleep(time.Hour)
		close(released)
	}()
	waitPending(t, s, 1)
	s.Close()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release sleeper")
	}
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker did not tick")
	}
	tk.Stop()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc did not run")
	}
	<-c.After(time.Millisecond)
}

// Property: for any set of sleep durations, advancing past the maximum
// wakes every sleeper, and virtual time never runs backwards.
func TestQuickAdvanceWakesAll(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 32 {
			raw = raw[:32]
		}
		s := NewManual()
		defer s.Close()
		var wg sync.WaitGroup
		var max time.Duration
		for _, r := range raw {
			d := time.Duration(r%10000) * time.Millisecond
			if d > max {
				max = d
			}
			wg.Add(1)
			go func(d time.Duration) {
				defer wg.Done()
				s.Sleep(d)
			}(d)
		}
		waitPendingOK(s, countPositive(raw))
		s.Advance(max + time.Second)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
			return true
		case <-time.After(5 * time.Second):
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func countPositive(raw []uint16) int {
	n := 0
	for _, r := range raw {
		if r%10000 > 0 {
			n++
		}
	}
	return n
}

// waitPending blocks until n events are parked on s or the test times out.
func waitPending(t *testing.T, s *Sim, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.PendingEvents() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d events parked, want %d", s.PendingEvents(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func waitPendingOK(s *Sim, n int) {
	deadline := time.Now().Add(5 * time.Second)
	for s.PendingEvents() < n && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
}
