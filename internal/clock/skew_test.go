package clock

import (
	"testing"
	"time"
)

func TestSkewedReadsOffsetTime(t *testing.T) {
	clk := NewManual()
	defer clk.Close()
	sk := NewSkewed(clk, 45*time.Second)

	if got, want := sk.Now(), clk.Now().Add(45*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	sk.SetOffset(-30 * time.Second)
	if got, want := sk.Now(), clk.Now().Add(-30*time.Second); !got.Equal(want) {
		t.Fatalf("after SetOffset, Now() = %v, want %v", got, want)
	}
	if got := sk.Offset(); got != -30*time.Second {
		t.Fatalf("Offset() = %v", got)
	}
}

func TestSkewedDurationsAreUnskewed(t *testing.T) {
	clk := NewManual()
	defer clk.Close()
	sk := NewSkewed(clk, time.Hour)

	// A timer on the skewed clock fires after d of *base* time: skew
	// shifts readings, not rates.
	fired := make(chan struct{})
	go func() {
		sk.Sleep(10 * time.Second)
		close(fired)
	}()
	for clk.PendingEvents() == 0 {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(9 * time.Second)
	select {
	case <-fired:
		t.Fatal("sleep returned early")
	default:
	}
	clk.Advance(2 * time.Second)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("sleep never returned")
	}

	// Since() is computed against the skewed reading.
	start := sk.Now()
	clk.Advance(7 * time.Second)
	if got := sk.Since(start); got != 7*time.Second {
		t.Fatalf("Since = %v, want 7s", got)
	}
}
