// Package core wires the DLaaS core services (API, Lifecycle Manager,
// Guardian, Helper, Learner) to the platform substrates they depend on
// (Kubernetes, etcd, MongoDB, object store, NFS, the RPC fabric). It
// corresponds to the paper's "DLaaS Core-Services Layer" plus the
// "DLaaS Helpers".
package core

import (
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/etcd"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/metrics"
	"repro/internal/mongo"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// Service names on the RPC fabric.
const (
	// APIService is the user-facing endpoint (REST/GRPC in the paper).
	APIService = "dlaas-api"
	// LCMService is the Lifecycle Manager.
	LCMService = "dlaas-lcm"
)

// MongoDB collection names.
const (
	// JobsCollection holds one JobRecord document per training job.
	JobsCollection = "training_jobs"
)

// Control-plane modes: how the Guardian and LCM observe state changes
// (selected by Options.ControlPlane).
const (
	// ControlPlaneWatch (the default) drives the services from
	// revision-ordered etcd watches and the metadata change feed, with
	// long-interval polls kept only as a liveness backstop.
	ControlPlaneWatch = "watch"
	// ControlPlanePoll preserves the pre-refactor fixed-interval polling
	// loops, for A/B comparison and as an escape hatch.
	ControlPlanePoll = "poll"
)

// Deps bundles the substrate handles every core service needs. One Deps
// value is shared across the whole platform instance.
type Deps struct {
	Clock       clock.Clock
	Bus         *rpc.Bus
	Kube        *kube.Cluster
	Etcd        *etcd.Store
	Mongo       *mongo.DB
	ObjectStore *objectstore.Store
	NFS         *nfs.Server
	// DataLink is the shared datacenter network for training-data
	// streaming and checkpoint traffic.
	DataLink *netsim.SharedLink
	// DefaultGPU is the cluster's GPU model for jobs that do not pin one.
	DefaultGPU gpu.Spec
	// Metrics is the platform instrumentation registry (metering).
	Metrics *metrics.Registry
	// Trace is the platform span recorder; nil disables tracing (every
	// trace API is nil-safe, so call sites need no guards).
	Trace *trace.Recorder

	jobSeq atomic.Uint64
}

// NextJobID allocates a platform-unique job identifier.
func (d *Deps) NextJobID() string {
	n := d.jobSeq.Add(1)
	return jobIDFromSeq(n)
}

func jobIDFromSeq(n uint64) string {
	const digits = "0123456789"
	buf := []byte("job-000000")
	for i := len(buf) - 1; n > 0 && i >= 4; i-- {
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf)
}

// Jobs returns the MongoDB jobs collection.
func (d *Deps) Jobs() *mongo.Collection {
	return d.Mongo.Collection(JobsCollection)
}
