package core

import (
	"errors"
	"testing"

	"repro/internal/clock"
	"repro/internal/core/types"
	"repro/internal/mongo"
)

func newTestDeps(t *testing.T) *Deps {
	t.Helper()
	clk := clock.NewSim()
	t.Cleanup(clk.Close)
	return &Deps{Clock: clk, Mongo: mongo.New(clk)}
}

func newQueuedJob(t *testing.T, d *Deps, id string) types.JobRecord {
	t.Helper()
	rec := types.JobRecord{
		ID:          id,
		Tenant:      "t1",
		State:       types.StateQueued,
		Manifest:    "{}",
		SubmittedAt: d.Clock.Now(),
		UpdatedAt:   d.Clock.Now(),
	}
	if err := d.InsertJob(rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestNextJobIDUnique(t *testing.T) {
	d := newTestDeps(t)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := d.NextJobID()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestInsertAndGetJob(t *testing.T) {
	d := newTestDeps(t)
	want := newQueuedJob(t, d, "job-1")
	got, err := d.GetJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.State != want.State || got.Tenant != want.Tenant {
		t.Fatalf("got %+v", got)
	}
	if !got.SubmittedAt.Equal(want.SubmittedAt) {
		t.Fatalf("submitted_at = %v, want %v", got.SubmittedAt, want.SubmittedAt)
	}
}

func TestGetMissingJob(t *testing.T) {
	d := newTestDeps(t)
	if _, err := d.GetJob("nope"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("err = %v, want ErrJobNotFound", err)
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	d := newTestDeps(t)
	newQueuedJob(t, d, "job-1")
	err := d.InsertJob(types.JobRecord{ID: "job-1", State: types.StateQueued})
	if err == nil {
		t.Fatal("duplicate job accepted")
	}
}

func TestTransitionHappyPath(t *testing.T) {
	d := newTestDeps(t)
	newQueuedJob(t, d, "job-1")
	for _, to := range []types.JobState{
		types.StateDeploying, types.StateProcessing, types.StateStoring, types.StateCompleted,
	} {
		rec, err := d.TransitionJob("job-1", to, "step")
		if err != nil {
			t.Fatalf("to %s: %v", to, err)
		}
		if rec.State != to {
			t.Fatalf("state = %s, want %s", rec.State, to)
		}
	}
	hist, err := d.JobHistory("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 5 { // submitted + 4 transitions
		t.Fatalf("history = %v", hist)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Time.Before(hist[i-1].Time) {
			t.Fatal("history timestamps not monotone")
		}
	}
}

func TestIllegalTransitionRejected(t *testing.T) {
	d := newTestDeps(t)
	newQueuedJob(t, d, "job-1")
	if _, err := d.TransitionJob("job-1", types.StateCompleted, ""); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("err = %v, want ErrBadTransition", err)
	}
}

func TestTerminalStateNotOverwritten(t *testing.T) {
	d := newTestDeps(t)
	newQueuedJob(t, d, "job-1")
	if _, err := d.TransitionJob("job-1", types.StateHalted, "user"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TransitionJob("job-1", types.StateDeploying, ""); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("err = %v, want ErrBadTransition", err)
	}
	rec, _ := d.GetJob("job-1")
	if rec.State != types.StateHalted {
		t.Fatalf("state = %s", rec.State)
	}
}

func TestSameStateRefreshIsNoop(t *testing.T) {
	d := newTestDeps(t)
	newQueuedJob(t, d, "job-1")
	if _, err := d.TransitionJob("job-1", types.StateDeploying, "a1"); err != nil {
		t.Fatal(err)
	}
	before, _ := d.JobHistory("job-1")
	if _, err := d.TransitionJob("job-1", types.StateDeploying, "a1 again"); err != nil {
		t.Fatal(err)
	}
	after, _ := d.JobHistory("job-1")
	if len(after) != len(before) {
		t.Fatalf("refresh appended history: %d -> %d", len(before), len(after))
	}
}

func TestIncrementDeployAttempts(t *testing.T) {
	d := newTestDeps(t)
	newQueuedJob(t, d, "job-1")
	for want := 1; want <= 3; want++ {
		got, err := d.IncrementDeployAttempts("job-1")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("attempts = %d, want %d", got, want)
		}
	}
	rec, _ := d.GetJob("job-1")
	if rec.DeployAttempts != 3 {
		t.Fatalf("record attempts = %d", rec.DeployAttempts)
	}
}

func TestListJobsByTenant(t *testing.T) {
	d := newTestDeps(t)
	newQueuedJob(t, d, "job-1")
	newQueuedJob(t, d, "job-2")
	if err := d.InsertJob(types.JobRecord{
		ID: "job-3", Tenant: "other", State: types.StateQueued,
		SubmittedAt: d.Clock.Now(), UpdatedAt: d.Clock.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	t1, err := d.ListJobs("t1")
	if err != nil || len(t1) != 2 {
		t.Fatalf("t1 jobs = %d (%v)", len(t1), err)
	}
	all, err := d.ListJobs("")
	if err != nil || len(all) != 3 {
		t.Fatalf("all jobs = %d (%v)", len(all), err)
	}
}

func TestTransitionWhileMongoDown(t *testing.T) {
	d := newTestDeps(t)
	newQueuedJob(t, d, "job-1")
	d.Mongo.SetDown(true)
	if _, err := d.TransitionJob("job-1", types.StateDeploying, ""); err == nil {
		t.Fatal("transition succeeded with mongo down")
	}
	d.Mongo.SetDown(false)
	if _, err := d.TransitionJob("job-1", types.StateDeploying, ""); err != nil {
		t.Fatal(err)
	}
}
