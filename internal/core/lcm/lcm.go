// Package lcm implements the DLaaS Lifecycle Manager microservice: "the
// LCM is responsible for the job from submission to completion/failure,
// i.e., the deployment, monitoring, garbage collection, and
// user-initiated termination of the job". The LCM's sole deployment
// action is deliberately tiny — instantiate a Guardian as a Kubernetes
// Job ("a very quick (less than 3s in our experiments) single step
// process") — so the multi-step, failure-prone provisioning work happens
// under the Guardian's crash-restart umbrella instead.
package lcm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/core/guardian"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/kube"
	"repro/internal/rpc"
)

// Methods exposed on the RPC fabric.
const (
	// MethodDeploy deploys a queued job: DeployRequest -> DeployResponse.
	MethodDeploy = "deploy"
	// MethodHalt terminates a job: HaltRequest -> HaltResponse.
	MethodHalt = "halt"
)

// guardianBackoffLimit is how many Guardian pod failures the hosting
// Kubernetes Job tolerates. Guardian crashes are expected (that is the
// design), so the limit is generous; the Guardian's own deploy-attempt
// counter is what bounds retries.
const guardianBackoffLimit = 25

// sweepInterval is the cadence of the QUEUED-job recovery sweep in
// poll mode.
const sweepInterval = 2 * time.Second

// watchBackstop is the watch-mode liveness sweep cadence: the change
// feed drives deployment and GC, and a full sweep at this long interval
// catches anything a lost event (or a Guardian still unwinding at GC
// time) would otherwise strand.
const watchBackstop = 10 * time.Second

// DeployRequest asks the LCM to take over a queued job.
type DeployRequest struct {
	JobID string
}

// DeployResponse acknowledges guardianship.
type DeployResponse struct {
	GuardianJob string
}

// HaltRequest asks for user-initiated termination.
type HaltRequest struct {
	JobID string
}

// HaltResponse reports the resulting state.
type HaltResponse struct {
	State types.JobState
}

// Service is one LCM instance.
type Service struct {
	deps *core.Deps
	// GuardianStepDelay is forwarded to Guardians (test hook).
	GuardianStepDelay time.Duration
	// MaxDeployAttempts is forwarded to Guardians.
	MaxDeployAttempts int
	// ControlPlane selects watch-driven (core.ControlPlaneWatch,
	// default) or poll-driven operation; it is also forwarded to the
	// Guardians this LCM creates.
	ControlPlane string

	mu     sync.Mutex
	gcDone map[string]bool // jobs already garbage-collected
}

// New creates an LCM service.
func New(deps *core.Deps) *Service {
	return &Service{deps: deps, gcDone: make(map[string]bool)}
}

// ContainerSpec builds the LCM container for its Deployment. The LCM is
// a Go microservice; its Fig. 4 recovery window is 4-6s.
func (s *Service) ContainerSpec() kube.ContainerSpec {
	return kube.ContainerSpec{
		Name:       "lcm",
		Image:      "dlaas/lcm",
		StartDelay: 4 * time.Second,
		Run:        s.run,
	}
}

// run registers the instance on the RPC fabric, performs the recovery
// sweep for jobs accepted but never deployed, and serves until killed.
func (s *Service) run(ctx *kube.ContainerCtx) int {
	reg := s.deps.Bus.Register(core.LCMService, ctx.PodName(), s.handle)
	defer reg.Deregister()
	if s.ControlPlane == core.ControlPlanePoll {
		return s.runPoll(ctx)
	}
	return s.runWatch(ctx)
}

// runPoll is the pre-refactor loop: re-list every job each sweep.
//
// Recovery sweep: any job still QUEUED (e.g. the API durably accepted
// it and then the LCM crashed before deploying) gets a Guardian now —
// "submitted jobs are never lost". The sweep repeats so QUEUED jobs are
// picked up even if a deploy races a crash. Garbage collection — "the
// deployment, monitoring, garbage collection, and user-initiated
// termination of the job" — runs in the same loop: terminal jobs'
// leftover cluster resources are reaped as a backstop behind the
// Guardian's own teardown.
func (s *Service) runPoll(ctx *kube.ContainerCtx) int {
	for {
		s.sweepQueued()
		s.garbageCollect()
		if !ctx.Sleep(sweepInterval) {
			return 0
		}
	}
}

// runWatch drives deployment and garbage collection from the jobs
// collection's change feed: one initial recovery sweep (the "list" of
// list-then-watch), then a Guardian per QUEUED record and a reap per
// terminal record as the transitions commit — no per-sweep re-list of
// every job. A full sweep remains at a long interval as the liveness
// backstop.
func (s *Service) runWatch(ctx *kube.ContainerCtx) int {
	feed, cancel, err := s.deps.Jobs().Watch()
	if err != nil {
		// Change feed unavailable: degrade to polling rather than dying.
		return s.runPoll(ctx)
	}
	defer cancel()

	s.sweepQueued()
	s.garbageCollect()
	for {
		tick := s.deps.Clock.NewTimer(watchBackstop)
		select {
		case <-ctx.Killed():
			tick.Stop()
			return 0
		case ce := <-feed:
			tick.Stop()
			if ce.Deleted {
				continue
			}
			rec := core.RecordFromDoc(ce.Doc)
			if s.deps.Metrics != nil {
				s.deps.Metrics.Inc("lcm_feed_events", string(rec.State))
			}
			switch {
			case rec.State == types.StateQueued:
				_, _ = s.deploy(rec.ID)
			case rec.State.Terminal():
				s.collectJob(rec)
			}
		case <-tick.C():
			s.sweepQueued()
			s.garbageCollect()
		}
	}
}

func (s *Service) sweepQueued() {
	jobs, err := s.deps.ListJobs("")
	if err != nil {
		return
	}
	for _, rec := range jobs {
		if rec.State == types.StateQueued {
			_, _ = s.deploy(rec.ID)
		}
	}
}

// garbageCollect reaps the resources of terminal jobs: the finished
// Guardian Kubernetes Job object, and — should a Guardian have died
// before its own teardown completed — the job's StatefulSet, helper
// Deployment, NFS volume, network policy and etcd keys. All deletions
// are name-addressed and idempotent.
func (s *Service) garbageCollect() {
	jobs, err := s.deps.ListJobs("")
	if err != nil {
		return
	}
	for _, rec := range jobs {
		if rec.State.Terminal() {
			s.collectJob(rec)
		}
	}
}

// collectJob reaps one terminal job's resources: the finished Guardian
// Kubernetes Job object, and — should a Guardian have died before its
// own teardown completed — the job's cluster resources and etcd keys.
func (s *Service) collectJob(rec types.JobRecord) {
	s.mu.Lock()
	done := s.gcDone[rec.ID]
	s.mu.Unlock()
	if done {
		// Already reaped by this instance; a restarted LCM re-reaps
		// once (idempotent deletes), which is the intended backstop.
		return
	}
	if kj := s.deps.Kube.JobByName(guardian.KubeJobName(rec.ID)); kj != nil {
		if done, failed, _ := kj.Status(); done || failed {
			s.deps.Kube.DeleteJob(kj.Name())
		} else {
			// Guardian still unwinding; let it finish first (the
			// backstop sweep retries).
			return
		}
	}
	guardian.Rollback(s.deps, rec.ID)
	// Serializable (stale-tolerant) listing for the bulk reap: the
	// deletes are idempotent and the backstop sweep re-runs, so a
	// replica-local snapshot is enough to make progress, and it costs no
	// consensus work.
	if kvs, err := s.deps.Etcd.SerializableRange(types.JobPrefix(rec.ID)); err == nil {
		for _, kv := range kvs {
			_ = s.deps.Etcd.Delete(kv.Key)
		}
	}
	// The done-latch, though, demands a linearizable empty observation
	// (a read-index Range — still zero log entries): a stale-empty local
	// listing must not end the reap while committed keys exist on
	// replicas that have yet to catch up. Without a quorum the confirm
	// fails and the backstop keeps sweeping — availability degrades to
	// retry, never to a leak.
	confirm, err := s.deps.Etcd.Range(types.JobPrefix(rec.ID))
	if err != nil {
		return
	}
	if len(confirm) > 0 {
		// Stragglers the stale listing missed: reap them and let the
		// next sweep confirm.
		for _, kv := range confirm {
			_ = s.deps.Etcd.Delete(kv.Key)
		}
		return
	}
	s.mu.Lock()
	s.gcDone[rec.ID] = true
	s.mu.Unlock()
}

// handle dispatches RPC calls.
func (s *Service) handle(_ context.Context, method string, req any) (any, error) {
	switch method {
	case MethodDeploy:
		r, ok := req.(DeployRequest)
		if !ok {
			return nil, fmt.Errorf("lcm: bad request type %T", req)
		}
		return s.deploy(r.JobID)
	case MethodHalt:
		r, ok := req.(HaltRequest)
		if !ok {
			return nil, fmt.Errorf("lcm: bad request type %T", req)
		}
		return s.halt(r.JobID)
	default:
		return nil, fmt.Errorf("lcm: unknown method %q", method)
	}
}

// deploy instantiates the job's Guardian as a Kubernetes Job. It is
// idempotent: an existing Guardian Job satisfies the request.
func (s *Service) deploy(jobID string) (DeployResponse, error) {
	name := guardian.KubeJobName(jobID)
	if s.deps.Kube.JobByName(name) != nil {
		return DeployResponse{GuardianJob: name}, nil
	}
	rec, err := s.deps.GetJob(jobID)
	if err != nil {
		return DeployResponse{}, err
	}
	if rec.State.Terminal() {
		return DeployResponse{GuardianJob: name}, nil
	}
	m, err := manifest.Decode(rec.Manifest)
	if err != nil {
		_, _ = s.deps.TransitionJob(jobID, types.StateFailed, "manifest corrupted: "+err.Error())
		return DeployResponse{}, err
	}
	spec := kube.PodSpec{
		Labels: map[string]string{"app": "dlaas-guardian", "job": jobID},
		Containers: []kube.ContainerSpec{guardian.ContainerSpec(guardian.Params{
			Deps:              s.deps,
			JobID:             jobID,
			Manifest:          m,
			MaxDeployAttempts: s.MaxDeployAttempts,
			StepDelay:         s.GuardianStepDelay,
			ControlPlane:      s.ControlPlane,
		})},
		RestartPolicy: kube.RestartNever,
	}
	if _, err := s.deps.Kube.CreateJob(name, guardianBackoffLimit, spec); err != nil {
		return DeployResponse{}, fmt.Errorf("creating guardian job: %w", err)
	}
	return DeployResponse{GuardianJob: name}, nil
}

// halt marks the job HALTED; the Guardian observes the state and tears
// the job down. Jobs without a Guardian yet (QUEUED) are halted directly.
func (s *Service) halt(jobID string) (HaltResponse, error) {
	rec, err := s.deps.TransitionJob(jobID, types.StateHalted, "user requested termination")
	if err != nil {
		return HaltResponse{}, err
	}
	return HaltResponse{State: rec.State}, nil
}

// Call is a typed client helper for other services and tests.
func Call[Req, Resp any](bus *rpc.Bus, method string, req Req) (Resp, error) {
	return CallCtx[Req, Resp](context.Background(), bus, method, req)
}

// CallCtx is Call with a caller context, so callers holding a trace
// span context (trace.NewContext) get the call recorded as a span.
func CallCtx[Req, Resp any](ctx context.Context, bus *rpc.Bus, method string, req Req) (Resp, error) {
	var zero Resp
	out, err := bus.Call(ctx, core.LCMService, method, req)
	if err != nil {
		return zero, err
	}
	resp, ok := out.(Resp)
	if !ok {
		return zero, fmt.Errorf("lcm: unexpected response type %T", out)
	}
	return resp, nil
}
