package lcm

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/core/guardian"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/etcd"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/metrics"
	"repro/internal/mongo"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/rpc"
)

func newTestDeps(t *testing.T) (*core.Deps, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	link := netsim.NewSharedLink(netsim.Ethernet1G, clk)
	cluster := kube.NewCluster(kube.Config{Clock: clk},
		kube.NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		kube.NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	store := etcd.New(1, clk)
	t.Cleanup(func() {
		cluster.Stop()
		store.Close()
		clk.Close()
	})
	return &core.Deps{
		Clock:       clk,
		Bus:         rpc.NewBus(clk),
		Kube:        cluster,
		Etcd:        store,
		Mongo:       mongo.New(clk),
		ObjectStore: objectstore.New(clk, link),
		NFS:         nfs.NewServer(clk),
		DataLink:    link,
		DefaultGPU:  gpu.K80,
		Metrics:     metrics.NewRegistry(),
	}, clk
}

// insertJob records a job in the given state and returns its ID.
func insertJob(t *testing.T, d *core.Deps, state types.JobState) string {
	t.Helper()
	m := manifest.Manifest{
		Name: "t", Framework: "tensorflow", Model: "resnet50",
		Learners: 1, GPUsPerLearner: 1, BatchPerGPU: 32, Epochs: 1,
		DatasetImages: 1000,
		TrainingData:  manifest.DataRef{Bucket: "data", Key: "k", AccessKey: "ak", SecretKey: "sk"},
		Results:       manifest.DataRef{Bucket: "results", AccessKey: "ak", SecretKey: "sk"},
	}
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	id := d.NextJobID()
	now := d.Clock.Now()
	if err := d.InsertJob(types.JobRecord{
		ID: id, Tenant: "tenant", State: state, Manifest: raw,
		SubmittedAt: now, UpdatedAt: now,
	}); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestDeployCreatesGuardianJobIdempotently(t *testing.T) {
	d, _ := newTestDeps(t)
	s := New(d)
	id := insertJob(t, d, types.StateQueued)

	resp, err := s.deploy(id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.GuardianJob != guardian.KubeJobName(id) {
		t.Fatalf("guardian job = %q", resp.GuardianJob)
	}
	kj := d.Kube.JobByName(guardian.KubeJobName(id))
	if kj == nil {
		t.Fatal("guardian kube Job not created")
	}
	// A second deploy finds the existing Job instead of duplicating it.
	if _, err := s.deploy(id); err != nil {
		t.Fatal(err)
	}
	if got := d.Kube.JobByName(guardian.KubeJobName(id)); got != kj {
		t.Fatal("deploy is not idempotent")
	}
}

func TestDeployUnknownJobFails(t *testing.T) {
	d, _ := newTestDeps(t)
	s := New(d)
	if _, err := s.deploy("job-000404"); err == nil {
		t.Fatal("deploy of unknown job succeeded")
	}
}

func TestDeployCorruptManifestFailsJob(t *testing.T) {
	d, _ := newTestDeps(t)
	s := New(d)
	id := d.NextJobID()
	now := d.Clock.Now()
	if err := d.InsertJob(types.JobRecord{
		ID: id, Tenant: "x", State: types.StateQueued, Manifest: "{corrupt",
		SubmittedAt: now, UpdatedAt: now,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.deploy(id); err == nil {
		t.Fatal("corrupt manifest deployed")
	}
	rec, err := d.GetJob(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != types.StateFailed {
		t.Fatalf("state = %s, want FAILED", rec.State)
	}
}

func TestHaltMarksJob(t *testing.T) {
	d, _ := newTestDeps(t)
	s := New(d)
	id := insertJob(t, d, types.StateQueued)
	resp, err := s.halt(id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != types.StateHalted {
		t.Fatalf("state = %s, want HALTED", resp.State)
	}
}

func TestSweepDeploysQueuedJobs(t *testing.T) {
	d, _ := newTestDeps(t)
	s := New(d)
	id := insertJob(t, d, types.StateQueued)
	s.sweepQueued()
	if d.Kube.JobByName(guardian.KubeJobName(id)) == nil {
		t.Fatal("sweep did not deploy the queued job")
	}
}

func TestGarbageCollectReapsTerminalJobResources(t *testing.T) {
	d, _ := newTestDeps(t)
	s := New(d)
	id := insertJob(t, d, types.StateQueued)
	// Simulate a Guardian that died before its own teardown: terminal
	// state in MongoDB, but volume, network policy, gang and etcd keys
	// still exist.
	if _, err := d.TransitionJob(id, types.StateFailed, "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.NFS.Provision(guardian.VolumeName(id)); err != nil {
		t.Fatal(err)
	}
	d.Kube.ApplyNetworkPolicy(kube.NetworkPolicy{Name: guardian.PolicyName(id)})
	if _, err := d.Kube.SubmitGang(kube.GangSpec{
		Name: guardian.GangName(id), Members: 1, GPUsPerMember: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Etcd.Put(types.GuardianJournalKey(id), "{}"); err != nil {
		t.Fatal(err)
	}

	s.garbageCollect()

	if _, err := d.NFS.Volume(guardian.VolumeName(id)); err == nil {
		t.Fatal("volume not released")
	}
	if d.Kube.GangByName(guardian.GangName(id)) != nil {
		t.Fatal("gang not cancelled")
	}
	if kvs, _ := d.Etcd.Range(types.JobPrefix(id)); len(kvs) != 0 {
		t.Fatalf("etcd keys leaked: %v", kvs)
	}
	// Non-terminal jobs are left alone.
	id2 := insertJob(t, d, types.StateQueued)
	if _, err := d.NFS.Provision(guardian.VolumeName(id2)); err != nil {
		t.Fatal(err)
	}
	s.garbageCollect()
	if _, err := d.NFS.Volume(guardian.VolumeName(id2)); err != nil {
		t.Fatal("live job's volume reaped")
	}
}
