// Package manifest defines and validates the training-job manifest users
// submit to DLaaS ("Job parameters, including the source of training
// data, credentials to access training data, framework, number of
// learners, location where results and logs should be stored, learning
// rate, etc., are specified using a manifest file").
package manifest

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/trainsim"
)

// ErrInvalid wraps all manifest validation failures.
var ErrInvalid = errors.New("manifest: invalid")

// MaxPriority bounds the job priority range (0 = default, best-effort;
// MaxPriority = most urgent).
const MaxPriority = 1000

// DataRef locates training data or a results destination in the object
// store, with the credentials to access it.
type DataRef struct {
	Bucket    string `json:"bucket"`
	Key       string `json:"key,omitempty"`
	AccessKey string `json:"access_key"`
	SecretKey string `json:"secret_key"`
}

// Manifest is a training-job specification.
type Manifest struct {
	// Name is a user-facing job label.
	Name string `json:"name"`
	// Framework selects the DL framework image (caffe, tensorflow, ...).
	Framework string `json:"framework"`
	// Model selects the network architecture to train (vgg16, ...).
	Model string `json:"model"`
	// Learners is the number of learner processes (1 = single node).
	Learners int `json:"learners"`
	// GPUsPerLearner is the per-learner GPU allocation.
	GPUsPerLearner int `json:"gpus_per_learner"`
	// GPUType optionally pins a GPU model ("K80", "P100").
	GPUType string `json:"gpu_type,omitempty"`
	// BatchPerGPU is the minibatch per GPU.
	BatchPerGPU int `json:"batch_per_gpu"`
	// Epochs is how many passes over the data to train.
	Epochs int `json:"epochs"`
	// DatasetImages is the training-set size in samples.
	DatasetImages int64 `json:"dataset_images"`
	// TrainingData locates the input dataset.
	TrainingData DataRef `json:"training_data"`
	// Results locates where checkpoints/logs/model are written.
	Results DataRef `json:"results"`
	// Priority orders jobs in the gang scheduler's pending queue
	// (0..MaxPriority, default 0). Higher-priority jobs admit first and
	// may preempt the learner gangs of lower-priority jobs.
	Priority int `json:"priority,omitempty"`
	// CheckpointInterval is the user-chosen checkpoint cadence in
	// training time ("the checkpointing interval depends on the
	// tolerance level of the user to failures"). Zero disables
	// periodic checkpoints.
	CheckpointInterval time.Duration `json:"checkpoint_interval"`
	// LearningRate is passed through to the framework (profiling only).
	LearningRate float64 `json:"learning_rate,omitempty"`
}

// Validate checks the manifest and returns a descriptive error listing
// the first problem found.
func (m *Manifest) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("%w: name is required", ErrInvalid)
	case !trainsim.KnownFramework(trainsim.Framework(m.Framework)):
		return fmt.Errorf("%w: unsupported framework %q", ErrInvalid, m.Framework)
	case m.Learners < 1:
		return fmt.Errorf("%w: learners must be >= 1 (got %d)", ErrInvalid, m.Learners)
	case m.GPUsPerLearner < 0:
		return fmt.Errorf("%w: gpus_per_learner must be >= 0", ErrInvalid)
	case m.BatchPerGPU < 1:
		return fmt.Errorf("%w: batch_per_gpu must be >= 1", ErrInvalid)
	case m.Epochs < 1:
		return fmt.Errorf("%w: epochs must be >= 1", ErrInvalid)
	case m.DatasetImages < 1:
		return fmt.Errorf("%w: dataset_images must be >= 1", ErrInvalid)
	case m.TrainingData.Bucket == "":
		return fmt.Errorf("%w: training_data.bucket is required", ErrInvalid)
	case m.TrainingData.Key == "":
		return fmt.Errorf("%w: training_data.key is required", ErrInvalid)
	case m.Results.Bucket == "":
		return fmt.Errorf("%w: results.bucket is required", ErrInvalid)
	case m.CheckpointInterval < 0:
		return fmt.Errorf("%w: checkpoint_interval must be >= 0", ErrInvalid)
	case m.Priority < 0 || m.Priority > MaxPriority:
		return fmt.Errorf("%w: priority must be in 0..%d (got %d)", ErrInvalid, MaxPriority, m.Priority)
	}
	if _, ok := trainsim.ModelByName(m.Model); !ok {
		return fmt.Errorf("%w: unknown model %q", ErrInvalid, m.Model)
	}
	return nil
}

// ModelSpec resolves the manifest's model from the catalog. Validate
// must have succeeded.
func (m *Manifest) ModelSpec() trainsim.ModelSpec {
	spec, _ := trainsim.ModelByName(m.Model)
	return spec
}

// TotalGPUs is the job's aggregate GPU demand.
func (m *Manifest) TotalGPUs() int { return m.Learners * m.GPUsPerLearner }

// Encode serializes the manifest to JSON.
func (m *Manifest) Encode() (string, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("encoding manifest: %w", err)
	}
	return string(b), nil
}

// Decode parses a JSON manifest. The result is validated.
func Decode(s string) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
