package manifest

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func valid() Manifest {
	return Manifest{
		Name:           "train-1",
		Framework:      "tensorflow",
		Model:          "resnet50",
		Learners:       2,
		GPUsPerLearner: 1,
		BatchPerGPU:    32,
		Epochs:         3,
		DatasetImages:  100000,
		TrainingData: DataRef{
			Bucket: "data", Key: "imagenet.rec", AccessKey: "ak", SecretKey: "sk",
		},
		Results: DataRef{
			Bucket: "results", AccessKey: "ak", SecretKey: "sk",
		},
		CheckpointInterval: time.Hour,
	}
}

func TestValidManifestPasses(t *testing.T) {
	m := valid()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidationRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
		substr string
	}{
		{"empty name", func(m *Manifest) { m.Name = "" }, "name"},
		{"bad framework", func(m *Manifest) { m.Framework = "jax" }, "framework"},
		{"zero learners", func(m *Manifest) { m.Learners = 0 }, "learners"},
		{"negative gpus", func(m *Manifest) { m.GPUsPerLearner = -1 }, "gpus"},
		{"zero batch", func(m *Manifest) { m.BatchPerGPU = 0 }, "batch"},
		{"zero epochs", func(m *Manifest) { m.Epochs = 0 }, "epochs"},
		{"zero dataset", func(m *Manifest) { m.DatasetImages = 0 }, "dataset"},
		{"no data bucket", func(m *Manifest) { m.TrainingData.Bucket = "" }, "training_data.bucket"},
		{"no data key", func(m *Manifest) { m.TrainingData.Key = "" }, "training_data.key"},
		{"no results bucket", func(m *Manifest) { m.Results.Bucket = "" }, "results.bucket"},
		{"negative checkpoint", func(m *Manifest) { m.CheckpointInterval = -time.Second }, "checkpoint"},
		{"unknown model", func(m *Manifest) { m.Model = "gpt4" }, "model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := valid()
			tc.mutate(&m)
			err := m.Validate()
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("err = %v, want ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("err %q does not mention %q", err, tc.substr)
			}
		})
	}
}

func TestPriorityValidation(t *testing.T) {
	cases := []struct {
		name     string
		priority int
		ok       bool
	}{
		{"default-zero", 0, true},
		{"mid-range", 500, true},
		{"max", MaxPriority, true},
		{"negative", -1, false},
		{"above-max", MaxPriority + 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := valid()
			m.Priority = tc.priority
			err := m.Validate()
			if tc.ok && err != nil {
				t.Fatalf("priority %d rejected: %v", tc.priority, err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("priority %d accepted", tc.priority)
				}
				if !errors.Is(err, ErrInvalid) {
					t.Fatalf("error not wrapped in ErrInvalid: %v", err)
				}
			}
		})
	}
}

func TestPrioritySurvivesRoundTrip(t *testing.T) {
	m := valid()
	m.Priority = 42
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Priority != 42 {
		t.Fatalf("priority round-trip = %d, want 42", got.Priority)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := valid()
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if *got != m {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, m)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode("{not json"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
	// Valid JSON but invalid manifest.
	if _, err := Decode(`{"name":"x"}`); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestTotalGPUs(t *testing.T) {
	m := valid()
	m.Learners = 4
	m.GPUsPerLearner = 2
	if m.TotalGPUs() != 8 {
		t.Fatalf("TotalGPUs = %d", m.TotalGPUs())
	}
}

func TestModelSpecResolution(t *testing.T) {
	m := valid()
	spec := m.ModelSpec()
	if spec.Name != "resnet50" || spec.Params == 0 {
		t.Fatalf("spec = %+v", spec)
	}
}

// Property: every valid manifest survives an encode/decode round trip.
func TestQuickRoundTrip(t *testing.T) {
	frameworks := []string{"caffe", "tensorflow", "pytorch", "torch", "horovod"}
	models := []string{"vgg16", "resnet50", "inceptionv3", "alexnet", "googlenet"}
	f := func(fi, mi uint8, learners, batch, epochs uint8) bool {
		m := valid()
		m.Framework = frameworks[int(fi)%len(frameworks)]
		m.Model = models[int(mi)%len(models)]
		m.Learners = int(learners%8) + 1
		m.BatchPerGPU = int(batch%128) + 1
		m.Epochs = int(epochs%10) + 1
		raw, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		return err == nil && *got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
