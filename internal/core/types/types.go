// Package types defines the shared vocabulary of the DLaaS core
// services: job lifecycle states, learner statuses, job records stored in
// MongoDB, and the etcd key-space conventions used for reliable status
// coordination between the Helper controller and the Guardian.
package types

import (
	"fmt"
	"time"
)

// JobState is the user-visible lifecycle state of a training job. Users
// rely on these transitions (with accurate timestamps) for profiling and
// debugging, so the platform must report them dependably.
type JobState string

// Job lifecycle states.
const (
	// StateQueued: metadata durably recorded, awaiting deployment.
	StateQueued JobState = "QUEUED"
	// StateDeploying: the Guardian is provisioning resources.
	StateDeploying JobState = "DEPLOYING"
	// StateProcessing: learners are training.
	StateProcessing JobState = "PROCESSING"
	// StateStoring: results/logs are being persisted to the object store.
	StateStoring JobState = "STORING"
	// StateCompleted: training finished and results are stored.
	StateCompleted JobState = "COMPLETED"
	// StateFailed: the job failed permanently (including deployment
	// retry exhaustion).
	StateFailed JobState = "FAILED"
	// StateHalted: the user terminated the job.
	StateHalted JobState = "HALTED"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateHalted
}

// validTransitions encodes the job state machine.
var validTransitions = map[JobState][]JobState{
	StateQueued:    {StateDeploying, StateFailed, StateHalted},
	StateDeploying: {StateProcessing, StateStoring, StateDeploying, StateFailed, StateHalted},
	// PROCESSING -> DEPLOYING covers a Guardian redeploy after recovery.
	StateProcessing: {StateStoring, StateDeploying, StateFailed, StateHalted},
	StateStoring:    {StateCompleted, StateFailed, StateHalted},
}

// CanTransition reports whether from -> to is a legal state change.
func CanTransition(from, to JobState) bool {
	for _, n := range validTransitions[from] {
		if n == to {
			return true
		}
	}
	return false
}

// LearnerStatus is the per-learner execution status recorded in etcd by
// the Helper's controller container.
type LearnerStatus string

// Learner statuses.
const (
	LearnerStarting    LearnerStatus = "STARTING"
	LearnerDownloading LearnerStatus = "DOWNLOADING"
	LearnerTraining    LearnerStatus = "TRAINING"
	LearnerCompleted   LearnerStatus = "COMPLETED"
	LearnerFailed      LearnerStatus = "FAILED"
)

// StatusUpdate is one timestamped learner status record.
type StatusUpdate struct {
	Learner int           `json:"learner"`
	Status  LearnerStatus `json:"status"`
	// Time is the virtual timestamp of the update; users depend on
	// these for profiling ("users use associated timestamps for job
	// profiling and debugging").
	Time time.Time `json:"time"`
	// Detail carries optional context (exit code, progress).
	Detail string `json:"detail,omitempty"`
}

// JobRecord is the MongoDB document for one training job.
type JobRecord struct {
	ID       string   `json:"id"`
	Tenant   string   `json:"tenant"`
	State    JobState `json:"state"`
	Manifest string   `json:"manifest"` // serialized manifest
	// DeployAttempts counts Guardian deployment tries.
	DeployAttempts int `json:"deploy_attempts"`
	// Times of state transitions (virtual clock).
	SubmittedAt time.Time `json:"submitted_at"`
	UpdatedAt   time.Time `json:"updated_at"`
	// Failure reason when State == FAILED.
	Reason string `json:"reason,omitempty"`
}

// Event is a timestamped job state transition exposed to users.
type Event struct {
	JobID string
	State JobState
	Time  time.Time
	Note  string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s %s %s", e.Time.Format("15:04:05.000"), e.JobID, e.State)
}

// Etcd key-space conventions shared by the Guardian and controller.

// LearnerStatusKey is where the controller records learner l's current
// status for job id.
func LearnerStatusKey(id string, l int) string {
	return fmt.Sprintf("/dlaas/jobs/%s/learners/%d/status", id, l)
}

// LearnerStatusPrefix covers all learner statuses of a job.
func LearnerStatusPrefix(id string) string {
	return fmt.Sprintf("/dlaas/jobs/%s/learners/", id)
}

// LearnerEvictAckKey is where the controller mirrors learner l's
// eviction acknowledgment (an events.KindEvictionAck envelope). It
// lives under LearnerStatusPrefix so the Guardian's one learner watch
// carries acks and statuses alike.
func LearnerEvictAckKey(id string, l int) string {
	return fmt.Sprintf("/dlaas/jobs/%s/learners/%d/evict-ack", id, l)
}

// EvictionIntentKey is where the Guardian mirrors the scheduler's
// eviction intent (an events.KindEvictionIntent envelope) so the intent
// rides the same revision-ordered watch feeds as every other
// control-plane event.
func EvictionIntentKey(id string) string {
	return fmt.Sprintf("/dlaas/jobs/%s/evict/intent", id)
}

// GuardianJournalKey is where the Guardian journals its deployment
// progress so a restarted Guardian can roll back a partial deployment.
func GuardianJournalKey(id string) string {
	return fmt.Sprintf("/dlaas/jobs/%s/guardian/journal", id)
}

// JobPrefix covers every etcd key belonging to a job.
func JobPrefix(id string) string {
	return fmt.Sprintf("/dlaas/jobs/%s/", id)
}
