package types

import (
	"testing"
	"testing/quick"
)

func TestTerminalStates(t *testing.T) {
	terminal := []JobState{StateCompleted, StateFailed, StateHalted}
	for _, s := range terminal {
		if !s.Terminal() {
			t.Errorf("%s should be terminal", s)
		}
	}
	for _, s := range []JobState{StateQueued, StateDeploying, StateProcessing, StateStoring} {
		if s.Terminal() {
			t.Errorf("%s should not be terminal", s)
		}
	}
}

func TestCanonicalPathIsLegal(t *testing.T) {
	path := []JobState{StateQueued, StateDeploying, StateProcessing, StateStoring, StateCompleted}
	for i := 0; i+1 < len(path); i++ {
		if !CanTransition(path[i], path[i+1]) {
			t.Errorf("canonical transition %s -> %s rejected", path[i], path[i+1])
		}
	}
}

func TestIllegalTransitions(t *testing.T) {
	bad := [][2]JobState{
		{StateQueued, StateCompleted},
		{StateQueued, StateProcessing},
		{StateCompleted, StateProcessing},
		{StateFailed, StateDeploying},
		{StateHalted, StateProcessing},
		{StateStoring, StateProcessing},
	}
	for _, pair := range bad {
		if CanTransition(pair[0], pair[1]) {
			t.Errorf("illegal transition %s -> %s accepted", pair[0], pair[1])
		}
	}
}

func TestHaltReachableFromEveryNonTerminalState(t *testing.T) {
	for _, s := range []JobState{StateQueued, StateDeploying, StateProcessing, StateStoring} {
		if !CanTransition(s, StateHalted) {
			t.Errorf("halt unreachable from %s", s)
		}
	}
}

func TestFailureReachableFromEveryNonTerminalState(t *testing.T) {
	for _, s := range []JobState{StateQueued, StateDeploying, StateProcessing, StateStoring} {
		if !CanTransition(s, StateFailed) {
			t.Errorf("FAILED unreachable from %s", s)
		}
	}
}

func TestGuardianRedeployTransition(t *testing.T) {
	// A recovered Guardian may re-enter DEPLOYING from PROCESSING.
	if !CanTransition(StateProcessing, StateDeploying) {
		t.Error("PROCESSING -> DEPLOYING rejected")
	}
	// And refresh DEPLOYING on retry.
	if !CanTransition(StateDeploying, StateDeploying) {
		t.Error("DEPLOYING -> DEPLOYING rejected")
	}
}

// Property: no transition ever leaves a terminal state.
func TestQuickTerminalStatesAreSinks(t *testing.T) {
	all := []JobState{StateQueued, StateDeploying, StateProcessing, StateStoring,
		StateCompleted, StateFailed, StateHalted}
	f := func(i, j uint8) bool {
		from := all[int(i)%len(all)]
		to := all[int(j)%len(all)]
		if from.Terminal() && CanTransition(from, to) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyConventions(t *testing.T) {
	if got := LearnerStatusKey("job-7", 2); got != "/dlaas/jobs/job-7/learners/2/status" {
		t.Fatalf("LearnerStatusKey = %q", got)
	}
	if got := LearnerStatusPrefix("job-7"); got != "/dlaas/jobs/job-7/learners/" {
		t.Fatalf("LearnerStatusPrefix = %q", got)
	}
	if got := GuardianJournalKey("job-7"); got != "/dlaas/jobs/job-7/guardian/journal" {
		t.Fatalf("GuardianJournalKey = %q", got)
	}
	// Every per-job key lives under the job prefix, so cleanup by
	// prefix is complete.
	prefix := JobPrefix("job-7")
	for _, k := range []string{LearnerStatusKey("job-7", 0), GuardianJournalKey("job-7")} {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			t.Errorf("key %q escapes job prefix %q", k, prefix)
		}
	}
}
