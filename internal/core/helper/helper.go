// Package helper implements the four helper containers that DLaaS
// deploys alongside every training job's learners: load-data,
// log-collector, store-results, and the controller. The helper pod is
// isolated from the learner pods but shares the job's NFS volume, which
// is how the controller "monitors the execution and exit status of the
// learner processes" and how status updates survive crashes (NFS makes
// them resilient to controller crashes, etcd to Guardian crashes).
package helper

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/core/learner"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/events"
	"repro/internal/kube"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/trace"
)

// Poll cadences for the helper loops.
const (
	controllerPoll   = 500 * time.Millisecond
	logCollectorPoll = 5 * time.Second
)

// Journal is the controller's NFS crash-recovery record: the last status
// it published per learner, so a restarted controller resumes without
// gaps or duplicates ("K8S will restart the controller which can read
// current status and previous statuses from NFS").
const journalPath = "controller/journal"

// ControllerLogPath is the controller's own NFS log (publish failures
// and other diagnostics; shipped with learner logs by the collector).
const ControllerLogPath = "controller/controller.log"

// Markers written on the shared volume.
const (
	// DataReadyMarker is written by load-data after validating access
	// to the training dataset.
	DataReadyMarker = "helper/data-ready"
	// ResultsStoredMarker is written by store-results after the trained
	// model and logs are persisted.
	ResultsStoredMarker = "helper/results-stored"
)

// ResultModelKey is the results-bucket key where store-results persists
// the trained model for a completed job. Verdict oracles check this key
// to confirm a COMPLETED state is backed by an actual model object.
func ResultModelKey(jobID string) string {
	return fmt.Sprintf("models/%s/model.bin", jobID)
}

// Params configures the helper containers of one job.
type Params struct {
	Deps       *core.Deps
	JobID      string
	Manifest   *manifest.Manifest
	VolumeName string
}

// PodSpec assembles the helper pod: one pod, four cooperating containers,
// deployed by the Guardian as a K8s Deployment.
func PodSpec(p Params) kube.PodSpec {
	return kube.PodSpec{
		Labels: map[string]string{
			"app":    "dlaas-helper",
			"job":    p.JobID,
			"tenant": p.Manifest.TrainingData.AccessKey,
		},
		Tenant:        p.Manifest.TrainingData.AccessKey,
		RestartPolicy: kube.RestartAlways,
		Volumes:       []string{p.VolumeName},
		Containers: []kube.ContainerSpec{
			{
				Name:       "load-data",
				Image:      "dlaas/load-data",
				StartDelay: 2200 * time.Millisecond,
				Run:        func(ctx *kube.ContainerCtx) int { return runLoadData(ctx, p) },
			},
			{
				Name:       "controller",
				Image:      "dlaas/controller",
				StartDelay: 2 * time.Second,
				Run:        func(ctx *kube.ContainerCtx) int { return runController(ctx, p) },
			},
			{
				Name:       "log-collector",
				Image:      "dlaas/log-collector",
				StartDelay: 2 * time.Second,
				Run:        func(ctx *kube.ContainerCtx) int { return runLogCollector(ctx, p) },
			},
			{
				Name:       "store-results",
				Image:      "dlaas/store-results",
				StartDelay: 2 * time.Second,
				Run:        func(ctx *kube.ContainerCtx) int { return runStoreResults(ctx, p) },
			},
		},
	}
}

// runLoadData validates access to the training data and publishes the
// data-ready marker, then idles (helper containers are restart-always
// servers).
func runLoadData(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	vol, err := d.NFS.Volume(p.VolumeName)
	if err != nil {
		return learner.ExitVolumeError
	}
	m := p.Manifest
	creds := objectstore.Credentials{AccessKey: m.TrainingData.AccessKey, SecretKey: m.TrainingData.SecretKey}
	if _, err := d.ObjectStore.Stat(m.TrainingData.Bucket, m.TrainingData.Key, creds); err != nil {
		vol.Write(DataReadyMarker, []byte(fmt.Sprintf("error: %v", err)))
		<-ctx.Killed()
		return 0
	}
	vol.Write(DataReadyMarker, []byte("ok"))
	<-ctx.Killed()
	return 0
}

// controllerJournal is the serialized journal structure.
type controllerJournal struct {
	// Last published status per learner ordinal.
	Last map[string]types.LearnerStatus `json:"last"`
	// Acked lists learner ordinals whose eviction acknowledgment has
	// been mirrored into etcd, so restarts don't republish.
	Acked map[string]bool `json:"acked,omitempty"`
}

// runController watches learner status and exit files on NFS and mirrors
// them into etcd as events.Envelope records, where the Guardian
// aggregates them (polling or watching, per Options.ControlPlane).
// Decoupling via etcd is the paper's mechanism for reliable status
// updates.
func runController(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	vol, err := d.NFS.Volume(p.VolumeName)
	if err != nil {
		return learner.ExitVolumeError
	}

	// Crash recovery: resume from the journal so restarts don't republish.
	journal := controllerJournal{Last: map[string]types.LearnerStatus{}}
	if raw, err := vol.Read(journalPath); err == nil {
		_ = json.Unmarshal(raw, &journal) // corrupt journal = start fresh
	}
	if journal.Last == nil {
		journal.Last = map[string]types.LearnerStatus{}
	}
	if journal.Acked == nil {
		journal.Acked = map[string]bool{}
	}
	saveJournal := func() {
		if jraw, err := json.Marshal(journal); err == nil {
			vol.Write(journalPath, jraw)
		}
	}

	// A failed publish is retried on the next poll, but it must not be
	// silent: a wedged etcd would otherwise look like learners that never
	// progress. Each failure is counted, and logged once per learner.
	dropLogged := make(map[int]bool)
	noteDrop := func(l int, stage string, err error) {
		if d.Metrics != nil {
			d.Metrics.Inc("controller_status_drops", stage)
		}
		if !dropLogged[l] {
			dropLogged[l] = true
			line := fmt.Sprintf("%s controller: dropping status update for learner %d (%s: %v); will retry\n",
				d.Clock.Now().Format("15:04:05"), l, stage, err)
			vol.Append(ControllerLogPath, []byte(line))
		}
	}

	for {
		// Acks only exist after the Guardian posts the evict-request, so
		// one existence check keeps the per-learner ack reads off the
		// steady-state polling path entirely.
		evicting := vol.Exists(learner.EvictRequestPath)
		for l := 0; l < p.Manifest.Learners; l++ {
			key := fmt.Sprintf("%d", l)
			// Mirror a pending eviction ack before the regular status:
			// the Guardian's early-complete (and with it the whole grace
			// protocol's win) hangs on this arriving quickly.
			if evicting && !journal.Acked[key] {
				if raw, err := vol.Read(learner.EvictAckPath(l)); err == nil {
					if _, err := d.Etcd.Put(types.LearnerEvictAckKey(p.JobID, l), string(raw)); err != nil {
						noteDrop(l, "etcd-put-ack", err)
					} else {
						journal.Acked[key] = true
						saveJournal()
					}
				}
			}
			status, src := currentLearnerStatus(vol, l)
			if status == "" {
				continue
			}
			if journal.Last[key] == status {
				continue
			}
			// The mirrored envelope is rebuilt (controller-stamped time and
			// progress detail), but the learner's trace context is copied
			// through — the etcd mirror stays on the job's span tree.
			env := events.LearnerStatus(p.JobID, types.StatusUpdate{
				Learner: l,
				Status:  status,
				Time:    d.Clock.Now(),
				Detail:  progressDetail(vol, l),
			}).WithTrace(src.TraceID, src.SpanID)
			raw, err := env.Encode()
			if err != nil {
				noteDrop(l, "marshal", err)
				continue
			}
			if _, err := d.Etcd.Put(types.LearnerStatusKey(p.JobID, l), string(raw)); err != nil {
				// etcd momentarily unavailable (leader election):
				// retry on the next poll rather than losing the update.
				noteDrop(l, "etcd-put", err)
				continue
			}
			dropLogged[l] = false
			journal.Last[key] = status
			saveJournal()
		}
		if !ctx.Sleep(controllerPoll) {
			return 0
		}
	}
}

// currentLearnerStatus derives learner l's status from the shared volume:
// the exit file wins (orderly termination), otherwise the status file
// (an events.Envelope, or a bare status string from older learners). The
// source envelope is returned alongside so the caller can propagate its
// trace context; exit-derived statuses still carry the last status
// envelope's context (legacy bare-string statuses carry none).
func currentLearnerStatus(vol *nfs.Volume, l int) (types.LearnerStatus, events.Envelope) {
	var src events.Envelope
	if raw, err := vol.Read(learner.StatusPath(l)); err == nil {
		if env, ok := events.Decode(raw); ok {
			src = env
		}
	}
	if code, ok := vol.ReadExitCode(l); ok {
		if code == 0 {
			return types.LearnerCompleted, src
		}
		return types.LearnerFailed, src
	}
	return types.LearnerStatus(src.Status), src
}

func progressDetail(vol *nfs.Volume, l int) string {
	raw, err := vol.Read(learner.ProgressPath(l))
	if err != nil {
		return ""
	}
	return "images=" + string(raw)
}

// runLogCollector periodically uploads learner logs from NFS to the
// results bucket so logs survive any pod's demise ("reliable streaming of
// logs from the job, irrespective of the stage it is in, even if it
// crashes/fails").
func runLogCollector(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	vol, err := d.NFS.Volume(p.VolumeName)
	if err != nil {
		return learner.ExitVolumeError
	}
	m := p.Manifest
	creds := objectstore.Credentials{AccessKey: m.Results.AccessKey, SecretKey: m.Results.SecretKey}
	type shipped struct{ logs, metrics int64 }
	uploaded := make(map[int]shipped) // bytes already shipped per learner
	for {
		for l := 0; l < m.Learners; l++ {
			got := uploaded[l]
			if size := vol.Size(learner.LogPath(l)); size != got.logs {
				if raw, err := vol.Read(learner.LogPath(l)); err == nil {
					key := learner.ResultLogKey(p.JobID, l)
					if err := d.ObjectStore.Put(m.Results.Bucket, key, raw, creds); err == nil {
						got.logs = size
					}
				}
			}
			if size := vol.Size(learner.MetricsPath(l)); size != got.metrics {
				if raw, err := vol.Read(learner.MetricsPath(l)); err == nil {
					key := learner.ResultMetricsKey(p.JobID, l)
					if err := d.ObjectStore.Put(m.Results.Bucket, key, raw, creds); err == nil {
						got.metrics = size
					}
				}
			}
			uploaded[l] = got
		}
		if !ctx.Sleep(logCollectorPoll) {
			return 0
		}
	}
}

// runStoreResults waits for every learner to finish successfully, then
// persists the trained model to the results bucket and publishes the
// stored marker that lets the Guardian declare the job COMPLETED.
func runStoreResults(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	vol, err := d.NFS.Volume(p.VolumeName)
	if err != nil {
		return learner.ExitVolumeError
	}
	m := p.Manifest
	creds := objectstore.Credentials{AccessKey: m.Results.AccessKey, SecretKey: m.Results.SecretKey}
	for {
		done, failed := 0, 0
		for l := 0; l < m.Learners; l++ {
			code, ok := vol.ReadExitCode(l)
			if !ok {
				continue
			}
			if code == 0 {
				done++
			} else {
				failed++
			}
		}
		if failed > 0 {
			// Nothing to store; the Guardian handles failure.
			<-ctx.Killed()
			return 0
		}
		if done == m.Learners {
			break
		}
		if !ctx.Sleep(controllerPoll) {
			return 0
		}
	}
	// Upload the trained model (a full parameter snapshot).
	ssp := d.Trace.StartSpan(trace.JobRoot(p.JobID), "store-results")
	ssp.SetPhase(trace.PhaseStore)
	modelBytes := p.Manifest.ModelSpec().Params * 4
	d.DataLink.Transfer(modelBytes)
	_ = d.ObjectStore.PutSynthetic(m.Results.Bucket, ResultModelKey(p.JobID), modelBytes, creds)

	// Ship the final logs and metrics before declaring results stored:
	// the Guardian tears the volume down right after the marker appears,
	// and the log-collector's periodic pass may not run again — both
	// streams must be complete in the results bucket first ("reliable
	// streaming of logs ... irrespective of the stage it is in").
	for l := 0; l < m.Learners; l++ {
		if raw, err := vol.Read(learner.LogPath(l)); err == nil {
			logKey := learner.ResultLogKey(p.JobID, l)
			_ = d.ObjectStore.Put(m.Results.Bucket, logKey, raw, creds)
		}
		if raw, err := vol.Read(learner.MetricsPath(l)); err == nil {
			metKey := learner.ResultMetricsKey(p.JobID, l)
			_ = d.ObjectStore.Put(m.Results.Bucket, metKey, raw, creds)
		}
	}

	vol.Write(ResultsStoredMarker, []byte("ok"))
	ssp.End()
	<-ctx.Killed()
	return 0
}
