package helper

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/core/learner"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/etcd"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/metrics"
	"repro/internal/mongo"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/rpc"
)

func newTestDeps(t *testing.T) (*core.Deps, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	link := netsim.NewSharedLink(netsim.Ethernet1G, clk)
	cluster := kube.NewCluster(kube.Config{Clock: clk},
		kube.NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
	)
	store := etcd.New(1, clk)
	t.Cleanup(func() {
		cluster.Stop()
		store.Close()
		clk.Close()
	})
	return &core.Deps{
		Clock:       clk,
		Bus:         rpc.NewBus(clk),
		Kube:        cluster,
		Etcd:        store,
		Mongo:       mongo.New(clk),
		ObjectStore: objectstore.New(clk, link),
		NFS:         nfs.NewServer(clk),
		DataLink:    link,
		DefaultGPU:  gpu.K80,
		Metrics:     metrics.NewRegistry(),
	}, clk
}

func helperManifest(learners int) *manifest.Manifest {
	return &manifest.Manifest{
		Name: "t", Framework: "tensorflow", Model: "resnet50",
		Learners: learners, GPUsPerLearner: 1, BatchPerGPU: 32, Epochs: 1,
		DatasetImages: 640,
		TrainingData:  manifest.DataRef{Bucket: "data", Key: "train.rec", AccessKey: "ak", SecretKey: "sk"},
		Results:       manifest.DataRef{Bucket: "results", AccessKey: "ak", SecretKey: "sk"},
	}
}

// startHelperPod provisions the job volume and runs the helper pod.
func startHelperPod(t *testing.T, d *core.Deps, m *manifest.Manifest) *nfs.Volume {
	t.Helper()
	vol, err := d.NFS.Provision("vol-j")
	if err != nil {
		t.Fatal(err)
	}
	spec := PodSpec(Params{Deps: d, JobID: "j", Manifest: m, VolumeName: "vol-j"})
	spec.Name = "helper-j"
	spec.Volumes = nil // the simulated containers reach the volume via Deps
	if _, err := d.Kube.CreatePod(spec); err != nil {
		t.Fatal(err)
	}
	return vol
}

func TestPodSpecHasFourHelperContainers(t *testing.T) {
	d, _ := newTestDeps(t)
	spec := PodSpec(Params{Deps: d, JobID: "j", Manifest: helperManifest(1), VolumeName: "v"})
	want := map[string]bool{"load-data": true, "controller": true, "log-collector": true, "store-results": true}
	if len(spec.Containers) != len(want) {
		t.Fatalf("containers = %d, want %d", len(spec.Containers), len(want))
	}
	for _, cs := range spec.Containers {
		if !want[cs.Name] {
			t.Fatalf("unexpected container %q", cs.Name)
		}
	}
	if spec.Labels["job"] != "j" || spec.Tenant == "" {
		t.Fatalf("labels/tenant not stamped: %+v", spec)
	}
}

func TestCurrentLearnerStatus(t *testing.T) {
	d, _ := newTestDeps(t)
	vol, err := d.NFS.Provision("v")
	if err != nil {
		t.Fatal(err)
	}
	// No files yet: unknown.
	if got, _ := currentLearnerStatus(vol, 0); got != "" {
		t.Fatalf("empty volume status = %q", got)
	}
	// Status file only.
	vol.Write(learner.StatusPath(0), []byte(types.LearnerTraining))
	if got, _ := currentLearnerStatus(vol, 0); got != types.LearnerTraining {
		t.Fatalf("status = %q, want TRAINING", got)
	}
	// Exit file wins over the status file (orderly termination).
	vol.WriteExitCode(0, 0)
	if got, _ := currentLearnerStatus(vol, 0); got != types.LearnerCompleted {
		t.Fatalf("status = %q, want COMPLETED after exit 0", got)
	}
	vol.Write(learner.StatusPath(1), []byte(types.LearnerTraining))
	vol.WriteExitCode(1, 5)
	if got, _ := currentLearnerStatus(vol, 1); got != types.LearnerFailed {
		t.Fatalf("status = %q, want FAILED after exit 5", got)
	}
}

func TestControllerMirrorsStatusToEtcd(t *testing.T) {
	d, clk := newTestDeps(t)
	m := helperManifest(1)
	vol := startHelperPod(t, d, m)

	vol.Write(learner.StatusPath(0), []byte(types.LearnerTraining))
	vol.Write(learner.ProgressPath(0), []byte("1280"))

	deadline := clk.Now().Add(5 * time.Minute)
	for clk.Now().Before(deadline) {
		raw, found, err := d.Etcd.Get(types.LearnerStatusKey("j", 0))
		if err == nil && found {
			if !strings.Contains(raw, string(types.LearnerTraining)) {
				t.Fatalf("etcd status = %s, want TRAINING", raw)
			}
			if !strings.Contains(raw, "images=1280") {
				t.Fatalf("etcd status lacks progress detail: %s", raw)
			}
			return
		}
		clk.Sleep(500 * time.Millisecond)
	}
	t.Fatal("controller never mirrored the learner status into etcd")
}

func TestLoadDataPublishesReadiness(t *testing.T) {
	d, clk := newTestDeps(t)
	m := helperManifest(1)
	// Stage the dataset so load-data validates successfully.
	creds := objectstore.Credentials{AccessKey: "ak", SecretKey: "sk"}
	if err := d.ObjectStore.CreateBucket("data", creds); err != nil {
		t.Fatal(err)
	}
	if err := d.ObjectStore.PutSynthetic("data", "train.rec", 1<<20, creds); err != nil {
		t.Fatal(err)
	}
	vol := startHelperPod(t, d, m)
	deadline := clk.Now().Add(5 * time.Minute)
	for clk.Now().Before(deadline) {
		if raw, err := vol.Read(DataReadyMarker); err == nil {
			if string(raw) != "ok" {
				t.Fatalf("data-ready marker = %q, want ok", raw)
			}
			return
		}
		clk.Sleep(500 * time.Millisecond)
	}
	t.Fatal("load-data never published the readiness marker")
}

func TestLoadDataReportsInaccessibleData(t *testing.T) {
	d, clk := newTestDeps(t)
	vol := startHelperPod(t, d, helperManifest(1)) // bucket never created
	deadline := clk.Now().Add(5 * time.Minute)
	for clk.Now().Before(deadline) {
		if raw, err := vol.Read(DataReadyMarker); err == nil {
			if !strings.HasPrefix(string(raw), "error") {
				t.Fatalf("marker = %q, want an error", raw)
			}
			return
		}
		clk.Sleep(500 * time.Millisecond)
	}
	t.Fatal("load-data never reported the inaccessible dataset")
}

func TestStoreResultsWaitsForAllLearnersThenPublishes(t *testing.T) {
	d, clk := newTestDeps(t)
	m := helperManifest(2)
	creds := objectstore.Credentials{AccessKey: "ak", SecretKey: "sk"}
	if err := d.ObjectStore.CreateBucket("results", creds); err != nil {
		t.Fatal(err)
	}
	vol := startHelperPod(t, d, m)

	// One learner done: results must NOT be stored yet.
	vol.WriteExitCode(0, 0)
	clk.Sleep(time.Minute)
	if vol.Exists(ResultsStoredMarker) {
		t.Fatal("results stored before every learner finished")
	}
	// Second learner done: the model lands in the bucket and the marker
	// appears.
	vol.WriteExitCode(1, 0)
	deadline := clk.Now().Add(time.Hour)
	for clk.Now().Before(deadline) {
		if raw, err := vol.Read(ResultsStoredMarker); err == nil && string(raw) == "ok" {
			keys, err := d.ObjectStore.List("results", creds)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if strings.HasPrefix(k, "models/j/") {
					return
				}
			}
			t.Fatalf("marker set but no model stored; keys = %v", keys)
		}
		clk.Sleep(time.Second)
	}
	t.Fatal("store-results never published the marker")
}

func TestLogCollectorShipsLogs(t *testing.T) {
	d, clk := newTestDeps(t)
	m := helperManifest(1)
	creds := objectstore.Credentials{AccessKey: "ak", SecretKey: "sk"}
	if err := d.ObjectStore.CreateBucket("results", creds); err != nil {
		t.Fatal(err)
	}
	vol := startHelperPod(t, d, m)
	vol.Append(learner.LogPath(0), []byte("hello from the learner\n"))

	deadline := clk.Now().Add(5 * time.Minute)
	for clk.Now().Before(deadline) {
		obj, err := d.ObjectStore.Get("results", "logs/j/learner-0.log", creds)
		if err == nil {
			if !strings.Contains(string(obj.Data), "hello from the learner") {
				t.Fatalf("shipped log = %q", obj.Data)
			}
			return
		}
		clk.Sleep(time.Second)
	}
	t.Fatal("log-collector never shipped the log")
}
