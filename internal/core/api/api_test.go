package api

import (
	"context"
	"errors"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/etcd"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/metrics"
	"repro/internal/mongo"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/rpc"
)

// newTestDeps builds a minimal substrate set: real stores on a virtual
// clock, no microservice pods (the Service methods are called directly).
func newTestDeps(t *testing.T) *core.Deps {
	t.Helper()
	clk := clock.NewSim()
	link := netsim.NewSharedLink(netsim.Ethernet1G, clk)
	cluster := kube.NewCluster(kube.Config{Clock: clk},
		kube.NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		kube.NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	store := etcd.New(1, clk)
	t.Cleanup(func() {
		cluster.Stop()
		store.Close()
		clk.Close()
	})
	return &core.Deps{
		Clock:       clk,
		Bus:         rpc.NewBus(clk),
		Kube:        cluster,
		Etcd:        store,
		Mongo:       mongo.New(clk),
		ObjectStore: objectstore.New(clk, link),
		NFS:         nfs.NewServer(clk),
		DataLink:    link,
		DefaultGPU:  gpu.K80,
		Metrics:     metrics.NewRegistry(),
	}
}

func encodedManifest(t *testing.T) string {
	t.Helper()
	m := manifest.Manifest{
		Name: "t", Framework: "tensorflow", Model: "resnet50",
		Learners: 1, GPUsPerLearner: 1, BatchPerGPU: 32, Epochs: 1,
		DatasetImages: 1000,
		TrainingData:  manifest.DataRef{Bucket: "data", Key: "k", AccessKey: "ak", SecretKey: "sk"},
		Results:       manifest.DataRef{Bucket: "results", AccessKey: "ak", SecretKey: "sk"},
	}
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestSubmitRejectsInvalidManifest(t *testing.T) {
	s := New(newTestDeps(t))
	if _, err := s.submit(SubmitRequest{Tenant: "a", Manifest: `{"name":""}`}); err == nil {
		t.Fatal("invalid manifest accepted")
	}
	if _, err := s.submit(SubmitRequest{Tenant: "a", Manifest: "not json"}); err == nil {
		t.Fatal("garbage manifest accepted")
	}
}

func TestSubmitDurablyRecordsJob(t *testing.T) {
	d := newTestDeps(t)
	s := New(d)
	// The LCM is down (nothing registered on the bus): submission must
	// still succeed — the durability point is the MongoDB write, and the
	// LCM sweep picks the job up later.
	resp, err := s.submit(SubmitRequest{Tenant: "alice", Manifest: encodedManifest(t)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != types.StateQueued {
		t.Fatalf("state = %s, want QUEUED", resp.State)
	}
	rec, err := d.GetJob(resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tenant != "alice" || rec.State != types.StateQueued {
		t.Fatalf("record = %+v", rec)
	}
	hist, err := d.JobHistory(resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].State != types.StateQueued {
		t.Fatalf("history = %v, want one QUEUED event", hist)
	}
}

func TestTenantAuthorization(t *testing.T) {
	d := newTestDeps(t)
	s := New(d)
	resp, err := s.submit(SubmitRequest{Tenant: "owner", Manifest: encodedManifest(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.authorizedJob("intruder", resp.JobID); !errors.Is(err, ErrForbidden) {
		t.Fatalf("cross-tenant access error = %v, want ErrForbidden", err)
	}
	if _, err := s.authorizedJob("owner", resp.JobID); err != nil {
		t.Fatalf("owner access rejected: %v", err)
	}
	// "" is administrative access.
	if _, err := s.authorizedJob("", resp.JobID); err != nil {
		t.Fatalf("admin access rejected: %v", err)
	}
	if _, err := s.authorizedJob("owner", "job-999999"); err == nil {
		t.Fatal("unknown job authorized")
	}
}

func TestListFiltersByTenant(t *testing.T) {
	d := newTestDeps(t)
	s := New(d)
	for _, tenant := range []string{"a", "a", "b"} {
		if _, err := s.submit(SubmitRequest{Tenant: tenant, Manifest: encodedManifest(t)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.dispatch(context.Background(), MethodList, ListRequest{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.(ListResponse).Records); got != 2 {
		t.Fatalf("tenant a jobs = %d, want 2", got)
	}
	out, err = s.dispatch(context.Background(), MethodList, ListRequest{Tenant: ""})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.(ListResponse).Records); got != 3 {
		t.Fatalf("admin list = %d, want 3", got)
	}
}

func TestClusterInfoCounts(t *testing.T) {
	d := newTestDeps(t)
	s := New(d)
	if _, err := s.submit(SubmitRequest{Tenant: "a", Manifest: encodedManifest(t)}); err != nil {
		t.Fatal(err)
	}
	info, err := s.clusterInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 2 || info.TotalGPUs != 8 || info.FreeGPUs != 8 {
		t.Fatalf("info = %+v", info)
	}
	if info.QueuedJobs != 1 || info.RunningJobs != 0 || info.TerminalJobs != 0 {
		t.Fatalf("job counts = %+v", info)
	}
}

func TestDispatchRejectsBadTypes(t *testing.T) {
	s := New(newTestDeps(t))
	if _, err := s.dispatch(context.Background(), MethodSubmit, 42); err == nil {
		t.Fatal("bad request type accepted")
	}
	if _, err := s.dispatch(context.Background(), "no-such-method", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRequestTenantExtraction(t *testing.T) {
	cases := []struct {
		req  any
		want string
	}{
		{SubmitRequest{Tenant: "a"}, "a"},
		{StatusRequest{Tenant: "b"}, "b"},
		{ListRequest{Tenant: "c"}, "c"},
		{HaltRequest{Tenant: "d"}, "d"},
		{LogsRequest{Tenant: "e"}, "e"},
		{EventsRequest{Tenant: "f"}, "f"},
		{MetricsRequest{Tenant: "g"}, "g"},
		{ClusterInfoRequest{Tenant: "h"}, "h"},
		{42, ""},
	}
	for _, tc := range cases {
		if got := requestTenant(tc.req); got != tc.want {
			t.Errorf("requestTenant(%T) = %q, want %q", tc.req, got, tc.want)
		}
	}
}

func TestHandleMetersRequests(t *testing.T) {
	d := newTestDeps(t)
	s := New(d)
	if _, err := s.handle(context.Background(), MethodSubmit, SubmitRequest{Tenant: "m", Manifest: encodedManifest(t)}); err != nil {
		t.Fatal(err)
	}
	// A failing call is metered as an error.
	_, _ = s.handle(context.Background(), MethodStatus, StatusRequest{Tenant: "m", JobID: "job-404404"})
	if got := d.Metrics.Counter("api_requests_total", "submit", "m"); got != 1 {
		t.Fatalf("submit counter = %v, want 1", got)
	}
	if got := d.Metrics.Counter("api_errors_total", "status", "m"); got != 1 {
		t.Fatalf("error counter = %v, want 1", got)
	}
}
