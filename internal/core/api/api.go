// Package api implements the DLaaS API microservice: the user-facing
// endpoint that "handles all the incoming API requests including load
// balancing, metering, and access management". Instances register
// dynamically in the service registry, which provides load balancing and
// fail-over. The submission path writes job metadata to MongoDB before
// acknowledging, so accepted jobs survive any subsequent crash.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/core/guardian"
	"repro/internal/core/lcm"
	"repro/internal/core/learner"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/kube"
	"repro/internal/objectstore"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/trainsim"
)

// Methods exposed on the RPC fabric.
const (
	// MethodSubmit accepts a job: SubmitRequest -> SubmitResponse.
	MethodSubmit = "submit"
	// MethodStatus reads job state: StatusRequest -> StatusResponse.
	MethodStatus = "status"
	// MethodList lists a tenant's jobs: ListRequest -> ListResponse.
	MethodList = "list"
	// MethodHalt terminates a job: HaltRequest -> HaltResponse.
	MethodHalt = "halt"
	// MethodLogs streams training logs: LogsRequest -> LogsResponse.
	MethodLogs = "logs"
	// MethodEvents returns the state history: EventsRequest -> EventsResponse.
	MethodEvents = "events"
	// MethodMetrics returns the training progress graph:
	// MetricsRequest -> MetricsResponse.
	MethodMetrics = "metrics"
	// MethodClusterInfo returns platform utilization:
	// ClusterInfoRequest -> ClusterInfoResponse.
	MethodClusterInfo = "cluster-info"
)

// ErrForbidden indicates a cross-tenant access attempt.
var ErrForbidden = errors.New("api: forbidden")

// SubmitRequest carries a serialized manifest.
type SubmitRequest struct {
	Tenant   string
	Manifest string
}

// SubmitResponse acknowledges a durably recorded job.
type SubmitResponse struct {
	JobID string
	State types.JobState
}

// StatusRequest identifies a job.
type StatusRequest struct {
	Tenant string
	JobID  string
}

// StatusResponse returns the current record.
type StatusResponse struct {
	Record types.JobRecord
}

// ListRequest selects a tenant's jobs.
type ListRequest struct {
	Tenant string
}

// ListResponse returns the tenant's jobs in ID order.
type ListResponse struct {
	Records []types.JobRecord
}

// HaltRequest identifies a job to terminate.
type HaltRequest struct {
	Tenant string
	JobID  string
}

// HaltResponse returns the resulting state.
type HaltResponse struct {
	State types.JobState
}

// LogsRequest identifies a learner's log stream.
type LogsRequest struct {
	Tenant  string
	JobID   string
	Learner int
}

// LogsResponse carries the log text collected so far.
type LogsResponse struct {
	Text string
}

// EventsRequest identifies a job.
type EventsRequest struct {
	Tenant string
	JobID  string
}

// EventsResponse returns the timestamped state transitions.
type EventsResponse struct {
	Events []types.Event
}

// MetricsRequest identifies a learner's progress graph.
type MetricsRequest struct {
	Tenant  string
	JobID   string
	Learner int
}

// MetricsResponse carries the training progress graph: the series users
// profile jobs with. A job that was restarted shows the rollback to its
// last checkpoint in this series.
type MetricsResponse struct {
	Points []trainsim.MetricPoint
}

// ClusterInfoRequest asks for platform utilization.
type ClusterInfoRequest struct {
	Tenant string
}

// ClusterInfoResponse summarizes cluster capacity and load: what an
// operator (or a user wondering why a job queues) needs at a glance.
type ClusterInfoResponse struct {
	Nodes        int
	NodesDown    int
	TotalGPUs    int
	FreeGPUs     int
	RunningJobs  int
	QueuedJobs   int
	TerminalJobs int
}

// Service is one API instance.
type Service struct {
	deps *core.Deps
}

// New creates an API service.
func New(deps *core.Deps) *Service {
	return &Service{deps: deps}
}

// ContainerSpec builds the API container for its Deployment. Its Fig. 4
// recovery window is 3-5s.
func (s *Service) ContainerSpec() kube.ContainerSpec {
	return kube.ContainerSpec{
		Name:       "api",
		Image:      "dlaas/api",
		StartDelay: 3 * time.Second,
		Run:        s.run,
	}
}

func (s *Service) run(ctx *kube.ContainerCtx) int {
	reg := s.deps.Bus.Register(core.APIService, ctx.PodName(), s.handle)
	defer reg.Deregister()
	<-ctx.Killed()
	return 0
}

// handle dispatches RPC calls, metering every request per tenant and
// method and timing its latency.
func (s *Service) handle(ctx context.Context, method string, req any) (any, error) {
	start := s.deps.Clock.Now()
	resp, err := s.dispatch(ctx, method, req)
	if s.deps.Metrics != nil {
		tenant := requestTenant(req)
		s.deps.Metrics.Inc("api_requests_total", method, tenant)
		if err != nil {
			s.deps.Metrics.Inc("api_errors_total", method, tenant)
		}
		s.deps.Metrics.Observe("api_latency", s.deps.Clock.Since(start), method)
	}
	return resp, err
}

// requestTenant extracts the tenant identity for metering.
func requestTenant(req any) string {
	switch r := req.(type) {
	case SubmitRequest:
		return r.Tenant
	case StatusRequest:
		return r.Tenant
	case ListRequest:
		return r.Tenant
	case HaltRequest:
		return r.Tenant
	case LogsRequest:
		return r.Tenant
	case EventsRequest:
		return r.Tenant
	case MetricsRequest:
		return r.Tenant
	case ClusterInfoRequest:
		return r.Tenant
	default:
		return ""
	}
}

func (s *Service) dispatch(_ context.Context, method string, req any) (any, error) {
	switch method {
	case MethodSubmit:
		r, ok := req.(SubmitRequest)
		if !ok {
			return nil, badType(req)
		}
		return s.submit(r)
	case MethodStatus:
		r, ok := req.(StatusRequest)
		if !ok {
			return nil, badType(req)
		}
		rec, err := s.authorizedJob(r.Tenant, r.JobID)
		if err != nil {
			return nil, err
		}
		return StatusResponse{Record: rec}, nil
	case MethodList:
		r, ok := req.(ListRequest)
		if !ok {
			return nil, badType(req)
		}
		recs, err := s.deps.ListJobs(r.Tenant)
		if err != nil {
			return nil, err
		}
		return ListResponse{Records: recs}, nil
	case MethodHalt:
		r, ok := req.(HaltRequest)
		if !ok {
			return nil, badType(req)
		}
		if _, err := s.authorizedJob(r.Tenant, r.JobID); err != nil {
			return nil, err
		}
		resp, err := lcm.Call[lcm.HaltRequest, lcm.HaltResponse](s.deps.Bus, lcm.MethodHalt, lcm.HaltRequest{JobID: r.JobID})
		if err != nil {
			return nil, err
		}
		return HaltResponse{State: resp.State}, nil
	case MethodLogs:
		r, ok := req.(LogsRequest)
		if !ok {
			return nil, badType(req)
		}
		return s.logs(r)
	case MethodEvents:
		r, ok := req.(EventsRequest)
		if !ok {
			return nil, badType(req)
		}
		if _, err := s.authorizedJob(r.Tenant, r.JobID); err != nil {
			return nil, err
		}
		evs, err := s.deps.JobHistory(r.JobID)
		if err != nil {
			return nil, err
		}
		return EventsResponse{Events: evs}, nil
	case MethodMetrics:
		r, ok := req.(MetricsRequest)
		if !ok {
			return nil, badType(req)
		}
		return s.metrics(r)
	case MethodClusterInfo:
		if _, ok := req.(ClusterInfoRequest); !ok {
			return nil, badType(req)
		}
		return s.clusterInfo()
	default:
		return nil, fmt.Errorf("api: unknown method %q", method)
	}
}

// submit validates the manifest, durably records the job, acknowledges,
// and then nudges the LCM. A failed nudge is harmless: the LCM's
// recovery sweep deploys every QUEUED job.
func (s *Service) submit(r SubmitRequest) (SubmitResponse, error) {
	m, err := manifest.Decode(r.Manifest)
	if err != nil {
		return SubmitResponse{}, err
	}
	id := s.deps.NextJobID()
	now := s.deps.Clock.Now()
	rec := types.JobRecord{
		ID:          id,
		Tenant:      r.Tenant,
		State:       types.StateQueued,
		Manifest:    r.Manifest,
		SubmittedAt: now,
		UpdatedAt:   now,
	}
	// Durability point: after this write the job can never be lost.
	if err := s.deps.InsertJob(rec); err != nil {
		return SubmitResponse{}, err
	}
	// Best-effort immediate dispatch, attributed to the job's trace so
	// the submit->deploy RPC hop appears in the span tree.
	ctx := trace.NewContext(context.Background(), trace.JobRoot(id))
	_, _ = lcm.CallCtx[lcm.DeployRequest, lcm.DeployResponse](ctx, s.deps.Bus, lcm.MethodDeploy, lcm.DeployRequest{JobID: id})
	_ = m
	return SubmitResponse{JobID: id, State: types.StateQueued}, nil
}

// metrics returns the learner's training progress graph: live from the
// shared volume while it exists, otherwise from the results bucket.
func (s *Service) metrics(r MetricsRequest) (MetricsResponse, error) {
	rec, err := s.authorizedJob(r.Tenant, r.JobID)
	if err != nil {
		return MetricsResponse{}, err
	}
	var raw []byte
	if vol, err := s.deps.NFS.Volume(guardian.VolumeName(r.JobID)); err == nil {
		raw, _ = vol.Read(learner.MetricsPath(r.Learner))
	}
	if raw == nil {
		m, err := manifest.Decode(rec.Manifest)
		if err != nil {
			return MetricsResponse{}, err
		}
		creds := objectstore.Credentials{AccessKey: m.Results.AccessKey, SecretKey: m.Results.SecretKey}
		key := learner.ResultMetricsKey(r.JobID, r.Learner)
		obj, err := s.deps.ObjectStore.Get(m.Results.Bucket, key, creds)
		if err != nil {
			return MetricsResponse{}, nil // no metrics yet
		}
		raw = obj.Data
	}
	var points []trainsim.MetricPoint
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		var pt trainsim.MetricPoint
		if err := json.Unmarshal([]byte(line), &pt); err == nil {
			points = append(points, pt)
		}
	}
	return MetricsResponse{Points: points}, nil
}

// clusterInfo summarizes capacity and job load.
func (s *Service) clusterInfo() (ClusterInfoResponse, error) {
	resp := ClusterInfoResponse{FreeGPUs: s.deps.Kube.FreeGPUs("")}
	for _, n := range s.deps.Kube.Nodes() {
		resp.Nodes++
		if n.Down() {
			resp.NodesDown++
		}
		resp.TotalGPUs += n.Spec.GPUs
	}
	jobs, err := s.deps.ListJobs("")
	if err != nil {
		return resp, err
	}
	for _, rec := range jobs {
		switch {
		case rec.State.Terminal():
			resp.TerminalJobs++
		case rec.State == types.StateQueued:
			resp.QueuedJobs++
		default:
			resp.RunningJobs++
		}
	}
	return resp, nil
}

// logs returns the learner's training log: live from the job's shared
// volume while it exists, otherwise from the results bucket where the
// log-collector shipped it.
func (s *Service) logs(r LogsRequest) (LogsResponse, error) {
	rec, err := s.authorizedJob(r.Tenant, r.JobID)
	if err != nil {
		return LogsResponse{}, err
	}
	if vol, err := s.deps.NFS.Volume(guardian.VolumeName(r.JobID)); err == nil {
		if raw, err := vol.Read(learner.LogPath(r.Learner)); err == nil {
			return LogsResponse{Text: string(raw)}, nil
		}
	}
	m, err := manifest.Decode(rec.Manifest)
	if err != nil {
		return LogsResponse{}, err
	}
	creds := objectstore.Credentials{AccessKey: m.Results.AccessKey, SecretKey: m.Results.SecretKey}
	key := learner.ResultLogKey(r.JobID, r.Learner)
	obj, err := s.deps.ObjectStore.Get(m.Results.Bucket, key, creds)
	if err != nil {
		return LogsResponse{Text: ""}, nil // no logs yet
	}
	return LogsResponse{Text: string(obj.Data)}, nil
}

// authorizedJob loads the job and enforces tenant ownership ("" tenant =
// administrative access).
func (s *Service) authorizedJob(tenant, jobID string) (types.JobRecord, error) {
	rec, err := s.deps.GetJob(jobID)
	if err != nil {
		return types.JobRecord{}, err
	}
	if tenant != "" && rec.Tenant != tenant {
		return types.JobRecord{}, fmt.Errorf("job %s: %w", jobID, ErrForbidden)
	}
	return rec, nil
}

func badType(req any) error {
	return fmt.Errorf("api: bad request type %T", req)
}

// Call is a typed client helper used by the public client and tests.
func Call[Req, Resp any](bus *rpc.Bus, method string, req Req) (Resp, error) {
	var zero Resp
	out, err := bus.Call(context.Background(), core.APIService, method, req)
	if err != nil {
		return zero, err
	}
	resp, ok := out.(Resp)
	if !ok {
		return zero, fmt.Errorf("api: unexpected response type %T", out)
	}
	return resp, nil
}
