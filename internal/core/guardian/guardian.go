// Package guardian implements the per-job Guardian: a DLaaS component
// created on the fly as a Kubernetes Job for every DL training job. The
// Guardian executes the multi-step deployment (shared volume, helper
// pod, learner StatefulSet, network policy), journaling progress in etcd.
// If it crashes mid-deployment, Kubernetes restarts it; the restarted
// Guardian rolls back the partial deployment and starts fresh, retrying
// up to a configurable limit before marking the job FAILED in MongoDB —
// the paper's atomic-deployment guarantee. Once deployed, the Guardian
// monitors learner statuses (via etcd), aggregates them into the job
// state in MongoDB, and tears everything down at completion.
package guardian

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/core/helper"
	"repro/internal/core/learner"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/nfs"
	"repro/internal/objectstore"
)

// DefaultMaxDeployAttempts is how many times deployment is retried
// before the job is marked FAILED ("this process will be repeated for a
// (configurable) number of times before the Guardian gives up").
const DefaultMaxDeployAttempts = 3

// monitorPoll is the Guardian's status-aggregation cadence.
const monitorPoll = 500 * time.Millisecond

// Params configures one job's Guardian.
type Params struct {
	Deps     *core.Deps
	JobID    string
	Manifest *manifest.Manifest
	// MaxDeployAttempts overrides DefaultMaxDeployAttempts when > 0.
	MaxDeployAttempts int
	// StepDelay is the modeled work per provisioning step (credential
	// setup, API round trips). It also widens the window in which
	// crash-injection tests can catch the Guardian mid-deployment.
	StepDelay time.Duration
}

// Resource naming conventions (name-addressed so a restarted Guardian
// can find its predecessor's leftovers with no in-memory state).

// VolumeName is the job's shared NFS volume.
func VolumeName(jobID string) string { return "vol-" + jobID }

// HelperName is the job's helper Deployment.
func HelperName(jobID string) string { return "helper-" + jobID }

// LearnerSetName is the job's learner StatefulSet.
func LearnerSetName(jobID string) string { return "learner-" + jobID }

// PolicyName is the job's learner-isolation NetworkPolicy.
func PolicyName(jobID string) string { return "netpol-" + jobID }

// KubeJobName is the Kubernetes Job that hosts the Guardian itself.
func KubeJobName(jobID string) string { return "guardian-" + jobID }

// GangName is the job's learner pod group in the gang scheduler.
func GangName(jobID string) string { return "gang-" + jobID }

// journal is the Guardian's etcd-persisted deployment record.
type journal struct {
	// Deployed is set once every resource exists; a restarted Guardian
	// seeing Deployed resumes monitoring instead of rolling back.
	Deployed bool `json:"deployed"`
	// Steps records which resources have been created (informational;
	// rollback is defensive and deletes by name regardless).
	Steps []string `json:"steps"`
}

// ContainerSpec builds the Guardian container. Guardians are small Go
// processes with fast, cached images — the quickest component to recover
// in Fig. 4 (1-2s).
func ContainerSpec(p Params) kube.ContainerSpec {
	return kube.ContainerSpec{
		Name:       "guardian",
		Image:      "dlaas/guardian",
		StartDelay: 500 * time.Millisecond,
		Run:        func(ctx *kube.ContainerCtx) int { return Run(ctx, p) },
	}
}

// Run executes the Guardian process. Exit code 0 means the Guardian's
// work is finished (job reached a terminal state — including FAILED);
// any other exit causes the hosting Kubernetes Job to run a fresh
// Guardian attempt.
func Run(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	maxAttempts := p.MaxDeployAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxDeployAttempts
	}

	rec, err := d.GetJob(p.JobID)
	if err != nil {
		// Without the metadata record nothing can proceed; retry via
		// the kube Job in case MongoDB was momentarily down.
		return 1
	}
	if rec.State.Terminal() {
		return 0
	}

	j := loadJournal(d, p.JobID)
	if j == nil || !j.Deployed {
		// Fresh deploy or crashed mid-deploy: roll back leftovers and
		// provision from scratch ("The restarted Guardian will roll
		// back the previous partially deployed DL job and starts a
		// fresh deployment process").
		if j != nil {
			rollback(d, p.JobID)
		}
		attempts, err := d.IncrementDeployAttempts(p.JobID)
		if err != nil {
			return 1
		}
		if attempts > maxAttempts {
			failJob(d, p.JobID, fmt.Sprintf("deployment failed after %d attempts", attempts-1))
			cleanupEtcd(d, p.JobID)
			return 0
		}
		if _, err := d.TransitionJob(p.JobID, types.StateDeploying, fmt.Sprintf("attempt %d", attempts)); err != nil {
			return 1
		}
		code, ok := deploy(ctx, p)
		if !ok {
			return code
		}
	}

	return monitor(ctx, p)
}

// deploy provisions every job resource, journaling between steps. It
// returns ok=false with the exit code when interrupted.
func deploy(ctx *kube.ContainerCtx, p Params) (int, bool) {
	d := p.Deps
	j := &journal{}
	// Journal existence marks "deployment in progress" — it must be
	// durable before the first resource is created, or a crash in the
	// gap would leave an orphan that the next attempt doesn't roll back.
	saveJournal(d, p.JobID, j)
	step := func(name string) bool {
		j.Steps = append(j.Steps, name)
		saveJournal(d, p.JobID, j)
		return ctx.Sleep(p.StepDelay)
	}

	// Step 1: shared NFS volume via a persistent volume claim.
	if _, err := d.NFS.Provision(VolumeName(p.JobID)); err != nil {
		if !errors.Is(err, nfs.ErrVolumeExists) {
			return 1, false
		}
		// Leftover from a partial deploy whose journal write never
		// landed: recreate it empty.
		d.NFS.Release(VolumeName(p.JobID))
		if _, err := d.NFS.Provision(VolumeName(p.JobID)); err != nil {
			return 1, false
		}
	}
	if !step("volume") {
		return 137, false
	}

	// Step 2: helper pod (load-data, controller, log-collector,
	// store-results) as a Deployment.
	helperSpec := helper.PodSpec(helper.Params{
		Deps:       d,
		JobID:      p.JobID,
		Manifest:   p.Manifest,
		VolumeName: VolumeName(p.JobID),
	})
	if _, err := d.Kube.CreateDeployment(HelperName(p.JobID), 1, helperSpec); err != nil {
		return 1, false
	}
	if !step("helper") {
		return 137, false
	}

	// Step 3: learner StatefulSet with stable identities. The learners
	// are submitted to the gang scheduler as one pod group first: the
	// whole gang is admitted atomically — the paper's atomic
	// provisioning ("either the whole job is provisioned with the
	// requisite resources or none") — instead of learner pods grabbing
	// GPUs one at a time and deadlocking against another partially
	// placed job. Submission is idempotent, so a restarted Guardian
	// recovers the reservation by name.
	gang, err := d.Kube.SubmitGang(kube.GangSpec{
		Name:          GangName(p.JobID),
		Tenant:        p.Manifest.TrainingData.AccessKey,
		Priority:      p.Manifest.Priority,
		Members:       p.Manifest.Learners,
		GPUsPerMember: p.Manifest.GPUsPerLearner,
		GPUType:       p.Manifest.GPUType,
	})
	if err != nil {
		if errors.Is(err, kube.ErrGangUnsatisfiable) {
			// The cluster could never place this job; fail it with a
			// diagnosable reason instead of queueing forever.
			failJob(d, p.JobID, "insufficient cluster capacity: "+err.Error())
			rollback(d, p.JobID)
			cleanupEtcd(d, p.JobID)
			return 0, false
		}
		return 1, false
	}
	if !step("gang") {
		return 137, false
	}
	for gang.State() == kube.GangPending {
		if halted, _ := jobHalted(d, p.JobID); halted {
			d.Kube.CancelGang(GangName(p.JobID))
			return 0, false
		}
		if !ctx.Sleep(500 * time.Millisecond) {
			return 137, false
		}
	}
	if gang.State() != kube.GangAdmitted {
		// Preempted (or cancelled) before the learners existed: retry
		// from scratch on a fresh Guardian attempt. Like the monitor's
		// preemption path, this is the scheduler's doing — give the
		// attempt back so churny preemption cannot exhaust the budget.
		d.Kube.CancelGang(GangName(p.JobID))
		_ = d.ResetDeployAttempts(p.JobID)
		return 1, false
	}
	g := resolveGPU(d, p.Manifest)
	learnerPod := kube.PodSpec{
		Labels: map[string]string{
			"app":    "dlaas-learner",
			"job":    p.JobID,
			"tenant": p.Manifest.TrainingData.AccessKey,
		},
		Tenant:           p.Manifest.TrainingData.AccessKey,
		RestartPolicy:    kube.RestartAlways,
		GPUs:             p.Manifest.GPUsPerLearner,
		GPUType:          p.Manifest.GPUType,
		Gang:             GangName(p.JobID),
		Volumes:          []string{VolumeName(p.JobID)},
		BindsObjectStore: true,
	}
	// Each ordinal needs its own Params; the container reads its
	// ordinal from the pod name via the set's stable identity. We use
	// one spec whose Run derives the ordinal lazily.
	learnerPod.Containers = []kube.ContainerSpec{learnerContainerForSet(p, g)}
	if _, err := d.Kube.CreateStatefulSet(LearnerSetName(p.JobID), p.Manifest.Learners, learnerPod); err != nil {
		return 1, false
	}
	if !step("learners") {
		return 137, false
	}

	// Step 4: network policy — learners accept traffic only from pods
	// of the same job (helper, fellow learners), isolating tenants from
	// each other and from platform services.
	d.Kube.ApplyNetworkPolicy(kube.NetworkPolicy{
		Name:      PolicyName(p.JobID),
		AppliesTo: map[string]string{"app": "dlaas-learner", "job": p.JobID},
		AllowFrom: []map[string]string{{"job": p.JobID}},
	})
	if !step("netpol") {
		return 137, false
	}

	j.Deployed = true
	saveJournal(d, p.JobID, j)
	return 0, true
}

// learnerContainerForSet wraps learner.ContainerSpec so each StatefulSet
// ordinal computes its own identity from the pod name ("<set>-<ordinal>").
func learnerContainerForSet(p Params, g gpu.Spec) kube.ContainerSpec {
	base := learner.ContainerSpec(learner.Params{
		Deps:       p.Deps,
		JobID:      p.JobID,
		Ordinal:    0,
		Manifest:   p.Manifest,
		VolumeName: VolumeName(p.JobID),
		GPU:        g,
	})
	run := func(ctx *kube.ContainerCtx) int {
		ordinal := ordinalFromPodName(ctx.PodName())
		return learner.ContainerSpec(learner.Params{
			Deps:       p.Deps,
			JobID:      p.JobID,
			Ordinal:    ordinal,
			Manifest:   p.Manifest,
			VolumeName: VolumeName(p.JobID),
			GPU:        g,
		}).Run(ctx)
	}
	base.Run = run
	return base
}

// ordinalFromPodName parses the trailing "-<n>" of a StatefulSet pod name.
func ordinalFromPodName(name string) int {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '-' {
			n := 0
			for _, c := range name[i+1:] {
				if c < '0' || c > '9' {
					return 0
				}
				n = n*10 + int(c-'0')
			}
			return n
		}
	}
	return 0
}

// jobHalted reports whether the user terminated the job.
func jobHalted(d *core.Deps, jobID string) (bool, error) {
	rec, err := d.GetJob(jobID)
	if err != nil {
		return false, err
	}
	return rec.State == types.StateHalted, nil
}

// resolveGPU picks the job's GPU spec.
func resolveGPU(d *core.Deps, m *manifest.Manifest) gpu.Spec {
	if m.GPUType != "" {
		if g, ok := gpu.ByName(m.GPUType); ok {
			return g
		}
	}
	return d.DefaultGPU
}

// monitor aggregates learner statuses from etcd into the job state in
// MongoDB until the job reaches a terminal state, then tears down.
func monitor(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	for {
		select {
		case <-ctx.Killed():
			return 137
		default:
		}

		rec, err := d.GetJob(p.JobID)
		if err == nil && rec.State == types.StateHalted {
			shipLogs(d, p.JobID, p.Manifest)
			teardown(d, p.JobID)
			cleanupEtcd(d, p.JobID)
			return 0
		}

		// Preemption by a higher-priority gang maps to the Guardian's
		// rollback: cancel the gang, tear down the partial deployment,
		// and redeploy from scratch on a fresh Guardian attempt. The
		// attempt counter is reset — preemption is the scheduler's
		// doing, not a deployment failure, so it must not burn the
		// job's retry budget.
		if g := d.Kube.GangByName(GangName(p.JobID)); g != nil && g.State() == kube.GangPreempted {
			_, _ = d.TransitionJob(p.JobID, types.StateDeploying, "preempted by higher-priority job; redeploying")
			shipLogs(d, p.JobID, p.Manifest)
			rollback(d, p.JobID)
			_ = d.Etcd.Delete(types.GuardianJournalKey(p.JobID))
			_ = d.ResetDeployAttempts(p.JobID)
			return 1
		}

		statuses, err := readStatuses(d, p.JobID)
		if err == nil {
			training, completed, failed := 0, 0, 0
			var failDetail string
			for _, s := range statuses {
				switch s.Status {
				case types.LearnerTraining:
					training++
				case types.LearnerCompleted:
					completed++
				case types.LearnerFailed:
					failed++
					failDetail = fmt.Sprintf("learner %d failed (%s)", s.Learner, s.Detail)
				}
			}
			switch {
			case failed > 0:
				failJob(d, p.JobID, failDetail)
				shipLogs(d, p.JobID, p.Manifest)
				teardown(d, p.JobID)
				cleanupEtcd(d, p.JobID)
				return 0
			case completed == p.Manifest.Learners && p.Manifest.Learners > 0:
				// All learners done: move to STORING, wait for the
				// helper's store-results marker, then COMPLETED.
				_, _ = d.TransitionJob(p.JobID, types.StateStoring, "all learners completed")
				if resultsStored(d, p.JobID) {
					_, _ = d.TransitionJob(p.JobID, types.StateCompleted, "results stored")
					teardown(d, p.JobID)
					cleanupEtcd(d, p.JobID)
					return 0
				}
			case training > 0:
				_, _ = d.TransitionJob(p.JobID, types.StateProcessing, "learners training")
			}
		}

		if !ctx.Sleep(monitorPoll) {
			return 137
		}
	}
}

// readStatuses loads the latest per-learner status updates from etcd.
func readStatuses(d *core.Deps, jobID string) ([]types.StatusUpdate, error) {
	kvs, err := d.Etcd.Range(types.LearnerStatusPrefix(jobID))
	if err != nil {
		return nil, err
	}
	out := make([]types.StatusUpdate, 0, len(kvs))
	for _, kv := range kvs {
		var s types.StatusUpdate
		if err := json.Unmarshal([]byte(kv.Value), &s); err == nil {
			out = append(out, s)
		}
	}
	return out, nil
}

// resultsStored checks the helper's stored marker on the shared volume.
func resultsStored(d *core.Deps, jobID string) bool {
	vol, err := d.NFS.Volume(VolumeName(jobID))
	if err != nil {
		return false
	}
	raw, err := vol.Read(helper.ResultsStoredMarker)
	return err == nil && string(raw) == "ok"
}

// shipLogs persists every learner's logs and metrics from the shared
// volume to the results bucket before teardown destroys the volume. The
// store-results helper does this on the success path; the Guardian does
// it for failures and halts, honoring "reliable streaming of logs from
// the job, irrespective of the stage it is in, even if it crashes/fails".
func shipLogs(d *core.Deps, jobID string, m *manifest.Manifest) {
	vol, err := d.NFS.Volume(VolumeName(jobID))
	if err != nil {
		return
	}
	creds := objectstore.Credentials{AccessKey: m.Results.AccessKey, SecretKey: m.Results.SecretKey}
	for l := 0; l < m.Learners; l++ {
		if raw, err := vol.Read(learner.LogPath(l)); err == nil {
			key := fmt.Sprintf("logs/%s/learner-%d.log", jobID, l)
			_ = d.ObjectStore.Put(m.Results.Bucket, key, raw, creds)
		}
		if raw, err := vol.Read(learner.MetricsPath(l)); err == nil {
			key := fmt.Sprintf("metrics/%s/learner-%d.jsonl", jobID, l)
			_ = d.ObjectStore.Put(m.Results.Bucket, key, raw, creds)
		}
	}
}

// Rollback deletes every cluster resource a job's (possibly crashed)
// Guardian may have created: network policy, learner StatefulSet, gang
// reservation, helper Deployment, shared volume. All deletions are
// name-addressed and idempotent. Guardian rollback is also gang
// cancellation: the learner pod group's GPU reservation disappears with
// its pods, so a half-deployed job never pins capacity. The LCM's
// garbage collector calls this too, so the resource list lives in
// exactly one place.
func Rollback(d *core.Deps, jobID string) {
	d.Kube.RemoveNetworkPolicy(PolicyName(jobID))
	d.Kube.DeleteStatefulSet(LearnerSetName(jobID))
	d.Kube.CancelGang(GangName(jobID))
	d.Kube.DeleteDeployment(HelperName(jobID))
	d.NFS.Release(VolumeName(jobID))
}

func rollback(d *core.Deps, jobID string) { Rollback(d, jobID) }

// teardown releases a fully deployed job's resources after it reaches a
// terminal state. The NFS volume is kept briefly for log draining and
// released with the rest (logs were already shipped to the object store
// by the log-collector).
func teardown(d *core.Deps, jobID string) {
	rollback(d, jobID)
}

// cleanupEtcd removes the job's coordination keys.
func cleanupEtcd(d *core.Deps, jobID string) {
	kvs, err := d.Etcd.Range(types.JobPrefix(jobID))
	if err != nil {
		return
	}
	for _, kv := range kvs {
		_ = d.Etcd.Delete(kv.Key)
	}
}

func failJob(d *core.Deps, jobID, reason string) {
	_, _ = d.TransitionJob(jobID, types.StateFailed, reason)
}

func loadJournal(d *core.Deps, jobID string) *journal {
	raw, found, err := d.Etcd.Get(types.GuardianJournalKey(jobID))
	if err != nil || !found {
		return nil
	}
	var j journal
	if err := json.Unmarshal([]byte(raw), &j); err != nil {
		return &journal{} // corrupt journal: treat as partial deploy
	}
	return &j
}

func saveJournal(d *core.Deps, jobID string, j *journal) {
	raw, err := json.Marshal(j)
	if err != nil {
		return
	}
	_, _ = d.Etcd.Put(types.GuardianJournalKey(jobID), string(raw))
}
