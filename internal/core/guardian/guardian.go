// Package guardian implements the per-job Guardian: a DLaaS component
// created on the fly as a Kubernetes Job for every DL training job. The
// Guardian executes the multi-step deployment (shared volume, helper
// pod, learner StatefulSet, network policy), journaling progress in etcd.
// If it crashes mid-deployment, Kubernetes restarts it; the restarted
// Guardian rolls back the partial deployment and starts fresh, retrying
// up to a configurable limit before marking the job FAILED in MongoDB —
// the paper's atomic-deployment guarantee. Once deployed, the Guardian
// monitors learner statuses (via etcd), aggregates them into the job
// state in MongoDB, and tears everything down at completion.
package guardian

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/core/helper"
	"repro/internal/core/learner"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/etcd"
	"repro/internal/events"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/mongo"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/trace"
)

// DefaultMaxDeployAttempts is how many times deployment is retried
// before the job is marked FAILED ("this process will be repeated for a
// (configurable) number of times before the Guardian gives up").
const DefaultMaxDeployAttempts = 3

// monitorPoll is the Guardian's status-aggregation cadence in poll mode.
const monitorPoll = 500 * time.Millisecond

// watchTick is the watch-mode cadence for conditions with no event
// stream: gang preemption, the results-stored NFS marker, and (as a
// shield against a lost change-feed event) the halt check. None of
// these touch etcd.
const watchTick = time.Second

// watchRelist is the watch-mode liveness backstop: a full etcd re-list
// of learner statuses at a long interval, guarding against a wedged
// watch the way the poll loop did every 500ms.
const watchRelist = 15 * time.Second

// Params configures one job's Guardian.
type Params struct {
	Deps     *core.Deps
	JobID    string
	Manifest *manifest.Manifest
	// MaxDeployAttempts overrides DefaultMaxDeployAttempts when > 0.
	MaxDeployAttempts int
	// StepDelay is the modeled work per provisioning step (credential
	// setup, API round trips). It also widens the window in which
	// crash-injection tests can catch the Guardian mid-deployment.
	StepDelay time.Duration
	// ControlPlane selects the monitoring strategy:
	// core.ControlPlaneWatch (default) reacts to revision-ordered etcd
	// watch events and resumes from the journaled revision after a
	// restart; core.ControlPlanePoll is the pre-refactor 500ms loop.
	ControlPlane string
}

// Resource naming conventions (name-addressed so a restarted Guardian
// can find its predecessor's leftovers with no in-memory state).

// VolumeName is the job's shared NFS volume.
func VolumeName(jobID string) string { return "vol-" + jobID }

// HelperName is the job's helper Deployment.
func HelperName(jobID string) string { return "helper-" + jobID }

// LearnerSetName is the job's learner StatefulSet.
func LearnerSetName(jobID string) string { return "learner-" + jobID }

// PolicyName is the job's learner-isolation NetworkPolicy.
func PolicyName(jobID string) string { return "netpol-" + jobID }

// KubeJobName is the Kubernetes Job that hosts the Guardian itself.
func KubeJobName(jobID string) string { return "guardian-" + jobID }

// GangName is the job's learner pod group in the gang scheduler.
func GangName(jobID string) string { return "gang-" + jobID }

// journal is the Guardian's etcd-persisted deployment record.
type journal struct {
	// Deployed is set once every resource exists; a restarted Guardian
	// seeing Deployed resumes monitoring instead of rolling back.
	Deployed bool `json:"deployed"`
	// Steps records which resources have been created (informational;
	// rollback is defensive and deletes by name regardless).
	Steps []string `json:"steps"`
	// MonitorRev is the last etcd revision whose learner-status events
	// the watch-mode monitor folded into the job state; a restarted
	// Guardian resumes its watch exactly after it — no missed and no
	// re-processed transitions.
	MonitorRev uint64 `json:"monitor_rev,omitempty"`
	// Statuses is the aggregated per-learner view as of MonitorRev
	// (keyed by ordinal), so the resumed monitor starts from state
	// instead of an etcd re-list.
	Statuses map[int]types.StatusUpdate `json:"statuses,omitempty"`
	// Acks lists learners whose eviction acknowledgment has been folded
	// as of MonitorRev, so a Guardian restarted mid-grace can complete
	// the eviction without waiting out the deadline. The journal dies
	// with the deployment (handlePreemption deletes it), so acks never
	// leak into a later eviction.
	Acks map[int]bool `json:"acks,omitempty"`
}

// ContainerSpec builds the Guardian container. Guardians are small Go
// processes with fast, cached images — the quickest component to recover
// in Fig. 4 (1-2s).
func ContainerSpec(p Params) kube.ContainerSpec {
	return kube.ContainerSpec{
		Name:       "guardian",
		Image:      "dlaas/guardian",
		StartDelay: 500 * time.Millisecond,
		Run:        func(ctx *kube.ContainerCtx) int { return Run(ctx, p) },
	}
}

// Run executes the Guardian process. Exit code 0 means the Guardian's
// work is finished (job reached a terminal state — including FAILED);
// any other exit causes the hosting Kubernetes Job to run a fresh
// Guardian attempt.
func Run(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	maxAttempts := p.MaxDeployAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxDeployAttempts
	}

	rec, err := d.GetJob(p.JobID)
	if err != nil {
		// Without the metadata record nothing can proceed; retry via
		// the kube Job in case MongoDB was momentarily down.
		return 1
	}
	if rec.State.Terminal() {
		return 0
	}

	j := loadJournal(d, p.JobID)
	if j == nil || !j.Deployed {
		// Fresh deploy or crashed mid-deploy: roll back leftovers and
		// provision from scratch ("The restarted Guardian will roll
		// back the previous partially deployed DL job and starts a
		// fresh deployment process").
		if j != nil {
			rollback(d, p.JobID)
		}
		attempts, err := d.IncrementDeployAttempts(p.JobID)
		if err != nil {
			return 1
		}
		if attempts > maxAttempts {
			failJob(d, p.JobID, fmt.Sprintf("deployment failed after %d attempts", attempts-1))
			cleanupEtcd(d, p.JobID)
			return 0
		}
		if _, err := d.TransitionJob(p.JobID, types.StateDeploying, fmt.Sprintf("attempt %d", attempts)); err != nil {
			return 1
		}
		// First-time provisioning is deploy cost; a redeploy after a
		// crash, preemption, or drain is recovery cost on the critical
		// path (the journal's existence marks a prior deployment).
		dspan := d.Trace.StartSpan(trace.JobRoot(p.JobID), "guardian-deploy")
		if j != nil || attempts > 1 {
			dspan.SetPhase(trace.PhaseRecovery)
		} else {
			dspan.SetPhase(trace.PhaseDeploy)
		}
		dspan.SetAttr("attempt", fmt.Sprintf("%d", attempts))
		code, ok := deploy(ctx, p, dspan.Context())
		dspan.End()
		if !ok {
			return code
		}
	}

	return monitor(ctx, p)
}

// deploy provisions every job resource, journaling between steps. It
// returns ok=false with the exit code when interrupted. parentSpan
// (the guardian-deploy span) parents the scheduler's gang-wait span.
func deploy(ctx *kube.ContainerCtx, p Params, parentSpan trace.SpanContext) (int, bool) {
	d := p.Deps
	j := &journal{}
	// Journal existence marks "deployment in progress" — it must be
	// durable before the first resource is created, or a crash in the
	// gap would leave an orphan that the next attempt doesn't roll back.
	saveJournal(d, p.JobID, j)
	step := func(name string) bool {
		j.Steps = append(j.Steps, name)
		saveJournal(d, p.JobID, j)
		return ctx.Sleep(p.StepDelay)
	}

	// Step 1: shared NFS volume via a persistent volume claim.
	if _, err := d.NFS.Provision(VolumeName(p.JobID)); err != nil {
		if !errors.Is(err, nfs.ErrVolumeExists) {
			return 1, false
		}
		// Leftover from a partial deploy whose journal write never
		// landed: recreate it empty.
		d.NFS.Release(VolumeName(p.JobID))
		if _, err := d.NFS.Provision(VolumeName(p.JobID)); err != nil {
			return 1, false
		}
	}
	restoreShippedLogs(d, p.JobID, p.Manifest)
	if !step("volume") {
		return 137, false
	}

	// Step 2: helper pod (load-data, controller, log-collector,
	// store-results) as a Deployment.
	helperSpec := helper.PodSpec(helper.Params{
		Deps:       d,
		JobID:      p.JobID,
		Manifest:   p.Manifest,
		VolumeName: VolumeName(p.JobID),
	})
	if _, err := d.Kube.CreateDeployment(HelperName(p.JobID), 1, helperSpec); err != nil {
		return 1, false
	}
	if !step("helper") {
		return 137, false
	}

	// Step 3: learner StatefulSet with stable identities. The learners
	// are submitted to the gang scheduler as one pod group first: the
	// whole gang is admitted atomically — the paper's atomic
	// provisioning ("either the whole job is provisioned with the
	// requisite resources or none") — instead of learner pods grabbing
	// GPUs one at a time and deadlocking against another partially
	// placed job. Submission is idempotent, so a restarted Guardian
	// recovers the reservation by name.
	gang, err := d.Kube.SubmitGang(kube.GangSpec{
		Name:          GangName(p.JobID),
		Tenant:        p.Manifest.TrainingData.AccessKey,
		Priority:      p.Manifest.Priority,
		Members:       p.Manifest.Learners,
		GPUsPerMember: p.Manifest.GPUsPerLearner,
		GPUType:       p.Manifest.GPUType,
		Trace:         parentSpan,
	})
	if err != nil {
		if errors.Is(err, kube.ErrGangUnsatisfiable) {
			// The cluster could never place this job; fail it with a
			// diagnosable reason instead of queueing forever.
			failJob(d, p.JobID, "insufficient cluster capacity: "+err.Error())
			rollback(d, p.JobID)
			cleanupEtcd(d, p.JobID)
			return 0, false
		}
		return 1, false
	}
	if !step("gang") {
		return 137, false
	}
	for gang.State() == kube.GangPending {
		if halted, _ := jobHalted(d, p.JobID); halted {
			d.Kube.CancelGang(GangName(p.JobID))
			return 0, false
		}
		if !ctx.Sleep(500 * time.Millisecond) {
			return 137, false
		}
	}
	if gang.State() != kube.GangAdmitted {
		// Preempted (or cancelled) before the learners existed: retry
		// from scratch on a fresh Guardian attempt. Like the monitor's
		// preemption path, this is the scheduler's doing — give the
		// attempt back so churny preemption cannot exhaust the budget.
		d.Kube.CancelGang(GangName(p.JobID))
		_ = d.ResetDeployAttempts(p.JobID)
		return 1, false
	}
	g := resolveGPU(d, p.Manifest)
	learnerPod := kube.PodSpec{
		Labels: map[string]string{
			"app":    "dlaas-learner",
			"job":    p.JobID,
			"tenant": p.Manifest.TrainingData.AccessKey,
		},
		Tenant:           p.Manifest.TrainingData.AccessKey,
		RestartPolicy:    kube.RestartAlways,
		GPUs:             p.Manifest.GPUsPerLearner,
		GPUType:          p.Manifest.GPUType,
		Gang:             GangName(p.JobID),
		Volumes:          []string{VolumeName(p.JobID)},
		BindsObjectStore: true,
	}
	// Each ordinal needs its own Params; the container reads its
	// ordinal from the pod name via the set's stable identity. We use
	// one spec whose Run derives the ordinal lazily.
	learnerPod.Containers = []kube.ContainerSpec{learnerContainerForSet(p, g)}
	if _, err := d.Kube.CreateStatefulSet(LearnerSetName(p.JobID), p.Manifest.Learners, learnerPod); err != nil {
		return 1, false
	}
	if !step("learners") {
		return 137, false
	}

	// Step 4: network policy — learners accept traffic only from pods
	// of the same job (helper, fellow learners), isolating tenants from
	// each other and from platform services.
	d.Kube.ApplyNetworkPolicy(kube.NetworkPolicy{
		Name:      PolicyName(p.JobID),
		AppliesTo: map[string]string{"app": "dlaas-learner", "job": p.JobID},
		AllowFrom: []map[string]string{{"job": p.JobID}},
	})
	if !step("netpol") {
		return 137, false
	}

	j.Deployed = true
	saveJournal(d, p.JobID, j)
	return 0, true
}

// learnerContainerForSet wraps learner.ContainerSpec so each StatefulSet
// ordinal computes its own identity from the pod name ("<set>-<ordinal>").
func learnerContainerForSet(p Params, g gpu.Spec) kube.ContainerSpec {
	base := learner.ContainerSpec(learner.Params{
		Deps:       p.Deps,
		JobID:      p.JobID,
		Ordinal:    0,
		Manifest:   p.Manifest,
		VolumeName: VolumeName(p.JobID),
		GPU:        g,
	})
	run := func(ctx *kube.ContainerCtx) int {
		ordinal := ordinalFromPodName(ctx.PodName())
		return learner.ContainerSpec(learner.Params{
			Deps:       p.Deps,
			JobID:      p.JobID,
			Ordinal:    ordinal,
			Manifest:   p.Manifest,
			VolumeName: VolumeName(p.JobID),
			GPU:        g,
		}).Run(ctx)
	}
	base.Run = run
	return base
}

// ordinalFromPodName parses the trailing "-<n>" of a StatefulSet pod name.
func ordinalFromPodName(name string) int {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '-' {
			n := 0
			for _, c := range name[i+1:] {
				if c < '0' || c > '9' {
					return 0
				}
				n = n*10 + int(c-'0')
			}
			return n
		}
	}
	return 0
}

// jobHalted reports whether the user terminated the job.
func jobHalted(d *core.Deps, jobID string) (bool, error) {
	rec, err := d.GetJob(jobID)
	if err != nil {
		return false, err
	}
	return rec.State == types.StateHalted, nil
}

// resolveGPU picks the job's GPU spec.
func resolveGPU(d *core.Deps, m *manifest.Manifest) gpu.Spec {
	if m.GPUType != "" {
		if g, ok := gpu.ByName(m.GPUType); ok {
			return g
		}
	}
	return d.DefaultGPU
}

// monitor aggregates learner statuses from etcd into the job state in
// MongoDB until the job reaches a terminal state, then tears down. The
// strategy is selected by Params.ControlPlane: event-driven watches
// (default) or the pre-refactor poll loop.
func monitor(ctx *kube.ContainerCtx, p Params) int {
	if p.ControlPlane == core.ControlPlanePoll {
		return monitorByPoll(ctx, p)
	}
	return monitorByWatch(ctx, p)
}

// settle folds the aggregated learner statuses into the job state,
// driving the terminal transitions. done=true means the Guardian's work
// is finished and the monitor must exit with the returned code.
//
// announced remembers the non-terminal state this monitor last wrote.
// The poll loop passes a fresh value each sweep (preserving its
// timestamped same-state refresh); the watch loop persists it across
// wakeups, so settling is write-free while nothing changed — a monitor
// that re-wrote PROCESSING on every wakeup would emit a metadata change
// event, observe its own event on the job feed, and wake again: a
// self-feeding storm.
func settle(p Params, statuses []types.StatusUpdate, announced *types.JobState) (code int, done bool) {
	d := p.Deps
	training, completed, failed := 0, 0, 0
	var failDetail string
	for _, s := range statuses {
		switch s.Status {
		case types.LearnerTraining:
			training++
		case types.LearnerCompleted:
			completed++
		case types.LearnerFailed:
			failed++
			failDetail = fmt.Sprintf("learner %d failed (%s)", s.Learner, s.Detail)
		}
	}
	announce := func(to types.JobState, reason string) {
		if *announced == to {
			return
		}
		// Only remember the state once the write committed: a transient
		// mongo failure here must be retried on the next wakeup, or the
		// record would be stranded one state behind (and the later
		// COMPLETED transition rejected by the state machine).
		if _, err := d.TransitionJob(p.JobID, to, reason); err == nil {
			*announced = to
		}
	}
	switch {
	case failed > 0:
		failJob(d, p.JobID, failDetail)
		shipLogs(d, p.JobID, p.Manifest)
		teardown(d, p.JobID)
		cleanupEtcd(d, p.JobID)
		return 0, true
	case completed == p.Manifest.Learners && p.Manifest.Learners > 0:
		// All learners done: move to STORING, wait for the helper's
		// store-results marker, then COMPLETED.
		announce(types.StateStoring, "all learners completed")
		if *announced != types.StateStoring || !resultsStored(d, p.JobID) {
			return 0, false
		}
		if _, err := d.TransitionJob(p.JobID, types.StateCompleted, "results stored"); err != nil {
			// The terminal write must land before teardown; retry.
			return 0, false
		}
		teardown(d, p.JobID)
		cleanupEtcd(d, p.JobID)
		return 0, true
	case training > 0:
		announce(types.StateProcessing, "learners training")
	}
	return 0, false
}

// handleHalt tears the job down after user termination.
func handleHalt(p Params) int {
	d := p.Deps
	shipLogs(d, p.JobID, p.Manifest)
	teardown(d, p.JobID)
	cleanupEtcd(d, p.JobID)
	return 0
}

// handlePreemption maps a completed gang eviction to the Guardian's
// rollback: cancel the gang, tear down the partial deployment, and
// redeploy from scratch on a fresh Guardian attempt — resuming from the
// grace-period checkpoint when the eviction was graceful. The attempt
// counter is reset: eviction is the scheduler's doing, not a deployment
// failure, so it must not burn the job's retry budget.
func handlePreemption(p Params) int {
	d := p.Deps
	reason := "preempted by higher-priority job; redeploying"
	if g := d.Kube.GangByName(GangName(p.JobID)); g != nil {
		if intent, ok := g.EvictionIntent(); ok && intent.Reason == kube.EvictReasonDrain {
			reason = "evicted by node drain; redeploying"
		}
	}
	_, _ = d.TransitionJob(p.JobID, types.StateDeploying, reason)
	shipLogs(d, p.JobID, p.Manifest)
	rollback(d, p.JobID)
	_ = d.Etcd.Delete(types.GuardianJournalKey(p.JobID))
	// Clear the eviction handshake so the redeployed job starts with a
	// clean ack slate (the NFS side vanishes with the volume).
	_ = d.Etcd.Delete(types.EvictionIntentKey(p.JobID))
	for l := 0; l < p.Manifest.Learners; l++ {
		_ = d.Etcd.Delete(types.LearnerEvictAckKey(p.JobID, l))
	}
	_ = d.ResetDeployAttempts(p.JobID)
	return 1
}

// relayEviction mirrors the scheduler's eviction intent onto the
// control plane: an envelope under the job's etcd prefix (so the intent
// rides the same revision-ordered watch feeds as every other event) and
// the learners' NFS evict-request file (their checkpoint trigger).
func relayEviction(p Params, intent kube.EvictionIntent) {
	d := p.Deps
	root := trace.JobRoot(p.JobID)
	d.Trace.Lookup(root).Event("eviction-intent:" + intent.Reason)
	env := events.EvictionIntent(p.JobID, intent.Reason, intent.Deadline, d.Clock.Now()).
		WithTrace(string(root.TraceID), root.SpanID.String())
	raw, err := env.Encode()
	if err != nil {
		return
	}
	_, _ = d.Etcd.Put(types.EvictionIntentKey(p.JobID), string(raw))
	if vol, err := d.NFS.Volume(VolumeName(p.JobID)); err == nil {
		vol.Write(learner.EvictRequestPath, raw)
	}
	if d.Metrics != nil {
		d.Metrics.Inc("guardian_eviction_intents", intent.Reason)
	}
}

// checkGang folds the gang scheduler's state into the monitor loop:
// a completed eviction (GangPreempted) becomes rollback + redeploy; a
// posted intent (GangEvicting) is relayed to the learners once, and
// once every learner has acked its on-demand checkpoint the Guardian
// completes the eviction early instead of waiting out the deadline.
// done=true means the monitor must exit with the returned code.
func checkGang(p Params, relayed *bool, acks map[int]bool) (code int, done bool) {
	d := p.Deps
	g := d.Kube.GangByName(GangName(p.JobID))
	if g == nil {
		return 0, false
	}
	switch g.State() {
	case kube.GangPreempted:
		return handlePreemption(p), true
	case kube.GangEvicting:
		if !*relayed {
			*relayed = true
			if intent, ok := g.EvictionIntent(); ok {
				relayEviction(p, intent)
			}
		}
		if p.Manifest.Learners > 0 && len(acks) >= p.Manifest.Learners {
			// Completion is synchronous: the gang is preempted when
			// AckEviction returns, so redeploy right away.
			d.Kube.AckEviction(GangName(p.JobID))
			if g.State() == kube.GangPreempted {
				return handlePreemption(p), true
			}
		}
	}
	return 0, false
}

// monitorByPoll is the pre-refactor monitor: a full etcd Range of the
// learner statuses every 500ms, kept behind ControlPlane "poll" for A/B
// comparison. Eviction intents and acks ride the same sweep.
func monitorByPoll(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	evictRelayed := false
	for {
		select {
		case <-ctx.Killed():
			return 137
		default:
		}

		rec, err := d.GetJob(p.JobID)
		if err == nil && rec.State == types.StateHalted {
			return handleHalt(p)
		}

		statuses, acks, err := readStatuses(d, p.JobID)
		if code, done := checkGang(p, &evictRelayed, acks); done {
			return code
		}
		if err == nil {
			// A fresh announced value per sweep keeps the pre-refactor
			// timestamped same-state refresh.
			var announced types.JobState
			if code, done := settle(p, statuses, &announced); done {
				return code
			}
		}

		if !ctx.Sleep(monitorPoll) {
			return 137
		}
	}
}

// monitorByWatch is the event-driven monitor: a list-then-watch state
// machine over the job's learner-status prefix. Status events are folded
// into an aggregated per-learner view as they commit; the last folded
// revision (and the view itself) is journaled, so a restarted Guardian
// resumes its watch exactly where the predecessor stopped — etcd is
// re-listed only when the saved revision has been compacted past, and
// once per watchRelist as a liveness backstop. Halts arrive on the
// job's own metadata change feed; eviction intents on the gang's notice
// channel with their acks on the learner watch; gang preemption and the
// results-stored marker, which have no event stream, ride the 1s tick
// (none of these touch etcd).
func monitorByWatch(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	prefix := types.LearnerStatusPrefix(p.JobID)
	count := func(name string) {
		if d.Metrics != nil {
			d.Metrics.Inc(name)
		}
	}

	// Restore the aggregated view and resume cursor from the journal.
	j := loadJournal(d, p.JobID)
	if j == nil {
		j = &journal{Deployed: true}
	}
	statuses := make(map[int]types.StatusUpdate)
	statusRev := make(map[int]uint64)
	var lastRev uint64
	if j.MonitorRev > 0 {
		lastRev = j.MonitorRev
		for l, u := range j.Statuses {
			statuses[l] = u
		}
	}

	// Eviction handshake state. Acks advance the cursor and ride the
	// journal like statuses do, so a Guardian restarted mid-grace picks
	// the handshake up exactly; the scheduler's deadline force-evicts if
	// a restart eats the whole grace window anyway.
	acks := make(map[int]bool)
	for l, v := range j.Acks {
		if v {
			acks[l] = true
		}
	}
	evictRelayed := false

	fold := func(l int, u types.StatusUpdate, rev uint64) {
		if rev > statusRev[l] {
			statusRev[l] = rev
			statuses[l] = u
		}
		if rev > lastRev {
			lastRev = rev
		}
	}
	foldEvent := func(ev etcd.Event) {
		if ev.Type != etcd.EventPut {
			return
		}
		env, ok := events.Decode([]byte(ev.Value))
		if !ok {
			return
		}
		switch env.Kind {
		case events.KindLearnerStatus:
			fold(env.Learner, env.StatusUpdate(), ev.Rev)
			count("guardian_monitor_events")
		case events.KindEvictionAck:
			acks[env.Learner] = true
			if ev.Rev > lastRev {
				lastRev = ev.Rev
			}
			count("guardian_monitor_acks")
		}
	}

	savedRev := lastRev
	saveCursor := func() {
		if lastRev == savedRev {
			return
		}
		j.MonitorRev = lastRev
		j.Statuses = make(map[int]types.StatusUpdate, len(statuses))
		for l, u := range statuses {
			j.Statuses[l] = u
		}
		j.Acks = make(map[int]bool, len(acks))
		for l, v := range acks {
			j.Acks[l] = v
		}
		saveJournal(d, p.JobID, j)
		savedRev = lastRev
	}

	var evCh <-chan etcd.Event
	var cancelWatch func()
	defer func() {
		if cancelWatch != nil {
			cancelWatch()
		}
	}()

	// relist falls back to list-then-watch: subscribe from the present
	// first, then fill from a linearizable Range — an event committed
	// between the two is applied twice at most, and the per-learner
	// revision compare in fold dedupes it.
	relist := func() bool {
		if cancelWatch != nil {
			cancelWatch()
		}
		evCh, cancelWatch = d.Etcd.Watch(prefix)
		kvs, err := d.Etcd.Range(prefix)
		if err != nil {
			return false
		}
		count("guardian_monitor_relists")
		for _, kv := range kvs {
			env, ok := events.Decode([]byte(kv.Value))
			if !ok {
				continue
			}
			switch env.Kind {
			case events.KindLearnerStatus:
				fold(env.Learner, env.StatusUpdate(), kv.Rev)
			case events.KindEvictionAck:
				acks[env.Learner] = true
			}
		}
		return true
	}

	if lastRev > 0 {
		// Resume exactly after the last folded revision: history in
		// (lastRev, now] is backfilled from the store's version chains.
		ch, cancel, err := d.Etcd.WatchFrom(prefix, lastRev)
		if err == nil {
			evCh, cancelWatch = ch, cancel
			count("guardian_monitor_resumes")
		} else {
			// Compacted past (or transient failure): snapshot re-list.
			if errors.Is(err, etcd.ErrCompacted) {
				count("guardian_monitor_resume_compacted")
			}
			if !relist() {
				return 1
			}
		}
	} else if !relist() {
		return 1
	}
	// Persist the cursor immediately: a long event-free stretch (steady
	// training) must still leave a resumable journal behind for the next
	// incarnation.
	saveCursor()

	// Per-job change feed for halt detection (event-driven; the tick
	// re-checks via GetJob as a shield against a lost feed event). The
	// single-document filter keeps this Guardian from waking on every
	// other job's commits at high job counts.
	var jobFeed <-chan mongo.ChangeEvent
	if feed, cancelFeed, err := d.Jobs().WatchKey(p.JobID); err == nil {
		jobFeed = feed
		defer cancelFeed()
	}

	// The scheduler closes the gang's notice channel when it posts an
	// eviction intent, so the relay starts on the event rather than the
	// next tick. A closed channel is always ready — nil it after the
	// first wakeup.
	var evictNotice <-chan struct{}
	if g := d.Kube.GangByName(GangName(p.JobID)); g != nil {
		evictNotice = g.EvictionNotice()
	}

	lastList := d.Clock.Now()
	var announced types.JobState
	for {
		// Act on the current aggregate before sleeping: the view may
		// already be terminal (restored from the journal, or settled by
		// the events just folded).
		// Learner order must be stable: settle's aggregation walks the
		// view in order, and a map-ordered walk would let two replays
		// of one schedule announce different detail lines.
		view := make([]types.StatusUpdate, 0, len(statuses))
		for _, u := range statuses {
			view = append(view, u)
		}
		sort.Slice(view, func(i, j int) bool { return view[i].Learner < view[j].Learner })
		if code, done := settle(p, view, &announced); done {
			return code
		}
		if code, done := checkGang(p, &evictRelayed, acks); done {
			return code
		}

		tick := d.Clock.NewTimer(watchTick)
		select {
		case <-ctx.Killed():
			tick.Stop()
			return 137
		case <-evictNotice:
			tick.Stop()
			evictNotice = nil // fires once; checkGang relays on this pass
		case ev := <-evCh:
			tick.Stop()
			foldEvent(ev)
			// Drain whatever else is already pending so one settle
			// covers the batch.
		drain:
			for {
				select {
				case ev := <-evCh:
					foldEvent(ev)
				default:
					break drain
				}
			}
			saveCursor()
		case ce := <-jobFeed:
			tick.Stop()
			if ce.ID == p.JobID && !ce.Deleted {
				if rec := core.RecordFromDoc(ce.Doc); rec.State == types.StateHalted {
					return handleHalt(p)
				}
			}
		case <-tick.C():
			// Conditions with no event stream, plus the halt shield.
			rec, err := d.GetJob(p.JobID)
			if err == nil && rec.State == types.StateHalted {
				return handleHalt(p)
			}
			if d.Clock.Now().Sub(lastList) >= watchRelist {
				// Long-interval liveness backstop: re-list in case the
				// watch stream wedged.
				lastList = d.Clock.Now()
				count("guardian_monitor_backstops")
				if !relist() {
					continue
				}
				saveCursor()
			}
		}
	}
}

// readStatuses loads the latest per-learner status updates and eviction
// acks from etcd (events.Envelope values; legacy raw StatusUpdate JSON
// still decodes).
func readStatuses(d *core.Deps, jobID string) ([]types.StatusUpdate, map[int]bool, error) {
	kvs, err := d.Etcd.Range(types.LearnerStatusPrefix(jobID))
	if err != nil {
		return nil, nil, err
	}
	out := make([]types.StatusUpdate, 0, len(kvs))
	acks := make(map[int]bool)
	for _, kv := range kvs {
		env, ok := events.Decode([]byte(kv.Value))
		if !ok {
			continue
		}
		switch env.Kind {
		case events.KindLearnerStatus:
			out = append(out, env.StatusUpdate())
		case events.KindEvictionAck:
			acks[env.Learner] = true
		}
	}
	return out, acks, nil
}

// resultsStored checks the helper's stored marker on the shared volume.
func resultsStored(d *core.Deps, jobID string) bool {
	vol, err := d.NFS.Volume(VolumeName(jobID))
	if err != nil {
		return false
	}
	raw, err := vol.Read(helper.ResultsStoredMarker)
	return err == nil && string(raw) == "ok"
}

// restoreShippedLogs re-seeds a freshly provisioned volume with the
// logs and metrics already shipped to the results bucket, so a redeploy
// (preemption, drain, crash rollback) appends to the job's history
// instead of amputating it — later shipments replace the bucket objects
// with the full file, and "reliable streaming of logs from the job,
// irrespective of the stage it is in" holds across incarnations. The
// rollback to the last checkpoint stays visible in the metric series,
// as the paper observes for restarted jobs.
func restoreShippedLogs(d *core.Deps, jobID string, m *manifest.Manifest) {
	vol, err := d.NFS.Volume(VolumeName(jobID))
	if err != nil {
		return
	}
	creds := objectstore.Credentials{AccessKey: m.Results.AccessKey, SecretKey: m.Results.SecretKey}
	for l := 0; l < m.Learners; l++ {
		key := learner.ResultLogKey(jobID, l)
		if obj, err := d.ObjectStore.Get(m.Results.Bucket, key, creds); err == nil && len(obj.Data) > 0 {
			vol.Write(learner.LogPath(l), obj.Data)
		}
		key = learner.ResultMetricsKey(jobID, l)
		if obj, err := d.ObjectStore.Get(m.Results.Bucket, key, creds); err == nil && len(obj.Data) > 0 {
			vol.Write(learner.MetricsPath(l), obj.Data)
		}
	}
}

// shipLogs persists every learner's logs and metrics from the shared
// volume to the results bucket before teardown destroys the volume. The
// store-results helper does this on the success path; the Guardian does
// it for failures and halts, honoring "reliable streaming of logs from
// the job, irrespective of the stage it is in, even if it crashes/fails".
func shipLogs(d *core.Deps, jobID string, m *manifest.Manifest) {
	vol, err := d.NFS.Volume(VolumeName(jobID))
	if err != nil {
		return
	}
	creds := objectstore.Credentials{AccessKey: m.Results.AccessKey, SecretKey: m.Results.SecretKey}
	for l := 0; l < m.Learners; l++ {
		if raw, err := vol.Read(learner.LogPath(l)); err == nil {
			key := learner.ResultLogKey(jobID, l)
			_ = d.ObjectStore.Put(m.Results.Bucket, key, raw, creds)
		}
		if raw, err := vol.Read(learner.MetricsPath(l)); err == nil {
			key := learner.ResultMetricsKey(jobID, l)
			_ = d.ObjectStore.Put(m.Results.Bucket, key, raw, creds)
		}
	}
}

// Rollback deletes every cluster resource a job's (possibly crashed)
// Guardian may have created: network policy, learner StatefulSet, gang
// reservation, helper Deployment, shared volume. All deletions are
// name-addressed and idempotent. Guardian rollback is also gang
// cancellation: the learner pod group's GPU reservation disappears with
// its pods, so a half-deployed job never pins capacity. The LCM's
// garbage collector calls this too, so the resource list lives in
// exactly one place.
func Rollback(d *core.Deps, jobID string) {
	d.Kube.RemoveNetworkPolicy(PolicyName(jobID))
	d.Kube.DeleteStatefulSet(LearnerSetName(jobID))
	d.Kube.CancelGang(GangName(jobID))
	d.Kube.DeleteDeployment(HelperName(jobID))
	d.NFS.Release(VolumeName(jobID))
}

func rollback(d *core.Deps, jobID string) { Rollback(d, jobID) }

// teardown releases a fully deployed job's resources after it reaches a
// terminal state. The NFS volume is kept briefly for log draining and
// released with the rest (logs were already shipped to the object store
// by the log-collector).
func teardown(d *core.Deps, jobID string) {
	rollback(d, jobID)
}

// cleanupEtcd removes the job's coordination keys.
func cleanupEtcd(d *core.Deps, jobID string) {
	kvs, err := d.Etcd.Range(types.JobPrefix(jobID))
	if err != nil {
		return
	}
	for _, kv := range kvs {
		_ = d.Etcd.Delete(kv.Key)
	}
}

func failJob(d *core.Deps, jobID, reason string) {
	_, _ = d.TransitionJob(jobID, types.StateFailed, reason)
}

func loadJournal(d *core.Deps, jobID string) *journal {
	raw, found, err := d.Etcd.Get(types.GuardianJournalKey(jobID))
	if err != nil || !found {
		return nil
	}
	var j journal
	if err := json.Unmarshal([]byte(raw), &j); err != nil {
		return &journal{} // corrupt journal: treat as partial deploy
	}
	return &j
}

func saveJournal(d *core.Deps, jobID string, j *journal) {
	raw, err := json.Marshal(j)
	if err != nil {
		return
	}
	_, _ = d.Etcd.Put(types.GuardianJournalKey(jobID), string(raw))
}
