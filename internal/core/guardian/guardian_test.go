package guardian

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOrdinalFromPodName(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{"learner-job-000001-0", 0},
		{"learner-job-000001-7", 7},
		{"learner-job-000001-12", 12},
		{"weird", 0},
		{"trailing-", 0},
		{"x-3a", 0}, // non-numeric suffix
	}
	for _, tc := range cases {
		if got := ordinalFromPodName(tc.name); got != tc.want {
			t.Errorf("ordinalFromPodName(%q) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// Property: the ordinal round-trips through the StatefulSet naming
// convention for any job id and ordinal.
func TestQuickOrdinalRoundTrip(t *testing.T) {
	f := func(job uint16, ordinal uint8) bool {
		name := LearnerSetName("job-" + itoa(int(job)))
		pod := name + "-" + itoa(int(ordinal))
		return ordinalFromPodName(pod) == int(ordinal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestResourceNamingDisjoint(t *testing.T) {
	// Every per-job resource name embeds the job ID and the names never
	// collide across resource kinds.
	id := "job-000042"
	names := []string{
		VolumeName(id), HelperName(id), LearnerSetName(id), PolicyName(id), KubeJobName(id),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if !strings.Contains(n, id) {
			t.Errorf("name %q does not embed the job id", n)
		}
		if seen[n] {
			t.Errorf("duplicate resource name %q", n)
		}
		seen[n] = true
	}
	// Distinct jobs never share resource names.
	if VolumeName("job-1") == VolumeName("job-2") {
		t.Error("volume names collide across jobs")
	}
}
