package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core/types"
	"repro/internal/mongo"
)

// ErrBadTransition indicates an illegal job state change was requested.
var ErrBadTransition = errors.New("core: illegal state transition")

// ErrJobNotFound indicates the job does not exist in MongoDB.
var ErrJobNotFound = errors.New("core: job not found")

// InsertJob durably records a new job. The paper's submission guarantee
// hinges on this write completing before the API acknowledges: "the API
// layer stores all the metadata in MongoDB before acknowledging the
// request. This ensures that submitted jobs are never lost."
func (d *Deps) InsertJob(rec types.JobRecord) error {
	doc, err := recordToDoc(rec)
	if err != nil {
		return err
	}
	hist, err := json.Marshal([]types.Event{{
		JobID: rec.ID, State: rec.State, Time: rec.SubmittedAt, Note: "submitted",
	}})
	if err != nil {
		return fmt.Errorf("encoding history: %w", err)
	}
	doc["history"] = string(hist)
	if err := d.Jobs().InsertOne(doc); err != nil {
		return fmt.Errorf("inserting job %s: %w", rec.ID, err)
	}
	// The job's trace root opens at the durability point; every later
	// span (scheduler, guardian, learner) parents under trace.JobRoot.
	root := d.Trace.RootAt(rec.ID, rec.SubmittedAt)
	root.SetAttr("tenant", rec.Tenant)
	root.EventAt("state:"+string(rec.State), rec.SubmittedAt)
	return nil
}

// GetJob loads a job record.
func (d *Deps) GetJob(id string) (types.JobRecord, error) {
	doc, err := d.Jobs().FindOne(mongo.Filter{"_id": id})
	if err != nil {
		if errors.Is(err, mongo.ErrNotFound) {
			return types.JobRecord{}, fmt.Errorf("job %s: %w", id, ErrJobNotFound)
		}
		return types.JobRecord{}, err
	}
	return docToRecord(doc), nil
}

// ListJobs returns all jobs for a tenant ("" = every tenant), in ID order.
func (d *Deps) ListJobs(tenant string) ([]types.JobRecord, error) {
	filter := mongo.Filter{}
	if tenant != "" {
		filter["tenant"] = tenant
	}
	docs, err := d.Jobs().Find(filter)
	if err != nil {
		return nil, err
	}
	out := make([]types.JobRecord, 0, len(docs))
	for _, doc := range docs {
		out = append(out, docToRecord(doc))
	}
	return out, nil
}

// JobHistory returns the job's recorded state transitions.
func (d *Deps) JobHistory(id string) ([]types.Event, error) {
	doc, err := d.Jobs().FindOne(mongo.Filter{"_id": id})
	if err != nil {
		if errors.Is(err, mongo.ErrNotFound) {
			return nil, fmt.Errorf("job %s: %w", id, ErrJobNotFound)
		}
		return nil, err
	}
	return decodeHistory(doc), nil
}

// TransitionJob atomically moves the job to state `to` if the state
// machine allows it from the current state, appending a history event.
// Transitioning to the current state is a timestamped no-op refresh.
// Terminal states are never overwritten.
func (d *Deps) TransitionJob(id string, to types.JobState, reason string) (types.JobRecord, error) {
	now := d.Clock.Now()
	changed := false
	doc, err := d.Jobs().Mutate(mongo.Filter{"_id": id}, func(doc mongo.Document) error {
		from := types.JobState(asString(doc["state"]))
		if from == to {
			doc["updated_at"] = now
			return nil
		}
		if !types.CanTransition(from, to) {
			return fmt.Errorf("%w: %s -> %s (job %s)", ErrBadTransition, from, to, id)
		}
		doc["state"] = string(to)
		doc["updated_at"] = now
		if reason != "" {
			doc["reason"] = reason
		}
		hist := decodeHistoryRaw(asString(doc["history"]))
		hist = append(hist, types.Event{JobID: id, State: to, Time: now, Note: reason})
		if raw, err := json.Marshal(hist); err == nil {
			doc["history"] = string(raw)
		}
		changed = true
		return nil
	})
	if err != nil {
		if errors.Is(err, mongo.ErrNotFound) {
			return types.JobRecord{}, fmt.Errorf("job %s: %w", id, ErrJobNotFound)
		}
		return types.JobRecord{}, err
	}
	// This is the single choke point every real state change passes
	// through (API, LCM, Guardian), so the trace root's lifecycle
	// events live here; a terminal state closes the root span.
	if changed && d.Trace != nil {
		root := d.Trace.RootAt(id, now)
		root.EventAt("state:"+string(to), now)
		if to.Terminal() {
			root.SetAttr("terminal", string(to))
			root.EndAt(now)
		}
	}
	return docToRecord(doc), nil
}

// IncrementDeployAttempts bumps and returns the deployment retry counter.
func (d *Deps) IncrementDeployAttempts(id string) (int, error) {
	var attempts int
	_, err := d.Jobs().Mutate(mongo.Filter{"_id": id}, func(doc mongo.Document) error {
		attempts = asInt(doc["deploy_attempts"]) + 1
		doc["deploy_attempts"] = attempts
		return nil
	})
	if err != nil {
		if errors.Is(err, mongo.ErrNotFound) {
			return 0, fmt.Errorf("job %s: %w", id, ErrJobNotFound)
		}
		return 0, err
	}
	return attempts, nil
}

// ResetDeployAttempts clears the deployment retry counter. The Guardian
// resets after a gang preemption: the redeploy is the scheduler's doing,
// not a deployment failure, so it must not count against the budget.
func (d *Deps) ResetDeployAttempts(id string) error {
	_, err := d.Jobs().Mutate(mongo.Filter{"_id": id}, func(doc mongo.Document) error {
		doc["deploy_attempts"] = 0
		return nil
	})
	if err != nil {
		if errors.Is(err, mongo.ErrNotFound) {
			return fmt.Errorf("job %s: %w", id, ErrJobNotFound)
		}
		return err
	}
	return nil
}

// RecordFromDoc decodes a jobs-collection document into a JobRecord —
// the adapter for change-feed consumers (LCM, Guardian) that receive
// raw documents from Collection.Watch.
func RecordFromDoc(doc mongo.Document) types.JobRecord { return docToRecord(doc) }

func recordToDoc(rec types.JobRecord) (mongo.Document, error) {
	if rec.ID == "" {
		return nil, fmt.Errorf("core: job record without ID")
	}
	return mongo.Document{
		"_id":             rec.ID,
		"tenant":          rec.Tenant,
		"state":           string(rec.State),
		"manifest":        rec.Manifest,
		"deploy_attempts": rec.DeployAttempts,
		"submitted_at":    rec.SubmittedAt,
		"updated_at":      rec.UpdatedAt,
		"reason":          rec.Reason,
	}, nil
}

func docToRecord(doc mongo.Document) types.JobRecord {
	rec := types.JobRecord{
		ID:             asString(doc["_id"]),
		Tenant:         asString(doc["tenant"]),
		State:          types.JobState(asString(doc["state"])),
		Manifest:       asString(doc["manifest"]),
		DeployAttempts: asInt(doc["deploy_attempts"]),
		Reason:         asString(doc["reason"]),
	}
	if t, ok := doc["submitted_at"].(time.Time); ok {
		rec.SubmittedAt = t
	}
	if t, ok := doc["updated_at"].(time.Time); ok {
		rec.UpdatedAt = t
	}
	return rec
}

func decodeHistory(doc mongo.Document) []types.Event {
	return decodeHistoryRaw(asString(doc["history"]))
}

func decodeHistoryRaw(raw string) []types.Event {
	var hist []types.Event
	if raw != "" {
		_ = json.Unmarshal([]byte(raw), &hist)
	}
	return hist
}

func asString(v any) string {
	s, _ := v.(string)
	return s
}

func asInt(v any) int {
	switch n := v.(type) {
	case int:
		return n
	case int64:
		return int(n)
	case float64:
		return int(n)
	default:
		return 0
	}
}
