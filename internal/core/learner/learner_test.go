package learner

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/etcd"
	"repro/internal/events"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/metrics"
	"repro/internal/mongo"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/rpc"
)

func newTestDeps(t *testing.T) (*core.Deps, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	link := netsim.NewSharedLink(netsim.Ethernet1G, clk)
	cluster := kube.NewCluster(kube.Config{Clock: clk},
		kube.NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
	)
	store := etcd.New(1, clk)
	t.Cleanup(func() {
		cluster.Stop()
		store.Close()
		clk.Close()
	})
	return &core.Deps{
		Clock:       clk,
		Bus:         rpc.NewBus(clk),
		Kube:        cluster,
		Etcd:        store,
		Mongo:       mongo.New(clk),
		ObjectStore: objectstore.New(clk, link),
		NFS:         nfs.NewServer(clk),
		DataLink:    link,
		DefaultGPU:  gpu.K80,
		Metrics:     metrics.NewRegistry(),
	}, clk
}

func smallManifest() *manifest.Manifest {
	return &manifest.Manifest{
		Name: "t", Framework: "tensorflow", Model: "resnet50",
		Learners: 1, GPUsPerLearner: 1, BatchPerGPU: 32, Epochs: 1,
		DatasetImages: 640,
		TrainingData:  manifest.DataRef{Bucket: "data", Key: "train.rec", AccessKey: "ak", SecretKey: "sk"},
		Results:       manifest.DataRef{Bucket: "results", AccessKey: "ak", SecretKey: "sk"},
	}
}

func TestVolumePathsDistinctPerLearner(t *testing.T) {
	paths := func(l int) []string {
		return []string{StatusPath(l), LogPath(l), ProgressPath(l), MetricsPath(l)}
	}
	seen := map[string]bool{}
	for _, l := range []int{0, 1, 7} {
		for _, p := range paths(l) {
			if seen[p] {
				t.Fatalf("path %q collides", p)
			}
			seen[p] = true
		}
	}
}

func TestTrainingConfigInterconnect(t *testing.T) {
	m := smallManifest()
	// Single-learner jobs synchronize over the host link (PCIe).
	cfg := TrainingConfig(m, gpu.K80)
	if cfg.Interconnect != gpu.K80.HostLink {
		t.Fatalf("1-learner interconnect = %v, want host link", cfg.Interconnect)
	}
	if cfg.NumGPUs != 1 {
		t.Fatalf("NumGPUs = %d", cfg.NumGPUs)
	}
	// Distributed jobs ride the datacenter network.
	m.Learners = 4
	cfg = TrainingConfig(m, gpu.K80)
	if cfg.Interconnect != netsim.Ethernet1G {
		t.Fatalf("4-learner interconnect = %v, want 1GbE", cfg.Interconnect)
	}
	if cfg.NumGPUs != 4 {
		t.Fatalf("NumGPUs = %d", cfg.NumGPUs)
	}
}

func TestContainerSpecImage(t *testing.T) {
	d, _ := newTestDeps(t)
	spec := ContainerSpec(Params{Deps: d, JobID: "j", Manifest: smallManifest(), VolumeName: "v", GPU: gpu.K80})
	if !strings.HasPrefix(spec.Image, "tensorflow") {
		t.Fatalf("image = %q, want framework image", spec.Image)
	}
	// Heavy framework images dominate learner restart latency (Fig. 4:
	// learners are the slowest component to recover).
	if spec.StartDelay < 5*time.Second {
		t.Fatalf("start delay = %v, implausibly fast for a DL framework image", spec.StartDelay)
	}
}

func TestLatestCheckpoint(t *testing.T) {
	d, _ := newTestDeps(t)
	m := smallManifest()
	creds := objectstore.Credentials{AccessKey: "ak", SecretKey: "sk"}
	if err := d.ObjectStore.CreateBucket("results", creds); err != nil {
		t.Fatal(err)
	}
	if got := latestCheckpoint(d, m, creds, "j1"); got != 0 {
		t.Fatalf("no checkpoints -> %d, want 0", got)
	}
	for _, images := range []int64{3200, 12800, 6400} {
		key := checkpointPrefix("j1") + padImages(images)
		if err := d.ObjectStore.PutSynthetic("results", key, 10, creds); err != nil {
			t.Fatal(err)
		}
	}
	// Another job's checkpoints must not leak in.
	if err := d.ObjectStore.PutSynthetic("results", checkpointPrefix("j2")+padImages(99999), 10, creds); err != nil {
		t.Fatal(err)
	}
	if got := latestCheckpoint(d, m, creds, "j1"); got != 12800 {
		t.Fatalf("latest = %d, want 12800", got)
	}
}

func padImages(n int64) string {
	s := "000000000000"
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return s[:12-len(digits)] + digits
}

// runLearnerPod stages buckets/volume per stage flags, runs one learner
// container in a pod, and returns its exit-file code.
func runLearnerPod(t *testing.T, d *core.Deps, clk *clock.Sim, m *manifest.Manifest, stageData bool) int {
	t.Helper()
	vol, err := d.NFS.Provision("vol-j")
	if err != nil {
		t.Fatal(err)
	}
	creds := objectstore.Credentials{AccessKey: "ak", SecretKey: "sk"}
	if stageData {
		if err := d.ObjectStore.CreateBucket("data", creds); err != nil {
			t.Fatal(err)
		}
		if err := d.ObjectStore.PutSynthetic("data", "train.rec", 64<<20, creds); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ObjectStore.CreateBucket("results", creds); err != nil {
		t.Fatal(err)
	}
	spec := kube.PodSpec{
		Name:          "learner-pod-0",
		RestartPolicy: kube.RestartNever,
		GPUs:          1,
		Containers: []kube.ContainerSpec{ContainerSpec(Params{
			Deps: d, JobID: "j", Ordinal: 0, Manifest: m, VolumeName: "vol-j", GPU: gpu.K80,
		})},
	}
	if _, err := d.Kube.CreatePod(spec); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(6 * time.Hour)
	for clk.Now().Before(deadline) {
		if code, ok := vol.ReadExitCode(0); ok {
			_ = d.Kube.DeletePod("learner-pod-0")
			return code
		}
		clk.Sleep(5 * time.Second)
	}
	t.Fatal("learner never wrote an exit code")
	return -1
}

func TestLearnerTrainsToCompletion(t *testing.T) {
	d, clk := newTestDeps(t)
	m := smallManifest()
	code := runLearnerPod(t, d, clk, m, true)
	if code != ExitOK {
		t.Fatalf("exit code = %d, want %d", code, ExitOK)
	}
	vol, err := d.NFS.Volume("vol-j")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := vol.Read(StatusPath(0))
	if err != nil {
		t.Fatalf("reading status file: %v", err)
	}
	env, ok := events.Decode(raw)
	if !ok || env.Kind != events.KindLearnerStatus || types.LearnerStatus(env.Status) != types.LearnerCompleted {
		t.Fatalf("status envelope = %s (ok=%v), want COMPLETED", raw, ok)
	}
	logRaw, err := vol.Read(LogPath(0))
	if err != nil || !strings.Contains(string(logRaw), "training complete") {
		t.Fatalf("log missing completion marker: %v\n%s", err, logRaw)
	}
	if !vol.Exists(MetricsPath(0)) {
		t.Fatal("no training metrics written")
	}
}

func TestLearnerFailsOnMissingTrainingData(t *testing.T) {
	d, clk := newTestDeps(t)
	m := smallManifest()
	code := runLearnerPod(t, d, clk, m, false) // data bucket never staged
	if code != ExitDataError {
		t.Fatalf("exit code = %d, want %d (data error)", code, ExitDataError)
	}
}

func TestLearnerFailsOOMOnOversizedBatch(t *testing.T) {
	d, clk := newTestDeps(t)
	m := smallManifest()
	m.Model = "vgg16"
	m.BatchPerGPU = 64 // activations exceed the K80's 12GB
	code := runLearnerPod(t, d, clk, m, true)
	if code != ExitOOM {
		t.Fatalf("exit code = %d, want %d (OOM)", code, ExitOOM)
	}
}
