// Package learner implements the learner container process: the actual
// DL training workload inside a framework image. A learner streams
// training data from the object store, advances the (simulated) training
// computation, checkpoints periodically to the object store, appends logs
// and status to the shared NFS volume, and on restart resumes from the
// latest checkpoint — losing at most one checkpoint interval of work, as
// the paper promises.
package learner

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/core/manifest"
	"repro/internal/core/types"
	"repro/internal/events"
	"repro/internal/gpu"
	"repro/internal/kube"
	"repro/internal/netsim"
	"repro/internal/nfs"
	"repro/internal/objectstore"
	"repro/internal/trace"
	"repro/internal/trainsim"
)

// Exit codes written to the NFS exit-status file.
const (
	// ExitOK signals orderly completion.
	ExitOK = 0
	// ExitDataError signals inaccessible training data.
	ExitDataError = 3
	// ExitVolumeError signals a missing shared volume.
	ExitVolumeError = 4
	// ExitOOM signals the batch does not fit the GPU's device memory.
	ExitOOM = 5
)

// statusPollGrain is how finely training sleep is chunked so that kills
// are observed promptly and logs accrue steadily.
const maxChunks = 64

// WedgePath is the NFS file whose presence wedges the job's learners: a
// fault-injection hook for the alive-but-stuck failure mode. A wedged
// learner keeps its process alive and its status TRAINING but makes no
// progress — invisible to exit-code and crash detection, caught only by
// the Guardian's progress-liveness deadline.
const WedgePath = "chaos/wedge"

// nfsStallThreshold is how much a training chunk must overrun its
// expected compute time before the excess is attributed to a shared-
// volume stall (NFS operations block in virtual time during a flap).
const nfsStallThreshold = 2 * time.Second

// Params configures one learner container.
type Params struct {
	Deps     *core.Deps
	JobID    string
	Ordinal  int
	Manifest *manifest.Manifest
	// VolumeName is the job's shared NFS volume.
	VolumeName string
	// GPU is the resolved GPU spec for this job.
	GPU gpu.Spec
}

// StatusPath is the NFS file where learner l publishes its status.
func StatusPath(l int) string { return fmt.Sprintf("learner-%d/status", l) }

// LogPath is the NFS file where learner l appends training logs.
func LogPath(l int) string { return fmt.Sprintf("learner-%d/training.log", l) }

// ProgressPath is the NFS file where learner l records images processed.
func ProgressPath(l int) string { return fmt.Sprintf("learner-%d/progress", l) }

// MetricsPath is the NFS file where learner l appends its training
// progress graph (JSON lines of trainsim.MetricPoint). The paper notes
// users profile jobs with these graphs and that the graph of a job that
// was restarted differs slightly from one that never failed — the
// rollback to the last checkpoint is visible in the series.
func MetricsPath(l int) string { return fmt.Sprintf("learner-%d/metrics.jsonl", l) }

// EvictRequestPath is the NFS file the Guardian writes (an
// events.KindEvictionIntent envelope) to relay the scheduler's eviction
// intent to the job's learners: the checkpoint-now trigger of the
// graceful-eviction protocol.
const EvictRequestPath = "evict/request"

// EvictAckPath is the NFS file where learner l acknowledges an eviction
// intent (an events.KindEvictionAck envelope) once its on-demand
// checkpoint is durable; the helper controller mirrors it into etcd for
// the Guardian.
func EvictAckPath(l int) string { return fmt.Sprintf("learner-%d/evict-ack", l) }

// checkpointPrefix is the results-bucket key prefix for checkpoints.
func checkpointPrefix(jobID string) string {
	return fmt.Sprintf("checkpoints/%s/ckpt-", jobID)
}

// ResultLogKey is the results-bucket key where learner l's training log
// is shipped. Every shipper (log-collector, store-results, Guardian)
// and reader (API logs endpoint, redeploy restore) addresses logs
// through this one helper, so the layout cannot drift between them.
func ResultLogKey(jobID string, l int) string {
	return fmt.Sprintf("logs/%s/learner-%d.log", jobID, l)
}

// ResultMetricsKey is the results-bucket key for learner l's training
// progress graph.
func ResultMetricsKey(jobID string, l int) string {
	return fmt.Sprintf("metrics/%s/learner-%d.jsonl", jobID, l)
}

// ContainerSpec builds the kube container for a learner. Heavy framework
// images and the object-store binding dominate its restart latency
// ("Learners take longest to restart because binding to cloud object
// store and persistent NFS volumes takes longer, and Caffe/Tensorflow
// pods take longer to restart").
func ContainerSpec(p Params) kube.ContainerSpec {
	return kube.ContainerSpec{
		Name:       "learner",
		Image:      string(p.Manifest.Framework) + ":dlaas",
		StartDelay: 7 * time.Second,
		Run:        func(ctx *kube.ContainerCtx) int { return run(ctx, p) },
	}
}

// TrainingConfig builds the trainsim configuration for the whole job
// (all learners train synchronously, so step timing is global).
func TrainingConfig(m *manifest.Manifest, g gpu.Spec) trainsim.Config {
	interconnect := g.HostLink
	if m.Learners > 1 {
		// Cross-learner synchronization leaves the box: it rides the
		// datacenter network.
		interconnect = netsim.Ethernet1G
	}
	return trainsim.Config{
		Model:        m.ModelSpec(),
		Framework:    trainsim.Framework(m.Framework),
		GPU:          g,
		NumGPUs:      m.Learners * m.GPUsPerLearner,
		BatchPerGPU:  m.BatchPerGPU,
		Sync:         trainsim.SyncAllReduce,
		Interconnect: interconnect,
		Overheads:    trainsim.DLaaS(),
	}
}

func run(ctx *kube.ContainerCtx, p Params) int {
	d := p.Deps
	vol, err := d.NFS.Volume(p.VolumeName)
	if err != nil {
		return ExitVolumeError
	}
	// Local stamps (status records, log lines, metric points, eviction
	// acks) read the node's clock — under injected clock skew these drift
	// with the node, exactly as a real learner's would. Central job
	// history stays on the core services' clock, which is why it must
	// remain monotone even when learner-side stamps are skewed.
	nodeClk := ctx.Clock()

	// One attempt span per incarnation, parented directly under the job
	// root (trace.JobRoot is derivable, so re-parenting after a crash
	// needs no propagated state). Span timestamps read the central clock:
	// critical-path math must stay consistent under injected node skew.
	tr := d.Trace
	attempt := tr.StartSpan(trace.JobRoot(p.JobID), fmt.Sprintf("learner-%d", p.Ordinal))
	attempt.SetAttr("node", ctx.NodeName())
	attempt.SetAttr("incarnation", strconv.Itoa(ctx.Restart()))
	defer attempt.End()
	attemptTraceID, attemptSpanID := "", ""
	if sc := attempt.Context(); sc.Valid() {
		attemptTraceID, attemptSpanID = string(sc.TraceID), sc.SpanID.String()
	}

	writeStatus := func(s types.LearnerStatus) {
		// The status file carries the shared control-plane envelope: the
		// helper controller mirrors it into etcd verbatim-compatible form
		// and the Guardian folds it into the job state — one schema from
		// learner to LCM. The attempt's trace context rides along so the
		// span tree covers the status path end to end.
		env := events.LearnerStatus(p.JobID, types.StatusUpdate{
			Learner: p.Ordinal, Status: s, Time: nodeClk.Now(),
		}).WithTrace(attemptTraceID, attemptSpanID)
		raw, err := env.Encode()
		if err != nil {
			raw = []byte(s) // legacy bare-string form, still decodable
		}
		vol.Write(StatusPath(p.Ordinal), raw)
	}
	logf := func(format string, args ...any) {
		line := fmt.Sprintf("%s learner-%d: %s\n",
			nodeClk.Now().Format("15:04:05"), p.Ordinal, fmt.Sprintf(format, args...))
		vol.Append(LogPath(p.Ordinal), []byte(line))
	}

	writeStatus(types.LearnerStarting)
	logf("starting (incarnation %d) on node %s", ctx.Restart(), ctx.NodeName())

	m := p.Manifest

	// MPI-style rendezvous: distributed learners wait until every peer
	// has registered on the shared volume before proceeding, so a
	// partially placed gang never trains alone ("setting up network
	// (MPI) interconnections" is part of atomic provisioning).
	if m.Learners > 1 {
		rsp := tr.StartSpan(attempt.Context(), "rendezvous")
		rsp.SetPhase(trace.PhaseRendezvous)
		for {
			ready := 0
			for l := 0; l < m.Learners; l++ {
				if vol.Exists(StatusPath(l)) {
					ready++
				}
			}
			if ready == m.Learners {
				break
			}
			if !ctx.Sleep(time.Second) {
				rsp.End()
				return exitKilled()
			}
		}
		rsp.End()
		logf("rendezvous complete: %d learners connected", m.Learners)
	}
	dataCreds := objectstore.Credentials{AccessKey: m.TrainingData.AccessKey, SecretKey: m.TrainingData.SecretKey}
	resCreds := objectstore.Credentials{AccessKey: m.Results.AccessKey, SecretKey: m.Results.SecretKey}

	// Verify training data access before burning GPU time.
	dataObj, err := d.ObjectStore.Stat(m.TrainingData.Bucket, m.TrainingData.Key, dataCreds)
	if err != nil {
		logf("training data inaccessible: %v", err)
		writeStatus(types.LearnerFailed)
		vol.WriteExitCode(p.Ordinal, ExitDataError)
		return ExitDataError
	}

	cfg := TrainingConfig(m, p.GPU)

	// Out-of-memory check: the framework aborts at startup when the
	// batch's activations don't fit the device. This is an orderly
	// failure — the exit file tells the controller, which tells the
	// Guardian, which fails the job with a diagnosable reason.
	if !cfg.FitsMemory() {
		logf("OOM: %s batch %d needs %d MB, %s has %d MB",
			m.Model, m.BatchPerGPU, cfg.MemoryRequiredBytes()>>20, p.GPU.Name, int64(p.GPU.MemGB*1000))
		writeStatus(types.LearnerFailed)
		vol.WriteExitCode(p.Ordinal, ExitOOM)
		return ExitOOM
	}

	totalImages := int64(m.Epochs) * m.DatasetImages

	// Resume from the latest checkpoint, if any. The checkpoint download
	// is a real transfer — part of why learner recovery is the slowest
	// in Fig. 4. The span is recorded retroactively (once the listing
	// says there is something to resume) and tagged as recovery cost.
	resumeStart := d.Clock.Now()
	imagesDone := latestCheckpoint(d, m, resCreds, p.JobID)
	if imagesDone > 0 {
		d.DataLink.Transfer(cfg.CheckpointBytes())
		sp := tr.StartSpanAt(attempt.Context(), "resume-checkpoint", resumeStart)
		sp.SetPhase(trace.PhaseRecovery)
		sp.SetAttr("images", strconv.FormatInt(imagesDone, 10))
		sp.EndAt(d.Clock.Now())
		logf("resumed from checkpoint at %d/%d images", imagesDone, totalImages)
	}

	// Warm the input pipeline: stream the first shard of the epoch.
	dsp := tr.StartSpan(attempt.Context(), "download")
	dsp.SetPhase(trace.PhaseDownload)
	writeStatus(types.LearnerDownloading)
	shard := dataObj.Size / int64(m.Learners)
	if shard > 0 {
		warm := shard / 64
		if warm > 256<<20 {
			warm = 256 << 20
		}
		d.DataLink.Transfer(warm)
	}
	dsp.End()

	writeStatus(types.LearnerTraining)
	logf("training %s/%s on %d GPU(s) x %d learner(s), batch %d",
		m.Model, m.Framework, m.GPUsPerLearner, m.Learners, m.BatchPerGPU)

	stepImages := int64(cfg.NumGPUs * m.BatchPerGPU)
	if stepImages == 0 {
		stepImages = int64(m.BatchPerGPU)
	}
	stepTime := cfg.StepTime()

	// Checkpoint cadence in images.
	ckptImages := totalImages // no periodic checkpoints by default
	if m.CheckpointInterval > 0 {
		steps := int64(m.CheckpointInterval / stepTime)
		if steps < 1 {
			steps = 1
		}
		ckptImages = steps * stepImages
	}

	// Eviction-grace handler, polled at every training chunk: when the
	// Guardian relays an eviction intent onto the shared volume, stall
	// to serialize the model off the device, upload an on-demand
	// checkpoint, and ack — so the impending kill loses at most one
	// chunk of work instead of a full checkpoint interval. Acked once
	// per incarnation: the intent ends in this pod's eviction.
	graceAcked := false
	graceCheckpoint := func(imagesDone int64) bool {
		if graceAcked || !vol.Exists(EvictRequestPath) {
			return true
		}
		graceAcked = true
		esp := tr.StartSpan(attempt.Context(), "evict-grace")
		esp.SetPhase(trace.PhaseEvict)
		defer esp.End()
		if !ctx.Sleep(cfg.CheckpointStallTime()) {
			return false
		}
		writeCheckpoint(d, m, resCreds, cfg, p.JobID, imagesDone)
		env := events.EvictionAck(p.JobID, p.Ordinal, imagesDone, nodeClk.Now())
		if raw, err := env.Encode(); err == nil {
			vol.Write(EvictAckPath(p.Ordinal), raw)
		}
		logf("on-demand checkpoint at %d/%d images (eviction grace)", imagesDone, totalImages)
		return true
	}

	for imagesDone < totalImages {
		target := imagesDone + ckptImages
		if target > totalImages {
			target = totalImages
		}
		tsp := tr.StartSpan(attempt.Context(), "train")
		tsp.SetPhase(trace.PhaseTrain)
		tsp.SetAttr("target", strconv.FormatInt(target, 10))
		ok := trainSpan(ctx, d, vol, p, cfg, stepTime, stepImages, &imagesDone, target, tsp.Context(), graceCheckpoint, logf)
		tsp.End()
		if !ok {
			// Killed mid-training: this incarnation ends as a crash;
			// the recovered learner resumes from the last checkpoint.
			return exitKilled()
		}
		if imagesDone < totalImages && m.CheckpointInterval > 0 {
			csp := tr.StartSpan(attempt.Context(), "checkpoint")
			csp.SetPhase(trace.PhaseCheckpoint)
			csp.SetAttr("images", strconv.FormatInt(imagesDone, 10))
			writeCheckpoint(d, m, resCreds, cfg, p.JobID, imagesDone)
			csp.End()
			logf("checkpoint at %d/%d images (%d bytes)", imagesDone, totalImages, cfg.CheckpointBytes())
		}
	}

	writeStatus(types.LearnerCompleted)
	logf("training complete: %d images", imagesDone)
	vol.WriteExitCode(p.Ordinal, ExitOK)
	attempt.End()

	// Hold the container open: completion is signaled through the exit
	// file; the Guardian tears the StatefulSet down after storing
	// results.
	<-ctx.Killed()
	return ExitOK
}

// trainSpan advances training to target images, sleeping in chunks so the
// process observes kills, publishes progress, and answers eviction
// intents (onChunk) promptly. It reports false when killed. Each chunk is
// timed on the central clock against its expected compute time; the
// excess — NFS operations blocking through a volume flap — is recorded
// retroactively as an "nfs-stall" child of parent, so the critical path
// separates stalled wall time from productive training.
func trainSpan(ctx *kube.ContainerCtx, d *core.Deps, vol *nfs.Volume, p Params,
	cfg trainsim.Config, stepTime time.Duration, stepImages int64,
	imagesDone *int64, target int64, parent trace.SpanContext,
	onChunk func(int64) bool, logf func(string, ...any)) bool {

	remaining := target - *imagesDone
	steps := (remaining + stepImages - 1) / stepImages
	chunkSteps := steps / maxChunks
	if chunkSteps < 1 {
		chunkSteps = 1
	}
	curve := trainsim.CurveFor(cfg.Model, 42)
	for *imagesDone < target {
		// Wedge hook: the marker file turns this learner into the
		// alive-but-stuck failure mode — process up, status TRAINING,
		// zero progress. The open-ended span makes the hang visible on
		// the trace; only the liveness deadline can catch it.
		if vol.Exists(WedgePath) {
			wsp := d.Trace.StartSpan(parent, "wedged")
			wsp.SetPhase(trace.PhaseStall)
			wsp.SetAttr("images", strconv.FormatInt(*imagesDone, 10))
			logf("wedged at %d images: process alive, no progress", *imagesDone)
			<-ctx.Killed()
			return false
		}
		n := chunkSteps
		left := (target - *imagesDone + stepImages - 1) / stepImages
		if n > left {
			n = left
		}
		expected := time.Duration(n) * stepTime
		chunkStart := d.Clock.Now()
		if !ctx.Sleep(expected) {
			return false
		}
		*imagesDone += n * stepImages
		if *imagesDone > target {
			*imagesDone = target
		}
		vol.Write(ProgressPath(p.Ordinal), []byte(strconv.FormatInt(*imagesDone, 10)))
		point := trainsim.MetricPoint{
			ClusterSeconds: float64(ctx.Clock().Now().UnixNano()) / 1e9,
			Images:         *imagesDone,
			Loss:           curve.LossAt(*imagesDone),
			Restarts:       ctx.Restart(),
		}
		if raw, err := json.Marshal(point); err == nil {
			vol.Append(MetricsPath(p.Ordinal), append(raw, '\n'))
		}
		if excess := d.Clock.Now().Sub(chunkStart) - expected; excess > nfsStallThreshold {
			sp := d.Trace.StartSpanAt(parent, "nfs-stall", chunkStart.Add(expected))
			sp.SetPhase(trace.PhaseStall)
			sp.EndAt(chunkStart.Add(expected + excess))
		}
		if !onChunk(*imagesDone) {
			return false
		}
	}
	logf("progress: %d images (%.1f img/s aggregate)", *imagesDone, cfg.Throughput())
	return true
}

// writeCheckpoint persists the model state to the results bucket,
// charging the transfer to the shared data network. Only learner state
// for the job as a whole is stored (one checkpoint stream), keyed by
// progress so recovery can find the newest.
func writeCheckpoint(d *core.Deps, m *manifest.Manifest, creds objectstore.Credentials,
	cfg trainsim.Config, jobID string, imagesDone int64) {
	d.DataLink.Transfer(cfg.CheckpointBytes())
	key := fmt.Sprintf("%s%012d", checkpointPrefix(jobID), imagesDone)
	_ = d.ObjectStore.PutSynthetic(m.Results.Bucket, key, cfg.CheckpointBytes(), creds)
}

// latestCheckpoint returns the highest checkpointed image count for the
// job, or 0 when none exists.
func latestCheckpoint(d *core.Deps, m *manifest.Manifest, creds objectstore.Credentials, jobID string) int64 {
	keys, err := d.ObjectStore.List(m.Results.Bucket, creds)
	if err != nil {
		return 0
	}
	prefix := checkpointPrefix(jobID)
	var best int64
	sort.Strings(keys)
	for _, k := range keys {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimLeft(strings.TrimPrefix(k, prefix), "0"), 10, 64)
		if err == nil && n > best {
			best = n
		}
	}
	return best
}

func exitKilled() int { return 137 }
