package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// ErrLeaseExpired indicates an attach or keep-alive raced lease expiry.
var ErrLeaseExpired = errors.New("store: lease expired")

// Lease is a TTL-bound liveness handle: keys attached to it are deleted
// in one atomic commit when the lease expires without a keep-alive —
// the engine-level mechanism behind component presence keys.
type Lease struct {
	eng *Engine
	id  uint64
	ttl time.Duration

	mu      sync.Mutex
	keys    map[string]bool
	expired bool
	timer   clock.Timer
}

var leaseSeq atomic.Uint64

// GrantLease creates a lease with the given TTL on clk. Without
// keep-alives the lease expires and every attached key is deleted.
func (e *Engine) GrantLease(clk clock.Clock, ttl time.Duration) (*Lease, error) {
	if err := e.writableInternal(); err != nil {
		return nil, err
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("store: lease ttl must be positive, got %v", ttl)
	}
	l := &Lease{
		eng:  e,
		id:   leaseSeq.Add(1),
		ttl:  ttl,
		keys: make(map[string]bool),
	}
	l.timer = clk.AfterFunc(ttl, l.expire)
	return l, nil
}

// ID returns the lease identity.
func (l *Lease) ID() uint64 { return l.id }

// Put stores key=value attached to the lease: the key is deleted
// automatically when the lease expires. The lease lock is held across
// the engine write, so an expiry observes either no key (Put fails with
// ErrLeaseExpired) or the installed key (the expiry deletes it) — never
// a registration whose value lands after the delete batch.
func (l *Lease) Put(key string, value any) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.expired {
		return 0, fmt.Errorf("put %q: %w", key, ErrLeaseExpired)
	}
	rev, err := l.eng.Put(key, value)
	if err != nil {
		return 0, err
	}
	l.keys[key] = true
	return rev, nil
}

// KeepAlive extends the lease by its TTL; it fails once expired.
func (l *Lease) KeepAlive() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.expired {
		return ErrLeaseExpired
	}
	l.timer.Stop()
	l.timer.Reset(l.ttl)
	return nil
}

// Revoke expires the lease immediately, deleting attached keys.
func (l *Lease) Revoke() { l.expire() }

// Expired reports whether the lease has expired.
func (l *Lease) Expired() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.expired
}

// expire deletes every attached key in a single atomic commit, so a
// snapshot reader sees the component's presence vanish all at once.
func (l *Lease) expire() {
	l.mu.Lock()
	if l.expired {
		l.mu.Unlock()
		return
	}
	l.expired = true
	l.timer.Stop()
	ops := make([]Op, 0, len(l.keys))
	for k := range l.keys {
		ops = append(ops, Op{Kind: OpDelete, Key: k})
	}
	l.mu.Unlock()
	_, _ = l.eng.Commit(ops) // best effort: the engine may be closing
}
