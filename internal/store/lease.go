package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// ErrLeaseExpired indicates an attach or keep-alive raced lease expiry.
var ErrLeaseExpired = errors.New("store: lease expired")

// Lease is a TTL-bound liveness handle: keys attached to it are deleted
// in one atomic commit when the lease expires without a keep-alive —
// the engine-level mechanism behind component presence keys.
type Lease struct {
	eng *Engine
	id  uint64
	ttl time.Duration
	clk clock.Clock

	mu       sync.Mutex
	keys     map[string]bool
	expired  bool
	deadline time.Time
	timer    clock.Timer
	onExpire []func()
}

var leaseSeq atomic.Uint64

// GrantLease creates a lease with the given TTL on clk. Without
// keep-alives the lease expires and every attached key is deleted.
func (e *Engine) GrantLease(clk clock.Clock, ttl time.Duration) (*Lease, error) {
	if err := e.writableInternal(); err != nil {
		return nil, err
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("store: lease ttl must be positive, got %v", ttl)
	}
	l := &Lease{
		eng:      e,
		id:       leaseSeq.Add(1),
		ttl:      ttl,
		clk:      clk,
		keys:     make(map[string]bool),
		deadline: clk.Now().Add(ttl),
	}
	l.timer = clk.AfterFunc(ttl, func() { l.expire(false) })
	return l, nil
}

// ID returns the lease identity.
func (l *Lease) ID() uint64 { return l.id }

// Put stores key=value attached to the lease: the key is deleted
// automatically when the lease expires. The lease lock is held across
// the engine write, so an expiry observes either no key (Put fails with
// ErrLeaseExpired) or the installed key (the expiry deletes it) — never
// a registration whose value lands after the delete batch.
func (l *Lease) Put(key string, value any) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.expired {
		return 0, fmt.Errorf("put %q: %w", key, ErrLeaseExpired)
	}
	rev, err := l.eng.Put(key, value)
	if err != nil {
		return 0, err
	}
	l.keys[key] = true
	return rev, nil
}

// KeepAlive extends the lease by its TTL; it fails once expired.
func (l *Lease) KeepAlive() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.expired {
		return ErrLeaseExpired
	}
	l.timer.Stop()
	l.timer.Reset(l.ttl)
	// The deadline is the authority an in-flight expiry re-checks: a
	// timer goroutine already spawned when this keep-alive lands must
	// not kill a lease whose owner just renewed it.
	l.deadline = l.clk.Now().Add(l.ttl)
	return nil
}

// Revoke expires the lease immediately, deleting attached keys.
func (l *Lease) Revoke() { l.expire(true) }

// OnExpire registers fn to run (once, on the expiring goroutine) when
// the lease expires or is revoked; a lease that already expired runs fn
// synchronously. The watch-lease integration hangs watcher cancellation
// off this hook, so a dead watcher's resources die with its lease.
func (l *Lease) OnExpire(fn func()) {
	l.mu.Lock()
	if l.expired {
		l.mu.Unlock()
		fn()
		return
	}
	l.onExpire = append(l.onExpire, fn)
	l.mu.Unlock()
}

// Expired reports whether the lease has expired.
func (l *Lease) Expired() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.expired
}

// expire deletes every attached key in a single atomic commit, so a
// snapshot reader sees the component's presence vanish all at once.
// force distinguishes Revoke (always expires) from the timer path,
// which yields to a keep-alive that re-armed the lease after this
// expiry was already in flight.
func (l *Lease) expire(force bool) {
	l.mu.Lock()
	if l.expired {
		l.mu.Unlock()
		return
	}
	if !force && l.clk.Now().Before(l.deadline) {
		// Lost the race against KeepAlive: the re-armed timer owns the
		// next expiry.
		l.mu.Unlock()
		return
	}
	l.expired = true
	l.timer.Stop()
	keys := make([]string, 0, len(l.keys))
	for k := range l.keys {
		keys = append(keys, k)
	}
	// Deterministic op order: events within the expiry revision reach
	// watchers in ops order, which must not depend on map iteration.
	sort.Strings(keys)
	ops := make([]Op, 0, len(keys))
	for _, k := range keys {
		ops = append(ops, Op{Kind: OpDelete, Key: k})
	}
	cbs := l.onExpire
	l.onExpire = nil
	l.mu.Unlock()
	_, _ = l.eng.Commit(ops) // best effort: the engine may be closing
	for _, fn := range cbs {
		fn()
	}
}
