// Package store is the platform's metadata-plane engine: a sharded,
// multi-version (MVCC) key-value store that the mongo and etcd
// substrates are thin facades over. The design follows the recipe of
// Faleiro & Abadi's "Rethinking serializable multiversion concurrency
// control": separate the *ordering* of writes from their *execution* so
// the store scales with cores instead of serializing on one lock.
//
//   - Keys are hash-sharded; every shard has its own lock, so writers to
//     different shards never contend.
//   - A global revision is assigned per write by a lock-free ring "gate"
//     (the disciplined ordering layer). The gate tracks the *floor*: the
//     highest revision R such that every revision <= R is installed.
//   - Reads are MVCC snapshots at the floor: Scan walks per-key version
//     chains holding only brief per-shard read locks, so list/scan never
//     blocks writers. Snapshot acquisition waits until the floor covers
//     every write that completed before the read began, which keeps
//     reads real-time-consistent with acknowledged writes.
//   - Watches are driven by per-shard apply logs merged into revision
//     order by the hub, so watchers observe a single serial history.
//   - Version chains are bounded (HistoryLimit) and Compact discards
//     history below a revision, like etcd's compaction.
//
// The engine has two revision modes. In the default internal mode it
// assigns revisions itself. In ExternalRevs mode the caller supplies
// revisions (a replicated-log apply loop — the etcd facade feeds it raft
// indexes), and the engine is a deterministic state machine.
package store

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Common errors.
var (
	// ErrClosed indicates the engine has been shut down.
	ErrClosed = errors.New("store: engine closed")
	// ErrExists indicates Insert found a live value under the key.
	ErrExists = errors.New("store: key exists")
	// ErrCompacted indicates the requested revision predates compaction.
	ErrCompacted = errors.New("store: revision compacted")
	// ErrExternalRevs indicates an internal-revision operation was called
	// on an engine in ExternalRevs mode (or vice versa).
	ErrExternalRevs = errors.New("store: wrong revision mode")
)

// Defaults completed by NewEngine.
const (
	// DefaultShards is the shard count when Config.Shards is zero.
	DefaultShards = 16
	// DefaultHistoryLimit bounds the per-key version chain.
	DefaultHistoryLimit = 32
)

// EventType distinguishes watch events.
type EventType int

// Watch event kinds.
const (
	EventPut EventType = iota + 1
	EventDelete
)

// Event is one change in the store's serial history.
type Event struct {
	Type  EventType
	Key   string
	Value any
	Rev   uint64
}

// EventKey implements Keyed for the watch hub.
func (e Event) EventKey() string { return e.Key }

// EventRev implements Keyed for the watch hub.
func (e Event) EventRev() uint64 { return e.Rev }

// KV is a key with its value and last-modification revision.
type KV struct {
	Key   string
	Value any
	Rev   uint64
}

// OpKind enumerates mutations accepted by Commit/ApplyAt.
type OpKind int

// Mutation kinds.
const (
	OpPut OpKind = iota + 1
	OpDelete
)

// Op is one mutation in a multi-key commit.
type Op struct {
	Kind  OpKind
	Key   string
	Value any
}

// Action is what an Update callback decides to do with the key.
type Action int

// Update actions.
const (
	// ActSkip leaves the key untouched (no event, no new version).
	ActSkip Action = iota
	// ActWrite installs the returned value as a new version.
	ActWrite
	// ActDelete writes a tombstone (no-op when the key is absent).
	ActDelete
)

// Config parameterizes an Engine. The zero value gets defaults.
type Config struct {
	// Shards is the number of hash shards (default DefaultShards).
	Shards int
	// HistoryLimit bounds each key's retained version chain (default
	// DefaultHistoryLimit). Older versions are trimmed opportunistically.
	HistoryLimit int
	// ExternalRevs switches the engine to replicated-log mode: the
	// caller supplies monotone revisions via ApplyAt, and internal-mode
	// operations (Put, Update, Commit, Watch, leases) are rejected.
	ExternalRevs bool
}

// version is one entry in a key's MVCC chain.
type version struct {
	rev  uint64
	val  any
	tomb bool
}

// history is a key's version chain, ascending by revision.
type history struct {
	versions []version
}

// at returns the live value visible at rev.
func (h *history) at(rev uint64) (any, uint64, bool) {
	for i := len(h.versions) - 1; i >= 0; i-- {
		v := h.versions[i]
		if v.rev > rev {
			continue
		}
		if v.tomb {
			return nil, 0, false
		}
		return v.val, v.rev, true
	}
	return nil, 0, false
}

// latest returns the newest installed value (tombstones read as absent).
func (h *history) latest() (any, uint64, bool) {
	if len(h.versions) == 0 {
		return nil, 0, false
	}
	v := h.versions[len(h.versions)-1]
	if v.tomb {
		return nil, 0, false
	}
	return v.val, v.rev, true
}

// shard owns a hash slice of the keyspace.
type shard struct {
	idx  int
	mu   sync.RWMutex
	keys map[string]*history
	// log is the shard's apply log: events appended by writers under mu,
	// drained (merged into revision order across shards) by the hub.
	log []Event
}

// instrumentation is the optional metrics hookup, installed atomically
// so commit paths can check it without a lock.
type instrumentation struct {
	reg         *metrics.Registry
	name        string
	shardLabels []string
}

// Engine is the sharded MVCC store.
type Engine struct {
	shards   []*shard
	hist     int
	external bool

	gate *gate       // internal mode: revision ordering layer
	hub  *Hub[Event] // internal mode: watch dispatch

	extFloor  atomic.Uint64 // external mode: last applied revision
	compacted atomic.Uint64
	// truncated is the highest revision dropped from a version chain by
	// per-key history trimming or snapshot import; together with the
	// compaction floor it bounds how far back WatchFrom can backfill.
	truncated atomic.Uint64
	closed    atomic.Bool

	instr atomic.Pointer[instrumentation]

	// Applied-floor waiters (WaitApplied). hasWaiters lets the floor-raise
	// hot paths skip the lock when nobody is waiting.
	waitMu     sync.Mutex
	waiters    []floorWaiter
	hasWaiters atomic.Bool

	drainWake chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
}

// floorWaiter is one WaitApplied registration: ch closes when the
// applied floor reaches rev.
type floorWaiter struct {
	rev uint64
	ch  chan struct{}
}

// install appends a version to key's chain in sh, bounding its length
// and accounting any dropped history against the truncation floor.
// Callers hold sh.mu.
func (e *Engine) install(sh *shard, key string, v version) {
	h := sh.keys[key]
	if h == nil {
		h = &history{}
		sh.keys[key] = h
	}
	if n := len(h.versions); n > 0 && h.versions[n-1].rev == v.rev {
		// Same-revision rewrite (multi-op commit touching one key twice):
		// the later op wins within the revision.
		h.versions[n-1] = v
		return
	}
	h.versions = append(h.versions, v)
	if drop := len(h.versions) - e.hist; drop > 0 {
		raiseMax(&e.truncated, h.versions[drop-1].rev)
		h.versions = h.versions[drop:]
		e.countDrops(drop)
	}
	if in := e.instr.Load(); in != nil {
		in.reg.Inc("store_shard_commits", in.name, in.shardLabels[sh.idx])
	}
}

// countDrops accumulates versions discarded from history (trimming or
// compaction) into the drop counter.
func (e *Engine) countDrops(n int) {
	if in := e.instr.Load(); in != nil && n > 0 {
		in.reg.Add("store_history_drops", float64(n), in.name)
	}
}

// raiseMax lifts a to at least v.
func raiseMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// NewEngine builds an engine from cfg (zero fields take defaults).
func NewEngine(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = DefaultHistoryLimit
	}
	e := &Engine{
		shards:   make([]*shard, cfg.Shards),
		hist:     cfg.HistoryLimit,
		external: cfg.ExternalRevs,
	}
	for i := range e.shards {
		e.shards[i] = &shard{idx: i, keys: make(map[string]*history)}
	}
	if !e.external {
		e.gate = newGate()
		e.hub = NewHub[Event]()
		e.drainWake = make(chan struct{}, 1)
		e.stop = make(chan struct{})
		go e.drainLoop()
	}
	return e
}

// Close shuts the engine down. Watchers stop receiving events; further
// writes fail with ErrClosed.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	if !e.external {
		e.stopOnce.Do(func() { close(e.stop) })
		e.hub.Close()
	}
}

// Shards reports the configured shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Instrument publishes the engine's operational metrics into reg under
// the given name label: per-shard commit counts, snapshot floor lag,
// history-drop counts, and (internal mode) the watch hub's queue depth.
// Call once, before the engine starts serving traffic.
func (e *Engine) Instrument(reg *metrics.Registry, name string) {
	if reg == nil {
		return
	}
	in := &instrumentation{reg: reg, name: name, shardLabels: make([]string, len(e.shards))}
	for i := range e.shards {
		in.shardLabels[i] = fmt.Sprintf("shard-%d", i)
	}
	e.instr.Store(in)
	if e.hub != nil {
		e.hub.Instrument(reg, name)
	}
}

// Hash32 is the FNV-1a string hash used for shard and stripe selection
// across the metadata plane.
func Hash32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// shardFor hashes key to its owning shard.
func (e *Engine) shardFor(key string) *shard {
	return e.shards[Hash32(key)%uint32(len(e.shards))]
}

func (e *Engine) writableInternal() error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.external {
		return fmt.Errorf("%w: internal-revision op on ExternalRevs engine", ErrExternalRevs)
	}
	return nil
}

// finish retires rev in the gate and wakes the hub drain when the floor
// moved (newly contiguous history may be deliverable to watchers).
func (e *Engine) finish(rev uint64) {
	if e.gate.end(rev) {
		select {
		case e.drainWake <- struct{}{}:
		default:
		}
		e.notifyApplied()
	}
}

// appliedFloor is the highest revision R such that every revision <= R
// is installed: the gate floor in internal mode, the external floor in
// replicated-log mode.
func (e *Engine) appliedFloor() uint64 {
	if e.external {
		return e.extFloor.Load()
	}
	return e.gate.floorNow()
}

// WaitApplied returns a channel that closes once the applied floor
// reaches rev (already closed when it has), plus a cancel that
// deregisters the waiter — a caller that gives up (deadline, engine
// swapped by a snapshot restore) must cancel or its entry lingers on
// the waiter list until the floor eventually passes rev. It is the
// event-driven twin of AdvanceFloor: a read-index read waits on it for
// the local state machine to catch up to the leader's confirmed index
// instead of polling the floor. The channel never closes if the engine
// stops applying; callers bound the wait and re-fetch the engine.
func (e *Engine) WaitApplied(rev uint64) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	e.waitMu.Lock()
	// Publish hasWaiters BEFORE the floor check: a floor raise that is
	// concurrent with registration then either observes it (and takes
	// waitMu to notify, serializing after this append) or ordered its
	// raise before our check (and the check sees the new floor). Checking
	// first would let a raise slip between the check and the store,
	// skipping notifyApplied's fast path with the waiter unregistered —
	// a wakeup lost forever.
	e.hasWaiters.Store(true)
	if e.appliedFloor() >= rev {
		if len(e.waiters) == 0 {
			e.hasWaiters.Store(false)
		}
		e.waitMu.Unlock()
		close(ch)
		return ch, func() {}
	}
	e.waiters = append(e.waiters, floorWaiter{rev: rev, ch: ch})
	e.waitMu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			e.waitMu.Lock()
			for i, w := range e.waiters {
				if w.ch == ch {
					e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
					break
				}
			}
			if len(e.waiters) == 0 {
				e.hasWaiters.Store(false)
			}
			e.waitMu.Unlock()
		})
	}
	return ch, cancel
}

// notifyApplied releases WaitApplied registrations the floor has
// reached. Floor-raise paths call it after raiseMax; the atomic check
// keeps the no-waiter case lock-free.
func (e *Engine) notifyApplied() {
	if !e.hasWaiters.Load() {
		return
	}
	e.waitMu.Lock()
	floor := e.appliedFloor()
	keep := e.waiters[:0]
	for _, w := range e.waiters {
		if w.rev <= floor {
			close(w.ch)
		} else {
			keep = append(keep, w)
		}
	}
	e.waiters = keep
	if len(keep) == 0 {
		e.hasWaiters.Store(false)
	}
	e.waitMu.Unlock()
}

// Put installs value under key at a fresh revision.
//
// Revisions are assigned while holding the shard lock (here and in
// Update/Commit): lock order and revision order then agree within a
// shard, so every key's version chain and every shard's apply log stay
// revision-ascending. Assigning before locking would let two writers to
// one key install out of order and corrupt the chain.
func (e *Engine) Put(key string, value any) (uint64, error) {
	if err := e.writableInternal(); err != nil {
		return 0, err
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	rev := e.gate.begin()
	e.install(sh, key, version{rev: rev, val: value})
	sh.log = append(sh.log, Event{Type: EventPut, Key: key, Value: value, Rev: rev})
	sh.mu.Unlock()
	e.finish(rev)
	return rev, nil
}

// Insert installs value only if the key has no live value.
func (e *Engine) Insert(key string, value any) (uint64, error) {
	rev, _, err := e.Update(key, func(_ any, exists bool) (any, Action, error) {
		if exists {
			return nil, ActSkip, ErrExists
		}
		return value, ActWrite, nil
	})
	return rev, err
}

// Delete writes a tombstone for key. It reports whether a live value was
// removed; deleting an absent key is not an error.
func (e *Engine) Delete(key string) (uint64, bool, error) {
	return e.DeleteIf(key, nil)
}

// DeleteIf deletes key only when pred accepts the current value (nil
// pred always accepts). Returns whether the delete happened.
func (e *Engine) DeleteIf(key string, pred func(cur any) bool) (uint64, bool, error) {
	rev, wrote, err := e.Update(key, func(cur any, exists bool) (any, Action, error) {
		if !exists || (pred != nil && !pred(cur)) {
			return nil, ActSkip, nil
		}
		return nil, ActDelete, nil
	})
	return rev, wrote, err
}

// Update runs fn for key under its shard's write lock — the per-key
// atomic read-modify-write primitive. fn sees the current live value
// (nil, false when absent) and decides the action. The value handed to
// fn aliases stored state: callers must copy before mutating. Returns
// the commit revision and whether a version was written; fn's error
// aborts with nothing written.
func (e *Engine) Update(key string, fn func(cur any, exists bool) (any, Action, error)) (uint64, bool, error) {
	if err := e.writableInternal(); err != nil {
		return 0, false, err
	}
	sh := e.shardFor(key)
	var rev uint64
	var wrote bool
	sh.mu.Lock()
	var cur any
	var exists bool
	if h := sh.keys[key]; h != nil {
		cur, _, exists = h.latest()
	}
	nv, act, err := fn(cur, exists)
	if err == nil {
		// The revision is allocated only when a version is actually
		// written, after fn returns — a skipped or aborted update never
		// holds a pending revision, so it cannot stall the floor.
		switch act {
		case ActWrite:
			rev = e.gate.begin()
			e.install(sh, key, version{rev: rev, val: nv})
			sh.log = append(sh.log, Event{Type: EventPut, Key: key, Value: nv, Rev: rev})
			wrote = true
		case ActDelete:
			if exists {
				rev = e.gate.begin()
				e.install(sh, key, version{rev: rev, tomb: true})
				sh.log = append(sh.log, Event{Type: EventDelete, Key: key, Rev: rev})
				wrote = true
			}
		}
	}
	sh.mu.Unlock()
	if wrote {
		e.finish(rev)
	}
	if err != nil {
		return 0, false, err
	}
	if !wrote {
		return 0, false, nil
	}
	return rev, true, nil
}

// Commit applies ops atomically across shards at one revision: the
// involved shards are locked in index order, so a snapshot reader sees
// all of the commit or none of it.
func (e *Engine) Commit(ops []Op) (uint64, error) {
	if err := e.writableInternal(); err != nil {
		return 0, err
	}
	if len(ops) == 0 {
		return 0, nil
	}
	// Lock the involved shards in index order (deadlock-free).
	involved := make(map[*shard]bool, len(ops))
	for _, op := range ops {
		involved[e.shardFor(op.Key)] = true
	}
	locked := make([]*shard, 0, len(involved))
	for _, sh := range e.shards {
		if involved[sh] {
			locked = append(locked, sh)
		}
	}
	for _, sh := range locked {
		sh.mu.Lock() //lint:allow lockdiscipline every locked shard is released below in reverse index order via locked[i].mu.Unlock()
	}
	rev := e.gate.begin()
	for _, op := range ops {
		sh := e.shardFor(op.Key)
		switch op.Kind {
		case OpPut:
			e.install(sh, op.Key, version{rev: rev, val: op.Value})
			sh.log = append(sh.log, Event{Type: EventPut, Key: op.Key, Value: op.Value, Rev: rev})
		case OpDelete:
			var exists bool
			if h := sh.keys[op.Key]; h != nil {
				_, _, exists = h.latest()
			}
			if exists {
				e.install(sh, op.Key, version{rev: rev, tomb: true})
				sh.log = append(sh.log, Event{Type: EventDelete, Key: op.Key, Rev: rev})
			}
		}
	}
	for i := len(locked) - 1; i >= 0; i-- {
		locked[i].mu.Unlock()
	}
	e.finish(rev)
	return rev, nil
}

// Get returns key's latest committed value. Single-key reads are
// linearizable: installed versions are durable before their writer is
// acknowledged, and there are no aborts.
func (e *Engine) Get(key string) (any, uint64, bool) {
	sh := e.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if h := sh.keys[key]; h != nil {
		return h.latest()
	}
	return nil, 0, false
}

// GetAt returns the live value visible for key at rev — the point-read
// companion of ScanAt, used to evaluate multi-key guards against one
// consistent snapshot revision. It fails with ErrCompacted when rev
// predates the compaction floor.
func (e *Engine) GetAt(key string, rev uint64) (any, uint64, bool, error) {
	if rev < e.compacted.Load() {
		return nil, 0, false, fmt.Errorf("%w: rev %d < compaction floor %d", ErrCompacted, rev, e.compacted.Load())
	}
	sh := e.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if h := sh.keys[key]; h != nil {
		v, vr, ok := h.at(rev)
		return v, vr, ok, nil
	}
	return nil, 0, false, nil
}

// Snapshot returns a revision safe for consistent multi-key reads: every
// write acknowledged before the call is visible at it. It waits (without
// blocking writers) for the floor to cover completed revisions.
func (e *Engine) Snapshot() uint64 {
	if e.external {
		return e.extFloor.Load()
	}
	target := e.gate.maxDone.Load()
	if in := e.instr.Load(); in != nil {
		// Floor lag: how far visibility trails the newest retired write
		// at the moment a snapshot is requested. The floor may already
		// have passed the target snapshot taken above; clamp at zero.
		lag := float64(0)
		if floor := e.gate.floorNow(); target > floor {
			lag = float64(target - floor)
		}
		in.reg.SetGauge("store_floor_lag", lag, in.name)
	}
	e.gate.waitFloor(target)
	return e.gate.floorNow()
}

// ScanAt returns the live keys under prefix as of rev, sorted by key.
// Only brief per-shard read locks are held: scans never block writers.
func (e *Engine) ScanAt(prefix string, rev uint64) ([]KV, error) {
	if rev < e.compacted.Load() {
		return nil, fmt.Errorf("%w: rev %d < compaction floor %d", ErrCompacted, rev, e.compacted.Load())
	}
	var out []KV
	for _, sh := range e.shards {
		sh.mu.RLock()
		for k, h := range sh.keys {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			if v, vr, ok := h.at(rev); ok {
				out = append(out, KV{Key: k, Value: v, Rev: vr})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Scan is ScanAt at a fresh Snapshot revision.
func (e *Engine) Scan(prefix string) ([]KV, uint64, error) {
	rev := e.Snapshot()
	kvs, err := e.ScanAt(prefix, rev)
	return kvs, rev, err
}

// ScanLatest returns each live key under prefix at its newest installed
// version, sorted by key. Unlike Scan it is not a point-in-time
// snapshot; it is the read-your-writes path for per-key bookkeeping
// (unique-index checks) and the deterministic range read in ExternalRevs
// mode, where the apply loop is single-threaded.
func (e *Engine) ScanLatest(prefix string) []KV {
	var out []KV
	for _, sh := range e.shards {
		sh.mu.RLock()
		for k, h := range sh.keys {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			if v, vr, ok := h.latest(); ok {
				out = append(out, KV{Key: k, Value: v, Rev: vr})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Compact discards version history below rev: each key keeps its newest
// version at or below rev (its base for reads >= rev) plus everything
// newer. Keys whose base is a tombstone with nothing newer are removed
// entirely. Reads below rev fail with ErrCompacted afterwards.
func (e *Engine) Compact(rev uint64) {
	for {
		cur := e.compacted.Load()
		if rev <= cur {
			return
		}
		if e.compacted.CompareAndSwap(cur, rev) {
			break
		}
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		for k, h := range sh.keys {
			// Find the base: newest version with rev' <= rev.
			base := -1
			for i, v := range h.versions {
				if v.rev <= rev {
					base = i
				} else {
					break
				}
			}
			if base < 0 {
				continue
			}
			if base == len(h.versions)-1 && h.versions[base].tomb {
				e.countDrops(len(h.versions))
				delete(sh.keys, k)
				continue
			}
			e.countDrops(base)
			h.versions = append([]version(nil), h.versions[base:]...)
		}
		sh.mu.Unlock()
	}
}

// CompactedRev reports the current compaction floor.
func (e *Engine) CompactedRev() uint64 { return e.compacted.Load() }

// ResumeFloor is the lowest revision WatchFrom can resume from with a
// complete backfill: the highest revision dropped from version history
// by compaction, per-key chain trimming, or snapshot import.
func (e *Engine) ResumeFloor() uint64 {
	if t := e.truncated.Load(); t > e.compacted.Load() {
		return t
	}
	return e.compacted.Load()
}

// HistoryEvents reconstructs, from the bounded version history, the
// events committed in (fromRev, toRev] for keys under prefix, sorted by
// revision. It fails with ErrCompacted when fromRev predates the resume
// floor — part of the window may already have been dropped — in which
// case the consumer must fall back to a snapshot re-list.
func (e *Engine) HistoryEvents(prefix string, fromRev, toRev uint64) ([]Event, error) {
	check := func() error {
		if f := e.ResumeFloor(); fromRev < f {
			return fmt.Errorf("%w: resume from %d predates history floor %d", ErrCompacted, fromRev, f)
		}
		return nil
	}
	if err := check(); err != nil {
		return nil, err
	}
	var out []Event
	for _, sh := range e.shards {
		sh.mu.RLock()
		for k, h := range sh.keys {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			for _, v := range h.versions {
				if v.rev <= fromRev || v.rev > toRev {
					continue
				}
				if v.tomb {
					out = append(out, Event{Type: EventDelete, Key: k, Rev: v.rev})
				} else {
					out = append(out, Event{Type: EventPut, Key: k, Value: v.val, Rev: v.rev})
				}
			}
		}
		sh.mu.RUnlock()
	}
	// A trim racing the scan may have dropped versions inside the window
	// after their shard was read; re-check so the backfill is known
	// complete, or the caller knows it is not.
	if err := check(); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rev < out[j].Rev })
	return out, nil
}

// Watch subscribes to changes of keys under prefix, delivered in strict
// revision order. Events begin after the current delivered revision.
// Only available in internal-revision mode (external callers own their
// replicated delivery and should use a Hub directly).
func (e *Engine) Watch(prefix string) (<-chan Event, func(), error) {
	if e.external {
		return nil, nil, fmt.Errorf("%w: Watch on ExternalRevs engine", ErrExternalRevs)
	}
	if e.closed.Load() {
		return nil, nil, ErrClosed
	}
	// Sync the hub to the floor first so the "no replay of acknowledged
	// writes" contract holds: the delivered cursor otherwise lags the
	// floor until the asynchronous drain runs.
	e.drainOnce()
	ch, cancel := e.hub.Watch(prefix)
	return ch, cancel, nil
}

// WatchWithLease is Watch with the subscription's lifetime bound to a
// lease: when the lease expires (its owner died without a keep-alive)
// or is revoked, the watcher is cancelled and its hub cursor reclaimed,
// so dead watchers cannot pile up in the dispatch fan-out. A lease that
// already expired fails with ErrLeaseExpired — the caller must
// re-establish its liveness before subscribing, rather than receive a
// born-dead channel. The returned cancel stays valid — and idempotent —
// for orderly shutdown.
func (e *Engine) WatchWithLease(prefix string, l *Lease) (<-chan Event, func(), error) {
	if l.Expired() {
		return nil, nil, fmt.Errorf("watch %q: %w", prefix, ErrLeaseExpired)
	}
	ch, cancel, err := e.Watch(prefix)
	if err != nil {
		return nil, nil, err
	}
	// An expiry that lands between the check above and this registration
	// cancels synchronously here — indistinguishable from one a tick
	// after a successful call, which is the contract anyway.
	l.OnExpire(cancel)
	return ch, cancel, nil
}

// WatcherCount reports the number of live watch subscriptions on the
// engine's hub (zero in ExternalRevs mode) — the observable behind the
// lease-reclamation regression tests.
func (e *Engine) WatcherCount() int {
	if e.hub == nil {
		return 0
	}
	return e.hub.Watchers()
}

// WatchFrom subscribes to changes of keys under prefix starting after
// startRev: every event with revision > startRev is delivered exactly
// once, in strict revision order — events committed before the call are
// backfilled from version history, then the stream continues live. When
// startRev predates the resume floor (compaction or chain trimming
// dropped part of the window) it fails with ErrCompacted and the
// consumer must re-list and watch from the present instead.
func (e *Engine) WatchFrom(prefix string, startRev uint64) (<-chan Event, func(), error) {
	if e.external {
		return nil, nil, fmt.Errorf("%w: WatchFrom on ExternalRevs engine", ErrExternalRevs)
	}
	if e.closed.Load() {
		return nil, nil, ErrClosed
	}
	// Sync the hub to the current floor first: its delivered cursor
	// otherwise lags acknowledged writes (the drain is asynchronous), and
	// the backfill/live boundary must sit at a known revision.
	e.drainOnce()
	ch, cancel, cursor := e.hub.WatchCursor(prefix)
	if startRev == cursor {
		return ch, cancel, nil
	}
	var backfill []Event
	if startRev < cursor {
		var err error
		backfill, err = e.HistoryEvents(prefix, startRev, cursor)
		if err != nil {
			cancel()
			return nil, nil, err
		}
	}
	// The splice's floor filter suppresses live events at or below
	// startRev when resuming from the future (startRev > cursor); in the
	// backfill case live events are all > cursor already.
	after := cursor
	if startRev > cursor {
		after = startRev
	}
	out, stopSplice := SpliceEvents(backfill, ch, after, e.stop)
	var once sync.Once
	return out, func() { once.Do(func() { stopSplice(); cancel() }) }, nil
}

// drainLoop merges per-shard apply logs into revision order and hands
// them to the hub whenever the floor advances.
func (e *Engine) drainLoop() {
	for {
		select {
		case <-e.stop:
			return
		case <-e.drainWake:
			e.drainOnce()
		}
	}
}

// drainOnce delivers every undelivered event at or below the floor. The
// per-shard logs may hold events out of revision order (writers append
// in lock-acquisition order); the merge sorts them into the single
// serial history watchers observe.
func (e *Engine) drainOnce() {
	floor := e.gate.floorNow()
	e.hub.Sync(func(delivered uint64) (uint64, []Event) {
		if floor <= delivered {
			return delivered, nil
		}
		var batch []Event
		for _, sh := range e.shards {
			sh.mu.Lock()
			keep := sh.log[:0]
			for _, ev := range sh.log {
				if ev.Rev <= floor {
					batch = append(batch, ev)
				} else {
					keep = append(keep, ev)
				}
			}
			sh.log = keep
			sh.mu.Unlock()
		}
		// Canonical (revision, key) order: events of one multi-key
		// commit (a lease expiry, a txn) reach watchers in the same
		// sequence on every run and every shard layout — sort.Slice is
		// unstable, so ordering by Rev alone would let same-revision
		// events land in shard-traversal order.
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].Rev != batch[j].Rev {
				return batch[i].Rev < batch[j].Rev
			}
			return batch[i].Key < batch[j].Key
		})
		return floor, batch
	})
}

// ApplyAt installs ops at the caller-supplied revision (ExternalRevs
// mode). The caller must apply revisions in increasing order from a
// single goroutine — a replicated log's apply loop. The resulting events
// are returned for the caller's own delivery layer.
func (e *Engine) ApplyAt(rev uint64, ops []Op) ([]Event, error) {
	if !e.external {
		return nil, fmt.Errorf("%w: ApplyAt on internal-revision engine", ErrExternalRevs)
	}
	var events []Event
	for _, op := range ops {
		sh := e.shardFor(op.Key)
		sh.mu.Lock()
		switch op.Kind {
		case OpPut:
			e.install(sh, op.Key, version{rev: rev, val: op.Value})
			events = append(events, Event{Type: EventPut, Key: op.Key, Value: op.Value, Rev: rev})
		case OpDelete:
			var exists bool
			if h := sh.keys[op.Key]; h != nil {
				_, _, exists = h.latest()
			}
			if exists {
				e.install(sh, op.Key, version{rev: rev, tomb: true})
				events = append(events, Event{Type: EventDelete, Key: op.Key, Rev: rev})
			}
		}
		sh.mu.Unlock()
	}
	raiseMax(&e.extFloor, rev)
	e.notifyApplied()
	return events, nil
}

// AdvanceFloor raises the applied floor to rev without mutating state.
// The external apply loop calls it for entries that carry no writes
// (reads, no-ops), so the floor tracks every applied index — consumers
// comparing the floor against a delivery cursor (WatchFrom backfill)
// would otherwise see a replica perpetually "behind" after a read.
func (e *Engine) AdvanceFloor(rev uint64) error {
	if !e.external {
		return fmt.Errorf("%w: AdvanceFloor on internal-revision engine", ErrExternalRevs)
	}
	raiseMax(&e.extFloor, rev)
	e.notifyApplied()
	return nil
}

// Export returns every live key at its latest version, sorted by key —
// the state-machine image for replicated-log snapshots.
func (e *Engine) Export() []KV {
	return e.ScanLatest("")
}

// Import replaces the engine's contents with kvs, installing each at its
// recorded revision, and advances the floor to the highest of them (or
// floorAtLeast if greater). Used to restore from a snapshot image. Only
// ExternalRevs engines can import: an internal engine's gate assigns
// dense revisions from 1 and cannot adopt arbitrary ones.
func (e *Engine) Import(kvs []KV, floorAtLeast uint64) error {
	if !e.external {
		return fmt.Errorf("%w: Import on internal-revision engine", ErrExternalRevs)
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.keys = make(map[string]*history)
		sh.log = nil
		sh.mu.Unlock()
	}
	floor := floorAtLeast
	for _, kv := range kvs {
		sh := e.shardFor(kv.Key)
		sh.mu.Lock()
		e.install(sh, kv.Key, version{rev: kv.Rev, val: kv.Value})
		sh.mu.Unlock()
		if kv.Rev > floor {
			floor = kv.Rev
		}
	}
	if floor > e.extFloor.Load() {
		e.extFloor.Store(floor)
	}
	// The image carries only each key's latest version: everything below
	// the restored floor is unavailable for backfill, so resumers older
	// than it must re-list.
	raiseMax(&e.truncated, floor)
	e.notifyApplied()
	return nil
}

// gate is the ordering layer: it assigns dense revisions and tracks the
// floor — the highest revision R with every revision <= R installed —
// via a fixed ring of per-revision state slots, so writers to different
// shards coordinate only through a few atomic words plus a short
// advance-critical-section instead of a store-wide mutex.
type gate struct {
	next    atomic.Uint64
	floor   atomic.Uint64
	maxDone atomic.Uint64 // highest retired revision (visibility target)

	slots     []atomic.Uint32 // 0 free, 1 pending, 2 done
	mask      uint64
	advanceMu sync.Mutex
}

// gateRing is the in-flight revision window. Writers beyond it spin in
// begin until the floor catches up — in practice unreachable (it would
// need 16k concurrent in-flight writes).
const gateRing = 1 << 14

func newGate() *gate {
	return &gate{slots: make([]atomic.Uint32, gateRing), mask: gateRing - 1}
}

// begin assigns the next revision and marks it pending.
func (g *gate) begin() uint64 {
	r := g.next.Add(1)
	s := &g.slots[r&g.mask]
	for !s.CompareAndSwap(0, 1) {
		runtime.Gosched() // ring wrap: wait for rev r-gateRing to retire
	}
	return r
}

// end retires rev and advances the floor over the contiguous done
// prefix. Reports whether the floor moved.
func (g *gate) end(rev uint64) bool {
	g.slots[rev&g.mask].Store(2)
	for {
		m := g.maxDone.Load()
		if rev <= m || g.maxDone.CompareAndSwap(m, rev) {
			break
		}
	}
	g.advanceMu.Lock()
	f := g.floor.Load()
	start := f
	for {
		s := &g.slots[(f+1)&g.mask]
		if s.Load() != 2 {
			break
		}
		s.Store(0)
		f++
	}
	if f != start {
		g.floor.Store(f)
	}
	g.advanceMu.Unlock()
	return f != start
}

// floorNow loads the floor.
func (g *gate) floorNow() uint64 { return g.floor.Load() }

// waitFloor spins until the floor reaches target. Progress is guaranteed
// because every begun revision is retired on all paths.
func (g *gate) waitFloor(target uint64) {
	for g.floor.Load() < target {
		runtime.Gosched()
	}
}
