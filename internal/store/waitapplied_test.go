package store

import (
	"testing"
	"time"
)

// TestWaitAppliedExternal: the channel closes when the external floor
// reaches the awaited revision — via ApplyAt (a write) or AdvanceFloor
// (a read-only applied index) — and is pre-closed when already there.
func TestWaitAppliedExternal(t *testing.T) {
	e := NewEngine(Config{ExternalRevs: true})
	defer e.Close()

	if _, err := e.ApplyAt(1, []Op{{Kind: OpPut, Key: "a", Value: "1"}}); err != nil {
		t.Fatal(err)
	}
	pre, _ := e.WaitApplied(1)
	select {
	case <-pre:
	default:
		t.Fatal("WaitApplied(1) not pre-closed at floor 1")
	}

	ch3, _ := e.WaitApplied(3)
	select {
	case <-ch3:
		t.Fatal("WaitApplied(3) closed at floor 1")
	default:
	}
	if _, err := e.ApplyAt(2, []Op{{Kind: OpPut, Key: "b", Value: "2"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch3:
		t.Fatal("WaitApplied(3) closed at floor 2")
	default:
	}
	// A revision that carries no write still advances the floor.
	if err := e.AdvanceFloor(3); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch3:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied(3) never closed after AdvanceFloor(3)")
	}
}

// TestWaitAppliedImport: restoring a snapshot image raises the floor to
// at least the snapshot index, releasing waiters whose target the image
// covers — even when the image's highest key revision is older (the
// trailing log entries were deletes or reads).
func TestWaitAppliedImport(t *testing.T) {
	e := NewEngine(Config{ExternalRevs: true})
	defer e.Close()
	ch, _ := e.WaitApplied(10)
	if err := e.Import([]KV{{Key: "a", Value: "x", Rev: 4}}, 10); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied(10) never closed after Import with floorAtLeast 10")
	}
	if got := e.Snapshot(); got != 10 {
		t.Fatalf("floor after import = %d, want 10", got)
	}
}

// TestWaitAppliedInternal: the internal-mode gate floor drives the same
// channel.
func TestWaitAppliedInternal(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	rev, err := e.Put("k", "v")
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := e.WaitApplied(rev + 1)
	select {
	case <-ch:
		t.Fatalf("WaitApplied(%d) closed at floor %d", rev+1, rev)
	default:
	}
	if _, err := e.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("internal-mode WaitApplied never closed")
	}
}

// TestWaitAppliedCancel: a deregistered waiter leaves the list (no
// accumulation on a lagging replica) and a later floor advance neither
// closes its channel nor panics on a double cancel.
func TestWaitAppliedCancel(t *testing.T) {
	e := NewEngine(Config{ExternalRevs: true})
	defer e.Close()
	abandoned, cancel := e.WaitApplied(5)
	kept, _ := e.WaitApplied(5)
	cancel()
	cancel() // idempotent
	if err := e.AdvanceFloor(5); err != nil {
		t.Fatal(err)
	}
	select {
	case <-kept:
	case <-time.After(5 * time.Second):
		t.Fatal("surviving waiter never released")
	}
	select {
	case <-abandoned:
		t.Fatal("cancelled waiter's channel closed")
	default:
	}
}

// TestGetAt: point reads at a revision see the version chain's state at
// that cut — including tombstones — and reject compacted revisions.
func TestGetAt(t *testing.T) {
	e := NewEngine(Config{ExternalRevs: true})
	defer e.Close()
	mut := func(rev uint64, ops ...Op) {
		t.Helper()
		if _, err := e.ApplyAt(rev, ops); err != nil {
			t.Fatal(err)
		}
	}
	mut(1, Op{Kind: OpPut, Key: "k", Value: "v1"})
	mut(2, Op{Kind: OpPut, Key: "k", Value: "v2"})
	mut(3, Op{Kind: OpDelete, Key: "k"})
	mut(4, Op{Kind: OpPut, Key: "k", Value: "v4"})

	for _, tc := range []struct {
		rev    uint64
		want   string
		exists bool
	}{
		{1, "v1", true}, {2, "v2", true}, {3, "", false}, {4, "v4", true},
	} {
		v, _, ok, err := e.GetAt("k", tc.rev)
		if err != nil {
			t.Fatalf("GetAt(k,%d): %v", tc.rev, err)
		}
		if ok != tc.exists || (ok && v.(string) != tc.want) {
			t.Fatalf("GetAt(k,%d) = (%v,%v), want (%q,%v)", tc.rev, v, ok, tc.want, tc.exists)
		}
	}
	if _, _, ok, err := e.GetAt("absent", 4); err != nil || ok {
		t.Fatalf("GetAt(absent) = (%v,%v), want miss", ok, err)
	}
}

// TestGetAtCompacted uses internal mode (Compact is an internal-mode
// maintenance call in practice) to pin the ErrCompacted contract.
func TestGetAtCompacted(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	r1, _ := e.Put("k", "v1")
	r2, _ := e.Put("k", "v2")
	e.Compact(r2)
	if _, _, _, err := e.GetAt("k", r1); err == nil {
		t.Fatal("GetAt below the compaction floor succeeded")
	}
	v, _, ok, err := e.GetAt("k", r2)
	if err != nil || !ok || v.(string) != "v2" {
		t.Fatalf("GetAt at floor = (%v,%v,%v)", v, ok, err)
	}
}
