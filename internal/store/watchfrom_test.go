package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestWatchFromBackfillsHistory: a watcher resuming from a past revision
// receives every later event — the ones committed before the call
// backfilled from version history, then the live stream — in strict
// revision order with no duplicates.
func TestWatchFromBackfillsHistory(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()

	var revs []uint64
	for i := 0; i < 6; i++ {
		rev, err := e.Put(fmt.Sprintf("/jobs/j%d/status", i), i)
		if err != nil {
			t.Fatal(err)
		}
		revs = append(revs, rev)
	}
	if _, _, err := e.Delete("/jobs/j0/status"); err != nil {
		t.Fatal(err)
	}

	// Resume after the third write: expect writes 4..6 and the delete
	// from history, then live events.
	ch, cancel, err := e.WatchFrom("/jobs/", revs[2])
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	last := revs[2]
	for i := 0; i < 3; i++ {
		ev := recvStoreEvent(t, ch)
		if ev.Type != EventPut || ev.Rev != revs[3+i] {
			t.Fatalf("backfill event %d = %+v, want PUT at rev %d", i, ev, revs[3+i])
		}
		if ev.Rev <= last {
			t.Fatalf("revision order violated: %d after %d", ev.Rev, last)
		}
		last = ev.Rev
	}
	del := recvStoreEvent(t, ch)
	if del.Type != EventDelete || del.Key != "/jobs/j0/status" || del.Rev <= last {
		t.Fatalf("delete event = %+v", del)
	}

	// The stream continues live after the backfill.
	liveRev, err := e.Put("/jobs/j9/status", "live")
	if err != nil {
		t.Fatal(err)
	}
	live := recvStoreEvent(t, ch)
	if live.Rev != liveRev || live.Key != "/jobs/j9/status" {
		t.Fatalf("live event = %+v, want rev %d", live, liveRev)
	}
}

// TestWatchFromZeroFiltersPrefix: resuming from 0 on a fresh engine
// replays only the watched prefix.
func TestWatchFromZeroFiltersPrefix(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	if _, err := e.Put("/a/k", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Put("/b/k", 2); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := e.WatchFrom("/a/", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	ev := recvStoreEvent(t, ch)
	if ev.Key != "/a/k" {
		t.Fatalf("event key = %q, want /a/k", ev.Key)
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected event %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestWatchFromCompactedFailsTyped: resuming from below the compaction
// floor fails with ErrCompacted, the signal to fall back to a re-list.
func TestWatchFromCompactedFailsTyped(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	var mid uint64
	for i := 0; i < 10; i++ {
		rev, err := e.Put("/k", i)
		if err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			mid = rev
		}
	}
	e.Compact(mid + 2)
	if _, _, err := e.WatchFrom("/", mid); !errors.Is(err, ErrCompacted) {
		t.Fatalf("WatchFrom below compaction = %v, want ErrCompacted", err)
	}
	// At or above the floor resumes fine.
	ch, cancel, err := e.WatchFrom("/", mid+2)
	if err != nil {
		t.Fatalf("WatchFrom at floor: %v", err)
	}
	cancel()
	_ = ch
}

// TestWatchFromTrimmedChainFailsTyped: per-key history trimming (a hot
// key overflowing HistoryLimit) also raises the resume floor — a resumer
// whose window lost versions must not get a silently incomplete
// backfill.
func TestWatchFromTrimmedChainFailsTyped(t *testing.T) {
	e := NewEngine(Config{HistoryLimit: 4})
	defer e.Close()
	first, err := e.Put("/hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if _, err := e.Put("/hot", i); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := e.WatchFrom("/", first); !errors.Is(err, ErrCompacted) {
		t.Fatalf("WatchFrom below trim floor = %v, want ErrCompacted", err)
	}
	if f := e.ResumeFloor(); f == 0 {
		t.Fatal("trimming did not raise the resume floor")
	}
}

// TestWatchFromNoGapNoDuplicate: a resumer straddling concurrent writes
// sees exactly one event per revision — the backfill/live splice point
// neither drops nor repeats.
func TestWatchFromNoGapNoDuplicate(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()

	const before, after = 20, 20
	for i := 0; i < before; i++ {
		if _, err := e.Put(fmt.Sprintf("/s/k%02d", i%5), i); err != nil {
			t.Fatal(err)
		}
	}
	cut := e.Snapshot() / 2
	ch, cancel, err := e.WatchFrom("/s/", cut)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for i := 0; i < after; i++ {
		if _, err := e.Put(fmt.Sprintf("/s/k%02d", i%5), 100+i); err != nil {
			t.Fatal(err)
		}
	}

	total := int(e.Snapshot() - cut)
	seen := make(map[uint64]bool)
	last := cut
	for i := 0; i < total; i++ {
		ev := recvStoreEvent(t, ch)
		if ev.Rev <= last {
			t.Fatalf("revision order violated: %d after %d", ev.Rev, last)
		}
		if seen[ev.Rev] {
			t.Fatalf("duplicate revision %d", ev.Rev)
		}
		seen[ev.Rev] = true
		last = ev.Rev
	}
	for r := cut + 1; r <= cut+uint64(total); r++ {
		if !seen[r] {
			t.Fatalf("revision %d never delivered", r)
		}
	}
}
