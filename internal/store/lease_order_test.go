package store

// Regression: lease expiry commits all attached deletes in one
// revision, and watchers receive the events of that revision in ops
// order — which must be sorted key order, not map order, or two
// replays of one seed diverge in watch-event fan-out.

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestLeaseExpiryEventOrder(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	e := NewEngine(Config{})
	defer e.Close()

	l, err := e.GrantLease(clk, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"p/h", "p/c", "p/f", "p/a", "p/e", "p/b", "p/g", "p/d"}
	for _, k := range keys {
		if _, err := l.Put(k, "x"); err != nil {
			t.Fatal(err)
		}
	}
	ch, cancel, err := e.Watch("p/")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	l.Revoke()

	got := make([]string, 0, len(keys))
	var rev uint64
	for range keys {
		select {
		case ev := <-ch:
			if ev.Type != EventDelete {
				t.Fatalf("event = %+v, want delete", ev)
			}
			if rev == 0 {
				rev = ev.Rev
			} else if ev.Rev != rev {
				t.Fatalf("expiry spread across revisions %d and %d, want one atomic commit", rev, ev.Rev)
			}
			got = append(got, ev.Key)
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out after %d/%d delete events", len(got), len(keys))
		}
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expiry event order = %v, want sorted %v", got, want)
	}
}
