package store

import (
	"sync"

	"repro/internal/metrics"
)

// Keyed is the event shape the Hub can dispatch: anything carrying a key
// (for prefix filtering) and a revision (for ordering and dedup).
type Keyed interface {
	EventKey() string
	EventRev() uint64
}

// Hub fans events out to prefix watchers in strict revision order. It is
// the store's delivery layer, and is also used standalone by the etcd
// facade, whose replicated appliers produce the same event at the same
// revision on every node: Publish's revision cursor accepts each
// revision exactly once, whichever applier gets there first.
//
// Publishing never blocks on watcher channels: accepted events go into
// an ordered queue drained by the hub's dispatcher goroutine, which is
// the only party doing (possibly blocking) channel sends. A stalled
// watcher therefore delays other watchers' delivery, but never a
// publisher — in the etcd facade that property keeps client operations
// live while a subscriber lags.
type Hub[E Keyed] struct {
	// mu guards the cursor, queue and instrumentation; held only for
	// short enqueues.
	mu        sync.Mutex
	delivered uint64 // highest accepted revision
	queue     []E    // accepted, not yet dispatched (revision order)
	mtr       *metrics.Registry
	mtrName   string

	// watchersMu guards the subscription list only; cancellation never
	// needs mu, so a blocked delivery cannot deadlock a cancel.
	watchersMu sync.RWMutex
	watchers   []*watcher[E]
	closed     bool

	wake chan struct{}
	stop chan struct{}
	once sync.Once
}

// watcher receives events for keys under its prefix.
type watcher[E Keyed] struct {
	prefix   string
	startRev uint64 // events at or below this are before the subscription
	ch       chan E
	done     chan struct{}
	once     sync.Once // guards done: cancel and hub Close may race
}

// shutdown closes the watcher's done channel exactly once, however many
// of cancel / hub Close race to do it.
func (w *watcher[E]) shutdown() { w.once.Do(func() { close(w.done) }) }

// NewHub returns an empty hub and starts its dispatcher.
func NewHub[E Keyed]() *Hub[E] {
	h := &Hub[E]{wake: make(chan struct{}, 1), stop: make(chan struct{})}
	go h.dispatchLoop()
	return h
}

// Instrument publishes the hub's queue depth as a gauge in reg under
// the given name label.
func (h *Hub[E]) Instrument(reg *metrics.Registry, name string) {
	h.mu.Lock()
	h.mtr, h.mtrName = reg, name
	h.mu.Unlock()
}

// gaugeQueueDepth records the pending-dispatch queue length; callers
// hold h.mu.
func (h *Hub[E]) gaugeQueueDepth() {
	if h.mtr != nil {
		h.mtr.SetGauge("store_hub_queue_depth", float64(len(h.queue)), h.mtrName)
	}
}

// Watch subscribes to events for keys under prefix. Delivery begins with
// the first revision accepted after the call — a write acknowledged
// before Watch returns is never replayed to the new watcher. Cancel is
// idempotent.
func (h *Hub[E]) Watch(prefix string) (<-chan E, func()) {
	ch, cancel, _ := h.WatchCursor(prefix)
	return ch, cancel
}

// WatchCursor is Watch plus the subscription's start cursor: events at
// or below the returned revision will never be delivered on the
// channel. WatchFrom implementations use the cursor as the exclusive
// upper bound of their history backfill.
func (h *Hub[E]) WatchCursor(prefix string) (<-chan E, func(), uint64) {
	w := &watcher[E]{prefix: prefix, ch: make(chan E, 128), done: make(chan struct{})}
	h.mu.Lock()
	w.startRev = h.delivered
	h.mu.Unlock()
	h.watchersMu.Lock()
	if h.closed {
		h.watchersMu.Unlock()
		w.shutdown()
		return w.ch, func() {}, w.startRev
	}
	h.watchers = append(h.watchers, w)
	h.watchersMu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.watchersMu.Lock()
			for i, x := range h.watchers {
				if x == w {
					h.watchers = append(h.watchers[:i], h.watchers[i+1:]...)
					break
				}
			}
			h.watchersMu.Unlock()
			w.shutdown()
		})
	}
	return w.ch, cancel, w.startRev
}

// SpliceEvents returns a channel that yields backfill first, then pipes
// live events with revision > after, stopping when the returned cancel
// runs or stop closes. It is the delivery shim behind WatchFrom
// implementations: backfilled history and the live stream appear as one
// ordered subscription, and the floor filter keeps the splice point
// duplicate-free.
func SpliceEvents[E Keyed](backfill []E, live <-chan E, after uint64, stop <-chan struct{}) (<-chan E, func()) {
	out := make(chan E, len(backfill)+16)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() { once.Do(func() { close(done) }) }
	go func() {
		for _, ev := range backfill {
			select {
			case out <- ev:
			case <-done:
				return
			case <-stop:
				return
			}
		}
		for {
			select {
			case ev := <-live:
				if ev.EventRev() <= after {
					continue
				}
				select {
				case out <- ev:
				case <-done:
					return
				case <-stop:
					return
				}
			case <-done:
				return
			case <-stop:
				return
			}
		}
	}()
	return out, cancel
}

// Publish accepts events for revision rev, exactly once per revision:
// republishing an already-accepted revision is a no-op. Revisions must
// be published in nondecreasing order by each caller goroutine; the
// first publisher of a revision wins. Publish never blocks on delivery.
func (h *Hub[E]) Publish(rev uint64, events []E) {
	h.Sync(func(delivered uint64) (uint64, []E) {
		if rev <= delivered {
			return delivered, nil
		}
		return rev, events
	})
}

// Sync runs fill under the cursor lock — fill sees the accepted cursor
// and returns the new cursor plus the ordered batch to enqueue. The
// engine's drain uses it to collect shard logs atomically with cursor
// advancement.
func (h *Hub[E]) Sync(fill func(delivered uint64) (uint64, []E)) {
	h.mu.Lock()
	upTo, events := fill(h.delivered)
	if upTo > h.delivered {
		h.delivered = upTo
	}
	if len(events) > 0 {
		h.queue = append(h.queue, events...)
	}
	h.gaugeQueueDepth()
	h.mu.Unlock()
	if len(events) > 0 {
		select {
		case h.wake <- struct{}{}:
		default:
		}
	}
}

// dispatchLoop is the hub's single delivering goroutine.
func (h *Hub[E]) dispatchLoop() {
	for {
		select {
		case <-h.stop:
			return
		case <-h.wake:
		}
		for {
			h.mu.Lock()
			batch := h.queue
			h.queue = nil
			h.gaugeQueueDepth()
			h.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			h.watchersMu.RLock()
			targets := append([]*watcher[E](nil), h.watchers...)
			h.watchersMu.RUnlock()
			for _, ev := range batch {
				for _, w := range targets {
					if ev.EventRev() <= w.startRev {
						continue
					}
					if !hasPrefix(ev.EventKey(), w.prefix) {
						continue
					}
					select {
					case w.ch <- ev:
					case <-w.done:
					case <-h.stop:
						return
					}
				}
			}
		}
	}
}

// Watchers reports the live subscription count.
func (h *Hub[E]) Watchers() int {
	h.watchersMu.RLock()
	defer h.watchersMu.RUnlock()
	return len(h.watchers)
}

// Delivered reports the highest accepted revision.
func (h *Hub[E]) Delivered() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.delivered
}

// Close cancels every watcher and stops the dispatcher; subsequent Watch
// calls return a dead subscription.
func (h *Hub[E]) Close() {
	h.watchersMu.Lock()
	ws := h.watchers
	h.watchers = nil
	h.closed = true
	h.watchersMu.Unlock()
	for _, w := range ws {
		w.shutdown()
	}
	h.once.Do(func() { close(h.stop) })
}

// hasPrefix avoids pulling strings into the hot dispatch path signature.
func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
