package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func newTestEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e := NewEngine(Config{Shards: shards})
	t.Cleanup(e.Close)
	return e
}

func TestPutGetDelete(t *testing.T) {
	e := newTestEngine(t, 4)
	rev, err := e.Put("/jobs/j1", "QUEUED")
	if err != nil {
		t.Fatal(err)
	}
	if rev == 0 {
		t.Fatal("rev = 0, want > 0")
	}
	v, vr, ok := e.Get("/jobs/j1")
	if !ok || v != "QUEUED" || vr != rev {
		t.Fatalf("get = (%v,%d,%v), want (QUEUED,%d,true)", v, vr, ok, rev)
	}
	if _, deleted, err := e.Delete("/jobs/j1"); err != nil || !deleted {
		t.Fatalf("delete = (%v,%v)", deleted, err)
	}
	if _, _, ok := e.Get("/jobs/j1"); ok {
		t.Fatal("key survived delete")
	}
	// Deleting an absent key reports false, no error.
	if _, deleted, err := e.Delete("/jobs/j1"); err != nil || deleted {
		t.Fatalf("second delete = (%v,%v)", deleted, err)
	}
}

func TestInsertRejectsLiveKey(t *testing.T) {
	e := newTestEngine(t, 4)
	if _, err := e.Insert("/k", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert("/k", 2); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	// A deleted key can be inserted again.
	if _, _, err := e.Delete("/k"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert("/k", 3); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotScanSeesPointInTime(t *testing.T) {
	e := newTestEngine(t, 4)
	for i := 0; i < 8; i++ {
		if _, err := e.Put(fmt.Sprintf("/jobs/j%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	rev := e.Snapshot()
	// Later writes are invisible at the captured revision.
	if _, err := e.Put("/jobs/j0", 999); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Put("/jobs/j9", 9); err != nil {
		t.Fatal(err)
	}
	kvs, err := e.ScanAt("/jobs/", rev)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 8 {
		t.Fatalf("scan size = %d, want 8", len(kvs))
	}
	if kvs[0].Key != "/jobs/j0" || kvs[0].Value != 0 {
		t.Fatalf("kvs[0] = %+v, want old j0", kvs[0])
	}
	// The latest view sees both new writes.
	now, _, err := e.Scan("/jobs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(now) != 9 || now[0].Value != 999 {
		t.Fatalf("latest scan = %d keys, first %+v", len(now), now[0])
	}
}

func TestScanVisibilityCoversCompletedWrites(t *testing.T) {
	e := newTestEngine(t, 8)
	// Every write acknowledged before a Scan must be in the scan.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("/v/%03d", i)
		if _, err := e.Put(key, i); err != nil {
			t.Fatal(err)
		}
		kvs, _, err := e.Scan("/v/")
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != i+1 {
			t.Fatalf("after %d puts scan sees %d keys", i+1, len(kvs))
		}
	}
}

func TestUpdateAtomicRMW(t *testing.T) {
	e := newTestEngine(t, 4)
	if _, err := e.Put("/ctr", 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, _, err := e.Update("/ctr", func(cur any, exists bool) (any, Action, error) {
					return cur.(int) + 1, ActWrite, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, _, _ := e.Get("/ctr")
	if v != 800 {
		t.Fatalf("counter = %v, want 800", v)
	}
}

func TestCommitIsAtomicAcrossShards(t *testing.T) {
	e := newTestEngine(t, 8)
	if _, err := e.Commit([]Op{
		{Kind: OpPut, Key: "/a/1", Value: "x"},
		{Kind: OpPut, Key: "/b/1", Value: "x"},
		{Kind: OpDelete, Key: "/missing"},
	}); err != nil {
		t.Fatal(err)
	}
	a, ra, _ := e.Get("/a/1")
	b, rb, _ := e.Get("/b/1")
	if a != "x" || b != "x" || ra != rb {
		t.Fatalf("commit not atomic: (%v,%d) (%v,%d)", a, ra, b, rb)
	}
}

func TestWatchOrderAndPrefixFilter(t *testing.T) {
	e := newTestEngine(t, 4)
	ch, cancel, err := e.Watch("/jobs/")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, err := e.Put("/jobs/j1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Put("/other/x", "leak"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Delete("/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	ev1 := recvStoreEvent(t, ch)
	if ev1.Type != EventPut || ev1.Key != "/jobs/j1" || ev1.Value != "a" {
		t.Fatalf("event 1 = %+v", ev1)
	}
	ev2 := recvStoreEvent(t, ch)
	if ev2.Type != EventDelete || ev2.Key != "/jobs/j1" {
		t.Fatalf("event 2 = %+v (want delete, no /other leak)", ev2)
	}
	if ev2.Rev <= ev1.Rev {
		t.Fatalf("revisions not monotone: %d then %d", ev1.Rev, ev2.Rev)
	}
}

func recvStoreEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no event delivered")
		return Event{}
	}
}

func TestHistoryBoundAndCompaction(t *testing.T) {
	e := NewEngine(Config{Shards: 2, HistoryLimit: 4})
	defer e.Close()
	var revs []uint64
	for i := 0; i < 10; i++ {
		r, err := e.Put("/k", i)
		if err != nil {
			t.Fatal(err)
		}
		revs = append(revs, r)
	}
	// The chain is bounded: a read at the oldest revision resolves to
	// nothing (trimmed), a read at a recent one resolves exactly.
	if v, _, ok := func() (any, uint64, bool) {
		sh := e.shardFor("/k")
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.keys["/k"].at(revs[8])
	}(); !ok || v != 8 {
		t.Fatalf("read at rev[8] = (%v,%v)", v, ok)
	}
	e.Compact(revs[9])
	if _, err := e.ScanAt("/", revs[5]); !errors.Is(err, ErrCompacted) {
		t.Fatalf("scan below compaction = %v, want ErrCompacted", err)
	}
	// Latest data still readable.
	if v, _, ok := e.Get("/k"); !ok || v != 9 {
		t.Fatalf("get after compact = (%v,%v)", v, ok)
	}
}

func TestCompactionDropsDeletedKeys(t *testing.T) {
	e := newTestEngine(t, 2)
	if _, err := e.Put("/gone", "x"); err != nil {
		t.Fatal(err)
	}
	rev, _, err := e.Delete("/gone")
	if err != nil {
		t.Fatal(err)
	}
	e.Compact(rev)
	sh := e.shardFor("/gone")
	sh.mu.RLock()
	_, present := sh.keys["/gone"]
	sh.mu.RUnlock()
	if present {
		t.Fatal("tombstoned key not reclaimed by compaction")
	}
}

func TestExternalRevsApplyAndImport(t *testing.T) {
	e := NewEngine(Config{Shards: 4, ExternalRevs: true})
	defer e.Close()
	if _, err := e.Put("/k", "v"); !errors.Is(err, ErrExternalRevs) {
		t.Fatalf("internal op on external engine = %v", err)
	}
	evs, err := e.ApplyAt(7, []Op{{Kind: OpPut, Key: "/k", Value: "v"}})
	if err != nil || len(evs) != 1 || evs[0].Rev != 7 {
		t.Fatalf("ApplyAt = (%v,%v)", evs, err)
	}
	if e.Snapshot() != 7 {
		t.Fatalf("floor = %d, want 7", e.Snapshot())
	}
	// Delete of a missing key emits nothing.
	evs, _ = e.ApplyAt(8, []Op{{Kind: OpDelete, Key: "/none"}})
	if len(evs) != 0 {
		t.Fatalf("spurious delete events: %v", evs)
	}
	img := e.Export()
	internal := NewEngine(Config{Shards: 2})
	defer internal.Close()
	if err := internal.Import(img, 8); !errors.Is(err, ErrExternalRevs) {
		t.Fatalf("import on internal engine = %v, want ErrExternalRevs", err)
	}
	e2 := NewEngine(Config{Shards: 2, ExternalRevs: true})
	defer e2.Close()
	if err := e2.Import(img, 8); err != nil {
		t.Fatal(err)
	}
	if v, rev, ok := e2.Get("/k"); !ok || v != "v" || rev != 7 {
		t.Fatalf("imported = (%v,%d,%v)", v, rev, ok)
	}
	if e2.Snapshot() != 8 {
		t.Fatalf("imported floor = %d, want 8", e2.Snapshot())
	}
}

func TestLeaseExpiryDeletesAttachedKeysAtomically(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	e := newTestEngine(t, 4)
	lease, err := e.GrantLease(clk, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lease.Put("/presence/a", "alive"); err != nil {
		t.Fatal(err)
	}
	if _, err := lease.Put("/presence/b", "alive"); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(30 * time.Second)
	for clk.Now().Before(deadline) {
		kvs, _, err := e.Scan("/presence/")
		if err != nil {
			t.Fatal(err)
		}
		// Atomic expiry: a snapshot never sees a half-expired lease.
		if len(kvs) == 1 {
			t.Fatalf("half-expired lease visible: %v", kvs)
		}
		if len(kvs) == 0 {
			if !lease.Expired() {
				t.Fatal("keys deleted but lease not expired")
			}
			return
		}
		clk.Sleep(200 * time.Millisecond)
	}
	t.Fatal("leased keys survived expiry")
}

func TestLeaseKeepAliveAndRevoke(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	e := newTestEngine(t, 4)
	lease, err := e.GrantLease(clk, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lease.Put("/p/x", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clk.Sleep(time.Second)
		if err := lease.KeepAlive(); err != nil {
			t.Fatalf("keepalive %d: %v", i, err)
		}
	}
	if _, _, ok := e.Get("/p/x"); !ok {
		t.Fatal("key expired despite keep-alives")
	}
	lease.Revoke()
	if _, _, ok := e.Get("/p/x"); ok {
		t.Fatal("key survived revoke")
	}
	if err := lease.KeepAlive(); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("keepalive after revoke = %v", err)
	}
	if _, err := lease.Put("/p/y", 2); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("put after revoke = %v", err)
	}
	if _, err := e.GrantLease(clk, 0); err == nil {
		t.Fatal("zero TTL accepted")
	}
}

func TestClosedEngineRejectsWrites(t *testing.T) {
	e := NewEngine(Config{Shards: 2})
	e.Close()
	if _, err := e.Put("/k", "v"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, _, err := e.Watch("/"); !errors.Is(err, ErrClosed) {
		t.Fatalf("watch err = %v, want ErrClosed", err)
	}
}

// TestConcurrentWritersSnapshotReadersWatchers is the engine's core
// concurrency contract, run under -race in CI: cross-shard writers
// commit key pairs atomically while snapshot readers scan (and must
// never observe a torn pair) and a watcher observes events in strictly
// increasing revision order.
func TestConcurrentWritersSnapshotReadersWatchers(t *testing.T) {
	e := newTestEngine(t, 8)

	const (
		writers = 8
		pairs   = 32
		opsEach = 150
	)

	ch, cancel, err := e.Watch("/pair/")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	watchDone := make(chan error, 1)
	go func() {
		var last uint64
		seen := 0
		for ev := range ch {
			if ev.Rev < last {
				watchDone <- fmt.Errorf("watch order violated: rev %d after %d", ev.Rev, last)
				return
			}
			last = ev.Rev
			seen++
			if seen >= 2*writers*opsEach {
				watchDone <- nil
				return
			}
		}
	}()

	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	readerErr := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				kvs, _, err := e.Scan("/pair/")
				if err != nil {
					readerErr <- err
					return
				}
				vals := make(map[string]any, len(kvs))
				for _, kv := range kvs {
					vals[kv.Key] = kv.Value
				}
				for i := 0; i < pairs; i++ {
					a, aok := vals[fmt.Sprintf("/pair/a/%02d", i)]
					b, bok := vals[fmt.Sprintf("/pair/b/%02d", i)]
					if aok != bok || (aok && a != b) {
						readerErr <- fmt.Errorf("torn pair %d: (%v,%v) (%v,%v)", i, a, aok, b, bok)
						return
					}
				}
			}
		}()
	}

	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < opsEach; i++ {
				p := (w*opsEach + i) % pairs
				v := fmt.Sprintf("w%d-%d", w, i)
				if _, err := e.Commit([]Op{
					{Kind: OpPut, Key: fmt.Sprintf("/pair/a/%02d", p), Value: v},
					{Kind: OpPut, Key: fmt.Sprintf("/pair/b/%02d", p), Value: v},
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	close(stopRead)
	wg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
	select {
	case err := <-watchDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watcher did not observe all events")
	}
}

// TestSameKeyWritersKeepChainOrdered is the regression test for
// revision assignment racing shard-lock acquisition: concurrent writers
// to one key must produce a version chain where the latest value is the
// one with the highest revision — Get must agree with the watch
// history's final event.
func TestSameKeyWritersKeepChainOrdered(t *testing.T) {
	e := newTestEngine(t, 4)
	const writers, ops = 8, 200
	var mu sync.Mutex
	var maxRev uint64
	maxVal := ""
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				v := fmt.Sprintf("w%d-%d", w, i)
				rev, err := e.Put("/hot", v)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if rev > maxRev {
					maxRev, maxVal = rev, v
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	v, rev, ok := e.Get("/hot")
	if !ok || rev != maxRev || v != maxVal {
		t.Fatalf("latest = (%v,%d), want (%v,%d): version chain out of revision order", v, rev, maxVal, maxRev)
	}
}

// TestMultiShardParallelism is a smoke check that distinct shards accept
// writes concurrently (no global serialization): it just exercises the
// cross-shard path; the throughput claim lives in BenchmarkMetadataStore.
func TestMultiShardParallelism(t *testing.T) {
	e := newTestEngine(t, 16)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := e.Put(fmt.Sprintf("/w%02d/%d", w, i), i); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	kvs, _, err := e.Scan("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 16*200 {
		t.Fatalf("scan = %d keys, want %d", len(kvs), 16*200)
	}
}
