package store

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestWatchWithLeaseReclaimsCursorOnExpiry: a watcher bound to a lease
// is torn down — and its hub cursor reclaimed — when the lease expires
// without a keep-alive, so a dead consumer stops costing the dispatch
// fan-out anything.
func TestWatchWithLeaseReclaimsCursorOnExpiry(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	e := NewEngine(Config{})
	defer e.Close()

	l, err := e.GrantLease(clk, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := e.WatchWithLease("a/", l)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if got := e.WatcherCount(); got != 1 {
		t.Fatalf("watchers = %d, want 1", got)
	}

	// Alive (kept alive), the subscription delivers.
	if _, err := e.Put("a/1", "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Key != "a/1" {
			t.Fatalf("event key = %q", ev.Key)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery while lease alive")
	}
	if err := l.KeepAlive(); err != nil {
		t.Fatal(err)
	}

	// Let the lease lapse: the watcher must be reclaimed.
	clk.Sleep(2 * time.Second)
	waitWatchers(t, e, 0)

	// Writes after reclamation are not delivered to the dead channel.
	if _, err := e.Put("a/2", "y"); err != nil {
		t.Fatal(err)
	}
	drainDeadline := time.After(100 * time.Millisecond)
drain:
	for {
		select {
		case ev := <-ch:
			if ev.Key == "a/2" {
				t.Fatal("event delivered after lease-driven reclamation")
			}
		case <-drainDeadline:
			break drain
		}
	}
}

// TestWatchWithLeaseRevoke: explicit revocation reclaims the cursor the
// same way expiry does, and the returned cancel stays safe to call.
func TestWatchWithLeaseRevoke(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	e := NewEngine(Config{})
	defer e.Close()

	l, err := e.GrantLease(clk, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	_, cancel, err := e.WatchWithLease("b/", l)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.WatcherCount(); got != 1 {
		t.Fatalf("watchers = %d, want 1", got)
	}
	l.Revoke()
	waitWatchers(t, e, 0)
	cancel() // idempotent after reclamation
}

// TestWatchWithLeaseExpiredLease: binding to an already-expired lease
// fails with ErrLeaseExpired instead of handing back a born-dead
// channel, and leaks no watcher.
func TestWatchWithLeaseExpiredLease(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	e := NewEngine(Config{})
	defer e.Close()

	l, err := e.GrantLease(clk, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	l.Revoke()
	if _, _, err := e.WatchWithLease("c/", l); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("err = %v, want ErrLeaseExpired", err)
	}
	waitWatchers(t, e, 0)
}

// TestLeaseKeepAliveBeatsInFlightExpiry: when the expiry timer fires at
// the same virtual instant as a keep-alive but acquires the lease lock
// second, it must observe the renewed deadline and yield — the keys and
// watchers of a successfully renewed lease survive. The losing timer
// goroutine is simulated by calling the non-forced expiry directly
// (from outside, the interleaving cannot be pinned down).
func TestLeaseKeepAliveBeatsInFlightExpiry(t *testing.T) {
	clk := clock.NewManual()
	defer clk.Close()
	e := NewEngine(Config{})
	defer e.Close()

	l, err := e.GrantLease(clk, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Put("k/1", "v"); err != nil {
		t.Fatal(err)
	}
	if err := l.KeepAlive(); err != nil {
		t.Fatal(err)
	}
	// The stale timer goroutine arrives after the renewal: it yields.
	l.expire(false)
	if l.Expired() {
		t.Fatal("lease expired despite a successful keep-alive")
	}
	if _, _, found := e.Get("k/1"); !found {
		t.Fatal("lease key deleted despite a successful keep-alive")
	}
	// Revocation (and a genuinely lapsed deadline) still expires.
	clk.Advance(time.Second)
	l.expire(false)
	if !l.Expired() {
		t.Fatal("lease did not expire after the renewed TTL lapsed")
	}
	if _, _, found := e.Get("k/1"); found {
		t.Fatal("lease key survived expiry")
	}
}

// waitWatchers polls for the expected live-watcher count (expiry
// callbacks run on the clock goroutine).
func waitWatchers(t *testing.T, e *Engine, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:allow wallclock real-time convergence poll for clock-goroutine callbacks
	//lint:allow wallclock real-time convergence poll for clock-goroutine callbacks
	for time.Now().Before(deadline) {
		if e.WatcherCount() == want {
			return
		}
		time.Sleep(time.Millisecond) //lint:allow wallclock real-time convergence poll for clock-goroutine callbacks
	}
	t.Fatalf("watchers = %d, want %d", e.WatcherCount(), want)
}
