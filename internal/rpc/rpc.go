// Package rpc is an in-process stand-in for the gRPC fabric that connects
// the DLaaS microservices. It provides what the paper's dependability
// story needs from the real thing: a service registry with dynamic
// instance registration (the paper's "API service instances are
// dynamically registered into a K8S service registry"), round-robin load
// balancing, automatic fail-over to healthy instances, and unavailability
// errors when every instance of a service is down.
//
// Calls are delivered by direct function invocation with a small modeled
// network latency charged to the virtual clock, so loose coupling and
// independent failure — not wire format — are what is simulated.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/trace"
)

// ErrUnavailable is returned when a service has no healthy instances.
var ErrUnavailable = errors.New("rpc: service unavailable")

// ErrNotRegistered is returned when the service name is unknown.
var ErrNotRegistered = errors.New("rpc: service not registered")

// Handler processes a single unary call.
type Handler func(ctx context.Context, method string, req any) (any, error)

// defaultCallLatency is the modeled one-way in-datacenter RPC cost.
const defaultCallLatency = 500 * time.Microsecond

// Bus routes calls between registered service instances.
type Bus struct {
	clk     clock.Clock
	latency time.Duration
	tracer  *trace.Recorder

	mu       sync.Mutex
	services map[string]*service
	// notify is closed (and replaced lazily) whenever instance health or
	// membership changes, waking WaitHealthy callers — the readiness
	// signal that replaces busy-wait polling at platform boot.
	notify chan struct{}
}

type service struct {
	instances []*Registration
	next      int
}

// Registration is a single live instance of a service.
type Registration struct {
	bus     *Bus
	service string

	// ID identifies the instance, e.g. the pod name hosting it.
	ID string

	mu      sync.Mutex
	handler Handler
	up      bool
	gone    bool
}

// Option configures a Bus.
type Option func(*Bus)

// WithCallLatency overrides the modeled per-call network latency.
func WithCallLatency(d time.Duration) Option {
	return func(b *Bus) { b.latency = d }
}

// WithTracer attaches a span recorder: a call whose context carries a
// trace.SpanContext is wrapped in an "rpc:<service>/<method>" child
// span, and the handler sees the context re-pointed at that span. A
// nil recorder (tracing off) is accepted and ignored.
func WithTracer(r *trace.Recorder) Option {
	return func(b *Bus) { b.tracer = r }
}

// NewBus returns an empty service registry on clk.
func NewBus(clk clock.Clock, opts ...Option) *Bus {
	b := &Bus{
		clk:      clk,
		latency:  defaultCallLatency,
		services: make(map[string]*service),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Register adds an instance of name served by h and returns its
// registration handle. Instances start healthy.
func (b *Bus) Register(name, id string, h Handler) *Registration {
	r := &Registration{bus: b, service: name, ID: id, handler: h, up: true}
	b.mu.Lock()
	defer b.mu.Unlock()
	svc := b.services[name]
	if svc == nil {
		svc = &service{}
		b.services[name] = svc
	}
	svc.instances = append(svc.instances, r)
	b.healthChangedLocked()
	return r
}

// healthChangedLocked wakes WaitHealthy waiters; callers hold b.mu.
func (b *Bus) healthChangedLocked() {
	if b.notify != nil {
		close(b.notify)
		b.notify = nil
	}
}

// healthWatch returns a channel closed on the next health change.
func (b *Bus) healthWatch() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.notify == nil {
		b.notify = make(chan struct{})
	}
	return b.notify
}

// WaitHealthy blocks until every named service has at least min healthy
// instances, or timeout (on the bus clock) passes; it reports success.
// Unlike polling HealthyInstances, it wakes on the registration or
// recovery event itself.
func (b *Bus) WaitHealthy(timeout time.Duration, min int, names ...string) bool {
	deadline := b.clk.Now().Add(timeout)
	for {
		ch := b.healthWatch()
		ready := true
		for _, n := range names {
			if b.HealthyInstances(n) < min {
				ready = false
				break
			}
		}
		if ready {
			return true
		}
		remaining := deadline.Sub(b.clk.Now())
		if remaining <= 0 {
			return false
		}
		t := b.clk.NewTimer(remaining)
		select {
		case <-ch:
			t.Stop()
		case <-t.C():
			return false
		}
	}
}

// Deregister removes the instance from the registry permanently.
func (r *Registration) Deregister() {
	r.mu.Lock()
	r.gone = true
	r.up = false
	r.mu.Unlock()

	b := r.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	svc := b.services[r.service]
	if svc == nil {
		return
	}
	for i, in := range svc.instances {
		if in == r {
			svc.instances = append(svc.instances[:i], svc.instances[i+1:]...)
			break
		}
	}
	b.healthChangedLocked()
}

// SetUp marks the instance healthy (true) or crashed (false). A crashed
// instance stays registered but receives no traffic, modeling a pod that
// K8s will restart in place.
func (r *Registration) SetUp(up bool) {
	r.mu.Lock()
	changed := !r.gone && r.up != up
	if !r.gone {
		r.up = up
	}
	r.mu.Unlock()
	if changed {
		// Signal outside r.mu: Call/pick acquire bus.mu before r.mu, so
		// holding r.mu here would invert the lock order.
		r.bus.mu.Lock()
		r.bus.healthChangedLocked()
		r.bus.mu.Unlock()
	}
}

// Up reports whether the instance is currently serving.
func (r *Registration) Up() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up
}

// HealthyInstances reports how many instances of name can serve traffic.
func (b *Bus) HealthyInstances(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	svc := b.services[name]
	if svc == nil {
		return 0
	}
	n := 0
	for _, in := range svc.instances {
		if in.Up() {
			n++
		}
	}
	return n
}

// Call invokes method on a healthy instance of name, load-balancing
// round-robin and failing over past crashed instances. It returns
// ErrUnavailable if no instance can serve, or ErrNotRegistered if the
// service name was never registered.
func (b *Bus) Call(ctx context.Context, name, method string, req any) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if b.tracer != nil {
		if sc, ok := trace.FromContext(ctx); ok {
			sp := b.tracer.StartSpan(sc, "rpc:"+name+"/"+method)
			defer sp.End()
			ctx = trace.NewContext(ctx, sp.Context())
		}
	}
	inst, err := b.pick(name)
	if err != nil {
		return nil, fmt.Errorf("calling %s.%s: %w", name, method, err)
	}
	b.clk.Sleep(b.latency)
	inst.mu.Lock()
	h := inst.handler
	up := inst.up
	inst.mu.Unlock()
	if !up {
		// Crashed between pick and dispatch; surface as unavailability
		// so callers retry, as a TCP RST would in the real system.
		return nil, fmt.Errorf("calling %s.%s on %s: %w", name, method, inst.ID, ErrUnavailable)
	}
	resp, err := h(ctx, method, req)
	if err != nil {
		return nil, err
	}
	b.clk.Sleep(b.latency)
	return resp, nil
}

// pick selects the next healthy instance round-robin.
func (b *Bus) pick(name string) (*Registration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	svc := b.services[name]
	if svc == nil {
		return nil, ErrNotRegistered
	}
	n := len(svc.instances)
	for i := 0; i < n; i++ {
		inst := svc.instances[(svc.next+i)%n]
		if inst.Up() {
			svc.next = (svc.next + i + 1) % n
			return inst, nil
		}
	}
	return nil, ErrUnavailable
}
