package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func newTestBus() (*Bus, *clock.Sim) {
	clk := clock.NewSim()
	return NewBus(clk), clk
}

func echoHandler(id string) Handler {
	return func(_ context.Context, method string, req any) (any, error) {
		return fmt.Sprintf("%s:%s:%v", id, method, req), nil
	}
}

func TestCallUnknownService(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	_, err := b.Call(context.Background(), "nope", "m", nil)
	if !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v, want ErrNotRegistered", err)
	}
}

func TestCallRoundRobin(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	b.Register("api", "a", echoHandler("a"))
	b.Register("api", "b", echoHandler("b"))

	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		resp, err := b.Call(context.Background(), "api", "status", i)
		if err != nil {
			t.Fatal(err)
		}
		seen[resp.(string)[:1]]++
	}
	if seen["a"] != 3 || seen["b"] != 3 {
		t.Fatalf("round robin distribution = %v, want 3/3", seen)
	}
}

func TestFailoverSkipsCrashedInstance(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	ra := b.Register("api", "a", echoHandler("a"))
	b.Register("api", "b", echoHandler("b"))

	ra.SetUp(false)
	for i := 0; i < 4; i++ {
		resp, err := b.Call(context.Background(), "api", "m", nil)
		if err != nil {
			t.Fatalf("call %d failed: %v", i, err)
		}
		if resp.(string)[:1] != "b" {
			t.Fatalf("call %d routed to crashed instance: %v", i, resp)
		}
	}
	if got := b.HealthyInstances("api"); got != 1 {
		t.Fatalf("healthy = %d, want 1", got)
	}
}

func TestAllInstancesDown(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	ra := b.Register("api", "a", echoHandler("a"))
	ra.SetUp(false)
	_, err := b.Call(context.Background(), "api", "m", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestRecoveryAfterRestart(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	ra := b.Register("api", "a", echoHandler("a"))
	ra.SetUp(false)
	if _, err := b.Call(context.Background(), "api", "m", nil); err == nil {
		t.Fatal("expected unavailability while crashed")
	}
	ra.SetUp(true) // K8s restarted the pod
	if _, err := b.Call(context.Background(), "api", "m", nil); err != nil {
		t.Fatalf("call after recovery failed: %v", err)
	}
}

func TestDeregisterRemovesPermanently(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	ra := b.Register("api", "a", echoHandler("a"))
	ra.Deregister()
	ra.SetUp(true) // must not resurrect a deregistered instance
	_, err := b.Call(context.Background(), "api", "m", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	sentinel := errors.New("boom")
	b.Register("api", "a", func(context.Context, string, any) (any, error) {
		return nil, sentinel
	})
	_, err := b.Call(context.Background(), "api", "m", nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestContextCancellation(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	b.Register("api", "a", echoHandler("a"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := b.Call(ctx, "api", "m", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCallChargesLatency(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	b := NewBus(clk, WithCallLatency(defaultCallLatency))
	b.Register("api", "a", echoHandler("a"))
	start := clk.Now()
	if _, err := b.Call(context.Background(), "api", "m", nil); err != nil {
		t.Fatal(err)
	}
	if got := clk.Since(start); got < 2*defaultCallLatency {
		t.Fatalf("virtual latency = %v, want >= %v", got, 2*defaultCallLatency)
	}
}

func TestConcurrentCalls(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	b.Register("api", "a", echoHandler("a"))
	b.Register("api", "b", echoHandler("b"))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Call(context.Background(), "api", "m", i); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWaitHealthyWakesOnRegistration: WaitHealthy blocks until the
// awaited services register, waking on the registration event itself
// (the platform-boot readiness signal that replaced the sleep loop).
func TestWaitHealthyWakesOnRegistration(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()

	done := make(chan bool, 1)
	go func() { done <- b.WaitHealthy(time.Minute, 1, "api", "lcm") }()

	// Registrations arrive a little apart; the waiter must not return
	// until both services are up.
	clk.Sleep(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("WaitHealthy returned before any registration")
	default:
	}
	b.Register("api", "a0", echoHandler("a0"))
	clk.Sleep(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("WaitHealthy returned with lcm still missing")
	default:
	}
	b.Register("lcm", "l0", echoHandler("l0"))
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitHealthy = false with both services registered")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitHealthy never woke after registration")
	}
}

// TestWaitHealthyTimesOut: with a service missing, WaitHealthy returns
// false once the (virtual) deadline passes.
func TestWaitHealthyTimesOut(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	b.Register("api", "a0", echoHandler("a0"))
	if b.WaitHealthy(200*time.Millisecond, 1, "api", "never") {
		t.Fatal("WaitHealthy = true for an unregistered service")
	}
}

// TestWaitHealthySeesRecovery: an instance crashing to zero healthy and
// recovering via SetUp wakes a waiter.
func TestWaitHealthySeesRecovery(t *testing.T) {
	b, clk := newTestBus()
	defer clk.Close()
	r := b.Register("api", "a0", echoHandler("a0"))
	r.SetUp(false)
	done := make(chan bool, 1)
	go func() { done <- b.WaitHealthy(time.Minute, 1, "api") }()
	clk.Sleep(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("WaitHealthy returned while instance down")
	default:
	}
	r.SetUp(true)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitHealthy = false after recovery")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitHealthy never woke after SetUp(true)")
	}
}
