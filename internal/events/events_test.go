package events

import (
	"testing"
	"time"

	"repro/internal/core/types"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	u := types.StatusUpdate{
		Learner: 2,
		Status:  types.LearnerTraining,
		Time:    time.Unix(100, 0).UTC(),
		Detail:  "images=1280",
	}
	env := LearnerStatus("job-7", u)
	raw, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := Decode(raw)
	if !ok {
		t.Fatalf("Decode(%s) not ok", raw)
	}
	if got.Kind != KindLearnerStatus || got.JobID != "job-7" {
		t.Fatalf("decoded = %+v", got)
	}
	if back := got.StatusUpdate(); back != u {
		t.Fatalf("round trip = %+v, want %+v", back, u)
	}
}

func TestDecodeLegacyStatusUpdateJSON(t *testing.T) {
	// The pre-envelope etcd wire format: a raw StatusUpdate document.
	raw := []byte(`{"learner":1,"status":"COMPLETED","time":"2020-01-01T00:00:00Z","detail":"x"}`)
	env, ok := Decode(raw)
	if !ok || env.Kind != KindLearnerStatus {
		t.Fatalf("legacy decode = %+v (ok=%v)", env, ok)
	}
	u := env.StatusUpdate()
	if u.Learner != 1 || u.Status != types.LearnerCompleted || u.Detail != "x" {
		t.Fatalf("legacy update = %+v", u)
	}
}

func TestDecodeBareStatusString(t *testing.T) {
	// The pre-envelope NFS status file: just the status bytes.
	env, ok := Decode([]byte("TRAINING"))
	if !ok || env.Status != string(types.LearnerTraining) {
		t.Fatalf("bare decode = %+v (ok=%v)", env, ok)
	}
}

func TestDecodeRejectsEmpty(t *testing.T) {
	if _, ok := Decode(nil); ok {
		t.Fatal("decoded empty input")
	}
	if _, ok := Decode([]byte(`{}`)); ok {
		t.Fatal("decoded an empty JSON object into a status")
	}
}

func TestJobStateEnvelope(t *testing.T) {
	env := JobState("job-9", types.StateHalted, "user requested", time.Unix(5, 0))
	raw, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := Decode(raw)
	if !ok || got.Kind != KindJobState || got.Status != string(types.StateHalted) || got.JobID != "job-9" {
		t.Fatalf("job-state decode = %+v (ok=%v)", got, ok)
	}
}

// TestDecodeWithoutTraceFields pins the legacy-tolerance contract for
// the tracing fields: envelopes written before tracing existed (no
// trace_id/span_id keys) must decode cleanly with empty trace context,
// and traced envelopes must round-trip both fields.
func TestDecodeWithoutTraceFields(t *testing.T) {
	legacy := []byte(`{"kind":"learner-status","job_id":"job-1","learner":0,"status":"TRAINING","time":"2020-01-01T00:00:00Z"}`)
	got, ok := Decode(legacy)
	if !ok || got.Status != "TRAINING" {
		t.Fatalf("legacy decode = %+v (ok=%v)", got, ok)
	}
	if got.TraceID != "" || got.SpanID != "" {
		t.Fatalf("legacy envelope grew trace context: %+v", got)
	}

	traced := got.WithTrace("job-1", "00000000deadbeef")
	raw, err := traced.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, ok := Decode(raw)
	if !ok || back.TraceID != "job-1" || back.SpanID != "00000000deadbeef" {
		t.Fatalf("traced round-trip = %+v (ok=%v)", back, ok)
	}

	// WithTrace with an empty context is a no-op.
	if e := got.WithTrace("", ""); e.TraceID != "" || e.SpanID != "" {
		t.Fatalf("empty WithTrace stamped fields: %+v", e)
	}
}
