// Package events defines the one event envelope the four core services
// (Learner, Helper, Guardian, LCM) exchange on the watch-driven control
// plane. A status transition is produced once — by the learner on the
// shared volume, mirrored by the helper controller into etcd, folded by
// the Guardian into the job record, observed by the LCM on the job
// change feed — and every hop speaks this schema: a typed kind, the
// job/learner identity, the payload status, and the metadata-store
// revision that committed it (the resume cursor).
//
// Decoding is tolerant of the pre-envelope wire formats (a bare learner
// status string on NFS, a raw StatusUpdate JSON document in etcd) so
// mixed-version components interoperate during a rolling upgrade.
package events

import (
	"encoding/json"
	"time"

	"repro/internal/core/types"
)

// Kind types an envelope's payload.
type Kind string

// Event kinds.
const (
	// KindLearnerStatus carries one learner's execution status
	// (types.LearnerStatus in Status, ordinal in Learner).
	KindLearnerStatus Kind = "learner-status"
	// KindJobState carries a job lifecycle transition
	// (types.JobState in Status).
	KindJobState Kind = "job-state"
	// KindEvictionIntent announces a scheduler eviction (preemption or
	// node drain) with a grace deadline: the job's learners should
	// checkpoint now. Detail carries the reason, Deadline the cutoff.
	KindEvictionIntent Kind = "eviction-intent"
	// KindEvictionAck is a learner's response to an eviction intent: its
	// on-demand checkpoint is durable (Images is the checkpointed
	// progress) and the scheduler may take the capacity.
	KindEvictionAck Kind = "eviction-ack"
)

// Eviction envelope statuses (Status is mandatory on the wire; these
// type the two eviction payloads).
const (
	// StatusEvict is the Status of a KindEvictionIntent envelope.
	StatusEvict = "EVICT"
	// StatusCheckpointed is the Status of a KindEvictionAck envelope.
	StatusCheckpointed = "CHECKPOINTED"
)

// Envelope is one control-plane event.
type Envelope struct {
	Kind    Kind   `json:"kind"`
	JobID   string `json:"job_id,omitempty"`
	Learner int    `json:"learner"`
	// Status is the payload state: a types.LearnerStatus for
	// KindLearnerStatus, a types.JobState for KindJobState.
	Status string `json:"status"`
	// Detail carries optional context (progress, failure reason).
	Detail string `json:"detail,omitempty"`
	// Time is the virtual timestamp of the transition; users depend on
	// these for profiling.
	Time time.Time `json:"time"`
	// Rev is the metadata-store revision that committed the event — the
	// cursor a consumer persists to resume its watch exactly. Zero until
	// the write is acknowledged (producers don't know their revision in
	// advance; watch consumers stamp it from the delivery).
	Rev uint64 `json:"rev,omitempty"`
	// Deadline is the eviction grace cutoff (KindEvictionIntent only):
	// a gang that has not acked by then is force-evicted.
	Deadline time.Time `json:"deadline,omitempty"`
	// Images is the checkpointed training progress (KindEvictionAck
	// only): the image count the job resumes from after the eviction.
	Images int64 `json:"images,omitempty"`
	// TraceID/SpanID carry the producer's trace context (the job's
	// trace and the span active when the event was produced) so
	// mirrored copies of the event — NFS status file, etcd key, job
	// record — stay attributable to one span tree. Empty on envelopes
	// from pre-tracing components; Decode tolerates their absence.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// WithTrace returns a copy of the envelope stamped with a span
// context. A zero/invalid context leaves the envelope unchanged.
func (e Envelope) WithTrace(traceID, spanID string) Envelope {
	if traceID != "" && spanID != "" {
		e.TraceID = traceID
		e.SpanID = spanID
	}
	return e
}

// LearnerStatus builds a learner-status envelope.
func LearnerStatus(jobID string, u types.StatusUpdate) Envelope {
	return Envelope{
		Kind:    KindLearnerStatus,
		JobID:   jobID,
		Learner: u.Learner,
		Status:  string(u.Status),
		Detail:  u.Detail,
		Time:    u.Time,
	}
}

// JobState builds a job-state envelope.
func JobState(jobID string, s types.JobState, detail string, t time.Time) Envelope {
	return Envelope{Kind: KindJobState, JobID: jobID, Status: string(s), Detail: detail, Time: t}
}

// EvictionIntent builds an eviction-intent envelope: the scheduler
// wants the job's capacity back by deadline; reason is the kube
// eviction reason (preemption, drain).
func EvictionIntent(jobID, reason string, deadline, t time.Time) Envelope {
	return Envelope{
		Kind:     KindEvictionIntent,
		JobID:    jobID,
		Status:   StatusEvict,
		Detail:   reason,
		Deadline: deadline,
		Time:     t,
	}
}

// EvictionAck builds a learner's eviction-ack envelope: the on-demand
// checkpoint at images is durable in the results bucket.
func EvictionAck(jobID string, learner int, images int64, t time.Time) Envelope {
	return Envelope{
		Kind:    KindEvictionAck,
		JobID:   jobID,
		Learner: learner,
		Status:  StatusCheckpointed,
		Images:  images,
		Time:    t,
	}
}

// StatusUpdate converts a learner-status envelope back to the Guardian's
// aggregation record.
func (e Envelope) StatusUpdate() types.StatusUpdate {
	return types.StatusUpdate{
		Learner: e.Learner,
		Status:  types.LearnerStatus(e.Status),
		Time:    e.Time,
		Detail:  e.Detail,
	}
}

// Encode serializes the envelope for a store value or NFS file.
func (e Envelope) Encode() ([]byte, error) { return json.Marshal(e) }

// Decode parses raw as an envelope, tolerating legacy payloads: a raw
// types.StatusUpdate JSON document decodes as KindLearnerStatus (its
// field names are a subset of the envelope's), and a bare status string
// (the pre-envelope NFS status file) becomes a learner-status envelope
// with just Status set. ok is false for empty input or garbage.
func Decode(raw []byte) (Envelope, bool) {
	if len(raw) == 0 {
		return Envelope{}, false
	}
	var e Envelope
	if err := json.Unmarshal(raw, &e); err == nil {
		if e.Kind == "" {
			// Legacy StatusUpdate document: same field names, no kind.
			e.Kind = KindLearnerStatus
		}
		if e.Status != "" {
			return e, true
		}
		return Envelope{}, false
	}
	// Bare status string (not valid JSON).
	return Envelope{Kind: KindLearnerStatus, Status: string(raw)}, true
}
