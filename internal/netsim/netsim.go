// Package netsim models the data-movement fabrics that dominate deep-
// learning training performance: datacenter Ethernet for training-data
// streaming, PCIe and NVLink for inter-GPU gradient exchange, and memory
// buses. It provides analytic transfer-time computation plus a shared-link
// abstraction that meters concurrent streams over the virtual clock.
//
// The paper's evaluation (Figs. 2 and 3) compares throughput across
// interconnects (1GbE streaming, PCIe vs NVLink gradient sync); this
// package supplies those bandwidth/latency models.
package netsim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
)

// Bandwidth is measured in bytes per second.
type Bandwidth float64

// Common bandwidth units.
const (
	KBps Bandwidth = 1e3
	MBps Bandwidth = 1e6
	GBps Bandwidth = 1e9
)

// Link describes a point-to-point or bus interconnect.
type Link struct {
	// Name identifies the link type, e.g. "1GbE" or "NVLink".
	Name string
	// Bandwidth is the usable (not theoretical) data rate.
	Bandwidth Bandwidth
	// Latency is the per-message fixed cost.
	Latency time.Duration
}

// Standard interconnect catalog. Bandwidths are effective application-level
// rates, not marketing peak numbers.
var (
	// Ethernet1G is the 1GbE datacenter network used in the paper's
	// Fig. 2 experiments for both DLaaS and bare metal.
	Ethernet1G = Link{Name: "1GbE", Bandwidth: 117 * MBps, Latency: 100 * time.Microsecond}

	// Ethernet10G is included for ablation sweeps.
	Ethernet10G = Link{Name: "10GbE", Bandwidth: 1.17 * GBps, Latency: 50 * time.Microsecond}

	// PCIe3x16 is the host interconnect of the K80 and PCIe-P100 systems.
	// ~16 GB/s theoretical, ~12 GB/s effective, halved for the shared
	// switch topology typical of multi-GPU PCIe boxes.
	PCIe3x16 = Link{Name: "PCIe3x16", Bandwidth: 10 * GBps, Latency: 5 * time.Microsecond}

	// NVLinkV1 is the DGX-1 GPU interconnect: 4 links x 20 GB/s per
	// direction per GPU pair, effective ~35 GB/s for collective patterns.
	NVLinkV1 = Link{Name: "NVLink", Bandwidth: 35 * GBps, Latency: 2 * time.Microsecond}

	// NFSLink models access to the shared NFS volume (backed by the
	// datacenter network with protocol overhead).
	NFSLink = Link{Name: "NFS", Bandwidth: 90 * MBps, Latency: 300 * time.Microsecond}
)

// TransferTime returns the time to move n bytes across the link in a
// single stream: latency + n/bandwidth.
func (l Link) TransferTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	secs := float64(n) / float64(l.Bandwidth)
	return l.Latency + time.Duration(secs*float64(time.Second))
}

// String implements fmt.Stringer.
func (l Link) String() string {
	return fmt.Sprintf("%s(%.1fMB/s,%v)", l.Name, float64(l.Bandwidth)/1e6, l.Latency)
}

// SharedLink is a link whose bandwidth is divided among concurrent
// streams. Transfer durations are realized as sleeps on the virtual clock,
// with the fair share recomputed per transfer based on the number of
// streams active when the transfer starts. This first-order contention
// model is sufficient for the platform-overhead experiments, where what
// matters is that helper traffic (logs, status, checkpoints) steals
// bandwidth from training-data streaming.
type SharedLink struct {
	link Link
	clk  clock.Clock

	mu     sync.Mutex
	active int
}

// NewSharedLink wraps link with contention accounting on clk.
func NewSharedLink(link Link, clk clock.Clock) *SharedLink {
	return &SharedLink{link: link, clk: clk}
}

// Link returns the underlying link description.
func (s *SharedLink) Link() Link { return s.link }

// Active reports the number of in-flight transfers.
func (s *SharedLink) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Transfer blocks (in virtual time) for the duration needed to move n
// bytes given the contention level at start.
func (s *SharedLink) Transfer(n int64) {
	s.clk.Sleep(s.TransferStart(n))
	s.TransferDone()
}

// TransferStart registers a new stream and returns the modeled duration
// for n bytes at the resulting contention level. Callers must pair it with
// TransferDone. Most callers want Transfer.
func (s *SharedLink) TransferStart(n int64) time.Duration {
	s.mu.Lock()
	s.active++
	share := float64(s.active)
	s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	secs := float64(n) * share / float64(s.link.Bandwidth)
	return s.link.Latency + time.Duration(secs*float64(time.Second))
}

// TransferDone marks a stream started with TransferStart as finished.
func (s *SharedLink) TransferDone() {
	s.mu.Lock()
	if s.active > 0 {
		s.active--
	}
	s.mu.Unlock()
}

// AllReduceTime models a ring all-reduce of gradBytes across n workers
// connected by the link: each worker sends and receives 2*(n-1)/n of the
// buffer, in 2*(n-1) latency-bound steps. For n <= 1 it returns zero (no
// synchronization needed).
func AllReduceTime(l Link, n int, gradBytes int64) time.Duration {
	if n <= 1 || gradBytes <= 0 {
		return 0
	}
	steps := 2 * (n - 1)
	perStepBytes := float64(gradBytes) / float64(n)
	wire := float64(steps) * perStepBytes / float64(l.Bandwidth)
	return time.Duration(wire*float64(time.Second)) + time.Duration(steps)*l.Latency
}

// ParameterServerTime models a push/pull exchange of gradBytes between n
// workers and a central parameter server over link l: the server link is
// the bottleneck, carrying n pushes and n pulls serialized.
func ParameterServerTime(l Link, n int, gradBytes int64) time.Duration {
	if n <= 0 || gradBytes <= 0 {
		return 0
	}
	wire := 2 * float64(n) * float64(gradBytes) / float64(l.Bandwidth)
	return time.Duration(wire*float64(time.Second)) + 2*l.Latency
}
