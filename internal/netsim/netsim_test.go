package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

func TestTransferTimeLinear(t *testing.T) {
	l := Link{Name: "test", Bandwidth: 100 * MBps, Latency: time.Millisecond}
	got := l.TransferTime(100 * 1000 * 1000) // 100 MB at 100 MB/s = 1s
	want := time.Second + time.Millisecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestTransferTimeZeroAndNegative(t *testing.T) {
	l := Ethernet1G
	if got := l.TransferTime(0); got != l.Latency {
		t.Fatalf("zero bytes = %v, want latency %v", got, l.Latency)
	}
	if got := l.TransferTime(-5); got != l.Latency {
		t.Fatalf("negative bytes = %v, want latency %v", got, l.Latency)
	}
}

func TestCatalogOrdering(t *testing.T) {
	// The performance model depends on this strict ordering of fabrics.
	if !(Ethernet1G.Bandwidth < Ethernet10G.Bandwidth) {
		t.Error("1GbE should be slower than 10GbE")
	}
	if !(Ethernet10G.Bandwidth < PCIe3x16.Bandwidth) {
		t.Error("10GbE should be slower than PCIe3")
	}
	if !(PCIe3x16.Bandwidth < NVLinkV1.Bandwidth) {
		t.Error("PCIe3 should be slower than NVLink")
	}
}

func TestSharedLinkContention(t *testing.T) {
	clk := clock.NewManual()
	defer clk.Close()
	s := NewSharedLink(Link{Name: "t", Bandwidth: 100 * MBps, Latency: 0}, clk)

	solo := s.TransferStart(100 * 1000 * 1000)
	if solo != time.Second {
		t.Fatalf("solo transfer = %v, want 1s", solo)
	}
	// Second concurrent stream sees half the bandwidth.
	dual := s.TransferStart(100 * 1000 * 1000)
	if dual != 2*time.Second {
		t.Fatalf("contended transfer = %v, want 2s", dual)
	}
	if s.Active() != 2 {
		t.Fatalf("active = %d, want 2", s.Active())
	}
	s.TransferDone()
	s.TransferDone()
	if s.Active() != 0 {
		t.Fatalf("active after done = %d, want 0", s.Active())
	}
}

func TestSharedLinkTransferAdvancesClock(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	s := NewSharedLink(Link{Name: "t", Bandwidth: 1 * MBps, Latency: 0}, clk)
	start := clk.Now()
	s.Transfer(5 * 1000 * 1000) // 5 MB at 1 MB/s = 5s virtual
	if got := clk.Since(start); got < 5*time.Second {
		t.Fatalf("virtual elapsed = %v, want >= 5s", got)
	}
}

func TestAllReduceTimeSingleWorkerFree(t *testing.T) {
	if got := AllReduceTime(PCIe3x16, 1, 1<<30); got != 0 {
		t.Fatalf("1-worker allreduce = %v, want 0", got)
	}
	if got := AllReduceTime(PCIe3x16, 4, 0); got != 0 {
		t.Fatalf("0-byte allreduce = %v, want 0", got)
	}
}

func TestAllReduceNVLinkBeatsPCIe(t *testing.T) {
	const vggGradients = 552 * 1000 * 1000 // ~138M params * 4B
	pcie := AllReduceTime(PCIe3x16, 2, vggGradients)
	nvlink := AllReduceTime(NVLinkV1, 2, vggGradients)
	if nvlink >= pcie {
		t.Fatalf("NVLink allreduce (%v) should beat PCIe (%v)", nvlink, pcie)
	}
	// The ratio should roughly track the bandwidth ratio (3.5x).
	ratio := float64(pcie) / float64(nvlink)
	if ratio < 2 || ratio > 5 {
		t.Fatalf("PCIe/NVLink ratio = %.2f, want within [2,5]", ratio)
	}
}

func TestParameterServerScalesWithWorkers(t *testing.T) {
	g := int64(100 * 1000 * 1000)
	t2 := ParameterServerTime(Ethernet1G, 2, g)
	t4 := ParameterServerTime(Ethernet1G, 4, g)
	if t4 <= t2 {
		t.Fatalf("PS time should grow with workers: 2->%v 4->%v", t2, t4)
	}
}

// Property: transfer time is monotone in byte count.
func TestQuickTransferMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return Ethernet1G.TransferTime(x) <= Ethernet1G.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: allreduce time is monotone in gradient size and never negative.
func TestQuickAllReduceMonotone(t *testing.T) {
	f := func(a, b uint32, n uint8) bool {
		workers := int(n%8) + 2
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		tx := AllReduceTime(PCIe3x16, workers, x)
		ty := AllReduceTime(PCIe3x16, workers, y)
		return tx >= 0 && tx <= ty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
