package trainsim

import (
	"hash/fnv"
	"math"
)

// LossCurve models training-loss progress for a model: an exponential
// decay from the initialization loss toward an asymptotic floor, with
// deterministic minibatch noise. It exists because users profile jobs by
// their "training progress graphs", and the paper notes those graphs
// differ (slightly) between a job that never failed and one that was
// restarted from a checkpoint — the curve re-traverses the images lost
// since the last checkpoint, visible as a kink in the time series.
type LossCurve struct {
	// InitLoss is the loss at step zero (weights at initialization).
	InitLoss float64
	// FloorLoss is the asymptotic converged loss.
	FloorLoss float64
	// DecayImages is the e-folding scale in images processed.
	DecayImages float64
	// NoiseAmplitude scales per-point minibatch noise.
	NoiseAmplitude float64
	// Seed decorrelates runs.
	Seed uint64
}

// CurveFor returns a plausible loss curve for the model (ImageNet-scale
// classification; absolute values are illustrative, the shape is what
// users profile).
func CurveFor(m ModelSpec, seed uint64) LossCurve {
	return LossCurve{
		InitLoss:       6.9, // ln(1000) — uniform over ImageNet classes
		FloorLoss:      1.2,
		DecayImages:    3e6 * (m.GFLOPsPerImage / 10), // heavier models converge slower per image
		NoiseAmplitude: 0.05,
		Seed:           seed,
	}
}

// LossAt returns the training loss after the given number of images,
// including deterministic minibatch noise.
func (c LossCurve) LossAt(images int64) float64 {
	if images < 0 {
		images = 0
	}
	decay := math.Exp(-float64(images) / c.DecayImages)
	base := c.FloorLoss + (c.InitLoss-c.FloorLoss)*decay
	return base + c.noiseAt(images)*c.NoiseAmplitude
}

// noiseAt is a deterministic hash-noise in [-1, 1) keyed by progress.
func (c LossCurve) noiseAt(images int64) float64 {
	h := fnv.New64a()
	var buf [16]byte
	v := uint64(images)
	s := c.Seed
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
		buf[8+i] = byte(s >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return float64(h.Sum64()%1_000_000)/500_000 - 1
}

// MetricPoint is one sample of a training progress graph.
type MetricPoint struct {
	// ClusterSeconds is the virtual time offset from training start.
	ClusterSeconds float64 `json:"t"`
	// Images is cumulative images processed (rolls back to the last
	// checkpoint after a restart).
	Images int64 `json:"images"`
	// Loss is the training loss at this point.
	Loss float64 `json:"loss"`
	// Restarts counts learner incarnations that contributed so far.
	Restarts int `json:"restarts"`
}
