// Package trainsim is the analytic deep-learning training performance
// model behind the paper's evaluation. Absolute throughput numbers are
// calibrated only loosely (the authors' testbed is not reproducible), but
// the model preserves the relationships the paper's figures demonstrate:
//
//   - Fig. 2: containerized DLaaS execution costs single-digit percent
//     versus bare metal, dominated by container virtualization and
//     helper-traffic contention on the shared 1GbE data network.
//   - Fig. 3: a DGX-1 outperforms PCIe cloud servers modestly — a few
//     percent at one GPU (higher SXM2 clocks) growing with GPU count and
//     with model size as NVLink accelerates gradient exchange. VGG-16
//     (138M parameters) suffers most over PCIe, InceptionV3 least.
//
// A training step is modeled as compute (batch work at the GPU's
// effective FLOP rate and a per-(model,framework) efficiency), plus
// gradient synchronization (ring all-reduce or parameter server over the
// configured fabric), plus a data-ingest constraint when streaming from
// the object store cannot keep up with consumption.
package trainsim

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/gpu"
	"repro/internal/netsim"
)

// Framework identifies a supported DL framework. The platform is
// multi-framework by design; the model only needs their efficiency
// profiles.
type Framework string

// Supported frameworks.
const (
	Caffe      Framework = "caffe"
	TensorFlow Framework = "tensorflow"
	PyTorch    Framework = "pytorch"
	Torch      Framework = "torch"
	Horovod    Framework = "horovod"
)

// KnownFramework reports whether f is supported by the platform.
func KnownFramework(f Framework) bool {
	switch f {
	case Caffe, TensorFlow, PyTorch, Torch, Horovod:
		return true
	default:
		return false
	}
}

// SyncMode selects the distributed gradient-exchange strategy.
type SyncMode int

// Synchronization strategies.
const (
	// SyncAllReduce is ring all-reduce (Horovod, distributed TF).
	SyncAllReduce SyncMode = iota + 1
	// SyncParameterServer funnels gradients through a central server.
	SyncParameterServer
)

// ModelSpec describes a neural network's cost profile.
type ModelSpec struct {
	// Name identifies the benchmark model.
	Name string
	// Params is the number of trainable parameters (gradient volume =
	// 4 bytes per parameter).
	Params int64
	// GFLOPsPerImage is forward+backward compute per training sample.
	GFLOPsPerImage float64
	// BytesPerImage is the network volume per training sample when
	// streaming (compressed input record).
	BytesPerImage int64
	// ActivationBytesPerImage is the device memory held per in-flight
	// sample (forward activations retained for the backward pass) —
	// what bounds the usable batch size on a given GPU.
	ActivationBytesPerImage int64
}

// GradientBytes is the per-step gradient exchange volume (fp32).
func (m ModelSpec) GradientBytes() int64 { return m.Params * 4 }

// Benchmark model catalog (paper Sec. IV: VGG-16, ResNet-50, InceptionV3
// on ImageNet-scale inputs; extras for ablations).
var (
	VGG16 = ModelSpec{
		Name:                    "vgg16",
		Params:                  138_000_000,
		GFLOPsPerImage:          46.5, // 15.5 forward ×3 for fwd+bwd
		BytesPerImage:           110_000,
		ActivationBytesPerImage: 180_000_000,
	}
	ResNet50 = ModelSpec{
		Name:                    "resnet50",
		Params:                  25_600_000,
		GFLOPsPerImage:          11.7,
		BytesPerImage:           110_000,
		ActivationBytesPerImage: 120_000_000,
	}
	InceptionV3 = ModelSpec{
		Name:                    "inceptionv3",
		Params:                  23_900_000,
		GFLOPsPerImage:          17.1,
		BytesPerImage:           110_000,
		ActivationBytesPerImage: 90_000_000,
	}
	AlexNet = ModelSpec{
		Name:                    "alexnet",
		Params:                  61_000_000,
		GFLOPsPerImage:          2.1,
		BytesPerImage:           110_000,
		ActivationBytesPerImage: 30_000_000,
	}
	GoogLeNet = ModelSpec{
		Name:                    "googlenet",
		Params:                  6_800_000,
		GFLOPsPerImage:          4.5,
		BytesPerImage:           110_000,
		ActivationBytesPerImage: 40_000_000,
	}
)

// ModelByName resolves a catalog model.
func ModelByName(name string) (ModelSpec, bool) {
	switch name {
	case "vgg16", "vgg-16":
		return VGG16, true
	case "resnet50", "resnet-50":
		return ResNet50, true
	case "inceptionv3", "inception-v3":
		return InceptionV3, true
	case "alexnet":
		return AlexNet, true
	case "googlenet":
		return GoogLeNet, true
	default:
		return ModelSpec{}, false
	}
}

// frameworkEfficiency is the fraction of peak FLOPs a framework sustains.
// Values reflect the era of the paper (Caffe 1.0, TF 1.5).
func frameworkEfficiency(f Framework) float64 {
	switch f {
	case Caffe:
		return 0.40
	case TensorFlow:
		return 0.45
	case PyTorch:
		return 0.44
	case Torch:
		return 0.42
	case Horovod: // Horovod drives TF kernels
		return 0.45
	default:
		return 0.35
	}
}

// Overheads a platform configuration adds to raw training.
type Overheads struct {
	// ContainerFraction is the fractional compute slowdown from running
	// inside Docker/Kubernetes rather than on bare metal (cgroup
	// accounting, image-layer filesystem, virtual networking).
	ContainerFraction float64
	// HelperFraction is the fractional slowdown from DLaaS helper
	// containers sharing the node (log collection, status updates,
	// metrics) and their traffic sharing the data network.
	HelperFraction float64
	// NoiseFraction is the mean amplitude of stochastic platform
	// interference (noisy neighbors, network hiccups, straggler
	// batches). Interference only ever slows training down, so the
	// realized slowdown is drawn from [0, 2*NoiseFraction), computed
	// deterministically from the configuration hash so experiments are
	// reproducible.
	NoiseFraction float64
}

// BareMetal is direct framework execution on the host (the paper's
// Fig. 2 baseline): no container, no platform helpers, no noise beyond
// the shared data network itself.
func BareMetal() Overheads { return Overheads{} }

// DLaaS is containerized execution under the full platform. The noise
// amplitude mirrors the run-to-run variance visible in the paper's
// measurements (their Fig. 2 differences are non-monotonic in GPU count).
func DLaaS() Overheads {
	return Overheads{
		ContainerFraction: 0.012,
		HelperFraction:    0.004,
		NoiseFraction:     0.022,
	}
}

// Config is one training configuration to evaluate.
type Config struct {
	Model     ModelSpec
	Framework Framework
	GPU       gpu.Spec
	// NumGPUs is the total data-parallel width.
	NumGPUs int
	// BatchPerGPU is the per-GPU minibatch size.
	BatchPerGPU int
	// Sync selects the gradient-exchange strategy for NumGPUs > 1.
	Sync SyncMode
	// Interconnect carries gradient traffic. Zero value means the GPU's
	// host link.
	Interconnect netsim.Link
	// DataLink carries training-data streaming. Zero value means 1GbE.
	DataLink netsim.Link
	// Overheads models the execution platform.
	Overheads Overheads
	// Seed perturbs the deterministic noise (distinct measurement runs).
	Seed uint64
}

// withDefaults resolves zero-valued fields.
func (c Config) withDefaults() Config {
	if c.NumGPUs <= 0 {
		c.NumGPUs = 1
	}
	if c.BatchPerGPU <= 0 {
		c.BatchPerGPU = 32
	}
	if c.Sync == 0 {
		c.Sync = SyncAllReduce
	}
	if c.Interconnect.Bandwidth == 0 {
		c.Interconnect = c.GPU.HostLink
	}
	if c.DataLink.Bandwidth == 0 {
		c.DataLink = netsim.Ethernet1G
	}
	return c
}

// computeTimePerStep is the pure GPU time for one step (per GPU).
func (c Config) computeTimePerStep() time.Duration {
	eff := frameworkEfficiency(c.Framework)
	flops := float64(c.BatchPerGPU) * c.Model.GFLOPsPerImage * 1e9
	rate := c.GPU.EffectiveTFLOPS() * 1e12 * eff
	secs := flops / rate
	// Platform slowdowns stretch compute time.
	secs *= 1 + c.Overheads.ContainerFraction + c.Overheads.HelperFraction
	secs *= 1 + c.noise()
	return time.Duration(secs * float64(time.Second))
}

// syncTimePerStep is the gradient-exchange time for one step.
func (c Config) syncTimePerStep() time.Duration {
	if c.NumGPUs <= 1 {
		return 0
	}
	switch c.Sync {
	case SyncParameterServer:
		return netsim.ParameterServerTime(c.Interconnect, c.NumGPUs, c.Model.GradientBytes())
	default:
		return netsim.AllReduceTime(c.Interconnect, c.NumGPUs, c.Model.GradientBytes())
	}
}

// StepTime returns the wall time of one synchronous training step.
func (c Config) StepTime() time.Duration {
	c = c.withDefaults()
	step := c.computeTimePerStep() + c.syncTimePerStep()
	// Data-ingest constraint: if streaming cannot deliver the step's
	// samples in time, the step stalls on input.
	ingestBytes := int64(c.BatchPerGPU*c.NumGPUs) * c.Model.BytesPerImage
	ingest := c.DataLink.TransferTime(ingestBytes)
	if ingest > step {
		return ingest
	}
	return step
}

// Throughput returns aggregate training throughput in images/sec.
func (c Config) Throughput() float64 {
	c = c.withDefaults()
	step := c.StepTime()
	if step <= 0 {
		return 0
	}
	images := float64(c.BatchPerGPU * c.NumGPUs)
	return images / step.Seconds()
}

// ScalingEfficiency returns Throughput(N) / (N * Throughput(1)).
func (c Config) ScalingEfficiency() float64 {
	c = c.withDefaults()
	if c.NumGPUs <= 1 {
		return 1
	}
	single := c
	single.NumGPUs = 1
	return c.Throughput() / (float64(c.NumGPUs) * single.Throughput())
}

// EpochTime returns the wall time to process datasetImages samples once.
func (c Config) EpochTime(datasetImages int64) time.Duration {
	c = c.withDefaults()
	perStep := int64(c.BatchPerGPU * c.NumGPUs)
	if perStep == 0 {
		return 0
	}
	steps := (datasetImages + perStep - 1) / perStep
	return time.Duration(steps) * c.StepTime()
}

// MemoryRequiredBytes is the per-GPU device memory the configuration
// needs: weights + gradients + optimizer state (3x parameters) plus
// retained activations for the batch.
func (c Config) MemoryRequiredBytes() int64 {
	c = c.withDefaults()
	weights := 3 * c.Model.Params * 4
	activations := int64(c.BatchPerGPU) * c.Model.ActivationBytesPerImage
	return weights + activations
}

// FitsMemory reports whether the batch fits in the GPU's device memory
// (with a 10% framework/runtime reserve). A false result corresponds to
// the out-of-memory abort a real framework would raise at startup.
func (c Config) FitsMemory() bool {
	c = c.withDefaults()
	usable := int64(c.GPU.MemGB * 0.9 * 1e9)
	return c.MemoryRequiredBytes() <= usable
}

// CheckpointBytes is the serialized model size written per checkpoint.
func (c Config) CheckpointBytes() int64 { return c.Model.GradientBytes() }

// CheckpointTime is the wall time to persist one checkpoint to the
// object store over the data network.
func (c Config) CheckpointTime() time.Duration {
	c = c.withDefaults()
	return c.DataLink.TransferTime(c.CheckpointBytes())
}

// CheckpointStallTime is how long training stalls to serialize the
// model state off the device for an on-demand checkpoint: the
// parameters cross the GPU's host link before the upload can start.
// Periodic checkpoints hide this copy behind the next step's compute;
// an eviction-grace checkpoint cannot (the process is about to die), so
// it pays the stall in full.
func (c Config) CheckpointStallTime() time.Duration {
	c = c.withDefaults()
	return c.GPU.HostLink.TransferTime(c.CheckpointBytes())
}

// EvictionCheckpointTime is the full cost of an on-demand checkpoint
// taken under an eviction grace period: the device stall plus the
// object-store upload. It is the floor on a useful
// EvictionGracePeriod — a grace shorter than this force-evicts every
// learner before its checkpoint lands.
func (c Config) EvictionCheckpointTime() time.Duration {
	c = c.withDefaults()
	return c.CheckpointStallTime() + c.DataLink.TransferTime(c.CheckpointBytes())
}

// noise returns a deterministic pseudo-random slowdown fraction in
// [0, 2*NoiseFraction), keyed by the configuration identity and seed. It
// realizes the run-to-run interference of real shared clusters
// reproducibly; interference never speeds a run up.
func (c Config) noise() float64 {
	if c.Overheads.NoiseFraction == 0 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d|%d", c.Model.Name, c.Framework, c.GPU.Name, c.NumGPUs, c.BatchPerGPU, c.Seed)
	u := h.Sum64()
	frac := float64(u%1_000_000) / 1_000_000 // [0, 1)
	return frac * 2 * c.Overheads.NoiseFraction
}

// OverheadPercent compares two configurations (typically platform vs
// baseline for the same workload) and returns the throughput difference
// of b relative to a, in percent: positive means a is faster.
func OverheadPercent(a, b Config) float64 {
	ta, tb := a.Throughput(), b.Throughput()
	if ta == 0 {
		return 0
	}
	return (ta - tb) / ta * 100
}
