package trainsim

import (
	"testing"
	"testing/quick"
)

func TestLossCurveDecreasesOnAverage(t *testing.T) {
	c := CurveFor(ResNet50, 1)
	early := c.LossAt(0)
	mid := c.LossAt(int64(c.DecayImages))
	late := c.LossAt(int64(10 * c.DecayImages))
	if !(early > mid && mid > late) {
		t.Fatalf("loss not decreasing: %.3f %.3f %.3f", early, mid, late)
	}
	// Converges near the floor.
	if late > c.FloorLoss+3*c.NoiseAmplitude {
		t.Fatalf("late loss %.3f far above floor %.3f", late, c.FloorLoss)
	}
}

func TestLossCurveDeterministic(t *testing.T) {
	c := CurveFor(VGG16, 7)
	if c.LossAt(12345) != c.LossAt(12345) {
		t.Fatal("loss not deterministic")
	}
	c2 := CurveFor(VGG16, 8)
	if c.LossAt(12345) == c2.LossAt(12345) {
		t.Fatal("seed has no effect on noise")
	}
}

func TestHeavierModelsConvergeSlowerPerImage(t *testing.T) {
	vgg := CurveFor(VGG16, 1)
	goog := CurveFor(GoogLeNet, 1)
	if vgg.DecayImages <= goog.DecayImages {
		t.Fatalf("VGG decay %.0f should exceed GoogLeNet %.0f", vgg.DecayImages, goog.DecayImages)
	}
}

// Property: loss stays within [floor - noise, init + noise] for any
// progress value.
func TestQuickLossBounded(t *testing.T) {
	c := CurveFor(InceptionV3, 3)
	f := func(images uint32) bool {
		l := c.LossAt(int64(images))
		return l >= c.FloorLoss-c.NoiseAmplitude && l <= c.InitLoss+c.NoiseAmplitude
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLossAtNegativeClamps(t *testing.T) {
	c := CurveFor(ResNet50, 1)
	if got, want := c.LossAt(-5), c.LossAt(0); got != want {
		t.Fatalf("negative progress: %.3f != %.3f", got, want)
	}
}
