package trainsim

import (
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/netsim"
)

func baseConfig(m ModelSpec, f Framework, g gpu.Spec, n int) Config {
	return Config{Model: m, Framework: f, GPU: g, NumGPUs: n, BatchPerGPU: 32}
}

func TestModelCatalogLookup(t *testing.T) {
	for _, name := range []string{"vgg16", "resnet50", "inceptionv3", "alexnet", "googlenet"} {
		if _, ok := ModelByName(name); !ok {
			t.Errorf("model %q missing from catalog", name)
		}
	}
	if _, ok := ModelByName("gpt4"); ok {
		t.Error("unknown model resolved")
	}
}

func TestKnownFrameworks(t *testing.T) {
	for _, f := range []Framework{Caffe, TensorFlow, PyTorch, Torch, Horovod} {
		if !KnownFramework(f) {
			t.Errorf("framework %q not known", f)
		}
	}
	if KnownFramework("jax") {
		t.Error("unknown framework accepted")
	}
}

func TestSingleGPUThroughputPlausible(t *testing.T) {
	// Sanity band: VGG-16/Caffe on one K80 trained ~20-40 images/sec in
	// contemporary benchmarks.
	got := baseConfig(VGG16, Caffe, gpu.K80, 1).Throughput()
	if got < 15 || got > 50 {
		t.Fatalf("VGG16/Caffe/K80 throughput = %.1f img/s, want 15-50", got)
	}
	// P100 is several times faster than K80 on the same model.
	k80 := baseConfig(ResNet50, TensorFlow, gpu.K80, 1).Throughput()
	p100 := baseConfig(ResNet50, TensorFlow, gpu.P100, 1).Throughput()
	if p100 < 2.5*k80 {
		t.Fatalf("P100 (%.1f) should be >2.5x K80 (%.1f)", p100, k80)
	}
}

func TestThroughputScalesWithGPUsSublinearly(t *testing.T) {
	for n := 2; n <= 4; n++ {
		c := baseConfig(VGG16, TensorFlow, gpu.P100, n)
		single := baseConfig(VGG16, TensorFlow, gpu.P100, 1)
		tN, t1 := c.Throughput(), single.Throughput()
		if tN <= t1 {
			t.Fatalf("%d GPUs (%.1f) not faster than 1 (%.1f)", n, tN, t1)
		}
		if tN >= float64(n)*t1 {
			t.Fatalf("%d GPUs (%.1f) superlinear vs %.1f", n, tN, t1)
		}
		eff := c.ScalingEfficiency()
		if eff <= 0 || eff >= 1 {
			t.Fatalf("scaling efficiency = %.3f, want (0,1)", eff)
		}
	}
}

func TestNVLinkScalesBetterThanPCIe(t *testing.T) {
	pcie := baseConfig(VGG16, TensorFlow, gpu.P100, 2)
	dgx := baseConfig(VGG16, TensorFlow, gpu.P100SXM2, 2)
	if dgx.ScalingEfficiency() <= pcie.ScalingEfficiency() {
		t.Fatalf("NVLink efficiency (%.3f) should beat PCIe (%.3f)",
			dgx.ScalingEfficiency(), pcie.ScalingEfficiency())
	}
}

func TestCommunicationHeavyModelSuffersMostOverPCIe(t *testing.T) {
	// VGG-16 has 5x the parameters of InceptionV3, so its 2-GPU PCIe
	// penalty versus NVLink must be the largest (the paper's Fig. 3
	// ordering at 2 GPUs: VGG 13.69% > ResNet 10.53% > Inception 10.06%).
	gap := func(m ModelSpec) float64 {
		dlaas := Config{Model: m, Framework: TensorFlow, GPU: gpu.P100, NumGPUs: 2, BatchPerGPU: 32, Overheads: DLaaS()}
		dgx := Config{Model: m, Framework: TensorFlow, GPU: gpu.P100SXM2, NumGPUs: 2, BatchPerGPU: 32}
		return OverheadPercent(dgx, dlaas)
	}
	vgg, rn, inc := gap(VGG16), gap(ResNet50), gap(InceptionV3)
	if !(vgg > rn && rn > 0 && inc > 0) {
		t.Fatalf("gap ordering vgg=%.2f resnet=%.2f inception=%.2f", vgg, rn, inc)
	}
}

func TestDLaaSOverheadSmall(t *testing.T) {
	// Fig. 2 shape: platform overhead stays in single digits.
	for _, m := range []ModelSpec{VGG16, InceptionV3} {
		for n := 1; n <= 4; n++ {
			bare := Config{Model: m, Framework: Caffe, GPU: gpu.K80, NumGPUs: n, BatchPerGPU: 32}
			plat := bare
			plat.Overheads = DLaaS()
			pct := OverheadPercent(bare, plat)
			if pct < -1 || pct > 9 {
				t.Fatalf("%s x%d overhead = %.2f%%, want within (-1,9)", m.Name, n, pct)
			}
		}
	}
}

func TestNoiseDeterministic(t *testing.T) {
	c := Config{Model: VGG16, Framework: Caffe, GPU: gpu.K80, NumGPUs: 2, BatchPerGPU: 32, Overheads: DLaaS()}
	if c.Throughput() != c.Throughput() {
		t.Fatal("throughput not deterministic")
	}
	c2 := c
	c2.Seed = 99
	if c.Throughput() == c2.Throughput() {
		t.Fatal("seed does not perturb noise")
	}
}

func TestDataLinkBottleneck(t *testing.T) {
	// A compute-light model on fast GPUs over a slow data link must be
	// ingest-bound: throughput pinned at link rate / bytes-per-image.
	slow := netsim.Link{Name: "slow", Bandwidth: 10 * netsim.MBps, Latency: 0}
	c := Config{Model: AlexNet, Framework: TensorFlow, GPU: gpu.V100, NumGPUs: 4, BatchPerGPU: 64, DataLink: slow}
	got := c.Throughput()
	maxIngest := float64(slow.Bandwidth) / float64(AlexNet.BytesPerImage)
	if got > maxIngest*1.05 {
		t.Fatalf("throughput %.1f exceeds ingest bound %.1f", got, maxIngest)
	}
}

func TestEpochTimeScalesWithDataset(t *testing.T) {
	c := baseConfig(ResNet50, TensorFlow, gpu.P100, 1)
	small := c.EpochTime(10_000)
	big := c.EpochTime(100_000)
	if big < 9*small {
		t.Fatalf("epoch time not ~linear: %v vs %v", small, big)
	}
}

func TestCheckpointCost(t *testing.T) {
	c := baseConfig(VGG16, TensorFlow, gpu.P100, 1)
	if c.CheckpointBytes() != 4*VGG16.Params {
		t.Fatalf("checkpoint bytes = %d", c.CheckpointBytes())
	}
	// 552 MB over 1GbE ≈ 4.7s.
	d := c.CheckpointTime()
	if d.Seconds() < 3 || d.Seconds() > 8 {
		t.Fatalf("checkpoint time = %v, want 3-8s", d)
	}
	// Small models checkpoint faster.
	small := baseConfig(GoogLeNet, TensorFlow, gpu.P100, 1)
	if small.CheckpointTime() >= d {
		t.Fatal("GoogLeNet checkpoint should be faster than VGG16")
	}
}

func TestParameterServerSlowerThanAllReduceOnThinPipes(t *testing.T) {
	ar := Config{Model: VGG16, Framework: TensorFlow, GPU: gpu.P100, NumGPUs: 4, BatchPerGPU: 32,
		Sync: SyncAllReduce, Interconnect: netsim.Ethernet1G}
	ps := ar
	ps.Sync = SyncParameterServer
	if ps.Throughput() >= ar.Throughput() {
		t.Fatalf("PS (%.1f) should be slower than all-reduce (%.1f) at 4 workers",
			ps.Throughput(), ar.Throughput())
	}
}

func TestMemoryFits(t *testing.T) {
	// ResNet-50 batch 32 fits a K80 (12 GB); VGG-16 batch 64 does not
	// (64 * 180MB activations alone exceed it).
	ok := Config{Model: ResNet50, Framework: TensorFlow, GPU: gpu.K80, NumGPUs: 1, BatchPerGPU: 32}
	if !ok.FitsMemory() {
		t.Fatalf("resnet50@32 should fit K80 (needs %d MB)", ok.MemoryRequiredBytes()>>20)
	}
	oom := Config{Model: VGG16, Framework: TensorFlow, GPU: gpu.K80, NumGPUs: 1, BatchPerGPU: 64}
	if oom.FitsMemory() {
		t.Fatalf("vgg16@64 should OOM a K80 (needs %d MB)", oom.MemoryRequiredBytes()>>20)
	}
}

// Property: memory requirement is monotone in batch size.
func TestQuickMemoryMonotoneInBatch(t *testing.T) {
	f := func(a, b uint8) bool {
		ba, bb := int(a)+1, int(b)+1
		if ba > bb {
			ba, bb = bb, ba
		}
		ca := Config{Model: InceptionV3, Framework: TensorFlow, GPU: gpu.P100, BatchPerGPU: ba}
		cb := ca
		cb.BatchPerGPU = bb
		return ca.MemoryRequiredBytes() <= cb.MemoryRequiredBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: throughput is positive and step time monotone in batch size.
func TestQuickStepTimeMonotoneInBatch(t *testing.T) {
	f := func(a, b uint8) bool {
		ba, bb := int(a%64)+1, int(b%64)+1
		if ba > bb {
			ba, bb = bb, ba
		}
		ca := Config{Model: ResNet50, Framework: TensorFlow, GPU: gpu.P100, NumGPUs: 1, BatchPerGPU: ba}
		cb := ca
		cb.BatchPerGPU = bb
		return ca.StepTime() <= cb.StepTime() && ca.Throughput() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: adding platform overheads never increases throughput.
func TestQuickOverheadsNeverHelp(t *testing.T) {
	f := func(n uint8) bool {
		gpus := int(n%4) + 1
		bare := Config{Model: InceptionV3, Framework: TensorFlow, GPU: gpu.K80, NumGPUs: gpus, BatchPerGPU: 32}
		plat := bare
		plat.Overheads = Overheads{ContainerFraction: 0.012, HelperFraction: 0.004}
		return plat.Throughput() <= bare.Throughput()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionCheckpointCostModel(t *testing.T) {
	cfg := baseConfig(VGG16, TensorFlow, gpu.P100, 1)
	stall := cfg.CheckpointStallTime()
	if stall <= 0 {
		t.Fatalf("stall time = %v, want > 0", stall)
	}
	// The on-demand cost decomposes exactly into device stall + upload —
	// the floor an EvictionGracePeriod must clear to be useful.
	if got, want := cfg.EvictionCheckpointTime(), stall+cfg.CheckpointTime(); got != want {
		t.Fatalf("eviction checkpoint time = %v, want stall %v + upload %v = %v", got, stall, cfg.CheckpointTime(), want)
	}
	// The device serialization (host link) is the minor term: the shared
	// 1GbE upload dominates, as it does for periodic checkpoints.
	if stall >= cfg.CheckpointTime() {
		t.Errorf("device stall %v should undercut the network upload %v", stall, cfg.CheckpointTime())
	}
}
