package raft

import (
	"testing"
	"time"
)

// TestLeaderPrefersHighestTermDuringPartition is the regression test for
// the stale-leader shadow bug: during a partition the deposed leader
// still believes it leads in its old term, so two nodes report the
// Leader state at once. The old Cluster.Leader() returned whichever
// Leader-state node map iteration yielded first, routing proposals — and
// any naive read path — to the stale one; the fixed version breaks the
// tie by term.
func TestLeaderPrefersHighestTermDuringPartition(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	stale := c.WaitLeader(5 * time.Second)
	if stale == nil {
		t.Fatal("no leader")
	}
	staleTerm := stale.Term()
	c.Transport().Partition(stale.ID())

	// The majority elects a successor at a higher term while the stale
	// leader, hearing nothing, keeps its Leader state.
	deadline := clk.Now().Add(15 * time.Second)
	var successor *Node
	for clk.Now().Before(deadline) {
		for _, id := range c.IDs() {
			if id == stale.ID() {
				continue
			}
			if n := c.Node(id); n != nil && n.State() == Leader {
				successor = n
			}
		}
		if successor != nil {
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}
	if successor == nil {
		t.Fatal("majority did not elect a successor")
	}
	if successor.Term() <= staleTerm {
		t.Fatalf("successor term %d not above stale term %d", successor.Term(), staleTerm)
	}
	if stale.State() != Leader {
		t.Skip("stale leader stepped down early; the ambiguity window did not occur")
	}

	// The hazard is real: the old first-match scan can return the stale
	// leader. Replay the old algorithm until it does (map iteration
	// order varies per range; a handful of tries suffices).
	oldLeaderScan := func() *Node {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, n := range c.nodes {
			if n != nil && n.State() == Leader {
				return n
			}
		}
		return nil
	}
	staleSeen := false
	for i := 0; i < 200 && !staleSeen; i++ {
		if n := oldLeaderScan(); n != nil && n.ID() == stale.ID() {
			staleSeen = true
		}
	}
	if !staleSeen {
		t.Fatal("old algorithm never returned the stale leader; regression scenario not exercised")
	}

	// The fix: Leader() must return the highest-term leader every time.
	for i := 0; i < 200; i++ {
		l := c.Leader()
		if l == nil {
			t.Fatal("Leader() = nil with two Leader-state nodes")
		}
		if l.ID() == stale.ID() {
			t.Fatalf("Leader() returned the stale leader (term %d) over the successor (term %d)",
				staleTerm, successor.Term())
		}
	}

	// After healing, the stale leader steps down and the cluster
	// converges on the successor.
	c.Transport().Heal(stale.ID())
	deadline = clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) && stale.State() == Leader {
		clk.Sleep(20 * time.Millisecond)
	}
	if stale.State() == Leader {
		t.Fatal("stale leader never stepped down after heal")
	}
}
