package raft

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// Transport delivers messages between the nodes of one cluster. Delivery
// is asynchronous with a small modeled latency; messages to crashed
// (detached) or partitioned nodes are dropped, which is exactly the
// failure model Raft is designed for.
type Transport struct {
	clk     clock.Clock
	latency time.Duration

	mu          sync.Mutex
	inboxes     map[int]chan<- envelope
	partitioned map[int]bool
	delays      map[int]time.Duration
	dropped     int
}

// NewTransport creates an empty transport on clk with per-message latency d.
func NewTransport(clk clock.Clock, d time.Duration) *Transport {
	return &Transport{
		clk:         clk,
		latency:     d,
		inboxes:     make(map[int]chan<- envelope),
		partitioned: make(map[int]bool),
		delays:      make(map[int]time.Duration),
	}
}

// SetNodeDelay adds extra one-way latency to every message addressed to
// id, modeling a slow follower (congested link, overloaded replica).
// A non-positive d removes the extra delay.
func (t *Transport) SetNodeDelay(id int, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d <= 0 {
		delete(t.delays, id)
		return
	}
	t.delays[id] = d
}

func (t *Transport) attach(id int, inbox chan<- envelope) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inboxes[id] = inbox
}

func (t *Transport) detach(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.inboxes, id)
}

// Partition isolates id: messages to and from it are dropped until healed.
func (t *Transport) Partition(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned[id] = true
}

// Heal reconnects id to the rest of the cluster.
func (t *Transport) Heal(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.partitioned, id)
}

// Dropped reports how many messages were discarded (crashed or
// partitioned destinations, full inboxes).
func (t *Transport) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// send delivers msg from -> to after the modeled latency. Lossy by design.
func (t *Transport) send(from, to int, msg any) {
	t.mu.Lock()
	inbox, ok := t.inboxes[to]
	blocked := t.partitioned[from] || t.partitioned[to]
	latency := t.latency + t.delays[to]
	if !ok || blocked {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()

	env := envelope{from: from, msg: msg}
	if latency <= 0 {
		t.deliver(to, inbox, env)
		return
	}
	t.clk.AfterFunc(latency, func() { t.deliver(to, inbox, env) })
}

func (t *Transport) deliver(to int, inbox chan<- envelope, env envelope) {
	// Re-check liveness at delivery time: the destination may have
	// crashed while the message was in flight.
	t.mu.Lock()
	cur, ok := t.inboxes[to]
	blocked := t.partitioned[to]
	t.mu.Unlock()
	if !ok || cur != inbox || blocked {
		t.mu.Lock()
		t.dropped++
		t.mu.Unlock()
		return
	}
	select {
	case inbox <- env:
	default:
		// Inbox overflow models packet loss under overload.
		t.mu.Lock()
		t.dropped++
		t.mu.Unlock()
	}
}
