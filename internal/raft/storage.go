package raft

import "sync"

// PersistentState is what a node must not lose across crashes (§5.1 of the
// Raft paper): its term, vote, and log — plus the compaction snapshot
// (§7): the application state through SnapIndex, which replaces all log
// entries at or below it.
type PersistentState struct {
	Term     uint64
	VotedFor int
	// Log holds entries with Index > SnapIndex.
	Log []Entry
	// SnapIndex/SnapTerm identify the last entry covered by Snapshot.
	SnapIndex uint64
	SnapTerm  uint64
	// Snapshot is the application state machine serialized at SnapIndex.
	Snapshot []byte
}

// MemoryStorage models a node's durable disk. It survives node crashes
// (the Node object is discarded; the storage is reused on restart) but not
// "disk loss", which Raft does not tolerate.
type MemoryStorage struct {
	mu    sync.Mutex
	state PersistentState
	saves int
}

// NewMemoryStorage returns an empty store for a fresh node.
func NewMemoryStorage() *MemoryStorage {
	return &MemoryStorage{state: PersistentState{VotedFor: -1}}
}

// Save atomically persists the node's state. The log is copied (the
// node truncates and appends it in place); the snapshot is aliased —
// snapshot slices are immutable once taken (Compact and snapshot
// installs replace the slice wholesale), and Save runs on every log
// append, so copying the full image here would dominate write cost.
func (m *MemoryStorage) Save(s PersistentState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	logCopy := make([]Entry, len(s.Log))
	copy(logCopy, s.Log)
	s.Log = logCopy
	m.state = s
	m.saves++
}

// Load returns the last persisted state.
func (m *MemoryStorage) Load() PersistentState {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.state
	logCopy := make([]Entry, len(s.Log))
	copy(logCopy, s.Log)
	s.Log = logCopy
	return s
}

// Saves reports how many times Save was called (write-amplification
// metric used by the ablation benches).
func (m *MemoryStorage) Saves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves
}
