package raft

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

// TestQuickCommittedPrefixAgreement: for random schedules of proposals
// interleaved with crash/restart of random followers, every pair of
// live nodes agrees on the committed prefix (State Machine Safety).
func TestQuickCommittedPrefixAgreement(t *testing.T) {
	f := func(schedule []uint8) bool {
		if len(schedule) > 12 {
			schedule = schedule[:12]
		}
		clk := clock.NewSim()
		defer clk.Close()
		c := NewCluster(3, DefaultConfig(clk))
		defer c.Stop()

		proposed := 0
		for _, op := range schedule {
			switch op % 4 {
			case 0, 1, 2: // propose
				if !proposeQuick(c, clk, fmt.Sprintf("v%d", proposed)) {
					return false
				}
				proposed++
			case 3: // crash+restart a non-leader
				l := c.Leader()
				for _, id := range c.IDs() {
					if l == nil || id != l.ID() {
						c.Crash(id)
						c.Restart(id)
						break
					}
				}
			}
		}
		if proposed == 0 {
			return true
		}
		// Wait for convergence: every live node applies all proposals.
		applied := make(map[int][]Entry)
		deadline := clk.Now().Add(30 * time.Second)
		for clk.Now().Before(deadline) {
			done := true
			for _, id := range c.IDs() {
				n := c.Node(id)
				if n == nil {
					continue
				}
				for len(applied[id]) < proposed {
					select {
					case a := <-n.ApplyCh():
						applied[id] = append(applied[id], a.Entry)
					default:
					}
					if len(applied[id]) < proposed {
						done = false
						break
					}
				}
			}
			if done {
				break
			}
			clk.Sleep(20 * time.Millisecond)
		}
		// Check pairwise prefix agreement over what was applied.
		ref := applied[0]
		for _, id := range c.IDs()[1:] {
			other := applied[id]
			n := len(ref)
			if len(other) < n {
				n = len(other)
			}
			for i := 0; i < n; i++ {
				if ref[i].Index != other[i].Index || ref[i].Term != other[i].Term ||
					!bytes.Equal(ref[i].Cmd, other[i].Cmd) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLeaderAppendOnly: a leader never overwrites or deletes its
// own log entries (Leader Append-Only property), observed across
// repeated proposals.
func TestQuickLeaderAppendOnly(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	c := NewCluster(3, DefaultConfig(clk))
	defer c.Stop()

	var prev []Entry
	for i := 0; i < 10; i++ {
		if !proposeQuick(c, clk, fmt.Sprintf("x%d", i)) {
			t.Fatal("proposal failed")
		}
		l := c.Leader()
		if l == nil {
			continue
		}
		cur := l.Log()
		if len(cur) < len(prev) {
			t.Fatalf("leader log shrank: %d -> %d", len(prev), len(cur))
		}
		for j := range prev {
			if prev[j].Term != cur[j].Term || !bytes.Equal(prev[j].Cmd, cur[j].Cmd) {
				// A log prefix may legitimately change across leader
				// changes, but not on a stable leader; tolerate only
				// if leadership moved.
				if cur[j].Term == prev[j].Term {
					t.Fatalf("entry %d mutated within a term", j)
				}
			}
		}
		prev = cur
	}
}

// TestQuickVotesArePersisted: a node never votes twice in the same term,
// even across crash/restart (persistent votedFor).
func TestQuickVotesArePersisted(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	c := NewCluster(5, DefaultConfig(clk))
	defer c.Stop()

	if c.WaitLeader(5*time.Second) == nil {
		t.Fatal("no leader")
	}
	// Hammer crash/restart cycles; election safety is validated by the
	// cluster continuing to make progress with a single leader per term.
	for round := 0; round < 4; round++ {
		id := round % 5
		c.Crash(id)
		clk.Sleep(50 * time.Millisecond)
		c.Restart(id)
		if !proposeQuick(c, clk, fmt.Sprintf("r%d", round)) {
			t.Fatalf("round %d: cluster stopped accepting proposals", round)
		}
	}
	leaders := 0
	terms := make(map[uint64]int)
	for _, id := range c.IDs() {
		n := c.Node(id)
		if n != nil && n.State() == Leader {
			leaders++
			terms[n.Term()]++
			if terms[n.Term()] > 1 {
				t.Fatal("two leaders in one term")
			}
		}
	}
	if leaders == 0 {
		if c.WaitLeader(5*time.Second) == nil {
			t.Fatal("no leader after churn")
		}
	}
}

// TestQuickPipelineEquivalence: pipelined replication is a pure transport
// optimization — for any schedule of proposals, follower crash/restarts,
// and follower partitions, the applied history (index, term, command on
// every node) must be identical to stop-and-wait replication running the
// same schedule. A rewind bug or a window-accounting bug would surface as
// reordered, duplicated, or dropped commands in one mode only.
func TestQuickPipelineEquivalence(t *testing.T) {
	run := func(schedule []uint8, pipelined bool) ([][]Entry, bool) {
		clk := clock.NewSim()
		defer clk.Close()
		cfg := DefaultConfig(clk)
		if !pipelined {
			cfg.MaxInflightEntries = 1 // stop-and-wait
		}
		c := NewCluster(3, cfg)
		defer c.Stop()

		// Fence: wait until the accepted burst is committed. Faults are
		// injected only at fences — a proposal accepted by a leader that
		// is deposed across a heal may be legitimately lost (Raft permits
		// it), which would make the two runs incomparable; proposals
		// within a burst still overlap and exercise the pipeline window.
		var lastIdx uint64
		fence := func() bool {
			deadline := clk.Now().Add(30 * time.Second)
			for clk.Now().Before(deadline) {
				if l := c.Leader(); l != nil && l.CommitIndex() >= lastIdx {
					return true
				}
				clk.Sleep(20 * time.Millisecond)
			}
			return false
		}
		propose := func(cmd string) bool {
			deadline := clk.Now().Add(10 * time.Second)
			for clk.Now().Before(deadline) {
				if l := c.WaitLeader(2 * time.Second); l != nil {
					if idx, _, err := l.Propose([]byte(cmd)); err == nil {
						lastIdx = idx
						return true
					}
				}
				clk.Sleep(20 * time.Millisecond)
			}
			return false
		}

		proposed := 0
		for _, op := range schedule {
			switch op % 4 {
			case 0, 1: // propose (bursted; no wait between proposals)
				if !propose(fmt.Sprintf("eq%d", proposed)) {
					return nil, false
				}
				proposed++
			case 2: // crash+restart a non-leader
				if !fence() {
					return nil, false
				}
				l := c.Leader()
				for _, id := range c.IDs() {
					if l == nil || id != l.ID() {
						c.Crash(id)
						c.Restart(id)
						break
					}
				}
			case 3: // partition then heal a non-leader
				if !fence() {
					return nil, false
				}
				// 60ms keeps the follower's silent gap (partition plus
				// one heartbeat interval) under ElectionTimeoutMin, so
				// the heal cannot trigger a disruptive election that
				// would depose the leader and legitimately lose an
				// accepted proposal — which would make the two modes
				// incomparable. In-flight pipelined entries are still
				// dropped, exercising the reject/rewind path. The
				// post-heal sleep lets a heartbeat land and reset the
				// follower's election timer before any back-to-back
				// partition op isolates it again.
				l := c.Leader()
				for _, id := range c.IDs() {
					if l == nil || id != l.ID() {
						c.Transport().Partition(id)
						clk.Sleep(60 * time.Millisecond)
						c.Transport().Heal(id)
						clk.Sleep(60 * time.Millisecond)
						break
					}
				}
			}
		}
		// A closing proposal forces the leader to replicate past any
		// partition-era gap so every node converges on the full history.
		if !propose(fmt.Sprintf("eq%d", proposed)) {
			return nil, false
		}
		proposed++
		if !fence() {
			return nil, false
		}

		applied := make(map[int][]Entry)
		deadline := clk.Now().Add(60 * time.Second)
		for clk.Now().Before(deadline) {
			done := true
			for _, id := range c.IDs() {
				n := c.Node(id)
				if n == nil {
					continue
				}
				for len(applied[id]) < proposed {
					select {
					case a := <-n.ApplyCh():
						if !a.IsSnapshot {
							applied[id] = append(applied[id], a.Entry)
						}
					default:
					}
					if len(applied[id]) < proposed {
						done = false
						break
					}
				}
			}
			if done {
				break
			}
			clk.Sleep(20 * time.Millisecond)
		}
		out := make([][]Entry, 0, 3)
		for _, id := range c.IDs() {
			if len(applied[id]) < proposed {
				return nil, false // did not converge
			}
			out = append(out, applied[id][:proposed])
		}
		return out, true
	}

	f := func(schedule []uint8) bool {
		if len(schedule) > 10 {
			schedule = schedule[:10]
		}
		stopWait, ok := run(schedule, false)
		if !ok {
			return false
		}
		pipelined, ok := run(schedule, true)
		if !ok {
			return false
		}
		for n := range stopWait {
			for i := range stopWait[n] {
				a, b := stopWait[n][i], pipelined[n][i]
				if a.Index != b.Index || !bytes.Equal(a.Cmd, b.Cmd) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// proposeQuick proposes on the current leader, retrying briefly.
func proposeQuick(c *Cluster, clk *clock.Sim, cmd string) bool {
	deadline := clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		l := c.WaitLeader(2 * time.Second)
		if l != nil {
			if _, _, err := l.Propose([]byte(cmd)); err == nil {
				return true
			}
		}
		clk.Sleep(20 * time.Millisecond)
	}
	return false
}
