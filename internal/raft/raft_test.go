package raft

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
)

func newTestCluster(t *testing.T, n int) (*Cluster, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	c := NewCluster(n, DefaultConfig(clk))
	t.Cleanup(func() {
		c.Stop()
		clk.Close()
	})
	return c, clk
}

// waitCommitted drains apply channels until each live node has applied at
// least want entries, returning them per node.
func waitCommitted(t *testing.T, c *Cluster, clk *clock.Sim, want int, timeout time.Duration) map[int][]Entry {
	t.Helper()
	got := make(map[int][]Entry)
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		done := true
		for _, id := range c.IDs() {
			n := c.Node(id)
			if n == nil {
				continue
			}
			for len(got[id]) < want {
				select {
				case a := <-n.ApplyCh():
					got[id] = append(got[id], a.Entry)
				default:
					done = false
				}
				if len(got[id]) < want {
					break
				}
			}
			if len(got[id]) < want {
				done = false
			}
		}
		if done {
			return got
		}
		clk.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %d committed entries; got %v", want, lengths(got))
	return nil
}

func lengths(m map[int][]Entry) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = len(v)
	}
	return out
}

func proposeOK(t *testing.T, c *Cluster, clk *clock.Sim, cmd string) uint64 {
	t.Helper()
	deadline := clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		l := c.WaitLeader(5 * time.Second)
		if l == nil {
			continue
		}
		idx, _, err := l.Propose([]byte(cmd))
		if err == nil {
			return idx
		}
		clk.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("could not propose %q", cmd)
	return 0
}

func TestSingleNodeElectsAndCommits(t *testing.T) {
	c, clk := newTestCluster(t, 1)
	l := c.WaitLeader(2 * time.Second)
	if l == nil {
		t.Fatal("no leader in single-node cluster")
	}
	idx, term, err := l.Propose([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || term == 0 {
		t.Fatalf("idx=%d term=%d", idx, term)
	}
	got := waitCommitted(t, c, clk, 1, 5*time.Second)
	if string(got[0][0].Cmd) != "x" {
		t.Fatalf("applied %q, want x", got[0][0].Cmd)
	}
}

func TestThreeNodeElection(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader elected")
	}
	// Exactly one leader.
	leaders := 0
	for _, id := range c.IDs() {
		if n := c.Node(id); n != nil && n.State() == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want 1", leaders)
	}
}

func TestReplicationToAllNodes(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	for i := 0; i < 5; i++ {
		proposeOK(t, c, clk, fmt.Sprintf("cmd-%d", i))
	}
	got := waitCommitted(t, c, clk, 5, 10*time.Second)
	for _, id := range c.IDs() {
		for i, e := range got[id] {
			want := fmt.Sprintf("cmd-%d", i)
			if string(e.Cmd) != want {
				t.Fatalf("node %d entry %d = %q, want %q", id, i, e.Cmd, want)
			}
		}
	}
}

func TestLeaderCrashFailover(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	proposeOK(t, c, clk, "before-crash")
	old := l.ID()
	c.Crash(old)

	// A new leader must emerge among the survivors.
	deadline := clk.Now().Add(10 * time.Second)
	var nl *Node
	for clk.Now().Before(deadline) {
		nl = c.Leader()
		if nl != nil && nl.ID() != old {
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}
	if nl == nil || nl.ID() == old {
		t.Fatal("no failover leader elected")
	}
	// The committed entry must survive and new proposals must commit.
	proposeOK(t, c, clk, "after-crash")
	got := waitCommitted(t, c, clk, 2, 10*time.Second)
	for _, id := range c.IDs() {
		if id == old {
			continue
		}
		if string(got[id][0].Cmd) != "before-crash" || string(got[id][1].Cmd) != "after-crash" {
			t.Fatalf("node %d log = %v", id, cmds(got[id]))
		}
	}
}

func TestCrashedFollowerCatchesUpOnRestart(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	// Crash a follower, commit entries without it, restart, verify catch-up.
	var follower int = -1
	for _, id := range c.IDs() {
		if id != l.ID() {
			follower = id
			break
		}
	}
	c.Crash(follower)
	for i := 0; i < 3; i++ {
		proposeOK(t, c, clk, fmt.Sprintf("e%d", i))
	}
	c.Restart(follower)
	got := waitCommitted(t, c, clk, 3, 15*time.Second)
	want := []string{"e0", "e1", "e2"}
	for i, w := range want {
		if string(got[follower][i].Cmd) != w {
			t.Fatalf("restarted follower log = %v, want %v", cmds(got[follower]), want)
		}
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	// Partition the leader away from both followers.
	c.Transport().Partition(l.ID())
	// The old leader may still accept proposals but must not commit them.
	idx, _, err := l.Propose([]byte("lost"))
	if err == nil {
		deadline := clk.Now().Add(2 * time.Second)
		for clk.Now().Before(deadline) {
			if l.CommitIndex() >= idx {
				t.Fatal("entry committed without majority")
			}
			clk.Sleep(50 * time.Millisecond)
		}
	}
	// The majority side elects a fresh leader and commits.
	deadline := clk.Now().Add(10 * time.Second)
	var nl *Node
	for clk.Now().Before(deadline) {
		for _, id := range c.IDs() {
			if id == l.ID() {
				continue
			}
			if n := c.Node(id); n != nil && n.State() == Leader {
				nl = n
			}
		}
		if nl != nil {
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}
	if nl == nil {
		t.Fatal("majority did not elect a leader")
	}
	if _, _, err := nl.Propose([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	// Heal: the old leader must step down and converge.
	c.Transport().Heal(l.ID())
	deadline = clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		if l.State() == Follower {
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}
	if l.State() != Follower {
		t.Fatalf("old leader state = %v, want follower", l.State())
	}
}

// TestElectionSafety: across a barrage of crashes and restarts, no term
// ever has two leaders. This is Raft's core safety property.
func TestElectionSafety(t *testing.T) {
	c, clk := newTestCluster(t, 5)
	leadersByTerm := make(map[uint64]int)

	check := func() {
		for _, id := range c.IDs() {
			n := c.Node(id)
			if n == nil || n.State() != Leader {
				continue
			}
			term := n.Term()
			if prev, ok := leadersByTerm[term]; ok && prev != id {
				t.Fatalf("term %d has two leaders: %d and %d", term, prev, id)
			}
			leadersByTerm[term] = id
		}
	}

	for round := 0; round < 5; round++ {
		if l := c.WaitLeader(5 * time.Second); l == nil {
			t.Fatal("no leader")
		}
		check()
		victim := round % 5
		c.Crash(victim)
		for i := 0; i < 20; i++ {
			check()
			clk.Sleep(20 * time.Millisecond)
		}
		c.Restart(victim)
	}
}

// TestLogMatching: after heavy churn, all live nodes' committed prefixes
// agree entry-by-entry (Log Matching property).
func TestLogMatching(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	for i := 0; i < 10; i++ {
		proposeOK(t, c, clk, fmt.Sprintf("op%d", i))
		if i == 4 {
			// Mid-stream follower crash.
			l := c.Leader()
			if l != nil {
				for _, id := range c.IDs() {
					if id != l.ID() {
						c.Crash(id)
						c.Restart(id)
						break
					}
				}
			}
		}
	}
	got := waitCommitted(t, c, clk, 10, 20*time.Second)
	ref := got[c.IDs()[0]]
	for _, id := range c.IDs()[1:] {
		other := got[id]
		for i := range ref {
			if other[i].Index != ref[i].Index || other[i].Term != ref[i].Term ||
				!bytes.Equal(other[i].Cmd, ref[i].Cmd) {
				t.Fatalf("log mismatch at %d: node0=%v node%d=%v", i, ref[i], id, other[i])
			}
		}
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	for _, id := range c.IDs() {
		n := c.Node(id)
		if n.ID() == l.ID() {
			continue
		}
		if _, _, err := n.Propose([]byte("nope")); err != ErrNotLeader {
			t.Fatalf("follower Propose err = %v, want ErrNotLeader", err)
		}
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	proposeOK(t, c, clk, "durable")
	waitCommitted(t, c, clk, 1, 10*time.Second)

	// Restart every node one at a time; the log must persist.
	for _, id := range c.IDs() {
		c.Crash(id)
		c.Restart(id)
	}
	deadline := clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		n := c.Node(0)
		log := n.Log()
		if len(log) >= 1 && string(log[0].Cmd) == "durable" {
			return
		}
		clk.Sleep(50 * time.Millisecond)
	}
	t.Fatal("log lost across restart")
}

func cmds(es []Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = string(e.Cmd)
	}
	return out
}
