// Package raft implements the Raft consensus protocol (Ongaro & Ousterhout,
// USENIX ATC 2014): leader election, log replication, and commitment. It
// backs the replicated etcd-style key-value store that the DLaaS platform
// uses for reliable learner-status updates.
//
// The implementation is complete enough to exercise the paper's
// dependability claims: a 3-way replicated store keeps accepting writes
// while any minority of nodes is crashed, and crashed nodes recover from
// their persisted term/vote/log state.
//
// Replication is pipelined by default: the leader keeps a bounded
// in-flight window per follower, advances nextIndex optimistically as it
// sends, and rewinds on a consistency reject — instead of re-shipping the
// full log suffix every broadcast and waiting one round per batch.
// Lagging followers catch up through streamed snapshot chunks rather than
// one monolithic installSnapshot message. Config.MaxInflightEntries <= 1
// restores the stop-and-wait behavior as an A/B escape hatch.
//
// The linearizable read path is quorum-amortized: concurrent ReadIndex
// calls coalesce onto shared leadership-confirmation rounds (group
// commit for reads), and each quorum-confirmed heartbeat round extends a
// check-quorum lease of ElectionTimeoutMin - MaxClockDrift during which
// reads are answered from the commit index with zero messages. The
// lease dies on step-down and on observed node-clock skew beyond the
// drift bound; Config.LeaseReads / Config.CoalesceReads (and the
// matching runtime setters) restore the one-round-per-read PR 5
// behavior as the A/B escape hatch.
package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// State is the role a node currently plays.
type State int

// Raft node roles.
const (
	Follower State = iota + 1
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Entry is a single replicated log record.
type Entry struct {
	Index uint64
	Term  uint64
	Cmd   []byte
}

// Apply is delivered on the apply channel when an entry commits, or when
// a leader installs a snapshot on a lagging follower (IsSnapshot set; the
// application must replace its state with the snapshot contents).
type Apply struct {
	Entry Entry
	// IsSnapshot marks a snapshot installation instead of an entry.
	IsSnapshot bool
	// Snapshot is the serialized application state through SnapIndex.
	Snapshot []byte
	// SnapIndex is the last log index the snapshot covers.
	SnapIndex uint64
}

// ErrNotLeader is returned by Propose on non-leader nodes.
var ErrNotLeader = errors.New("raft: not leader")

// ErrStopped is returned when the node has been crashed or shut down.
var ErrStopped = errors.New("raft: node stopped")

// ErrNoLeader is returned by ReadIndex on a node that knows no leader to
// forward to.
var ErrNoLeader = errors.New("raft: no leader known")

// ErrReadTimeout is returned when a ReadIndex round did not gather a
// quorum of heartbeat acks in time (partitioned or deposed leader).
var ErrReadTimeout = errors.New("raft: read index timed out")

// Config holds tunables shared by the nodes of one cluster.
type Config struct {
	// Clock drives all timeouts.
	Clock clock.Clock
	// ElectionTimeoutMin/Max bound the randomized follower timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's AppendEntries cadence.
	HeartbeatInterval time.Duration
	// Seed makes election randomization reproducible.
	Seed int64

	// MaxInflightEntries bounds how many log entries a leader may have
	// sent to one follower beyond its acknowledged match index before
	// further sends carry no entries (the AppendEntries pipeline
	// window). A value <= 1 disables pipelining entirely: the leader
	// re-ships the full pending suffix on every broadcast and nextIndex
	// advances only on acknowledgment — stop-and-wait, kept as the A/B
	// escape hatch.
	MaxInflightEntries int
	// MaxInflightBytes bounds the same window by summed command bytes.
	MaxInflightBytes int
	// MaxAppendEntries caps how many entries ride in one AppendEntries
	// message when pipelining (0 = no per-message cap).
	MaxAppendEntries int
	// SnapChunkSize is the installSnapshot payload size: a lagging
	// follower catches up through a stream of offset-addressed chunks
	// instead of one monolithic message. <= 0 ships the snapshot whole.
	SnapChunkSize int

	// LeaseReads enables check-quorum leader leases: every heartbeat
	// round a quorum confirms extends a lease of
	// ElectionTimeoutMin - MaxClockDrift from the round's start, and
	// while the lease is live ReadIndex answers from the commit index
	// with zero messages. Togglable at runtime via SetLeaseReads.
	LeaseReads bool
	// CoalesceReads makes concurrent ReadIndex calls share leadership
	// confirmation rounds: while one round is in flight, later reads
	// queue for the next round, which fires when the current one
	// completes — one heartbeat round resolves N reads, exactly like
	// group commit on the write path. Togglable via SetReadCoalescing.
	CoalesceReads bool
	// MaxClockDrift bounds how far apart any two node clocks are assumed
	// to read. It is the lease-read safety margin, enforced three ways:
	// the lease duration is shortened by it, an append ack whose echoed
	// clock reading deviates from the leader's by more than it kills the
	// lease (and blocks re-arming off that follower), and a lease whose
	// local clock has stepped behind the grant instant is refused. A
	// negative value removes ALL three defenses — UNSAFE: a clock step
	// can then leave a deposed leader serving stale lease reads. It
	// exists only so tests can demonstrate the bound is load-bearing.
	MaxClockDrift time.Duration
}

// DefaultConfig mirrors etcd's stock timing (scaled for the simulation)
// with pipelined replication and chunked snapshot streaming enabled.
func DefaultConfig(clk clock.Clock) Config {
	return Config{
		Clock:              clk,
		ElectionTimeoutMin: 150 * time.Millisecond,
		ElectionTimeoutMax: 300 * time.Millisecond,
		HeartbeatInterval:  50 * time.Millisecond,
		Seed:               1,
		MaxInflightEntries: 1024,
		MaxInflightBytes:   1 << 20,
		MaxAppendEntries:   64,
		SnapChunkSize:      32 << 10,
		LeaseReads:         true,
		CoalesceReads:      true,
		MaxClockDrift:      20 * time.Millisecond,
	}
}

// ReplicationStats are cumulative per-node replication counters, the
// observability surface of the pipelined write path.
type ReplicationStats struct {
	// AppendsSent counts AppendEntries messages sent while leading
	// (heartbeats included); EntriesSent the log entries they carried.
	// EntriesSent/AppendsSent is the entries-per-append ratio.
	AppendsSent uint64
	EntriesSent uint64
	// AppendRejects counts log-consistency rejects (nextIndex rewinds).
	AppendRejects uint64
	// SnapChunksSent/SnapBytesSent count streamed snapshot chunks.
	SnapChunksSent uint64
	SnapBytesSent  uint64
}

// ReadStats are cumulative per-node read-path counters, the
// observability surface of the quorum-amortized read path.
type ReadStats struct {
	// Rounds counts leadership-confirmation heartbeat rounds launched
	// for reads; RoundReads the reads those rounds resolved.
	// RoundReads/Rounds is the coalescing ratio, Rounds/total reads the
	// amortized quorum cost per read.
	Rounds     uint64
	RoundReads uint64
	// LeaseReads counts reads answered from a live check-quorum lease
	// with zero messages.
	LeaseReads uint64
	// LeaseExpiries counts lease invalidations (step-down, term change,
	// clock skew beyond the drift bound, runtime disable).
	LeaseExpiries uint64
}

// Node is a single Raft participant.
type Node struct {
	id    int
	peers []int
	cfg   Config
	store *MemoryStorage
	trans *Transport

	mu          sync.Mutex
	state       State
	currentTerm uint64
	votedFor    int     // -1 = none
	log         []Entry // entries with Index > snapIndex
	snapIndex   uint64
	snapTerm    uint64
	snapshot    []byte
	commitIndex uint64
	lastApplied uint64
	leaderID    int

	// Leader volatile state.
	nextIndex  map[int]uint64
	matchIndex map[int]uint64
	votes      map[int]bool

	// snapXfers tracks outbound snapshot streams per follower (leader
	// side); pendingSnap accumulates inbound chunks (follower side).
	snapXfers   map[int]*snapXfer
	pendingSnap *pendingSnapshot

	// Read-index state. hbSeq numbers the leader's heartbeat rounds so a
	// pending read only counts acks sent for rounds at or after its
	// registration; pendingReads are the leadership-confirmation rounds in
	// flight. barrierTerm remembers the term a no-op barrier entry was
	// already proposed for. On followers, readWaiters holds forwarded
	// ReadIndex calls awaiting the leader's answer.
	hbSeq        uint64
	pendingReads []*pendingRead
	barrierTerm  uint64
	readSeq      uint64
	readWaiters  map[uint64]chan readIndexResult

	// Check-quorum lease state (leader only). The lease is valid for
	// local clock readings in [leaseFrom, leaseUntil) during leaseTerm.
	// roundStart timestamps each heartbeat round at broadcast; ackSeq is
	// the highest round each follower has acked; skewBad marks followers
	// whose last ack's clock echo exceeded MaxClockDrift (their acks
	// cannot extend the lease until a clean echo clears them);
	// lastLeaseRound is the newest round that extended the lease.
	leaseFrom      time.Time
	leaseUntil     time.Time
	leaseTerm      uint64
	lastLeaseRound uint64
	roundStart     map[uint64]time.Time
	ackSeq         map[int]uint64
	skewBad        map[int]bool
	leaseOn        atomic.Bool
	coalesceOn     atomic.Bool

	rng           *rand.Rand
	electionTimer clock.Timer
	heartbeatTick clock.Ticker

	// applyQueue decouples commit detection from applyCh consumption:
	// every handler enqueues under mu and one drainer goroutine forwards
	// in order, so applies can never interleave out of log order.
	applyQueue []Apply
	applyKick  chan struct{}
	drainDone  chan struct{}

	// Replication counters (see ReplicationStats), mirrored into a
	// metrics registry when the cluster is instrumented.
	statAppends    atomic.Uint64
	statEntries    atomic.Uint64
	statRejects    atomic.Uint64
	statSnapChunks atomic.Uint64
	statSnapBytes  atomic.Uint64

	// Read-path counters (see ReadStats).
	statReadRounds    atomic.Uint64
	statRoundReads    atomic.Uint64
	statLeaseReads    atomic.Uint64
	statLeaseExpiries atomic.Uint64

	mtr      atomic.Pointer[metrics.Registry]
	mtrLabel string

	applyCh chan Apply
	inbox   chan envelope
	stopCh  chan struct{}
	done    chan struct{}
	stopped bool
}

type envelope struct {
	from int
	msg  any
}

// message types exchanged between nodes.
type (
	requestVote struct {
		Term         uint64
		Candidate    int
		LastLogIndex uint64
		LastLogTerm  uint64
	}
	requestVoteResp struct {
		Term    uint64
		Granted bool
	}
	appendEntries struct {
		Term         uint64
		Leader       int
		PrevLogIndex uint64
		PrevLogTerm  uint64
		Entries      []Entry
		LeaderCommit uint64
		// Seq is the leader's heartbeat-round number; the response echoes
		// it so ReadIndex rounds can tell which acks postdate them.
		Seq uint64
	}
	appendEntriesResp struct {
		Term       uint64
		Success    bool
		MatchIndex uint64
		// ConflictIndex lets the leader back up nextIndex quickly.
		ConflictIndex uint64
		// Seq echoes appendEntries.Seq (0 for snapshot-install acks).
		Seq uint64
		// LocalTime is the responder's clock reading when it acked. The
		// leader compares it against its own reading: a deviation beyond
		// MaxClockDrift means one of the two clocks stepped, so the
		// check-quorum lease is killed rather than trusted.
		LocalTime time.Time
	}
	// readIndexReq forwards a follower's ReadIndex call to the leader.
	readIndexReq struct {
		ID uint64
	}
	// readIndexResp answers a forwarded ReadIndex (OK=false: the asked
	// node is not leader, or lost leadership before confirming).
	readIndexResp struct {
		ID    uint64
		Index uint64
		OK    bool
	}
	// installSnapshot carries one chunk of a streamed snapshot (§7,
	// adapted to offset/data/done chunking). Data is the snapshot bytes
	// at Offset; Done marks the final chunk; Total is the full size.
	installSnapshot struct {
		Term      uint64
		Leader    int
		LastIndex uint64
		LastTerm  uint64
		Offset    int
		Data      []byte
		Done      bool
		Total     int
	}
	// installSnapshotResp acks one chunk. NextOffset is the follower's
	// accumulated length — where it wants the next chunk — which lets
	// the leader resynchronize after chunk loss or duplication. Done
	// acks a completed install: LastIndex is durable on the follower.
	installSnapshotResp struct {
		Term       uint64
		LastIndex  uint64
		NextOffset int
		Done       bool
	}
)

// snapXfer is one outbound snapshot stream to a follower. data aliases
// the leader's snapshot bytes: snapshot slices are immutable once taken
// (Compact and snapshot installs replace the slice wholesale, never
// mutate it), so chunking needs no per-send copy.
type snapXfer struct {
	index  uint64
	term   uint64
	data   []byte
	offset int
}

// pendingSnapshot accumulates inbound snapshot chunks on a follower
// until the final (done) chunk installs them wholesale.
type pendingSnapshot struct {
	index uint64
	term  uint64
	data  []byte
}

// readIndexResult is what a ReadIndex call resolves to.
type readIndexResult struct {
	index uint64
	err   error
}

// remoteRead identifies a follower's forwarded ReadIndex awaiting this
// leader's confirmation.
type remoteRead struct {
	node int
	id   uint64
}

// pendingRead is one leadership-confirmation round: the read completes
// with the leader's commit index once a quorum has acked a heartbeat
// round >= seq and the commit index has reached the leader's own term.
// With coalescing, at most one round is started (broadcast) at a time;
// a second, unstarted round accumulates reads that arrived too late to
// join it — an ack may predate a late joiner's registration, so joining
// an in-flight round would hand out a commit index recorded before the
// leadership it proves — and launches when the started round resolves.
type pendingRead struct {
	seq     uint64
	started bool
	acks    map[int]bool
	local   []chan readIndexResult
	remote  []remoteRead
}

// startNode boots a node from its persisted storage and begins its run
// loop. Called by Cluster.
func startNode(id int, peers []int, cfg Config, store *MemoryStorage, trans *Transport) *Node {
	n := &Node{
		id:          id,
		peers:       peers,
		cfg:         cfg,
		store:       store,
		trans:       trans,
		state:       Follower,
		votedFor:    -1,
		leaderID:    -1,
		nextIndex:   make(map[int]uint64),
		matchIndex:  make(map[int]uint64),
		snapXfers:   make(map[int]*snapXfer),
		readWaiters: make(map[uint64]chan readIndexResult),
		roundStart:  make(map[uint64]time.Time),
		ackSeq:      make(map[int]uint64),
		skewBad:     make(map[int]bool),
		rng:         rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
		applyCh:     make(chan Apply, 256),
		applyKick:   make(chan struct{}, 1),
		drainDone:   make(chan struct{}),
		inbox:       make(chan envelope, 256),
		stopCh:      make(chan struct{}),
		done:        make(chan struct{}),
		mtrLabel:    fmt.Sprintf("node%d", id),
	}
	n.leaseOn.Store(cfg.LeaseReads)
	n.coalesceOn.Store(cfg.CoalesceReads)
	// Recover persisted state. Entries at or below the snapshot index
	// were compacted away; applying resumes after the snapshot.
	ps := store.Load()
	n.currentTerm = ps.Term
	n.votedFor = ps.VotedFor
	n.log = append(n.log, ps.Log...)
	n.snapIndex = ps.SnapIndex
	n.snapTerm = ps.SnapTerm
	n.snapshot = ps.Snapshot
	n.commitIndex = ps.SnapIndex
	n.lastApplied = ps.SnapIndex

	trans.attach(id, n.inbox)
	n.electionTimer = cfg.Clock.NewTimer(n.randomElectionTimeout())
	go n.run()
	go n.drainApplies()
	return n
}

// ID returns the node's identity.
func (n *Node) ID() int { return n.id }

// ApplyCh delivers committed entries in log order.
func (n *Node) ApplyCh() <-chan Apply { return n.applyCh }

// Leader reports the node's current belief about the leader (-1 unknown).
func (n *Node) Leader() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderID
}

// State returns the node's current role.
func (n *Node) State() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.currentTerm
}

// Status returns the node's current role and term under one lock
// acquisition, so callers comparing leaders across nodes cannot observe
// a role from one term paired with another term's number.
func (n *Node) Status() (State, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state, n.currentTerm
}

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// ReplicationStats returns the node's cumulative replication counters.
func (n *Node) ReplicationStats() ReplicationStats {
	return ReplicationStats{
		AppendsSent:    n.statAppends.Load(),
		EntriesSent:    n.statEntries.Load(),
		AppendRejects:  n.statRejects.Load(),
		SnapChunksSent: n.statSnapChunks.Load(),
		SnapBytesSent:  n.statSnapBytes.Load(),
	}
}

// ReadStats returns the node's cumulative read-path counters.
func (n *Node) ReadStats() ReadStats {
	return ReadStats{
		Rounds:        n.statReadRounds.Load(),
		RoundReads:    n.statRoundReads.Load(),
		LeaseReads:    n.statLeaseReads.Load(),
		LeaseExpiries: n.statLeaseExpiries.Load(),
	}
}

// MaxInflight reports the deepest unacknowledged pipeline window across
// followers and the window's configured entry cap — the raft half of
// the etcd facade's Backpressure signal. Non-leaders report zero depth.
func (n *Node) MaxInflight() (entries uint64, limit int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	limit = n.cfg.MaxInflightEntries
	if n.state != Leader {
		return 0, limit
	}
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		if e, _ := n.inflightLocked(p); e > entries {
			entries = e
		}
	}
	return entries, limit
}

// SetLeaseReads toggles the check-quorum lease at runtime (the etcd
// layer flips it with the read mode). Disabling kills any live lease
// immediately, so the very next read pays a full confirmation round.
func (n *Node) SetLeaseReads(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.leaseOn.Store(on)
	if !on {
		n.invalidateLeaseLocked()
	}
}

// SetReadCoalescing toggles read-round coalescing at runtime. Turning
// it off restores the PR 5 one-round-per-read behavior (the A/B
// baseline); an already-queued coalesced round still completes.
func (n *Node) SetReadCoalescing(on bool) {
	n.coalesceOn.Store(on)
}

// setRegistry mirrors the node's replication counters into reg.
func (n *Node) setRegistry(reg *metrics.Registry) { n.mtr.Store(reg) }

// ReadIndex runs the Raft read-index protocol (§6.4 of Ongaro's thesis)
// and returns an index I such that every write acknowledged before the
// call has log index <= I. A caller that waits for its local state
// machine to apply through I and then reads locally gets a linearizable
// read with zero log entries.
//
// On the leader, the call first tries the check-quorum lease — a live
// lease answers from the commit index with zero messages. Otherwise it
// records the commit index, confirms leadership with a round of
// heartbeat acks from a quorum (so a deposed leader in a stale term can
// never serve a stale index), and returns it; with coalescing enabled,
// concurrent calls share confirmation rounds instead of launching their
// own. A leader that has not yet committed an entry in its own term
// first commits a no-op barrier, because its commit index may lag
// writes acknowledged by its predecessor. Followers forward to the
// leader they believe in.
//
// It fails with ErrNoLeader when there is no leader to ask, ErrNotLeader
// when leadership was lost mid-round, and ErrReadTimeout when no quorum
// answered within timeout (non-positive timeout defaults to the election
// timeout bound).
func (n *Node) ReadIndex(timeout time.Duration) (uint64, error) {
	if timeout <= 0 {
		timeout = n.cfg.ElectionTimeoutMax
	}
	ch := make(chan readIndexResult, 1)
	var forwarded uint64
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return 0, ErrStopped
	}
	if n.state == Leader {
		if idx, ok := n.leaseReadLocked(); ok {
			n.mu.Unlock()
			return idx, nil
		}
		n.startReadLocked(ch, nil)
	} else {
		leader := n.leaderID
		if leader < 0 || leader == n.id {
			n.mu.Unlock()
			return 0, ErrNoLeader
		}
		n.readSeq++
		forwarded = n.readSeq
		n.readWaiters[forwarded] = ch
		n.trans.send(n.id, leader, readIndexReq{ID: forwarded})
	}
	n.mu.Unlock()

	timer := n.cfg.Clock.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.index, r.err
	case <-timer.C():
		if forwarded != 0 {
			n.mu.Lock()
			delete(n.readWaiters, forwarded)
			n.mu.Unlock()
		}
		// The round may have completed while the timer fired.
		select {
		case r := <-ch:
			return r.index, r.err
		default:
		}
		return 0, ErrReadTimeout
	case <-n.stopCh:
		return 0, ErrStopped
	}
}

// startReadLocked registers one read on the leader: either joining a
// coalesced confirmation round or launching its own.
func (n *Node) startReadLocked(local chan readIndexResult, remote *remoteRead) {
	// A freshly elected leader may not know its predecessor's full commit
	// index (§5.4.2 only advances commitment for current-term entries), so
	// its commit index could understate acknowledged writes. Commit a
	// no-op barrier once per term before serving any read index.
	if n.termAtLocked(n.commitIndex) != n.currentTerm && n.barrierTerm != n.currentTerm {
		n.barrierTerm = n.currentTerm
		e := Entry{Index: n.lastIndexLocked() + 1, Term: n.currentTerm}
		n.log = append(n.log, e)
		n.persistLocked()
		n.matchIndex[n.id] = e.Index
	}
	if n.coalesceOn.Load() && len(n.pendingReads) > 0 {
		// Coalesce: the newest pending round is either still unlaunched
		// (join it) or already broadcast — its acks may predate this
		// call, so a late joiner queues for the NEXT round instead,
		// which fires when the in-flight one resolves. Batching emerges
		// from concurrency, exactly like group commit on writes.
		last := n.pendingReads[len(n.pendingReads)-1]
		if last.started {
			last = &pendingRead{acks: make(map[int]bool)}
			n.pendingReads = append(n.pendingReads, last)
		}
		if local != nil {
			last.local = append(last.local, local)
		}
		if remote != nil {
			last.remote = append(last.remote, *remote)
		}
		return
	}
	pr := &pendingRead{acks: make(map[int]bool)}
	if local != nil {
		pr.local = append(pr.local, local)
	}
	if remote != nil {
		pr.remote = append(pr.remote, *remote)
	}
	n.pendingReads = append(n.pendingReads, pr)
	n.launchReadRoundLocked(pr)
	// A single-node cluster is its own quorum.
	n.maybeCompleteReadsLocked()
}

// launchReadRoundLocked broadcasts the heartbeat round whose acks will
// confirm pr's leadership.
func (n *Node) launchReadRoundLocked(pr *pendingRead) {
	pr.seq = n.hbSeq + 1
	pr.started = true
	n.statReadRounds.Add(1)
	if reg := n.mtr.Load(); reg != nil {
		reg.Inc("raft_readindex_rounds", n.mtrLabel)
	}
	n.broadcastAppendLocked()
}

// maybeCompleteReadsLocked resolves every launched round whose quorum
// has acked, provided the commit index has reached the leader's own
// term, then launches the queued coalesced round (if any). The outer
// loop re-runs the completion pass for single-node clusters, where the
// freshly launched round is its own quorum.
func (n *Node) maybeCompleteReadsLocked() {
	if n.state != Leader {
		return
	}
	if n.termAtLocked(n.commitIndex) != n.currentTerm {
		return
	}
	quorum := len(n.peers)/2 + 1
	for len(n.pendingReads) > 0 {
		completed := false
		keep := n.pendingReads[:0]
		for _, pr := range n.pendingReads {
			if pr.started && len(pr.acks)+1 >= quorum { // +1: the leader itself
				n.statRoundReads.Add(uint64(len(pr.local) + len(pr.remote)))
				n.completeReadLocked(pr, n.commitIndex, nil)
				completed = true
			} else {
				keep = append(keep, pr)
			}
		}
		n.pendingReads = keep
		if !completed {
			return
		}
		if reg := n.mtr.Load(); reg != nil {
			if rounds := n.statReadRounds.Load(); rounds > 0 {
				reg.SetGauge("raft_reads_per_round",
					float64(n.statRoundReads.Load())/float64(rounds), n.mtrLabel)
			}
		}
		launched := false
		for _, pr := range n.pendingReads {
			if !pr.started {
				n.launchReadRoundLocked(pr)
				launched = true
				break
			}
		}
		if !launched || quorum > 1 {
			return
		}
	}
}

// completeReadLocked delivers a read-index round's outcome to its local
// and forwarded waiters.
func (n *Node) completeReadLocked(pr *pendingRead, idx uint64, err error) {
	for _, ch := range pr.local {
		select {
		case ch <- readIndexResult{index: idx, err: err}:
		default:
		}
	}
	for _, r := range pr.remote {
		n.trans.send(n.id, r.node, readIndexResp{ID: r.id, Index: idx, OK: err == nil})
	}
}

// failPendingReadsLocked aborts every in-flight read-index round; called
// on loss of leadership.
func (n *Node) failPendingReadsLocked() {
	for _, pr := range n.pendingReads {
		n.completeReadLocked(pr, 0, ErrNotLeader)
	}
	n.pendingReads = nil
}

// leaseReadLocked answers a read from the check-quorum lease: while a
// quorum round confirmed leadership less than
// ElectionTimeoutMin - MaxClockDrift ago (on the local clock), no other
// node can have won an election — followers reset their election timers
// on that round's append — so the commit index is served with zero
// messages. The barrier precondition matches the round path: a fresh
// leader whose commit index hasn't reached its own term may understate
// acknowledged writes and must not answer from a lease.
func (n *Node) leaseReadLocked() (uint64, bool) {
	if !n.leaseOn.Load() || n.leaseUntil.IsZero() || n.leaseTerm != n.currentTerm {
		return 0, false
	}
	if n.termAtLocked(n.commitIndex) != n.currentTerm {
		return 0, false
	}
	now := n.cfg.Clock.Now()
	if n.cfg.MaxClockDrift >= 0 && now.Before(n.leaseFrom) {
		// The local clock reads earlier than the lease grant: it stepped
		// backward, so the deadline lives in a dead timebase and could
		// overstate validity by the step size. Kill the lease.
		n.invalidateLeaseLocked()
		return 0, false
	}
	if !now.Before(n.leaseUntil) {
		return 0, false // expired; the next clean quorum round re-arms it
	}
	n.statLeaseReads.Add(1)
	if reg := n.mtr.Load(); reg != nil {
		reg.Inc("raft_lease_reads", n.mtrLabel)
	}
	return n.commitIndex, true
}

// leaseDuration is how long past a confirmed round's start the leader
// may serve lease reads; <= 0 means leases can never arm (e.g. a drift
// bound as large as the election timeout).
func (n *Node) leaseDuration() time.Duration {
	drift := n.cfg.MaxClockDrift
	if drift < 0 {
		drift = 0 // unsafe mode: no slack, no detection
	}
	return n.cfg.ElectionTimeoutMin - drift
}

// invalidateLeaseLocked kills a live lease (step-down, clock trouble,
// runtime disable); reads fall back to full confirmation rounds until a
// clean quorum round re-arms it.
func (n *Node) invalidateLeaseLocked() {
	if n.leaseUntil.IsZero() {
		return
	}
	n.leaseFrom = time.Time{}
	n.leaseUntil = time.Time{}
	n.statLeaseExpiries.Add(1)
	if reg := n.mtr.Load(); reg != nil {
		reg.Inc("raft_lease_expiries", n.mtrLabel)
	}
}

// observeAckLocked folds one same-term append ack into the lease:
// record the round the follower confirmed, check its clock echo against
// the drift bound, and extend — or kill — the lease accordingly.
func (n *Node) observeAckLocked(from int, msg appendEntriesResp) {
	if !n.leaseOn.Load() || n.leaseDuration() <= 0 {
		return
	}
	if msg.Seq > n.ackSeq[from] {
		n.ackSeq[from] = msg.Seq
	}
	if n.cfg.MaxClockDrift >= 0 {
		skew := n.cfg.Clock.Now().Sub(msg.LocalTime)
		if skew < 0 {
			skew = -skew
		}
		// The estimate includes one message latency, so the effective
		// tolerance is MaxClockDrift minus the network delay — a
		// conservative error: false positives only drop the lease.
		bad := skew > n.cfg.MaxClockDrift
		n.skewBad[from] = bad
		if bad {
			n.invalidateLeaseLocked()
			return
		}
	}
	n.maybeExtendLeaseLocked()
}

// maybeExtendLeaseLocked arms the lease through
// leaseDuration past the start of the newest heartbeat round confirmed
// by a quorum of clean-clocked followers (the leader is the quorum's
// +1). The window is overwritten, not maxed: after a backward clock
// step, newer rounds carry earlier local timestamps, and keeping the
// pre-step deadline would overstate validity by the step size.
func (n *Node) maybeExtendLeaseLocked() {
	dur := n.leaseDuration()
	if dur <= 0 {
		return
	}
	need := len(n.peers) / 2 // follower acks needed for a quorum
	var q uint64
	if need == 0 {
		q = n.hbSeq // single node: every broadcast self-confirms
	} else {
		seqs := make([]uint64, 0, len(n.peers)-1)
		for _, p := range n.peers {
			if p == n.id {
				continue
			}
			if n.skewBad[p] {
				seqs = append(seqs, 0)
				continue
			}
			seqs = append(seqs, n.ackSeq[p])
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
		q = seqs[need-1]
	}
	if q == 0 || q <= n.lastLeaseRound {
		return
	}
	start, ok := n.roundStart[q]
	if !ok {
		return // round pruned: too old for its confirmation to matter
	}
	n.lastLeaseRound = q
	n.leaseTerm = n.currentTerm
	n.leaseFrom = start
	n.leaseUntil = start.Add(dur)
	for seq := range n.roundStart {
		if seq <= q {
			delete(n.roundStart, seq)
		}
	}
}

// recordRoundLocked timestamps a heartbeat round at broadcast for lease
// extension and prunes rounds too old to still extend anything.
func (n *Node) recordRoundLocked() {
	now := n.cfg.Clock.Now()
	n.roundStart[n.hbSeq] = now
	horizon := now.Add(-n.cfg.ElectionTimeoutMin)
	for seq, t := range n.roundStart {
		if t.Before(horizon) {
			delete(n.roundStart, seq)
		}
	}
	if len(n.peers) == 1 {
		n.maybeExtendLeaseLocked()
	}
}

// resetLeaseStateLocked drops all lease bookkeeping (entering or
// leaving leadership); it does not count an expiry by itself.
func (n *Node) resetLeaseStateLocked() {
	n.leaseFrom = time.Time{}
	n.leaseUntil = time.Time{}
	n.lastLeaseRound = 0
	n.roundStart = make(map[uint64]time.Time)
	n.ackSeq = make(map[int]uint64)
	n.skewBad = make(map[int]bool)
}

func (n *Node) handleReadIndexReq(from int, msg readIndexReq) {
	n.mu.Lock()
	if n.state != Leader {
		n.mu.Unlock()
		n.trans.send(n.id, from, readIndexResp{ID: msg.ID, OK: false})
		return
	}
	if idx, ok := n.leaseReadLocked(); ok {
		n.mu.Unlock()
		n.trans.send(n.id, from, readIndexResp{ID: msg.ID, Index: idx, OK: true})
		return
	}
	n.startReadLocked(nil, &remoteRead{node: from, id: msg.ID})
	n.mu.Unlock()
}

func (n *Node) handleReadIndexResp(_ int, msg readIndexResp) {
	n.mu.Lock()
	ch, ok := n.readWaiters[msg.ID]
	delete(n.readWaiters, msg.ID)
	n.mu.Unlock()
	if !ok {
		return // caller timed out and deregistered
	}
	res := readIndexResult{index: msg.Index}
	if !msg.OK {
		res.err = ErrNoLeader
	}
	select {
	case ch <- res:
	default:
	}
}

// Log returns a copy of the node's log (for verification in tests).
func (n *Node) Log() []Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Entry, len(n.log))
	copy(out, n.log)
	return out
}

// Propose appends cmd to the replicated log if this node is the leader.
// It returns the index and term assigned to the entry. Commitment is
// reported asynchronously via ApplyCh.
func (n *Node) Propose(cmd []byte) (index, term uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return 0, 0, ErrStopped
	}
	if n.state != Leader {
		return 0, 0, ErrNotLeader
	}
	e := Entry{Index: n.lastIndexLocked() + 1, Term: n.currentTerm, Cmd: cmd}
	n.log = append(n.log, e)
	n.persistLocked()
	n.matchIndex[n.id] = e.Index
	// Replicate eagerly rather than waiting for the heartbeat tick.
	n.broadcastAppendLocked()
	return e.Index, e.Term, nil
}

// stop terminates the run loop. The storage object survives, so a
// subsequent startNode with the same storage models a crash-restart.
func (n *Node) stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stopCh)
	n.mu.Unlock()
	<-n.done
	<-n.drainDone
}

func (n *Node) run() {
	defer close(n.done)
	for {
		var hb <-chan time.Time
		n.mu.Lock()
		if n.heartbeatTick != nil {
			hb = n.heartbeatTick.C()
		}
		n.mu.Unlock()

		select {
		case <-n.stopCh:
			n.mu.Lock()
			n.electionTimer.Stop()
			if n.heartbeatTick != nil {
				n.heartbeatTick.Stop()
			}
			n.trans.detach(n.id)
			n.mu.Unlock()
			return
		case env := <-n.inbox:
			n.handle(env)
		case <-n.electionTimer.C():
			n.onElectionTimeout()
		case <-hb:
			n.mu.Lock()
			if n.state == Leader {
				n.broadcastAppendLocked()
			}
			n.mu.Unlock()
		}
	}
}

// drainApplies is the single goroutine feeding applyCh. Handlers enqueue
// committed entries under mu; one ordered drainer replaces the old
// per-broadcast deliver goroutines, whose interleaving could reorder
// applies, and keeps message handling from blocking on a slow consumer.
func (n *Node) drainApplies() {
	defer close(n.drainDone)
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.applyKick:
		}
		for {
			n.mu.Lock()
			pending := n.applyQueue
			n.applyQueue = nil
			n.mu.Unlock()
			if len(pending) == 0 {
				break
			}
			for _, a := range pending {
				select {
				case n.applyCh <- a:
				case <-n.stopCh:
					return
				}
			}
		}
	}
}

// enqueueAppliesLocked queues newly committed applies for the drainer.
func (n *Node) enqueueAppliesLocked(applies []Apply) {
	if len(applies) == 0 {
		return
	}
	n.applyQueue = append(n.applyQueue, applies...)
	select {
	case n.applyKick <- struct{}{}:
	default:
	}
}

func (n *Node) randomElectionTimeout() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	spread := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	return n.cfg.ElectionTimeoutMin + time.Duration(n.rng.Int63n(int64(spread)+1))
}

func (n *Node) resetElectionTimerLocked() {
	spread := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin + time.Duration(n.rng.Int63n(int64(spread)+1))
	n.electionTimer.Stop()
	n.electionTimer.Reset(d)
}

func (n *Node) onElectionTimeout() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == Leader {
		return // stale timer
	}
	// Become candidate for a new term.
	n.currentTerm++
	n.state = Candidate
	n.votedFor = n.id
	n.leaderID = -1
	n.votes = map[int]bool{n.id: true}
	n.persistLocked()
	n.resetElectionTimerLocked()

	lastIdx := n.lastIndexLocked()
	lastTerm := n.termAtLocked(lastIdx)
	req := requestVote{
		Term:         n.currentTerm,
		Candidate:    n.id,
		LastLogIndex: lastIdx,
		LastLogTerm:  lastTerm,
	}
	for _, p := range n.peers {
		if p != n.id {
			n.trans.send(n.id, p, req)
		}
	}
	// Single-node cluster wins immediately.
	n.maybeBecomeLeaderLocked()
}

func (n *Node) handle(env envelope) {
	switch msg := env.msg.(type) {
	case requestVote:
		n.handleRequestVote(env.from, msg)
	case requestVoteResp:
		n.handleRequestVoteResp(env.from, msg)
	case appendEntries:
		n.handleAppendEntries(env.from, msg)
	case appendEntriesResp:
		n.handleAppendEntriesResp(env.from, msg)
	case installSnapshot:
		n.handleInstallSnapshot(env.from, msg)
	case installSnapshotResp:
		n.handleInstallSnapshotResp(env.from, msg)
	case readIndexReq:
		n.handleReadIndexReq(env.from, msg)
	case readIndexResp:
		n.handleReadIndexResp(env.from, msg)
	}
}

// handleInstallSnapshot accumulates one chunk of a streamed snapshot on
// a lagging follower, installing the whole image on the final chunk.
func (n *Node) handleInstallSnapshot(from int, msg installSnapshot) {
	n.mu.Lock()
	if msg.Term > n.currentTerm ||
		(msg.Term == n.currentTerm && n.state != Follower) {
		n.becomeFollowerLocked(msg.Term, msg.Leader)
	}
	if msg.Term < n.currentTerm {
		resp := installSnapshotResp{Term: n.currentTerm}
		n.mu.Unlock()
		n.trans.send(n.id, from, resp)
		return
	}
	n.leaderID = msg.Leader
	n.resetElectionTimerLocked()

	if msg.LastIndex <= n.commitIndex {
		// Stale snapshot: we already hold everything it covers. Done=true
		// with our commit index lets the leader advance matchIndex and
		// resume ordinary appends.
		n.pendingSnap = nil
		resp := installSnapshotResp{Term: n.currentTerm, LastIndex: n.commitIndex, NextOffset: msg.Total, Done: true}
		n.mu.Unlock()
		n.trans.send(n.id, from, resp)
		return
	}
	p := n.pendingSnap
	if p == nil || p.index != msg.LastIndex || msg.Offset != len(p.data) {
		if msg.Offset != 0 {
			// Chunk loss, duplication, or a transfer restart: answer with
			// the offset we actually need so the leader resynchronizes.
			nextOff := 0
			if p != nil && p.index == msg.LastIndex {
				nextOff = len(p.data)
			}
			resp := installSnapshotResp{Term: n.currentTerm, LastIndex: msg.LastIndex, NextOffset: nextOff}
			n.mu.Unlock()
			n.trans.send(n.id, from, resp)
			return
		}
		p = &pendingSnapshot{index: msg.LastIndex, term: msg.LastTerm}
		n.pendingSnap = p
	}
	p.data = append(p.data, msg.Data...)
	if !msg.Done {
		resp := installSnapshotResp{Term: n.currentTerm, LastIndex: msg.LastIndex, NextOffset: len(p.data)}
		n.mu.Unlock()
		n.trans.send(n.id, from, resp)
		return
	}
	// Final chunk: discard the log and adopt the snapshot wholesale. The
	// accumulated buffer is exclusively ours, so node state and the Apply
	// share it without copying.
	n.pendingSnap = nil
	n.log = nil
	n.snapIndex = p.index
	n.snapTerm = p.term
	n.snapshot = p.data
	n.commitIndex = p.index
	n.lastApplied = p.index
	n.persistLocked()
	n.enqueueAppliesLocked([]Apply{{IsSnapshot: true, Snapshot: p.data, SnapIndex: p.index}})
	resp := installSnapshotResp{Term: n.currentTerm, LastIndex: p.index, NextOffset: len(p.data), Done: true}
	n.mu.Unlock()
	n.trans.send(n.id, from, resp)
}

// handleInstallSnapshotResp clocks an outbound snapshot stream forward
// (one chunk in flight per follower) and, on completion, resumes
// ordinary appends after the installed index.
func (n *Node) handleInstallSnapshotResp(from int, msg installSnapshotResp) {
	n.mu.Lock()
	if msg.Term > n.currentTerm {
		n.becomeFollowerLocked(msg.Term, -1)
		n.mu.Unlock()
		return
	}
	if n.state != Leader || msg.Term != n.currentTerm {
		n.mu.Unlock()
		return
	}
	if msg.Done {
		delete(n.snapXfers, from)
		if msg.LastIndex > n.matchIndex[from] {
			n.matchIndex[from] = msg.LastIndex
		}
		if next := n.matchIndex[from] + 1; n.nextIndex[from] < next {
			n.nextIndex[from] = next
		}
		n.advanceCommitLocked()
		if n.lastIndexLocked() >= n.nextIndex[from] {
			n.sendAppendLocked(from)
		}
		n.enqueueAppliesLocked(n.takeAppliesLocked())
		n.mu.Unlock()
		return
	}
	x := n.snapXfers[from]
	if x == nil || x.index != n.snapIndex {
		// The transfer restarted (new compaction) or was abandoned; the
		// next heartbeat re-probes from the current snapshot.
		n.mu.Unlock()
		return
	}
	if msg.LastIndex == x.index && msg.NextOffset >= 0 && msg.NextOffset <= len(x.data) {
		x.offset = msg.NextOffset
		n.sendSnapshotLocked(from)
	}
	n.mu.Unlock()
}

func (n *Node) handleRequestVote(from int, msg requestVote) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Term > n.currentTerm {
		n.becomeFollowerLocked(msg.Term, -1)
	}
	granted := false
	if msg.Term == n.currentTerm && (n.votedFor == -1 || n.votedFor == msg.Candidate) {
		// Election restriction: candidate's log must be at least as
		// up-to-date as ours (§5.4.1).
		lastIdx := n.lastIndexLocked()
		lastTerm := n.termAtLocked(lastIdx)
		if msg.LastLogTerm > lastTerm ||
			(msg.LastLogTerm == lastTerm && msg.LastLogIndex >= lastIdx) {
			granted = true
			n.votedFor = msg.Candidate
			n.persistLocked()
			n.resetElectionTimerLocked()
		}
	}
	n.trans.send(n.id, from, requestVoteResp{Term: n.currentTerm, Granted: granted})
}

func (n *Node) handleRequestVoteResp(from int, msg requestVoteResp) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Term > n.currentTerm {
		n.becomeFollowerLocked(msg.Term, -1)
		return
	}
	if n.state != Candidate || msg.Term != n.currentTerm || !msg.Granted {
		return
	}
	n.votes[from] = true
	n.maybeBecomeLeaderLocked()
}

func (n *Node) maybeBecomeLeaderLocked() {
	if n.state != Candidate || len(n.votes) <= len(n.peers)/2 {
		return
	}
	n.state = Leader
	n.leaderID = n.id
	for _, p := range n.peers {
		n.nextIndex[p] = n.lastIndexLocked() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.id] = n.lastIndexLocked()
	n.snapXfers = make(map[int]*snapXfer)
	n.pendingSnap = nil
	n.resetLeaseStateLocked()
	if n.heartbeatTick != nil {
		n.heartbeatTick.Stop()
	}
	n.heartbeatTick = n.cfg.Clock.NewTicker(n.cfg.HeartbeatInterval)
	n.electionTimer.Stop()
	// Announce leadership immediately.
	n.broadcastAppendLocked()
}

func (n *Node) becomeFollowerLocked(term uint64, leader int) {
	wasLeader := n.state == Leader
	n.state = Follower
	if term > n.currentTerm {
		n.currentTerm = term
		n.votedFor = -1
		n.persistLocked()
	}
	n.leaderID = leader
	if wasLeader && n.heartbeatTick != nil {
		n.heartbeatTick.Stop()
		n.heartbeatTick = nil
	}
	if wasLeader {
		n.failPendingReadsLocked()
		n.invalidateLeaseLocked()
		n.resetLeaseStateLocked()
		n.snapXfers = make(map[int]*snapXfer)
	}
	n.resetElectionTimerLocked()
}

func (n *Node) handleAppendEntries(from int, msg appendEntries) {
	n.mu.Lock()
	if msg.Term > n.currentTerm ||
		(msg.Term == n.currentTerm && n.state != Follower) {
		n.becomeFollowerLocked(msg.Term, msg.Leader)
	}
	if msg.Term < n.currentTerm {
		resp := appendEntriesResp{Term: n.currentTerm, Success: false}
		n.mu.Unlock()
		n.trans.send(n.id, from, resp)
		return
	}
	// Valid leader for our term.
	n.leaderID = msg.Leader
	n.resetElectionTimerLocked()

	// Log consistency check. Anything at or below the snapshot index is
	// committed state here, so a PrevLogIndex inside the snapshot is
	// consistent by construction.
	consistent := msg.PrevLogIndex <= n.snapIndex ||
		(msg.PrevLogIndex <= n.lastIndexLocked() &&
			n.termAtLocked(msg.PrevLogIndex) == msg.PrevLogTerm)
	if !consistent {
		conflict := msg.PrevLogIndex
		if last := n.lastIndexLocked(); conflict > last+1 {
			conflict = last + 1
		}
		if conflict == 0 {
			conflict = 1
		}
		// A consistency failure still acknowledges the sender's
		// leadership for this term, so it echoes Seq and counts toward
		// read-index quorums.
		resp := appendEntriesResp{Term: n.currentTerm, Success: false, ConflictIndex: conflict, Seq: msg.Seq, LocalTime: n.cfg.Clock.Now()}
		n.mu.Unlock()
		n.trans.send(n.id, from, resp)
		return
	}
	// Append new entries, truncating on conflict (§5.3). Entries at or
	// below the snapshot index are already committed and compacted.
	for _, e := range msg.Entries {
		if e.Index <= n.snapIndex {
			continue
		}
		if e.Index <= n.lastIndexLocked() {
			if n.termAtLocked(e.Index) != e.Term {
				n.log = n.log[:e.Index-n.snapIndex-1]
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	if len(msg.Entries) > 0 {
		n.persistLocked()
	}
	// Advance commit index.
	if msg.LeaderCommit > n.commitIndex {
		last := n.lastIndexLocked()
		n.commitIndex = msg.LeaderCommit
		if n.commitIndex > last {
			n.commitIndex = last
		}
	}
	match := msg.PrevLogIndex + uint64(len(msg.Entries))
	resp := appendEntriesResp{Term: n.currentTerm, Success: true, MatchIndex: match, Seq: msg.Seq, LocalTime: n.cfg.Clock.Now()}
	n.enqueueAppliesLocked(n.takeAppliesLocked())
	n.mu.Unlock()
	n.trans.send(n.id, from, resp)
}

func (n *Node) handleAppendEntriesResp(from int, msg appendEntriesResp) {
	n.mu.Lock()
	if msg.Term > n.currentTerm {
		n.becomeFollowerLocked(msg.Term, -1)
		n.mu.Unlock()
		return
	}
	if n.state != Leader || msg.Term != n.currentTerm {
		n.mu.Unlock()
		return
	}
	// Any same-term response — success or log-consistency failure — is a
	// leadership ack for the heartbeat round it echoes; credit it to the
	// launched read rounds registered at or before that round, and fold
	// it into the check-quorum lease (extension, or skew invalidation).
	if msg.Seq > 0 {
		for _, pr := range n.pendingReads {
			if pr.started && msg.Seq >= pr.seq {
				pr.acks[from] = true
			}
		}
		n.observeAckLocked(from, msg)
		n.maybeCompleteReadsLocked()
	}
	if msg.Success {
		if msg.MatchIndex > n.matchIndex[from] {
			n.matchIndex[from] = msg.MatchIndex
		}
		if next := n.matchIndex[from] + 1; n.nextIndex[from] < next {
			n.nextIndex[from] = next
		}
		n.advanceCommitLocked()
		// Pipelining: an ack frees window space, so ship pending backlog
		// immediately instead of waiting for the next heartbeat tick.
		// Only when the window is open — an over-eager empty probe racing
		// in-flight entries would draw a reject and rewind the window.
		if n.pipelined() && n.lastIndexLocked() >= n.nextIndex[from] {
			if infE, infB := n.inflightLocked(from); infE < uint64(n.cfg.MaxInflightEntries) && infB < n.cfg.MaxInflightBytes {
				n.sendAppendLocked(from)
			}
		}
	} else {
		n.statRejects.Add(1)
		if reg := n.mtr.Load(); reg != nil {
			reg.Inc("raft_append_rejects", n.mtrLabel)
		}
		// Back up and retry. The optimistic window collapses to the
		// conflict point, but never below what the follower already
		// acknowledged.
		next := msg.ConflictIndex
		if next == 0 || next >= n.nextIndex[from] {
			if n.nextIndex[from] > 1 {
				next = n.nextIndex[from] - 1
			} else {
				next = 1
			}
		}
		if next <= n.matchIndex[from] {
			next = n.matchIndex[from] + 1
		}
		n.nextIndex[from] = next
		n.sendAppendLocked(from)
	}
	n.enqueueAppliesLocked(n.takeAppliesLocked())
	n.mu.Unlock()
}

// advanceCommitLocked moves commitIndex to the highest index replicated on
// a majority whose entry is from the current term (§5.4.2).
func (n *Node) advanceCommitLocked() {
	matches := make([]uint64, 0, len(n.peers))
	for _, p := range n.peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	majority := matches[len(n.peers)/2]
	if majority > n.commitIndex && n.termAtLocked(majority) == n.currentTerm {
		n.commitIndex = majority
		// Reads whose quorum already acked may have been waiting for the
		// current term's first commit (the no-op barrier).
		n.maybeCompleteReadsLocked()
	}
}

func (n *Node) broadcastAppendLocked() {
	n.hbSeq++ // new heartbeat round: later acks confirm leadership now
	if n.leaseOn.Load() && n.leaseDuration() > 0 {
		n.recordRoundLocked()
	}
	for _, p := range n.peers {
		if p != n.id {
			n.sendAppendLocked(p)
		}
	}
	// A single-node cluster commits by itself.
	n.advanceCommitLocked()
	n.enqueueAppliesLocked(n.takeAppliesLocked())
}

// pipelined reports whether replication uses an in-flight window
// (false = the stop-and-wait A/B mode).
func (n *Node) pipelined() bool { return n.cfg.MaxInflightEntries > 1 }

// entryBytes approximates an entry's wire cost for window accounting.
func entryBytes(e Entry) int { return len(e.Cmd) + 16 }

// inflightLocked reports the unacknowledged pipeline window to a
// follower: entries and bytes sent beyond its acknowledged match index.
func (n *Node) inflightLocked(to int) (entries uint64, bytes int) {
	next := n.nextIndex[to]
	if next == 0 {
		next = 1
	}
	match := n.matchIndex[to]
	if next-1 <= match {
		return 0, 0
	}
	lo := match + 1
	if lo <= n.snapIndex {
		lo = n.snapIndex + 1
	}
	for i := lo; i < next && i <= n.lastIndexLocked(); i++ {
		bytes += entryBytes(n.entryAtLocked(i))
	}
	return next - 1 - match, bytes
}

func (n *Node) sendAppendLocked(to int) {
	next := n.nextIndex[to]
	if next == 0 {
		next = 1
	}
	if next <= n.snapIndex {
		// The follower needs entries that were compacted away: stream the
		// snapshot instead (§7, InstallSnapshot).
		n.sendSnapshotLocked(to)
		return
	}
	prevIdx := next - 1
	msg := appendEntries{
		Term:         n.currentTerm,
		Leader:       n.id,
		PrevLogIndex: prevIdx,
		PrevLogTerm:  n.termAtLocked(prevIdx),
		LeaderCommit: n.commitIndex,
		Seq:          n.hbSeq,
	}
	if last := n.lastIndexLocked(); last >= next {
		if !n.pipelined() {
			// Stop-and-wait: re-ship the full pending suffix; nextIndex
			// moves only when the follower acknowledges it.
			entries := n.log[next-n.snapIndex-1:]
			msg.Entries = make([]Entry, len(entries))
			copy(msg.Entries, entries)
		} else if infE, infB := n.inflightLocked(to); infE < uint64(n.cfg.MaxInflightEntries) && infB < n.cfg.MaxInflightBytes {
			end := last
			if maxE := uint64(n.cfg.MaxAppendEntries); maxE > 0 && end >= next+maxE {
				end = next + maxE - 1
			}
			if room := uint64(n.cfg.MaxInflightEntries) - infE; end >= next+room {
				end = next + room - 1
			}
			budget := n.cfg.MaxInflightBytes - infB
			entries := make([]Entry, 0, end-next+1)
			for i := next; i <= end; i++ {
				e := n.entryAtLocked(i)
				cost := entryBytes(e)
				if len(entries) > 0 && cost > budget {
					break
				}
				budget -= cost
				entries = append(entries, e)
			}
			msg.Entries = entries
			// Optimistic advance: the next send continues after this
			// window; a consistency reject rewinds it.
			n.nextIndex[to] = next + uint64(len(entries))
		}
		// Window full: fall through to an empty append — its ack moves
		// matchIndex and reopens the window.
	}
	n.countAppendLocked(to, len(msg.Entries))
	n.trans.send(n.id, to, msg)
}

// countAppendLocked tallies one outbound append for ReplicationStats
// and, when instrumented, the registry (entries-per-append ratio and
// in-flight window depth).
func (n *Node) countAppendLocked(to, entries int) {
	n.statAppends.Add(1)
	n.statEntries.Add(uint64(entries))
	if reg := n.mtr.Load(); reg != nil {
		reg.Inc("raft_appends_sent", n.mtrLabel)
		reg.Add("raft_entries_sent", float64(entries), n.mtrLabel)
		inf, _ := n.inflightLocked(to)
		reg.SetGauge("raft_inflight_entries", float64(inf), n.mtrLabel)
	}
}

// sendSnapshotLocked ships the next chunk of the leader's snapshot to a
// follower whose needed entries were compacted away. One chunk per
// transfer is in flight; heartbeat ticks re-send the current chunk (the
// follower's NextOffset makes duplicates harmless) and each ack clocks
// the stream forward. Chunks alias the immutable snapshot bytes — no
// per-send copy of the full image.
func (n *Node) sendSnapshotLocked(to int) {
	x := n.snapXfers[to]
	if x == nil || x.index != n.snapIndex {
		x = &snapXfer{index: n.snapIndex, term: n.snapTerm, data: n.snapshot}
		n.snapXfers[to] = x
	}
	size := n.cfg.SnapChunkSize
	if size <= 0 || size > len(x.data)-x.offset {
		size = len(x.data) - x.offset
	}
	end := x.offset + size
	n.statSnapChunks.Add(1)
	n.statSnapBytes.Add(uint64(size))
	if reg := n.mtr.Load(); reg != nil {
		reg.Inc("raft_snapshot_chunks_sent", n.mtrLabel)
		reg.Add("raft_snapshot_bytes_sent", float64(size), n.mtrLabel)
	}
	n.trans.send(n.id, to, installSnapshot{
		Term:      n.currentTerm,
		Leader:    n.id,
		LastIndex: x.index,
		LastTerm:  x.term,
		Offset:    x.offset,
		Data:      x.data[x.offset:end],
		Done:      end == len(x.data),
		Total:     len(x.data),
	})
}

// takeAppliesLocked collects newly committed entries for delivery.
func (n *Node) takeAppliesLocked() []Apply {
	var out []Apply
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		e := n.entryAtLocked(n.lastApplied)
		out = append(out, Apply{Entry: e})
	}
	return out
}

func (n *Node) lastIndexLocked() uint64 { return n.snapIndex + uint64(len(n.log)) }

func (n *Node) termAtLocked(idx uint64) uint64 {
	switch {
	case idx == n.snapIndex:
		return n.snapTerm
	case idx > n.snapIndex && idx <= n.lastIndexLocked():
		return n.log[idx-n.snapIndex-1].Term
	default:
		return 0
	}
}

// entryAtLocked returns the log entry at idx (idx must be in
// (snapIndex, lastIndex]).
func (n *Node) entryAtLocked(idx uint64) Entry {
	return n.log[idx-n.snapIndex-1]
}

func (n *Node) persistLocked() {
	n.store.Save(PersistentState{
		Term:      n.currentTerm,
		VotedFor:  n.votedFor,
		Log:       n.log,
		SnapIndex: n.snapIndex,
		SnapTerm:  n.snapTerm,
		Snapshot:  n.snapshot,
	})
}

// Compact discards log entries through index, recording snapshot as the
// application state at that point (§7 of the Raft paper). index must not
// exceed the node's applied index; compacting at or below the current
// snapshot is a no-op.
func (n *Node) Compact(index uint64, snapshot []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if index <= n.snapIndex {
		return nil
	}
	if index > n.lastApplied {
		return fmt.Errorf("raft: compact index %d beyond applied %d", index, n.lastApplied)
	}
	term := n.termAtLocked(index)
	tail := make([]Entry, len(n.log[index-n.snapIndex:]))
	copy(tail, n.log[index-n.snapIndex:])
	n.log = tail
	n.snapIndex = index
	n.snapTerm = term
	n.snapshot = append([]byte(nil), snapshot...)
	n.persistLocked()
	return nil
}

// Snapshot returns the node's persisted snapshot and the index it covers
// (nil, 0 when no compaction has happened). Applications restore from it
// before consuming the apply channel after a restart.
func (n *Node) Snapshot() ([]byte, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.snapIndex == 0 {
		return nil, 0
	}
	return append([]byte(nil), n.snapshot...), n.snapIndex
}

// LogLen reports the in-memory (uncompacted) log length.
func (n *Node) LogLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.log)
}
