package raft

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// Cluster manages a fixed-membership set of Raft nodes with crash/restart
// support. It is the unit the etcd layer builds on (the paper's "ETCD
// itself is replicated (3-way), and uses the Raft consensus protocol").
type Cluster struct {
	cfg   Config
	trans *Transport

	mu       sync.Mutex
	ids      []int
	storages map[int]*MemoryStorage
	nodes    map[int]*Node // nil entry = crashed
	clks     map[int]*clock.Skewed
	mtr      *metrics.Registry
}

// NewCluster boots n fresh nodes (IDs 0..n-1).
func NewCluster(n int, cfg Config) *Cluster {
	if n <= 0 {
		panic("raft: cluster size must be positive")
	}
	c := &Cluster{
		cfg:      cfg,
		trans:    NewTransport(cfg.Clock, time.Millisecond),
		storages: make(map[int]*MemoryStorage, n),
		nodes:    make(map[int]*Node, n),
		clks:     make(map[int]*clock.Skewed, n),
	}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, i)
	}
	for _, id := range c.ids {
		// Each node reads time through its own skewable view of the
		// shared clock (timers stay true — skew shifts readings, not
		// rates), so clock-skew faults hit exactly one node's lease math.
		c.clks[id] = clock.NewSkewed(cfg.Clock, 0)
		c.storages[id] = NewMemoryStorage()
		c.nodes[id] = startNode(id, c.ids, c.nodeConfig(id), c.storages[id], c.trans)
	}
	return c
}

// nodeConfig is the cluster config specialized to one node: the shared
// tunables plus the node's private skewable clock view.
func (c *Cluster) nodeConfig(id int) Config {
	cfg := c.cfg
	cfg.Clock = c.clks[id]
	return cfg
}

// Transport exposes the message fabric for partition injection.
func (c *Cluster) Transport() *Transport { return c.trans }

// Instrument mirrors every node's replication counters into reg
// (re-applied to nodes booted by later Restarts).
func (c *Cluster) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mtr = reg
	for _, n := range c.nodes {
		if n != nil {
			n.setRegistry(reg)
		}
	}
}

// ReplicationStats returns the cumulative replication counters of every
// live node, keyed by node ID. Crashed nodes' counters reset on restart.
func (c *Cluster) ReplicationStats() map[int]ReplicationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]ReplicationStats, len(c.nodes))
	for id, n := range c.nodes {
		if n != nil {
			out[id] = n.ReplicationStats()
		}
	}
	return out
}

// IDs returns the cluster membership.
func (c *Cluster) IDs() []int {
	out := make([]int, len(c.ids))
	copy(out, c.ids)
	return out
}

// Node returns the live node with the given ID, or nil if crashed.
func (c *Cluster) Node(id int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Crash stops the node, preserving its persistent storage.
func (c *Cluster) Crash(id int) {
	c.mu.Lock()
	n := c.nodes[id]
	c.nodes[id] = nil
	c.mu.Unlock()
	if n != nil {
		n.stop()
	}
}

// Restart boots a crashed node from its persisted state.
func (c *Cluster) Restart(id int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes[id] != nil {
		return c.nodes[id]
	}
	st, ok := c.storages[id]
	if !ok {
		panic(fmt.Sprintf("raft: unknown node %d", id))
	}
	// nodeConfig re-reads c.cfg, so runtime toggles (SetLeaseReads,
	// SetReadCoalescing) and the node's clock skew survive the restart.
	n := startNode(id, c.ids, c.nodeConfig(id), st, c.trans)
	if c.mtr != nil {
		n.setRegistry(c.mtr)
	}
	c.nodes[id] = n
	return n
}

// SetClockSkew offsets node id's local clock readings by d (0 heals
// it). Timers are unaffected — real skew shifts a clock's value, not
// its rate — which is precisely what makes a stale lease deadline
// dangerous and what the drift-bound defenses must catch.
func (c *Cluster) SetClockSkew(id int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sk, ok := c.clks[id]; ok {
		sk.SetOffset(d)
	}
}

// ClockSkew reports node id's current clock offset.
func (c *Cluster) ClockSkew(id int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sk, ok := c.clks[id]; ok {
		return sk.Offset()
	}
	return 0
}

// SetLeaseReads toggles check-quorum lease reads cluster-wide,
// including nodes booted by later Restarts.
func (c *Cluster) SetLeaseReads(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.LeaseReads = on
	for _, n := range c.nodes {
		if n != nil {
			n.SetLeaseReads(on)
		}
	}
}

// SetReadCoalescing toggles read-round coalescing cluster-wide,
// including nodes booted by later Restarts.
func (c *Cluster) SetReadCoalescing(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.CoalesceReads = on
	for _, n := range c.nodes {
		if n != nil {
			n.SetReadCoalescing(on)
		}
	}
}

// ReadStats sums the read-path counters of every live node. Crashed
// nodes' counters reset on restart, like ReplicationStats.
func (c *Cluster) ReadStats() ReadStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out ReadStats
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		rs := n.ReadStats()
		out.Rounds += rs.Rounds
		out.RoundReads += rs.RoundReads
		out.LeaseReads += rs.LeaseReads
		out.LeaseExpiries += rs.LeaseExpiries
	}
	return out
}

// Leader returns the current leader node, or nil if none is known.
// During a partition a deposed leader may still believe it leads in a
// stale term; the node leading in the highest term is the real one, so
// ties in role are broken by term — returning the first node found in
// Leader state would route proposals (and any read path) to the stale
// one with map-iteration luck.
func (c *Cluster) Leader() *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *Node
	var bestTerm uint64
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if st, term := n.Status(); st == Leader && (best == nil || term > bestTerm) {
			best, bestTerm = n, term
		}
	}
	return best
}

// WaitLeader blocks until some node is leader or the deadline (in clock
// time) passes. It returns the leader or nil on timeout.
func (c *Cluster) WaitLeader(timeout time.Duration) *Node {
	deadline := c.cfg.Clock.Now().Add(timeout)
	for c.cfg.Clock.Now().Before(deadline) {
		if l := c.Leader(); l != nil {
			return l
		}
		c.cfg.Clock.Sleep(10 * time.Millisecond)
	}
	return c.Leader()
}

// Stop shuts down every live node.
func (c *Cluster) Stop() {
	c.mu.Lock()
	var ids []int
	for id, n := range c.nodes {
		if n != nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	live := make([]*Node, 0, len(ids))
	for _, id := range ids {
		live = append(live, c.nodes[id])
		c.nodes[id] = nil
	}
	c.mu.Unlock()
	for _, n := range live {
		n.stop()
	}
}
