package raft

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Cluster manages a fixed-membership set of Raft nodes with crash/restart
// support. It is the unit the etcd layer builds on (the paper's "ETCD
// itself is replicated (3-way), and uses the Raft consensus protocol").
type Cluster struct {
	cfg   Config
	trans *Transport

	mu       sync.Mutex
	ids      []int
	storages map[int]*MemoryStorage
	nodes    map[int]*Node // nil entry = crashed
	mtr      *metrics.Registry
}

// NewCluster boots n fresh nodes (IDs 0..n-1).
func NewCluster(n int, cfg Config) *Cluster {
	if n <= 0 {
		panic("raft: cluster size must be positive")
	}
	c := &Cluster{
		cfg:      cfg,
		trans:    NewTransport(cfg.Clock, time.Millisecond),
		storages: make(map[int]*MemoryStorage, n),
		nodes:    make(map[int]*Node, n),
	}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, i)
	}
	for _, id := range c.ids {
		c.storages[id] = NewMemoryStorage()
		c.nodes[id] = startNode(id, c.ids, cfg, c.storages[id], c.trans)
	}
	return c
}

// Transport exposes the message fabric for partition injection.
func (c *Cluster) Transport() *Transport { return c.trans }

// Instrument mirrors every node's replication counters into reg
// (re-applied to nodes booted by later Restarts).
func (c *Cluster) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mtr = reg
	for _, n := range c.nodes {
		if n != nil {
			n.setRegistry(reg)
		}
	}
}

// ReplicationStats returns the cumulative replication counters of every
// live node, keyed by node ID. Crashed nodes' counters reset on restart.
func (c *Cluster) ReplicationStats() map[int]ReplicationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]ReplicationStats, len(c.nodes))
	for id, n := range c.nodes {
		if n != nil {
			out[id] = n.ReplicationStats()
		}
	}
	return out
}

// IDs returns the cluster membership.
func (c *Cluster) IDs() []int {
	out := make([]int, len(c.ids))
	copy(out, c.ids)
	return out
}

// Node returns the live node with the given ID, or nil if crashed.
func (c *Cluster) Node(id int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Crash stops the node, preserving its persistent storage.
func (c *Cluster) Crash(id int) {
	c.mu.Lock()
	n := c.nodes[id]
	c.nodes[id] = nil
	c.mu.Unlock()
	if n != nil {
		n.stop()
	}
}

// Restart boots a crashed node from its persisted state.
func (c *Cluster) Restart(id int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes[id] != nil {
		return c.nodes[id]
	}
	st, ok := c.storages[id]
	if !ok {
		panic(fmt.Sprintf("raft: unknown node %d", id))
	}
	n := startNode(id, c.ids, c.cfg, st, c.trans)
	if c.mtr != nil {
		n.setRegistry(c.mtr)
	}
	c.nodes[id] = n
	return n
}

// Leader returns the current leader node, or nil if none is known.
// During a partition a deposed leader may still believe it leads in a
// stale term; the node leading in the highest term is the real one, so
// ties in role are broken by term — returning the first node found in
// Leader state would route proposals (and any read path) to the stale
// one with map-iteration luck.
func (c *Cluster) Leader() *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *Node
	var bestTerm uint64
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if st, term := n.Status(); st == Leader && (best == nil || term > bestTerm) {
			best, bestTerm = n, term
		}
	}
	return best
}

// WaitLeader blocks until some node is leader or the deadline (in clock
// time) passes. It returns the leader or nil on timeout.
func (c *Cluster) WaitLeader(timeout time.Duration) *Node {
	deadline := c.cfg.Clock.Now().Add(timeout)
	for c.cfg.Clock.Now().Before(deadline) {
		if l := c.Leader(); l != nil {
			return l
		}
		c.cfg.Clock.Sleep(10 * time.Millisecond)
	}
	return c.Leader()
}

// Stop shuts down every live node.
func (c *Cluster) Stop() {
	c.mu.Lock()
	var live []*Node
	for id, n := range c.nodes {
		if n != nil {
			live = append(live, n)
			c.nodes[id] = nil
		}
	}
	c.mu.Unlock()
	for _, n := range live {
		n.stop()
	}
}
