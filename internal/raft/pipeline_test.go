package raft

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/clock"
)

// newTestClusterCfg boots a cluster with the default config after letting
// the test tweak it (window sizes, chunk sizes).
func newTestClusterCfg(t *testing.T, n int, mod func(*Config)) (*Cluster, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	cfg := DefaultConfig(clk)
	if mod != nil {
		mod(&cfg)
	}
	c := NewCluster(n, cfg)
	t.Cleanup(func() {
		c.Stop()
		clk.Close()
	})
	return c, clk
}

// commitLatencies proposes count sequential commands on the current leader
// and returns each one's commit latency in clock time.
func commitLatencies(t *testing.T, c *Cluster, clk *clock.Sim, count int) []time.Duration {
	t.Helper()
	var out []time.Duration
	for i := 0; i < count; i++ {
		l := c.WaitLeader(5 * time.Second)
		if l == nil {
			t.Fatal("no leader")
		}
		start := clk.Now()
		idx, _, err := l.Propose([]byte(fmt.Sprintf("lat-%d", i)))
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		deadline := start.Add(5 * time.Second)
		for clk.Now().Before(deadline) && l.CommitIndex() < idx {
			clk.Sleep(time.Millisecond)
		}
		if l.CommitIndex() < idx {
			t.Fatalf("proposal %d never committed", i)
		}
		out = append(out, clk.Now().Sub(start))
	}
	return out
}

func p99(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)*99)/100]
}

// TestCommitLatencySlowFollower checks the pipelined write path's core
// latency property: commits need only a quorum, so one slow follower
// (200ms extra one-way latency) must not drag p99 commit latency beyond
// 2x the all-fast baseline. Under stop-and-wait with a shared outstanding
// round this held too, but pipelining must not regress it by stalling the
// leader's window on the slow peer.
func TestCommitLatencySlowFollower(t *testing.T) {
	measure := func(delay time.Duration) time.Duration {
		c, clk := newTestCluster(t, 3)
		l := c.WaitLeader(5 * time.Second)
		if l == nil {
			t.Fatal("no leader")
		}
		if delay > 0 {
			// Slow down one follower, never the leader.
			for _, id := range c.IDs() {
				if id != l.ID() {
					c.Transport().SetNodeDelay(id, delay)
					break
				}
			}
		}
		return p99(commitLatencies(t, c, clk, 30))
	}
	base := measure(0)
	slow := measure(200 * time.Millisecond)
	// +10ms slack absorbs tick-grain noise; a quorum stall would show up
	// as >=200ms, far beyond the bound.
	if limit := 2*base + 10*time.Millisecond; slow > limit {
		t.Fatalf("p99 commit latency with slow follower = %v, want <= %v (baseline %v)", slow, limit, base)
	}
}

// TestSnapshotStreamsInChunks crashes a follower, compacts the leader past
// the follower's log, and verifies catch-up arrives as a stream of bounded
// installSnapshot chunks rather than one monolithic message.
func TestSnapshotStreamsInChunks(t *testing.T) {
	const chunk = 8
	c, clk := newTestClusterCfg(t, 3, func(cfg *Config) { cfg.SnapChunkSize = chunk })
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	var follower int = -1
	for _, id := range c.IDs() {
		if id != l.ID() {
			follower = id
			break
		}
	}
	c.Crash(follower)

	for i := 0; i < 10; i++ {
		proposeOK(t, c, clk, fmt.Sprintf("s%d", i))
	}
	waitCommitted(t, c, clk, 10, 10*time.Second)
	snap := bytes.Repeat([]byte("x"), 100)
	if err := l.Compact(10, snap); err != nil {
		t.Fatal(err)
	}

	f := c.Restart(follower)
	var restored bool
	deadline := clk.Now().Add(20 * time.Second)
	for clk.Now().Before(deadline) && !restored {
		select {
		case a := <-f.ApplyCh():
			if a.IsSnapshot {
				if a.SnapIndex != 10 || !bytes.Equal(a.Snapshot, snap) {
					t.Fatalf("restored snapshot index=%d len=%d, want index=10 len=%d", a.SnapIndex, len(a.Snapshot), len(snap))
				}
				restored = true
			}
		default:
			clk.Sleep(5 * time.Millisecond)
		}
	}
	if !restored {
		t.Fatal("follower never received a snapshot apply")
	}

	st := l.ReplicationStats()
	// 100 bytes at 8 bytes/chunk is at least 13 chunks; heartbeat-driven
	// idempotent resends can only push the count higher.
	if st.SnapChunksSent < 13 {
		t.Fatalf("SnapChunksSent = %d, want >= 13", st.SnapChunksSent)
	}
	if st.SnapBytesSent < 100 {
		t.Fatalf("SnapBytesSent = %d, want >= 100", st.SnapBytesSent)
	}

	// The restored follower must keep replicating past the snapshot.
	idx := proposeOK(t, c, clk, "post-snap")
	deadline = clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) && f.CommitIndex() < idx {
		clk.Sleep(5 * time.Millisecond)
	}
	if f.CommitIndex() < idx {
		t.Fatalf("follower commit stalled after snapshot restore: %d < %d", f.CommitIndex(), idx)
	}
}

// TestAppliesDeliveredInOrder is the regression test for the per-broadcast
// `go deliver(...)` bug: each broadcast used to spawn its own delivery
// goroutine, so two batches of applies could race onto ApplyCh out of
// order. With the single ordered drainer, every node must observe strictly
// increasing entry indexes. Run under -race in the short CI tier.
func TestAppliesDeliveredInOrder(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	const total = 60
	// Burst proposals without waiting for commits so many AppendEntries
	// rounds (and their response-driven apply enqueues) overlap.
	for i := 0; i < total; i++ {
		proposeOK(t, c, clk, fmt.Sprintf("ord-%d", i))
	}
	got := waitCommitted(t, c, clk, total, 30*time.Second)
	for _, id := range c.IDs() {
		var prev uint64
		for _, e := range got[id] {
			if e.Index <= prev {
				t.Fatalf("node %d: apply index %d after %d (out of order)", id, e.Index, prev)
			}
			prev = e.Index
		}
	}
}
