package raft

import (
	"fmt"
	"testing"
	"time"
)

func TestCompactTruncatesLog(t *testing.T) {
	c, clk := newTestCluster(t, 1)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 10; i++ {
		if _, _, err := l.Propose([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitCommitted(t, c, clk, 10, 10*time.Second)
	if err := l.Compact(5, []byte("state@5")); err != nil {
		t.Fatal(err)
	}
	if got := l.LogLen(); got != 5 {
		t.Fatalf("log length after compact = %d, want 5", got)
	}
	// The tail must still be addressable and commits must continue.
	if _, _, err := l.Propose([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(5 * time.Second)
	for clk.Now().Before(deadline) && l.CommitIndex() < 11 {
		clk.Sleep(20 * time.Millisecond)
	}
	if l.CommitIndex() < 11 {
		t.Fatalf("commit stalled after compaction: %d", l.CommitIndex())
	}
}

func TestCompactBeyondAppliedRejected(t *testing.T) {
	c, clk := newTestCluster(t, 1)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	if _, _, err := l.Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, c, clk, 1, 5*time.Second)
	if err := l.Compact(99, nil); err == nil {
		t.Fatal("compacting beyond applied index succeeded")
	}
	// Compacting at or below the snapshot is a silent no-op.
	if err := l.Compact(1, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(1, []byte("s")); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSurvivesRestart(t *testing.T) {
	c, clk := newTestCluster(t, 1)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 6; i++ {
		if _, _, err := l.Propose([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitCommitted(t, c, clk, 6, 10*time.Second)
	if err := l.Compact(6, []byte("state@6")); err != nil {
		t.Fatal(err)
	}
	c.Crash(0)
	n := c.Restart(0)
	snap, idx := n.Snapshot()
	if idx != 6 || string(snap) != "state@6" {
		t.Fatalf("restored snapshot = (%q,%d), want (state@6,6)", snap, idx)
	}
	if n.LogLen() != 0 {
		t.Fatalf("restored log length = %d, want 0", n.LogLen())
	}
}

func TestLaggingFollowerReceivesSnapshot(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	// Pick a follower and crash it.
	follower := -1
	for _, id := range c.IDs() {
		if id != l.ID() {
			follower = id
			break
		}
	}
	c.Crash(follower)

	// Commit a batch and compact it away on the survivors.
	for i := 0; i < 8; i++ {
		proposeOK(t, c, clk, fmt.Sprintf("e%d", i))
	}
	deadline := clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		if lead := c.Leader(); lead != nil && lead.CommitIndex() >= 8 {
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}
	lead := c.Leader()
	if lead == nil {
		t.Fatal("no leader after batch")
	}
	// Drain the leader's applies so Compact is legal, then compact.
	drained := 0
	deadline = clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) && drained < 8 {
		select {
		case <-lead.ApplyCh():
			drained++
		default:
			clk.Sleep(10 * time.Millisecond)
		}
	}
	if err := lead.Compact(8, []byte("state@8")); err != nil {
		t.Fatal(err)
	}

	// Restart the follower: the leader must fast-forward it with an
	// InstallSnapshot, delivered on its apply channel.
	n := c.Restart(follower)
	deadline = clk.Now().Add(20 * time.Second)
	for clk.Now().Before(deadline) {
		select {
		case a := <-n.ApplyCh():
			if a.IsSnapshot {
				if string(a.Snapshot) != "state@8" || a.SnapIndex != 8 {
					t.Fatalf("snapshot apply = (%q,%d)", a.Snapshot, a.SnapIndex)
				}
				return
			}
		default:
			clk.Sleep(20 * time.Millisecond)
		}
	}
	t.Fatal("lagging follower never received a snapshot")
}
