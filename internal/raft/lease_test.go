package raft

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// The tests in this file pin the quorum-amortized read path: lease
// reads must cost zero confirmation rounds while the check-quorum
// lease is live, coalescing must resolve many concurrent reads per
// round, and — the safety half — step-down and clock skew beyond the
// drift bound must kill the lease and push reads back to full rounds
// rather than let a stale deadline serve stale data. The unsafe-mode
// companion proves the drift bound is load-bearing: with the defenses
// removed, the stale read actually happens.

// warmLease waits until the leader's lease has had several quorum
// heartbeat rounds to arm and returns the leader.
func warmLease(t *testing.T, c *Cluster, clk interface {
	Sleep(time.Duration)
}) *Node {
	t.Helper()
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	clk.Sleep(200 * time.Millisecond)
	return l
}

// TestLeaseReadsSkipRounds: with the lease armed by the steady
// heartbeat cadence, back-to-back ReadIndex calls are answered from
// commitIndex with zero confirmation rounds.
func TestLeaseReadsSkipRounds(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	proposeOK(t, c, clk, "w0")
	waitCommitted(t, c, clk, 1, 10*time.Second)
	l := warmLease(t, c, clk)

	before := c.ReadStats()
	const reads = 20
	for i := 0; i < reads; i++ {
		if _, err := l.ReadIndex(time.Second); err != nil {
			t.Fatalf("lease read %d: %v", i, err)
		}
	}
	after := c.ReadStats()
	if got := after.LeaseReads - before.LeaseReads; got != reads {
		t.Fatalf("lease served %d of %d reads", got, reads)
	}
	if got := after.Rounds - before.Rounds; got != 0 {
		t.Fatalf("lease-mode reads launched %d confirmation rounds, want 0", got)
	}
}

// TestLeaseDisabledPaysRounds: the A/B hatch — with leases off every
// read pays a confirmation round (coalescing off too, so exactly one).
func TestLeaseDisabledPaysRounds(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	c.SetLeaseReads(false)
	c.SetReadCoalescing(false)
	proposeOK(t, c, clk, "w0")
	waitCommitted(t, c, clk, 1, 10*time.Second)
	l := warmLease(t, c, clk)

	before := c.ReadStats()
	const reads = 5
	for i := 0; i < reads; i++ {
		if _, err := l.ReadIndex(time.Second); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	after := c.ReadStats()
	if got := after.LeaseReads - before.LeaseReads; got != 0 {
		t.Fatalf("disabled lease still served %d reads", got)
	}
	if got := after.Rounds - before.Rounds; got != reads {
		t.Fatalf("sequential reads cost %d rounds, want %d", got, reads)
	}
}

// TestCoalescedReadsShareRounds: with leases off but coalescing on,
// concurrent ReadIndex calls join shared confirmation rounds — one
// in-flight round plus one queued — instead of launching one each.
func TestCoalescedReadsShareRounds(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	c.SetLeaseReads(false)
	proposeOK(t, c, clk, "w0")
	waitCommitted(t, c, clk, 1, 10*time.Second)
	l := warmLease(t, c, clk)

	before := c.ReadStats()
	const readers = 32
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := l.ReadIndex(5 * time.Second)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("coalesced read: %v", err)
		}
	}
	after := c.ReadStats()
	if got := after.RoundReads - before.RoundReads; got != readers {
		t.Fatalf("rounds resolved %d reads, want %d", got, readers)
	}
	rounds := after.Rounds - before.Rounds
	if rounds == 0 || rounds > readers/4 {
		t.Fatalf("%d concurrent reads cost %d rounds, want amortization (1..%d)",
			readers, rounds, readers/4)
	}
}

// TestStepDownMidLeaseFailsPendingReads: a deposed leader must fail
// reads pending on its confirmation round with ErrNotLeader — never
// resolve them from its stale commit index.
func TestStepDownMidLeaseFailsPendingReads(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	proposeOK(t, c, clk, "w0")
	waitCommitted(t, c, clk, 1, 10*time.Second)
	l := warmLease(t, c, clk)

	c.Transport().Partition(l.ID())
	// Let the lease expire (its bound is under ElectionTimeoutMin) and
	// the majority elect a successor, so the stale leader's next read
	// starts a full round that can never confirm.
	clk.Sleep(400 * time.Millisecond)

	type res struct {
		idx uint64
		err error
	}
	done := make(chan res, 1)
	go func() {
		idx, err := l.ReadIndex(10 * time.Second)
		done <- res{idx, err}
	}()
	// Give the round time to register as pending, then heal: the stale
	// leader hears the successor's higher term and steps down with the
	// read still in flight.
	clk.Sleep(100 * time.Millisecond)
	c.Transport().Heal(l.ID())

	r := <-done
	if r.err == nil {
		t.Fatalf("pending read on deposed leader resolved to %d", r.idx)
	}
	if !errors.Is(r.err, ErrNotLeader) {
		t.Fatalf("pending read failed with %v, want ErrNotLeader", r.err)
	}
}

// TestClockSkewBreaksLease: a leader whose clock steps beyond the
// drift bound must lose its lease (the follower clock echoes catch the
// skew) and keep serving reads only through full confirmation rounds —
// and once partitioned it must not answer at all, while the majority's
// successor commits past it.
func TestClockSkewBreaksLease(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	proposeOK(t, c, clk, "w0")
	waitCommitted(t, c, clk, 1, 10*time.Second)
	l := warmLease(t, c, clk)

	// Prove the lease is live before the fault.
	pre := c.ReadStats()
	if _, err := l.ReadIndex(time.Second); err != nil {
		t.Fatalf("pre-skew read: %v", err)
	}
	if c.ReadStats().LeaseReads == pre.LeaseReads {
		t.Fatal("lease not armed before the skew fault")
	}

	// Step the leader's clock 10s backward — far beyond the 20ms drift
	// bound — while it is still connected.
	c.SetClockSkew(l.ID(), -10*time.Second)
	clk.Sleep(200 * time.Millisecond)
	if c.ReadStats().LeaseExpiries == pre.LeaseExpiries {
		t.Fatal("skew beyond the drift bound did not invalidate the lease")
	}

	// Connected, reads still answer — via full rounds, not the lease.
	mid := c.ReadStats()
	if _, err := l.ReadIndex(time.Second); err != nil {
		t.Fatalf("post-skew connected read: %v", err)
	}
	post := c.ReadStats()
	if post.LeaseReads != mid.LeaseReads {
		t.Fatal("skewed leader served a lease read")
	}
	if post.Rounds == mid.Rounds {
		t.Fatal("skewed leader's read cost no confirmation round")
	}

	// Partition the skewed leader; the majority elects and commits.
	c.Transport().Partition(l.ID())
	successor := waitSuccessor(t, c, clk, l.ID())
	idx, _, err := successor.Propose([]byte("w1"))
	if err != nil {
		t.Fatalf("successor propose: %v", err)
	}
	waitCommitIndex(t, successor, clk, idx)

	// The stale, skewed leader must refuse every read.
	for i := 0; i < 3; i++ {
		if got, err := l.ReadIndex(time.Second); err == nil {
			t.Fatalf("skewed stale leader served read index %d (successor committed %d)", got, idx)
		}
	}
	c.Transport().Heal(l.ID())
	c.SetClockSkew(l.ID(), 0)
}

// TestClockSkewUnsafeModeServesStale is the companion proof that the
// drift bound is load-bearing: with MaxClockDrift < 0 every defense is
// off, and the same backward clock step turns the lease into a zombie —
// the partitioned stale leader KEEPS serving reads from its old commit
// index after the successor has committed past it. This stale read is
// exactly what the bound exists to prevent; if this test starts
// failing, the unsafe escape hatch has grown a defense and the safe
// test above is no longer demonstrating anything.
func TestClockSkewUnsafeModeServesStale(t *testing.T) {
	c, clk := newTestClusterCfg(t, 3, func(cfg *Config) {
		cfg.MaxClockDrift = -1 // UNSAFE: no slack, no step checks, no echoes
	})
	proposeOK(t, c, clk, "w0")
	waitCommitted(t, c, clk, 1, 10*time.Second)
	l := warmLease(t, c, clk)

	// Partition first, then step the clock back: no later quorum round
	// can overwrite the lease with post-step timestamps, so the grant's
	// deadline lives 10s in the leader's future.
	c.Transport().Partition(l.ID())
	c.SetClockSkew(l.ID(), -10*time.Second)

	successor := waitSuccessor(t, c, clk, l.ID())
	idx, _, err := successor.Propose([]byte("w1"))
	if err != nil {
		t.Fatalf("successor propose: %v", err)
	}
	waitCommitIndex(t, successor, clk, idx)

	got, err := l.ReadIndex(time.Second)
	if err != nil {
		t.Fatalf("unsafe mode: zombie lease did not serve (%v) — the drift defenses leaked into MaxClockDrift < 0", err)
	}
	if got >= idx {
		t.Fatalf("unsafe read index %d unexpectedly covers the successor's commit %d", got, idx)
	}
	c.Transport().Heal(l.ID())
	c.SetClockSkew(l.ID(), 0)
}

// waitSuccessor blocks until some node other than excluded leads.
func waitSuccessor(t *testing.T, c *Cluster, clk interface {
	Now() time.Time
	Sleep(time.Duration)
}, excluded int) *Node {
	t.Helper()
	deadline := clk.Now().Add(15 * time.Second)
	for clk.Now().Before(deadline) {
		for _, id := range c.IDs() {
			if id == excluded {
				continue
			}
			if n := c.Node(id); n != nil && n.State() == Leader {
				return n
			}
		}
		clk.Sleep(20 * time.Millisecond)
	}
	t.Fatal("majority did not elect a successor")
	return nil
}

// waitCommitIndex blocks until n's commit index reaches idx.
func waitCommitIndex(t *testing.T, n *Node, clk interface {
	Now() time.Time
	Sleep(time.Duration)
}, idx uint64) {
	t.Helper()
	deadline := clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		if n.CommitIndex() >= idx {
			return
		}
		clk.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("commit index never reached %d", idx)
}
