package raft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
)

// readIndexOK calls ReadIndex on n, retrying transient failures (no
// leader yet, election churn) until the deadline.
func readIndexOK(t *testing.T, n *Node, clk *clock.Sim) uint64 {
	t.Helper()
	deadline := clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		idx, err := n.ReadIndex(time.Second)
		if err == nil {
			return idx
		}
		clk.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("node %d: ReadIndex never succeeded", n.ID())
	return 0
}

// TestReadIndexOnLeaderCoversCommittedWrites: the index returned by the
// leader is at least the commit index of every prior acknowledged write.
func TestReadIndexOnLeaderCoversCommittedWrites(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	var last uint64
	for i := 0; i < 5; i++ {
		last = proposeOK(t, c, clk, fmt.Sprintf("w%d", i))
	}
	waitCommitted(t, c, clk, 5, 10*time.Second)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	idx := readIndexOK(t, l, clk)
	if idx < last {
		t.Fatalf("read index %d below committed write %d", idx, last)
	}
}

// TestReadIndexFollowerForwards: a follower's ReadIndex forwards to the
// leader and returns the same guarantee.
func TestReadIndexFollowerForwards(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	last := proposeOK(t, c, clk, "w")
	waitCommitted(t, c, clk, 1, 10*time.Second)
	l := c.WaitLeader(5 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	for _, id := range c.IDs() {
		n := c.Node(id)
		if n == nil || n.ID() == l.ID() {
			continue
		}
		idx := readIndexOK(t, n, clk)
		if idx < last {
			t.Fatalf("follower %d read index %d below committed write %d", id, idx, last)
		}
	}
}

// TestReadIndexSingleNode: a single-node cluster is its own quorum and
// confirms immediately.
func TestReadIndexSingleNode(t *testing.T) {
	c, clk := newTestCluster(t, 1)
	last := proposeOK(t, c, clk, "solo")
	waitCommitted(t, c, clk, 1, 5*time.Second)
	l := c.WaitLeader(2 * time.Second)
	if idx := readIndexOK(t, l, clk); idx < last {
		t.Fatalf("read index %d below committed write %d", idx, last)
	}
}

// TestReadIndexFreshLeaderCommitsBarrier: a leader elected into a term
// with no proposals of its own must not serve a read index below its
// predecessor's committed writes — it commits a no-op barrier first.
func TestReadIndexFreshLeaderCommitsBarrier(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	var last uint64
	for i := 0; i < 3; i++ {
		last = proposeOK(t, c, clk, fmt.Sprintf("old-%d", i))
	}
	waitCommitted(t, c, clk, 3, 10*time.Second)
	old := c.WaitLeader(5 * time.Second)
	if old == nil {
		t.Fatal("no leader")
	}
	c.Crash(old.ID())

	// Wait for a successor; ask it for a read index before proposing
	// anything in its term.
	deadline := clk.Now().Add(15 * time.Second)
	var successor *Node
	for clk.Now().Before(deadline) {
		if l := c.Leader(); l != nil && l.ID() != old.ID() {
			successor = l
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}
	if successor == nil {
		t.Fatal("no failover leader")
	}
	idx := readIndexOK(t, successor, clk)
	if idx < last {
		t.Fatalf("fresh leader served read index %d below predecessor's committed write %d", idx, last)
	}
	// The barrier is a real log entry: it reaches the apply channel as a
	// nil-Cmd entry beyond the old writes.
	sawBarrier := false
	deadline = clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) && !sawBarrier {
		select {
		case a := <-successor.ApplyCh():
			if len(a.Entry.Cmd) == 0 && a.Entry.Index > last {
				sawBarrier = true
			}
		default:
			clk.Sleep(20 * time.Millisecond)
		}
	}
	if !sawBarrier {
		t.Fatal("no-op barrier never applied on the fresh leader")
	}
}

// TestReadIndexPartitionedLeaderNeverAnswers: a leader cut off from the
// cluster must fail its read-index rounds (no quorum of acks) rather
// than serve an index that could miss the majority side's writes.
func TestReadIndexPartitionedLeaderNeverAnswers(t *testing.T) {
	c, clk := newTestCluster(t, 3)
	proposeOK(t, c, clk, "w0")
	waitCommitted(t, c, clk, 1, 10*time.Second)
	stale := c.WaitLeader(5 * time.Second)
	if stale == nil {
		t.Fatal("no leader")
	}
	c.Transport().Partition(stale.ID())

	// The majority elects a successor and commits new writes the stale
	// leader cannot see.
	deadline := clk.Now().Add(15 * time.Second)
	var successor *Node
	for clk.Now().Before(deadline) {
		for _, id := range c.IDs() {
			if id == stale.ID() {
				continue
			}
			if n := c.Node(id); n != nil && n.State() == Leader {
				successor = n
			}
		}
		if successor != nil {
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}
	if successor == nil {
		t.Fatal("majority did not elect a successor")
	}

	// Every round on the stale leader must fail until it heals.
	for i := 0; i < 3; i++ {
		if idx, err := stale.ReadIndex(time.Second); err == nil {
			t.Fatalf("partitioned stale leader served read index %d", idx)
		} else if !errors.Is(err, ErrReadTimeout) && !errors.Is(err, ErrNotLeader) {
			t.Fatalf("unexpected error from stale leader: %v", err)
		}
	}
	// The successor serves fine with its quorum.
	if _, err := successor.ReadIndex(2 * time.Second); err != nil {
		t.Fatalf("majority leader read index: %v", err)
	}
}
