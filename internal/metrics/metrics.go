// Package metrics is a small instrumentation registry (counters, gauges
// and duration histograms) used by the core services for the metering
// and monitoring the paper assigns to the API layer ("handles all the
// incoming API requests including load balancing, metering, and access
// management"). It is deliberately Prometheus-shaped without the wire
// format: names plus ordered label values.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry holds named instruments. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]float64
	gauges     map[string]float64
	histograms map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]float64),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*histogram),
	}
}

// key renders name plus labels canonically: name{a,b}.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// Inc adds 1 to the counter.
func (r *Registry) Inc(name string, labels ...string) {
	r.Add(name, 1, labels...)
}

// Add increases the counter by v (v must be >= 0).
func (r *Registry) Add(name string, v float64, labels ...string) {
	if v < 0 {
		panic(fmt.Sprintf("metrics: negative counter add for %s", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[key(name, labels)] += v
}

// Counter reads the counter's current value.
func (r *Registry) Counter(name string, labels ...string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[key(name, labels)]
}

// SetGauge sets the gauge to v.
func (r *Registry) SetGauge(name string, v float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[key(name, labels)] = v
}

// Gauge reads the gauge's current value.
func (r *Registry) Gauge(name string, labels ...string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[key(name, labels)]
}

// histogram accumulates durations in fixed exponential buckets.
type histogram struct {
	bounds []time.Duration
	counts []int64
	sum    time.Duration
	n      int64
}

// defaultBounds covers 1ms..~5min exponentially.
func defaultBounds() []time.Duration {
	var out []time.Duration
	for d := time.Millisecond; d <= 5*time.Minute; d *= 4 {
		out = append(out, d)
	}
	return out
}

// Observe records a duration sample into the named histogram.
func (r *Registry) Observe(name string, d time.Duration, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	h := r.histograms[k]
	if h == nil {
		h = &histogram{bounds: defaultBounds()}
		h.counts = make([]int64, len(h.bounds)+1)
		r.histograms[k] = h
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i]++
	h.sum += d
	h.n++
}

// HistogramStats summarizes a histogram.
type HistogramStats struct {
	Count int64
	Sum   time.Duration
	Mean  time.Duration
}

// Histogram reads the named histogram's summary.
func (r *Registry) Histogram(name string, labels ...string) HistogramStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[key(name, labels)]
	if h == nil || h.n == 0 {
		return HistogramStats{}
	}
	return HistogramStats{Count: h.n, Sum: h.sum, Mean: h.sum / time.Duration(h.n)}
}

// Snapshot renders every instrument, sorted by name, one per line.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for k, v := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %.0f", k, v))
	}
	for k, v := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", k, v))
	}
	for k, h := range r.histograms {
		mean := time.Duration(0)
		if h.n > 0 {
			mean = h.sum / time.Duration(h.n)
		}
		lines = append(lines, fmt.Sprintf("histogram %s count=%d mean=%v", k, h.n, mean))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
