// Package metrics is a small instrumentation registry (counters, gauges
// and duration histograms) used by the core services for the metering
// and monitoring the paper assigns to the API layer ("handles all the
// incoming API requests including load balancing, metering, and access
// management"). It is deliberately Prometheus-shaped without the wire
// format: names plus ordered label values.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry holds named instruments. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]float64
	gauges     map[string]float64
	histograms map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]float64),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*histogram),
	}
}

// key renders name plus labels canonically: name{a,b}.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// Inc adds 1 to the counter.
func (r *Registry) Inc(name string, labels ...string) {
	r.Add(name, 1, labels...)
}

// Add increases the counter by v (v must be >= 0).
func (r *Registry) Add(name string, v float64, labels ...string) {
	if v < 0 {
		panic(fmt.Sprintf("metrics: negative counter add for %s", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[key(name, labels)] += v
}

// Counter reads the counter's current value.
func (r *Registry) Counter(name string, labels ...string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[key(name, labels)]
}

// SetGauge sets the gauge to v.
func (r *Registry) SetGauge(name string, v float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[key(name, labels)] = v
}

// Gauge reads the gauge's current value.
func (r *Registry) Gauge(name string, labels ...string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[key(name, labels)]
}

// histogram accumulates durations in fixed exponential buckets.
type histogram struct {
	bounds []time.Duration
	counts []int64
	sum    time.Duration
	n      int64
}

// defaultBounds covers 1ms..~5min exponentially.
func defaultBounds() []time.Duration {
	var out []time.Duration
	for d := time.Millisecond; d <= 5*time.Minute; d *= 4 {
		out = append(out, d)
	}
	return out
}

// Observe records a duration sample into the named histogram.
func (r *Registry) Observe(name string, d time.Duration, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	h := r.histograms[k]
	if h == nil {
		h = &histogram{bounds: defaultBounds()}
		h.counts = make([]int64, len(h.bounds)+1)
		r.histograms[k] = h
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i]++
	h.sum += d
	h.n++
}

// HistogramStats summarizes a histogram, including its full bucket
// detail: Bounds are the inclusive upper bounds, Counts has one entry
// per bound plus a final overflow bucket, so quantile claims are
// computed from the real distribution rather than the mean.
type HistogramStats struct {
	Count  int64
	Sum    time.Duration
	Mean   time.Duration
	Bounds []time.Duration
	Counts []int64
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the bucket containing the target rank.
// Samples in the overflow bucket clamp to the highest finite bound.
func (s HistogramStats) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	top := s.Bounds[len(s.Bounds)-1]
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return top
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + time.Duration(float64(hi-lo)*frac)
	}
	return top
}

// Histogram reads the named histogram's summary.
func (r *Registry) Histogram(name string, labels ...string) HistogramStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[key(name, labels)]
	if h == nil || h.n == 0 {
		return HistogramStats{}
	}
	return HistogramStats{
		Count:  h.n,
		Sum:    h.sum,
		Mean:   h.sum / time.Duration(h.n),
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
	}
}

// Quantile reads the q-quantile of the named histogram.
func (r *Registry) Quantile(name string, q float64, labels ...string) time.Duration {
	return r.Histogram(name, labels...).Quantile(q)
}

// Snapshot renders every instrument, sorted by name, one per line.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	hs := make(map[string]HistogramStats, len(r.histograms))
	for k, h := range r.histograms {
		hs[k] = HistogramStats{Count: h.n, Sum: h.sum,
			Bounds: append([]time.Duration(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...)}
	}
	var lines []string
	for k, v := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %.0f", k, v))
	}
	for k, v := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", k, v))
	}
	r.mu.Unlock()
	for k, h := range hs {
		mean := time.Duration(0)
		if h.Count > 0 {
			mean = h.Sum / time.Duration(h.Count)
		}
		lines = append(lines, fmt.Sprintf("histogram %s count=%d mean=%v p50=%v p95=%v p99=%v",
			k, h.Count, mean, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// HistogramExport is a histogram in Export form.
type HistogramExport struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
}

// Export is a structured point-in-time snapshot of the registry,
// suitable for embedding in JSON reports (campaign verdicts).
type Export struct {
	Counters   map[string]float64         `json:"counters,omitempty"`
	Gauges     map[string]float64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramExport `json:"histograms,omitempty"`
}

// Export snapshots every instrument with real-bucket quantiles.
func (r *Registry) Export() Export {
	r.mu.Lock()
	out := Export{}
	if len(r.counters) > 0 {
		out.Counters = make(map[string]float64, len(r.counters))
		for k, v := range r.counters {
			out.Counters[k] = v
		}
	}
	if len(r.gauges) > 0 {
		out.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			out.Gauges[k] = v
		}
	}
	hs := make(map[string]HistogramStats, len(r.histograms))
	for k, h := range r.histograms {
		hs[k] = HistogramStats{Count: h.n, Sum: h.sum,
			Bounds: append([]time.Duration(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...)}
	}
	r.mu.Unlock()
	if len(hs) > 0 {
		out.Histograms = make(map[string]HistogramExport, len(hs))
		for k, h := range hs {
			mean := time.Duration(0)
			if h.Count > 0 {
				mean = h.Sum / time.Duration(h.Count)
			}
			out.Histograms[k] = HistogramExport{
				Count: h.Count, Mean: mean,
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
		}
	}
	return out
}

// splitKey undoes key(): "name{a,b}" -> ("name", "a,b").
func splitKey(k string) (name, labels string) {
	if i := strings.IndexByte(k, '{'); i >= 0 && strings.HasSuffix(k, "}") {
		return k[:i], k[i+1 : len(k)-1]
	}
	return k, ""
}

func promLine(b *strings.Builder, name, labels, extra string, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		if labels != "" {
			fmt.Fprintf(b, "labels=%q", labels)
			if extra != "" {
				b.WriteByte(',')
			}
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// PrometheusText renders the registry in the Prometheus text
// exposition format. The registry stores ordered label values without
// keys, so they surface as a single `labels="a,b"` label; durations
// are exported in seconds. Output is deterministically sorted.
func (r *Registry) PrometheusText() string {
	r.mu.Lock()
	counters := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hs := make(map[string]HistogramStats, len(r.histograms))
	for k, h := range r.histograms {
		hs[k] = HistogramStats{Count: h.n, Sum: h.sum,
			Bounds: append([]time.Duration(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...)}
	}
	r.mu.Unlock()

	var b strings.Builder
	typed := make(map[string]bool)
	emitType := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, k := range sortedKeys(counters) {
		name, labels := splitKey(k)
		emitType(name, "counter")
		promLine(&b, name, labels, "", fmt.Sprintf("%g", counters[k]))
	}
	for _, k := range sortedKeys(gauges) {
		name, labels := splitKey(k)
		emitType(name, "gauge")
		promLine(&b, name, labels, "", fmt.Sprintf("%g", gauges[k]))
	}
	hkeys := make([]string, 0, len(hs))
	for k := range hs {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		name, labels := splitKey(k)
		h := hs[k]
		emitType(name, "histogram")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			promLine(&b, name+"_bucket", labels,
				fmt.Sprintf("le=%q", fmt.Sprintf("%g", bound.Seconds())),
				fmt.Sprintf("%d", cum))
		}
		promLine(&b, name+"_bucket", labels, `le="+Inf"`, fmt.Sprintf("%d", h.Count))
		promLine(&b, name+"_sum", labels, "", fmt.Sprintf("%g", h.Sum.Seconds()))
		promLine(&b, name+"_count", labels, "", fmt.Sprintf("%d", h.Count))
	}
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
