package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	r.Inc("api_requests", "submit", "alice")
	r.Inc("api_requests", "submit", "alice")
	r.Add("api_requests", 3, "submit", "bob")
	if got := r.Counter("api_requests", "submit", "alice"); got != 2 {
		t.Fatalf("alice = %v", got)
	}
	if got := r.Counter("api_requests", "submit", "bob"); got != 3 {
		t.Fatalf("bob = %v", got)
	}
	if got := r.Counter("api_requests", "halt", "alice"); got != 0 {
		t.Fatalf("unobserved = %v", got)
	}
}

func TestNegativeAddPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("negative add did not panic")
		}
	}()
	r.Add("x", -1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("free_gpus", 12)
	r.SetGauge("free_gpus", 8)
	if got := r.Gauge("free_gpus"); got != 8 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	r.Observe("latency", 10*time.Millisecond, "submit")
	r.Observe("latency", 30*time.Millisecond, "submit")
	st := r.Histogram("latency", "submit")
	if st.Count != 2 || st.Sum != 40*time.Millisecond || st.Mean != 20*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
	if st := r.Histogram("latency", "other"); st.Count != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Inc("b_counter")
	r.SetGauge("a_gauge", 1)
	r.Observe("c_hist", time.Second)
	snap := r.Snapshot()
	for _, want := range []string{"counter b_counter 1", "gauge a_gauge 1", "c_hist count=1"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
	lines := strings.Split(snap, "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("snapshot not sorted:\n%s", snap)
		}
	}
}

func TestHistogramBucketExport(t *testing.T) {
	r := NewRegistry()
	r.Observe("lat", 2*time.Millisecond)
	r.Observe("lat", 10*time.Millisecond)
	r.Observe("lat", 24*time.Hour) // overflow bucket
	st := r.Histogram("lat")
	if len(st.Bounds) == 0 || len(st.Counts) != len(st.Bounds)+1 {
		t.Fatalf("bucket detail missing: bounds=%d counts=%d", len(st.Bounds), len(st.Counts))
	}
	var total int64
	for _, c := range st.Counts {
		total += c
	}
	if total != st.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, st.Count)
	}
	if st.Counts[len(st.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", st.Counts[len(st.Counts)-1])
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	// 99 fast samples and 1 slow one: p50 must stay in the fast
	// bucket, p99+ must reach the slow one. This is exactly what the
	// mean hides.
	for i := 0; i < 99; i++ {
		r.Observe("lat", 2*time.Millisecond)
	}
	r.Observe("lat", 40*time.Second)
	p50 := r.Quantile("lat", 0.50)
	p999 := r.Quantile("lat", 0.999)
	if p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want within the 4ms bucket", p50)
	}
	if p999 < 16*time.Second {
		t.Fatalf("p99.9 = %v, want in the slow bucket", p999)
	}
	mean := r.Histogram("lat").Mean
	if p50 >= mean {
		t.Fatalf("p50 (%v) should sit far below the outlier-dragged mean (%v)", p50, mean)
	}
	// Quantiles interpolate monotonically.
	last := time.Duration(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := r.Quantile("lat", q)
		if v < last {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, v, last)
		}
		last = v
	}
	if r.Quantile("missing", 0.5) != 0 {
		t.Fatal("missing histogram quantile must be 0")
	}
}

func TestExport(t *testing.T) {
	r := NewRegistry()
	r.Inc("jobs_total", "completed")
	r.SetGauge("free_gpus", 3)
	r.Observe("lat", 5*time.Millisecond, "submit")
	ex := r.Export()
	if ex.Counters[`jobs_total{completed}`] != 1 {
		t.Fatalf("export counters = %+v", ex.Counters)
	}
	if ex.Gauges["free_gpus"] != 3 {
		t.Fatalf("export gauges = %+v", ex.Gauges)
	}
	h, ok := ex.Histograms[`lat{submit}`]
	if !ok || h.Count != 1 || h.P99 == 0 {
		t.Fatalf("export histograms = %+v", ex.Histograms)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Inc("api_requests_total", "submit", "alice")
	r.SetGauge("free_gpus", 8)
	r.Observe("api_latency", 3*time.Millisecond, "submit")
	text := r.PrometheusText()
	for _, want := range []string{
		"# TYPE api_requests_total counter",
		`api_requests_total{labels="submit,alice"} 1`,
		"# TYPE free_gpus gauge",
		"free_gpus 8",
		"# TYPE api_latency histogram",
		`api_latency_bucket{labels="submit",le="+Inf"} 1`,
		`api_latency_count{labels="submit"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
	// Buckets are cumulative: the +Inf bucket equals _count.
	if r.PrometheusText() != text {
		t.Fatal("prometheus text not deterministic")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Inc("ops")
				r.Observe("lat", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops"); got != 1600 {
		t.Fatalf("ops = %v", got)
	}
	if st := r.Histogram("lat"); st.Count != 1600 {
		t.Fatalf("hist = %+v", st)
	}
}
