package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	r.Inc("api_requests", "submit", "alice")
	r.Inc("api_requests", "submit", "alice")
	r.Add("api_requests", 3, "submit", "bob")
	if got := r.Counter("api_requests", "submit", "alice"); got != 2 {
		t.Fatalf("alice = %v", got)
	}
	if got := r.Counter("api_requests", "submit", "bob"); got != 3 {
		t.Fatalf("bob = %v", got)
	}
	if got := r.Counter("api_requests", "halt", "alice"); got != 0 {
		t.Fatalf("unobserved = %v", got)
	}
}

func TestNegativeAddPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("negative add did not panic")
		}
	}()
	r.Add("x", -1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("free_gpus", 12)
	r.SetGauge("free_gpus", 8)
	if got := r.Gauge("free_gpus"); got != 8 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	r.Observe("latency", 10*time.Millisecond, "submit")
	r.Observe("latency", 30*time.Millisecond, "submit")
	st := r.Histogram("latency", "submit")
	if st.Count != 2 || st.Sum != 40*time.Millisecond || st.Mean != 20*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
	if st := r.Histogram("latency", "other"); st.Count != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Inc("b_counter")
	r.SetGauge("a_gauge", 1)
	r.Observe("c_hist", time.Second)
	snap := r.Snapshot()
	for _, want := range []string{"counter b_counter 1", "gauge a_gauge 1", "c_hist count=1"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
	lines := strings.Split(snap, "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("snapshot not sorted:\n%s", snap)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Inc("ops")
				r.Observe("lat", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops"); got != 1600 {
		t.Fatalf("ops = %v", got)
	}
	if st := r.Histogram("lat"); st.Count != 1600 {
		t.Fatalf("hist = %+v", st)
	}
}
