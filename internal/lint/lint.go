// Package lint is dlaas-vet's analysis engine: a stdlib-only analyzer
// framework (go/parser + go/ast + go/types; dependency export data via
// `go list -export`) with domain rules that machine-check the
// platform's dependability invariants — virtual-clock purity, seeded
// randomness, order-stable map iteration on replicated and fingerprint
// paths, lock discipline, and goroutine lifecycle ownership.
//
// Everything `go test` can only sample, these analyzers enforce
// exhaustively at compile time: a nondeterministic map iteration in an
// apply path is a replica-divergence bug whether or not a test catches
// it on today's seed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation at a position.
type Finding struct {
	Rule    string         `json:"rule"`
	Package string         `json:"package"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Message string         `json:"message"`
	// Suppressed is set when a //lint:allow comment covers the finding;
	// suppressed findings are reported in JSON inventories but do not
	// fail the run.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message)
}

// Pass hands one analysis unit to an analyzer.
type Pass struct {
	Pkg    *Package
	Policy *Policy
	Rule   RuleConfig

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.findings = append(p.findings, Finding{
		Rule:    "", // filled by the runner
		Package: p.Pkg.ImportPath,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Message: fmt.Sprintf(format, args...),
	})
}

// Files yields the unit's files the rule applies to, honoring the
// per-rule skipTests policy.
func (p *Pass) Files() []*ast.File {
	if !p.Rule.SkipTests {
		return p.Pkg.Files
	}
	var out []*ast.File
	for _, f := range p.Pkg.Files {
		if !p.Pkg.IsTest[f] {
			out = append(out, f)
		}
	}
	return out
}

// An Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full rule set in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		SeededRandAnalyzer,
		MapOrderAnalyzer,
		LockDisciplineAnalyzer,
		GoLoopAnalyzer,
	}
}

// AnalyzerNames returns the rule names in stable order.
func AnalyzerNames() []string {
	as := Analyzers()
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_-]+)(?:\s+(.*))?$`)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	rule   string
	reason string
	line   int
	file   string
	pos    token.Pos
}

// collectAllows parses every //lint:allow directive in the unit. A
// directive suppresses findings of exactly its named rule on its own
// line and on the line directly below it (so it can ride at end of
// line or on a line of its own above the flagged statement).
func collectAllows(pkg *Package) []allowDirective {
	var out []allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, allowDirective{
					rule:   m[1],
					reason: strings.TrimSpace(m[2]),
					line:   pos.Line,
					file:   pos.Filename,
					pos:    c.Pos(),
				})
			}
		}
	}
	return out
}

// Run executes the selected analyzers (all of them if names is empty)
// over the unit, applies suppressions, and returns findings sorted by
// position. Malformed directives (missing reason, unknown rule name)
// are themselves findings under the "lint" pseudo-rule: a suppression
// without a reason is review debt the inventory must show.
func Run(pkg *Package, policy *Policy, names ...string) []Finding {
	selected := Analyzers()
	if len(names) > 0 {
		want := make(map[string]bool, len(names))
		for _, n := range names {
			want[n] = true
		}
		var out []*Analyzer
		for _, a := range selected {
			if want[a.Name] {
				out = append(out, a)
			}
		}
		selected = out
	}

	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	var findings []Finding
	for _, a := range selected {
		rc := policy.Rule(a.Name)
		if !rc.appliesTo(pkg.RelPath) {
			continue
		}
		pass := &Pass{Pkg: pkg, Policy: policy, Rule: rc}
		a.Run(pass)
		for i := range pass.findings {
			pass.findings[i].Rule = a.Name
		}
		findings = append(findings, pass.findings...)
	}

	allows := collectAllows(pkg)
	type key struct {
		file string
		line int
		rule string
	}
	allowAt := make(map[key]*allowDirective)
	for i := range allows {
		d := &allows[i]
		if d.reason == "" {
			findings = append(findings, Finding{
				Rule:    "lint",
				Package: pkg.ImportPath,
				Pos:     pkg.Fset.Position(d.pos),
				File:    d.file,
				Line:    d.line,
				Message: fmt.Sprintf("lint:allow %s has no reason; every suppression must say why", d.rule),
			})
			continue
		}
		if !known[d.rule] {
			findings = append(findings, Finding{
				Rule:    "lint",
				Package: pkg.ImportPath,
				Pos:     pkg.Fset.Position(d.pos),
				File:    d.file,
				Line:    d.line,
				Message: fmt.Sprintf("lint:allow names unknown rule %q (known: %s)", d.rule, strings.Join(AnalyzerNames(), ", ")),
			})
			continue
		}
		allowAt[key{d.file, d.line, d.rule}] = d
		allowAt[key{d.file, d.line + 1, d.rule}] = d
	}
	for i := range findings {
		f := &findings[i]
		if f.Rule == "lint" {
			continue // suppression hygiene findings cannot be suppressed
		}
		if d, ok := allowAt[key{f.File, f.Line, f.Rule}]; ok {
			f.Suppressed = true
			f.Reason = d.reason
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	return findings
}

// Active filters findings down to the ones that fail a run (not
// suppressed).
func Active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
