package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// RuleConfig scopes one rule by module-relative path prefix and test
// membership. Empty Include means "everywhere"; Exclude wins over
// Include.
type RuleConfig struct {
	// Include limits the rule to packages whose module-relative path
	// has one of these prefixes ("." matches only the module root).
	Include []string `json:"include,omitempty"`
	// Exclude turns the rule off for matching packages.
	Exclude []string `json:"exclude,omitempty"`
	// SkipTests turns the rule off inside *_test.go files.
	SkipTests bool `json:"skipTests,omitempty"`
	// TestAllow lists function names the rule tolerates in test files
	// (wallclock: watchdog `time.After` in selects is legitimate test
	// hygiene, wall-time sleeps are not).
	TestAllow []string `json:"testAllow,omitempty"`
	// SinkPatterns adds order-sensitive callee-name regexes to
	// maporder's built-in sink set.
	SinkPatterns []string `json:"sinkPatterns,omitempty"`

	sinkRe []*regexp.Regexp
}

func (rc RuleConfig) appliesTo(relPath string) bool {
	match := func(prefixes []string) bool {
		for _, p := range prefixes {
			p = strings.TrimSuffix(p, "/")
			if p == relPath || strings.HasPrefix(relPath, p+"/") {
				return true
			}
		}
		return false
	}
	if match(rc.Exclude) {
		return false
	}
	if len(rc.Include) > 0 && !match(rc.Include) {
		return false
	}
	return true
}

func (rc RuleConfig) testAllows(name string) bool {
	for _, n := range rc.TestAllow {
		if n == name {
			return true
		}
	}
	return false
}

// Policy is the per-path rule configuration dlaas-vet loads from a
// JSON file at the module root (dlaas-vet.json by default).
type Policy struct {
	// Rules maps rule name to its scope config. Unlisted rules apply
	// everywhere with defaults.
	Rules map[string]RuleConfig `json:"rules,omitempty"`
	// LockOrder declares the global lock acquisition order as pairs
	// [earlier, later] of lock IDs ("pkg.Type.field"): acquiring
	// `earlier` while `later` is held is an inversion.
	LockOrder [][2]string `json:"lockOrder,omitempty"`
}

// DefaultPolicy is the zero configuration: every rule everywhere, no
// declared lock order.
func DefaultPolicy() *Policy {
	return &Policy{Rules: map[string]RuleConfig{}}
}

// LoadPolicy reads a policy file; a missing file yields the default
// policy so dlaas-vet works on bare checkouts.
func LoadPolicy(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return DefaultPolicy(), nil
	}
	if err != nil {
		return nil, err
	}
	p := DefaultPolicy()
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("lint: policy %s: %w", path, err)
	}
	for name, rc := range p.Rules {
		for _, pat := range rc.SinkPatterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("lint: policy %s: rule %s sink pattern %q: %w", path, name, pat, err)
			}
			rc.sinkRe = append(rc.sinkRe, re)
		}
		p.Rules[name] = rc
	}
	return p, nil
}

// Rule returns the config for name (zero config when unlisted).
func (p *Policy) Rule(name string) RuleConfig {
	if p == nil || p.Rules == nil {
		return RuleConfig{}
	}
	return p.Rules[name]
}

// lockBefore reports whether the policy orders a strictly before b.
func (p *Policy) lockBefore(a, b string) bool {
	if p == nil {
		return false
	}
	for _, pair := range p.LockOrder {
		if pair[0] == a && pair[1] == b {
			return true
		}
	}
	return false
}
