package lint

// Golden-file tests: every fixture package under testdata/src carries
// `// want "regex"` comments on the lines the analyzers must flag, and
// nothing else may fire. The allow fixture pins the suppression
// contract: //lint:allow covers exactly its named rule, and malformed
// directives are findings themselves.

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"(.*)"\s*$`)

// wants maps basename:line to the expected-message regex parsed from
// the fixture's want comments.
func wants(t *testing.T, dir string) map[string]*regexp.Regexp {
	t.Helper()
	out := make(map[string]*regexp.Regexp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), line, m[1], err)
			}
			out[key(e.Name(), line)] = re
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return out
}

func key(file string, line int) string {
	return filepath.Base(file) + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// loadFixture type-checks one testdata package; fixtures must compile
// cleanly or the analysis under test is meaningless.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s type error: %v", name, terr)
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkg
}

// checkGolden runs the analyzers over the fixture and diffs findings
// against the want comments: every finding must be wanted, every want
// must fire.
func checkGolden(t *testing.T, pkg *Package, policy *Policy, rules ...string) {
	t.Helper()
	findings := Run(pkg, policy, rules...)
	expected := wants(t, pkg.Dir)
	matched := make(map[string]bool)
	for _, f := range findings {
		k := key(f.File, f.Line)
		re, ok := expected[k]
		if !ok {
			t.Errorf("unexpected finding %s:%d: [%s] %s", filepath.Base(f.File), f.Line, f.Rule, f.Message)
			continue
		}
		if !re.MatchString(f.Message) {
			t.Errorf("%s: finding %q does not match want %q", k, f.Message, re)
		}
		matched[k] = true
	}
	for k, re := range expected {
		if !matched[k] {
			t.Errorf("%s: wanted finding %q never fired", k, re)
		}
	}
}

func TestWallclockGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "wallclock"), DefaultPolicy(), "wallclock")
}

func TestSeededRandGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "seededrand"), DefaultPolicy(), "seededrand")
}

func TestMapOrderGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "maporder"), DefaultPolicy(), "maporder")
}

func TestLockDisciplineGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "lockdiscipline"), DefaultPolicy(), "lockdiscipline")
}

func TestLockOrderGolden(t *testing.T) {
	policy := DefaultPolicy()
	policy.LockOrder = [][2]string{{"lockorder.engine.stateMu", "lockorder.hub.fanMu"}}
	checkGolden(t, loadFixture(t, "lockorder"), policy, "lockdiscipline")
}

func TestGoLoopGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "goloop"), DefaultPolicy(), "goloop")
}

// TestAllowPrecision pins the suppression contract on the allow
// fixture: a //lint:allow covers exactly its named rule on its line
// and the line below; wrong-rule, reasonless, and unknown-rule
// directives leave the finding active (and the malformed ones are
// "lint" findings themselves).
func TestAllowPrecision(t *testing.T) {
	pkg := loadFixture(t, "allow")
	findings := Run(pkg, DefaultPolicy())

	byRule := make(map[string][]Finding)
	for _, f := range findings {
		byRule[f.Rule] = append(byRule[f.Rule], f)
	}

	wall := byRule["wallclock"]
	if len(wall) != 5 {
		t.Fatalf("wallclock findings = %d, want 5: %v", len(wall), wall)
	}
	var suppressed, active int
	for _, f := range wall {
		if f.Suppressed {
			suppressed++
			if f.Reason == "" {
				t.Errorf("suppressed finding at line %d has empty reason", f.Line)
			}
		} else {
			active++
		}
	}
	if suppressed != 2 || active != 3 {
		t.Errorf("wallclock suppressed/active = %d/%d, want 2/3: %v", suppressed, active, wall)
	}

	// The wrong-rule directive must not have suppressed the wallclock
	// finding it sits above.
	for _, f := range wall {
		if f.Suppressed && !strings.Contains(f.Reason, "documented real-time") {
			t.Errorf("finding at line %d suppressed by the wrong directive (reason %q)", f.Line, f.Reason)
		}
	}

	lintF := byRule["lint"]
	if len(lintF) != 2 {
		t.Fatalf("lint hygiene findings = %d, want 2 (no-reason + unknown-rule): %v", len(lintF), lintF)
	}
	var sawNoReason, sawUnknown bool
	for _, f := range lintF {
		if f.Suppressed {
			t.Errorf("lint hygiene finding at line %d is suppressed; hygiene findings must not be suppressible", f.Line)
		}
		if strings.Contains(f.Message, "has no reason") {
			sawNoReason = true
		}
		if strings.Contains(f.Message, "unknown rule") {
			sawUnknown = true
		}
	}
	if !sawNoReason || !sawUnknown {
		t.Errorf("lint findings missing a case: noReason=%v unknown=%v: %v", sawNoReason, sawUnknown, lintF)
	}

	// Active() must drop exactly the suppressed pair.
	if got, want := len(Active(findings)), len(findings)-2; got != want {
		t.Errorf("Active() = %d findings, want %d", got, want)
	}
}

// TestPolicyScoping pins the path and test-file scoping knobs.
func TestPolicyScoping(t *testing.T) {
	rc := RuleConfig{Include: []string{"internal/store"}, Exclude: []string{"internal/store/testutil"}}
	cases := []struct {
		rel  string
		want bool
	}{
		{"internal/store", true},
		{"internal/store/sub", true},
		{"internal/store/testutil", false},
		{"internal/storeother", false},
		{"internal/etcd", false},
	}
	for _, c := range cases {
		if got := rc.appliesTo(c.rel); got != c.want {
			t.Errorf("appliesTo(%q) = %v, want %v", c.rel, got, c.want)
		}
	}
	if !(RuleConfig{TestAllow: []string{"After"}}).testAllows("After") {
		t.Error("testAllows(After) = false, want true")
	}
	if (RuleConfig{TestAllow: []string{"After"}}).testAllows("Sleep") {
		t.Error("testAllows(Sleep) = true, want false")
	}
}

// TestRepoPolicyLoads guards the checked-in policy file: it must parse
// and reference only known rules.
func TestRepoPolicyLoads(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	policy, err := LoadPolicy(filepath.Join(ld.ModuleRoot, "dlaas-vet.json"))
	if err != nil {
		t.Fatal(err)
	}
	known := make(map[string]bool)
	for _, n := range AnalyzerNames() {
		known[n] = true
	}
	for name := range policy.Rules {
		if !known[name] {
			t.Errorf("dlaas-vet.json configures unknown rule %q", name)
		}
	}
}
