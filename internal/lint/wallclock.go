package lint

// wallclock: every component must take time from the injectable
// virtual clock (internal/clock). A direct wall-clock read or timer is
// invisible to the simulation scheduler: it desynchronizes replayed
// chaos schedules, stretches the -short tier with real sleeps, and
// makes trace fingerprints timing-dependent. The rule forbids the
// time-package functions that observe or schedule real time; pure data
// (time.Duration, time.Time arithmetic, constants) stays allowed.

import (
	"go/ast"
)

// wallclockBanned are the time-package functions that touch the real
// clock. time.Since/Until read time.Now internally; time.Tick leaks a
// ticker on top of being real-time.
var wallclockBanned = map[string]string{
	"Now":       "read the injected clock.Clock's Now instead",
	"Sleep":     "use clock.Clock's Sleep so virtual time can advance",
	"After":     "use clock.Clock's After so timers fire on the virtual clock",
	"AfterFunc": "use clock.Clock's AfterFunc",
	"Tick":      "use clock.Clock's NewTicker (time.Tick also leaks the ticker)",
	"NewTimer":  "use clock.Clock's NewTimer",
	"NewTicker": "use clock.Clock's NewTicker",
	"Since":     "use clock.Clock's Since (time.Since reads the wall clock)",
	"Until":     "compute against the injected clock's Now (time.Until reads the wall clock)",
}

// WallclockAnalyzer forbids time.Now/Sleep/After/... outside the
// clock abstraction itself (policy-excluded).
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock time functions outside internal/clock; all components take time from the injectable virtual clock",
	Run:  runWallclock,
}

func runWallclock(p *Pass) {
	for _, file := range p.Files() {
		isTest := p.Pkg.IsTest[file]
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgPathOf(p, file, sel.X) != "time" {
				return true
			}
			remedy, banned := wallclockBanned[sel.Sel.Name]
			if !banned {
				return true
			}
			if isTest && p.Rule.testAllows(sel.Sel.Name) {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s bypasses the virtual clock; %s", sel.Sel.Name, remedy)
			return true
		})
	}
}
