package lint

// seededrand: chaos schedules, jitter, shard choices, and anything
// that feeds a campaign fingerprint must draw randomness from an
// explicitly seeded *rand.Rand so the same seed replays the same run.
// The global math/rand functions share process-wide state that other
// goroutines perturb (and auto-seed randomly since Go 1.20), so one
// call through them breaks replay for the whole process.

import (
	"go/ast"
	"go/types"
)

// seededrandAllowed are the math/rand package-level functions that
// construct seeded state rather than consuming the global source.
var seededrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// SeededRandAnalyzer forbids the global math/rand source.
var SeededRandAnalyzer = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand state; randomness must flow from an explicitly seeded *rand.Rand so seeded schedules replay exactly",
	Run:  runSeededRand,
}

func runSeededRand(p *Pass) {
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := pkgPathOf(p, file, sel.X)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if seededrandAllowed[sel.Sel.Name] {
				return true
			}
			// Only package-level funcs and vars consume global state;
			// type names (rand.Rand, rand.Source) are fine. With type
			// info absent, fall back to "uppercase func-looking name".
			if obj, ok := p.Pkg.Info.Uses[sel.Sel]; ok {
				if _, isFunc := obj.(*types.Func); !isFunc {
					return true
				}
			}
			p.Reportf(sel.Pos(), "rand.%s uses the process-global math/rand source; draw from a seeded *rand.Rand so replays are deterministic", sel.Sel.Name)
			return true
		})
	}
}
