package lint

// lockdiscipline: three shapes of lock misuse this codebase has been
// bitten by or cannot tolerate. (1) Copying a value that contains a
// sync lock forks the lock state — the copy guards nothing. (2) A
// Lock() with no matching Unlock anywhere in the same function is
// either a leak or a cross-function lock handoff, which must be
// declared with a suppression so reviewers see it. (3) Acquiring locks
// against the policy-declared global order is a deadlock waiting for
// the right interleaving; the order is declared once in the policy
// file and checked everywhere.

import (
	"go/ast"
	"go/types"
)

// LockDisciplineAnalyzer enforces lock copy/pairing/ordering rules.
var LockDisciplineAnalyzer = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag lock-by-value copies, Lock() without Unlock in the same function, and acquisitions violating the policy-declared lock order",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Pass) {
	for _, file := range p.Files() {
		checkLockCopies(p, file)
		for _, fu := range funcUnits(file) {
			checkLockPairing(p, fu)
			checkLockOrder(p, fu)
		}
	}
}

// ---- copies ----

func checkLockCopies(p *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncDecl:
			checkLockValueFields(p, st.Recv, "receiver")
			if st.Type.Params != nil {
				checkLockValueFields(p, st.Type.Params, "parameter")
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				checkLockCopyExpr(p, rhs)
			}
		case *ast.ValueSpec:
			for _, rhs := range st.Values {
				checkLockCopyExpr(p, rhs)
			}
		case *ast.RangeStmt:
			if st.Value != nil {
				if t := p.Pkg.Info.TypeOf(st.Value); t != nil && containsLock(t) {
					p.Reportf(st.Value.Pos(), "range copies %s by value, and its type %s contains a lock; range over indices or pointers", types.ExprString(st.Value), t)
				}
			}
		}
		return true
	})
}

func checkLockValueFields(p *Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		t := p.Pkg.Info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			p.Reportf(f.Pos(), "%s passes %s by value and it contains a lock; use a pointer", kind, t)
		}
	}
}

// checkLockCopyExpr flags rhs expressions that copy an existing
// lock-holding value: plain variable/field reads and dereferences.
// Composite literals and call results are fresh values, not copies.
func checkLockCopyExpr(p *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := p.Pkg.Info.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsLock(t) {
		p.Reportf(rhs.Pos(), "assignment copies %s by value, and its type %s contains a lock; copy a pointer instead", types.ExprString(rhs), t)
	}
}

// ---- pairing and ordering ----

// lockOp is one sync lock method call inside a function body.
type lockOp struct {
	call     *ast.CallExpr
	sel      *ast.SelectorExpr
	verb     string // Lock, RLock, Unlock, RUnlock, TryLock, TryRLock
	recv     string // rendered receiver expression ("s.mu")
	id       string // policy lock ID ("etcd.Store.mu"), "" if underivable
	deferred bool
}

// lockOps collects this function's lock calls in source order, not
// descending into nested function literals (they are their own units).
func lockOps(p *Pass, fu funcUnit) []lockOp {
	var ops []lockOp
	var walk func(n ast.Node, inDefer bool)
	walk = func(root ast.Node, inDefer bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				return st == fu.node
			case *ast.DeferStmt:
				walk(st.Call, true)
				return false
			case *ast.CallExpr:
				sel, ok := st.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := p.Pkg.Info.Uses[sel.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
					return true
				}
				switch fn.Name() {
				case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
					ops = append(ops, lockOp{
						call: st, sel: sel, verb: fn.Name(),
						recv: types.ExprString(sel.X), id: lockID(p, sel.X),
						deferred: inDefer,
					})
				}
			}
			return true
		})
	}
	walk(fu.body, false)
	return ops
}

// lockID derives the policy identity of a lock expression: the
// owning named type and field ("pkg.Type.field") when the receiver is
// a field selection, or "pkg.name" for package-level/local locks and
// embedded-mutex method calls.
func lockID(p *Pass, recv ast.Expr) string {
	pkgName := ""
	if p.Pkg.Types != nil {
		pkgName = p.Pkg.Types.Name()
	}
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		base := p.Pkg.Info.TypeOf(e.X)
		if base == nil {
			return ""
		}
		if named, ok := deref(base).(*types.Named); ok {
			return pkgName + "." + named.Obj().Name() + "." + e.Sel.Name
		}
		return ""
	case *ast.Ident:
		if obj := p.Pkg.Info.Uses[e]; obj != nil {
			if t, ok := deref(obj.Type()).(*types.Named); ok && !isSyncType(t, "Mutex", "RWMutex") {
				// Embedded mutex: x.Lock() with x of named type L.
				return pkgName + "." + t.Obj().Name()
			}
		}
		return pkgName + "." + e.Name
	}
	return ""
}

// unlockVerb maps an acquisition to its release.
func unlockVerb(verb string) string {
	if verb == "RLock" || verb == "TryRLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// checkLockPairing flags Lock/RLock calls whose receiver is never
// released anywhere in the same function — directly, deferred, or
// inside a closure the function defines (deferred cleanup closures are
// a release site even though lockOps treats them as separate units).
func checkLockPairing(p *Pass, fu funcUnit) {
	ops := lockOps(p, fu)
	releases := make(map[string]bool) // verb + "\x00" + recv, closures included
	ast.Inspect(fu.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			if fn.Name() == "Unlock" || fn.Name() == "RUnlock" {
				releases[fn.Name()+"\x00"+types.ExprString(sel.X)] = true
			}
		}
		return true
	})
	for _, op := range ops {
		if op.verb != "Lock" && op.verb != "RLock" {
			continue
		}
		want := unlockVerb(op.verb)
		if !releases[want+"\x00"+op.recv] {
			p.Reportf(op.call.Pos(), "%s.%s() has no %s on any path in %s; add `defer %s.%s()` or declare the handoff with a suppression",
				op.recv, op.verb, want, fu.name, op.recv, want)
		}
	}
}

// checkLockOrder walks the function's lock calls in source order,
// tracking an approximation of the held set, and flags acquisitions
// that the policy orders before a lock already held.
func checkLockOrder(p *Pass, fu funcUnit) {
	if len(p.Policy.LockOrder) == 0 {
		return
	}
	var held []lockOp
	for _, op := range lockOps(p, fu) {
		switch op.verb {
		case "Lock", "RLock", "TryLock", "TryRLock":
			for _, h := range held {
				if op.id != "" && h.id != "" && p.Policy.lockBefore(op.id, h.id) {
					p.Reportf(op.call.Pos(), "acquires %s while holding %s, but policy orders %s before %s; this inversion can deadlock against a conforming path",
						op.id, h.id, op.id, h.id)
				}
			}
			if !op.deferred {
				held = append(held, op)
			}
		case "Unlock", "RUnlock":
			if op.deferred {
				continue // releases at return, after any later acquisition
			}
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].recv == op.recv {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
	}
}
