package lint

// goloop: a goroutine launched inside a long-lived component must have
// a visible lifecycle — a context, a stop/done/quit channel, or a
// WaitGroup in scope — or it outlives its owner, keeps simulated
// components running after teardown, and races shutdown (the PR 8
// apply-drainer bug was exactly a naked per-event `go deliver(...)`).
// The rule flags `go` statements whose launched function shows none of
// those mechanisms; deliberately fire-and-forget launches carry a
// suppression explaining who owns the goroutine's lifetime.

import (
	"go/ast"
	"go/types"
	"regexp"
)

// goloopLifecycleName matches identifiers that conventionally carry a
// stop signal even when their type is opaque here.
var goloopLifecycleName = regexp.MustCompile(`(?i)(stop|done|quit|ctx|closed|shutdown|cancel|wg)`)

// GoLoopAnalyzer flags goroutines without a visible stop mechanism.
var GoLoopAnalyzer = &Analyzer{
	Name: "goloop",
	Doc:  "flag goroutine launches in long-lived components with no visible stop mechanism (context, stop/done channel, WaitGroup)",
	Run:  runGoLoop,
}

func runGoLoop(p *Pass) {
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goHasLifecycle(p, g) {
				return true
			}
			p.Reportf(g.Pos(), "goroutine has no visible stop mechanism (context, stop/done channel, or WaitGroup); bind its lifetime to its owner or suppress with the owner named")
			return true
		})
	}
}

// goHasLifecycle looks for a stop mechanism in the launched function:
// its arguments, its literal body, or (for same-package named
// functions and methods) one level into the callee's body.
func goHasLifecycle(p *Pass, g *ast.GoStmt) bool {
	for _, arg := range g.Call.Args {
		if exprHasLifecycle(p, arg) {
			return true
		}
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return nodeHasLifecycle(p, fun.Body)
	default:
		if body := calleeBody(p, g.Call.Fun); body != nil {
			return nodeHasLifecycle(p, body)
		}
		// Callee body out of reach (other package, func value): the
		// receiver expression itself may carry the signal name
		// (c.stopper.Run); otherwise assume the callee manages itself.
		return true
	}
}

// calleeBody resolves a call target to its declaration body when the
// target is a function or method declared in this unit's files.
func calleeBody(p *Pass, fun ast.Expr) *ast.BlockStmt {
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = p.Pkg.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = p.Pkg.Info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn.Name() {
				continue
			}
			if p.Pkg.Info.Defs[fd.Name] == obj {
				return fd.Body
			}
		}
	}
	return nil
}

// nodeHasLifecycle scans a body for stop-mechanism evidence.
func nodeHasLifecycle(p *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.Ident:
			if identHasLifecycle(p, e) {
				found = true
			}
		case *ast.SelectorExpr:
			if exprHasLifecycle(p, e) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprHasLifecycle reports whether the expression is itself a
// lifecycle carrier: a channel, a context.Context, a *sync.WaitGroup,
// or something named like one.
func exprHasLifecycle(p *Pass, e ast.Expr) bool {
	if t := p.Pkg.Info.TypeOf(e); t != nil && typeIsLifecycle(t) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		return goloopLifecycleName.MatchString(x.Name)
	case *ast.SelectorExpr:
		return goloopLifecycleName.MatchString(x.Sel.Name)
	case *ast.UnaryExpr:
		return exprHasLifecycle(p, x.X)
	case *ast.CallExpr:
		for _, a := range x.Args {
			if exprHasLifecycle(p, a) {
				return true
			}
		}
	}
	return false
}

func identHasLifecycle(p *Pass, id *ast.Ident) bool {
	if goloopLifecycleName.MatchString(id.Name) {
		return true
	}
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return typeIsLifecycle(obj.Type())
	}
	return false
}

func typeIsLifecycle(t types.Type) bool {
	if _, ok := deref(t).Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := deref(t).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == "context" && obj.Name() == "Context":
				return true
			case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
				return true
			}
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		// context.Context reaches here when t is the interface itself.
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Deadline" {
				return true
			}
		}
	}
	return false
}
