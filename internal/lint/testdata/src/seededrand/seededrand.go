// Package seededrand exercises the seededrand analyzer: drawing from
// the process-global math/rand source is a finding; constructing and
// using an explicitly seeded *rand.Rand is the sanctioned idiom.
package seededrand

import "math/rand"

func bad() int {
	return rand.Intn(10) // want "process-global math/rand source"
}

func badFloat() float64 {
	return rand.Float64() // want "process-global math/rand source"
}

// seededOK builds a deterministic source: rand.New and rand.NewSource
// are the allowed constructors, and methods on the instance are fine.
func seededOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}
