// Package goloop exercises the goloop analyzer: a goroutine with no
// visible stop mechanism is a finding; context, stop/done channels,
// and WaitGroups bind a lifetime and pass.
package goloop

import (
	"context"
	"sync"
)

func naked(work []int) {
	go func() { // want "no visible stop mechanism"
		for _, w := range work {
			_ = w * w
		}
	}()
}

func withContextOK(ctx context.Context, out chan<- int) {
	go func() {
		select {
		case <-ctx.Done():
		case out <- 1:
		}
	}()
}

func withDoneChannelOK(done chan struct{}) {
	go func() {
		<-done
	}()
}

func withWaitGroupOK(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}
