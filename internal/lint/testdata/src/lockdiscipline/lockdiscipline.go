// Package lockdiscipline exercises the lockdiscipline analyzer's copy
// and pairing checks (ordering is exercised by the lockorder fixture,
// which needs a policy-declared lock order).
package lockdiscipline

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func lockNoUnlock(g *guarded) {
	g.mu.Lock() // want "has no Unlock on any path"
	g.n++
}

func pairedOK(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func closureReleaseOK(g *guarded) func() {
	g.mu.Lock()
	return func() { g.mu.Unlock() }
}

func copyParam(g guarded) int { // want "parameter passes .* by value and it contains a lock"
	return g.n
}

func copyAssign(g *guarded) {
	snapshot := *g // want "assignment copies .* by value"
	inspect(&snapshot)
}

func inspect(*guarded) {}

func copyRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range copies g by value"
		total += g.n
	}
	return total
}

func pointerOK(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}
