// Package lockorder exercises lockdiscipline's policy-declared lock
// ordering: the driver supplies a policy ordering
// lockorder.engine.stateMu before lockorder.hub.fanMu.
package lockorder

import "sync"

type engine struct {
	stateMu sync.Mutex
}

type hub struct {
	fanMu sync.Mutex
}

// inverted acquires the locks against the declared order.
func inverted(e *engine, h *hub) {
	h.fanMu.Lock()
	defer h.fanMu.Unlock()
	e.stateMu.Lock() // want "acquires lockorder.engine.stateMu while holding lockorder.hub.fanMu"
	defer e.stateMu.Unlock()
}

// conforming acquires in the declared order: no finding.
func conforming(e *engine, h *hub) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	h.fanMu.Lock()
	defer h.fanMu.Unlock()
}
