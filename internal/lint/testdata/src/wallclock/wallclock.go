// Package wallclock exercises the wallclock analyzer: reading or
// scheduling real time is a finding; pure time.Duration/time.Time
// arithmetic and type references are not.
package wallclock

import "time"

func bad() {
	_ = time.Now()                  // want "time.Now bypasses the virtual clock"
	time.Sleep(time.Millisecond)    // want "time.Sleep bypasses the virtual clock"
	<-time.After(time.Second)       // want "time.After bypasses the virtual clock"
	t := time.NewTimer(time.Second) // want "time.NewTimer"
	t.Stop()
	var start time.Time
	_ = time.Since(start) // want "time.Since reads the wall clock"
	_ = time.Until(start) // want "time.Until reads the wall clock"
}

// pureDataOK shows what the rule must NOT flag: durations, instants,
// and arithmetic on them never touch the wall clock.
func pureDataOK(t time.Time) time.Duration {
	deadline := t.Add(5 * time.Second)
	return deadline.Sub(t)
}
