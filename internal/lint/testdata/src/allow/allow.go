// Package allow exercises //lint:allow precision: a directive
// suppresses exactly its named rule on its own line or the line below,
// and malformed directives are themselves findings under the "lint"
// pseudo-rule.
package allow

import "time"

// suppressedAbove: the directive on the line above names the matching
// rule, so the finding is recorded but suppressed.
func suppressedAbove() time.Time {
	//lint:allow wallclock fixture: documented real-time read
	return time.Now()
}

// suppressedInline: the directive rides at the end of the flagged line.
func suppressedInline() {
	time.Sleep(time.Millisecond) //lint:allow wallclock fixture: documented real-time sleep
}

// wrongRule: the directive names a different rule, so the wallclock
// finding on the next line stays active.
func wrongRule() time.Time {
	//lint:allow maporder fixture: deliberately names the wrong rule
	return time.Now()
}

// noReason: a directive without a reason is itself a "lint" finding
// and suppresses nothing.
func noReason() {
	//lint:allow wallclock
	time.Sleep(time.Millisecond)
}

// unknownRule: a directive naming a rule that does not exist is itself
// a "lint" finding and suppresses nothing.
func unknownRule() {
	//lint:allow nosuchrule fixture: rule name does not exist
	_ = time.Now()
}
