// Package maporder exercises the maporder analyzer: order-sensitive
// effects inside a map range are findings, and the collect-then-sort
// idiom plus per-key accumulation are the recognized escapes.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to keys in map order"
	}
	return keys
}

func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "sends on a channel in map order"
	}
}

func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "concatenates a string in map order"
	}
	return s
}

func badWrite(m map[string]int, w io.Writer) {
	for k := range m {
		fmt.Fprintln(w, k) // want "fmt.Fprintln emits in map order"
	}
}

func badApply(m map[string]int) {
	for k, v := range m {
		apply(k, v) // want "calls order-sensitive function apply per key"
	}
}

func apply(string, int) {}

// sortedOK is the canonical escape: collect, sort, then use.
func sortedOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keyedOK accumulates per key — each entry is independent of the
// iteration order, so it is not a finding.
func keyedOK(m map[string]int) map[string][]int {
	out := make(map[string][]int)
	for k, v := range m {
		out[k] = append(out[k], v)
	}
	return out
}

// freshPerIterationOK appends to a slice declared inside the loop, so
// nothing ordered escapes the iteration.
func freshPerIterationOK(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}
