package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked analysis unit. Test
// files (both in-package and external _test packages) are folded into
// the same unit so analyzers see them with full type information; the
// IsTest map records which files are tests so policies can skip them.
type Package struct {
	// ImportPath is the package's import path ("repro/internal/store").
	ImportPath string
	// RelPath is the module-relative directory ("internal/store", "."
	// for the module root) used for policy matching.
	RelPath string
	Dir     string

	Fset  *token.FileSet
	Files []*ast.File
	// IsTest marks files parsed from *_test.go, keyed by *ast.File.
	IsTest map[*ast.File]bool

	Types *types.Package
	Info  *types.Info

	// TypeErrors collects soft type-check errors. Analysis proceeds on
	// partial information; callers may surface these as diagnostics.
	TypeErrors []error
}

// Loader walks a module tree, parses packages, and type-checks them
// using only the standard library: module-internal imports are checked
// from source recursively, everything else resolves through export
// data obtained from one `go list -export -deps -json` invocation.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset *token.FileSet

	// clean caches the type-checked package (non-test files only) per
	// import path, for use by importers of other packages.
	clean map[string]*types.Package
	// cleanErr remembers packages that failed to load so cycles or
	// repeated failures do not recurse forever.
	cleanErr map[string]error
	checking map[string]bool

	// exports maps an import path outside the module to its export
	// data file, fed by `go list -export`.
	exports map[string]string
	gcImp   types.ImporterFrom
}

// NewLoader locates the module root at or above dir and reads the
// module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	ld := &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		clean:      make(map[string]*types.Package),
		cleanErr:   make(map[string]error),
		checking:   make(map[string]bool),
		exports:    make(map[string]string),
	}
	ld.gcImp = importer.ForCompiler(ld.fset, "gc", ld.lookupExport).(types.ImporterFrom)
	return ld, nil
}

// Fset exposes the loader's file set for position rendering.
func (ld *Loader) Fset() *token.FileSet { return ld.fset }

// Load expands the patterns ("./...", "./internal/store", "internal/...",
// a plain directory) into package directories under the module root and
// returns fully analyzed units in deterministic (path-sorted) order.
func (ld *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := ld.loadUnit(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir loads a single directory as an analysis unit without pattern
// expansion — the entry point for fixture packages under testdata,
// which the "..." walk deliberately skips.
func (ld *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := ld.loadUnit(abs)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: %s: no Go files", dir)
	}
	return pkg, nil
}

func (ld *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(ld.ModuleRoot, pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its import path within the module.
func (ld *Loader) importPathFor(dir string) (imp, rel string, err error) {
	r, err := filepath.Rel(ld.ModuleRoot, dir)
	if err != nil {
		return "", "", err
	}
	r = filepath.ToSlash(r)
	if r == "." {
		return ld.ModulePath, ".", nil
	}
	if strings.HasPrefix(r, "..") {
		return "", "", fmt.Errorf("directory %s outside module %s", dir, ld.ModuleRoot)
	}
	return ld.ModulePath + "/" + r, r, nil
}

// parseDir parses the directory's Go files, split into package files,
// in-package test files, and external (_test package) test files.
func (ld *Loader) parseDir(dir string) (files, inTest, extTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, perr := parser.ParseFile(ld.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if perr != nil {
			return nil, nil, nil, perr
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test") && strings.HasSuffix(n, "_test.go"):
			extTest = append(extTest, f)
		case strings.HasSuffix(n, "_test.go"):
			inTest = append(inTest, f)
		default:
			files = append(files, f)
		}
	}
	return files, inTest, extTest, nil
}

// loadUnit parses and type-checks one directory as an analysis unit:
// package files plus in-package test files checked together, the
// external test package (if any) checked alongside and merged into the
// same unit. Returns nil if the directory has no Go files.
func (ld *Loader) loadUnit(dir string) (*Package, error) {
	files, inTest, extTest, err := ld.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 && len(inTest) == 0 && len(extTest) == 0 {
		return nil, nil
	}
	imp, rel, err := ld.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		ImportPath: imp,
		RelPath:    rel,
		Dir:        dir,
		Fset:       ld.fset,
		IsTest:     make(map[*ast.File]bool),
		Info:       newInfo(),
	}

	// Resolve export data for every non-module import up front, one
	// `go list` per unit at most (usually zero after the first).
	var ext []string
	for _, f := range append(append(append([]*ast.File{}, files...), inTest...), extTest...) {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if !ld.inModule(p) && p != "unsafe" {
				ext = append(ext, p)
			}
		}
	}
	if err := ld.ensureExports(ext); err != nil {
		return nil, err
	}

	checked := append(append([]*ast.File{}, files...), inTest...)
	conf := types.Config{
		Importer: &unitImporter{ld: ld},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(imp, ld.fset, checked, pkg.Info)
	pkg.Types = tpkg
	pkg.Files = checked
	for _, f := range inTest {
		pkg.IsTest[f] = true
	}

	if len(extTest) > 0 {
		// The external test package imports the clean unit; make sure
		// the clean version is cached before checking it.
		if len(files) > 0 {
			if _, err := ld.loadClean(imp, dir); err != nil {
				return nil, err
			}
		}
		xconf := types.Config{
			Importer: &unitImporter{ld: ld},
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		xconf.Check(imp+"_test", ld.fset, extTest, pkg.Info)
		for _, f := range extTest {
			pkg.Files = append(pkg.Files, f)
			pkg.IsTest[f] = true
		}
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func (ld *Loader) inModule(path string) bool {
	return path == ld.ModulePath || strings.HasPrefix(path, ld.ModulePath+"/")
}

// loadClean type-checks the non-test files of the package at dir and
// caches the result for importers. Import cycles through test files
// cannot occur here because test files are excluded.
func (ld *Loader) loadClean(imp, dir string) (*types.Package, error) {
	if p, ok := ld.clean[imp]; ok {
		return p, nil
	}
	if err, ok := ld.cleanErr[imp]; ok {
		return nil, err
	}
	if ld.checking[imp] {
		return nil, fmt.Errorf("import cycle through %s", imp)
	}
	ld.checking[imp] = true
	defer func() { delete(ld.checking, imp) }()

	files, _, _, err := ld.parseDir(dir)
	if err != nil {
		ld.cleanErr[imp] = err
		return nil, err
	}
	if len(files) == 0 {
		err := fmt.Errorf("no non-test Go files in %s", dir)
		ld.cleanErr[imp] = err
		return nil, err
	}
	var ext []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if !ld.inModule(p) && p != "unsafe" {
				ext = append(ext, p)
			}
		}
	}
	if err := ld.ensureExports(ext); err != nil {
		ld.cleanErr[imp] = err
		return nil, err
	}
	conf := types.Config{
		Importer: &unitImporter{ld: ld},
		Error:    func(error) {}, // soft: dependents still get partial info
	}
	tpkg, err := conf.Check(imp, ld.fset, files, nil)
	if tpkg == nil {
		ld.cleanErr[imp] = err
		return nil, err
	}
	ld.clean[imp] = tpkg
	return tpkg, nil
}

// unitImporter resolves imports during a unit check: module-internal
// paths recurse into loadClean, everything else goes through gc export
// data.
type unitImporter struct{ ld *Loader }

func (ui *unitImporter) Import(path string) (*types.Package, error) {
	return ui.ImportFrom(path, "", 0)
}

func (ui *unitImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	ld := ui.ld
	if ld.inModule(path) {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, ld.ModulePath), "/")
		return ld.loadClean(path, filepath.Join(ld.ModuleRoot, filepath.FromSlash(sub)))
	}
	return ld.gcImp.ImportFrom(path, dir, mode)
}

// lookupExport feeds the gc importer from the `go list -export` map.
func (ld *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := ld.exports[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// ensureExports runs `go list -export -deps -json` for any of paths not
// yet resolved and records every package's export file. The go command
// is the only external tool the loader shells out to, keeping the
// analyzer consistent with the module's empty dependency set.
func (ld *Loader) ensureExports(paths []string) error {
	var missing []string
	seen := make(map[string]bool)
	for _, p := range paths {
		if _, ok := ld.exports[p]; !ok && !seen[p] {
			seen[p] = true
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.ModuleRoot
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list -export: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list -export: decoding output: %v", err)
		}
		if p.ImportPath != "" {
			ld.exports[p.ImportPath] = p.Export
		}
	}
	for _, p := range missing {
		if _, ok := ld.exports[p]; !ok {
			ld.exports[p] = "" // remembered as unresolvable
		}
	}
	return nil
}
