package lint

import (
	"go/ast"
	"go/types"
)

// pkgPathOf resolves expr to the import path of the package it names,
// or "" when expr is not a package qualifier. Falls back to the file's
// import table when type information is incomplete, so purely
// syntactic matching still works on packages that fail to check.
func pkgPathOf(p *Pass, file *ast.File, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := p.Pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // a real value shadows any import of the same name
	}
	if file == nil {
		return ""
	}
	for _, spec := range file.Imports {
		path := importPath(spec)
		name := path
		if i := lastSlash(path); i >= 0 {
			name = path[i+1:]
		}
		if spec.Name != nil {
			name = spec.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

func importPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	return s
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// deref unwraps pointers.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// isSyncType reports whether t is sync.<name>.
func isSyncType(t types.Type, names ...string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// containsLock reports whether a value of type t embeds a sync lock
// (Mutex, RWMutex, Cond, WaitGroup, Once) by value, so copying the
// value copies the lock.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isSyncType(t, "Mutex", "RWMutex", "Cond", "WaitGroup", "Once") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// isMapType reports whether the expression's type is a map.
func isMapType(p *Pass, expr ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncs returns every function body (decl or literal) in the
// file, in source order, paired with its display name.
type funcUnit struct {
	name string
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

func funcUnits(file *ast.File) []funcUnit {
	var out []funcUnit
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcUnit{name: fn.Name.Name, node: fn, body: fn.Body, decl: fn})
			}
		case *ast.FuncLit:
			out = append(out, funcUnit{name: "func literal", node: fn, body: fn.Body})
		}
		return true
	})
	return out
}
