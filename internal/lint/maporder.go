package lint

// maporder: Go map iteration order is deliberately randomized. On a
// replicated state machine's apply/export path, in watch-event
// fan-out, or in a fingerprint/serialization path, iterating a map
// while producing ordered output (appending to a slice, feeding a
// hash or writer, concatenating a string, sending on a channel) makes
// two replicas — or two runs of one seed — diverge. The rule flags
// map ranges whose body has an order-sensitive effect, and recognizes
// the canonical safe idiom (collect keys, sort, then iterate the
// sorted slice): an append whose slice is sorted after the loop in the
// same function is not a finding.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// maporderBuiltinSinks matches callee names that serialize, hash, or
// apply in order. Policy sinkPatterns extend this set.
var maporderBuiltinSinks = regexp.MustCompile(`(?i)^(apply|applyat|export|import|serialize|marshal|encode|emit|broadcast|publish|propose|install|fingerprint)$`)

// orderedWriters are method names that emit bytes in call order
// (io.Writer, strings.Builder, hash.Hash).
var orderedWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// MapOrderAnalyzer flags order-sensitive effects inside map ranges.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-sensitive effects (slice append, hashing, serialization, channel send) on replicated or fingerprint paths; iterate sorted keys instead",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files() {
		for _, fu := range funcUnits(file) {
			runMapOrderFunc(p, fu)
		}
	}
}

func runMapOrderFunc(p *Pass, fu funcUnit) {
	// Only statements directly in this function body — nested literals
	// get their own funcUnit.
	ast.Inspect(fu.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fu.node {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapType(p, rng.X) {
			return true
		}
		for _, sink := range mapOrderSinks(p, rng) {
			if sink.appendTo != nil && sortedAfter(p, fu.body, rng, sink.appendTo) {
				continue
			}
			p.Reportf(sink.pos, "map iteration %s: %s; iterate sorted keys (collect, sort, then range the slice) or make the effect order-insensitive",
				types.ExprString(rng.X), sink.what)
		}
		return true
	})
}

type mapSink struct {
	pos  token.Pos
	what string
	// appendTo is the object appended to, for the sorted-after escape.
	appendTo types.Object
}

// mapOrderSinks scans the range body for order-sensitive effects.
func mapOrderSinks(p *Pass, rng *ast.RangeStmt) []mapSink {
	var sinks []mapSink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			sinks = append(sinks, mapSink{pos: st.Pos(), what: "sends on a channel in map order"})
		case *ast.AssignStmt:
			if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 {
				if t := p.Pkg.Info.TypeOf(st.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						sinks = append(sinks, mapSink{pos: st.Pos(), what: "concatenates a string in map order"})
					}
				}
			}
			for i, rhs := range st.Rhs {
				if i < len(st.Lhs) {
					if s, ok := appendSink(p, rng, st.Lhs[i], rhs); ok {
						sinks = append(sinks, s)
					}
				}
			}
		case *ast.CallExpr:
			sinks = append(sinks, callSinks(p, st)...)
		}
		return true
	})
	return sinks
}

// appendSink reports `lhs = append(...)` as a sink when lhs is a slice
// that outlives the loop. Appends into per-iteration values (a fresh
// slice, a field of the loop variable, a map entry keyed by the
// iteration key) accumulate independently per key and are order-free.
func appendSink(p *Pass, rng *ast.RangeStmt, lhs ast.Expr, rhs ast.Expr) (mapSink, bool) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return mapSink{}, false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return mapSink{}, false
	}
	if obj, resolved := p.Pkg.Info.Uses[fun]; resolved {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return mapSink{}, false
		}
	}
	root := rootIdent(lhs)
	if root == nil {
		return mapSink{}, false // map-index or other per-key target
	}
	obj := p.Pkg.Info.Uses[root]
	if obj == nil {
		obj = p.Pkg.Info.Defs[root]
	}
	if obj == nil || declaredWithin(obj, rng) {
		return mapSink{}, false
	}
	if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
		return mapSink{}, false // out[k] = append(...): keyed, order-free
	}
	return mapSink{pos: call.Pos(), what: "appends to " + types.ExprString(lhs) + " in map order", appendTo: obj}, true
}

// rootIdent peels selectors/indexes/derefs down to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration sits inside the
// range statement (loop key/value vars and body-local variables).
func declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

func callSinks(p *Pass, call *ast.CallExpr) []mapSink {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "append" {
			return nil // handled as an assignment sink
		}
		if matchSink(p, fun.Name) {
			return []mapSink{{pos: call.Pos(), what: "calls order-sensitive function " + fun.Name + " per key"}}
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if orderedWriters[name] {
			return []mapSink{{pos: call.Pos(), what: "writes to " + types.ExprString(fun.X) + " in map order"}}
		}
		if pkg := pkgPathOf(p, nil, fun.X); pkg == "fmt" {
			switch name {
			case "Fprint", "Fprintf", "Fprintln":
				return []mapSink{{pos: call.Pos(), what: "fmt." + name + " emits in map order"}}
			}
		}
		if matchSink(p, name) {
			return []mapSink{{pos: call.Pos(), what: "calls order-sensitive method " + name + " per key"}}
		}
	}
	return nil
}

func matchSink(p *Pass, name string) bool {
	if maporderBuiltinSinks.MatchString(name) {
		return true
	}
	for _, re := range p.Rule.sinkRe {
		if re.MatchString(name) {
			return true
		}
	}
	return false
}

// sortedAfter reports whether obj (a slice collected inside the map
// range) is passed to a sorting call after the range ends but within
// the same function body — the collect-then-sort idiom. Sorting calls
// are the sort and slices packages plus any local helper whose name
// mentions "sort".
func sortedAfter(p *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted || n == nil {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		isSortCall := false
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			pkg := pkgPathOf(p, nil, fun.X)
			isSortCall = pkg == "sort" || pkg == "slices" || sortName.MatchString(fun.Sel.Name)
		case *ast.Ident:
			isSortCall = sortName.MatchString(fun.Name)
		}
		if !isSortCall {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

var sortName = regexp.MustCompile(`(?i)sort`)
