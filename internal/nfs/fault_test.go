package nfs

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestFaultErrorModeDropsWritesAndFailsReads(t *testing.T) {
	s := newTestServer(t)
	v, err := s.Provision("job-1")
	if err != nil {
		t.Fatal(err)
	}
	v.Write("pre.txt", []byte("survives"))

	s.InjectFault(FaultError)
	if got := s.FaultMode(); got != FaultError {
		t.Fatalf("FaultMode = %v", got)
	}
	v.Write("dropped.txt", []byte("lost"))
	v.Append("pre.txt", []byte(" lost-too"))
	if _, err := v.Read("pre.txt"); !errors.Is(err, ErrFaulted) {
		t.Fatalf("Read during fault: err = %v, want ErrFaulted", err)
	}

	s.Heal()
	if v.Exists("dropped.txt") {
		t.Fatal("write during FaultError was not dropped")
	}
	data, err := v.Read("pre.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "survives" {
		t.Fatalf("pre.txt = %q, want append dropped", data)
	}
}

func TestFaultStallBlocksUntilHeal(t *testing.T) {
	clk := clock.NewSim()
	t.Cleanup(clk.Close)
	s := NewServer(clk)
	v, err := s.Provision("job-1")
	if err != nil {
		t.Fatal(err)
	}

	s.InjectFault(FaultStall)
	start := clk.Now()
	done := make(chan []byte, 1)
	go func() {
		v.Write("stalled.txt", []byte("eventually"))
		data, _ := v.Read("stalled.txt")
		done <- data
	}()

	// Heal after one virtual minute; the stalled write completes only
	// then — hard-mount semantics: paused, never lost.
	clk.AfterFunc(time.Minute, s.Heal)
	select {
	case data := <-done:
		if string(data) != "eventually" {
			t.Fatalf("stalled write produced %q", data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled operation never completed after heal")
	}
	if waited := clk.Since(start); waited < time.Minute {
		t.Fatalf("stalled write completed after %v, want >= 1m", waited)
	}

	// Metadata operations are served from the attribute cache and do not
	// stall (the controller can keep polling Exists during a flap).
	s.InjectFault(FaultStall)
	if !v.Exists("stalled.txt") {
		t.Fatal("Exists should not stall or fail during a flap")
	}
	s.Heal()
}
