package nfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/clock"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	clk := clock.NewSim()
	t.Cleanup(clk.Close)
	return NewServer(clk)
}

func TestProvisionAndMount(t *testing.T) {
	s := newTestServer(t)
	v, err := s.Provision("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "job-1" {
		t.Fatalf("name = %q", v.Name())
	}
	// A second mount handle sees the same files (shared semantics).
	v.Write("shared.txt", []byte("hello"))
	v2, err := s.Volume("job-1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := v2.Read("shared.txt")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read = (%q,%v)", data, err)
	}
}

func TestProvisionCollision(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.Provision("job-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Provision("job-1"); !errors.Is(err, ErrVolumeExists) {
		t.Fatalf("err = %v, want ErrVolumeExists", err)
	}
}

func TestMountMissingVolume(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.Volume("nope"); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("err = %v, want ErrNoVolume", err)
	}
}

func TestAppendAccumulates(t *testing.T) {
	s := newTestServer(t)
	v, _ := s.Provision("job-1")
	for i := 0; i < 3; i++ {
		v.Append("learner-0/training.log", []byte(fmt.Sprintf("line %d\n", i)))
	}
	data, err := v.Read("learner-0/training.log")
	if err != nil {
		t.Fatal(err)
	}
	want := "line 0\nline 1\nline 2\n"
	if string(data) != want {
		t.Fatalf("log = %q, want %q", data, want)
	}
	if v.Size("learner-0/training.log") != int64(len(want)) {
		t.Fatalf("size = %d", v.Size("learner-0/training.log"))
	}
}

func TestReadMissingFile(t *testing.T) {
	s := newTestServer(t)
	v, _ := s.Provision("job-1")
	if _, err := v.Read("nope"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("err = %v, want ErrNoFile", err)
	}
}

func TestListPrefix(t *testing.T) {
	s := newTestServer(t)
	v, _ := s.Provision("job-1")
	v.Write("learner-0/exitcode", []byte("0"))
	v.Write("learner-1/exitcode", []byte("1"))
	v.Write("status/controller", []byte("ok"))
	got := v.List("learner-")
	if len(got) != 2 || got[0] != "learner-0/exitcode" || got[1] != "learner-1/exitcode" {
		t.Fatalf("list = %v", got)
	}
}

func TestRemoveAndExists(t *testing.T) {
	s := newTestServer(t)
	v, _ := s.Provision("job-1")
	v.Write("f", []byte("x"))
	if !v.Exists("f") {
		t.Fatal("file should exist")
	}
	v.Remove("f")
	if v.Exists("f") {
		t.Fatal("file should be gone")
	}
}

func TestExitCodeConvention(t *testing.T) {
	s := newTestServer(t)
	v, _ := s.Provision("job-1")
	if _, ok := v.ReadExitCode(0); ok {
		t.Fatal("exit code present before termination")
	}
	v.WriteExitCode(0, 0)
	v.WriteExitCode(1, 137) // OOM-killed learner
	if code, ok := v.ReadExitCode(0); !ok || code != 0 {
		t.Fatalf("learner 0 = (%d,%v)", code, ok)
	}
	if code, ok := v.ReadExitCode(1); !ok || code != 137 {
		t.Fatalf("learner 1 = (%d,%v)", code, ok)
	}
}

func TestExitCodeMalformed(t *testing.T) {
	s := newTestServer(t)
	v, _ := s.Provision("job-1")
	v.Write(ExitCodePath(0), []byte("not-a-number"))
	if _, ok := v.ReadExitCode(0); ok {
		t.Fatal("malformed exit code parsed as ok")
	}
}

func TestReleaseDeletesVolume(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.Provision("job-1"); err != nil {
		t.Fatal(err)
	}
	s.Release("job-1")
	if _, err := s.Volume("job-1"); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("err = %v, want ErrNoVolume", err)
	}
	if names := s.VolumeNames(); len(names) != 0 {
		t.Fatalf("names = %v", names)
	}
}

func TestDataIsolatedFromCallers(t *testing.T) {
	s := newTestServer(t)
	v, _ := s.Provision("job-1")
	data := []byte("abc")
	v.Write("f", data)
	data[0] = 'X'
	got, _ := v.Read("f")
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("volume aliased caller slice: %q", got)
	}
	got[0] = 'Y'
	got2, _ := v.Read("f")
	if !bytes.Equal(got2, []byte("abc")) {
		t.Fatalf("volume aliased returned slice: %q", got2)
	}
}

func TestConcurrentAppendsAllRecorded(t *testing.T) {
	s := newTestServer(t)
	v, _ := s.Provision("job-1")
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Append("log", []byte("x"))
		}()
	}
	wg.Wait()
	if got := v.Size("log"); got != n {
		t.Fatalf("size = %d, want %d", got, n)
	}
}
