package nfs

import (
	"errors"
	"fmt"
	"time"
)

// ErrFaulted is returned by data operations while the server is in
// FaultError mode — the EIO a soft-mounted NFS client surfaces when the
// server stops answering.
var ErrFaulted = errors.New("nfs: server fault injected")

// FaultMode selects how an injected NFS outage manifests to clients.
type FaultMode int

// Fault modes.
const (
	// FaultNone: the server is healthy.
	FaultNone FaultMode = iota
	// FaultStall models a hard-mounted NFS outage: data operations
	// (Read, Write, Append) block in virtual time until the fault is
	// healed, then complete normally. No write is ever lost — the
	// paper's deployments hard-mount the shared volume precisely so a
	// volume flap pauses the job instead of corrupting it.
	FaultStall
	// FaultError models a soft-mounted outage: Read fails with
	// ErrFaulted and Write/Append are silently dropped (the EIO is
	// swallowed by fire-and-forget writers). This mode loses data by
	// design; the campaign uses FaultStall and exercises FaultError
	// only in unit tests.
	FaultError
)

// String implements fmt.Stringer.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultStall:
		return "stall"
	case FaultError:
		return "error"
	default:
		return fmt.Sprintf("fault(%d)", int(m))
	}
}

// faultPollGrain is how often a stalled operation re-checks the server's
// health, in virtual time.
const faultPollGrain = 50 * time.Millisecond

// InjectFault puts the server into the given fault mode. Volume flap is
// InjectFault(FaultStall) followed, a window later, by Heal.
func (s *Server) InjectFault(m FaultMode) {
	s.mu.Lock()
	s.fault = m
	s.mu.Unlock()
}

// Heal clears any injected fault; stalled operations complete on their
// next poll.
func (s *Server) Heal() { s.InjectFault(FaultNone) }

// FaultMode returns the server's current fault mode.
func (s *Server) FaultMode() FaultMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fault
}

// awaitHealthy blocks (in virtual time) while the server is stalled and
// returns the mode in effect once the operation may proceed: FaultNone
// after a heal, or FaultError if the caller must fail instead.
func (s *Server) awaitHealthy() FaultMode {
	for {
		m := s.FaultMode()
		if m != FaultStall {
			return m
		}
		s.clk.Sleep(faultPollGrain)
	}
}
