// Package nfs models the shared NFS volume that a DL job's learner and
// helper pods both mount ("the helper pod remains isolated from the
// learner pods, but both share a common NFS filesystem, mounted by the
// Guardian using a K8S persistent volume claim"). The volume is the
// coordination medium of the paper's failure-detection design: learners
// redirect logs and exit statuses to files, and the controller container
// in the helper pod reads them — surviving crashes of either side.
package nfs

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// Common errors.
var (
	// ErrNoVolume indicates the volume does not exist.
	ErrNoVolume = errors.New("nfs: no such volume")
	// ErrNoFile indicates the file does not exist on the volume.
	ErrNoFile = errors.New("nfs: no such file")
	// ErrVolumeExists indicates a provisioning name collision.
	ErrVolumeExists = errors.New("nfs: volume already exists")
)

// Server hosts named shared volumes.
type Server struct {
	clk  clock.Clock
	link netsim.Link

	mu      sync.Mutex
	volumes map[string]*Volume
	fault   FaultMode
}

// NewServer returns an NFS server on clk; file operations are charged
// per-operation latency from link.
func NewServer(clk clock.Clock) *Server {
	return &Server{clk: clk, link: netsim.NFSLink, volumes: make(map[string]*Volume)}
}

// Provision creates a volume (the Guardian does this per job through a
// PVC). Provisioning is idempotent per name only in the error sense:
// creating an existing name fails with ErrVolumeExists.
func (s *Server) Provision(name string) (*Volume, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.volumes[name]; ok {
		return nil, fmt.Errorf("provisioning %q: %w", name, ErrVolumeExists)
	}
	v := &Volume{name: name, srv: s, files: make(map[string][]byte)}
	s.volumes[name] = v
	return v, nil
}

// Volume returns the named volume.
func (s *Server) Volume(name string) (*Volume, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[name]
	if !ok {
		return nil, fmt.Errorf("mounting %q: %w", name, ErrNoVolume)
	}
	return v, nil
}

// Release deletes the volume and its contents (job teardown).
func (s *Server) Release(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.volumes, name)
}

// VolumeNames lists provisioned volumes (GC scans).
func (s *Server) VolumeNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.volumes))
	for n := range s.volumes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Volume is a single shared filesystem.
type Volume struct {
	name string
	srv  *Server

	mu    sync.Mutex
	files map[string][]byte
}

// Name returns the volume name.
func (v *Volume) Name() string { return v.name }

// Write replaces the file's contents. In FaultError mode the write is
// silently dropped (soft-mount EIO swallowed by the writer).
func (v *Volume) Write(path string, data []byte) {
	if v.srv.awaitHealthy() == FaultError {
		return
	}
	v.srv.clk.Sleep(v.srv.link.Latency)
	v.mu.Lock()
	defer v.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	v.files[path] = cp
}

// Append adds data to the end of the file, creating it if absent. This
// is the learner's log-write primitive. In FaultError mode the append
// is silently dropped.
func (v *Volume) Append(path string, data []byte) {
	if v.srv.awaitHealthy() == FaultError {
		return
	}
	v.srv.clk.Sleep(v.srv.link.Latency)
	v.mu.Lock()
	defer v.mu.Unlock()
	v.files[path] = append(v.files[path], data...)
}

// Read returns a copy of the file's contents. In FaultError mode it
// fails with ErrFaulted.
func (v *Volume) Read(path string) ([]byte, error) {
	if v.srv.awaitHealthy() == FaultError {
		return nil, fmt.Errorf("reading %s on %s: %w", path, v.name, ErrFaulted)
	}
	v.srv.clk.Sleep(v.srv.link.Latency)
	v.mu.Lock()
	defer v.mu.Unlock()
	data, ok := v.files[path]
	if !ok {
		return nil, fmt.Errorf("reading %s on %s: %w", path, v.name, ErrNoFile)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports whether path is present.
func (v *Volume) Exists(path string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.files[path]
	return ok
}

// List returns paths under the given directory prefix, sorted.
func (v *Volume) List(prefix string) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []string
	for p := range v.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Remove deletes the file if present.
func (v *Volume) Remove(path string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.files, path)
}

// Size returns the file's length in bytes, or 0 if absent.
func (v *Volume) Size(path string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return int64(len(v.files[path]))
}

// Exit-status convention: learner process i writes its exit code to
// "learner-<i>/exitcode" when it terminates in an orderly way. The
// controller polls these files to detect completion and failure — the
// paper's "reading their output (e.g., exit status redirected to a
// file)".

// ExitCodePath returns the conventional exit-status path for a learner.
func ExitCodePath(learnerIdx int) string {
	return fmt.Sprintf("learner-%d/exitcode", learnerIdx)
}

// WriteExitCode records the learner's exit code on the volume.
func (v *Volume) WriteExitCode(learnerIdx, code int) {
	v.Write(ExitCodePath(learnerIdx), []byte(strconv.Itoa(code)))
}

// ReadExitCode returns the learner's recorded exit code. ok reports
// whether the learner has terminated (file present and well-formed).
func (v *Volume) ReadExitCode(learnerIdx int) (code int, ok bool) {
	data, err := v.Read(ExitCodePath(learnerIdx))
	if err != nil {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return 0, false
	}
	return n, true
}
