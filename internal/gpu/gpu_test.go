package gpu

import (
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"K80", "K80", true},
		{"k80", "K80", true},
		{"P100", "P100", true},
		{"p100", "P100", true},
		{"P100-SXM2", "P100-SXM2", true},
		{"dgx-1", "P100-SXM2", true},
		{"V100", "V100", true},
		{"v100", "V100", true},
		{"TPU", "", false},
		{"", "", false},
	}
	for _, tc := range cases {
		got, ok := ByName(tc.in)
		if ok != tc.ok {
			t.Errorf("ByName(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if ok && got.Name != tc.want {
			t.Errorf("ByName(%q) = %s, want %s", tc.in, got.Name, tc.want)
		}
	}
}

func TestEffectiveTFLOPS(t *testing.T) {
	// The SXM2 form factor sustains higher clocks than the PCIe card.
	if P100SXM2.EffectiveTFLOPS() <= P100.EffectiveTFLOPS() {
		t.Fatalf("SXM2 %.2f <= PCIe %.2f", P100SXM2.EffectiveTFLOPS(), P100.EffectiveTFLOPS())
	}
	// ComputeBoost 1.0 means spec-sheet TFLOPS.
	if got := K80.EffectiveTFLOPS(); got != K80.TFLOPS {
		t.Fatalf("K80 effective = %v, want %v", got, K80.TFLOPS)
	}
}

func TestCatalogSanity(t *testing.T) {
	for _, g := range []Spec{K80, P100, P100SXM2, V100} {
		if g.TFLOPS <= 0 || g.MemGB <= 0 || g.MemBW <= 0 {
			t.Errorf("%s has non-positive specs: %+v", g.Name, g)
		}
		if g.HostLink.Bandwidth <= 0 {
			t.Errorf("%s has no host link bandwidth", g.Name)
		}
		if !strings.Contains(g.String(), g.Name) {
			t.Errorf("String() %q does not embed the name", g.String())
		}
	}
	// The evaluation's ordering: K80 < P100 < V100 in compute.
	if !(K80.TFLOPS < P100.TFLOPS && P100.TFLOPS < V100.TFLOPS) {
		t.Fatal("catalog compute ordering broken")
	}
}
