// Package gpu catalogs the GPU hardware in the paper's evaluation: the
// PCIe-attached Tesla K80 and P100 used by DLaaS on IBM Cloud, and the
// SXM2/NVLink P100 inside the NVIDIA DGX-1 comparison system. The specs
// feed the analytic training-performance model in internal/trainsim.
package gpu

import (
	"fmt"

	"repro/internal/netsim"
)

// Spec describes a GPU type.
type Spec struct {
	// Name identifies the card, e.g. "K80".
	Name string
	// TFLOPS is effective single-precision throughput.
	TFLOPS float64
	// MemGB is device memory capacity.
	MemGB float64
	// MemBW is device memory bandwidth.
	MemBW netsim.Bandwidth
	// HostLink is the fabric used for inter-GPU gradient exchange on
	// this platform (PCIe for cloud servers, NVLink on DGX-1).
	HostLink netsim.Link
	// ComputeBoost captures higher sustained clocks of the SXM2 form
	// factor relative to the PCIe card (1.0 = PCIe baseline).
	ComputeBoost float64
}

// EffectiveTFLOPS returns the boost-adjusted compute rate.
func (s Spec) EffectiveTFLOPS() float64 { return s.TFLOPS * s.ComputeBoost }

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s(%.1fTF,%s)", s.Name, s.EffectiveTFLOPS(), s.HostLink.Name)
}

// Catalog of the paper's GPUs.
var (
	// K80 is the Kepler-class PCIe accelerator in the Fig. 2 experiments
	// (per-GPU, i.e. one GK210 die of the dual-die card).
	K80 = Spec{
		Name:         "K80",
		TFLOPS:       2.9,
		MemGB:        12,
		MemBW:        240 * netsim.GBps,
		HostLink:     netsim.PCIe3x16,
		ComputeBoost: 1.0,
	}

	// P100 is the PCIe Pascal card in the Fig. 3 DLaaS configuration.
	P100 = Spec{
		Name:         "P100",
		TFLOPS:       9.3,
		MemGB:        16,
		MemBW:        720 * netsim.GBps,
		HostLink:     netsim.PCIe3x16,
		ComputeBoost: 1.0,
	}

	// P100SXM2 is the NVLink-attached P100 inside the DGX-1. Its higher
	// sustained clocks give a single-GPU advantage over the PCIe card
	// (a few percent in practice despite the larger spec-sheet gap,
	// since training is partly memory-bound) on top of the NVLink
	// multi-GPU advantage.
	P100SXM2 = Spec{
		Name:         "P100-SXM2",
		TFLOPS:       9.3,
		MemGB:        16,
		MemBW:        720 * netsim.GBps,
		HostLink:     netsim.NVLinkV1,
		ComputeBoost: 1.03,
	}

	// V100 is included for forward-looking sweeps beyond the paper.
	V100 = Spec{
		Name:         "V100",
		TFLOPS:       14.0,
		MemGB:        32,
		MemBW:        900 * netsim.GBps,
		HostLink:     netsim.NVLinkV1,
		ComputeBoost: 1.0,
	}
)

// ByName resolves a catalog GPU. ok reports whether the name is known.
func ByName(name string) (Spec, bool) {
	switch name {
	case "K80", "k80":
		return K80, true
	case "P100", "p100":
		return P100, true
	case "P100-SXM2", "p100-sxm2", "DGX-1", "dgx-1":
		return P100SXM2, true
	case "V100", "v100":
		return V100, true
	default:
		return Spec{}, false
	}
}
