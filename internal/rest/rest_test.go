package rest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	dlaas "repro"
)

type fixture struct {
	p      *dlaas.Platform
	srv    *httptest.Server
	client *http.Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	p, err := dlaas.New(dlaas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(p))
	t.Cleanup(func() {
		srv.Close()
		p.Close()
	})
	return &fixture{p: p, srv: srv, client: srv.Client()}
}

func (f *fixture) do(t *testing.T, method, path, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, f.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func (f *fixture) manifest(t *testing.T, tenant string) *dlaas.Manifest {
	t.Helper()
	creds := dlaas.Credentials{AccessKey: tenant, SecretKey: tenant + "-secret"}
	data, err := f.p.CreateDataset("data-"+tenant, "train.rec", 1<<30, creds)
	if err != nil {
		t.Fatal(err)
	}
	results, err := f.p.CreateResultsBucket("results-"+tenant, creds)
	if err != nil {
		t.Fatal(err)
	}
	return &dlaas.Manifest{
		Name: "rest-job", Framework: "tensorflow", Model: "resnet50",
		Learners: 1, GPUsPerLearner: 1, BatchPerGPU: 32,
		Epochs: 1, DatasetImages: 4000,
		TrainingData: data, Results: results,
	}
}

func TestHealthEndpoint(t *testing.T) {
	f := newFixture(t)
	resp, raw := f.do(t, "GET", "/v1/health", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "ok") {
		t.Fatalf("body = %s", raw)
	}
}

func TestSubmitRequiresTenant(t *testing.T) {
	f := newFixture(t)
	resp, _ := f.do(t, "POST", "/v1/models", "", f.manifest(t, "anon"))
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
}

func TestSubmitInvalidManifest(t *testing.T) {
	f := newFixture(t)
	m := f.manifest(t, "bad")
	m.Framework = "fortran"
	resp, raw := f.do(t, "POST", "/v1/models", "bad", m)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, raw)
	}
}

func TestFullJobOverREST(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a full job over REST; skipped with -short")
	}
	f := newFixture(t)
	m := f.manifest(t, "alice")

	// Submit.
	resp, raw := f.do(t, "POST", "/v1/models", "alice", m)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d (%s)", resp.StatusCode, raw)
	}
	var sub SubmitResult
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.JobID == "" || sub.State != "QUEUED" {
		t.Fatalf("submit result = %+v", sub)
	}

	// Poll status to completion (virtual clock advances on its own).
	deadline := time.Now().Add(2 * time.Minute) //lint:allow wallclock real-time bound; the virtual clock advances in the background
	var rec dlaas.JobRecord
	//lint:allow wallclock real-time bound; the virtual clock advances in the background
	for time.Now().Before(deadline) {
		resp, raw = f.do(t, "GET", "/v1/models/"+sub.JobID, "alice", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status code = %d (%s)", resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			break
		}
		time.Sleep(20 * time.Millisecond) //lint:allow wallclock real-time poll pacing while virtual clock runs in background
	}
	if rec.State != dlaas.StateCompleted {
		t.Fatalf("final state = %s (%s)", rec.State, rec.Reason)
	}

	// Logs.
	resp, raw = f.do(t, "GET", "/v1/models/"+sub.JobID+"/logs?learner=0", "alice", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "training complete") {
		t.Fatalf("logs = %d: %s", resp.StatusCode, raw)
	}

	// Events.
	resp, raw = f.do(t, "GET", "/v1/models/"+sub.JobID+"/events", "alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	var events []dlaas.Event
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("events = %v", events)
	}

	// Metrics.
	resp, raw = f.do(t, "GET", "/v1/models/"+sub.JobID+"/metrics?learner=0", "alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var points []dlaas.MetricPoint
	if err := json.Unmarshal(raw, &points); err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no metric points")
	}

	// List.
	resp, raw = f.do(t, "GET", "/v1/models", "alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var recs []dlaas.JobRecord
	if err := json.Unmarshal(raw, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != sub.JobID {
		t.Fatalf("list = %+v", recs)
	}
}

func TestCrossTenantForbidden(t *testing.T) {
	f := newFixture(t)
	m := f.manifest(t, "owner")
	resp, raw := f.do(t, "POST", "/v1/models", "owner", m)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d (%s)", resp.StatusCode, raw)
	}
	var sub SubmitResult
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	resp, _ = f.do(t, "GET", "/v1/models/"+sub.JobID, "intruder", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant read = %d, want 403", resp.StatusCode)
	}
	resp, _ = f.do(t, "DELETE", "/v1/models/"+sub.JobID, "intruder", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant halt = %d, want 403", resp.StatusCode)
	}
}

func TestUnknownJob404(t *testing.T) {
	f := newFixture(t)
	resp, _ := f.do(t, "GET", "/v1/models/job-999999", "x", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHaltOverREST(t *testing.T) {
	f := newFixture(t)
	m := f.manifest(t, "haltr")
	m.DatasetImages = 500000 // long job
	resp, raw := f.do(t, "POST", "/v1/models", "haltr", m)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var sub SubmitResult
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	// Wait until it trains, then halt.
	deadline := time.Now().Add(time.Minute) //lint:allow wallclock real-time bound; the virtual clock advances in the background
	//lint:allow wallclock real-time bound; the virtual clock advances in the background
	for time.Now().Before(deadline) {
		_, raw = f.do(t, "GET", "/v1/models/"+sub.JobID, "haltr", nil)
		var rec dlaas.JobRecord
		if err := json.Unmarshal(raw, &rec); err == nil && rec.State == dlaas.StateProcessing {
			break
		}
		time.Sleep(20 * time.Millisecond) //lint:allow wallclock real-time poll pacing while virtual clock runs in background
	}
	resp, raw = f.do(t, "DELETE", "/v1/models/"+sub.JobID, "haltr", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("halt = %d (%s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "HALTED") {
		t.Fatalf("halt body = %s", raw)
	}
}

func TestClusterInfoEndpoint(t *testing.T) {
	f := newFixture(t)
	resp, raw := f.do(t, "GET", "/v1/cluster", "ops", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var info dlaas.ClusterInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 4 || info.TotalGPUs != 16 || info.FreeGPUs != 16 {
		t.Fatalf("info = %+v", info)
	}
}

func TestAdminMetricsEndpoint(t *testing.T) {
	f := newFixture(t)
	// Generate some metered traffic first.
	if resp, _ := f.do(t, "GET", "/v1/cluster", "ops", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("cluster call failed")
	}
	resp, raw := f.do(t, "GET", "/v1/admin/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "api_requests_total") {
		t.Fatalf("metrics snapshot missing counters:\n%s", raw)
	}
}

func TestBadLearnerParam(t *testing.T) {
	f := newFixture(t)
	m := f.manifest(t, "lp")
	resp, raw := f.do(t, "POST", "/v1/models", "lp", m)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var sub SubmitResult
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	resp, _ = f.do(t, "GET", fmt.Sprintf("/v1/models/%s/logs?learner=-1", sub.JobID), "lp", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad learner param = %d, want 400", resp.StatusCode)
	}
}

// TestPrometheusEndpoint: /metrics serves the registry in Prometheus
// text exposition format after a completed job.
func TestPrometheusEndpoint(t *testing.T) {
	f := newFixture(t)
	resp, raw := f.do(t, "GET", "/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(string(raw), "# TYPE") {
		t.Fatalf("no TYPE lines in exposition:\n%.400s", raw)
	}
}

// TestTraceEndpoint: /traces/{id} serves the job's span tree plus
// critical-path attribution, tenant-scoped like every other job view.
func TestTraceEndpoint(t *testing.T) {
	f := newFixture(t)
	resp, raw := f.do(t, "POST", "/v1/models", "tracer", f.manifest(t, "tracer"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d (%s)", resp.StatusCode, raw)
	}
	var sub SubmitResult
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	if _, err := f.p.Client("tracer").WaitForState(sub.JobID, dlaas.StateCompleted, 2*time.Hour); err != nil {
		t.Fatal(err)
	}

	resp, raw = f.do(t, "GET", "/traces/"+sub.JobID, "tracer", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d (%s)", resp.StatusCode, raw)
	}
	var body TraceBody
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Trace == nil || body.Trace.Root == nil || body.Trace.Root.Name != "job" {
		t.Fatalf("no job root in trace body:\n%.400s", raw)
	}
	if body.CriticalPath.Total <= 0 || len(body.CriticalPath.Phases) == 0 {
		t.Fatalf("empty critical path: %+v", body.CriticalPath)
	}
	var sum time.Duration
	for _, pc := range body.CriticalPath.Phases {
		sum += pc.Cost
	}
	if sum != body.CriticalPath.Total {
		t.Fatalf("phase costs sum to %v, want %v", sum, body.CriticalPath.Total)
	}

	// Another tenant cannot read the trace.
	resp, _ = f.do(t, "GET", "/traces/"+sub.JobID, "mallory", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant trace status = %d, want 403", resp.StatusCode)
	}
	// Unknown jobs 404.
	resp, _ = f.do(t, "GET", "/traces/job-999999", "tracer", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-job trace status = %d, want 404", resp.StatusCode)
	}
}
