// Package rest exposes the DLaaS API over HTTP/JSON, mirroring the
// paper's statement that the API microservice "exposes both a RESTful
// API as well as a GRPC API endpoint" (the in-process rpc bus plays the
// role of gRPC). Routes follow the FfDL convention of a /v1/models
// resource. Tenancy is asserted with the X-Tenant header, standing in
// for the platform's access management.
package rest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	dlaas "repro"

	"repro/internal/core"
	"repro/internal/core/api"
	"repro/internal/core/manifest"
	"repro/internal/mongo"
	"repro/internal/trace"
)

// TenantHeader carries the caller's tenant identity.
const TenantHeader = "X-Tenant"

// SubmitResult is the POST /v1/models response body.
type SubmitResult struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
}

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	Error string `json:"error"`
}

// Handler builds the HTTP API for a platform instance.
func Handler(p *dlaas.Platform) http.Handler {
	s := &server{p: p}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models", s.submit)
	mux.HandleFunc("GET /v1/models", s.list)
	mux.HandleFunc("GET /v1/models/{id}", s.status)
	mux.HandleFunc("DELETE /v1/models/{id}", s.halt)
	mux.HandleFunc("GET /v1/models/{id}/logs", s.logs)
	mux.HandleFunc("GET /v1/models/{id}/events", s.events)
	mux.HandleFunc("GET /v1/models/{id}/metrics", s.metrics)
	mux.HandleFunc("GET /v1/health", s.health)
	mux.HandleFunc("GET /v1/cluster", s.cluster)
	mux.HandleFunc("GET /v1/admin/metrics", s.platformMetrics)
	mux.HandleFunc("GET /metrics", s.prometheus)
	mux.HandleFunc("GET /traces/{id}", s.trace)
	return mux
}

type server struct {
	p *dlaas.Platform
}

func (s *server) client(r *http.Request) (*dlaas.Client, error) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		return nil, fmt.Errorf("missing %s header", TenantHeader)
	}
	return s.p.Client(tenant), nil
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	var m dlaas.Manifest
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding manifest: %w", err))
		return
	}
	id, err := client.Submit(&m)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, SubmitResult{JobID: id, State: string(dlaas.StateQueued)})
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	recs, err := client.List()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	rec, err := client.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *server) halt(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	state, err := client.Halt(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": string(state)})
}

func (s *server) logs(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	learner, err := learnerParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	text, err := client.Logs(r.PathValue("id"), learner)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(text))
}

func (s *server) events(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	events, err := client.Events(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, events)
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	learner, err := learnerParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	points, err := client.Metrics(r.PathValue("id"), learner)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, points)
}

func (s *server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) cluster(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	info, err := client.ClusterInfo()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// platformMetrics dumps the metering/instrumentation registry as text.
func (s *server) platformMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(s.p.Metrics().Snapshot() + "\n"))
}

// prometheus serves the registry in Prometheus text exposition format —
// counters, gauges, and cumulative histogram buckets — on the
// conventional scrape path.
func (s *server) prometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(s.p.Metrics().PrometheusText()))
}

// TraceBody is the GET /traces/{id} response: the job's span tree plus
// its critical-path phase attribution.
type TraceBody struct {
	Trace        *trace.Tree       `json:"trace"`
	CriticalPath trace.Attribution `json:"critical_path"`
}

// trace serves one job's span tree and critical path. Trace access is
// tenant-scoped through the same ownership check as job status.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	client, err := s.client(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	id := r.PathValue("id")
	if _, err := client.Status(id); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	t := s.p.Trace().Tree(id)
	if t == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no trace recorded for job %s (tracing off?)", id))
		return
	}
	writeJSON(w, http.StatusOK, TraceBody{Trace: t, CriticalPath: trace.CriticalPath(t)})
}

func learnerParam(r *http.Request) (int, error) {
	q := r.URL.Query().Get("learner")
	if q == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad learner index %q", q)
	}
	return n, nil
}

// statusFor maps platform errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrJobNotFound), errors.Is(err, mongo.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, api.ErrForbidden):
		return http.StatusForbidden
	case errors.Is(err, manifest.ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorBody{Error: err.Error()})
}
