// Package objectstore models IBM Cloud Object Store: the bucketed blob
// service from which DLaaS learners stream training data and to which
// they write checkpoints, logs and trained models. Two properties matter
// to the reproduction:
//
//   - Streaming is bandwidth-metered over the shared datacenter network
//     (training data "cannot be stored locally and typically has to be
//     streamed over the network for each pass"), which is what couples
//     platform overhead to training throughput in Fig. 2.
//   - Access is credentialed per bucket, part of the multi-tenant
//     isolation story.
package objectstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// Common errors.
var (
	// ErrNoBucket indicates the bucket does not exist.
	ErrNoBucket = errors.New("objectstore: no such bucket")
	// ErrNoObject indicates the object does not exist.
	ErrNoObject = errors.New("objectstore: no such object")
	// ErrAccessDenied indicates the presented credentials do not grant
	// access to the bucket.
	ErrAccessDenied = errors.New("objectstore: access denied")
	// ErrBucketExists indicates a create collided with an existing name.
	ErrBucketExists = errors.New("objectstore: bucket already exists")
	// ErrQuotaExceeded indicates the write would push the bucket past
	// its byte quota (per-tenant resource isolation).
	ErrQuotaExceeded = errors.New("objectstore: quota exceeded")
)

// Credentials authenticate a tenant to a bucket.
type Credentials struct {
	AccessKey string
	SecretKey string
}

// Object is a stored blob. Data is content; Size may exceed len(Data)
// for synthetic objects whose bytes are not materialized (multi-TB
// training sets are represented by size alone).
type Object struct {
	Key  string
	Size int64
	Data []byte
}

// Store is the object store service endpoint.
type Store struct {
	clk  clock.Clock
	link *netsim.SharedLink

	mu       sync.Mutex
	buckets  map[string]*bucket
	gets     int
	puts     int
	bytesIn  int64
	bytesOut int64
}

type bucket struct {
	creds   Credentials
	objects map[string]Object
	// quota bounds total stored bytes; 0 = unlimited.
	quota int64
}

// usedLocked sums the bucket's stored bytes.
func (b *bucket) usedLocked() int64 {
	var total int64
	for _, o := range b.objects {
		total += o.Size
	}
	return total
}

// checkQuotaLocked verifies that replacing key with size bytes fits.
func (b *bucket) checkQuotaLocked(key string, size int64) error {
	if b.quota <= 0 {
		return nil
	}
	used := b.usedLocked() - b.objects[key].Size
	if used+size > b.quota {
		return fmt.Errorf("bucket at %d/%d bytes, need %d more: %w",
			used, b.quota, size, ErrQuotaExceeded)
	}
	return nil
}

// New returns an empty store whose transfers are metered over link.
func New(clk clock.Clock, link *netsim.SharedLink) *Store {
	return &Store{clk: clk, link: link, buckets: make(map[string]*bucket)}
}

// CreateBucket registers name with creds as its owner credentials.
func (s *Store) CreateBucket(name string, creds Credentials) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("creating bucket %q: %w", name, ErrBucketExists)
	}
	s.buckets[name] = &bucket{creds: creds, objects: make(map[string]Object)}
	return nil
}

// SetQuota bounds the bucket's total stored bytes (0 = unlimited).
// Requires the bucket's credentials.
func (s *Store) SetQuota(bucketName string, quota int64, creds Credentials) error {
	b, err := s.authorize(bucketName, creds)
	if err != nil {
		return fmt.Errorf("set-quota %s: %w", bucketName, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b.quota = quota
	return nil
}

// BucketUsage reports the bucket's stored bytes and quota (0 = none).
func (s *Store) BucketUsage(bucketName string, creds Credentials) (used, quota int64, err error) {
	b, err := s.authorize(bucketName, creds)
	if err != nil {
		return 0, 0, fmt.Errorf("usage %s: %w", bucketName, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.usedLocked(), b.quota, nil
}

// Put stores data under bucket/key, charging the transfer to the network.
func (s *Store) Put(bucketName, key string, data []byte, creds Credentials) error {
	b, err := s.authorize(bucketName, creds)
	if err != nil {
		return fmt.Errorf("put %s/%s: %w", bucketName, key, err)
	}
	s.mu.Lock()
	if err := b.checkQuotaLocked(key, int64(len(data))); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("put %s/%s: %w", bucketName, key, err)
	}
	s.mu.Unlock()
	s.link.Transfer(int64(len(data)))
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	b.objects[key] = Object{Key: key, Size: int64(len(data)), Data: cp}
	s.puts++
	s.bytesIn += int64(len(data))
	s.mu.Unlock()
	return nil
}

// PutSynthetic registers an object of the given size without materialized
// bytes — how multi-TB training datasets are represented. No transfer is
// charged: the data conceptually already resides in the store.
func (s *Store) PutSynthetic(bucketName, key string, size int64, creds Credentials) error {
	b, err := s.authorize(bucketName, creds)
	if err != nil {
		return fmt.Errorf("put-synthetic %s/%s: %w", bucketName, key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := b.checkQuotaLocked(key, size); err != nil {
		return fmt.Errorf("put-synthetic %s/%s: %w", bucketName, key, err)
	}
	b.objects[key] = Object{Key: key, Size: size}
	s.puts++
	return nil
}

// Get returns the object, charging its full size to the network.
func (s *Store) Get(bucketName, key string, creds Credentials) (Object, error) {
	b, err := s.authorize(bucketName, creds)
	if err != nil {
		return Object{}, fmt.Errorf("get %s/%s: %w", bucketName, key, err)
	}
	s.mu.Lock()
	obj, ok := b.objects[key]
	s.mu.Unlock()
	if !ok {
		return Object{}, fmt.Errorf("get %s/%s: %w", bucketName, key, ErrNoObject)
	}
	s.link.Transfer(obj.Size)
	s.mu.Lock()
	s.gets++
	s.bytesOut += obj.Size
	s.mu.Unlock()
	return obj, nil
}

// Stat returns object metadata without a data transfer.
func (s *Store) Stat(bucketName, key string, creds Credentials) (Object, error) {
	b, err := s.authorize(bucketName, creds)
	if err != nil {
		return Object{}, fmt.Errorf("stat %s/%s: %w", bucketName, key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := b.objects[key]
	if !ok {
		return Object{}, fmt.Errorf("stat %s/%s: %w", bucketName, key, ErrNoObject)
	}
	obj.Data = nil
	return obj, nil
}

// List returns the keys in the bucket (no transfer charged).
func (s *Store) List(bucketName string, creds Credentials) ([]string, error) {
	b, err := s.authorize(bucketName, creds)
	if err != nil {
		return nil, fmt.Errorf("list %s: %w", bucketName, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(b.objects))
	for k := range b.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes the object if present.
func (s *Store) Delete(bucketName, key string, creds Credentials) error {
	b, err := s.authorize(bucketName, creds)
	if err != nil {
		return fmt.Errorf("delete %s/%s: %w", bucketName, key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(b.objects, key)
	return nil
}

// Stats reports cumulative operation and byte counters.
func (s *Store) Stats() (gets, puts int, bytesIn, bytesOut int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.puts, s.bytesIn, s.bytesOut
}

// StreamReader plans a metered sequential read of an object in chunks.
// Each Next call charges one chunk's transfer time to the network and
// reports progress; it is how learners stream epoch data.
type StreamReader struct {
	store *Store
	size  int64
	chunk int64
	read  int64
}

// OpenStream validates access and returns a reader that streams the
// object in chunks of chunkSize bytes.
func (s *Store) OpenStream(bucketName, key string, chunkSize int64, creds Credentials) (*StreamReader, error) {
	obj, err := s.Stat(bucketName, key, creds)
	if err != nil {
		return nil, fmt.Errorf("open stream: %w", err)
	}
	if chunkSize <= 0 {
		chunkSize = 64 << 20 // 64 MiB
	}
	return &StreamReader{store: s, size: obj.Size, chunk: chunkSize}, nil
}

// Next streams the next chunk, blocking (in virtual time) for its
// transfer. It returns the bytes advanced and false when the object is
// exhausted.
func (r *StreamReader) Next() (int64, bool) {
	if r.read >= r.size {
		return 0, false
	}
	n := r.chunk
	if rem := r.size - r.read; rem < n {
		n = rem
	}
	r.store.link.Transfer(n)
	r.read += n
	r.store.mu.Lock()
	r.store.bytesOut += n
	r.store.mu.Unlock()
	return n, true
}

// Size returns the total object size.
func (r *StreamReader) Size() int64 { return r.size }

// authorize resolves the bucket and checks credentials.
func (s *Store) authorize(name string, creds Credentials) (*bucket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return nil, ErrNoBucket
	}
	if b.creds != creds {
		return nil, ErrAccessDenied
	}
	return b, nil
}
