package objectstore

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

var (
	ownerCreds  = Credentials{AccessKey: "ak", SecretKey: "sk"}
	evilCreds   = Credentials{AccessKey: "ak2", SecretKey: "sk2"}
	testDataset = "train/imagenet.rec"
)

func newTestStore(t *testing.T) (*Store, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	t.Cleanup(clk.Close)
	link := netsim.NewSharedLink(netsim.Ethernet1G, clk)
	return New(clk, link), clk
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("b", ownerCreds); err != nil {
		t.Fatal(err)
	}
	data := []byte("checkpoint-bytes")
	if err := s.Put("b", "ckpt/1", data, ownerCreds); err != nil {
		t.Fatal(err)
	}
	obj, err := s.Get("b", "ckpt/1", ownerCreds)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(obj.Data, data) || obj.Size != int64(len(data)) {
		t.Fatalf("obj = %+v", obj)
	}
}

func TestCreateBucketCollision(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("b", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateBucket("b", ownerCreds); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("err = %v, want ErrBucketExists", err)
	}
}

func TestAccessDeniedForWrongCredentials(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("tenant1", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("tenant1", "k", []byte("x"), evilCreds); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("put err = %v, want ErrAccessDenied", err)
	}
	if _, err := s.Get("tenant1", "k", evilCreds); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("get err = %v, want ErrAccessDenied", err)
	}
	if _, err := s.List("tenant1", evilCreds); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("list err = %v, want ErrAccessDenied", err)
	}
}

func TestMissingBucketAndObject(t *testing.T) {
	s, _ := newTestStore(t)
	if _, err := s.Get("nope", "k", ownerCreds); !errors.Is(err, ErrNoBucket) {
		t.Fatalf("err = %v, want ErrNoBucket", err)
	}
	if err := s.CreateBucket("b", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b", "nope", ownerCreds); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v, want ErrNoObject", err)
	}
}

func TestSyntheticDatasetStatAndList(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("data", ownerCreds); err != nil {
		t.Fatal(err)
	}
	const size = int64(10) << 40 // 10 TB
	if err := s.PutSynthetic("data", testDataset, size, ownerCreds); err != nil {
		t.Fatal(err)
	}
	obj, err := s.Stat("data", testDataset, ownerCreds)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Size != size || obj.Data != nil {
		t.Fatalf("stat = %+v", obj)
	}
	keys, err := s.List("data", ownerCreds)
	if err != nil || len(keys) != 1 || keys[0] != testDataset {
		t.Fatalf("list = (%v,%v)", keys, err)
	}
}

func TestGetChargesTransferTime(t *testing.T) {
	s, clk := newTestStore(t)
	if err := s.CreateBucket("b", ownerCreds); err != nil {
		t.Fatal(err)
	}
	// 117 MB at 117 MB/s (1GbE) should take ~1s of virtual time.
	data := make([]byte, 117*1000*1000)
	if err := s.Put("b", "big", data, ownerCreds); err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	if _, err := s.Get("b", "big", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if got := clk.Since(start); got < 900*time.Millisecond {
		t.Fatalf("transfer took %v of virtual time, want ~1s", got)
	}
}

func TestStreamReaderChunks(t *testing.T) {
	s, clk := newTestStore(t)
	if err := s.CreateBucket("data", ownerCreds); err != nil {
		t.Fatal(err)
	}
	const size = int64(250) * 1000 * 1000
	if err := s.PutSynthetic("data", testDataset, size, ownerCreds); err != nil {
		t.Fatal(err)
	}
	r, err := s.OpenStream("data", testDataset, 100*1000*1000, ownerCreds)
	if err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	var total int64
	chunks := 0
	for {
		n, ok := r.Next()
		if !ok {
			break
		}
		total += n
		chunks++
	}
	if total != size || chunks != 3 {
		t.Fatalf("streamed %d bytes in %d chunks, want %d in 3", total, chunks, size)
	}
	// ~250MB over 1GbE ≈ 2.1s virtual.
	if got := clk.Since(start); got < 2*time.Second {
		t.Fatalf("stream took %v of virtual time, want > 2s", got)
	}
}

func TestDelete(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("b", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "k", []byte("x"), ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("b", "k", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b", "k", ownerCreds); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v, want ErrNoObject", err)
	}
}

func TestStatsCounters(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("b", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "k", make([]byte, 100), ownerCreds); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b", "k", ownerCreds); err != nil {
		t.Fatal(err)
	}
	gets, puts, in, out := s.Stats()
	if gets != 1 || puts != 1 || in != 100 || out != 100 {
		t.Fatalf("stats = %d gets %d puts %d in %d out", gets, puts, in, out)
	}
}

func TestQuotaEnforced(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("q", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuota("q", 1000, ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("q", "a", make([]byte, 600), ownerCreds); err != nil {
		t.Fatal(err)
	}
	// Second write would exceed the quota.
	if err := s.Put("q", "b", make([]byte, 600), ownerCreds); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	// Replacing the existing object counts only the delta.
	if err := s.Put("q", "a", make([]byte, 900), ownerCreds); err != nil {
		t.Fatalf("replace within quota failed: %v", err)
	}
	// Synthetic writes respect the quota too.
	if err := s.PutSynthetic("q", "c", 500, ownerCreds); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("synthetic err = %v, want ErrQuotaExceeded", err)
	}
	used, quota, err := s.BucketUsage("q", ownerCreds)
	if err != nil || used != 900 || quota != 1000 {
		t.Fatalf("usage = (%d,%d,%v)", used, quota, err)
	}
	// Deleting frees quota.
	if err := s.Delete("q", "a", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSynthetic("q", "c", 500, ownerCreds); err != nil {
		t.Fatalf("put after delete failed: %v", err)
	}
}

func TestQuotaRequiresCredentials(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("q", ownerCreds); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuota("q", 10, evilCreds); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v, want ErrAccessDenied", err)
	}
	if _, _, err := s.BucketUsage("q", evilCreds); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("usage err = %v, want ErrAccessDenied", err)
	}
}

func TestObjectDataIsolated(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("b", ownerCreds); err != nil {
		t.Fatal(err)
	}
	data := []byte("original")
	if err := s.Put("b", "k", data, ownerCreds); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // caller mutation must not reach the store
	obj, _ := s.Get("b", "k", ownerCreds)
	if string(obj.Data) != "original" {
		t.Fatalf("stored data aliased caller slice: %q", obj.Data)
	}
}

// TestListSorted: List must return keys in sorted order, not map
// order — job manifests fingerprint dataset listings, and a
// map-ordered listing would make two identical runs fingerprint
// differently.
func TestListSorted(t *testing.T) {
	s, _ := newTestStore(t)
	if err := s.CreateBucket("b", ownerCreds); err != nil {
		t.Fatal(err)
	}
	keys := []string{"z/9", "a/1", "m/5", "c/2", "x/8", "b/7", "q/3"}
	for _, k := range keys {
		if err := s.Put("b", k, []byte("x"), ownerCreds); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.List("b", ownerCreds)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List = %v, want sorted %v", got, want)
	}
}
