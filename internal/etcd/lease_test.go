package etcd

import (
	"errors"
	"testing"
	"time"
)

func TestLeaseKeysExpire(t *testing.T) {
	s, clk := newTestStore(t, 3)
	lease, err := s.GrantLease(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Put("/presence/controller", "alive"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := s.Get("/presence/controller"); !found {
		t.Fatal("leased key not stored")
	}
	// Let the lease lapse without keep-alive.
	deadline := clk.Now().Add(30 * time.Second)
	for clk.Now().Before(deadline) {
		if _, found, _ := s.Get("/presence/controller"); !found {
			if !lease.Expired() {
				t.Fatal("key deleted but lease not expired")
			}
			return
		}
		clk.Sleep(200 * time.Millisecond)
	}
	t.Fatal("leased key survived expiry")
}

func TestLeaseKeepAliveExtends(t *testing.T) {
	s, clk := newTestStore(t, 3)
	lease, err := s.GrantLease(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Put("/presence/x", "alive"); err != nil {
		t.Fatal(err)
	}
	// Keep alive well past several TTLs.
	for k := 0; k < 5; k++ {
		clk.Sleep(time.Second)
		if err := lease.KeepAlive(); err != nil {
			t.Fatalf("keepalive %d: %v", k, err)
		}
	}
	if _, found, _ := s.Get("/presence/x"); !found {
		t.Fatal("key expired despite keep-alives")
	}
}

func TestLeaseRevoke(t *testing.T) {
	s, _ := newTestStore(t, 3)
	lease, err := s.GrantLease(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Put("/k1", "v"); err != nil {
		t.Fatal(err)
	}
	if err := lease.Put("/k2", "v"); err != nil {
		t.Fatal(err)
	}
	lease.Revoke()
	for _, k := range []string{"/k1", "/k2"} {
		if _, found, _ := s.Get(k); found {
			t.Fatalf("key %s survived revoke", k)
		}
	}
	if err := lease.KeepAlive(); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("keepalive after revoke = %v, want ErrLeaseExpired", err)
	}
	if err := lease.Put("/k3", "v"); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("put after revoke = %v, want ErrLeaseExpired", err)
	}
}

func TestLeaseInvalidTTL(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if _, err := s.GrantLease(0); err == nil {
		t.Fatal("zero TTL accepted")
	}
	if _, err := s.GrantLease(-time.Second); err == nil {
		t.Fatal("negative TTL accepted")
	}
}

func TestLeaseDoesNotTouchUnleasedKeys(t *testing.T) {
	s, clk := newTestStore(t, 3)
	if _, err := s.Put("/durable", "v"); err != nil {
		t.Fatal(err)
	}
	lease, err := s.GrantLease(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Put("/ephemeral", "v"); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(5 * time.Second)
	deadline := clk.Now().Add(20 * time.Second)
	for clk.Now().Before(deadline) && !lease.Expired() {
		clk.Sleep(200 * time.Millisecond)
	}
	if _, found, _ := s.Get("/durable"); !found {
		t.Fatal("unleased key deleted by lease expiry")
	}
}
