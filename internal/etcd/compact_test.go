package etcd

import (
	"fmt"
	"testing"
	"time"
)

// TestAutoCompactionBoundsLog: with a small compaction threshold, the
// Raft log stays bounded under sustained writes and the store keeps
// serving correct reads.
func TestAutoCompactionBoundsLog(t *testing.T) {
	s, _ := newTestStore(t, 3)
	s.SetCompactEvery(20)
	const writes = 120
	for i := 0; i < writes; i++ {
		if _, err := s.Put(fmt.Sprintf("/k%d", i%10), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// All data still correct after compaction cycles.
	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("v%d", writes-10+i)
		got, found, err := s.Get(fmt.Sprintf("/k%d", i))
		if err != nil || !found || got != want {
			t.Fatalf("key /k%d = (%q,%v,%v), want %q", i, got, found, err, want)
		}
	}
	// Some node must have compacted: its in-memory log is much shorter
	// than the total write count.
	compacted := false
	for _, id := range s.cluster.IDs() {
		n := s.cluster.Node(id)
		if n != nil && n.LogLen() < writes {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("no node compacted its log")
	}
}

// TestRestartedNodeRestoresFromSnapshot: crash a node, write enough to
// trigger compaction on the survivors, restart it — it must catch up via
// snapshot installation and then participate in quorum.
func TestRestartedNodeRestoresFromSnapshot(t *testing.T) {
	s, clk := newTestStore(t, 3)
	s.SetCompactEvery(15)
	s.CrashNode(2)
	for i := 0; i < 60; i++ {
		if _, err := s.Put(fmt.Sprintf("/data/%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.RestartNode(2)
	// Give the snapshot transfer time, then prove node 2 carries the
	// state: crash a different node so quorum depends on node 2.
	clk.Sleep(2 * time.Second)
	s.CrashNode(0)
	deadline := clk.Now().Add(30 * time.Second)
	var lastErr error
	for clk.Now().Before(deadline) {
		if _, lastErr = s.Put("/after", "restart"); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("quorum with snapshot-restored node failed: %v", lastErr)
	}
	got, found, err := s.Get("/data/42")
	if err != nil || !found || got != "v42" {
		t.Fatalf("read after snapshot restore = (%q,%v,%v)", got, found, err)
	}
}

// TestCompactionPreservesExactlyOnce: dedup state survives compaction,
// so a retried proposal straddling a snapshot is still applied once.
func TestCompactionPreservesExactlyOnce(t *testing.T) {
	s, _ := newTestStore(t, 3)
	s.SetCompactEvery(10)
	// Interleave CAS (non-idempotent) with enough writes to compact.
	if err := s.CompareAndSwap("/lock", "", false, "holder"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Put(fmt.Sprintf("/fill/%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	// The lock is still held by the original holder.
	v, found, err := s.Get("/lock")
	if err != nil || !found || v != "holder" {
		t.Fatalf("lock = (%q,%v,%v)", v, found, err)
	}
	_ = time.Second
}
