package etcd

import (
	"errors"
	"fmt"
	"testing"
)

// The tests in this file pin the resume-from-revision contract that the
// watch-driven control plane builds on: WatchFrom(prefix, rev) delivers
// every event with revision > rev exactly once — backfilled from the
// replicas' MVCC history when committed before the call — or fails with
// ErrCompacted when the history no longer reaches back, in which case
// the consumer re-lists.

// TestWatchFromResumesExactly: write, remember a mid-stream revision,
// keep writing, then subscribe from the remembered revision — the
// watcher sees precisely the later events, in order, no duplicates.
func TestWatchFromResumesExactly(t *testing.T) {
	s, _ := newTestStore(t, 3)
	var cut uint64
	const writes = 12
	revs := make(map[uint64]string, writes)
	for i := 0; i < writes; i++ {
		rev, err := s.Put(fmt.Sprintf("/jobs/j/learners/%d/status", i%3), fmt.Sprintf("v%d", i))
		if err != nil {
			t.Fatal(err)
		}
		revs[rev] = fmt.Sprintf("v%d", i)
		if i == writes/2-1 {
			cut = rev
		}
	}

	events, cancel, err := s.WatchFrom("/jobs/", cut)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	last := cut
	got := 0
	for rev := range revs {
		if rev > cut {
			got++
		}
	}
	for i := 0; i < got; i++ {
		ev := recvEvent(t, events)
		if ev.Rev <= last {
			t.Fatalf("revision order violated: %d after %d", ev.Rev, last)
		}
		if want, ok := revs[ev.Rev]; !ok || ev.Value != want {
			t.Fatalf("event %+v does not match write at rev %d (%q)", ev, ev.Rev, want)
		}
		last = ev.Rev
	}

	// The stream continues live after the backfill.
	liveRev, err := s.Put("/jobs/j/learners/0/status", "live")
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev := recvEvent(t, events)
		if ev.Rev == liveRev {
			if ev.Value != "live" {
				t.Fatalf("live event = %+v", ev)
			}
			break
		}
		if ev.Rev > liveRev {
			t.Fatalf("missed live revision %d (got %d)", liveRev, ev.Rev)
		}
	}
}

// TestWatchFromCompactedFallsBackToRelist: after snapshot/compaction
// passes the saved revision, WatchFrom reports ErrCompacted and the
// consumer's Range + Watch fallback observes a consistent present.
func TestWatchFromCompactedFallsBackToRelist(t *testing.T) {
	s, _ := newTestStore(t, 3)
	s.SetCompactEvery(10)
	stale, err := s.Put("/jobs/j/learners/0/status", "STARTING")
	if err != nil {
		t.Fatal(err)
	}
	// Enough traffic on one hot key that every replica's bounded version
	// chain (store.DefaultHistoryLimit) trims past `stale`, while the
	// raft log snapshots and compacts underneath.
	for i := 0; i < 80; i++ {
		if _, err := s.Put("/fill/hot", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Put("/jobs/j/learners/0/status", "TRAINING"); err != nil {
		t.Fatal(err)
	}

	_, _, err = s.WatchFrom("/jobs/", stale)
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("WatchFrom(stale) = %v, want ErrCompacted", err)
	}

	// Fallback: subscribe from the present, then re-list.
	events, cancel := s.Watch("/jobs/")
	defer cancel()
	kvs, err := s.Range("/jobs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || kvs[0].Value != "TRAINING" {
		t.Fatalf("re-list = %+v, want the latest status", kvs)
	}
	// And the live stream still works post-fallback.
	rev, err := s.Put("/jobs/j/learners/1/status", "TRAINING")
	if err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, events)
	if ev.Rev != rev || ev.Key != "/jobs/j/learners/1/status" {
		t.Fatalf("post-fallback event = %+v, want rev %d", ev, rev)
	}
}

// TestWatchFromFutureRevisionFiltersOverlap: resuming from a revision at
// or past the hub cursor must not replay anything at or below it.
func TestWatchFromFutureRevisionFiltersOverlap(t *testing.T) {
	s, _ := newTestStore(t, 1)
	rev, err := s.Put("/w/a", "1")
	if err != nil {
		t.Fatal(err)
	}
	events, cancel, err := s.WatchFrom("/w/", rev+1_000)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Writes below the requested start are filtered...
	for i := 0; i < 3; i++ {
		if _, err := s.Put("/w/b", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case ev := <-events:
		if ev.Rev <= rev+1_000 {
			t.Fatalf("event below requested start leaked: %+v", ev)
		}
	default:
	}
}

// TestWatchFromSurvivesReplicaCrash: the backfill comes from whichever
// live replica still holds the history, so a minority crash between the
// saved revision and the resume does not break the contract.
func TestWatchFromSurvivesReplicaCrash(t *testing.T) {
	s, _ := newTestStore(t, 3)
	var cut uint64
	for i := 0; i < 6; i++ {
		rev, err := s.Put(fmt.Sprintf("/jobs/l%d", i), "x")
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			cut = rev
		}
	}
	s.CrashNode(1)
	events, cancel, err := s.WatchFrom("/jobs/", cut)
	if err != nil {
		t.Fatalf("WatchFrom with a crashed minority: %v", err)
	}
	defer cancel()
	last := cut
	for i := 0; i < 3; i++ {
		ev := recvEvent(t, events)
		if ev.Rev <= last {
			t.Fatalf("revision order violated: %d after %d", ev.Rev, last)
		}
		last = ev.Rev
	}
}
