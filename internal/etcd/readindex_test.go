package etcd

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/clock"
)

// The tests in this file pin the read-index read path: Get/Range served
// from local MVCC snapshots must stay linearizable through leader
// partitions (never returning a value older than an acknowledged
// write), propose mode must agree with it answer-for-answer, and
// serializable mode must be stale-at-worst, wrong-never.

func newModeStore(t *testing.T, n int, mode string) (*Store, *clock.Sim) {
	t.Helper()
	s, clk := newTestStore(t, n)
	if err := s.SetReadMode(mode); err != nil {
		t.Fatal(err)
	}
	return s, clk
}

// TestReadModeValidation: the four modes are accepted ("" selects the
// default, leaseread), anything else is rejected.
func TestReadModeValidation(t *testing.T) {
	s, _ := newTestStore(t, 1)
	if got := s.ReadMode(); got != ReadModeLease {
		t.Fatalf("default read mode = %q, want %q", got, ReadModeLease)
	}
	for _, mode := range []string{ReadModeLease, ReadModeReadIndex, ReadModePropose, ReadModeSerializable, ""} {
		if err := s.SetReadMode(mode); err != nil {
			t.Fatalf("SetReadMode(%q) = %v", mode, err)
		}
	}
	if got := s.ReadMode(); got != ReadModeLease {
		t.Fatalf(`read mode after SetReadMode("") = %q, want %q`, got, ReadModeLease)
	}
	if err := s.SetReadMode("linearizable-ish"); err == nil {
		t.Fatal("bogus read mode accepted")
	}
}

// TestReadModesAgree: identical workloads answer identically in every
// mode once the cluster is quiescent — Get, Range and read-only Txn.
func TestReadModesAgree(t *testing.T) {
	for _, mode := range []string{ReadModeLease, ReadModeReadIndex, ReadModePropose, ReadModeSerializable} {
		t.Run(mode, func(t *testing.T) {
			s, _ := newModeStore(t, 3, mode)
			for i := 0; i < 6; i++ {
				if _, err := s.Put(fmt.Sprintf("/m/k%d", i), fmt.Sprintf("v%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			v, found, err := s.Get("/m/k3")
			if err != nil || !found || v != "v3" {
				t.Fatalf("get = (%q,%v,%v), want (v3,true,nil)", v, found, err)
			}
			if _, found, err = s.Get("/m/missing"); err != nil || found {
				t.Fatalf("missing get = (%v,%v)", found, err)
			}
			kvs, err := s.Range("/m/")
			if err != nil || len(kvs) != 6 {
				t.Fatalf("range = (%d kvs, %v), want 6", len(kvs), err)
			}
			for i, kv := range kvs {
				if kv.Key != fmt.Sprintf("/m/k%d", i) || kv.Value != fmt.Sprintf("v%d", i) {
					t.Fatalf("range[%d] = %+v", i, kv)
				}
			}
			// Read-only txn: pure guard evaluation, no mutations.
			ok, _, err := s.Txn([]Cmp{{Key: "/m/k3", Prev: "v3", PrevExists: true}}, nil, nil)
			if err != nil || !ok {
				t.Fatalf("read-only txn = (%v,%v), want guard to hold", ok, err)
			}
			ok, _, err = s.Txn([]Cmp{{Key: "/m/k3", Prev: "stale", PrevExists: true}}, nil, nil)
			if err != nil || ok {
				t.Fatalf("read-only txn with stale guard = (%v,%v), want false", ok, err)
			}
		})
	}
}

// TestReadIndexReadsCostNoProposals: the acceptance criterion's core
// number — read-index and leaseread Get/Range issue zero Raft
// proposals, propose-mode reads one each.
func TestReadIndexReadsCostNoProposals(t *testing.T) {
	s, _ := newModeStore(t, 3, ReadModeReadIndex)
	if _, err := s.Put("/p/k", "v"); err != nil {
		t.Fatal(err)
	}
	const reads = 25
	for _, mode := range []string{ReadModeReadIndex, ReadModeLease} {
		if err := s.SetReadMode(mode); err != nil {
			t.Fatal(err)
		}
		base := s.Proposals()
		for i := 0; i < reads; i++ {
			if _, _, err := s.Get("/p/k"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Range("/p/"); err != nil {
				t.Fatal(err)
			}
		}
		if got := s.Proposals() - base; got != 0 {
			t.Fatalf("%s mode issued %d proposals for %d reads, want 0", mode, got, 2*reads)
		}
	}

	if err := s.SetReadMode(ReadModePropose); err != nil {
		t.Fatal(err)
	}
	base := s.Proposals()
	for i := 0; i < reads; i++ {
		if _, _, err := s.Get("/p/k"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Proposals() - base; got < reads {
		t.Fatalf("propose mode issued %d proposals for %d reads, want >= %d", got, reads, reads)
	}
}

// TestReadIndexLinearizableUnderLeaderPartition is the chaos probe: a
// single writer bumps a counter while the current leader is repeatedly
// isolated mid-storm; after every acknowledged write, a read must
// return a value at least as new — never an older acknowledged state,
// which is exactly what a deposed leader serving reads from its local
// snapshot (or a stale check-quorum lease outliving its bound) would
// produce. Run in both linearizable modes: the lease fast path must
// survive the same storm as dedicated rounds.
func TestReadIndexLinearizableUnderLeaderPartition(t *testing.T) {
	for _, mode := range []string{ReadModeReadIndex, ReadModeLease} {
		t.Run(mode, func(t *testing.T) {
			testLinearizableUnderLeaderPartition(t, mode)
		})
	}
}

func testLinearizableUnderLeaderPartition(t *testing.T, mode string) {
	s, clk := newModeStore(t, 3, mode)

	var acked int64 // highest value whose Put was acknowledged
	partitioned := -1
	const writes = 30
	for i := 1; i <= writes; i++ {
		// Isolate the current leader every 10 writes, healing the
		// previous victim so a quorum always exists.
		if i%10 == 5 {
			if partitioned >= 0 {
				s.HealNode(partitioned)
			}
			if lead := s.LeaderID(); lead >= 0 {
				s.PartitionNode(lead)
				partitioned = lead
			}
		}
		// Writes may time out during failover; only acknowledged ones
		// raise the linearizability floor (a timed-out write may still
		// commit, which can only push reads forward, never back).
		deadline := clk.Now().Add(30 * time.Second)
		for clk.Now().Before(deadline) {
			if _, err := s.Put("/probe/counter", strconv.FormatInt(int64(i), 10)); err == nil {
				acked = int64(i)
				break
			}
		}
		if acked != int64(i) {
			t.Fatalf("write %d never acknowledged", i)
		}

		v, found, err := s.Get("/probe/counter")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !found {
			t.Fatalf("read %d: counter missing after acknowledged write %d", i, acked)
		}
		got, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("read %d: bad counter %q", i, v)
		}
		if got < acked {
			t.Fatalf("stale read: got %d after write %d was acknowledged", got, acked)
		}
	}
	if partitioned >= 0 {
		s.HealNode(partitioned)
	}
}

// TestSerializableBoundedStaleness: with the quorum gone, read-index
// reads block (and time out) rather than guess — while serializable
// reads keep answering from local state with a previously acknowledged
// value: bounded staleness, not wrongness.
func TestSerializableBoundedStaleness(t *testing.T) {
	s, clk := newModeStore(t, 3, ReadModeReadIndex)
	s.timeout = 2 * time.Second // keep the no-quorum timeout cheap

	acked := make(map[string]bool)
	var last string
	for i := 1; i <= 5; i++ {
		last = fmt.Sprintf("v%d", i)
		if _, err := s.Put("/s/k", last); err != nil {
			t.Fatal(err)
		}
		acked[last] = true
	}
	// Let every replica apply the final write so staleness below is the
	// partition's doing, not apply lag.
	deadline := clk.Now().Add(5 * time.Second)
	for clk.Now().Before(deadline) {
		all := true
		s.mu.Lock()
		for _, sm := range s.sms {
			if v, _, ok := sm.engine().Get("/s/k"); !ok || v != last {
				all = false
			}
		}
		s.mu.Unlock()
		if all {
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}

	// Destroy the quorum: isolate two of three nodes.
	ids := s.Nodes()
	s.PartitionNode(ids[0])
	s.PartitionNode(ids[1])

	if _, _, err := s.Get("/s/k"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("read-index get without quorum = %v, want ErrTimeout", err)
	}

	if err := s.SetReadMode(ReadModeSerializable); err != nil {
		t.Fatal(err)
	}
	v, found, err := s.Get("/s/k")
	if err != nil || !found {
		t.Fatalf("serializable get without quorum = (%v,%v), want a value", found, err)
	}
	if !acked[v] {
		t.Fatalf("serializable read returned %q, not any acknowledged value", v)
	}
	if v != last {
		t.Logf("serializable read lagged: %q (acceptable bounded staleness)", v)
	}

	// A write cannot commit without quorum; the serializable read still
	// answers from the acknowledged past afterwards.
	if _, err := s.Put("/s/k", "v6"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("put without quorum = %v, want ErrTimeout", err)
	}
	v, _, err = s.Get("/s/k")
	if err != nil || !acked[v] {
		t.Fatalf("serializable read after failed write = (%q,%v), want an acknowledged value", v, err)
	}

	s.HealNode(ids[0])
	s.HealNode(ids[1])
}

// TestSerializableRangeOptIn: SerializableRange bypasses the store's
// configured mode — it answers without quorum even when the store
// default is read-index.
func TestSerializableRangeOptIn(t *testing.T) {
	s, _ := newModeStore(t, 3, ReadModeReadIndex)
	s.timeout = 2 * time.Second
	for i := 0; i < 3; i++ {
		if _, err := s.Put(fmt.Sprintf("/gc/j1/k%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.Nodes()
	s.PartitionNode(ids[0])
	s.PartitionNode(ids[1])

	if _, err := s.Range("/gc/j1/"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("read-index range without quorum = %v, want ErrTimeout", err)
	}
	kvs, err := s.SerializableRange("/gc/j1/")
	if err != nil || len(kvs) != 3 {
		t.Fatalf("serializable range = (%d kvs, %v), want 3", len(kvs), err)
	}
	s.HealNode(ids[0])
	s.HealNode(ids[1])
}

// TestOpCountsSplitFailures: timed-out reads land in the failure
// counters, so RangeOps (the watch-vs-poll denominator) only counts
// scans that actually completed.
func TestOpCountsSplitFailures(t *testing.T) {
	s, _ := newModeStore(t, 3, ReadModeReadIndex)
	s.timeout = time.Second
	if _, err := s.Put("/c/k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Range("/c/"); err != nil {
		t.Fatal(err)
	}
	before := s.OpCounts()
	if before["range"] != 1 || before["range_fail"] != 0 {
		t.Fatalf("counts after one clean range = %v", before)
	}

	for _, id := range s.Nodes() {
		s.PartitionNode(id)
	}
	if _, err := s.Range("/c/"); err == nil {
		t.Fatal("range with every node isolated succeeded")
	}
	after := s.OpCounts()
	if after["range"] != 1 {
		t.Fatalf("failed range inflated the success counter: %v", after)
	}
	if after["range_fail"] != 1 {
		t.Fatalf("failed range not counted as failure: %v", after)
	}
	if got := s.RangeOps(); got != 1 {
		t.Fatalf("RangeOps = %d, want 1 (successes only)", got)
	}
	for _, id := range s.Nodes() {
		s.HealNode(id)
	}
}
