package etcd

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrLeaseExpired indicates a keep-alive or attach raced lease expiry.
var ErrLeaseExpired = errors.New("etcd: lease expired")

// Lease is a TTL-bound liveness handle: keys attached to it are deleted
// when the lease expires without a keep-alive — etcd's standard
// mechanism for failure detection, used here to let components publish
// presence that vanishes when they crash.
type Lease struct {
	store *Store
	id    string
	ttl   time.Duration

	mu       sync.Mutex
	keys     map[string]bool
	expired  bool
	deadline time.Time
	timer    interface {
		Stop() bool
		Reset(time.Duration)
	}
}

// GrantLease creates a lease with the given TTL. The lease must be kept
// alive with KeepAlive or it expires, deleting every attached key.
func (s *Store) GrantLease(ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("etcd: lease ttl must be positive, got %v", ttl)
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	id := fmt.Sprintf("lease-%d", s.reqSeq.Add(1))

	l := &Lease{
		store:    s,
		id:       id,
		ttl:      ttl,
		keys:     make(map[string]bool),
		deadline: s.clk.Now().Add(ttl),
	}
	l.timer = s.clk.AfterFunc(ttl, func() { l.expire(false) })
	return l, nil
}

// ID returns the lease identity.
func (l *Lease) ID() string { return l.id }

// PutWithLease stores key=value attached to the lease: the key is
// deleted automatically when the lease expires.
func (l *Lease) Put(key, value string) error {
	l.mu.Lock()
	if l.expired {
		l.mu.Unlock()
		return fmt.Errorf("put %q: %w", key, ErrLeaseExpired)
	}
	l.keys[key] = true
	l.mu.Unlock()
	if _, err := l.store.Put(key, value); err != nil {
		return err
	}
	return nil
}

// KeepAlive extends the lease by its TTL. It fails if the lease already
// expired — the caller must re-establish its presence from scratch, as
// a recovered component would.
func (l *Lease) KeepAlive() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.expired {
		return ErrLeaseExpired
	}
	l.timer.Stop()
	l.timer.Reset(l.ttl)
	// The deadline is what an in-flight expiry re-checks: a timer
	// goroutine spawned at the old deadline must not kill a lease whose
	// owner renewed at the same instant.
	l.deadline = l.store.clk.Now().Add(l.ttl)
	return nil
}

// Revoke expires the lease immediately, deleting attached keys.
func (l *Lease) Revoke() {
	l.expire(true)
}

// Expired reports whether the lease has expired.
func (l *Lease) Expired() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.expired
}

// expire deletes every attached key through the replicated log. force
// distinguishes Revoke (always expires) from the timer path, which
// yields to a keep-alive that re-armed the lease after this expiry was
// already in flight.
func (l *Lease) expire(force bool) {
	l.mu.Lock()
	if l.expired {
		l.mu.Unlock()
		return
	}
	if !force && l.store.clk.Now().Before(l.deadline) {
		// Lost the race against KeepAlive: the re-armed timer owns the
		// next expiry.
		l.mu.Unlock()
		return
	}
	l.expired = true
	l.timer.Stop()
	keys := make([]string, 0, len(l.keys))
	for k := range l.keys {
		keys = append(keys, k)
	}
	// Deterministic delete order: each Delete is its own revision, so
	// the watch-visible event sequence must not depend on map order.
	sort.Strings(keys)
	l.mu.Unlock()

	for _, k := range keys {
		_ = l.store.Delete(k) // best effort: store may be closing
	}
}
