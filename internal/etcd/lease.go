package etcd

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLeaseExpired indicates a keep-alive or attach raced lease expiry.
var ErrLeaseExpired = errors.New("etcd: lease expired")

// Lease is a TTL-bound liveness handle: keys attached to it are deleted
// when the lease expires without a keep-alive — etcd's standard
// mechanism for failure detection, used here to let components publish
// presence that vanishes when they crash.
type Lease struct {
	store *Store
	id    string
	ttl   time.Duration

	mu      sync.Mutex
	keys    map[string]bool
	expired bool
	timer   interface {
		Stop() bool
		Reset(time.Duration)
	}
}

// GrantLease creates a lease with the given TTL. The lease must be kept
// alive with KeepAlive or it expires, deleting every attached key.
func (s *Store) GrantLease(ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("etcd: lease ttl must be positive, got %v", ttl)
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	id := fmt.Sprintf("lease-%d", s.reqSeq.Add(1))

	l := &Lease{
		store: s,
		id:    id,
		ttl:   ttl,
		keys:  make(map[string]bool),
	}
	l.timer = s.clk.AfterFunc(ttl, l.expire)
	return l, nil
}

// ID returns the lease identity.
func (l *Lease) ID() string { return l.id }

// PutWithLease stores key=value attached to the lease: the key is
// deleted automatically when the lease expires.
func (l *Lease) Put(key, value string) error {
	l.mu.Lock()
	if l.expired {
		l.mu.Unlock()
		return fmt.Errorf("put %q: %w", key, ErrLeaseExpired)
	}
	l.keys[key] = true
	l.mu.Unlock()
	if _, err := l.store.Put(key, value); err != nil {
		return err
	}
	return nil
}

// KeepAlive extends the lease by its TTL. It fails if the lease already
// expired — the caller must re-establish its presence from scratch, as
// a recovered component would.
func (l *Lease) KeepAlive() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.expired {
		return ErrLeaseExpired
	}
	l.timer.Stop()
	l.timer.Reset(l.ttl)
	return nil
}

// Revoke expires the lease immediately, deleting attached keys.
func (l *Lease) Revoke() {
	l.expire()
}

// Expired reports whether the lease has expired.
func (l *Lease) Expired() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.expired
}

// expire deletes every attached key through the replicated log.
func (l *Lease) expire() {
	l.mu.Lock()
	if l.expired {
		l.mu.Unlock()
		return
	}
	l.expired = true
	l.timer.Stop()
	keys := make([]string, 0, len(l.keys))
	for k := range l.keys {
		keys = append(keys, k)
	}
	l.mu.Unlock()

	for _, k := range keys {
		_ = l.store.Delete(k) // best effort: store may be closing
	}
}
