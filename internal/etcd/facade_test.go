package etcd

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// The tests in this file pin the interleavings the store-engine facade
// refactor must preserve: watch delivery while Raft-log compaction runs
// underneath, lease expiry racing an active watch, and the transaction
// API's atomicity as seen by watchers.

// TestWatchUnderCompaction: a watcher subscribed while the log is being
// snapshotted and compacted every few entries must still observe every
// mutation, in strictly increasing revision order, with no duplicates.
func TestWatchUnderCompaction(t *testing.T) {
	s, _ := newTestStore(t, 3)
	s.SetCompactEvery(10)
	events, cancel := s.Watch("/jobs/")
	defer cancel()

	const writes = 60
	for i := 0; i < writes; i++ {
		if _, err := s.Put(fmt.Sprintf("/jobs/j%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var last uint64
	seen := make(map[string]bool)
	for i := 0; i < writes; i++ {
		ev := recvEvent(t, events)
		if ev.Type != EventPut {
			t.Fatalf("event %d = %v, want PUT", i, ev.Type)
		}
		if ev.Rev <= last {
			t.Fatalf("revision order violated under compaction: %d after %d", ev.Rev, last)
		}
		last = ev.Rev
		if seen[ev.Key] {
			t.Fatalf("duplicate event for %s", ev.Key)
		}
		seen[ev.Key] = true
	}
	if len(seen) != writes {
		t.Fatalf("observed %d distinct keys, want %d", len(seen), writes)
	}
	// The log really compacted while the watcher was live.
	compacted := false
	for _, id := range s.cluster.IDs() {
		if n := s.cluster.Node(id); n != nil && n.LogLen() < writes {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("no node compacted its log during the watch")
	}
}

// TestWatchAcrossNodeCrashDuringCompaction: events keep flowing in order
// when a replica crashes mid-stream and another keeps applying.
func TestWatchAcrossNodeCrashDuringCompaction(t *testing.T) {
	s, _ := newTestStore(t, 3)
	s.SetCompactEvery(8)
	events, cancel := s.Watch("/w/")
	defer cancel()

	const writes = 40
	for i := 0; i < writes; i++ {
		if i == writes/2 {
			s.CrashNode(2)
		}
		if _, err := s.Put(fmt.Sprintf("/w/k%02d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	var last uint64
	for i := 0; i < writes; i++ {
		ev := recvEvent(t, events)
		if ev.Rev <= last {
			t.Fatalf("revision order violated across crash: %d after %d", ev.Rev, last)
		}
		last = ev.Rev
	}
}

// TestLeaseExpiryDuringWatch: a watcher on the presence prefix sees the
// leased key appear and then — when the lease lapses without keep-alive
// — disappear, as an ordered PUT/DELETE pair.
func TestLeaseExpiryDuringWatch(t *testing.T) {
	s, clk := newTestStore(t, 3)
	events, cancel := s.Watch("/presence/")
	defer cancel()

	lease, err := s.GrantLease(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Put("/presence/guardian", "alive"); err != nil {
		t.Fatal(err)
	}
	put := recvEvent(t, events)
	if put.Type != EventPut || put.Key != "/presence/guardian" || put.Value != "alive" {
		t.Fatalf("put event = %+v", put)
	}

	// Let the lease lapse; the expiry's delete must reach the watcher.
	done := make(chan Event, 1)
	go func() {
		select {
		case ev := <-events:
			done <- ev
		case <-time.After(30 * time.Second):
			close(done)
		}
	}()
	deadline := clk.Now().Add(30 * time.Second)
	for clk.Now().Before(deadline) && !lease.Expired() {
		clk.Sleep(200 * time.Millisecond)
	}
	ev, ok := <-done
	if !ok {
		t.Fatal("no delete event after lease expiry")
	}
	if ev.Type != EventDelete || ev.Key != "/presence/guardian" {
		t.Fatalf("expiry event = %+v, want DELETE of the leased key", ev)
	}
	if ev.Rev <= put.Rev {
		t.Fatalf("expiry revision %d not after put revision %d", ev.Rev, put.Rev)
	}
	if !lease.Expired() {
		t.Fatal("key deleted but lease not expired")
	}
	// The key is gone from the store, not just from the watch stream.
	if _, found, _ := s.Get("/presence/guardian"); found {
		t.Fatal("leased key survived expiry")
	}
}

// TestLeaseKeepAliveDuringWatchSuppressesDelete: keep-alives while a
// watcher is subscribed must not generate spurious events.
func TestLeaseKeepAliveDuringWatchSuppressesDelete(t *testing.T) {
	s, clk := newTestStore(t, 3)
	events, cancel := s.Watch("/presence/")
	defer cancel()
	lease, err := s.GrantLease(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Put("/presence/x", "alive"); err != nil {
		t.Fatal(err)
	}
	_ = recvEvent(t, events) // the put
	for k := 0; k < 4; k++ {
		clk.Sleep(time.Second)
		if err := lease.KeepAlive(); err != nil {
			t.Fatalf("keepalive %d: %v", k, err)
		}
	}
	select {
	case ev := <-events:
		t.Fatalf("spurious event during keep-alives: %+v", ev)
	default:
	}
	if _, found, _ := s.Get("/presence/x"); !found {
		t.Fatal("key expired despite keep-alives")
	}
}

// TestTxnAtomicBranch: a transaction's mutations commit at a single
// revision — watchers see them together — and guards pick the branch.
func TestTxnAtomicBranch(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if _, err := s.Put("/jobs/j1/state", "QUEUED"); err != nil {
		t.Fatal(err)
	}
	events, cancel := s.Watch("/jobs/")
	defer cancel()

	ok, rev, err := s.Txn(
		[]Cmp{{Key: "/jobs/j1/state", Prev: "QUEUED", PrevExists: true}},
		[]TxnOp{
			{Type: EventPut, Key: "/jobs/j1/state", Value: "DEPLOYING"},
			{Type: EventPut, Key: "/jobs/j1/owner", Value: "guardian-0"},
		},
		nil,
	)
	if err != nil || !ok {
		t.Fatalf("txn = (%v,%v)", ok, err)
	}
	ev1, ev2 := recvEvent(t, events), recvEvent(t, events)
	if ev1.Rev != rev || ev2.Rev != rev {
		t.Fatalf("txn events at revs %d,%d, want both %d", ev1.Rev, ev2.Rev, rev)
	}

	// Failing guard runs the else branch.
	ok, _, err = s.Txn(
		[]Cmp{{Key: "/jobs/j1/state", Prev: "QUEUED", PrevExists: true}},
		[]TxnOp{{Type: EventPut, Key: "/jobs/j1/state", Value: "WRONG"}},
		[]TxnOp{{Type: EventPut, Key: "/jobs/j1/conflict", Value: "1"}},
	)
	if err != nil || ok {
		t.Fatalf("guarded txn = (%v,%v), want else branch", ok, err)
	}
	v, _, _ := s.Get("/jobs/j1/state")
	if v != "DEPLOYING" {
		t.Fatalf("state = %q, want DEPLOYING untouched by else branch", v)
	}
	if _, found, _ := s.Get("/jobs/j1/conflict"); !found {
		t.Fatal("else branch did not run")
	}
}

// TestTxnDeleteAndMustNotExistGuard: delete ops and absent-key guards.
func TestTxnDeleteAndMustNotExistGuard(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if _, err := s.Put("/locks/a", "owner"); err != nil {
		t.Fatal(err)
	}
	ok, _, err := s.Txn(
		[]Cmp{{Key: "/locks/b", PrevExists: false}},
		[]TxnOp{
			{Type: EventDelete, Key: "/locks/a"},
			{Type: EventPut, Key: "/locks/b", Value: "owner"},
		},
		nil,
	)
	if err != nil || !ok {
		t.Fatalf("txn = (%v,%v)", ok, err)
	}
	if _, found, _ := s.Get("/locks/a"); found {
		t.Fatal("/locks/a survived txn delete")
	}
	if v, _, _ := s.Get("/locks/b"); v != "owner" {
		t.Fatalf("/locks/b = %q", v)
	}
	// Empty guard list always takes the then branch.
	ok, _, err = s.Txn(nil, []TxnOp{{Type: EventPut, Key: "/locks/c", Value: "x"}}, nil)
	if err != nil || !ok {
		t.Fatalf("unguarded txn = (%v,%v)", ok, err)
	}
}

// TestTxnSurvivesCompactionAndRestart: exactly-once transaction effects
// across snapshot/restore, mirroring the CAS coverage in compact_test.
func TestTxnSurvivesCompactionAndRestart(t *testing.T) {
	s, _ := newTestStore(t, 3)
	s.SetCompactEvery(10)
	if ok, _, err := s.Txn(
		[]Cmp{{Key: "/seq", PrevExists: false}},
		[]TxnOp{{Type: EventPut, Key: "/seq", Value: "1"}},
		nil,
	); err != nil || !ok {
		t.Fatalf("txn = (%v,%v)", ok, err)
	}
	s.CrashNode(1)
	for i := 0; i < 30; i++ {
		if _, err := s.Put(fmt.Sprintf("/fill/%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	s.RestartNode(1)
	s.CrashNode(0)
	var v string
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		var found bool
		v, found, err = s.Get("/seq")
		if err == nil && found {
			break
		}
	}
	if err != nil || v != "1" {
		t.Fatalf("seq after restart = (%q,%v)", v, err)
	}
	// The guard still sees the key: a second must-not-exist txn fails.
	ok, _, err := s.Txn(
		[]Cmp{{Key: "/seq", PrevExists: false}},
		[]TxnOp{{Type: EventPut, Key: "/seq", Value: "2"}},
		nil,
	)
	if err != nil || ok {
		t.Fatalf("duplicate txn = (%v,%v), want guard failure", ok, err)
	}
}

// TestStalledWatcherDoesNotBlockClients: a subscriber that never reads
// (its 128-event buffer overflows) must not stall Put/Get for other
// clients — publishing enqueues to the hub's dispatcher instead of
// blocking the replica appliers.
func TestStalledWatcherDoesNotBlockClients(t *testing.T) {
	s, _ := newTestStore(t, 3)
	_, cancel := s.Watch("/hot/") // never read from
	defer cancel()
	for i := 0; i < 200; i++ {
		if _, err := s.Put(fmt.Sprintf("/hot/k%03d", i), "v"); err != nil {
			t.Fatalf("put %d stalled behind a slow watcher: %v", i, err)
		}
	}
	v, found, err := s.Get("/hot/k199")
	if err != nil || !found || v != "v" {
		t.Fatalf("get = (%q,%v,%v)", v, found, err)
	}
}

// TestWatchAfterClose: subscribing on a closed store yields a dead
// subscription rather than a panic or a hang on cancel.
func TestWatchAfterClose(t *testing.T) {
	s, _ := newTestStore(t, 3)
	s.Close()
	events, cancel := s.Watch("/x/")
	cancel()
	select {
	case ev, ok := <-events:
		if ok {
			t.Fatalf("event from closed store: %+v", ev)
		}
	default:
	}
	if err := s.Delete("/x/k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete on closed store = %v, want ErrClosed", err)
	}
}
