package etcd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestBatchCoalescesConcurrentWrites is the group-commit payoff: 64
// concurrent writers must land in far fewer Raft proposals than writes,
// with every write individually acknowledged and readable.
func TestBatchCoalescesConcurrentWrites(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if s.WriteMode() != WriteModeBatch {
		t.Fatalf("default write mode = %q, want %q", s.WriteMode(), WriteModeBatch)
	}
	// A warm-up write elects a leader outside the measured window.
	if _, err := s.Put("/warm", "up"); err != nil {
		t.Fatal(err)
	}

	const writers = 64
	before := s.Proposals()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Put(fmt.Sprintf("/coal/k%d", i), fmt.Sprintf("v%d", i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	if delta := s.Proposals() - before; delta >= writers {
		t.Fatalf("64 concurrent writes took %d proposals, want coalescing (< %d)", delta, writers)
	}
	batches, cmds := s.BatchStats()
	if batches == 0 || cmds < writers {
		t.Fatalf("batch stats: %d batches, %d cmds, want >= 1 batch carrying all %d writes", batches, cmds, writers)
	}
	if occupancy := float64(cmds) / float64(batches); occupancy <= 1 {
		t.Fatalf("batch occupancy = %.2f, want > 1", occupancy)
	}

	for i := 0; i < writers; i++ {
		v, found, err := s.Get(fmt.Sprintf("/coal/k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d read (%q,%v) after acknowledged write", i, v, found)
		}
	}
}

// TestBatchSingleEquivalence runs one mixed workload (puts, overwrites,
// deletes, CAS successes and failures, a txn on both branches) through a
// batched store and an unbatched one and requires the identical final
// key/value state. Revisions may differ (a batch is one revision); the
// state machine semantics must not.
func TestBatchSingleEquivalence(t *testing.T) {
	run := func(mode string) map[string]string {
		clk := clock.NewSim()
		defer clk.Close()
		s, err := NewWithOptions(3, clk, StoreOptions{WriteMode: mode})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		for i := 0; i < 8; i++ {
			if _, err := s.Put(fmt.Sprintf("/eq/k%d", i), fmt.Sprintf("v%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Put("/eq/k3", "overwritten"); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("/eq/k5"); err != nil {
			t.Fatal(err)
		}
		// CAS create-if-absent, then a conflicting create that must fail.
		if err := s.CompareAndSwap("/eq/lock", "", false, "owner1"); err != nil {
			t.Fatal(err)
		}
		if err := s.CompareAndSwap("/eq/lock", "", false, "owner2"); !errors.Is(err, ErrCASFailed) {
			t.Fatalf("mode %s: conflicting CAS err = %v, want ErrCASFailed", mode, err)
		}
		if err := s.CompareAndSwap("/eq/k0", "v0", true, "swapped"); err != nil {
			t.Fatal(err)
		}
		// Txn: then-branch fires, then a second txn falls to orElse.
		if ok, _, err := s.Txn(
			[]Cmp{{Key: "/eq/lock", Prev: "owner1", PrevExists: true}},
			[]TxnOp{{Type: EventPut, Key: "/eq/txn", Value: "then"}},
			[]TxnOp{{Type: EventPut, Key: "/eq/txn", Value: "else"}},
		); err != nil || !ok {
			t.Fatalf("mode %s: txn (ok=%v, err=%v), want then-branch", mode, ok, err)
		}
		if ok, _, err := s.Txn(
			[]Cmp{{Key: "/eq/lock", Prev: "owner2", PrevExists: true}},
			[]TxnOp{{Type: EventDelete, Key: "/eq/txn"}},
			[]TxnOp{{Type: EventPut, Key: "/eq/else", Value: "taken"}},
		); err != nil || ok {
			t.Fatalf("mode %s: txn (ok=%v, err=%v), want orElse-branch", mode, ok, err)
		}

		kvs, err := s.Range("/eq/")
		if err != nil {
			t.Fatal(err)
		}
		state := make(map[string]string, len(kvs))
		for _, kv := range kvs {
			state[kv.Key] = kv.Value
		}
		return state
	}

	batched := run(WriteModeBatch)
	single := run(WriteModeSingle)
	if len(batched) != len(single) {
		t.Fatalf("state size differs: batch=%d single=%d", len(batched), len(single))
	}
	for k, v := range single {
		if batched[k] != v {
			t.Fatalf("key %q: batch=%q single=%q", k, batched[k], v)
		}
	}
}

// TestBatchIntraRoundReadYourWrites: a CAS whose guard depends on a put
// coalesced into the same batch must observe the staged effect (the
// overlay), not the pre-batch engine state.
func TestBatchIntraRoundReadYourWrites(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if _, err := s.Put("/ryw/seed", "x"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var putErr, casErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, putErr = s.Put("/ryw/key", "base")
	}()
	go func() {
		defer wg.Done()
		// Retry until the put's effect is visible: if both land in one
		// batch the overlay serves it; if not, the engine does.
		deadline := time.Now().Add(5 * time.Second) //lint:allow wallclock real-time watchdog bounding a spin-retry, virtual clock advances elsewhere
		for {
			casErr = s.CompareAndSwap("/ryw/key", "base", true, "swapped")
			//lint:allow wallclock real-time watchdog bounding a spin-retry, virtual clock advances elsewhere
			if casErr == nil || !errors.Is(casErr, ErrCASFailed) || time.Now().After(deadline) {
				return
			}
		}
	}()
	wg.Wait()
	if putErr != nil || casErr != nil {
		t.Fatalf("put err=%v cas err=%v", putErr, casErr)
	}
	if v, _, _ := s.Get("/ryw/key"); v != "swapped" {
		t.Fatalf("final value %q, want swapped", v)
	}
}

// TestBatchedWritesSurviveLeaderCrash: writes in flight across a leader
// crash must either commit (and then be readable) or fail — never be
// acknowledged and lost. The batcher's wrapper re-propose path is what is
// being exercised.
func TestBatchedWritesSurviveLeaderCrash(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if _, err := s.Put("/crash/seed", "x"); err != nil {
		t.Fatal(err)
	}

	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Put(fmt.Sprintf("/crash/k%d", i), fmt.Sprintf("v%d", i))
		}(i)
	}
	if lead := s.LeaderID(); lead >= 0 {
		s.CrashNode(lead)
		defer s.RestartNode(lead)
	}
	wg.Wait()

	for i := 0; i < writers; i++ {
		if errs[i] != nil {
			continue // unacknowledged: allowed to be absent
		}
		v, found, err := s.Get(fmt.Sprintf("/crash/k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("acknowledged write %d lost across leader crash: (%q,%v)", i, v, found)
		}
	}
}

// TestBatchingPreservesZeroProposalReads guards the PR 5 invariant: with
// read-index reads and batched writes, reads still cost zero proposals.
func TestBatchingPreservesZeroProposalReads(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if err := s.SetReadMode(ReadModeReadIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("/zero/k", "v"); err != nil {
		t.Fatal(err)
	}
	before := s.Proposals()
	for i := 0; i < 50; i++ {
		if _, _, err := s.Get("/zero/k"); err != nil {
			t.Fatal(err)
		}
	}
	if delta := s.Proposals() - before; delta != 0 {
		t.Fatalf("50 read-index reads cost %d proposals, want 0", delta)
	}
}

// TestWriteModeValidation covers the A/B escape hatches' input checking.
func TestWriteModeValidation(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	if _, err := NewWithOptions(3, clk, StoreOptions{WriteMode: "bogus"}); err == nil {
		t.Fatal("unknown write mode accepted")
	}
	if _, err := NewWithOptions(3, clk, StoreOptions{Replication: "bogus"}); err == nil {
		t.Fatal("unknown replication mode accepted")
	}
	s, err := NewWithOptions(3, clk, StoreOptions{WriteMode: WriteModeSingle, Replication: ReplicationStopWait})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.WriteMode() != WriteModeSingle || s.Replication() != ReplicationStopWait {
		t.Fatalf("modes = (%q,%q)", s.WriteMode(), s.Replication())
	}
	if err := s.SetWriteMode("bogus"); err == nil {
		t.Fatal("SetWriteMode accepted unknown mode")
	}
	if err := s.SetWriteMode(WriteModeBatch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("/mode/k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := s.Get("/mode/k"); !found || v != "v" {
		t.Fatal("write under switched mode not readable")
	}
}
