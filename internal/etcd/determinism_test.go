package etcd

// Determinism regression tests: the replicated state machine's
// snapshot install path and the lease-expiry delete path must not leak
// Go map iteration order into anything replica-visible. These pin the
// fixed behavior so a reintroduced map range fails loudly instead of
// diverging one replay in a thousand.

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

// TestSnapshotRestoreDeterministic: restoring one serialized image
// must install identical state on every replica — same export, and a
// re-serialized image byte-identical to the original. Before the
// sorted-key install, two restores of one snapshot could populate
// their engines in different map orders.
func TestSnapshotRestoreDeterministic(t *testing.T) {
	src := newStateMachine(4)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("/jobs/j%02d/status", (7*i)%32)
		src.apply(uint64(i+1), command{
			ReqID: fmt.Sprintf("req-%d", i),
			Op:    opPut,
			Key:   key,
			Value: fmt.Sprintf("state-%d", i),
		})
	}
	img := src.serialize()
	if img == nil {
		t.Fatal("serialize returned nil")
	}

	a := newStateMachine(4)
	b := newStateMachine(4)
	a.restore(img, 32)
	b.restore(img, 32)

	if got, want := a.engine().Export(), b.engine().Export(); !reflect.DeepEqual(got, want) {
		t.Fatalf("two restores of one image exported different state:\n a=%v\n b=%v", got, want)
	}
	// Round-trip: restore then re-serialize must reproduce the image
	// byte for byte (JSON object keys are emitted sorted, so any
	// divergence here is real state divergence, not encoding noise).
	if !bytes.Equal(a.serialize(), img) {
		t.Fatal("serialize(restore(img)) != img")
	}
	if !bytes.Equal(a.serialize(), b.serialize()) {
		t.Fatal("two restores of one image re-serialize differently")
	}
}

// TestLeaseRevokeEventOrder: expiring a lease deletes its attached
// keys through the replicated log; watchers must observe those deletes
// in sorted key order, not map order, so replayed schedules see one
// event sequence.
func TestLeaseRevokeEventOrder(t *testing.T) {
	s, _ := newTestStore(t, 3)
	lease, err := s.GrantLease(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"/p/h", "/p/c", "/p/f", "/p/a", "/p/e", "/p/b", "/p/g", "/p/d"}
	for _, k := range keys {
		if err := lease.Put(k, "alive"); err != nil {
			t.Fatal(err)
		}
	}
	events, cancel := s.Watch("/p/")
	defer cancel()

	lease.Revoke()

	got := make([]string, 0, len(keys))
	var lastRev uint64
	for range keys {
		select {
		case ev := <-events:
			if ev.Type != EventDelete {
				t.Fatalf("event = %v, want DELETE", ev)
			}
			if ev.Rev <= lastRev {
				t.Fatalf("revision went backwards: %d after %d", ev.Rev, lastRev)
			}
			lastRev = ev.Rev
			got = append(got, ev.Key)
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out after %d/%d delete events", len(got), len(keys))
		}
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delete order = %v, want sorted %v", got, want)
	}
}
