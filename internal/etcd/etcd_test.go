package etcd

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

func newTestStore(t *testing.T, n int) (*Store, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	s := New(n, clk)
	t.Cleanup(func() {
		s.Close()
		clk.Close()
	})
	return s, clk
}

func TestPutGet(t *testing.T) {
	s, _ := newTestStore(t, 3)
	rev, err := s.Put("/jobs/j1/status", "DEPLOYING")
	if err != nil {
		t.Fatal(err)
	}
	if rev == 0 {
		t.Fatal("rev = 0, want > 0")
	}
	v, found, err := s.Get("/jobs/j1/status")
	if err != nil {
		t.Fatal(err)
	}
	if !found || v != "DEPLOYING" {
		t.Fatalf("got (%q,%v), want (DEPLOYING,true)", v, found)
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := newTestStore(t, 3)
	_, found, err := s.Get("/nope")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("found missing key")
	}
}

func TestDelete(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if _, err := s.Put("/k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/k"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := s.Get("/k"); found {
		t.Fatal("key survived delete")
	}
	// Deleting a missing key is not an error.
	if err := s.Delete("/k"); err != nil {
		t.Fatal(err)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s, _ := newTestStore(t, 3)
	// Create-if-absent.
	if err := s.CompareAndSwap("/lock", "", false, "owner1"); err != nil {
		t.Fatal(err)
	}
	// Second create must fail.
	err := s.CompareAndSwap("/lock", "", false, "owner2")
	if !errors.Is(err, ErrCASFailed) {
		t.Fatalf("err = %v, want ErrCASFailed", err)
	}
	// Swap with correct previous value.
	if err := s.CompareAndSwap("/lock", "owner1", true, "owner3"); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Get("/lock")
	if v != "owner3" {
		t.Fatalf("value = %q, want owner3", v)
	}
	// Swap with stale previous value fails.
	err = s.CompareAndSwap("/lock", "owner1", true, "owner4")
	if !errors.Is(err, ErrCASFailed) {
		t.Fatalf("err = %v, want ErrCASFailed", err)
	}
}

func TestRangePrefix(t *testing.T) {
	s, _ := newTestStore(t, 3)
	keys := []string{"/jobs/j1/learner/0", "/jobs/j1/learner/1", "/jobs/j2/learner/0"}
	for i, k := range keys {
		if _, err := s.Put(k, fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := s.Range("/jobs/j1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("range size = %d, want 2", len(kvs))
	}
	if kvs[0].Key != "/jobs/j1/learner/0" || kvs[1].Key != "/jobs/j1/learner/1" {
		t.Fatalf("range keys = %v", kvs)
	}
}

func TestWatchDeliversEvents(t *testing.T) {
	s, _ := newTestStore(t, 3)
	events, cancel := s.Watch("/jobs/")
	defer cancel()

	if _, err := s.Put("/jobs/j1/status", "PROCESSING"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("/other/key", "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/jobs/j1/status"); err != nil {
		t.Fatal(err)
	}

	ev1 := recvEvent(t, events)
	if ev1.Type != EventPut || ev1.Key != "/jobs/j1/status" || ev1.Value != "PROCESSING" {
		t.Fatalf("event 1 = %+v", ev1)
	}
	ev2 := recvEvent(t, events)
	if ev2.Type != EventDelete || ev2.Key != "/jobs/j1/status" {
		t.Fatalf("event 2 = %+v (want delete, no /other leak)", ev2)
	}
	if ev2.Rev <= ev1.Rev {
		t.Fatalf("revisions not monotone: %d then %d", ev1.Rev, ev2.Rev)
	}
}

func recvEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no event delivered")
		return Event{}
	}
}

func TestMinorityCrashKeepsServing(t *testing.T) {
	s, _ := newTestStore(t, 3)
	if _, err := s.Put("/k", "v1"); err != nil {
		t.Fatal(err)
	}
	// Crash one node (minority): the store must keep serving.
	s.CrashNode(0)
	if _, err := s.Put("/k", "v2"); err != nil {
		t.Fatalf("put with minority crashed: %v", err)
	}
	v, found, err := s.Get("/k")
	if err != nil || !found || v != "v2" {
		t.Fatalf("get = (%q,%v,%v), want (v2,true,nil)", v, found, err)
	}
}

func TestLeaderCrashRecovery(t *testing.T) {
	s, clk := newTestStore(t, 3)
	if _, err := s.Put("/k", "v1"); err != nil {
		t.Fatal(err)
	}
	lead := s.LeaderID()
	if lead < 0 {
		t.Fatal("no leader")
	}
	s.CrashNode(lead)
	// Allow failover, then the store must serve again.
	deadline := clk.Now().Add(10 * time.Second)
	var lastErr error
	for clk.Now().Before(deadline) {
		if _, lastErr = s.Put("/k", "v2"); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("store did not recover from leader crash: %v", lastErr)
	}
	v, _, _ := s.Get("/k")
	if v != "v2" {
		t.Fatalf("value = %q, want v2", v)
	}
}

func TestRestartedNodeRejoins(t *testing.T) {
	s, _ := newTestStore(t, 3)
	s.CrashNode(1)
	if _, err := s.Put("/k", "while-down"); err != nil {
		t.Fatal(err)
	}
	s.RestartNode(1)
	// Crash a different node; quorum now depends on the restarted one.
	s.CrashNode(2)
	if _, err := s.Put("/k2", "after-rejoin"); err != nil {
		t.Fatalf("restarted node did not rejoin quorum: %v", err)
	}
	v, found, err := s.Get("/k")
	if err != nil || !found || v != "while-down" {
		t.Fatalf("get = (%q,%v,%v)", v, found, err)
	}
}

func TestStatusUpdateSurvivesCrashes(t *testing.T) {
	// The paper's scenario: the helper controller records learner
	// statuses in etcd; crashes of individual etcd replicas must not
	// lose or reorder status history.
	s, _ := newTestStore(t, 3)
	statuses := []string{"DEPLOYING", "PROCESSING", "STORING", "COMPLETED"}
	for i, st := range statuses {
		key := fmt.Sprintf("/jobs/j1/learner/0/status/%d", i)
		if _, err := s.Put(key, st); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			s.CrashNode(2)
		}
		if i == 2 {
			s.RestartNode(2)
		}
	}
	kvs, err := s.Range("/jobs/j1/learner/0/status/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(statuses) {
		t.Fatalf("history size = %d, want %d", len(kvs), len(statuses))
	}
	for i, kv := range kvs {
		if kv.Value != statuses[i] {
			t.Fatalf("status %d = %q, want %q", i, kv.Value, statuses[i])
		}
	}
}

func TestClosedStoreErrors(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	s := New(3, clk)
	s.Close()
	if _, err := s.Put("/k", "v"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// Property: a sequence of puts to distinct keys is fully readable and
// Range over the common prefix returns exactly the keys written.
func TestQuickPutsAreReadable(t *testing.T) {
	s, _ := newTestStore(t, 3)
	seq := 0
	f := func(vals []string) bool {
		if len(vals) > 8 {
			vals = vals[:8]
		}
		prefix := fmt.Sprintf("/q/%d/", seq)
		seq++
		for i, v := range vals {
			if _, err := s.Put(fmt.Sprintf("%sk%d", prefix, i), v); err != nil {
				return false
			}
		}
		kvs, err := s.Range(prefix)
		if err != nil || len(kvs) != len(vals) {
			return false
		}
		for i, kv := range kvs {
			if kv.Value != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
