package etcd

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// The tests in this file pin the facade half of the quorum-amortized
// read path: the leaseread default must stay exactly as linearizable
// as readindex under skew and churn, reads must spread across replicas
// by load, the leader cache must never outlive a leadership change,
// and Backpressure must rise when the write window saturates.

// putRetry keeps writing until the store acknowledges — failovers in
// the middle of a schedule make individual Puts fail legitimately.
func putRetry(s *Store, clk *clock.Sim, key, val string, timeout time.Duration) bool {
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if _, err := s.Put(key, val); err == nil {
			return true
		}
	}
	return false
}

// TestLeaseReadSkewedLeaderNeverStale: step the leader's clock far past
// the raft drift bound, partition it, commit a new value on the
// majority side — a leaseread Get must return the new value, never the
// skewed ex-leader's stale snapshot. This is the etcd-level shape of
// the raft zombie-lease test: the fault injection travels through
// SkewNodeClock (the chaos layer's SkewEtcdClock primitive).
func TestLeaseReadSkewedLeaderNeverStale(t *testing.T) {
	s, clk := newModeStore(t, 3, ReadModeLease)
	if _, err := s.Put("/lz/k", "old"); err != nil {
		t.Fatal(err)
	}
	lead := s.LeaderID()
	if lead < 0 {
		t.Fatal("no leader")
	}
	// Skew while connected: follower clock echoes must kill the lease
	// within a heartbeat or two.
	s.SkewNodeClock(lead, -10*time.Second)
	clk.Sleep(200 * time.Millisecond)
	s.PartitionNode(lead)

	if !putRetry(s, clk, "/lz/k", "new", 30*time.Second) {
		t.Fatal("majority never acknowledged the new value")
	}
	v, found, err := s.Get("/lz/k")
	if err != nil || !found {
		t.Fatalf("get after failover = (%v,%v)", found, err)
	}
	if v != "new" {
		t.Fatalf("stale read: got %q after %q was acknowledged", v, "new")
	}
	s.HealNode(lead)
	s.SkewNodeClock(lead, 0)
}

// TestQuickLeaseReadEquivalence: leaseread and readindex must return
// identical answers for identical fenced schedules of writes,
// linearizable reads, replica crash/restarts, and partition/heals.
// Fencing (each write fully acknowledged before its read) means the
// linearizable answer is uniquely determined — the last acked value —
// so any divergence is a mode bug, not schedule noise.
func TestQuickLeaseReadEquivalence(t *testing.T) {
	skipIfRaceShort(t)
	run := func(schedule []uint8, mode string) ([]string, bool) {
		clk := clock.NewSim()
		defer clk.Close()
		s, err := NewWithOptions(3, clk, StoreOptions{})
		if err != nil {
			return nil, false
		}
		defer s.Close()
		if err := s.SetReadMode(mode); err != nil {
			return nil, false
		}
		var answers []string
		val := 0
		for _, op := range schedule {
			switch op % 4 {
			case 0, 1: // fenced write, then a linearizable read
				val++
				want := fmt.Sprintf("v%d", val)
				if !putRetry(s, clk, "/q/k", want, 30*time.Second) {
					return nil, false
				}
				v, found, err := s.Get("/q/k")
				if err != nil || !found {
					return nil, false
				}
				if v != want {
					// A linearizability violation in this mode; surface
					// it as an answer mismatch rather than a run failure.
					answers = append(answers, "STALE:"+v)
					continue
				}
				answers = append(answers, v)
			case 2: // crash + restart a non-leader replica
				lead := s.LeaderID()
				for _, id := range s.Nodes() {
					if id != lead {
						s.CrashNode(id)
						s.RestartNode(id)
						break
					}
				}
			case 3: // partition, then heal, a non-leader replica
				lead := s.LeaderID()
				for _, id := range s.Nodes() {
					if id != lead {
						s.PartitionNode(id)
						clk.Sleep(60 * time.Millisecond)
						s.HealNode(id)
						clk.Sleep(60 * time.Millisecond)
						break
					}
				}
			}
		}
		return answers, true
	}
	f := func(schedule []uint8) bool {
		if len(schedule) > 8 {
			schedule = schedule[:8]
		}
		base, ok := run(schedule, ReadModeReadIndex)
		if !ok {
			return false
		}
		lease, ok := run(schedule, ReadModeLease)
		if !ok {
			return false
		}
		if len(base) != len(lease) {
			return false
		}
		for i := range base {
			if base[i] != lease[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerReadRoutingSpreads: read waits are dispatched by load,
// not pinned to the contacted node — with one slow follower, a burst
// of reads still lands on more than one replica and every read
// completes. The instrumented per-replica counter must see the same
// distribution.
func TestFollowerReadRoutingSpreads(t *testing.T) {
	s, clk := newModeStore(t, 3, ReadModeLease)
	reg := metrics.NewRegistry()
	s.Instrument(reg)
	if _, err := s.Put("/r/k", "v"); err != nil {
		t.Fatal(err)
	}
	lead := s.LeaderID()
	for _, id := range s.Nodes() {
		if id != lead {
			s.SetNodeDelay(id, 5*time.Millisecond)
			break
		}
	}
	const reads = 30
	for i := 0; i < reads; i++ {
		if _, _, err := s.Get("/r/k"); err != nil {
			t.Fatalf("routed read %d: %v", i, err)
		}
		// Let the followers' appliers catch up between reads: replicas
		// already at the read index are preferred, and rotation only
		// spreads ties within that ready class.
		clk.Sleep(5 * time.Millisecond)
	}
	routed := s.ReadsRouted()
	var total uint64
	served := 0
	for id, n := range routed {
		total += n
		if n > 0 {
			served++
		}
		if got := reg.Counter("etcd_reads_routed", fmt.Sprintf("node%d", id)); uint64(got) != n {
			t.Fatalf("node%d metric %v != counter %d", id, got, n)
		}
	}
	if total < reads {
		t.Fatalf("routed %d waits for %d reads", total, reads)
	}
	if served < 2 {
		t.Fatalf("all reads pinned to one replica: %v", routed)
	}
}

// TestLeaderCacheReuseAndInvalidation: the hot paths resolve the leader
// through the cache (same pointer, no re-scan), and the cache drops on
// crash so no op can be routed to a dead node's stale handle.
func TestLeaderCacheReuseAndInvalidation(t *testing.T) {
	s, clk := newModeStore(t, 3, ReadModeLease)
	if _, err := s.Put("/c/k", "v"); err != nil {
		t.Fatal(err)
	}
	l1 := s.leader()
	if l1 == nil {
		t.Fatal("no leader resolved")
	}
	if s.leaderCache.Load() != l1 {
		t.Fatal("leader() did not prime the cache")
	}
	if l2 := s.leader(); l2 != l1 {
		t.Fatal("cached leader not reused")
	}

	s.CrashNode(l1.ID())
	if s.leaderCache.Load() != nil {
		t.Fatal("CrashNode left the crashed leader cached")
	}
	deadline := clk.Now().Add(15 * time.Second)
	for clk.Now().Before(deadline) {
		if l := s.leader(); l != nil && l.ID() != l1.ID() {
			if s.leaderCache.Load() != l {
				t.Fatal("re-resolve did not re-prime the cache")
			}
			s.RestartNode(l1.ID())
			return
		}
		clk.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no successor leader after crash")
}

// TestBackpressureSaturates: with followers cut off, the stop-and-wait
// window (cap 1) jams and queued group-commit writes pile up —
// Backpressure must report saturation, then fall back near zero once
// the cluster heals and drains.
func TestBackpressureSaturates(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	s, err := NewWithOptions(3, clk, StoreOptions{Replication: ReplicationStopWait})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := metrics.NewRegistry()
	s.Instrument(reg)

	if !putRetry(s, clk, "/bp/warm", "v", 10*time.Second) {
		t.Fatal("warmup write failed")
	}
	if bp := s.Backpressure(); bp > 0.2 {
		t.Fatalf("idle backpressure = %v, want ~0", bp)
	}

	lead := s.LeaderID()
	for _, id := range s.Nodes() {
		if id != lead {
			s.PartitionNode(id)
		}
	}
	const writers = 80
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = s.Put(fmt.Sprintf("/bp/k%d", i), "v")
		}(i)
	}
	// Poll rather than sample once: the writer goroutines may not have
	// enqueued yet when a fixed sleep elapses (the virtual clock cannot
	// see goroutines that have not reached a clock primitive).
	satBy := clk.Now().Add(30 * time.Second)
	for s.Backpressure() < 0.9 && clk.Now().Before(satBy) {
		clk.Sleep(50 * time.Millisecond)
	}
	if bp := s.Backpressure(); bp < 0.9 {
		t.Fatalf("saturated backpressure = %v, want >= 0.9", bp)
	}
	if g := reg.Gauge("etcd_backpressure"); g < 0.9 {
		t.Fatalf("etcd_backpressure gauge = %v, want >= 0.9", g)
	}

	for _, id := range s.Nodes() {
		s.HealNode(id)
	}
	wg.Wait()
	// Drained: the window empties and the queue is gone.
	deadline := clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		if s.Backpressure() < 0.2 {
			return
		}
		clk.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("backpressure stuck at %v after heal", s.Backpressure())
}

// skipIfRaceShort skips the heavyweight quickcheck run in -short mode.
func skipIfRaceShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("quickcheck equivalence run skipped in -short mode")
	}
}
