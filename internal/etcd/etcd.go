// Package etcd provides a replicated, linearizable key-value store built
// on the Raft implementation in internal/raft. It stands in for the 3-way
// replicated etcd cluster that DLaaS uses to coordinate the Helper
// controller and the Guardian ("we employ the ETCD key-value store to
// co-ordinate between the controller and LCM/Guardian... ETCD itself is
// replicated (3-way), and uses the Raft consensus protocol").
//
// Every operation — including reads — is sequenced through the Raft log,
// so results are linearizable by construction. Watches observe the apply
// stream and survive the crash of any minority of nodes.
package etcd

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/raft"
)

// Common errors.
var (
	// ErrTimeout indicates the operation did not commit before the
	// deadline (no leader, or this client is partitioned).
	ErrTimeout = errors.New("etcd: request timed out")
	// ErrCASFailed indicates the compare-and-swap precondition failed.
	ErrCASFailed = errors.New("etcd: compare failed")
	// ErrClosed indicates the store has been shut down.
	ErrClosed = errors.New("etcd: store closed")
)

// EventType distinguishes watch events.
type EventType int

// Watch event kinds.
const (
	EventPut EventType = iota + 1
	EventDelete
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case EventPut:
		return "PUT"
	case EventDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Event is a single change notification.
type Event struct {
	Type  EventType
	Key   string
	Value string
	// Rev is the Raft log index that produced the event.
	Rev uint64
}

// KV is a key with its value and last-modification revision.
type KV struct {
	Key   string
	Value string
	Rev   uint64
}

// opKind enumerates commands in the replicated log.
type opKind string

const (
	opPut    opKind = "put"
	opDelete opKind = "delete"
	opCAS    opKind = "cas"
	opGet    opKind = "get"
	opRange  opKind = "range"
)

// command is the JSON-encoded payload of a Raft entry.
type command struct {
	ReqID string `json:"req_id"`
	Op    opKind `json:"op"`
	Key   string `json:"key,omitempty"`
	Value string `json:"value,omitempty"`
	// Prev is the expected current value for CAS ("" means
	// must-not-exist when PrevExists is false).
	Prev       string `json:"prev,omitempty"`
	PrevExists bool   `json:"prev_exists,omitempty"`
}

// result is what applying a command yields (deterministic on every node).
type result struct {
	val    string
	found  bool
	ok     bool // CAS success
	kvs    []KV
	rev    uint64
	events []Event
}

// defaultRequestTimeout bounds how long a client op waits for commit.
const defaultRequestTimeout = 5 * time.Second

// defaultCompactEvery is how many applied entries a node accumulates
// before snapshotting its state machine and compacting the Raft log.
const defaultCompactEvery = 1000

// Store is a handle to the replicated KV cluster.
type Store struct {
	clk          clock.Clock
	cluster      *raft.Cluster
	timeout      time.Duration
	compactEvery int

	mu       sync.Mutex
	sms      map[int]*stateMachine
	stops    map[int]chan struct{}
	waiters  map[string]chan result
	watchers []*watcher
	lastRev  uint64 // highest apply index delivered to watchers
	reqSeq   uint64
	closed   bool
}

// watcher receives events for keys under its prefix.
type watcher struct {
	prefix string
	ch     chan Event
	done   chan struct{}
}

// New boots an n-way replicated store on clk. The paper's deployment uses
// n = 3.
func New(n int, clk clock.Clock) *Store {
	s := &Store{
		clk:          clk,
		cluster:      raft.NewCluster(n, raft.DefaultConfig(clk)),
		timeout:      defaultRequestTimeout,
		compactEvery: defaultCompactEvery,
		sms:          make(map[int]*stateMachine, n),
		stops:        make(map[int]chan struct{}, n),
		waiters:      make(map[string]chan result),
	}
	for _, id := range s.cluster.IDs() {
		s.startApplier(id)
	}
	return s
}

// SetCompactEvery overrides the per-node log-compaction threshold
// (entries applied between snapshots). Intended for tests and benches.
func (s *Store) SetCompactEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > 0 {
		s.compactEvery = n
	}
}

// Close shuts down the cluster and all watchers.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	stops := s.stops
	s.stops = map[int]chan struct{}{}
	watchers := s.watchers
	s.watchers = nil
	s.mu.Unlock()

	for _, st := range stops {
		close(st)
	}
	s.cluster.Stop()
	for _, w := range watchers {
		close(w.done)
	}
}

// startApplier builds a state machine for node id — restored from the
// node's persisted snapshot if it has one — and pumps its apply channel,
// compacting the Raft log periodically.
func (s *Store) startApplier(id int) {
	node := s.cluster.Node(id)
	if node == nil {
		return
	}
	sm := newStateMachine()
	if snap, idx := node.Snapshot(); idx > 0 {
		sm.restore(snap)
		s.mu.Lock()
		if idx > s.lastRev {
			s.lastRev = idx
		}
		s.mu.Unlock()
	}
	stop := make(chan struct{})
	s.mu.Lock()
	s.sms[id] = sm
	s.stops[id] = stop
	s.mu.Unlock()
	go func() {
		applied := 0
		for {
			select {
			case <-stop:
				return
			case a := <-node.ApplyCh():
				if a.IsSnapshot {
					// The leader fast-forwarded this lagging node.
					sm.restore(a.Snapshot)
					s.mu.Lock()
					if a.SnapIndex > s.lastRev {
						s.lastRev = a.SnapIndex
					}
					s.mu.Unlock()
					applied = 0
					continue
				}
				s.applyEntry(id, sm, a.Entry)
				applied++
				s.mu.Lock()
				threshold := s.compactEvery
				s.mu.Unlock()
				if applied >= threshold {
					_ = node.Compact(a.Entry.Index, sm.serialize())
					applied = 0
				}
			}
		}
	}()
}

// applyEntry applies one committed entry to node id's state machine and
// completes waiters / watchers exactly once per log index.
func (s *Store) applyEntry(id int, sm *stateMachine, e raft.Entry) {
	var cmd command
	if err := json.Unmarshal(e.Cmd, &cmd); err != nil {
		return // corrupt entry; deterministic no-op on every node
	}
	res := sm.apply(e.Index, cmd)

	s.mu.Lock()
	// Complete the client waiter (first applier wins; all produce the
	// same deterministic result).
	if ch, ok := s.waiters[cmd.ReqID]; ok {
		delete(s.waiters, cmd.ReqID)
		select {
		case ch <- res:
		default:
		}
	}
	// Deliver watch events exactly once per revision.
	var fire []Event
	var targets []*watcher
	if e.Index > s.lastRev {
		s.lastRev = e.Index
		fire = res.events
		targets = append(targets, s.watchers...)
	}
	s.mu.Unlock()

	for _, ev := range fire {
		for _, w := range targets {
			if !strings.HasPrefix(ev.Key, w.prefix) {
				continue
			}
			select {
			case w.ch <- ev:
			case <-w.done:
			}
		}
	}
}

// Put stores value under key.
func (s *Store) Put(key, value string) (rev uint64, err error) {
	res, err := s.propose(command{Op: opPut, Key: key, Value: value})
	if err != nil {
		return 0, fmt.Errorf("put %q: %w", key, err)
	}
	return res.rev, nil
}

// Get returns the value stored under key. found reports existence.
// The read is linearizable: it is sequenced through the Raft log.
func (s *Store) Get(key string) (value string, found bool, err error) {
	res, err := s.propose(command{Op: opGet, Key: key})
	if err != nil {
		return "", false, fmt.Errorf("get %q: %w", key, err)
	}
	return res.val, res.found, nil
}

// Delete removes key. It is not an error to delete a missing key.
func (s *Store) Delete(key string) error {
	if _, err := s.propose(command{Op: opDelete, Key: key}); err != nil {
		return fmt.Errorf("delete %q: %w", key, err)
	}
	return nil
}

// CompareAndSwap atomically replaces key's value with newValue iff the
// current value equals prev (prevExists=false means "key must not
// exist"). Returns ErrCASFailed when the precondition does not hold.
func (s *Store) CompareAndSwap(key, prev string, prevExists bool, newValue string) error {
	res, err := s.propose(command{
		Op: opCAS, Key: key, Value: newValue, Prev: prev, PrevExists: prevExists,
	})
	if err != nil {
		return fmt.Errorf("cas %q: %w", key, err)
	}
	if !res.ok {
		return ErrCASFailed
	}
	return nil
}

// Range returns all keys under prefix, sorted by key.
func (s *Store) Range(prefix string) ([]KV, error) {
	res, err := s.propose(command{Op: opRange, Key: prefix})
	if err != nil {
		return nil, fmt.Errorf("range %q: %w", prefix, err)
	}
	return res.kvs, nil
}

// Watch subscribes to changes of keys under prefix. Cancel releases the
// subscription. Events begin with the first revision applied after the
// call.
func (s *Store) Watch(prefix string) (events <-chan Event, cancel func()) {
	w := &watcher{prefix: prefix, ch: make(chan Event, 128), done: make(chan struct{})}
	s.mu.Lock()
	s.watchers = append(s.watchers, w)
	s.mu.Unlock()

	var once sync.Once
	cancel = func() {
		once.Do(func() {
			s.mu.Lock()
			for i, x := range s.watchers {
				if x == w {
					s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			close(w.done)
		})
	}
	return w.ch, cancel
}

// propose routes cmd through the Raft log and waits for its application.
func (s *Store) propose(cmd command) (result, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return result{}, ErrClosed
	}
	s.reqSeq++
	cmd.ReqID = fmt.Sprintf("r%d", s.reqSeq)
	ch := make(chan result, 1)
	s.waiters[cmd.ReqID] = ch
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.waiters, cmd.ReqID)
		s.mu.Unlock()
	}()

	payload, err := json.Marshal(cmd)
	if err != nil {
		return result{}, fmt.Errorf("encoding command: %w", err)
	}

	deadline := s.clk.Now().Add(s.timeout)
	for s.clk.Now().Before(deadline) {
		leader := s.cluster.Leader()
		if leader == nil {
			s.clk.Sleep(20 * time.Millisecond)
			continue
		}
		if _, _, err := leader.Propose(payload); err != nil {
			s.clk.Sleep(20 * time.Millisecond)
			continue
		}
		// Wait for apply, but re-propose if leadership changes and the
		// entry is lost (bounded by the overall deadline).
		waitUntil := s.clk.Now().Add(500 * time.Millisecond)
		for s.clk.Now().Before(waitUntil) {
			select {
			case res := <-ch:
				return res, nil
			default:
			}
			s.clk.Sleep(5 * time.Millisecond)
		}
		// Not applied yet: either still replicating or lost. Keep the
		// waiter and retry the propose; dedupe in the state machine
		// makes retries idempotent.
		s.mu.Lock()
		if _, live := s.waiters[cmd.ReqID]; !live {
			// Applied while we were deciding to retry.
			s.mu.Unlock()
			select {
			case res := <-ch:
				return res, nil
			default:
				return result{}, ErrTimeout
			}
		}
		s.mu.Unlock()
	}
	select {
	case res := <-ch:
		return res, nil
	default:
		return result{}, ErrTimeout
	}
}

// CrashNode stops raft node id, preserving its durable state.
func (s *Store) CrashNode(id int) {
	s.mu.Lock()
	if st, ok := s.stops[id]; ok {
		close(st)
		delete(s.stops, id)
	}
	delete(s.sms, id)
	s.mu.Unlock()
	s.cluster.Crash(id)
}

// RestartNode reboots a crashed node; its state machine is rebuilt from
// the replayed log.
func (s *Store) RestartNode(id int) {
	s.cluster.Restart(id)
	s.startApplier(id)
}

// Nodes returns the cluster membership.
func (s *Store) Nodes() []int { return s.cluster.IDs() }

// LeaderID returns the current leader's ID, or -1.
func (s *Store) LeaderID() int {
	l := s.cluster.Leader()
	if l == nil {
		return -1
	}
	return l.ID()
}

// stateMachine is the deterministic KV automaton each node runs.
type stateMachine struct {
	mu    sync.Mutex
	data  map[string]KV
	dedup map[string]uint64 // reqID -> applied index
}

func newStateMachine() *stateMachine {
	return &stateMachine{
		data:  make(map[string]KV),
		dedup: make(map[string]uint64),
	}
}

// smSnapshot is the serialized state-machine image stored in Raft
// snapshots.
type smSnapshot struct {
	Data  map[string]KV     `json:"data"`
	Dedup map[string]uint64 `json:"dedup"`
}

// serialize captures the full state machine for log compaction.
func (m *stateMachine) serialize() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := smSnapshot{Data: m.data, Dedup: m.dedup}
	raw, err := json.Marshal(img)
	if err != nil {
		return nil
	}
	return raw
}

// restore replaces the state machine with a serialized image.
func (m *stateMachine) restore(raw []byte) {
	var img smSnapshot
	if err := json.Unmarshal(raw, &img); err != nil {
		return // corrupt snapshot: keep current state
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = img.Data
	if m.data == nil {
		m.data = make(map[string]KV)
	}
	m.dedup = img.Dedup
	if m.dedup == nil {
		m.dedup = make(map[string]uint64)
	}
}

func (m *stateMachine) apply(idx uint64, cmd command) result {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Exactly-once: a retried proposal may appear twice in the log; only
	// the first occurrence mutates state. (Reads are harmless to repeat.)
	if first, seen := m.dedup[cmd.ReqID]; seen && first != idx {
		switch cmd.Op {
		case opPut, opDelete, opCAS:
			return result{rev: first, ok: true}
		}
	}
	m.dedup[cmd.ReqID] = idx

	res := result{rev: idx}
	switch cmd.Op {
	case opPut:
		m.data[cmd.Key] = KV{Key: cmd.Key, Value: cmd.Value, Rev: idx}
		res.events = []Event{{Type: EventPut, Key: cmd.Key, Value: cmd.Value, Rev: idx}}
	case opDelete:
		if _, ok := m.data[cmd.Key]; ok {
			delete(m.data, cmd.Key)
			res.events = []Event{{Type: EventDelete, Key: cmd.Key, Rev: idx}}
		}
	case opCAS:
		cur, exists := m.data[cmd.Key]
		match := (exists == cmd.PrevExists) && (!exists || cur.Value == cmd.Prev)
		if match {
			m.data[cmd.Key] = KV{Key: cmd.Key, Value: cmd.Value, Rev: idx}
			res.ok = true
			res.events = []Event{{Type: EventPut, Key: cmd.Key, Value: cmd.Value, Rev: idx}}
		}
	case opGet:
		if kv, ok := m.data[cmd.Key]; ok {
			res.val, res.found = kv.Value, true
		}
	case opRange:
		for k, kv := range m.data {
			if strings.HasPrefix(k, cmd.Key) {
				res.kvs = append(res.kvs, kv)
			}
		}
		sortKVs(res.kvs)
	}
	return res
}

func sortKVs(kvs []KV) {
	for i := 1; i < len(kvs); i++ {
		for j := i; j > 0 && kvs[j].Key < kvs[j-1].Key; j-- {
			kvs[j], kvs[j-1] = kvs[j-1], kvs[j]
		}
	}
}
