// Package etcd provides a replicated, linearizable key-value store built
// on the Raft implementation in internal/raft. It stands in for the 3-way
// replicated etcd cluster that DLaaS uses to coordinate the Helper
// controller and the Guardian ("we employ the ETCD key-value store to
// co-ordinate between the controller and LCM/Guardian... ETCD itself is
// replicated (3-way), and uses the Raft consensus protocol").
//
// Writes are sequenced through the Raft log. Reads are served, in the
// default leaseread mode, from the least-loaded replica's MVCC snapshot
// at an applied floor the leader vouches for — via its check-quorum
// lease when live (zero messages per read) or a coalesced quorum
// heartbeat round otherwise (one round resolves every read in flight
// during it) — linearizable results with zero log entries per read.
// SetReadMode selects the readindex hatch (one dedicated round per
// read, the pre-lease behavior), the propose hatch (reads as full
// proposals), or serializable mode (stale-tolerant local reads that
// need no quorum). Watches observe the apply stream and survive the
// crash of any minority of nodes.
//
// Since the metadata-plane refactor this package is a facade over the
// sharded MVCC engine in internal/store: each replica's deterministic
// state machine is a store.Engine in external-revision mode (the Raft
// log index is the revision), watch delivery goes through a store.Hub
// whose revision cursor dedupes the per-replica apply streams, and the
// client-side request plumbing (request IDs, waiter completion) uses
// striped maps — there is no store-wide mutex on the request path; the
// remaining Store.mu only guards node lifecycle (crash/restart/close).
package etcd

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/raft"
	"repro/internal/store"
)

// Common errors.
var (
	// ErrTimeout indicates the operation did not commit before the
	// deadline (no leader, or this client is partitioned).
	ErrTimeout = errors.New("etcd: request timed out")
	// ErrCASFailed indicates the compare-and-swap precondition failed.
	ErrCASFailed = errors.New("etcd: compare failed")
	// ErrClosed indicates the store has been shut down.
	ErrClosed = errors.New("etcd: store closed")
	// ErrCompacted indicates a WatchFrom start revision predates the
	// replicas' retained MVCC history: the consumer cannot resume
	// exactly and must fall back to Range + Watch from the present. It
	// aliases store.ErrCompacted so errors.Is works across layers.
	ErrCompacted = store.ErrCompacted
)

// EventType distinguishes watch events.
type EventType int

// Watch event kinds.
const (
	EventPut EventType = iota + 1
	EventDelete
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case EventPut:
		return "PUT"
	case EventDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Event is a single change notification.
type Event struct {
	Type  EventType
	Key   string
	Value string
	// Rev is the Raft log index that produced the event.
	Rev uint64
}

// EventKey implements store.Keyed for hub dispatch.
func (e Event) EventKey() string { return e.Key }

// EventRev implements store.Keyed for hub dispatch.
func (e Event) EventRev() uint64 { return e.Rev }

// KV is a key with its value and last-modification revision.
type KV struct {
	Key   string
	Value string
	Rev   uint64
}

// opKind enumerates commands in the replicated log.
type opKind string

const (
	opPut    opKind = "put"
	opDelete opKind = "delete"
	opCAS    opKind = "cas"
	opGet    opKind = "get"
	opRange  opKind = "range"
	opTxn    opKind = "txn"
	// opBatch is a group-commit wrapper: one log entry carrying the
	// sub-commands of every propose() call that queued while the
	// previous batch's round was in flight. All sub-commands apply at
	// the wrapper's single log index (one revision).
	opBatch opKind = "batch"
)

// Cmp is a transaction guard, with the same semantics as
// CompareAndSwap's precondition: when PrevExists the key must exist with
// value Prev; otherwise the key must be absent.
type Cmp struct {
	Key        string `json:"key"`
	Prev       string `json:"prev,omitempty"`
	PrevExists bool   `json:"prev_exists,omitempty"`
}

// TxnOp is one mutation inside a transaction branch.
type TxnOp struct {
	// Type is EventPut or EventDelete.
	Type  EventType `json:"type"`
	Key   string    `json:"key"`
	Value string    `json:"value,omitempty"`
}

// command is the JSON-encoded payload of a Raft entry.
type command struct {
	ReqID string `json:"req_id"`
	Op    opKind `json:"op"`
	Key   string `json:"key,omitempty"`
	Value string `json:"value,omitempty"`
	// Prev is the expected current value for CAS ("" means
	// must-not-exist when PrevExists is false).
	Prev       string  `json:"prev,omitempty"`
	PrevExists bool    `json:"prev_exists,omitempty"`
	Cmps       []Cmp   `json:"cmps,omitempty"`
	Then       []TxnOp `json:"then,omitempty"`
	Else       []TxnOp `json:"else,omitempty"`
	// Subs are the sub-commands of an opBatch wrapper, applied in order.
	Subs []command `json:"subs,omitempty"`
}

// result is what applying a command yields (deterministic on every node).
type result struct {
	val    string
	found  bool
	ok     bool // CAS success / txn branch taken
	kvs    []KV
	rev    uint64
	events []Event
}

// Read modes selectable via SetReadMode (Options.ReadMode at the
// platform layer).
const (
	// ReadModeLease (the default) serves Get/Range/read-only Txn
	// linearizably at amortized quorum cost: concurrent leader
	// confirmation rounds coalesce (one heartbeat round resolves every
	// read in flight during it), and while the leader's check-quorum
	// lease is live reads cost zero messages. Skew beyond the raft
	// drift bound, step-down, or term change kill the lease and reads
	// fall back to full rounds — never to staleness.
	ReadModeLease = "leaseread"
	// ReadModeReadIndex serves reads from a local replica's MVCC
	// snapshot after a dedicated leader read-index round: linearizable,
	// zero log entries, exactly one heartbeat round per read — the PR 5
	// behavior, kept as the A/B escape hatch for lease reads.
	ReadModeReadIndex = "readindex"
	// ReadModePropose sequences every read through the Raft log as a
	// full proposal — the pre-read-index behavior, kept as the A/B
	// escape hatch.
	ReadModePropose = "propose"
	// ReadModeSerializable answers from the freshest live replica's
	// local state with no leadership round at all: bounded staleness
	// (the replica may lag acknowledged writes), never wrongness (only
	// committed entries are applied). Stays available without a quorum.
	ReadModeSerializable = "serializable"
)

// Write modes selectable via SetWriteMode (Options.WriteMode at the
// platform layer).
const (
	// WriteModeBatch (the default) coalesces concurrent writes into one
	// batched log entry per replication round — group commit. A batch
	// flushes as soon as the previous round's entry applies; under no
	// concurrency every batch holds one command, so there is no added
	// latency.
	WriteModeBatch = "batch"
	// WriteModeSingle proposes every write as its own log entry — the
	// pre-batching behavior, kept as the A/B escape hatch.
	WriteModeSingle = "single"
)

// Replication modes selectable at construction (Options.Replication at
// the platform layer); they map onto raft.Config's pipeline window.
const (
	// ReplicationPipeline (the default) keeps a bounded in-flight window
	// of AppendEntries per follower, advancing optimistically and
	// rewinding on reject.
	ReplicationPipeline = "pipeline"
	// ReplicationStopWait re-ships the full pending log suffix every
	// broadcast and advances only on acks — the pre-pipelining behavior,
	// kept as the A/B escape hatch.
	ReplicationStopWait = "stopwait"
)

// defaultRequestTimeout bounds how long a client op waits for commit.
const defaultRequestTimeout = 5 * time.Second

// proposeWait is how long one proposal waits for its apply before
// re-proposing (leadership may have changed and the entry been lost).
const proposeWait = 500 * time.Millisecond

// readIndexWait bounds one leader read-index round; the read path
// retries rounds until the request deadline.
const readIndexWait = 500 * time.Millisecond

// retryPause is the backoff between read/propose retries while the
// cluster has no reachable leader.
const retryPause = 20 * time.Millisecond

// defaultCompactEvery is how many applied entries a node accumulates
// before snapshotting its state machine and compacting the Raft log.
const defaultCompactEvery = 1000

// waiterStripes is the size of the striped waiter table; striping keeps
// request registration and completion off any store-wide lock.
const waiterStripes = 64

// waiterStripe is one lock shard of the in-flight request table.
type waiterStripe struct {
	mu sync.Mutex
	m  map[string]chan result
}

// opCounter tallies one operation kind, successes and failures apart:
// a timed-out Range must not inflate the watch-vs-poll comparison.
type opCounter struct {
	ok   atomic.Uint64
	fail atomic.Uint64
}

// replicaLoad tracks one replica's read traffic for least-loaded
// routing: inflight is the gauge routing reads against, routed the
// cumulative dispatch count.
type replicaLoad struct {
	inflight atomic.Int64
	routed   atomic.Uint64
}

// Store is a handle to the replicated KV cluster.
type Store struct {
	clk     clock.Clock
	cluster *raft.Cluster
	timeout time.Duration
	shards  int

	compactEvery atomic.Int64
	reqSeq       atomic.Uint64
	closed       atomic.Bool
	stopCh       chan struct{}
	readMode     atomic.Value // string; one of the ReadMode constants
	writeMode    atomic.Value // string; one of the WriteMode constants
	replication  string       // fixed at construction

	// Group-commit state: writers append to batchQ and kick the flusher,
	// which drains the queue into one opBatch entry per replication
	// round. batchSeq numbers wrapper request IDs; batches/batchedCmds
	// feed the batch-occupancy metric.
	batchMu     sync.Mutex
	batchQ      []command
	batchKick   chan struct{}
	batchSeq    atomic.Uint64
	batches     atomic.Uint64
	batchedCmds atomic.Uint64

	// Client-operation counters, split by kind: the control-plane
	// benchmarks compare watch- vs poll-driven consumers by how many
	// Range scans they cost per job.
	cRange, cPut, cGet, cDelete, cCAS, cTxn, cWatch opCounter

	// proposals counts entries actually submitted to the Raft log — the
	// numerator of the proposals-per-read comparison across read modes.
	proposals atomic.Uint64

	// leaderCache short-circuits the per-op leader scan; dropLeader
	// invalidates it on any leader-side failure. readLoads carries the
	// fixed-membership per-replica routing gauges and counters; routeRR
	// rotates tie-breaks so idle read traffic spreads across replicas.
	leaderCache atomic.Pointer[raft.Node]
	readLoads   map[int]*replicaLoad
	routeRR     atomic.Uint64

	mtr atomic.Pointer[metrics.Registry]

	waiters [waiterStripes]waiterStripe
	hub     *store.Hub[Event]

	// mu guards replica lifecycle only (cold path).
	mu    sync.Mutex
	sms   map[int]*stateMachine
	stops map[int]chan struct{}
}

// StoreOptions configures a Store beyond the defaults.
type StoreOptions struct {
	// Shards is the per-replica engine shard count (<= 0 = default).
	Shards int
	// WriteMode is WriteModeBatch (default) or WriteModeSingle.
	WriteMode string
	// Replication is ReplicationPipeline (default) or
	// ReplicationStopWait. Fixed for the cluster's lifetime.
	Replication string
}

// New boots an n-way replicated store on clk. The paper's deployment uses
// n = 3.
func New(n int, clk clock.Clock) *Store { return NewSharded(n, clk, 0) }

// NewSharded boots an n-way replicated store whose per-replica state
// machines use the given engine shard count (<= 0 selects the store
// default).
func NewSharded(n int, clk clock.Clock, shards int) *Store {
	s, err := NewWithOptions(n, clk, StoreOptions{Shards: shards})
	if err != nil {
		panic(err) // unreachable: default options are valid
	}
	return s
}

// NewWithOptions boots an n-way replicated store with explicit write and
// replication modes. It fails on an unknown mode string.
func NewWithOptions(n int, clk clock.Clock, o StoreOptions) (*Store, error) {
	switch o.WriteMode {
	case "":
		o.WriteMode = WriteModeBatch
	case WriteModeBatch, WriteModeSingle:
	default:
		return nil, fmt.Errorf("etcd: unknown write mode %q", o.WriteMode)
	}
	cfg := raft.DefaultConfig(clk)
	switch o.Replication {
	case "", ReplicationPipeline:
		o.Replication = ReplicationPipeline
	case ReplicationStopWait:
		cfg.MaxInflightEntries = 1
	default:
		return nil, fmt.Errorf("etcd: unknown replication mode %q", o.Replication)
	}
	s := &Store{
		clk:         clk,
		cluster:     raft.NewCluster(n, cfg),
		timeout:     defaultRequestTimeout,
		shards:      o.Shards,
		replication: o.Replication,
		stopCh:      make(chan struct{}),
		batchKick:   make(chan struct{}, 1),
		hub:         store.NewHub[Event](),
		sms:         make(map[int]*stateMachine, n),
		stops:       make(map[int]chan struct{}, n),
	}
	s.readLoads = make(map[int]*replicaLoad, n)
	for _, id := range s.cluster.IDs() {
		s.readLoads[id] = &replicaLoad{}
	}
	s.compactEvery.Store(defaultCompactEvery)
	s.readMode.Store(ReadModeLease) // matches raft's lease/coalesce defaults
	s.writeMode.Store(o.WriteMode)
	for i := range s.waiters {
		s.waiters[i].m = make(map[string]chan result)
	}
	for _, id := range s.cluster.IDs() {
		s.startApplier(id)
	}
	go s.batchLoop()
	return s, nil
}

// SetReadMode selects how Get, Range and read-only Txn are served
// ("" selects the default, ReadModeLease). Writes always go through
// the Raft log regardless of mode. Switching modes also flips the raft
// lease/coalescing switches cluster-wide, so ReadModeReadIndex is the
// exact one-heartbeat-round-per-read PR 5 baseline.
func (s *Store) SetReadMode(mode string) error {
	switch mode {
	case "":
		mode = ReadModeLease
	case ReadModeLease, ReadModeReadIndex, ReadModePropose, ReadModeSerializable:
	default:
		return fmt.Errorf("etcd: unknown read mode %q", mode)
	}
	s.readMode.Store(mode)
	amortized := mode == ReadModeLease
	s.cluster.SetLeaseReads(amortized)
	s.cluster.SetReadCoalescing(amortized)
	return nil
}

// ReadMode reports the store's current read mode.
func (s *Store) ReadMode() string {
	return s.readMode.Load().(string)
}

// SetWriteMode selects how writes reach the Raft log: WriteModeBatch
// coalesces concurrent writes into one entry per replication round,
// WriteModeSingle proposes each write on its own ("" selects the
// default, WriteModeBatch).
func (s *Store) SetWriteMode(mode string) error {
	switch mode {
	case "":
		mode = WriteModeBatch
	case WriteModeBatch, WriteModeSingle:
	default:
		return fmt.Errorf("etcd: unknown write mode %q", mode)
	}
	s.writeMode.Store(mode)
	return nil
}

// WriteMode reports the store's current write mode.
func (s *Store) WriteMode() string {
	return s.writeMode.Load().(string)
}

// Replication reports the cluster's replication mode (fixed at boot).
func (s *Store) Replication() string { return s.replication }

// BatchStats reports how many group-commit batches were proposed and how
// many client commands they carried; cmds/batches is the mean batch
// occupancy.
func (s *Store) BatchStats() (batches, cmds uint64) {
	return s.batches.Load(), s.batchedCmds.Load()
}

// ReplicationStats returns per-node Raft replication counters
// (appends, entries-per-append, rejects, snapshot chunks).
func (s *Store) ReplicationStats() map[int]raft.ReplicationStats {
	return s.cluster.ReplicationStats()
}

// SetNodeDelay adds extra one-way latency to every raft message
// addressed to node id (a slow follower); non-positive d removes it.
func (s *Store) SetNodeDelay(id int, d time.Duration) {
	s.cluster.Transport().SetNodeDelay(id, d)
}

// SetCompactEvery overrides the per-node log-compaction threshold
// (entries applied between snapshots). Intended for tests and benches.
func (s *Store) SetCompactEvery(n int) {
	if n > 0 {
		s.compactEvery.Store(int64(n))
	}
}

// Close shuts down the cluster and all watchers.
func (s *Store) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	stops := s.stops
	s.stops = map[int]chan struct{}{}
	s.mu.Unlock()

	for _, st := range stops {
		close(st)
	}
	close(s.stopCh)
	s.cluster.Stop()
	s.hub.Close()
}

// Instrument publishes the facade's operational metrics into reg: the
// watch hub's queue depth, per-replica engine metrics (shard commits,
// history drops), and client-operation counts. Call before serving.
func (s *Store) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.mtr.Store(reg)
	s.hub.Instrument(reg, "etcd")
	s.cluster.Instrument(reg)
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, sm := range s.sms {
		sm.instrument(reg, fmt.Sprintf("etcd-node%d", id))
	}
}

// finishOp tallies one completed client operation of the given kind.
// Successes and failures are counted apart — counting before the
// attempt inflated the watch-vs-poll RangeOps comparison with ops that
// then timed out. Operations that went through the log but lost their
// application-level race (CAS conflict, Txn else-branch) completed
// successfully for accounting purposes.
func (s *Store) finishOp(kind string, c *opCounter, err error) {
	if err != nil {
		c.fail.Add(1)
		if reg := s.mtr.Load(); reg != nil {
			reg.Inc("etcd_client_op_fails", kind)
		}
		return
	}
	c.ok.Add(1)
	if reg := s.mtr.Load(); reg != nil {
		reg.Inc("etcd_client_ops", kind)
	}
}

// RangeOps reports how many Range scans clients have completed — the
// denominator of the watch-vs-poll control-plane comparison.
func (s *Store) RangeOps() uint64 { return s.cRange.ok.Load() }

// Proposals reports how many commands were submitted to the Raft log.
// Read-index reads leave it untouched; propose-mode reads cost one (or
// more, on leadership churn) per operation.
func (s *Store) Proposals() uint64 { return s.proposals.Load() }

// OpCounts reports every client-operation counter by kind; "<kind>" is
// completed operations, "<kind>_fail" timed-out or rejected ones.
func (s *Store) OpCounts() map[string]uint64 {
	out := make(map[string]uint64, 14)
	for kind, c := range map[string]*opCounter{
		"range": &s.cRange, "put": &s.cPut, "get": &s.cGet,
		"delete": &s.cDelete, "cas": &s.cCAS, "txn": &s.cTxn, "watch": &s.cWatch,
	} {
		out[kind] = c.ok.Load()
		out[kind+"_fail"] = c.fail.Load()
	}
	return out
}

// PartitionNode isolates raft node id from the rest of the cluster
// (messages both ways are dropped) until HealNode. Unlike CrashNode the
// node and its applier keep running — this is the knife the stale-leader
// and linearizability chaos tests cut with.
func (s *Store) PartitionNode(id int) { s.cluster.Transport().Partition(id) }

// HealNode reconnects a partitioned node.
func (s *Store) HealNode(id int) { s.cluster.Transport().Heal(id) }

// startApplier builds a state machine for node id — restored from the
// node's persisted snapshot if it has one — and pumps its apply channel,
// compacting the Raft log periodically.
func (s *Store) startApplier(id int) {
	node := s.cluster.Node(id)
	if node == nil {
		return
	}
	sm := newStateMachine(s.shards)
	if reg := s.mtr.Load(); reg != nil {
		sm.instrument(reg, fmt.Sprintf("etcd-node%d", id))
	}
	if snap, idx := node.Snapshot(); idx > 0 {
		sm.restore(snap, idx)
		s.hub.Publish(idx, nil) // advance the delivery cursor past the image
	}
	stop := make(chan struct{})
	s.mu.Lock()
	s.sms[id] = sm
	s.stops[id] = stop
	s.mu.Unlock()
	go func() {
		applied := 0
		for {
			select {
			case <-stop:
				return
			case a := <-node.ApplyCh():
				if a.IsSnapshot {
					// The leader fast-forwarded this lagging node.
					sm.restore(a.Snapshot, a.SnapIndex)
					s.hub.Publish(a.SnapIndex, nil)
					applied = 0
					continue
				}
				s.applyEntry(sm, a.Entry)
				applied++
				if applied >= int(s.compactEvery.Load()) {
					_ = node.Compact(a.Entry.Index, sm.serialize())
					applied = 0
				}
			}
		}
	}()
}

// applyEntry applies one committed entry to a replica's state machine,
// completes the client waiter, and hands the entry's events to the hub,
// whose revision cursor delivers each log index exactly once no matter
// how many replicas apply it.
func (s *Store) applyEntry(sm *stateMachine, e raft.Entry) {
	if len(e.Cmd) == 0 {
		// Raft-internal no-op (the read-index term barrier): it still
		// occupies a log index, so advance the applied floor — read-index
		// waits stall below it otherwise — and the hub's delivery cursor.
		sm.advance(e.Index)
		s.hub.Publish(e.Index, nil)
		return
	}
	var cmd command
	if err := json.Unmarshal(e.Cmd, &cmd); err != nil {
		// Corrupt entry: a deterministic no-op on every node, but its
		// index must not leave a hole under the floor or the cursor.
		sm.advance(e.Index)
		s.hub.Publish(e.Index, nil)
		return
	}
	if cmd.Op == opBatch {
		s.applyBatchEntry(sm, e.Index, cmd)
		return
	}
	res := sm.apply(e.Index, cmd)

	// Publish before completing the waiter: once the client's call
	// returns, the entry's revision is already past the hub's delivery
	// cursor, so a Watch opened after an acknowledged write can never be
	// handed that write's own events ("events begin with the first
	// revision applied after the call").
	s.hub.Publish(e.Index, res.events)

	// Complete the client waiter (first applier wins; all produce the
	// same deterministic result).
	if ch, ok := s.takeWaiter(cmd.ReqID); ok {
		select {
		case ch <- res:
		default:
		}
	}
}

// applyBatchEntry unpacks a group-commit wrapper: every sub-command
// applies in order at the wrapper's single log index, the concatenated
// events publish once for that index (the hub cursor demands exactly one
// publish per revision), and each sub-command's waiter fires on its own
// ReqID. The wrapper's waiter releases the flusher's round.
func (s *Store) applyBatchEntry(sm *stateMachine, idx uint64, batch command) {
	results, events := sm.applyBatch(idx, batch.Subs)

	// Publish before completing waiters, for the same watch-visibility
	// ordering as single commands.
	s.hub.Publish(idx, events)

	for i, sub := range batch.Subs {
		if ch, ok := s.takeWaiter(sub.ReqID); ok {
			select {
			case ch <- results[i]:
			default:
			}
		}
	}
	if ch, ok := s.takeWaiter(batch.ReqID); ok {
		select {
		case ch <- result{rev: idx, ok: true}:
		default:
		}
	}
}

// stripeFor hashes a request ID to its waiter stripe.
func stripeFor(reqID string) int {
	return int(store.Hash32(reqID) % waiterStripes)
}

func (s *Store) putWaiter(reqID string, ch chan result) {
	st := &s.waiters[stripeFor(reqID)]
	st.mu.Lock()
	st.m[reqID] = ch
	st.mu.Unlock()
}

func (s *Store) takeWaiter(reqID string) (chan result, bool) {
	st := &s.waiters[stripeFor(reqID)]
	st.mu.Lock()
	ch, ok := st.m[reqID]
	if ok {
		delete(st.m, reqID)
	}
	st.mu.Unlock()
	return ch, ok
}

// Put stores value under key.
func (s *Store) Put(key, value string) (rev uint64, err error) {
	res, err := s.propose(command{Op: opPut, Key: key, Value: value})
	s.finishOp("put", &s.cPut, err)
	if err != nil {
		return 0, fmt.Errorf("put %q: %w", key, err)
	}
	return res.rev, nil
}

// Get returns the value stored under key. found reports existence. In
// the default read-index mode (and in propose mode) the read is
// linearizable; in serializable mode it may lag acknowledged writes.
func (s *Store) Get(key string) (value string, found bool, err error) {
	res, err := s.read(s.ReadMode(), command{Op: opGet, Key: key})
	s.finishOp("get", &s.cGet, err)
	if err != nil {
		return "", false, fmt.Errorf("get %q: %w", key, err)
	}
	return res.val, res.found, nil
}

// Delete removes key. It is not an error to delete a missing key.
func (s *Store) Delete(key string) error {
	_, err := s.propose(command{Op: opDelete, Key: key})
	s.finishOp("delete", &s.cDelete, err)
	if err != nil {
		return fmt.Errorf("delete %q: %w", key, err)
	}
	return nil
}

// CompareAndSwap atomically replaces key's value with newValue iff the
// current value equals prev (prevExists=false means "key must not
// exist"). Returns ErrCASFailed when the precondition does not hold.
func (s *Store) CompareAndSwap(key, prev string, prevExists bool, newValue string) error {
	res, err := s.propose(command{
		Op: opCAS, Key: key, Value: newValue, Prev: prev, PrevExists: prevExists,
	})
	s.finishOp("cas", &s.cCAS, err)
	if err != nil {
		return fmt.Errorf("cas %q: %w", key, err)
	}
	if !res.ok {
		return ErrCASFailed
	}
	return nil
}

// Txn atomically evaluates cmps against the current state and applies
// then (all guards hold) or orElse (any guard fails) in a single log
// entry: the branch's mutations commit at one revision, and watchers see
// them together. succeeded reports which branch ran. A read-only
// transaction (both branches empty) is served through the store's read
// mode — guard evaluation against one local snapshot revision, no log
// entry — since there is nothing to sequence.
func (s *Store) Txn(cmps []Cmp, then, orElse []TxnOp) (succeeded bool, rev uint64, err error) {
	var res result
	if mode := s.ReadMode(); mode != ReadModePropose && len(then) == 0 && len(orElse) == 0 {
		res, err = s.read(mode, command{Op: opTxn, Cmps: cmps})
	} else {
		res, err = s.propose(command{Op: opTxn, Cmps: cmps, Then: then, Else: orElse})
	}
	s.finishOp("txn", &s.cTxn, err)
	if err != nil {
		return false, 0, fmt.Errorf("txn: %w", err)
	}
	return res.ok, res.rev, nil
}

// Range returns all keys under prefix, sorted by key.
func (s *Store) Range(prefix string) ([]KV, error) {
	res, err := s.read(s.ReadMode(), command{Op: opRange, Key: prefix})
	s.finishOp("range", &s.cRange, err)
	if err != nil {
		return nil, fmt.Errorf("range %q: %w", prefix, err)
	}
	return res.kvs, nil
}

// SerializableRange is Range forced through serializable mode whatever
// the store default: a stale-tolerant local read that costs no
// consensus work and stays available without a quorum. Consumers that
// re-run on a backstop cadence against idempotent actions (the LCM's GC
// sweep) opt into it.
func (s *Store) SerializableRange(prefix string) ([]KV, error) {
	res, err := s.read(ReadModeSerializable, command{Op: opRange, Key: prefix})
	s.finishOp("range", &s.cRange, err)
	if err != nil {
		return nil, fmt.Errorf("range %q: %w", prefix, err)
	}
	return res.kvs, nil
}

// Watch subscribes to changes of keys under prefix. Cancel releases the
// subscription. Events begin with the first revision applied after the
// call.
func (s *Store) Watch(prefix string) (events <-chan Event, cancel func()) {
	s.finishOp("watch", &s.cWatch, nil)
	return s.hub.Watch(prefix)
}

// WatchFrom subscribes to changes of keys under prefix starting after
// startRev: every event with revision (Raft index) > startRev is
// delivered exactly once, in order — events committed before the call
// are backfilled from a replica's bounded MVCC version history, then
// the stream continues live. It fails with ErrCompacted when the
// retained history no longer reaches back to startRev (log compaction
// or a snapshot restore dropped the window); the consumer then falls
// back to Range + Watch from the present. This is the resume contract
// the Guardian uses to pick up exactly where a crashed predecessor
// left off.
func (s *Store) WatchFrom(prefix string, startRev uint64) (<-chan Event, func(), error) {
	ch, cancel, err := s.watchFrom(prefix, startRev)
	s.finishOp("watch", &s.cWatch, err)
	return ch, cancel, err
}

func (s *Store) watchFrom(prefix string, startRev uint64) (<-chan Event, func(), error) {
	if s.closed.Load() {
		return nil, nil, ErrClosed
	}
	ch, cancel, cursor := s.hub.WatchCursor(prefix)
	if startRev == cursor {
		return ch, cancel, nil
	}
	var backfill []Event
	if startRev < cursor {
		sm := s.replicaAt(cursor)
		if sm == nil {
			cancel()
			return nil, nil, fmt.Errorf("etcd: watch %q from %d: %w: no live replica reaches revision %d",
				prefix, startRev, ErrCompacted, cursor)
		}
		var err error
		backfill, err = sm.historyEvents(prefix, startRev, cursor)
		if err != nil {
			cancel()
			return nil, nil, fmt.Errorf("etcd: watch %q from %d: %w", prefix, startRev, err)
		}
	}
	after := cursor
	if startRev > cursor {
		// Resuming from a revision the hub has not delivered yet (e.g. a
		// cursor saved by a faster replica): filter the overlap instead
		// of replaying it.
		after = startRev
	}
	out, stopSplice := store.SpliceEvents(backfill, ch, after, s.stopCh)
	var once sync.Once
	return out, func() { once.Do(func() { stopSplice(); cancel() }) }, nil
}

// replicaAt picks a live state machine whose applied floor covers rev,
// preferring the one with the deepest retained history (lowest resume
// floor). It waits briefly for an applier to catch up to the hub
// cursor — the cursor only advances after some replica applied rev, but
// that replica may have crashed since.
func (s *Store) replicaAt(rev uint64) *stateMachine {
	deadline := s.clk.Now().Add(2 * time.Second)
	for {
		var best *stateMachine
		var bestFloor uint64
		s.mu.Lock()
		for _, sm := range s.sms {
			eng := sm.engine()
			if eng.Snapshot() < rev {
				continue
			}
			if f := eng.ResumeFloor(); best == nil || f < bestFloor {
				best, bestFloor = sm, f
			}
		}
		s.mu.Unlock()
		if best != nil || !s.clk.Now().Before(deadline) || s.closed.Load() {
			return best
		}
		s.clk.Sleep(10 * time.Millisecond)
	}
}

// read serves a read-only command (opGet, opRange, or an opTxn with no
// mutations) in the given read mode. ReadModeLease and
// ReadModeReadIndex share the read-index path — the lease fast path and
// round coalescing live inside raft.Node.ReadIndex, toggled by
// SetReadMode.
func (s *Store) read(mode string, cmd command) (result, error) {
	switch mode {
	case ReadModePropose:
		return s.propose(cmd)
	case ReadModeSerializable:
		return s.serializableRead(cmd)
	default:
		return s.readIndexRead(cmd)
	}
}

// readIndexRead serves cmd linearizably without a log entry: obtain a
// read index from the leader (a live check-quorum lease answers it for
// free; otherwise ReadIndex confirms leadership with a quorum heartbeat
// round, so a deposed leader can never answer), wait for a routed
// replica's state machine to apply through it, then read that local
// MVCC snapshot.
func (s *Store) readIndexRead(cmd command) (result, error) {
	deadline := s.clk.Now().Add(s.timeout)
	for {
		if s.closed.Load() {
			return result{}, ErrClosed
		}
		node := s.readNode()
		if node == nil {
			if !s.pause(deadline) {
				return result{}, ErrTimeout
			}
			continue
		}
		idx, err := node.ReadIndex(readIndexWait)
		if err != nil {
			// No leader, deposed mid-round, or no quorum answered: retry
			// against whoever leads next, bounded by the deadline.
			s.dropLeader()
			if !s.pause(deadline) {
				return result{}, ErrTimeout
			}
			continue
		}
		eng, ok := s.routedWait(idx, deadline)
		if !ok {
			if s.closed.Load() {
				return result{}, ErrClosed
			}
			return result{}, ErrTimeout
		}
		return readLocal(eng, cmd), nil
	}
}

// routeSlice bounds one applied-floor wait on a routed replica before
// re-routing: a partitioned or crashed replica stops applying, and its
// piling-up in-flight gauge steers later picks elsewhere while this
// read hops to a replica still making progress.
const routeSlice = 250 * time.Millisecond

// routedWait dispatches a read's applied-floor wait to the least-loaded
// live replica — follower read serving. Replicas already applied
// through idx are preferred (their wait costs nothing); ties rotate.
func (s *Store) routedWait(idx uint64, deadline time.Time) (*store.Engine, bool) {
	for {
		id, sm := s.routeReplica(idx)
		if sm == nil {
			if s.closed.Load() || !s.pause(deadline) {
				return nil, false
			}
			continue
		}
		ld := s.readLoads[id]
		ld.inflight.Add(1)
		ld.routed.Add(1)
		if reg := s.mtr.Load(); reg != nil {
			label := fmt.Sprintf("node%d", id)
			reg.Inc("etcd_reads_routed", label)
			reg.SetGauge("etcd_inflight_reads", float64(ld.inflight.Load()), label)
		}
		sliceEnd := s.clk.Now().Add(routeSlice)
		if sliceEnd.After(deadline) {
			sliceEnd = deadline
		}
		eng, ok := s.waitApplied(sm, idx, sliceEnd)
		ld.inflight.Add(-1)
		if ok {
			return eng, true
		}
		if s.closed.Load() || !s.clk.Now().Before(deadline) {
			return nil, false
		}
	}
}

// routeReplica picks the replica for one applied-floor wait: live,
// already-applied-through-idx replicas first, least in-flight load
// within a class, rotation breaking exact ties.
func (s *Store) routeReplica(idx uint64) (int, *stateMachine) {
	offset := int(s.routeRR.Add(1))
	ids := s.cluster.IDs()
	s.mu.Lock()
	defer s.mu.Unlock()
	bestID := -1
	var best *stateMachine
	var bestLoad int64
	var bestReady bool
	for i := 0; i < len(ids); i++ {
		id := ids[(i+offset)%len(ids)]
		sm := s.sms[id]
		if sm == nil {
			continue
		}
		ready := sm.engine().Snapshot() >= idx
		load := s.readLoads[id].inflight.Load()
		if best == nil || (ready && !bestReady) ||
			(ready == bestReady && load < bestLoad) {
			bestID, best, bestLoad, bestReady = id, sm, load, ready
		}
	}
	return bestID, best
}

// serializableRead serves cmd from a freshest live replica's local
// state, no leadership round: bounded staleness, never wrongness, and
// it stays available when the cluster has no quorum. Among equally
// fresh replicas the least read-loaded one serves (freshness first —
// trading it away would widen the staleness bound).
func (s *Store) serializableRead(cmd command) (result, error) {
	if s.closed.Load() {
		return result{}, ErrClosed
	}
	offset := int(s.routeRR.Add(1))
	ids := s.cluster.IDs()
	bestID := -1
	var best *store.Engine
	var bestFloor uint64
	var bestLoad int64
	s.mu.Lock()
	for i := 0; i < len(ids); i++ {
		id := ids[(i+offset)%len(ids)]
		sm := s.sms[id]
		if sm == nil {
			continue
		}
		eng := sm.engine()
		f := eng.Snapshot()
		load := s.readLoads[id].inflight.Load()
		if best == nil || f > bestFloor || (f == bestFloor && load < bestLoad) {
			bestID, best, bestFloor, bestLoad = id, eng, f, load
		}
	}
	s.mu.Unlock()
	if best == nil {
		return result{}, ErrTimeout // every replica crashed
	}
	s.readLoads[bestID].routed.Add(1)
	if reg := s.mtr.Load(); reg != nil {
		reg.Inc("etcd_reads_routed", fmt.Sprintf("node%d", bestID))
	}
	return readLocal(best, cmd), nil
}

// readLocal evaluates a read-only command against eng's applied state.
// Multi-key reads (opRange, guard evaluation) run at the engine's
// current floor — a fully-installed cut, since ApplyAt only raises the
// floor after a revision's ops are all in place — so a concurrently
// applying transaction is seen whole or not at all.
func readLocal(eng *store.Engine, cmd command) result {
	rev := eng.Snapshot()
	res := result{rev: rev}
	switch cmd.Op {
	case opGet:
		if v, _, ok := eng.Get(cmd.Key); ok {
			res.val, _ = v.(string)
			res.found = true
		}
	case opRange:
		kvs, err := eng.ScanAt(cmd.Key, rev)
		if err != nil {
			// rev fell below a compaction floor between Snapshot and the
			// scan (not reachable in facade engines, which never compact
			// in place): fall forward to the newest versions.
			kvs = eng.ScanLatest(cmd.Key)
		}
		for _, kv := range kvs {
			val, _ := kv.Value.(string)
			res.kvs = append(res.kvs, KV{Key: kv.Key, Value: val, Rev: kv.Rev})
		}
	case opTxn:
		res.ok = true
		for _, c := range cmd.Cmps {
			v, _, exists, err := eng.GetAt(c.Key, rev)
			if err != nil {
				v, _, exists = eng.Get(c.Key)
			}
			sv, _ := v.(string)
			if exists != c.PrevExists || (exists && sv != c.Prev) {
				res.ok = false
				break
			}
		}
	}
	return res
}

// leader resolves the current leader through a cached pointer: the
// hot paths (every read-index round, every proposal) must not scan all
// nodes per op. The cached node revalidates by its own Status — one
// mutex, no cluster scan — and the cache drops on any leader-side
// failure (ErrNotLeader / ErrStopped / round timeout, via dropLeader)
// or on observing the node out of Leader state; the next call then
// pays one full scan to re-prime it.
func (s *Store) leader() *raft.Node {
	if n := s.leaderCache.Load(); n != nil {
		if st, _ := n.Status(); st == raft.Leader {
			return n
		}
		s.leaderCache.CompareAndSwap(n, nil)
	}
	n := s.cluster.Leader()
	if n != nil {
		s.leaderCache.Store(n)
	}
	return n
}

// dropLeader invalidates the leader cache after a leader-side failure
// (the node answered ErrNotLeader, stopped, or its round timed out —
// leadership likely moved even if the stale node still believes).
func (s *Store) dropLeader() { s.leaderCache.Store(nil) }

// readNode picks the node to ask for a read index: the leader when one
// is visible, otherwise any live node, whose ReadIndex forwards to the
// leader it believes in.
func (s *Store) readNode() *raft.Node {
	if l := s.leader(); l != nil {
		return l
	}
	for _, id := range s.cluster.IDs() {
		if n := s.cluster.Node(id); n != nil {
			return n
		}
	}
	return nil
}

// replica returns node id's state machine, or nil when crashed.
func (s *Store) replica(id int) *stateMachine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sms[id]
}

// waitAppliedSlice bounds one wait on a replica's applied floor before
// re-fetching its engine (a snapshot restore swaps the engine, and the
// old one's floor stops moving).
const waitAppliedSlice = 25 * time.Millisecond

// waitApplied blocks until sm has applied the log through idx and
// returns the engine that reached it. Each slice deregisters its waiter
// before re-fetching the engine, so abandoned waits don't accumulate on
// a lagging replica.
func (s *Store) waitApplied(sm *stateMachine, idx uint64, deadline time.Time) (*store.Engine, bool) {
	for {
		eng := sm.engine()
		ch, cancelWait := eng.WaitApplied(idx)
		t := s.clk.NewTimer(waitAppliedSlice)
		select {
		case <-ch:
			t.Stop()
			return eng, true
		case <-t.C():
			cancelWait()
			if s.closed.Load() || !s.clk.Now().Before(deadline) {
				return nil, false
			}
		case <-s.stopCh:
			t.Stop()
			cancelWait()
			return nil, false
		}
	}
}

// pause sleeps the retry backoff and reports whether the deadline still
// allows another attempt.
func (s *Store) pause(deadline time.Time) bool {
	s.clk.Sleep(retryPause)
	return s.clk.Now().Before(deadline)
}

// propose routes cmd through the Raft log and waits for its application.
// In the default batch write mode, mutations join the group-commit queue
// (one log entry per replication round); single mode and read commands
// propose individually.
func (s *Store) propose(cmd command) (result, error) {
	if s.closed.Load() {
		return result{}, ErrClosed
	}
	if s.WriteMode() != WriteModeSingle {
		switch cmd.Op {
		case opPut, opDelete, opCAS, opTxn:
			return s.proposeBatched(cmd)
		}
		// Propose-mode reads (opGet/opRange and read-only opTxn reach
		// here only in that mode) stay one-entry-per-op: their results
		// depend on snapshot state that batch application does not
		// overlay for range scans, and keeping them singular preserves
		// the 1-proposal-per-read baseline the read-mode A/B measures.
	}
	return s.proposeSingle(cmd)
}

// proposeBatched enqueues cmd for the group-commit flusher and waits for
// its own waiter to fire — each sub-command completes individually when
// the wrapper entry applies.
func (s *Store) proposeBatched(cmd command) (result, error) {
	cmd.ReqID = fmt.Sprintf("r%d", s.reqSeq.Add(1))
	ch := make(chan result, 1)
	s.putWaiter(cmd.ReqID, ch)
	defer s.takeWaiter(cmd.ReqID)

	s.batchMu.Lock()
	s.batchQ = append(s.batchQ, cmd)
	depth := len(s.batchQ)
	s.batchMu.Unlock()
	if reg := s.mtr.Load(); reg != nil {
		reg.SetGauge("etcd_batch_queue_depth", float64(depth))
	}
	select {
	case s.batchKick <- struct{}{}:
	default:
	}

	t := s.clk.NewTimer(s.timeout)
	defer t.Stop()
	select {
	case res := <-ch:
		return res, nil
	case <-t.C():
		return result{}, ErrTimeout
	case <-s.stopCh:
		return result{}, ErrClosed
	}
}

// batchLoop is the group-commit flusher: it drains the queue into one
// opBatch entry, waits for that round to apply (or give up), then
// flushes whatever queued meanwhile. No artificial delay — a lone write
// flushes immediately; batching emerges only from concurrency.
func (s *Store) batchLoop() {
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.batchKick:
		}
		for {
			s.batchMu.Lock()
			q := s.batchQ
			s.batchQ = nil
			s.batchMu.Unlock()
			if len(q) == 0 {
				break
			}
			s.flushBatch(q)
		}
	}
}

// flushBatch proposes one opBatch wrapper carrying q and waits until the
// entry applies — the flusher's own waiter on the wrapper's ReqID is the
// round-completion signal that clocks group commit. Re-proposals on
// leadership churn are deduplicated per sub-command by the state
// machine. If the round never applies within the request timeout the
// batch is abandoned: its clients' waiters time out individually.
func (s *Store) flushBatch(q []command) {
	wrap := command{ReqID: fmt.Sprintf("b%d", s.batchSeq.Add(1)), Op: opBatch, Subs: q}
	payload, err := json.Marshal(wrap)
	if err != nil {
		return // unreachable: commands are plain data
	}
	ch := make(chan result, 1)
	s.putWaiter(wrap.ReqID, ch)
	defer s.takeWaiter(wrap.ReqID)

	s.batches.Add(1)
	s.batchedCmds.Add(uint64(len(q)))
	if reg := s.mtr.Load(); reg != nil {
		reg.Inc("etcd_batches")
		reg.Add("etcd_batched_cmds", float64(len(q)))
	}

	deadline := s.clk.Now().Add(s.timeout)
	for s.clk.Now().Before(deadline) {
		if s.closed.Load() {
			return
		}
		leader := s.leader()
		if leader == nil {
			s.clk.Sleep(retryPause)
			continue
		}
		if _, _, err := leader.Propose(payload); err != nil {
			s.dropLeader()
			s.clk.Sleep(retryPause)
			continue
		}
		s.proposals.Add(1)
		t := s.clk.NewTimer(proposeWait)
		select {
		case <-ch:
			t.Stop()
			return
		case <-t.C():
			// Re-propose: leadership may have changed and the entry been
			// lost (sub-command dedup makes the retry idempotent).
			s.dropLeader()
		case <-s.stopCh:
			t.Stop()
			return
		}
	}
}

// proposeSingle routes one command through the Raft log as its own
// entry. The wait is event-driven — a select on the waiter channel and a
// clock timer — rather than a poll: the old 5 ms busy-loop put a
// virtual-latency floor under every write and burned sim-clock cycles.
func (s *Store) proposeSingle(cmd command) (result, error) {
	cmd.ReqID = fmt.Sprintf("r%d", s.reqSeq.Add(1))
	ch := make(chan result, 1)
	s.putWaiter(cmd.ReqID, ch)
	defer s.takeWaiter(cmd.ReqID)

	payload, err := json.Marshal(cmd)
	if err != nil {
		return result{}, fmt.Errorf("encoding command: %w", err)
	}

	deadline := s.clk.Now().Add(s.timeout)
	for s.clk.Now().Before(deadline) {
		leader := s.leader()
		if leader == nil {
			s.clk.Sleep(retryPause)
			continue
		}
		if _, _, err := leader.Propose(payload); err != nil {
			s.dropLeader()
			s.clk.Sleep(retryPause)
			continue
		}
		s.proposals.Add(1)
		// Wait for apply; on timeout re-propose, since leadership may
		// have changed and the entry been lost (bounded by the overall
		// deadline; dedupe in the state machine makes retries idempotent).
		t := s.clk.NewTimer(proposeWait)
		select {
		case res := <-ch:
			t.Stop()
			return res, nil
		case <-t.C():
			s.dropLeader()
		case <-s.stopCh:
			t.Stop()
			return result{}, ErrClosed
		}
	}
	select {
	case res := <-ch:
		return res, nil
	default:
		return result{}, ErrTimeout
	}
}

// CrashNode stops raft node id, preserving its durable state.
func (s *Store) CrashNode(id int) {
	s.mu.Lock()
	if st, ok := s.stops[id]; ok {
		close(st)
		delete(s.stops, id)
	}
	delete(s.sms, id)
	s.mu.Unlock()
	s.dropLeader() // the crashed node may be the cached leader
	s.cluster.Crash(id)
}

// RestartNode reboots a crashed node; its state machine is rebuilt from
// the replayed log.
func (s *Store) RestartNode(id int) {
	s.cluster.Restart(id)
	s.startApplier(id)
}

// Nodes returns the cluster membership.
func (s *Store) Nodes() []int { return s.cluster.IDs() }

// LeaderID returns the current leader's ID, or -1.
func (s *Store) LeaderID() int {
	l := s.leader()
	if l == nil {
		return -1
	}
	return l.ID()
}

// SkewNodeClock offsets raft node id's local clock readings by d (0
// heals it) — the fault primitive the lease-safety tests and the chaos
// layer drive. Timers are unaffected: real skew shifts the values a
// node reads, not the rate its timers fire at, which is exactly what
// makes a skewed leader's lease deadline dangerous.
func (s *Store) SkewNodeClock(id int, d time.Duration) {
	s.cluster.SetClockSkew(id, d)
}

// ReadStats sums the raft read-path counters (confirmation rounds,
// reads resolved per round, lease fast-path reads, lease expiries)
// across live nodes — the numerators of the rounds-per-read economy
// BenchmarkEtcdReads measures.
func (s *Store) ReadStats() raft.ReadStats { return s.cluster.ReadStats() }

// ReadsRouted reports how many reads each replica has served (applied-
// floor waits in the read-index/lease modes, local serves in
// serializable mode), keyed by node ID — the follower-routing
// distribution.
func (s *Store) ReadsRouted() map[int]uint64 {
	out := make(map[int]uint64, len(s.readLoads))
	for id, ld := range s.readLoads {
		out[id] = ld.routed.Load()
	}
	return out
}

// backpressureQueueNominal is the group-commit queue depth treated as
// full saturation by Backpressure: past one batch-window's worth of
// queued commands, admission layers should shed or delay background
// load.
const backpressureQueueNominal = 64

// Backpressure folds the write path's two congestion gauges into one
// signal in [0, 1]: the leader's deepest raft pipeline window as a
// fraction of its entry cap (raft_inflight_entries saturating means
// followers are not acking fast enough) and the group-commit queue
// depth against its nominal capacity (etcd_batch_queue_depth growing
// means rounds are not draining the queue). The max of the two is the
// binding constraint; 1 means fully saturated.
func (s *Store) Backpressure() float64 {
	var pressure float64
	if l := s.leader(); l != nil {
		if entries, limit := l.MaxInflight(); limit > 0 {
			pressure = float64(entries) / float64(limit)
		}
	}
	s.batchMu.Lock()
	depth := len(s.batchQ)
	s.batchMu.Unlock()
	if q := float64(depth) / backpressureQueueNominal; q > pressure {
		pressure = q
	}
	if pressure > 1 {
		pressure = 1
	}
	if reg := s.mtr.Load(); reg != nil {
		reg.SetGauge("etcd_backpressure", pressure)
	}
	return pressure
}

// stateMachine is the deterministic automaton each replica runs: a
// sharded MVCC engine in external-revision mode (the Raft index is the
// revision) plus the exactly-once dedup ledger. Its apply loop is
// single-goroutine per replica; mu only fences apply against restore.
type stateMachine struct {
	mu      sync.Mutex
	eng     *store.Engine
	dedup   map[string]uint64 // reqID -> applied index
	mtr     *metrics.Registry
	mtrName string
}

func newStateMachine(shards int) *stateMachine {
	return &stateMachine{
		eng:   store.NewEngine(store.Config{Shards: shards, ExternalRevs: true}),
		dedup: make(map[string]uint64),
	}
}

// engine returns the current backing engine (swapped by restore).
func (m *stateMachine) engine() *store.Engine {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng
}

// advance raises the replica's applied floor past an index that carries
// no state change (raft no-ops, corrupt entries).
func (m *stateMachine) advance(idx uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_ = m.eng.AdvanceFloor(idx)
}

// instrument hooks the replica's engine into the metrics registry and
// remembers the hookup so restore re-applies it to the fresh engine.
func (m *stateMachine) instrument(reg *metrics.Registry, name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mtr, m.mtrName = reg, name
	m.eng.Instrument(reg, name)
}

// historyEvents reconstructs the facade events in (from, to] for keys
// under prefix from this replica's MVCC history.
func (m *stateMachine) historyEvents(prefix string, from, to uint64) ([]Event, error) {
	evs, err := m.engine().HistoryEvents(prefix, from, to)
	if err != nil {
		return nil, err
	}
	out := make([]Event, 0, len(evs))
	for _, ev := range evs {
		val, _ := ev.Value.(string)
		out = append(out, Event{Type: EventType(ev.Type), Key: ev.Key, Value: val, Rev: ev.Rev})
	}
	return out, nil
}

// smSnapshot is the serialized state-machine image stored in Raft
// snapshots.
type smSnapshot struct {
	Data  map[string]KV     `json:"data"`
	Dedup map[string]uint64 `json:"dedup"`
}

// serialize captures the full state machine for log compaction.
func (m *stateMachine) serialize() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	data := make(map[string]KV)
	for _, kv := range m.eng.Export() {
		val, _ := kv.Value.(string)
		data[kv.Key] = KV{Key: kv.Key, Value: val, Rev: kv.Rev}
	}
	img := smSnapshot{Data: data, Dedup: m.dedup}
	raw, err := json.Marshal(img)
	if err != nil {
		return nil
	}
	return raw
}

// restore replaces the state machine with a serialized image covering
// the log through snapIndex. The fresh engine's floor starts at
// snapIndex even when the image's highest key revision is older
// (trailing entries may have been deletes or reads): a read-index wait
// against this replica must see the whole snapshot as applied.
func (m *stateMachine) restore(raw []byte, snapIndex uint64) {
	var img smSnapshot
	if err := json.Unmarshal(raw, &img); err != nil {
		return // corrupt snapshot: keep current state
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Import in sorted key order: every replica restoring this image
	// must install identical shard logs, and map order would let two
	// restores of one snapshot diverge.
	keys := make([]string, 0, len(img.Data))
	for k := range img.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kvs := make([]store.KV, 0, len(keys))
	for _, k := range keys {
		kv := img.Data[k]
		kvs = append(kvs, store.KV{Key: k, Value: kv.Value, Rev: kv.Rev})
	}
	eng := store.NewEngine(store.Config{Shards: m.eng.Shards(), ExternalRevs: true})
	_ = eng.Import(kvs, snapIndex) // cannot fail: the engine is external-revs
	if m.mtr != nil {
		eng.Instrument(m.mtr, m.mtrName)
	}
	m.eng = eng
	m.dedup = img.Dedup
	if m.dedup == nil {
		m.dedup = make(map[string]uint64)
	}
}

func (m *stateMachine) apply(idx uint64, cmd command) result {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Exactly-once: a retried proposal may appear twice in the log; only
	// the first occurrence mutates state. (Reads are harmless to repeat.)
	if first, seen := m.dedup[cmd.ReqID]; seen && first != idx {
		switch cmd.Op {
		case opPut, opDelete, opCAS, opTxn:
			_ = m.eng.AdvanceFloor(idx)
			return result{rev: first, ok: true}
		}
	}
	m.dedup[cmd.ReqID] = idx

	res := result{rev: idx}
	applyOps := func(ops []store.Op) {
		events, _ := m.eng.ApplyAt(idx, ops)
		for _, ev := range events {
			val, _ := ev.Value.(string)
			res.events = append(res.events, Event{
				Type: EventType(ev.Type), Key: ev.Key, Value: val, Rev: ev.Rev,
			})
		}
	}
	holds := func(c Cmp) bool {
		cur, _, exists := m.eng.Get(c.Key)
		if exists != c.PrevExists {
			return false
		}
		return !exists || cur.(string) == c.Prev
	}

	switch cmd.Op {
	case opPut:
		applyOps([]store.Op{{Kind: store.OpPut, Key: cmd.Key, Value: cmd.Value}})
	case opDelete:
		applyOps([]store.Op{{Kind: store.OpDelete, Key: cmd.Key}})
	case opCAS:
		if holds(Cmp{Key: cmd.Key, Prev: cmd.Prev, PrevExists: cmd.PrevExists}) {
			applyOps([]store.Op{{Kind: store.OpPut, Key: cmd.Key, Value: cmd.Value}})
			res.ok = true
		}
	case opTxn:
		res.ok = true
		for _, c := range cmd.Cmps {
			if !holds(c) {
				res.ok = false
				break
			}
		}
		branch := cmd.Then
		if !res.ok {
			branch = cmd.Else
		}
		ops := make([]store.Op, 0, len(branch))
		for _, op := range branch {
			kind := store.OpPut
			if op.Type == EventDelete {
				kind = store.OpDelete
			}
			ops = append(ops, store.Op{Kind: kind, Key: op.Key, Value: op.Value})
		}
		applyOps(ops)
	case opGet:
		if v, _, ok := m.eng.Get(cmd.Key); ok {
			res.val, res.found = v.(string), true
		}
	case opRange:
		for _, kv := range m.eng.ScanLatest(cmd.Key) {
			val, _ := kv.Value.(string)
			res.kvs = append(res.kvs, KV{Key: kv.Key, Value: val, Rev: kv.Rev})
		}
	}
	// Raise the applied floor only now, after any mutation is installed
	// (ApplyAt raises it itself, post-install; this covers reads, failed
	// CAS and empty branches). Raising it before the write would let a
	// WaitApplied reader wake at this index and read the pre-write state
	// — a stale read after an acknowledged write. The WatchFrom backfill
	// also compares this floor against the hub's delivery cursor, so
	// every applied index must reach it.
	_ = m.eng.AdvanceFloor(idx)
	return res
}

// applyBatch applies a group-commit wrapper's sub-commands at one log
// index. Guards of later sub-commands must see earlier sub-commands'
// effects, but the engine may only install the batch in one ApplyAt:
// installing per sub-command would raise the applied floor mid-batch and
// let a read-index reader observe a half-applied batch. So mutations are
// staged in an overlay that guard evaluation reads through, and the
// whole staged op list installs at once (the engine's same-revision
// rule — later op wins per key — collapses intra-batch overwrites).
func (m *stateMachine) applyBatch(idx uint64, subs []command) ([]result, []Event) {
	m.mu.Lock()
	defer m.mu.Unlock()

	type oval struct {
		val    string
		exists bool
	}
	overlay := make(map[string]oval)
	lookup := func(key string) (string, bool) {
		if o, ok := overlay[key]; ok {
			return o.val, o.exists
		}
		v, _, ok := m.eng.Get(key)
		sv, _ := v.(string)
		return sv, ok
	}
	holds := func(c Cmp) bool {
		cur, exists := lookup(c.Key)
		if exists != c.PrevExists {
			return false
		}
		return !exists || cur == c.Prev
	}
	var ops []store.Op
	stage := func(op store.Op) {
		ops = append(ops, op)
		if op.Kind == store.OpPut {
			sv, _ := op.Value.(string)
			overlay[op.Key] = oval{val: sv, exists: true}
		} else {
			overlay[op.Key] = oval{}
		}
	}

	results := make([]result, len(subs))
	for i, sub := range subs {
		// Exactly-once across wrapper re-proposals: only the first
		// occurrence of a sub-command mutates state.
		if first, seen := m.dedup[sub.ReqID]; seen && first != idx {
			switch sub.Op {
			case opPut, opDelete, opCAS, opTxn:
				results[i] = result{rev: first, ok: true}
				continue
			}
		}
		m.dedup[sub.ReqID] = idx

		res := result{rev: idx}
		switch sub.Op {
		case opPut:
			stage(store.Op{Kind: store.OpPut, Key: sub.Key, Value: sub.Value})
		case opDelete:
			stage(store.Op{Kind: store.OpDelete, Key: sub.Key})
		case opCAS:
			if holds(Cmp{Key: sub.Key, Prev: sub.Prev, PrevExists: sub.PrevExists}) {
				stage(store.Op{Kind: store.OpPut, Key: sub.Key, Value: sub.Value})
				res.ok = true
			}
		case opTxn:
			res.ok = true
			for _, c := range sub.Cmps {
				if !holds(c) {
					res.ok = false
					break
				}
			}
			branch := sub.Then
			if !res.ok {
				branch = sub.Else
			}
			for _, op := range branch {
				kind := store.OpPut
				if op.Type == EventDelete {
					kind = store.OpDelete
				}
				stage(store.Op{Kind: kind, Key: op.Key, Value: op.Value})
			}
		case opGet:
			// Reads are not batched by propose(), but stay correct if a
			// wrapper carries one: answer through the overlay.
			if v, ok := lookup(sub.Key); ok {
				res.val, res.found = v, true
			}
		}
		results[i] = res
	}

	var events []Event
	if len(ops) > 0 {
		evs, _ := m.eng.ApplyAt(idx, ops)
		for _, ev := range evs {
			val, _ := ev.Value.(string)
			events = append(events, Event{
				Type: EventType(ev.Type), Key: ev.Key, Value: val, Rev: ev.Rev,
			})
		}
	}
	// All-reads / all-deduped batches still occupy the index.
	_ = m.eng.AdvanceFloor(idx)
	return results, events
}
