package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/etcd"
	"repro/internal/kube"
	"repro/internal/nfs"
)

// TestSampleElapsedVirtualTime pins Sample's total virtual cost: n
// measurements separated by (n-1) settle pauses, with no trailing pause
// after the final sample.
func TestSampleElapsedVirtualTime(t *testing.T) {
	c, clk := newTestCluster(t)
	inj := New(c)
	const (
		n       = 4
		settle  = 5 * time.Second
		measure = 3 * time.Second
	)
	start := clk.Now()
	samples, err := inj.Sample(n, settle, func() (time.Duration, error) {
		clk.Sleep(measure)
		return measure, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != n {
		t.Fatalf("samples = %d", len(samples))
	}
	want := n*measure + (n-1)*settle
	if got := clk.Since(start); got != want {
		t.Fatalf("elapsed virtual time = %v, want exactly %v (no settle after final sample)", got, want)
	}
}

// TestSamplePartialResultsOnError pins that a failing measurement
// returns the samples collected so far alongside the error.
func TestSamplePartialResultsOnError(t *testing.T) {
	c, _ := newTestCluster(t)
	inj := New(c)
	boom := errors.New("boom")
	calls := 0
	samples, err := inj.Sample(5, time.Second, func() (time.Duration, error) {
		calls++
		if calls == 3 {
			return 0, boom
		}
		return time.Duration(calls) * time.Second, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if len(samples) != 2 || samples[0] != time.Second || samples[1] != 2*time.Second {
		t.Fatalf("partial samples = %v", samples)
	}
}

func TestMinMaxTable(t *testing.T) {
	cases := []struct {
		name   string
		in     []time.Duration
		lo, hi time.Duration
	}{
		{"empty", nil, 0, 0},
		{"single", []time.Duration{3 * time.Second}, 3 * time.Second, 3 * time.Second},
		{"sorted", []time.Duration{1 * time.Second, 2 * time.Second, 5 * time.Second}, 1 * time.Second, 5 * time.Second},
		{"unsorted", []time.Duration{4 * time.Second, 1 * time.Second, 3 * time.Second}, 1 * time.Second, 4 * time.Second},
		{"duplicates", []time.Duration{2 * time.Second, 2 * time.Second}, 2 * time.Second, 2 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi := MinMax(tc.in)
			if lo != tc.lo || hi != tc.hi {
				t.Fatalf("MinMax(%v) = %v-%v, want %v-%v", tc.in, lo, hi, tc.lo, tc.hi)
			}
		})
	}
}

// TestMeasurePodRecoveryAtomicSnapshot is the regression test for the
// before-set race: the victim pick, the before-set snapshot and the
// kill now happen under one cluster quiescent point, so a pod that
// already existed at the kill instant can never be counted as the
// recovery. With decoy pods churning on the same selector, every
// measurement must still reflect a post-kill pod creation — at minimum
// the scheduler+runtime path (~0.5s nominal), never the near-zero
// reading a pre-kill pod registering Running would produce.
func TestMeasurePodRecoveryAtomicSnapshot(t *testing.T) {
	c, clk := newTestCluster(t)
	deployService(t, c, clk, "svc", 2*time.Second)
	inj := New(c)

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			spec := kube.PodSpec{
				Name:          fmt.Sprintf("zzz-decoy-%03d", k),
				Labels:        map[string]string{"app": "svc"},
				RestartPolicy: kube.RestartNever,
				Containers: []kube.ContainerSpec{{
					Name:       "main",
					StartDelay: 50 * time.Millisecond,
					Run: func(ctx *kube.ContainerCtx) int {
						ctx.Sleep(100 * time.Millisecond)
						return 0
					},
				}},
			}
			_, _ = c.CreatePod(spec)
			clk.Sleep(200 * time.Millisecond)
		}
	}()

	sel := map[string]string{"app": "svc"}
	for trial := 0; trial < 3; trial++ {
		// Measure only while the deployment's own pod is Running, so the
		// victim is the service replica (name-sorted first), not a decoy.
		deadline := clk.Now().Add(time.Minute)
		for clk.Now().Before(deadline) {
			if p := inj.runningPod(sel); p != nil && strings.HasPrefix(p.Name(), "svc") {
				break
			}
			clk.Sleep(50 * time.Millisecond)
		}
		rec, err := inj.MeasurePodRecovery(sel, time.Minute)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rec < 300*time.Millisecond {
			t.Fatalf("trial %d: recovery = %v — a pod existing before the kill was counted as the replacement", trial, rec)
		}
	}
}

// TestMeasureContainerRecoveryCountsNewRestarts pins that the
// measurement demands a restart beyond the count observed at injection
// time: a container that had already restarted before the experiment
// must not satisfy the detector.
func TestMeasureContainerRecoveryCountsNewRestarts(t *testing.T) {
	c, clk := newTestCluster(t)
	deployService(t, c, clk, "svc", 500*time.Millisecond)
	pod := c.Pods(map[string]string{"app": "svc"})[0]
	inj := New(c)

	// Pre-existing restart: crash once and wait for the kubelet to
	// bring the container back.
	if err := c.CrashContainer(pod.Name(), "srv"); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(time.Minute)
	for clk.Now().Before(deadline) {
		if _, _, running := pod.ExitInfo("srv"); running && pod.Restarts() == 1 {
			break
		}
		clk.Sleep(20 * time.Millisecond)
	}
	if pod.Restarts() != 1 {
		t.Fatalf("setup: restarts = %d, want 1", pod.Restarts())
	}

	rec, err := inj.MeasureContainerRecovery(pod.Name(), "srv", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if pod.Restarts() != 2 {
		t.Fatalf("restarts after measurement = %d, want 2", pod.Restarts())
	}
	// Second in-place restart pays CrashLoopBackOff (10s base) plus the
	// start delay; a pre-existing restart being miscounted would return
	// in under a poll grain.
	if rec < time.Second {
		t.Fatalf("container recovery = %v, suspiciously fast", rec)
	}
}

func TestMeasureContainerRecoveryNoTarget(t *testing.T) {
	c, _ := newTestCluster(t)
	inj := New(c)
	if _, err := inj.MeasureContainerRecovery("ghost", "srv", time.Second); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v, want ErrNoTarget", err)
	}
}

func TestMeasurePodRecoveryNoRecovery(t *testing.T) {
	c, clk := newTestCluster(t)
	// Slow replacement: the deployment's pods take ~7s to start, so a
	// 1s budget must report ErrNoRecovery.
	deployService(t, c, clk, "svc", 7*time.Second)
	inj := New(c)
	_, err := inj.MeasurePodRecovery(map[string]string{"app": "svc"}, time.Second)
	if !errors.Is(err, ErrNoRecovery) {
		t.Fatalf("err = %v, want ErrNoRecovery", err)
	}
}

func TestMeasureContainerRecoveryNoRecovery(t *testing.T) {
	c, clk := newTestCluster(t)
	spec := kube.PodSpec{
		Name:          "oneshot",
		RestartPolicy: kube.RestartNever,
		Containers:    []kube.ContainerSpec{{Name: "main", StartDelay: 100 * time.Millisecond}},
	}
	if _, err := c.CreatePod(spec); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(time.Minute)
	for c.Pod("oneshot") == nil || c.Pod("oneshot").Phase() != kube.PodRunning {
		if !clk.Now().Before(deadline) {
			t.Fatal("pod never ran")
		}
		clk.Sleep(20 * time.Millisecond)
	}
	inj := New(c)
	_, err := inj.MeasureContainerRecovery("oneshot", "main", 2*time.Second)
	if !errors.Is(err, ErrNoRecovery) {
		t.Fatalf("err = %v, want ErrNoRecovery", err)
	}
}

// ---- compound-fault engine ----------------------------------------

func TestJitterIsSeedDeterministic(t *testing.T) {
	base := Schedule{
		{At: 30 * time.Second, Fault: "nfs-stall", Target: "nfs"},
		{At: 60 * time.Second, Fault: "nfs-heal", Target: "nfs"},
		{At: 90 * time.Second, Fault: "kill-pod", Target: "learner"},
	}
	a := Jitter(rand.New(rand.NewSource(7)), base, 0.2)
	b := Jitter(rand.New(rand.NewSource(7)), base, 0.2)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if a[k].At != b[k].At || a[k].Fault != b[k].Fault {
			t.Fatalf("step %d differs: %+v vs %+v", k, a[k], b[k])
		}
	}
	// Jitter must not reorder: the heal stays after the stall.
	for k := 1; k < len(a); k++ {
		if a[k].At < a[k-1].At {
			t.Fatalf("schedule reordered: %v before %v", a[k], a[k-1])
		}
	}
	if a[0].Fault != "nfs-stall" || a[1].Fault != "nfs-heal" {
		t.Fatalf("order broken: %v", a)
	}
}

func TestExecuteRunsStepsInOrderAtOffsets(t *testing.T) {
	c, clk := newTestCluster(t)
	inj := New(c)
	var fired []string
	sched := Schedule{
		{At: 2 * time.Second, Fault: "b", Apply: func(*Injector) error { fired = append(fired, "b"); return nil }},
		{At: 1 * time.Second, Fault: "a", Apply: func(*Injector) error { fired = append(fired, "a"); return errors.New("a failed") }},
		{At: 3 * time.Second, Fault: "c", Apply: func(*Injector) error { fired = append(fired, "c"); return nil }},
	}
	start := clk.Now()
	results := inj.Execute(sched)
	if got := strings.Join(fired, ""); got != "abc" {
		t.Fatalf("execution order = %q", got)
	}
	if results[0].Err == "" || results[1].Err != "" {
		t.Fatalf("error recording wrong: %+v", results)
	}
	for k, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if results[k].FiredAt < want {
			t.Fatalf("step %d fired at %v, before its offset %v", k, results[k].FiredAt, want)
		}
	}
	if clk.Since(start) < 3*time.Second {
		t.Fatal("Execute returned before the last offset")
	}
}

func TestFaultPrimitivesAndHealAll(t *testing.T) {
	c, clk := newTestCluster(t)
	nfsSrv := nfs.NewServer(clk)
	etcdStore := etcd.New(1, clk)
	t.Cleanup(etcdStore.Close)
	inj := New(c).AttachNFS(nfsSrv).AttachEtcd(etcdStore)

	// Unattached injectors fail loudly.
	bare := New(c)
	if err := bare.StallNFS(); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("StallNFS unattached: %v", err)
	}
	if _, err := bare.PartitionEtcdLeader(); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("PartitionEtcdLeader unattached: %v", err)
	}

	if err := inj.StallNFS(); err != nil {
		t.Fatal(err)
	}
	if nfsSrv.FaultMode() != nfs.FaultStall {
		t.Fatal("NFS not stalled")
	}

	leader, err := inj.PartitionEtcdLeader()
	if err != nil {
		t.Fatal(err)
	}

	deployService(t, c, clk, "svc", 500*time.Millisecond)
	sel := map[string]string{"app": "svc"}
	node, err := inj.NodeOf(sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inj.SkewNodeClockOf(sel, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if off := c.NodeClock(node).Now().Sub(clk.Now()); off != 30*time.Second {
		t.Fatalf("skew = %v", off)
	}
	if err := c.CordonNode(node); err != nil {
		t.Fatal(err)
	}

	inj.HealAll()
	if nfsSrv.FaultMode() != nfs.FaultNone {
		t.Fatal("HealAll left NFS stalled")
	}
	if !c.NodeClock(node).Now().Equal(clk.Now()) {
		t.Fatal("HealAll left node skewed")
	}
	for _, n := range c.Nodes() {
		if n.Cordoned() || n.Down() {
			t.Fatalf("HealAll left node %s cordoned/down", n.Spec.Name)
		}
	}
	// The healed store must accept writes again (single replica: the
	// partition was a full outage).
	if _, err := etcdStore.Put("/k", "v"); err != nil {
		t.Fatalf("etcd write after HealAll: %v", err)
	}
	_ = leader

	// Kill primitives.
	if _, err := inj.KillOnePod(map[string]string{"app": "ghost"}); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("KillOnePod no match: %v", err)
	}
	if n, err := inj.KillAllPods(sel); err != nil || n != 1 {
		t.Fatalf("KillAllPods = %d, %v", n, err)
	}
}
