package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/kube"
)

func newTestCluster(t *testing.T) (*kube.Cluster, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	c := kube.NewCluster(kube.Config{Clock: clk},
		kube.NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		kube.NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	t.Cleanup(func() {
		c.Stop()
		clk.Close()
	})
	return c, clk
}

func deployService(t *testing.T, c *kube.Cluster, clk *clock.Sim, app string, start time.Duration) {
	t.Helper()
	tmpl := kube.PodSpec{
		Labels:        map[string]string{"app": app},
		RestartPolicy: kube.RestartAlways,
		Containers:    []kube.ContainerSpec{{Name: "srv", StartDelay: start}},
	}
	if _, err := c.CreateDeployment(app, 1, tmpl); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(time.Minute)
	for clk.Now().Before(deadline) {
		pods := c.Pods(map[string]string{"app": app})
		if len(pods) == 1 && pods[0].Phase() == kube.PodRunning {
			return
		}
		clk.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("service %s never came up", app)
}

func TestMeasurePodRecovery(t *testing.T) {
	c, clk := newTestCluster(t)
	deployService(t, c, clk, "svc", 2*time.Second)
	inj := New(c)
	rec, err := inj.MeasurePodRecovery(map[string]string{"app": "svc"}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// schedule+create+start ≈ 2.5-3.5s with jitter.
	if rec < time.Second || rec > 10*time.Second {
		t.Fatalf("recovery = %v, want 1-10s", rec)
	}
}

func TestMeasurePodRecoveryNoTarget(t *testing.T) {
	c, _ := newTestCluster(t)
	inj := New(c)
	_, err := inj.MeasurePodRecovery(map[string]string{"app": "ghost"}, time.Second)
	if !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v, want ErrNoTarget", err)
	}
}

func TestMeasureContainerRecovery(t *testing.T) {
	c, clk := newTestCluster(t)
	deployService(t, c, clk, "svc", 500*time.Millisecond)
	pod := c.Pods(map[string]string{"app": "svc"})[0]
	inj := New(c)
	rec, err := inj.MeasureContainerRecovery(pod.Name(), "srv", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// In-place restart: just the process start delay (first restart has
	// no backoff).
	if rec < 100*time.Millisecond || rec > 5*time.Second {
		t.Fatalf("container recovery = %v", rec)
	}
}

func TestSampleCollectsN(t *testing.T) {
	c, clk := newTestCluster(t)
	deployService(t, c, clk, "svc", time.Second)
	inj := New(c)
	samples, err := inj.Sample(3, 2*time.Second, func() (time.Duration, error) {
		return inj.MeasurePodRecovery(map[string]string{"app": "svc"}, time.Minute)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	lo, hi := MinMax(samples)
	if lo <= 0 || hi < lo {
		t.Fatalf("range = %v-%v", lo, hi)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	lo, hi := MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty range = %v-%v", lo, hi)
	}
}

func TestNodeCrashAndRestartHelpers(t *testing.T) {
	c, clk := newTestCluster(t)
	inj := New(c)
	if err := inj.CrashNode("n1"); err != nil {
		t.Fatal(err)
	}
	if !c.Nodes()[0].Down() {
		t.Fatal("node not down after CrashNode")
	}
	if err := inj.RestartNode("n1"); err != nil {
		t.Fatal(err)
	}
	if c.Nodes()[0].Down() {
		t.Fatal("node down after RestartNode")
	}
	_ = clk
}
