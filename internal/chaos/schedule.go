package chaos

import (
	"math/rand"
	"sort"
	"time"
)

// Step is one scheduled fault action in a compound-fault scenario. The
// (At, Fault, Target) triple is the step's replayable identity — it is
// what campaign reports record and what seed-determinism compares — and
// Apply is the executable side, resolved against live platform state
// when the step fires.
type Step struct {
	// At is the step's virtual offset from schedule start.
	At time.Duration `json:"at"`
	// Fault names the fault-taxonomy entry (e.g. "kill-pod",
	// "nfs-stall", "etcd-partition-leader").
	Fault string `json:"fault"`
	// Target names the symbolic victim (e.g. "learner", "node-of:
	// learner"), not a resolved pod name: resolved names embed creation
	// sequence numbers that legitimately differ across runs.
	Target string `json:"target"`
	// Apply performs the fault (or heal). It is nil in recorded copies.
	Apply func(i *Injector) error `json:"-"`
}

// Schedule is an injection script: steps at virtual offsets.
type Schedule []Step

// StepResult records one executed step.
type StepResult struct {
	Step
	// FiredAt is the virtual offset at which Apply actually ran (>= At;
	// late only if the previous step overran).
	FiredAt time.Duration `json:"fired_at"`
	// Err is the error Apply returned, if any.
	Err string `json:"err,omitempty"`
}

// Jitter returns a copy of base with each offset deterministically
// perturbed by up to ±frac of itself, drawn from rng — the seeded,
// replayable randomness of a campaign schedule: the same rng state
// yields the identical schedule. Order among steps is preserved even
// when jittered windows overlap, so heals cannot jump ahead of the
// faults they revert.
func Jitter(rng *rand.Rand, base Schedule, frac float64) Schedule {
	out := make(Schedule, len(base))
	copy(out, base)
	if frac <= 0 {
		return out
	}
	for k := range out {
		f := 1 + (rng.Float64()*2-1)*frac
		out[k].At = time.Duration(float64(out[k].At) * f)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	for k := 1; k < len(out); k++ {
		if out[k].At < out[k-1].At {
			out[k].At = out[k-1].At
		}
	}
	return out
}

// Execute runs the schedule against the injector's platform: it sleeps
// on the virtual clock to each step's offset (measured from the moment
// Execute is called) and applies the step, collecting per-step results.
// Execution is strictly sequential in schedule order; a failing step is
// recorded and does not stop the script (later heals must still run).
func (i *Injector) Execute(sched Schedule) []StepResult {
	ordered := make(Schedule, len(sched))
	copy(ordered, sched)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].At < ordered[b].At })

	start := i.clk.Now()
	results := make([]StepResult, 0, len(ordered))
	for _, st := range ordered {
		if wait := st.At - i.clk.Since(start); wait > 0 {
			i.clk.Sleep(wait)
		}
		res := StepResult{Step: st, FiredAt: i.clk.Since(start)}
		res.Step.Apply = nil
		if st.Apply != nil {
			if err := st.Apply(i); err != nil {
				res.Err = err.Error()
			}
		}
		results = append(results, res)
	}
	return results
}
