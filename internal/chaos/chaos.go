// Package chaos is the failure-injection and recovery-measurement
// harness behind the paper's Fig. 4 ("These times were calculated by
// manually crashing various components (using the kubectl tool of K8S)
// and measuring time taken for the component to restart"). It kills
// pods, containers and nodes, and measures — in virtual time — how long
// the platform takes to restore the component.
package chaos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/etcd"
	"repro/internal/kube"
	"repro/internal/nfs"
)

// Common errors.
var (
	// ErrNoTarget indicates no pod matched the selector.
	ErrNoTarget = errors.New("chaos: no matching target")
	// ErrNoRecovery indicates the component did not recover in time.
	ErrNoRecovery = errors.New("chaos: no recovery before deadline")
)

// pollGrain is the recovery-detection polling interval (virtual time);
// it bounds measurement quantization error.
const pollGrain = 20 * time.Millisecond

// Injector performs fault injection against one cluster and, when the
// handles are attached, the platform's shared substrates (etcd, NFS).
type Injector struct {
	cluster *kube.Cluster
	clk     clock.Clock
	etcd    *etcd.Store
	nfs     *nfs.Server
}

// New creates an injector for the cluster.
func New(cluster *kube.Cluster) *Injector {
	return &Injector{cluster: cluster, clk: cluster.Clock()}
}

// KillPod crash-kills the named pod (kubectl delete pod --force).
func (i *Injector) KillPod(name string) error {
	return i.cluster.DeletePod(name)
}

// CrashNode fails an entire node.
func (i *Injector) CrashNode(name string) error {
	return i.cluster.CrashNode(name)
}

// RestartNode heals a crashed node.
func (i *Injector) RestartNode(name string) error {
	return i.cluster.RestartNode(name)
}

// runningPod returns the first Running pod matching selector.
func (i *Injector) runningPod(selector map[string]string) *kube.Pod {
	for _, p := range i.cluster.Pods(selector) {
		if p.Phase() == kube.PodRunning {
			return p
		}
	}
	return nil
}

// MeasurePodRecovery kills one Running pod matching selector and
// measures the virtual time until a replacement — a pod that did not
// exist before the kill — is Running. This is the paper's component-
// recovery experiment: the pod's controller (Deployment, StatefulSet or
// Job) provides the recovery. Pre-existing replicas (e.g. the second API
// instance) keep serving but do not count as recovery of the killed one.
func (i *Injector) MeasurePodRecovery(selector map[string]string, timeout time.Duration) (time.Duration, error) {
	victim := i.runningPod(selector)
	if victim == nil {
		return 0, fmt.Errorf("selecting %v: %w", selector, ErrNoTarget)
	}
	start := i.clk.Now()
	// Snapshot and kill under one cluster quiescent point: a pod the
	// controller schedules concurrently must not land in the before-set
	// (it IS the recovery) nor, if created pre-kill, count as one.
	snapshot, err := i.cluster.DeletePodAndSnapshot(victim.Name(), selector)
	if err != nil {
		return 0, fmt.Errorf("killing %s: %w", victim.Name(), err)
	}
	before := make(map[*kube.Pod]bool, len(snapshot))
	for _, p := range snapshot {
		before[p] = true
	}
	deadline := start.Add(timeout)
	for i.clk.Now().Before(deadline) {
		for _, p := range i.cluster.Pods(selector) {
			if !before[p] && p.Phase() == kube.PodRunning {
				return i.clk.Since(start), nil
			}
		}
		i.clk.Sleep(pollGrain)
	}
	return 0, fmt.Errorf("selector %v after %v: %w", selector, timeout, ErrNoRecovery)
}

// MeasureContainerRecovery crashes a container process in place and
// measures the virtual time until the kubelet has it running again.
func (i *Injector) MeasureContainerRecovery(podName, container string, timeout time.Duration) (time.Duration, error) {
	pod := i.cluster.Pod(podName)
	if pod == nil {
		return 0, fmt.Errorf("pod %s: %w", podName, ErrNoTarget)
	}
	restartsBefore := pod.Restarts()
	start := i.clk.Now()
	if err := i.cluster.CrashContainer(podName, container); err != nil {
		return 0, fmt.Errorf("crashing %s/%s: %w", podName, container, err)
	}
	deadline := start.Add(timeout)
	for i.clk.Now().Before(deadline) {
		if _, _, running := pod.ExitInfo(container); running && pod.Restarts() > restartsBefore {
			return i.clk.Since(start), nil
		}
		i.clk.Sleep(pollGrain)
	}
	return 0, fmt.Errorf("container %s/%s after %v: %w", podName, container, timeout, ErrNoRecovery)
}

// Sample repeats a measurement n times with the given settle pause
// between runs and returns the observed durations. The pause separates
// consecutive measurements only — there is none after the last, so the
// total virtual cost is exactly the measurements plus (n-1) settles and
// downstream schedules (campaign steps, back-to-back experiments) are
// not pushed late by a trailing idle window.
func (i *Injector) Sample(n int, settle time.Duration, measure func() (time.Duration, error)) ([]time.Duration, error) {
	out := make([]time.Duration, 0, n)
	for k := 0; k < n; k++ {
		if k > 0 {
			i.clk.Sleep(settle)
		}
		d, err := measure()
		if err != nil {
			return out, fmt.Errorf("sample %d: %w", k, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// MinMax summarizes a sample as its range, the format of the paper's
// Fig. 4 ("3-5s").
func MinMax(ds []time.Duration) (lo, hi time.Duration) {
	for _, d := range ds {
		if lo == 0 || d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return lo, hi
}
