package chaos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/etcd"
	"repro/internal/nfs"
)

// ErrNotAttached indicates a fault primitive needs a substrate handle
// (etcd, NFS) that was never attached to the injector.
var ErrNotAttached = errors.New("chaos: substrate not attached")

// AttachEtcd hands the injector the platform's coordination store so it
// can inject partitions and replica crashes. Returns the injector for
// chaining at construction.
func (i *Injector) AttachEtcd(s *etcd.Store) *Injector {
	i.etcd = s
	return i
}

// AttachNFS hands the injector the shared-volume server so it can
// inject volume flaps.
func (i *Injector) AttachNFS(s *nfs.Server) *Injector {
	i.nfs = s
	return i
}

// ---- Pod and node targeting ---------------------------------------

// KillOnePod crash-kills the first Running pod matching selector and
// returns its name.
func (i *Injector) KillOnePod(selector map[string]string) (string, error) {
	victim := i.runningPod(selector)
	if victim == nil {
		return "", fmt.Errorf("selecting %v: %w", selector, ErrNoTarget)
	}
	if err := i.cluster.DeletePod(victim.Name()); err != nil {
		return "", err
	}
	return victim.Name(), nil
}

// KillAllPods crash-kills every pod matching selector simultaneously (a
// correlated outage, e.g. both API replicas at once) and returns how
// many it killed.
func (i *Injector) KillAllPods(selector map[string]string) (int, error) {
	pods := i.cluster.Pods(selector)
	if len(pods) == 0 {
		return 0, fmt.Errorf("selecting %v: %w", selector, ErrNoTarget)
	}
	for _, p := range pods {
		_ = i.cluster.DeletePod(p.Name())
	}
	return len(pods), nil
}

// AwaitRunning blocks (in virtual time) until a Running pod matches
// selector, polling at the measurement grain. It makes chained faults
// land deterministically — "crash the node the learner *rescheduled
// onto*" must first wait out the reschedule.
func (i *Injector) AwaitRunning(selector map[string]string, timeout time.Duration) error {
	deadline := i.clk.Now().Add(timeout)
	for i.clk.Now().Before(deadline) {
		if i.runningPod(selector) != nil {
			return nil
		}
		i.clk.Sleep(pollGrain)
	}
	return fmt.Errorf("awaiting %v for %v: %w", selector, timeout, ErrNoTarget)
}

// NodeOf returns the node hosting the first Running pod matching
// selector — the targeting step of node-scoped faults ("the node the
// learner is on").
func (i *Injector) NodeOf(selector map[string]string) (string, error) {
	p := i.runningPod(selector)
	if p == nil {
		return "", fmt.Errorf("selecting %v: %w", selector, ErrNoTarget)
	}
	node := p.NodeName()
	if node == "" {
		return "", fmt.Errorf("pod %s not yet bound: %w", p.Name(), ErrNoTarget)
	}
	return node, nil
}

// CrashNodeOf crashes the node hosting the first Running pod matching
// selector and returns the node's name (for a later RestartNode).
func (i *Injector) CrashNodeOf(selector map[string]string) (string, error) {
	node, err := i.NodeOf(selector)
	if err != nil {
		return "", err
	}
	return node, i.cluster.CrashNode(node)
}

// DrainNodeOf drains the node hosting the first Running pod matching
// selector (kubectl drain — with an eviction grace period this flows
// through the two-phase checkpoint-then-evict protocol) and returns the
// node's name for a later UncordonNode.
func (i *Injector) DrainNodeOf(selector map[string]string) (string, error) {
	node, err := i.NodeOf(selector)
	if err != nil {
		return "", err
	}
	return node, i.cluster.DrainNode(node)
}

// UncordonNode returns a drained node to service.
func (i *Injector) UncordonNode(name string) error {
	return i.cluster.UncordonNode(name)
}

// SkewNodeClockOf offsets the local clock of the node hosting the first
// Running pod matching selector, returning the node's name. A zero
// offset later heals it.
func (i *Injector) SkewNodeClockOf(selector map[string]string, offset time.Duration) (string, error) {
	node, err := i.NodeOf(selector)
	if err != nil {
		return "", err
	}
	return node, i.cluster.SetNodeSkew(node, offset)
}

// ---- NFS volume flap ----------------------------------------------

// StallNFS begins an NFS volume flap: data operations on every volume
// block in virtual time until HealNFS. Hard-mount semantics — writes
// pause, none are lost.
func (i *Injector) StallNFS() error {
	if i.nfs == nil {
		return fmt.Errorf("stalling NFS: %w", ErrNotAttached)
	}
	i.nfs.InjectFault(nfs.FaultStall)
	return nil
}

// WedgeVolumeFile writes a marker file onto a job's shared volume — the
// hook learners poll to simulate the alive-but-stuck failure mode (see
// learner.WedgePath): the process stays up and keeps reporting TRAINING
// but makes no progress, so only a liveness deadline can catch it.
// Unlike flaps and partitions, the marker is volume state, not a server
// fault — HealAll deliberately leaves it in place, because a wedged
// process does not get better when the infrastructure does.
func (i *Injector) WedgeVolumeFile(volume, path string) error {
	if i.nfs == nil {
		return fmt.Errorf("wedging volume %s: %w", volume, ErrNotAttached)
	}
	vol, err := i.nfs.Volume(volume)
	if err != nil {
		return fmt.Errorf("wedging volume %s: %w", volume, err)
	}
	vol.Write(path, []byte("wedged"))
	return nil
}

// HealNFS ends a volume flap; stalled operations complete.
func (i *Injector) HealNFS() error {
	if i.nfs == nil {
		return fmt.Errorf("healing NFS: %w", ErrNotAttached)
	}
	i.nfs.Heal()
	return nil
}

// ---- etcd partitions ----------------------------------------------

// PartitionEtcdLeader cuts the current etcd leader off from its peers
// (and clients reach only the majority side), forcing an election. The
// partitioned replica's id is returned for HealEtcd. With a single
// replica this partitions the whole store — a full etcd outage.
func (i *Injector) PartitionEtcdLeader() (int, error) {
	if i.etcd == nil {
		return 0, fmt.Errorf("partitioning etcd: %w", ErrNotAttached)
	}
	leader := i.etcd.LeaderID()
	i.etcd.PartitionNode(leader)
	return leader, nil
}

// HealEtcd reconnects a partitioned etcd replica.
func (i *Injector) HealEtcd(id int) error {
	if i.etcd == nil {
		return fmt.Errorf("healing etcd: %w", ErrNotAttached)
	}
	i.etcd.HealNode(id)
	return nil
}

// SkewEtcdClock offsets one etcd replica's local clock readings by
// offset (0 heals it). Against the leader this is the lease-read
// killer fault: a clock stepped past the raft drift bound must
// invalidate the leader's check-quorum lease and push reads back to
// full confirmation rounds rather than let a stale deadline serve
// stale data. Timers keep firing truly — skew shifts readings, not
// rates.
func (i *Injector) SkewEtcdClock(id int, offset time.Duration) error {
	if i.etcd == nil {
		return fmt.Errorf("skewing etcd clock: %w", ErrNotAttached)
	}
	i.etcd.SkewNodeClock(id, offset)
	return nil
}

// SkewEtcdLeaderClock applies SkewEtcdClock to the current leader and
// returns its id for a later heal.
func (i *Injector) SkewEtcdLeaderClock(offset time.Duration) (int, error) {
	if i.etcd == nil {
		return 0, fmt.Errorf("skewing etcd clock: %w", ErrNotAttached)
	}
	leader := i.etcd.LeaderID()
	if leader < 0 {
		return 0, fmt.Errorf("skewing etcd clock: %w", ErrNoTarget)
	}
	i.etcd.SkewNodeClock(leader, offset)
	return leader, nil
}

// HealAll reverts every standing fault this injector can have left
// behind: NFS flap, etcd partitions and replica clock skew,
// crashed/cordoned nodes, and node clock skew. Campaign scenarios run it deferred so a failed scenario
// cannot leak faults into teardown (an unhealed NFS stall would spin
// against a closing clock).
func (i *Injector) HealAll() {
	if i.nfs != nil {
		i.nfs.Heal()
	}
	if i.etcd != nil {
		for _, id := range i.etcd.Nodes() {
			i.etcd.HealNode(id)
			i.etcd.SkewNodeClock(id, 0)
		}
	}
	for _, n := range i.cluster.Nodes() {
		name := n.Spec.Name
		if n.Down() {
			_ = i.cluster.RestartNode(name)
		}
		if n.Cordoned() {
			_ = i.cluster.UncordonNode(name)
		}
		_ = i.cluster.SetNodeSkew(name, 0)
	}
}
