// Package trace is a deterministic span recorder for the simulated
// platform. Spans are timed on internal/clock (virtual cluster time)
// and identified by content-derived IDs: a span's ID is a hash of its
// trace ID, parent span ID, name, and per-(parent,name) sibling index.
// Two runs of the same seeded simulation therefore produce
// byte-identical span trees — traces are reproducible artifacts, not
// best-effort samples.
//
// The root span of a job's trace has a fixed, derivable context
// (JobRoot), so any component that knows the job ID can attach spans
// to the trace without explicit propagation. This is what keeps one
// job one trace across crash, eviction, and redeploy: a restarted
// learner re-parents its new attempt span under the same root.
//
// All APIs are nil-safe: a nil *Recorder returns nil *Span handles
// whose methods no-op, so call sites need no tracing-enabled guards.
package trace

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
)

// TraceID identifies one trace. Job traces use the job ID directly.
type TraceID string

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the span ID as fixed-width hex (the wire form used
// in envelopes and JSON exports).
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseSpanID parses the hex form produced by SpanID.String. Returns
// 0 for anything unparsable (treated as "no span").
func ParseSpanID(s string) SpanID {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return SpanID(v)
}

// SpanContext is the propagatable reference to a span: enough to
// parent new spans under it from another process.
type SpanContext struct {
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id"`
}

// Valid reports whether the context references a real span.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != 0 }

func hashSpanID(trace TraceID, parent SpanID, name string, sibling int) SpanID {
	h := fnv.New64a()
	h.Write([]byte(trace))
	h.Write([]byte{0})
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(parent) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	h.Write([]byte{0})
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(sibling) >> (8 * i))
	}
	h.Write(buf[:])
	id := SpanID(h.Sum64())
	if id == 0 {
		id = 1
	}
	return id
}

// JobRoot returns the deterministic root span context for a job's
// trace. Any component holding the job ID can parent spans here
// without propagation, which is how traces survive crash/redeploy.
func JobRoot(jobID string) SpanContext {
	t := TraceID(jobID)
	return SpanContext{TraceID: t, SpanID: hashSpanID(t, 0, "job", 0)}
}

// SpanEvent is a point-in-time annotation on a span.
type SpanEvent struct {
	Name string    `json:"name"`
	Time time.Time `json:"time"`
}

type span struct {
	ctx    SpanContext
	parent SpanID
	name   string
	start  time.Time
	end    time.Time
	ended  bool
	attrs  map[string]string
	events []SpanEvent
}

type sibKey struct {
	parent SpanID
	name   string
}

type traceState struct {
	spans    map[SpanID]*span
	order    []SpanID // insertion order, for deterministic export ties
	siblings map[sibKey]int
}

// Recorder collects spans across all traces. It is safe for
// concurrent use; its mutex is a leaf lock (no recorder method calls
// out while holding it).
type Recorder struct {
	clk    clock.Clock
	mu     sync.Mutex
	traces map[TraceID]*traceState
}

// NewRecorder returns a Recorder timing spans on clk.
func NewRecorder(clk clock.Clock) *Recorder {
	return &Recorder{clk: clk, traces: make(map[TraceID]*traceState)}
}

// Span is a handle to a recorded span. A nil Span (from a nil
// Recorder or an invalid parent) no-ops on every method.
type Span struct {
	rec  *Recorder
	data *span
}

func (r *Recorder) state(t TraceID) *traceState {
	ts := r.traces[t]
	if ts == nil {
		ts = &traceState{spans: make(map[SpanID]*span), siblings: make(map[sibKey]int)}
		r.traces[t] = ts
	}
	return ts
}

func (r *Recorder) startLocked(ts *traceState, trace TraceID, parent SpanID, name string, start time.Time) *span {
	k := sibKey{parent: parent, name: name}
	idx := ts.siblings[k]
	ts.siblings[k] = idx + 1
	s := &span{
		ctx:    SpanContext{TraceID: trace, SpanID: hashSpanID(trace, parent, name, idx)},
		parent: parent,
		name:   name,
		start:  start,
	}
	ts.spans[s.ctx.SpanID] = s
	ts.order = append(ts.order, s.ctx.SpanID)
	return s
}

// StartSpan starts a child span of parent named name at the current
// virtual time. Returns nil if the recorder is nil or parent invalid.
func (r *Recorder) StartSpan(parent SpanContext, name string) *Span {
	if r == nil {
		return nil
	}
	return r.StartSpanAt(parent, name, r.clk.Now())
}

// StartSpanAt is StartSpan with an explicit (possibly retroactive)
// start time — used to record work measured after the fact, like an
// NFS stall detected by comparing expected and actual chunk duration.
func (r *Recorder) StartSpanAt(parent SpanContext, name string, start time.Time) *Span {
	if r == nil || !parent.Valid() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := r.state(parent.TraceID)
	s := r.startLocked(ts, parent.TraceID, parent.SpanID, name, start)
	return &Span{rec: r, data: s}
}

// Root returns the root span of jobID's trace, creating it (started
// now) if it does not exist yet. Creation is idempotent: the root has
// a fixed ID, so concurrent callers converge on one span.
func (r *Recorder) Root(jobID string) *Span {
	if r == nil {
		return nil
	}
	return r.RootAt(jobID, r.clk.Now())
}

// RootAt is Root with an explicit start time for the create case.
func (r *Recorder) RootAt(jobID string, start time.Time) *Span {
	if r == nil {
		return nil
	}
	rc := JobRoot(jobID)
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := r.state(rc.TraceID)
	if s, ok := ts.spans[rc.SpanID]; ok {
		return &Span{rec: r, data: s}
	}
	s := &span{ctx: rc, name: "job", start: start}
	ts.spans[rc.SpanID] = s
	ts.order = append(ts.order, rc.SpanID)
	ts.siblings[sibKey{parent: 0, name: "job"}] = 1
	return &Span{rec: r, data: s}
}

// Lookup returns a handle to an already-recorded span, or nil.
func (r *Recorder) Lookup(sc SpanContext) *Span {
	if r == nil || !sc.Valid() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := r.traces[sc.TraceID]
	if ts == nil {
		return nil
	}
	s := ts.spans[sc.SpanID]
	if s == nil {
		return nil
	}
	return &Span{rec: r, data: s}
}

// Context returns the span's propagatable context (zero if nil).
func (s *Span) Context() SpanContext {
	if s == nil || s.data == nil {
		return SpanContext{}
	}
	return s.data.ctx
}

// SetAttr sets a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.rec == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if s.data.attrs == nil {
		s.data.attrs = make(map[string]string)
	}
	s.data.attrs[key] = value
}

// SetPhase tags the span with a critical-path phase (see PhaseXxx
// constants). Spans without a phase attribute never win critical-path
// attribution; their time falls to an ancestor or to "control".
func (s *Span) SetPhase(phase string) { s.SetAttr(AttrPhase, phase) }

// Event records a point-in-time annotation at the current virtual time.
func (s *Span) Event(name string) {
	if s == nil || s.rec == nil {
		return
	}
	s.EventAt(name, s.rec.clk.Now())
}

// EventAt records an annotation with an explicit timestamp.
func (s *Span) EventAt(name string, at time.Time) {
	if s == nil || s.rec == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	s.data.events = append(s.data.events, SpanEvent{Name: name, Time: at})
}

// End marks the span finished at the current virtual time. Idempotent:
// only the first End (or EndAt) sticks.
func (s *Span) End() {
	if s == nil || s.rec == nil {
		return
	}
	s.EndAt(s.rec.clk.Now())
}

// EndAt is End with an explicit end time.
func (s *Span) EndAt(at time.Time) {
	if s == nil || s.rec == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if s.data.ended {
		return
	}
	s.data.ended = true
	s.data.end = at
}

// Ended reports whether the span has been ended.
func (s *Span) Ended() bool {
	if s == nil || s.rec == nil {
		return false
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	return s.data.ended
}

// ---- context propagation ----

type ctxKey struct{}

// NewContext returns ctx carrying sc for downstream RPC spans.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts a span context placed by NewContext.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// ---- export ----

// SpanData is the exported (immutable snapshot) form of a span.
type SpanData struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_span_id,omitempty"`
	Name     string            `json:"name"`
	Phase    string            `json:"phase,omitempty"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end,omitempty"` // zero: never ended
	Ended    bool              `json:"ended"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Events   []SpanEvent       `json:"events,omitempty"`
	Children []*SpanData       `json:"children,omitempty"`
}

// Duration is End-Start, clamping an unended span to clamp.
func (d *SpanData) Duration(clamp time.Time) time.Duration {
	end := d.End
	if !d.Ended {
		end = clamp
	}
	if end.Before(d.Start) {
		return 0
	}
	return end.Sub(d.Start)
}

// Tree is one trace exported as a span tree. Orphans are spans whose
// parent was never recorded (should not happen for job traces).
type Tree struct {
	TraceID string      `json:"trace_id"`
	Root    *SpanData   `json:"root,omitempty"`
	Orphans []*SpanData `json:"orphans,omitempty"`
}

// Tree snapshots jobID's trace as a span tree with deterministically
// ordered children (start time, then name, then span ID). Returns nil
// if the trace has no spans.
func (r *Recorder) Tree(jobID string) *Tree {
	if r == nil {
		return nil
	}
	root := JobRoot(jobID)
	r.mu.Lock()
	ts := r.traces[root.TraceID]
	if ts == nil || len(ts.spans) == 0 {
		r.mu.Unlock()
		return nil
	}
	data := make(map[SpanID]*SpanData, len(ts.spans))
	order := append([]SpanID(nil), ts.order...)
	for _, id := range order {
		s := ts.spans[id]
		sd := &SpanData{
			TraceID: string(s.ctx.TraceID),
			SpanID:  s.ctx.SpanID.String(),
			Name:    s.name,
			Start:   s.start,
			End:     s.end,
			Ended:   s.ended,
		}
		if s.parent != 0 {
			sd.ParentID = s.parent.String()
		}
		if len(s.attrs) > 0 {
			sd.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				sd.Attrs[k] = v
			}
			sd.Phase = s.attrs[AttrPhase]
		}
		if len(s.events) > 0 {
			sd.Events = append([]SpanEvent(nil), s.events...)
		}
		data[id] = sd
	}
	parents := make(map[SpanID]SpanID, len(ts.spans))
	for _, id := range order {
		parents[id] = ts.spans[id].parent
	}
	r.mu.Unlock()

	tree := &Tree{TraceID: string(root.TraceID)}
	for _, id := range order {
		sd := data[id]
		p := parents[id]
		if id == root.SpanID {
			tree.Root = sd
			continue
		}
		if parent, ok := data[p]; ok {
			parent.Children = append(parent.Children, sd)
		} else {
			tree.Orphans = append(tree.Orphans, sd)
		}
	}
	sortChildren := func(list []*SpanData) {
		sort.SliceStable(list, func(i, j int) bool {
			a, b := list[i], list[j]
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			if a.Name != b.Name {
				return a.Name < b.Name
			}
			return a.SpanID < b.SpanID
		})
	}
	var walk func(sd *SpanData)
	walk = func(sd *SpanData) {
		sortChildren(sd.Children)
		for _, c := range sd.Children {
			walk(c)
		}
	}
	if tree.Root != nil {
		walk(tree.Root)
	}
	sortChildren(tree.Orphans)
	for _, o := range tree.Orphans {
		walk(o)
	}
	return tree
}
