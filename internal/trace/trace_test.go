package trace

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/clock"
)

func newSim(t *testing.T) *clock.Sim {
	t.Helper()
	sim := clock.NewSim()
	t.Cleanup(sim.Close)
	return sim
}

func TestDeterministicIDs(t *testing.T) {
	root := JobRoot("job-000001")
	if !root.Valid() {
		t.Fatal("root context invalid")
	}
	if root != JobRoot("job-000001") {
		t.Fatal("JobRoot not deterministic")
	}
	if root == JobRoot("job-000002") {
		t.Fatal("distinct jobs share a root")
	}

	build := func() []SpanID {
		r := NewRecorder(clock.NewSim())
		rt := r.Root("job-000001")
		var ids []SpanID
		for i := 0; i < 3; i++ {
			a := r.StartSpan(rt.Context(), "attempt")
			ids = append(ids, a.Context().SpanID)
			c := r.StartSpan(a.Context(), "train")
			ids = append(ids, c.Context().SpanID)
		}
		return ids
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d: ids differ across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	seen := map[SpanID]bool{}
	for _, id := range a {
		if seen[id] {
			t.Fatalf("duplicate span id %v", id)
		}
		seen[id] = true
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	sp := r.StartSpan(JobRoot("j"), "x")
	if sp != nil {
		t.Fatal("nil recorder must return nil span")
	}
	// All of these must not panic.
	sp.SetAttr("k", "v")
	sp.SetPhase(PhaseTrain)
	sp.Event("e")
	sp.End()
	if sp.Context().Valid() {
		t.Fatal("nil span context must be invalid")
	}
	if r.Tree("j") != nil {
		t.Fatal("nil recorder tree must be nil")
	}
	if r.Root("j") != nil {
		t.Fatal("nil recorder root must be nil")
	}
	// Invalid parent also yields a nil span.
	r2 := NewRecorder(clock.NewSim())
	if r2.StartSpan(SpanContext{}, "x") != nil {
		t.Fatal("invalid parent must yield nil span")
	}
}

func TestRootIdempotentAndEndOnce(t *testing.T) {
	sim := newSim(t)
	r := NewRecorder(sim)
	a := r.Root("job-1")
	sim.Sleep(time.Second)
	b := r.Root("job-1")
	if a.Context() != b.Context() {
		t.Fatal("Root not idempotent")
	}
	a.End()
	first := r.Tree("job-1").Root.End
	sim.Sleep(time.Minute)
	b.End() // must not move the end time
	if got := r.Tree("job-1").Root.End; !got.Equal(first) {
		t.Fatalf("End not idempotent: %v -> %v", first, got)
	}
}

func TestTreeStructureAndOrdering(t *testing.T) {
	sim := newSim(t)
	r := NewRecorder(sim)
	root := r.Root("job-1")
	a1 := r.StartSpan(root.Context(), "learner-0")
	sim.Sleep(2 * time.Second)
	tr := r.StartSpan(a1.Context(), "train")
	tr.SetPhase(PhaseTrain)
	sim.Sleep(10 * time.Second)
	tr.End()
	a1.End()
	a2 := r.StartSpan(root.Context(), "learner-0") // re-parented restart
	sim.Sleep(3 * time.Second)
	a2.End()
	root.End()

	tree := r.Tree("job-1")
	if tree == nil || tree.Root == nil {
		t.Fatal("no tree")
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphans = %d", len(tree.Orphans))
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(tree.Root.Children))
	}
	if tree.Root.Children[0].SpanID == tree.Root.Children[1].SpanID {
		t.Fatal("sibling spans share an id")
	}
	if !tree.Root.Children[0].Start.Before(tree.Root.Children[1].Start) {
		t.Fatal("children not start-ordered")
	}
	if len(tree.Root.Children[0].Children) != 1 {
		t.Fatal("nested child lost")
	}
	if _, err := json.Marshal(tree); err != nil {
		t.Fatalf("tree not marshalable: %v", err)
	}
}

func TestCriticalPathSumsToMakespan(t *testing.T) {
	sim := newSim(t)
	r := NewRecorder(sim)
	root := r.Root("job-1")

	q := r.StartSpan(root.Context(), "gang-wait")
	q.SetPhase(PhaseQueue)
	sim.Sleep(5 * time.Second)
	q.End()

	a := r.StartSpan(root.Context(), "learner-0")
	tr := r.StartSpan(a.Context(), "train")
	tr.SetPhase(PhaseTrain)
	sim.Sleep(20 * time.Second)
	// Nested stall inside training: deeper span wins the overlap.
	st := r.StartSpanAt(a.Context(), "nfs-stall", sim.Now().Add(-4*time.Second))
	st.SetPhase(PhaseStall)
	st.End()
	tr.End()
	a.End()
	sim.Sleep(2 * time.Second) // unattributed tail -> control
	root.End()

	att := CriticalPath(r.Tree("job-1"))
	var sum time.Duration
	for _, p := range att.Phases {
		sum += p.Cost
	}
	if sum != att.Total {
		t.Fatalf("phase costs sum to %s, want makespan %s", sum, att.Total)
	}
	if att.Total != 27*time.Second {
		t.Fatalf("makespan = %s, want 27s", att.Total)
	}
	if got := att.Phase(PhaseQueue); got != 5*time.Second {
		t.Fatalf("queue = %s, want 5s", got)
	}
	// Stall is nested deeper than train at the same instants only when
	// depth differs; here both are children of the attempt, so the
	// later-started stall span wins its 4s overlap.
	if got := att.Phase(PhaseStall); got != 4*time.Second {
		t.Fatalf("stall = %s, want 4s", got)
	}
	if got := att.Phase(PhaseTrain); got != 16*time.Second {
		t.Fatalf("train = %s, want 16s", got)
	}
	if got := att.Phase(PhaseControl); got != 2*time.Second {
		t.Fatalf("control = %s, want 2s", got)
	}
	if att.Recovery != 4*time.Second {
		t.Fatalf("recovery cost = %s, want 4s (the stall)", att.Recovery)
	}
}

func TestCriticalPathUnendedSpansClamp(t *testing.T) {
	sim := newSim(t)
	r := NewRecorder(sim)
	root := r.Root("job-1")
	w := r.StartSpan(root.Context(), "wedged")
	w.SetPhase(PhaseStall)
	sim.Sleep(30 * time.Second)
	root.Event("deadline") // latest timestamp defines the horizon
	// Neither the wedge span nor the root ever end.
	att := CriticalPath(r.Tree("job-1"))
	if att.Total != 30*time.Second {
		t.Fatalf("total = %s, want 30s", att.Total)
	}
	if got := att.Phase(PhaseStall); got != 30*time.Second {
		t.Fatalf("stall = %s, want 30s", got)
	}
}

func TestContextPropagation(t *testing.T) {
	sc := JobRoot("job-9")
	ctx := NewContext(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %v, %v", got, ok)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context must not carry a span")
	}
	if NewContext(context.Background(), SpanContext{}) != context.Background() {
		t.Fatal("invalid context must not be attached")
	}
}

func TestSpanIDWireForm(t *testing.T) {
	id := JobRoot("job-1").SpanID
	if ParseSpanID(id.String()) != id {
		t.Fatal("span id does not round-trip through wire form")
	}
	if ParseSpanID("not-hex") != 0 {
		t.Fatal("garbage must parse to 0")
	}
}

func TestFormatters(t *testing.T) {
	sim := newSim(t)
	r := NewRecorder(sim)
	root := r.Root("job-1")
	tr := r.StartSpan(root.Context(), "train")
	tr.SetPhase(PhaseTrain)
	sim.Sleep(time.Second)
	tr.End()
	root.End()
	tree := r.Tree("job-1")
	if s := FormatTree(tree); s == "" {
		t.Fatal("empty tree format")
	}
	if s := FormatAttribution(CriticalPath(tree)); s == "" {
		t.Fatal("empty attribution format")
	}
	if FormatTree(nil) == "" || FormatAttribution(Attribution{}) == "" {
		t.Fatal("nil formats must still render")
	}
}

// TestSpanRecordAllocs bounds the hot path: StartSpan+SetPhase+End on a
// warm trace. The recorder is on every rpc call and learner chunk, so a
// span record must stay a handful of small allocations (span struct,
// map entry, attr map) — no encoding, no I/O, no unbounded growth.
func TestSpanRecordAllocs(t *testing.T) {
	sim := newSim(t)
	r := NewRecorder(sim)
	root := r.Root("job-alloc")
	defer root.End()
	parent := root.Context()

	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan(parent, "chunk")
		sp.SetPhase(PhaseTrain)
		sp.End()
	})
	// Observed ~7 allocs/span; 12 leaves headroom for map growth without
	// letting an accidental encode/format slip onto the hot path.
	if allocs > 12 {
		t.Fatalf("span record = %.1f allocs, want <= 12", allocs)
	}
}
