package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// AttrPhase is the attribute key marking a span as a critical-path
// phase contributor.
const AttrPhase = "phase"

// Phase vocabulary. Instrumentation across the platform uses these so
// that critical-path attribution is comparable between jobs.
const (
	PhaseQueue      = "queue"      // gang waiting for admission
	PhaseDeploy     = "deploy"     // guardian first-time deploy steps
	PhaseRecovery   = "recovery"   // redeploy / restart-resume work after a fault
	PhaseImagePull  = "image-pull" // container boot delay (first incarnation)
	PhaseRendezvous = "rendezvous" // distributed learners waiting for peers
	PhaseDownload   = "download"   // dataset / checkpoint transfer
	PhaseTrain      = "train"      // training steps
	PhaseCheckpoint = "checkpoint" // checkpoint writes
	PhaseEvict      = "evict"      // graceful-eviction checkpoint handshake
	PhaseStall      = "stall"      // detected I/O stall (e.g. NFS fault)
	PhaseStore      = "store"      // results shipping after training
	PhaseControl    = "control"    // residue: no phase span active
)

// PhaseCost is one phase's share of the critical path.
type PhaseCost struct {
	Phase string        `json:"phase"`
	Cost  time.Duration `json:"cost"`
}

// Attribution is the result of CriticalPath: every instant of the
// root span's interval attributed to exactly one phase, so the phase
// costs sum to Total (the job's virtual makespan) by construction.
type Attribution struct {
	Total    time.Duration `json:"total"`
	Phases   []PhaseCost   `json:"phases"`
	Recovery time.Duration `json:"recovery"` // recovery + stall + evict phases
}

// Phase returns the cost attributed to one phase (0 if absent).
func (a Attribution) Phase(name string) time.Duration {
	for _, p := range a.Phases {
		if p.Phase == name {
			return p.Cost
		}
	}
	return 0
}

type cpSpan struct {
	start, end time.Time
	depth      int
	phase      string
	seq        int
}

// CriticalPath attributes the root span's wall time (virtual) to
// phases by a sweep over span boundaries: within each segment the
// deepest active phase-tagged span wins; segments with no active
// phase span are "control". Unended spans (a wedged learner, an
// in-flight job) are clamped to the root interval's end, which for an
// unended root is the latest timestamp observed in the trace.
func CriticalPath(t *Tree) Attribution {
	if t == nil || t.Root == nil {
		return Attribution{}
	}
	rootStart := t.Root.Start
	rootEnd := t.Root.End
	if !t.Root.Ended {
		rootEnd = rootStart
		var scan func(sd *SpanData)
		scan = func(sd *SpanData) {
			if sd.Start.After(rootEnd) {
				rootEnd = sd.Start
			}
			if sd.Ended && sd.End.After(rootEnd) {
				rootEnd = sd.End
			}
			for _, ev := range sd.Events {
				if ev.Time.After(rootEnd) {
					rootEnd = ev.Time
				}
			}
			for _, c := range sd.Children {
				scan(c)
			}
		}
		scan(t.Root)
	}
	if !rootEnd.After(rootStart) {
		return Attribution{}
	}

	var spans []cpSpan
	seq := 0
	var collect func(sd *SpanData, depth int)
	collect = func(sd *SpanData, depth int) {
		if sd.Phase != "" {
			start, end := sd.Start, sd.End
			if !sd.Ended {
				end = rootEnd
			}
			if start.Before(rootStart) {
				start = rootStart
			}
			if end.After(rootEnd) {
				end = rootEnd
			}
			if end.After(start) {
				spans = append(spans, cpSpan{start: start, end: end, depth: depth, phase: sd.Phase, seq: seq})
				seq++
			}
		}
		for _, c := range sd.Children {
			collect(c, depth+1)
		}
	}
	collect(t.Root, 0)

	bounds := []time.Time{rootStart, rootEnd}
	for _, s := range spans {
		bounds = append(bounds, s.start, s.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].Before(bounds[j]) })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if !b.Equal(uniq[len(uniq)-1]) {
			uniq = append(uniq, b)
		}
	}

	costs := make(map[string]time.Duration)
	for i := 0; i+1 < len(uniq); i++ {
		lo, hi := uniq[i], uniq[i+1]
		best := -1
		for j, s := range spans {
			if !s.start.After(lo) && !s.end.Before(hi) {
				if best == -1 || deeper(s, spans[best]) {
					best = j
				}
			}
		}
		phase := PhaseControl
		if best >= 0 {
			phase = spans[best].phase
		}
		costs[phase] += hi.Sub(lo)
	}

	att := Attribution{Total: rootEnd.Sub(rootStart)}
	names := make([]string, 0, len(costs))
	for n := range costs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if costs[names[i]] != costs[names[j]] {
			return costs[names[i]] > costs[names[j]]
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		att.Phases = append(att.Phases, PhaseCost{Phase: n, Cost: costs[n]})
	}
	att.Recovery = costs[PhaseRecovery] + costs[PhaseStall] + costs[PhaseEvict]
	return att
}

// deeper orders competing active spans: deeper wins; at equal depth
// the later start wins (more specific); ties break on insertion order
// so the sweep is deterministic.
func deeper(a, b cpSpan) bool {
	if a.depth != b.depth {
		return a.depth > b.depth
	}
	if !a.start.Equal(b.start) {
		return a.start.After(b.start)
	}
	return a.seq > b.seq
}

// FormatTree renders the span tree as indented text with offsets
// relative to the root start and virtual durations.
func FormatTree(t *Tree) string {
	if t == nil || t.Root == nil {
		return "(no trace)\n"
	}
	base := t.Root.Start
	clamp := t.Root.End
	if !t.Root.Ended {
		att := CriticalPath(t)
		clamp = base.Add(att.Total)
	}
	var b strings.Builder
	var walk func(sd *SpanData, depth int)
	walk = func(sd *SpanData, depth int) {
		dur := sd.Duration(clamp)
		open := ""
		if !sd.Ended {
			open = " (open)"
		}
		phase := ""
		if sd.Phase != "" {
			phase = " [" + sd.Phase + "]"
		}
		fmt.Fprintf(&b, "%s%s%s  +%s  %s%s\n",
			strings.Repeat("  ", depth), sd.Name, phase,
			sd.Start.Sub(base), dur, open)
		for _, ev := range sd.Events {
			fmt.Fprintf(&b, "%s· %s  +%s\n",
				strings.Repeat("  ", depth+1), ev.Name, ev.Time.Sub(base))
		}
		for _, c := range sd.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	for _, o := range t.Orphans {
		walk(o, 1)
	}
	return b.String()
}

// FormatAttribution renders a critical-path attribution as text.
func FormatAttribution(a Attribution) string {
	if a.Total <= 0 {
		return "(no critical path)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (virtual makespan %s):\n", a.Total)
	for _, p := range a.Phases {
		fmt.Fprintf(&b, "  %-11s %12s  %5.1f%%\n", p.Phase, p.Cost,
			100*float64(p.Cost)/float64(a.Total))
	}
	fmt.Fprintf(&b, "recovery cost: %s\n", a.Recovery)
	return b.String()
}
