package mongo

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func recvChange(t *testing.T, ch <-chan ChangeEvent) ChangeEvent {
	t.Helper()
	select {
	case ce := <-ch:
		return ce
	case <-time.After(10 * time.Second):
		t.Fatal("no change event delivered")
		return ChangeEvent{}
	}
}

// TestCollectionChangeFeed: inserts, updates and deletes after the
// subscription arrive in revision order with the committed document —
// the list-then-watch substrate for the LCM's QUEUED sweep and GC.
func TestCollectionChangeFeed(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	db := New(clk)
	defer db.Close()
	jobs := db.Collection("jobs")

	// Pre-subscription writes are not replayed.
	if err := jobs.InsertOne(Document{"_id": "j0", "state": "QUEUED"}); err != nil {
		t.Fatal(err)
	}

	feed, cancel, err := jobs.Watch()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	if err := jobs.InsertOne(Document{"_id": "j1", "state": "QUEUED"}); err != nil {
		t.Fatal(err)
	}
	ins := recvChange(t, feed)
	if ins.ID != "j1" || ins.Deleted || ins.Doc["state"] != "QUEUED" {
		t.Fatalf("insert event = %+v", ins)
	}

	if _, err := jobs.UpdateOne(Filter{"_id": "j1"}, Document{"state": "COMPLETED"}); err != nil {
		t.Fatal(err)
	}
	upd := recvChange(t, feed)
	if upd.ID != "j1" || upd.Doc["state"] != "COMPLETED" || upd.Rev <= ins.Rev {
		t.Fatalf("update event = %+v (after rev %d)", upd, ins.Rev)
	}

	if _, err := jobs.DeleteOne(Filter{"_id": "j1"}); err != nil {
		t.Fatal(err)
	}
	del := recvChange(t, feed)
	if del.ID != "j1" || !del.Deleted || del.Rev <= upd.Rev {
		t.Fatalf("delete event = %+v", del)
	}

	// A different collection's writes never leak into this feed.
	if err := db.Collection("other").InsertOne(Document{"_id": "x"}); err != nil {
		t.Fatal(err)
	}
	select {
	case ce := <-feed:
		t.Fatalf("cross-collection leak: %+v", ce)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestChangeFeedDocIsACopy: mutating a delivered document must not
// corrupt the store's committed state.
func TestChangeFeedDocIsACopy(t *testing.T) {
	clk := clock.NewSim()
	defer clk.Close()
	db := New(clk)
	defer db.Close()
	c := db.Collection("jobs")
	feed, cancel, err := c.Watch()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := c.InsertOne(Document{"_id": "j", "state": "QUEUED"}); err != nil {
		t.Fatal(err)
	}
	ce := recvChange(t, feed)
	ce.Doc["state"] = "MANGLED"
	got, err := c.FindOne(Filter{"_id": "j"})
	if err != nil || got["state"] != "QUEUED" {
		t.Fatalf("stored doc = %+v (%v), want untouched QUEUED", got, err)
	}
}
