// Package mongo is an in-memory document store standing in for the
// MongoDB deployment that holds DLaaS job metadata ("For the lifetime of
// a DL job, all its metadata, including its job parameters, are stored in
// MongoDB"). The platform relies on three properties, all provided here:
//
//   - Durable writes acknowledged before the API acknowledges a
//     submission, so accepted jobs are never lost.
//   - Atomic single-document updates (status transitions).
//   - Filtered queries over collections (job listing, GC scans).
//
// Since the metadata-plane refactor this package is a thin facade over
// the sharded MVCC engine in internal/store: each collection is a
// keyspace prefix, single-document operations are per-key atomic updates
// on the owning shard, and queries are snapshot scans at a global
// revision — so a GC scan over 10k jobs never blocks a status
// transition, and writers to different documents never contend.
//
// Documents are map[string]any with a mandatory "_id" field. Values
// stored and returned are deep-copied so callers can never alias the
// store's internal state (which is also what keeps old MVCC versions
// immutable for in-flight snapshot readers).
package mongo

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/store"
)

// Common errors.
var (
	// ErrNotFound indicates no document matched the filter.
	ErrNotFound = errors.New("mongo: document not found")
	// ErrDuplicateKey indicates an insert violated the _id or a unique
	// index constraint.
	ErrDuplicateKey = errors.New("mongo: duplicate key")
	// ErrUnavailable indicates the database is down (crash simulation).
	ErrUnavailable = errors.New("mongo: database unavailable")
)

// Document is a JSON-like record.
type Document = map[string]any

// Filter matches documents by exact field equality. A nil or empty
// filter matches everything.
type Filter = map[string]any

// writeLatency models the round trip to a replicated Mongo deployment
// with journaled write concern.
const writeLatency = 2 * time.Millisecond

// readLatency models an indexed read.
const readLatency = 500 * time.Microsecond

// mutateAttempts bounds rescans when every snapshot candidate of a
// filtered read-modify-write is concurrently mutated away.
const mutateAttempts = 4

// DB is a named set of collections over one shared store engine.
type DB struct {
	clk clock.Clock
	eng *store.Engine

	down atomic.Bool

	mu    sync.Mutex
	colls map[string]*Collection
}

// New returns an empty database on clk with the default shard count.
func New(clk clock.Clock) *DB { return NewSharded(clk, 0) }

// NewSharded returns an empty database whose backing engine uses the
// given shard count (<= 0 selects the store default).
func NewSharded(clk clock.Clock, shards int) *DB {
	return &DB{
		clk:   clk,
		eng:   store.NewEngine(store.Config{Shards: shards}),
		colls: make(map[string]*Collection),
	}
}

// Close shuts down the backing engine.
func (d *DB) Close() { d.eng.Close() }

// Instrument publishes the backing engine's metrics (per-shard commit
// counts, floor lag, watch-hub queue depth) into reg under the "mongo"
// label. Call before serving.
func (d *DB) Instrument(reg *metrics.Registry) { d.eng.Instrument(reg, "mongo") }

// SetDown simulates the database being unreachable (crash of the Mongo
// deployment). Operations fail until SetDown(false).
func (d *DB) SetDown(down bool) { d.down.Store(down) }

func (d *DB) available() error {
	if d.down.Load() {
		return ErrUnavailable
	}
	return nil
}

// Collection returns (creating if needed) the named collection.
func (d *DB) Collection(name string) *Collection {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.colls[name]
	if c == nil {
		c = &Collection{db: d, name: name, prefix: "c\x00" + name + "\x00"}
		d.colls[name] = c
	}
	return c
}

// Collection is a keyspace of documents keyed by "_id".
type Collection struct {
	db     *DB
	name   string
	prefix string

	// idxMu fences inserts against unique-index state: plain inserts
	// hold it shared (they run in parallel), inserts into uniquely
	// indexed collections and EnsureUniqueIndex hold it exclusively —
	// so an index build never races an in-flight insert commit, and
	// unique check+commit is atomic. Reads and updates never take it.
	idxMu  sync.RWMutex
	unique []string

	writes atomic.Int64
}

func (c *Collection) key(id string) string { return c.prefix + id }

// EnsureUniqueIndex adds a unique constraint on field. Existing
// duplicate values cause an error.
func (c *Collection) EnsureUniqueIndex(field string) error {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	seen := make(map[any]bool)
	for _, kv := range c.db.eng.ScanLatest(c.prefix) {
		doc := kv.Value.(Document)
		v, ok := doc[field]
		if !ok {
			continue
		}
		if seen[v] {
			return fmt.Errorf("mongo: building index on %s.%s: %w", c.name, field, ErrDuplicateKey)
		}
		seen[v] = true
	}
	c.unique = append(c.unique, field)
	return nil
}

// InsertOne adds doc. The document must carry a string "_id". The write
// is durable when InsertOne returns (journaled write concern).
func (c *Collection) InsertOne(doc Document) error {
	if err := c.db.available(); err != nil {
		return err
	}
	id, ok := doc["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("mongo: insert into %s: missing string _id", c.name)
	}
	c.db.clk.Sleep(writeLatency)
	stored := deepCopy(doc)

	c.idxMu.RLock()
	if len(c.unique) == 0 {
		// No unique indexes: commit under the shared lock, so a
		// concurrent EnsureUniqueIndex waits for this insert to land.
		defer c.idxMu.RUnlock()
	} else {
		c.idxMu.RUnlock()
		c.idxMu.Lock()
		defer c.idxMu.Unlock()
		// Exclusive: check+commit is atomic against other inserts.
		for _, f := range c.unique {
			want, has := stored[f]
			if !has {
				continue
			}
			for _, kv := range c.db.eng.ScanLatest(c.prefix) {
				other := kv.Value.(Document)
				if other[f] == want {
					return fmt.Errorf("mongo: insert %s/%s: field %s: %w", c.name, id, f, ErrDuplicateKey)
				}
			}
		}
	}

	if _, err := c.db.eng.Insert(c.key(id), stored); err != nil {
		if errors.Is(err, store.ErrExists) {
			return fmt.Errorf("mongo: insert %s/%s: %w", c.name, id, ErrDuplicateKey)
		}
		return fmt.Errorf("mongo: insert %s/%s: %v", c.name, id, err)
	}
	c.writes.Add(1)
	return nil
}

// FindOne returns the first document matching filter in _id order.
func (c *Collection) FindOne(filter Filter) (Document, error) {
	if err := c.db.available(); err != nil {
		return nil, err
	}
	c.db.clk.Sleep(readLatency)
	if id, ok := filterID(filter); ok {
		// Point read: latest committed version of the one key.
		if v, _, found := c.db.eng.Get(c.key(id)); found {
			doc := v.(Document)
			if matches(doc, filter) {
				return deepCopy(doc), nil
			}
		}
		return nil, fmt.Errorf("mongo: find in %s: %w", c.name, ErrNotFound)
	}
	kvs, _, err := c.db.eng.Scan(c.prefix)
	if err != nil {
		return nil, fmt.Errorf("mongo: find in %s: %v", c.name, err)
	}
	for _, kv := range kvs {
		if doc := kv.Value.(Document); matches(doc, filter) {
			return deepCopy(doc), nil
		}
	}
	return nil, fmt.Errorf("mongo: find in %s: %w", c.name, ErrNotFound)
}

// Find returns every document matching filter, in _id order. The read is
// an MVCC snapshot at a global revision: it observes a consistent
// point-in-time view and never blocks concurrent writers.
func (c *Collection) Find(filter Filter) ([]Document, error) {
	if err := c.db.available(); err != nil {
		return nil, err
	}
	c.db.clk.Sleep(readLatency)
	kvs, _, err := c.db.eng.Scan(c.prefix)
	if err != nil {
		return nil, fmt.Errorf("mongo: find in %s: %v", c.name, err)
	}
	var out []Document
	for _, kv := range kvs {
		if doc := kv.Value.(Document); matches(doc, filter) {
			out = append(out, deepCopy(doc))
		}
	}
	return out, nil
}

// Count returns the number of documents matching filter.
func (c *Collection) Count(filter Filter) (int, error) {
	docs, err := c.Find(filter)
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// UpdateOne applies set to the first document matching filter,
// atomically. It returns the updated document.
func (c *Collection) UpdateOne(filter Filter, set Document) (Document, error) {
	doc, err := c.mutateFiltered("update", filter, func(doc Document) error {
		for k, v := range set {
			if k == "_id" {
				continue // immutable
			}
			doc[k] = deepCopyValue(v)
		}
		return nil
	})
	return doc, err
}

// Mutate atomically applies fn to the first document matching filter (in
// _id order) while holding the document's shard lock — the read-modify-
// write primitive behind dependable job state transitions. fn receives a
// copy; returning nil commits it (the _id is immutable), returning an
// error aborts. The committed document is returned.
//
// With an "_id" filter (the platform's state-transition path) the
// operation is exact: the one key is locked and revalidated. A non-_id
// filter selects candidates from an MVCC snapshot and revalidates each
// under its shard lock, rescanning a bounded number of times; under
// sustained concurrent churn of the filtered fields it can return
// ErrNotFound even though some document matched at every instant —
// point-in-time candidate selection is the price of scans that never
// block writers.
func (c *Collection) Mutate(filter Filter, fn func(doc Document) error) (Document, error) {
	return c.mutateFiltered("mutate", filter, fn)
}

// mutateFiltered is the shared filtered-RMW path. A point filter ("_id")
// locks only the owning shard; otherwise candidates come from a snapshot
// scan and each is revalidated under its shard lock, retrying when every
// candidate was concurrently mutated away.
func (c *Collection) mutateFiltered(opName string, filter Filter, fn func(doc Document) error) (Document, error) {
	if err := c.db.available(); err != nil {
		return nil, err
	}
	c.db.clk.Sleep(writeLatency)

	if id, ok := filterID(filter); ok {
		doc, wrote, err := c.mutateKey(id, filter, fn)
		if err != nil {
			return nil, err
		}
		if !wrote {
			return nil, fmt.Errorf("mongo: %s in %s: %w", opName, c.name, ErrNotFound)
		}
		return doc, nil
	}

	for attempt := 0; attempt < mutateAttempts; attempt++ {
		kvs, _, err := c.db.eng.Scan(c.prefix)
		if err != nil {
			return nil, fmt.Errorf("mongo: %s in %s: %v", opName, c.name, err)
		}
		tried := false
		for _, kv := range kvs {
			doc := kv.Value.(Document)
			if !matches(doc, filter) {
				continue
			}
			tried = true
			id, _ := doc["_id"].(string)
			out, wrote, err := c.mutateKey(id, filter, fn)
			if err != nil {
				return nil, err
			}
			if wrote {
				return out, nil
			}
			// The candidate changed under us and no longer matches; the
			// next one in _id order is now the first match.
		}
		if !tried {
			break
		}
	}
	return nil, fmt.Errorf("mongo: %s in %s: %w", opName, c.name, ErrNotFound)
}

// mutateKey runs fn against the identified document under its shard
// lock, revalidating the filter there. wrote=false means the document is
// absent or no longer matches.
func (c *Collection) mutateKey(id string, filter Filter, fn func(doc Document) error) (Document, bool, error) {
	var out Document
	_, wrote, err := c.db.eng.Update(c.key(id), func(cur any, exists bool) (any, store.Action, error) {
		if !exists {
			return nil, store.ActSkip, nil
		}
		doc := cur.(Document)
		if !matches(doc, filter) {
			return nil, store.ActSkip, nil
		}
		work := deepCopy(doc)
		if err := fn(work); err != nil {
			return nil, store.ActSkip, err
		}
		work["_id"] = id
		out = work
		// Install the engine's own copy: committed versions must stay
		// immutable for snapshot readers even if the caller keeps `work`.
		return deepCopy(work), store.ActWrite, nil
	})
	if err != nil {
		return nil, false, err
	}
	if wrote {
		c.writes.Add(1)
	}
	return out, wrote, nil
}

// ChangeEvent is one committed document change in a collection's change
// feed: the document's new value (nil when Deleted) and the engine
// revision that committed it.
type ChangeEvent struct {
	ID      string
	Doc     Document
	Deleted bool
	Rev     uint64
}

// Watch opens a change feed over the collection: every committed
// insert, update and delete after the call is delivered in revision
// order. Pair with Find for list-then-watch consumers (the
// lifecycle manager's QUEUED sweep) — the feed replaces re-listing the
// collection on a poll loop. Cancel must be called to release the feed.
func (c *Collection) Watch() (<-chan ChangeEvent, func(), error) {
	return c.watch(c.prefix, "")
}

// WatchKey opens a change feed over a single document: only committed
// changes of the identified document are delivered, in revision order.
// High-fanout consumers that each care about one document (a Guardian
// per job watching for its own halt) use this instead of Watch, which
// wakes every subscriber on every document's commit.
func (c *Collection) WatchKey(id string) (<-chan ChangeEvent, func(), error) {
	return c.watch(c.key(id), id)
}

// watch is the shared feed pump. prefix selects events at the engine
// hub; only, when non-empty, additionally filters to the exact document
// (a key is also a prefix of longer ids, so hub filtering alone would
// over-match).
func (c *Collection) watch(prefix, only string) (<-chan ChangeEvent, func(), error) {
	ch, cancel, err := c.db.eng.Watch(prefix)
	if err != nil {
		return nil, nil, fmt.Errorf("mongo: watch %s: %v", c.name, err)
	}
	out := make(chan ChangeEvent, 64)
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			close(done)
		})
	}
	go func() {
		for {
			select {
			case <-done:
				return
			case ev := <-ch:
				ce := ChangeEvent{ID: strings.TrimPrefix(ev.Key, c.prefix), Rev: ev.Rev}
				if only != "" && ce.ID != only {
					continue
				}
				if ev.Type == store.EventDelete {
					ce.Deleted = true
				} else {
					ce.Doc = deepCopy(ev.Value.(Document))
				}
				select {
				case out <- ce:
				case <-done:
					return
				}
			}
		}
	}()
	return out, stop, nil
}

// DeleteOne removes the first document matching filter. It reports
// whether a document was removed.
func (c *Collection) DeleteOne(filter Filter) (bool, error) {
	if err := c.db.available(); err != nil {
		return false, err
	}
	c.db.clk.Sleep(writeLatency)

	del := func(id string) (bool, error) {
		_, deleted, err := c.db.eng.DeleteIf(c.key(id), func(cur any) bool {
			return matches(cur.(Document), filter)
		})
		if err != nil {
			return false, err
		}
		if deleted {
			c.writes.Add(1)
		}
		return deleted, nil
	}

	if id, ok := filterID(filter); ok {
		return del(id)
	}
	for attempt := 0; attempt < mutateAttempts; attempt++ {
		kvs, _, err := c.db.eng.Scan(c.prefix)
		if err != nil {
			return false, fmt.Errorf("mongo: delete in %s: %v", c.name, err)
		}
		tried := false
		for _, kv := range kvs {
			doc := kv.Value.(Document)
			if !matches(doc, filter) {
				continue
			}
			tried = true
			id, _ := doc["_id"].(string)
			deleted, err := del(id)
			if err != nil || deleted {
				return deleted, err
			}
		}
		if !tried {
			break
		}
	}
	return false, nil
}

// Writes reports how many mutating operations committed (used by the
// overhead benches).
func (c *Collection) Writes() int { return int(c.writes.Load()) }

// filterID extracts a point filter's document ID.
func filterID(filter Filter) (string, bool) {
	id, ok := filter["_id"].(string)
	return id, ok && id != ""
}

// matches reports whether doc satisfies every equality in filter.
func matches(doc Document, filter Filter) bool {
	for k, want := range filter {
		got, ok := doc[k]
		if !ok || got != want {
			return false
		}
	}
	return true
}

// deepCopy clones a document so callers never alias store state.
func deepCopy(doc Document) Document {
	out := make(Document, len(doc))
	for k, v := range doc {
		out[k] = deepCopyValue(v)
	}
	return out
}

func deepCopyValue(v any) any {
	switch t := v.(type) {
	case Document:
		return deepCopy(t)
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = deepCopyValue(e)
		}
		return out
	case []string:
		out := make([]string, len(t))
		copy(out, t)
		return out
	default:
		return v
	}
}
