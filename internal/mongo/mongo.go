// Package mongo is an in-memory document store standing in for the
// MongoDB deployment that holds DLaaS job metadata ("For the lifetime of
// a DL job, all its metadata, including its job parameters, are stored in
// MongoDB"). The platform relies on three properties, all provided here:
//
//   - Durable writes acknowledged before the API acknowledges a
//     submission, so accepted jobs are never lost.
//   - Atomic single-document updates (status transitions).
//   - Filtered queries over collections (job listing, GC scans).
//
// Documents are map[string]any with a mandatory "_id" field. Values
// stored and returned are deep-copied so callers can never alias the
// store's internal state.
package mongo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// Common errors.
var (
	// ErrNotFound indicates no document matched the filter.
	ErrNotFound = errors.New("mongo: document not found")
	// ErrDuplicateKey indicates an insert violated the _id or a unique
	// index constraint.
	ErrDuplicateKey = errors.New("mongo: duplicate key")
)

// Document is a JSON-like record.
type Document = map[string]any

// Filter matches documents by exact field equality. A nil or empty
// filter matches everything.
type Filter = map[string]any

// writeLatency models the round trip to a replicated Mongo deployment
// with journaled write concern.
const writeLatency = 2 * time.Millisecond

// readLatency models an indexed read.
const readLatency = 500 * time.Microsecond

// DB is a named set of collections.
type DB struct {
	clk clock.Clock

	mu    sync.Mutex
	colls map[string]*Collection
	down  bool
}

// New returns an empty database on clk.
func New(clk clock.Clock) *DB {
	return &DB{clk: clk, colls: make(map[string]*Collection)}
}

// SetDown simulates the database being unreachable (crash of the Mongo
// deployment). Operations fail until SetDown(false).
func (d *DB) SetDown(down bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = down
}

// ErrUnavailable indicates the database is down (crash simulation).
var ErrUnavailable = errors.New("mongo: database unavailable")

func (d *DB) available() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down {
		return ErrUnavailable
	}
	return nil
}

// Collection returns (creating if needed) the named collection.
func (d *DB) Collection(name string) *Collection {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.colls[name]
	if c == nil {
		c = &Collection{db: d, name: name, docs: make(map[string]Document)}
		d.colls[name] = c
	}
	return c
}

// Collection is a set of documents keyed by "_id".
type Collection struct {
	db   *DB
	name string

	mu     sync.Mutex
	docs   map[string]Document
	unique []string // field names with unique indexes
	writes int
}

// EnsureUniqueIndex adds a unique constraint on field. Existing
// duplicate values cause an error.
func (c *Collection) EnsureUniqueIndex(field string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[any]bool)
	for _, doc := range c.docs {
		v, ok := doc[field]
		if !ok {
			continue
		}
		if seen[v] {
			return fmt.Errorf("mongo: building index on %s.%s: %w", c.name, field, ErrDuplicateKey)
		}
		seen[v] = true
	}
	c.unique = append(c.unique, field)
	return nil
}

// InsertOne adds doc. The document must carry a string "_id". The write
// is durable when InsertOne returns (journaled write concern).
func (c *Collection) InsertOne(doc Document) error {
	if err := c.db.available(); err != nil {
		return err
	}
	id, ok := doc["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("mongo: insert into %s: missing string _id", c.name)
	}
	c.db.clk.Sleep(writeLatency)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.docs[id]; exists {
		return fmt.Errorf("mongo: insert %s/%s: %w", c.name, id, ErrDuplicateKey)
	}
	for _, f := range c.unique {
		want, has := doc[f]
		if !has {
			continue
		}
		for _, other := range c.docs {
			if other[f] == want {
				return fmt.Errorf("mongo: insert %s/%s: field %s: %w", c.name, id, f, ErrDuplicateKey)
			}
		}
	}
	c.docs[id] = deepCopy(doc)
	c.writes++
	return nil
}

// FindOne returns the first document matching filter in _id order.
func (c *Collection) FindOne(filter Filter) (Document, error) {
	if err := c.db.available(); err != nil {
		return nil, err
	}
	c.db.clk.Sleep(readLatency)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.sortedIDsLocked() {
		if matches(c.docs[id], filter) {
			return deepCopy(c.docs[id]), nil
		}
	}
	return nil, fmt.Errorf("mongo: find in %s: %w", c.name, ErrNotFound)
}

// Find returns every document matching filter, in _id order.
func (c *Collection) Find(filter Filter) ([]Document, error) {
	if err := c.db.available(); err != nil {
		return nil, err
	}
	c.db.clk.Sleep(readLatency)
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Document
	for _, id := range c.sortedIDsLocked() {
		if matches(c.docs[id], filter) {
			out = append(out, deepCopy(c.docs[id]))
		}
	}
	return out, nil
}

// Count returns the number of documents matching filter.
func (c *Collection) Count(filter Filter) (int, error) {
	docs, err := c.Find(filter)
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// UpdateOne applies set to the first document matching filter,
// atomically. It returns the updated document.
func (c *Collection) UpdateOne(filter Filter, set Document) (Document, error) {
	if err := c.db.available(); err != nil {
		return nil, err
	}
	c.db.clk.Sleep(writeLatency)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.sortedIDsLocked() {
		doc := c.docs[id]
		if !matches(doc, filter) {
			continue
		}
		for k, v := range set {
			if k == "_id" {
				continue // immutable
			}
			doc[k] = deepCopyValue(v)
		}
		c.writes++
		return deepCopy(doc), nil
	}
	return nil, fmt.Errorf("mongo: update in %s: %w", c.name, ErrNotFound)
}

// Mutate atomically applies fn to the first document matching filter
// (in _id order) while holding the collection lock — the read-modify-
// write primitive behind dependable job state transitions. fn receives a
// copy; returning nil commits it (the _id is immutable), returning an
// error aborts. The committed document is returned.
func (c *Collection) Mutate(filter Filter, fn func(doc Document) error) (Document, error) {
	if err := c.db.available(); err != nil {
		return nil, err
	}
	c.db.clk.Sleep(writeLatency)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.sortedIDsLocked() {
		doc := c.docs[id]
		if !matches(doc, filter) {
			continue
		}
		work := deepCopy(doc)
		if err := fn(work); err != nil {
			return nil, err
		}
		work["_id"] = id
		c.docs[id] = deepCopy(work)
		c.writes++
		return work, nil
	}
	return nil, fmt.Errorf("mongo: mutate in %s: %w", c.name, ErrNotFound)
}

// DeleteOne removes the first document matching filter. It reports
// whether a document was removed.
func (c *Collection) DeleteOne(filter Filter) (bool, error) {
	if err := c.db.available(); err != nil {
		return false, err
	}
	c.db.clk.Sleep(writeLatency)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.sortedIDsLocked() {
		if matches(c.docs[id], filter) {
			delete(c.docs, id)
			c.writes++
			return true, nil
		}
	}
	return false, nil
}

// Writes reports how many mutating operations committed (used by the
// overhead benches).
func (c *Collection) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

func (c *Collection) sortedIDsLocked() []string {
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// matches reports whether doc satisfies every equality in filter.
func matches(doc Document, filter Filter) bool {
	for k, want := range filter {
		got, ok := doc[k]
		if !ok || got != want {
			return false
		}
	}
	return true
}

// deepCopy clones a document so callers never alias store state.
func deepCopy(doc Document) Document {
	out := make(Document, len(doc))
	for k, v := range doc {
		out[k] = deepCopyValue(v)
	}
	return out
}

func deepCopyValue(v any) any {
	switch t := v.(type) {
	case Document:
		return deepCopy(t)
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = deepCopyValue(e)
		}
		return out
	case []string:
		out := make([]string, len(t))
		copy(out, t)
		return out
	default:
		return v
	}
}
