package mongo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	clk := clock.NewSim()
	t.Cleanup(clk.Close)
	return New(clk)
}

func TestInsertAndFindOne(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	err := jobs.InsertOne(Document{"_id": "j1", "status": "QUEUED", "user": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := jobs.FindOne(Filter{"_id": "j1"})
	if err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "QUEUED" || doc["user"] != "alice" {
		t.Fatalf("doc = %v", doc)
	}
}

func TestInsertMissingID(t *testing.T) {
	db := newTestDB(t)
	err := db.Collection("jobs").InsertOne(Document{"status": "QUEUED"})
	if err == nil {
		t.Fatal("insert without _id succeeded")
	}
}

func TestInsertDuplicateID(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	if err := jobs.InsertOne(Document{"_id": "j1"}); err != nil {
		t.Fatal(err)
	}
	err := jobs.InsertOne(Document{"_id": "j1"})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
}

func TestFindOneNotFound(t *testing.T) {
	db := newTestDB(t)
	_, err := db.Collection("jobs").FindOne(Filter{"_id": "missing"})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFindByField(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	for i := 0; i < 5; i++ {
		status := "QUEUED"
		if i%2 == 0 {
			status = "COMPLETED"
		}
		if err := jobs.InsertOne(Document{"_id": fmt.Sprintf("j%d", i), "status": status}); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := jobs.Find(Filter{"status": "COMPLETED"})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("found %d, want 3", len(docs))
	}
	// Results come back in _id order.
	if docs[0]["_id"] != "j0" || docs[2]["_id"] != "j4" {
		t.Fatalf("order = %v %v %v", docs[0]["_id"], docs[1]["_id"], docs[2]["_id"])
	}
}

func TestFindAllWithNilFilter(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	for i := 0; i < 3; i++ {
		if err := jobs.InsertOne(Document{"_id": fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := jobs.Find(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("found %d, want 3", len(docs))
	}
}

func TestUpdateOneAtomicStatusTransition(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	if err := jobs.InsertOne(Document{"_id": "j1", "status": "DEPLOYING"}); err != nil {
		t.Fatal(err)
	}
	updated, err := jobs.UpdateOne(Filter{"_id": "j1"}, Document{"status": "PROCESSING"})
	if err != nil {
		t.Fatal(err)
	}
	if updated["status"] != "PROCESSING" {
		t.Fatalf("status = %v", updated["status"])
	}
	// Conditional update: only transition from an expected state
	// (optimistic concurrency used by the Guardian).
	_, err = jobs.UpdateOne(Filter{"_id": "j1", "status": "DEPLOYING"}, Document{"status": "FAILED"})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale transition err = %v, want ErrNotFound", err)
	}
}

func TestUpdateCannotChangeID(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	if err := jobs.InsertOne(Document{"_id": "j1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := jobs.UpdateOne(Filter{"_id": "j1"}, Document{"_id": "j2", "x": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := jobs.FindOne(Filter{"_id": "j1"}); err != nil {
		t.Fatal("_id was mutated")
	}
}

func TestDeleteOne(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	if err := jobs.InsertOne(Document{"_id": "j1"}); err != nil {
		t.Fatal(err)
	}
	removed, err := jobs.DeleteOne(Filter{"_id": "j1"})
	if err != nil || !removed {
		t.Fatalf("delete = (%v,%v)", removed, err)
	}
	removed, err = jobs.DeleteOne(Filter{"_id": "j1"})
	if err != nil || removed {
		t.Fatalf("second delete = (%v,%v), want (false,nil)", removed, err)
	}
}

func TestUniqueIndex(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	if err := jobs.EnsureUniqueIndex("name"); err != nil {
		t.Fatal(err)
	}
	if err := jobs.InsertOne(Document{"_id": "j1", "name": "train-a"}); err != nil {
		t.Fatal(err)
	}
	err := jobs.InsertOne(Document{"_id": "j2", "name": "train-a"})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
}

func TestDocumentsAreIsolatedCopies(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	orig := Document{"_id": "j1", "nested": Document{"gpus": 4}}
	if err := jobs.InsertOne(orig); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's document must not affect the store.
	orig["nested"].(Document)["gpus"] = 999
	doc, _ := jobs.FindOne(Filter{"_id": "j1"})
	if doc["nested"].(Document)["gpus"] != 4 {
		t.Fatal("store aliased caller memory on insert")
	}
	// Mutating a returned document must not affect the store.
	doc["nested"].(Document)["gpus"] = 777
	doc2, _ := jobs.FindOne(Filter{"_id": "j1"})
	if doc2["nested"].(Document)["gpus"] != 4 {
		t.Fatal("store aliased returned memory")
	}
}

func TestDownDatabaseRejectsOps(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	db.SetDown(true)
	if err := jobs.InsertOne(Document{"_id": "j1"}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("insert err = %v, want ErrUnavailable", err)
	}
	if _, err := jobs.FindOne(Filter{"_id": "j1"}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("find err = %v, want ErrUnavailable", err)
	}
	db.SetDown(false)
	if err := jobs.InsertOne(Document{"_id": "j1"}); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

func TestCount(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	for i := 0; i < 4; i++ {
		if err := jobs.InsertOne(Document{"_id": fmt.Sprintf("j%d", i), "tenant": "t1"}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := jobs.Count(Filter{"tenant": "t1"})
	if err != nil || n != 4 {
		t.Fatalf("count = (%d,%v), want (4,nil)", n, err)
	}
}

func TestConcurrentInsertsDistinctIDs(t *testing.T) {
	db := newTestDB(t)
	jobs := db.Collection("jobs")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := jobs.InsertOne(Document{"_id": fmt.Sprintf("j%d", i)}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, _ := jobs.Count(nil)
	if n != 32 {
		t.Fatalf("count = %d, want 32", n)
	}
}

// Property: insert-then-find returns exactly the inserted fields.
func TestQuickInsertFindRoundTrip(t *testing.T) {
	db := newTestDB(t)
	coll := db.Collection("rt")
	seq := 0
	f := func(status string, gpus uint8) bool {
		id := fmt.Sprintf("doc%d", seq)
		seq++
		if err := coll.InsertOne(Document{"_id": id, "status": status, "gpus": int(gpus)}); err != nil {
			return false
		}
		doc, err := coll.FindOne(Filter{"_id": id})
		return err == nil && doc["status"] == status && doc["gpus"] == int(gpus)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
