package kube

import (
	"testing"
	"time"
)

func TestFreeGPUsAccounting(t *testing.T) {
	c, clk := newTestCluster(t,
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "P100"},
	)
	if got := c.FreeGPUs(""); got != 8 {
		t.Fatalf("total free = %d, want 8", got)
	}
	if got := c.FreeGPUs("K80"); got != 4 {
		t.Fatalf("K80 free = %d, want 4", got)
	}
	spec := sleeperSpec("eater", time.Hour, 0)
	spec.GPUs = 3
	spec.GPUType = "K80"
	if _, err := c.CreatePod(spec); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "eater", PodRunning, 30*time.Second)
	if got := c.FreeGPUs("K80"); got != 1 {
		t.Fatalf("K80 free after placement = %d, want 1", got)
	}
	if got := c.FreeGPUs("P100"); got != 4 {
		t.Fatalf("P100 free = %d, want 4", got)
	}
}

func TestCordonExcludesFromScheduling(t *testing.T) {
	c, clk := newTestCluster(t, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	if err := c.CordonNode("n1"); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeGPUs(""); got != 0 {
		t.Fatalf("cordoned free = %d, want 0", got)
	}
	p, err := c.CreatePod(sleeperSpec("waiting", time.Hour, 0))
	if err != nil {
		t.Fatal(err)
	}
	clk.Sleep(3 * time.Second)
	if p.Phase() != PodPending {
		t.Fatalf("phase = %v, want Pending on cordoned cluster", p.Phase())
	}
	if err := c.UncordonNode("n1"); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "waiting", PodRunning, 30*time.Second)
}

func TestCordonDoesNotDisturbRunningPods(t *testing.T) {
	c, clk := newTestCluster(t, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	p, err := c.CreatePod(sleeperSpec("stays", time.Hour, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "stays", PodRunning, 30*time.Second)
	if err := c.CordonNode("n1"); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(3 * time.Second)
	if p.Phase() != PodRunning {
		t.Fatalf("phase = %v, cordon must not evict", p.Phase())
	}
}

func TestDrainEvictsAndControllerReschedules(t *testing.T) {
	c, clk := newTestCluster(t,
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	tmpl := PodSpec{
		Labels:        map[string]string{"app": "svc"},
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "c", StartDelay: 50 * time.Millisecond}},
	}
	if _, err := c.CreateDeployment("svc", 2, tmpl); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, c, clk, "svc", 2, 30*time.Second)

	// Drain whichever node hosts a replica.
	victim := c.Pods(map[string]string{"app": "svc"})[0].NodeName()
	if err := c.DrainNode(victim); err != nil {
		t.Fatal(err)
	}
	// All replicas converge onto the other node.
	deadline := clk.Now().Add(60 * time.Second)
	for clk.Now().Before(deadline) {
		pods := c.Pods(map[string]string{"app": "svc"})
		ok := len(pods) == 2
		for _, p := range pods {
			if p.Phase() != PodRunning || p.NodeName() == victim {
				ok = false
			}
		}
		if ok {
			return
		}
		clk.Sleep(100 * time.Millisecond)
	}
	t.Fatal("drained pods did not reschedule off the node")
}

func TestDrainUnknownNode(t *testing.T) {
	c, _ := newTestCluster(t)
	if err := c.DrainNode("ghost"); err == nil {
		t.Fatal("draining unknown node succeeded")
	}
	if err := c.CordonNode("ghost"); err == nil {
		t.Fatal("cordoning unknown node succeeded")
	}
	if err := c.UncordonNode("ghost"); err == nil {
		t.Fatal("uncordoning unknown node succeeded")
	}
}
