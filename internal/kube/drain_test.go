package kube

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func TestFreeGPUsAccounting(t *testing.T) {
	c, clk := newTestCluster(t,
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "P100"},
	)
	if got := c.FreeGPUs(""); got != 8 {
		t.Fatalf("total free = %d, want 8", got)
	}
	if got := c.FreeGPUs("K80"); got != 4 {
		t.Fatalf("K80 free = %d, want 4", got)
	}
	spec := sleeperSpec("eater", time.Hour, 0)
	spec.GPUs = 3
	spec.GPUType = "K80"
	if _, err := c.CreatePod(spec); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "eater", PodRunning, 30*time.Second)
	if got := c.FreeGPUs("K80"); got != 1 {
		t.Fatalf("K80 free after placement = %d, want 1", got)
	}
	if got := c.FreeGPUs("P100"); got != 4 {
		t.Fatalf("P100 free = %d, want 4", got)
	}
}

func TestCordonExcludesFromScheduling(t *testing.T) {
	c, clk := newTestCluster(t, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	if err := c.CordonNode("n1"); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeGPUs(""); got != 0 {
		t.Fatalf("cordoned free = %d, want 0", got)
	}
	p, err := c.CreatePod(sleeperSpec("waiting", time.Hour, 0))
	if err != nil {
		t.Fatal(err)
	}
	clk.Sleep(3 * time.Second)
	if p.Phase() != PodPending {
		t.Fatalf("phase = %v, want Pending on cordoned cluster", p.Phase())
	}
	if err := c.UncordonNode("n1"); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "waiting", PodRunning, 30*time.Second)
}

func TestCordonDoesNotDisturbRunningPods(t *testing.T) {
	c, clk := newTestCluster(t, NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"})
	p, err := c.CreatePod(sleeperSpec("stays", time.Hour, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "stays", PodRunning, 30*time.Second)
	if err := c.CordonNode("n1"); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(3 * time.Second)
	if p.Phase() != PodRunning {
		t.Fatalf("phase = %v, cordon must not evict", p.Phase())
	}
}

func TestDrainEvictsAndControllerReschedules(t *testing.T) {
	c, clk := newTestCluster(t,
		NodeSpec{Name: "n1", GPUs: 4, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 4, GPUType: "K80"},
	)
	tmpl := PodSpec{
		Labels:        map[string]string{"app": "svc"},
		RestartPolicy: RestartAlways,
		Containers:    []ContainerSpec{{Name: "c", StartDelay: 50 * time.Millisecond}},
	}
	if _, err := c.CreateDeployment("svc", 2, tmpl); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, c, clk, "svc", 2, 30*time.Second)

	// Drain whichever node hosts a replica.
	victim := c.Pods(map[string]string{"app": "svc"})[0].NodeName()
	if err := c.DrainNode(victim); err != nil {
		t.Fatal(err)
	}
	// All replicas converge onto the other node.
	deadline := clk.Now().Add(60 * time.Second)
	for clk.Now().Before(deadline) {
		pods := c.Pods(map[string]string{"app": "svc"})
		ok := len(pods) == 2
		for _, p := range pods {
			if p.Phase() != PodRunning || p.NodeName() == victim {
				ok = false
			}
		}
		if ok {
			return
		}
		clk.Sleep(100 * time.Millisecond)
	}
	t.Fatal("drained pods did not reschedule off the node")
}

// waitFreeGPUs polls the schedulable free-GPU count.
func waitFreeGPUs(t *testing.T, c *Cluster, clk *clock.Sim, want int, timeout time.Duration) {
	t.Helper()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if c.FreeGPUs("") == want {
			return
		}
		clk.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("free GPUs = %d, want %d", c.FreeGPUs(""), want)
}

// TestDrainMidGangEvictsThroughScheduler is the regression test for the
// seed behavior where DrainNode killed a gang member pod directly and
// the scheduler's holdings ledger never heard about it. Drain now flows
// through the gang scheduler: the resident gang is evicted whole (to
// GangPreempted, so its owner redeploys), its reservations are fully
// withdrawn, and every GPU comes back.
func TestDrainMidGangEvictsThroughScheduler(t *testing.T) {
	c, clk := newGangCluster(t, Config{},
		NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 2, GPUType: "K80"},
	)
	g, err := c.SubmitGang(GangSpec{Name: "dg", Members: 2, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if g.State() != GangAdmitted {
		t.Fatalf("gang state = %v, want Admitted", g.State())
	}
	for m := 0; m < 2; m++ {
		if _, err := c.CreatePod(memberSpec("dg", m, 2)); err != nil {
			t.Fatal(err)
		}
	}
	waitPhase(t, c, clk, "dg-0", PodRunning, 30*time.Second)
	waitPhase(t, c, clk, "dg-1", PodRunning, 30*time.Second)
	if res := g.NodeReservations(); res["n1"] != 2 || res["n2"] != 2 {
		t.Fatalf("reservations = %v, want 2 on each node", res)
	}

	if err := c.DrainNode("n1"); err != nil {
		t.Fatal(err)
	}
	waitGangState(t, clk, g, GangPreempted, 30*time.Second)
	if res := g.NodeReservations(); len(res) != 0 {
		t.Fatalf("preempted gang still holds reservations: %v", res)
	}
	// The dying members' GPUs return: n2's 2 while n1 is cordoned, all 4
	// after uncordon — nothing leaked into a stale holdings entry.
	waitFreeGPUs(t, c, clk, 2, 60*time.Second)
	if err := c.UncordonNode("n1"); err != nil {
		t.Fatal(err)
	}
	waitFreeGPUs(t, c, clk, 4, 60*time.Second)
}

// TestDrainGracefulEvictionAckAndLedger drains a node hosting gang
// members under a grace period: the gang gets an eviction intent
// (reason drain) and keeps running; the owner's ack completes the
// eviction, and the holdings ledger ends consistent.
func TestDrainGracefulEvictionAckAndLedger(t *testing.T) {
	c, clk := newGangCluster(t, Config{EvictionGracePeriod: time.Minute},
		NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 2, GPUType: "K80"},
	)
	g, err := c.SubmitGang(GangSpec{Name: "gg", Members: 2, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 2; m++ {
		if _, err := c.CreatePod(memberSpec("gg", m, 2)); err != nil {
			t.Fatal(err)
		}
	}
	waitPhase(t, c, clk, "gg-0", PodRunning, 30*time.Second)
	waitPhase(t, c, clk, "gg-1", PodRunning, 30*time.Second)

	if err := c.DrainNode("n2"); err != nil {
		t.Fatal(err)
	}
	if got := g.State(); got != GangEvicting {
		t.Fatalf("gang state after graceful drain = %v, want Evicting", got)
	}
	select {
	case <-g.EvictionNotice():
	default:
		t.Fatal("eviction notice not posted")
	}
	intent, ok := g.EvictionIntent()
	if !ok || intent.Reason != EvictReasonDrain {
		t.Fatalf("intent = %+v (ok=%v), want drain reason", intent, ok)
	}
	if want := intent.PostedAt.Add(time.Minute); !intent.Deadline.Equal(want) {
		t.Fatalf("deadline = %v, want %v", intent.Deadline, want)
	}
	// Grace window: the members keep training (checkpointing) — no kill.
	clk.Sleep(3 * time.Second)
	for m := 0; m < 2; m++ {
		name := "gg-" + string(rune('0'+m))
		if p := c.Pod(name); p == nil || p.Phase() != PodRunning {
			t.Fatalf("member %s not running during grace window", name)
		}
	}

	c.AckEviction("gg")
	waitGangState(t, clk, g, GangPreempted, 30*time.Second)
	if res := g.NodeReservations(); len(res) != 0 {
		t.Fatalf("reservations after completed eviction: %v", res)
	}
	waitFreeGPUs(t, c, clk, 2, 60*time.Second) // n2 cordoned
	if err := c.UncordonNode("n2"); err != nil {
		t.Fatal(err)
	}
	waitFreeGPUs(t, c, clk, 4, 60*time.Second)
}

// TestGracefulPreemptionDeadlineForceEvicts: a higher-priority gang
// posts an intent to the victim instead of killing it; a victim that
// never acks (wedged) is force-evicted at the grace deadline, so it
// cannot block the preemptor indefinitely.
func TestGracefulPreemptionDeadlineForceEvicts(t *testing.T) {
	c, clk := newGangCluster(t, Config{EvictionGracePeriod: 5 * time.Second},
		NodeSpec{Name: "n1", GPUs: 2, GPUType: "K80"},
	)
	low, err := c.SubmitGang(GangSpec{Name: "low", Tenant: "a", Priority: 1, Members: 1, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreatePod(memberSpec("low", 0, 2)); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, c, clk, "low-0", PodRunning, 30*time.Second)

	hi, err := c.SubmitGang(GangSpec{Name: "hi", Tenant: "b", Priority: 10, Members: 1, GPUsPerMember: 2, GPUType: "K80"})
	if err != nil {
		t.Fatal(err)
	}
	waitGangState(t, clk, low, GangEvicting, 10*time.Second)
	if hi.State() != GangPending {
		t.Fatalf("preemptor state = %v, want Pending through the grace window", hi.State())
	}
	if p := c.Pod("low-0"); p == nil || p.Phase() != PodRunning {
		t.Fatal("victim pod killed before the grace deadline")
	}
	// Repeated reschedule passes during the grace window must not try to
	// find more victims (the projection counts the evicting gang).
	c.sched.kick()
	if low.State() != GangEvicting {
		t.Fatalf("victim state churned to %v on reschedule", low.State())
	}

	// No ack ever arrives: the deadline completes the eviction.
	waitGangState(t, clk, low, GangPreempted, 30*time.Second)
	waitGangState(t, clk, hi, GangAdmitted, 30*time.Second)
}

func TestDrainUnknownNode(t *testing.T) {
	c, _ := newTestCluster(t)
	if err := c.DrainNode("ghost"); err == nil {
		t.Fatal("draining unknown node succeeded")
	}
	if err := c.CordonNode("ghost"); err == nil {
		t.Fatal("cordoning unknown node succeeded")
	}
	if err := c.UncordonNode("ghost"); err == nil {
		t.Fatal("uncordoning unknown node succeeded")
	}
}
