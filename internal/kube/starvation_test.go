package kube

import (
	"fmt"
	"testing"
	"time"
)

// TestBackfillStreamDoesNotStarveLargeGang is the backfill-starvation /
// priority-inversion chaos scenario: a continuous stream of small,
// short-lived, low-priority backfill gangs must not indefinitely delay a
// large high-priority gang waiting at the head of the queue (preemption
// is disabled, so the head cannot simply evict its way in).
//
// The hazard: every time an earlier backfill gang releases its GPU, the
// momentary fragmentation remainder invites the next small gang in, and
// the node oscillates below a full head-member slot forever. The
// per-node backfill budget (capacity % head member size) closes that
// loop; this test drives the stream through many churn rounds and
// requires the head to admit while the stream is still flowing.
func TestBackfillStreamDoesNotStarveLargeGang(t *testing.T) {
	c, clk := newGangCluster(t, Config{Scheduling: PolicySpread, DisablePreemption: true},
		NodeSpec{Name: "n1", GPUs: 5, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 5, GPUType: "K80"},
		NodeSpec{Name: "n3", GPUs: 5, GPUType: "K80"},
		NodeSpec{Name: "n4", GPUs: 5, GPUType: "K80"},
	)

	// Initial occupants: one 2-GPU gang per node (spread policy), so the
	// head cannot fit until they finish.
	var occupants []*Gang
	for i := 0; i < 4; i++ {
		g, err := c.SubmitGang(GangSpec{
			Name: fmt.Sprintf("occ-%d", i), Tenant: "batch",
			Members: 1, GPUsPerMember: 2, GPUType: "K80",
		})
		if err != nil {
			t.Fatal(err)
		}
		if g.State() != GangAdmitted {
			t.Fatalf("occupant %d not admitted", i)
		}
		occupants = append(occupants, g)
	}

	// The large high-priority gang: 4 members x 4 GPUs needs 4 free GPUs
	// on every node; it must wait.
	head, err := c.SubmitGang(GangSpec{
		Name: "big", Tenant: "vip", Priority: 9,
		Members: 4, GPUsPerMember: 4, GPUType: "K80",
	})
	if err != nil {
		t.Fatal(err)
	}
	if head.State() != GangPending {
		t.Fatalf("head = %v, want Pending behind occupants", head.State())
	}

	// Drive the backfill stream: a new 1-GPU low-priority gang every
	// 200ms, each living ~400ms. Occupants finish early on; the stream
	// keeps churning well past that.
	type bf struct {
		g    *Gang
		born time.Time
	}
	var live []bf
	backfilledEver := 0
	admittedAt := time.Time{}
	const rounds = 60
	for r := 0; r < rounds; r++ {
		if r == 5 {
			for _, occ := range occupants {
				c.CancelGang(occ.Name())
			}
		}
		g, err := c.SubmitGang(GangSpec{
			Name: fmt.Sprintf("bf-%02d", r), Tenant: "stream",
			Members: 1, GPUsPerMember: 1, GPUType: "K80",
		})
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, bf{g: g, born: clk.Now()})
		// Retire stream gangs after their short runtime.
		keep := live[:0]
		for _, b := range live {
			if clk.Since(b.born) >= 400*time.Millisecond {
				if b.g.State() == GangAdmitted {
					backfilledEver++
				}
				c.CancelGang(b.g.Name())
			} else {
				keep = append(keep, b)
			}
		}
		live = keep
		clk.Sleep(200 * time.Millisecond)
		if admittedAt.IsZero() && head.State() == GangAdmitted {
			admittedAt = clk.Now()
		}
	}

	if admittedAt.IsZero() {
		t.Fatalf("large high-priority gang starved: still %v after %d stream rounds (pending=%d)",
			head.State(), rounds, c.PendingGangs())
	}
	if backfilledEver == 0 {
		t.Fatal("no stream gang ever backfilled: the scenario did not exercise backfill")
	}
	// The head admitted promptly once the occupants drained (round 5),
	// not merely at the tail of the run.
	if wait := head.PlacementLatency(); wait > 20*time.Second {
		t.Fatalf("head waited %v despite capacity draining at ~1s", wait)
	}
	// Even with the head admitted and holding 16 of 20 GPUs, the stream
	// keeps fitting into the true remainder — backfill is budgeted, not
	// disabled.
	deadline := clk.Now().Add(10 * time.Second)
	streamStillAdmits := false
	for clk.Now().Before(deadline) && !streamStillAdmits {
		g, err := c.SubmitGang(GangSpec{
			Name: fmt.Sprintf("bf-late-%d", clk.Now().UnixNano()), Tenant: "stream",
			Members: 1, GPUsPerMember: 1, GPUType: "K80",
		})
		if err != nil {
			t.Fatal(err)
		}
		clk.Sleep(300 * time.Millisecond)
		streamStillAdmits = g.State() == GangAdmitted
		c.CancelGang(g.Name())
	}
	if !streamStillAdmits {
		t.Fatal("small gangs no longer admit after the head placed (over-reservation)")
	}
}

// TestBackfillBudgetBoundsHoldings pins the budget arithmetic directly:
// with a waiting head of member size 4 on 5-GPU nodes, at most
// 5 % 4 = 1 GPU per node is ever held by backfilled gangs, no matter how
// many small gangs are queued.
func TestBackfillBudgetBoundsHoldings(t *testing.T) {
	c, clk := newGangCluster(t, Config{Scheduling: PolicySpread, DisablePreemption: true},
		NodeSpec{Name: "n1", GPUs: 5, GPUType: "K80"},
		NodeSpec{Name: "n2", GPUs: 5, GPUType: "K80"},
	)
	blocker, err := c.SubmitGang(GangSpec{
		Name: "blocker", Members: 2, GPUsPerMember: 3, GPUType: "K80",
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocker.State() != GangAdmitted {
		t.Fatal("blocker not admitted")
	}
	head, err := c.SubmitGang(GangSpec{
		Name: "head", Priority: 5, Members: 2, GPUsPerMember: 4, GPUType: "K80",
	})
	if err != nil {
		t.Fatal(err)
	}
	if head.State() != GangPending {
		t.Fatalf("head = %v, want Pending", head.State())
	}
	// Flood with 1-GPU gangs: free is 2 per node, but the budget admits
	// only one per node (5 % 4 = 1).
	admitted := 0
	for i := 0; i < 6; i++ {
		g, err := c.SubmitGang(GangSpec{
			Name: fmt.Sprintf("s-%d", i), Members: 1, GPUsPerMember: 1, GPUType: "K80",
		})
		if err != nil {
			t.Fatal(err)
		}
		if g.State() == GangAdmitted {
			admitted++
		}
	}
	clk.Sleep(time.Second)
	if admitted != 2 {
		t.Fatalf("backfilled %d small gangs, want exactly 2 (one per node's remainder)", admitted)
	}
	// Once the blocker drains, the head admits despite the flood.
	c.CancelGang("blocker")
	waitGangState(t, clk, head, GangAdmitted, 10*time.Second)
}
